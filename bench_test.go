// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per table and figure of the paper's evaluation, each
// regenerating the artifact it is named after and reporting the
// paper-comparable quantities as custom metrics. EXPERIMENTS.md records
// paper-vs-measured for every entry.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/flinksim"
	"repro/internal/inject"
	"repro/internal/k8slike"
	"repro/internal/obs"
	"repro/internal/quotasim"
	"repro/internal/redundancy"
	"repro/internal/replay"
	"repro/internal/sparksim"
	"repro/internal/study"
	"repro/internal/vclock"
	"repro/internal/workload"
	"repro/internal/yarnsim"
)

func failures(b *testing.B) []dataset.Failure {
	b.Helper()
	fs, err := dataset.BuildFailures()
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

// --- Tables 1-9 ---------------------------------------------------------

// BenchmarkTable1 regenerates Table 1 (pairs and counts).
func BenchmarkTable1(b *testing.B) {
	fs := failures(b)
	var t study.Table
	for i := 0; i < b.N; i++ {
		t = study.Table1(fs)
	}
	b.ReportMetric(float64(len(t.Rows)-1), "pairs")
}

// BenchmarkTable2 regenerates Table 2 and reports the plane shares.
func BenchmarkTable2(b *testing.B) {
	fs := failures(b)
	var counts map[csi.Plane]int
	for i := 0; i < b.N; i++ {
		counts = study.PlaneCounts(fs)
	}
	b.ReportMetric(float64(counts[csi.DataPlane]), "data_failures")
	b.ReportMetric(float64(counts[csi.ManagementPlane]), "mgmt_failures")
	b.ReportMetric(float64(counts[csi.ControlPlane]), "control_failures")
}

// BenchmarkTable3 regenerates Table 3 and reports the crashing share.
func BenchmarkTable3(b *testing.B) {
	fs := failures(b)
	crashing := 0
	for i := 0; i < b.N; i++ {
		crashing = study.CrashingCount(fs)
		_ = study.Table3(fs)
	}
	b.ReportMetric(float64(crashing), "crashing_of_120")
}

// BenchmarkTable4 regenerates Table 4 (data properties).
func BenchmarkTable4(b *testing.B) {
	fs := failures(b)
	for i := 0; i < b.N; i++ {
		_ = study.Table4(fs)
	}
}

// BenchmarkTable5 regenerates Table 5 (abstraction x property joint).
func BenchmarkTable5(b *testing.B) {
	fs := failures(b)
	for i := 0; i < b.N; i++ {
		_ = study.Table5(fs)
	}
}

// BenchmarkTable6 regenerates Table 6 (data-plane patterns).
func BenchmarkTable6(b *testing.B) {
	fs := failures(b)
	for i := 0; i < b.N; i++ {
		_ = study.Table6(fs)
	}
}

// BenchmarkTable7 regenerates Table 7 (configuration patterns).
func BenchmarkTable7(b *testing.B) {
	fs := failures(b)
	for i := 0; i < b.N; i++ {
		_ = study.Table7(fs)
	}
}

// BenchmarkTable8 regenerates Table 8 (control-plane patterns).
func BenchmarkTable8(b *testing.B) {
	fs := failures(b)
	for i := 0; i < b.N; i++ {
		_ = study.Table8(fs)
	}
}

// BenchmarkTable9 regenerates Table 9 (fix patterns).
func BenchmarkTable9(b *testing.B) {
	fs := failures(b)
	for i := 0; i < b.N; i++ {
		_ = study.Table9(fs)
	}
}

// BenchmarkFindings recomputes Findings 1-13 end to end.
func BenchmarkFindings(b *testing.B) {
	fs := failures(b)
	reproduced := 0
	for i := 0; i < b.N; i++ {
		reproduced = 0
		for _, f := range study.Findings(fs) {
			if f.OK() {
				reproduced++
			}
		}
	}
	b.ReportMetric(float64(reproduced), "findings_reproduced")
}

// BenchmarkFinding1Incidents recomputes the §3 incident statistics.
func BenchmarkFinding1Incidents(b *testing.B) {
	median := 0
	for i := 0; i < b.N; i++ {
		median = study.MedianDuration(dataset.CSIIncidents())
	}
	b.ReportMetric(float64(median), "median_minutes")
	b.ReportMetric(float64(len(dataset.CSIIncidents())), "csi_incidents_of_55")
}

// --- Figures 1-5 --------------------------------------------------------

// BenchmarkFigure1ContainerStorm replays Figure 1 per client mode and
// reports the request amplification — the paper's "4000+ requested"
// shape: the buggy mode amplifies by orders of magnitude, the fixed
// modes hold at 1.0x.
func BenchmarkFigure1ContainerStorm(b *testing.B) {
	for _, mode := range []flinksim.ClientMode{
		flinksim.ModeBuggy, flinksim.ModeWorkaround1, flinksim.ModeWorkaround2, flinksim.ModeAsync,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			opts := replay.StormOptions{Mode: mode}
			if mode == flinksim.ModeWorkaround1 {
				opts.HeartbeatMs = 5000
			}
			var r replay.StormResult
			for i := 0; i < b.N; i++ {
				r = replay.ContainerStorm(opts)
			}
			b.ReportMetric(r.AmplificationX, "amplification_x")
			b.ReportMetric(float64(r.TotalRequested), "containers_requested")
		})
	}
}

// BenchmarkFigure2FileSize replays Figure 2: the buggy nonnegative-size
// check against compressed HDFS files.
func BenchmarkFigure2FileSize(b *testing.B) {
	fails := 0
	for i := 0; i < b.N; i++ {
		if _, err := replay.CompressedFileRead(true, false); err != nil {
			fails++
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N), "job_failure_rate")
}

// BenchmarkFigure3SchedulerConfig replays Figure 3 under both
// schedulers with the same tuned keys.
func BenchmarkFigure3SchedulerConfig(b *testing.B) {
	tuned := map[string]string{yarnsim.KeyMinAllocMB: "128"}
	for _, sched := range []string{"capacity", "fair"} {
		b.Run(sched, func(b *testing.B) {
			fails := 0
			for i := 0; i < b.N; i++ {
				if err := replay.SchedulerMismatch(sched, tuned); err != nil {
					fails++
				}
			}
			b.ReportMetric(float64(fails)/float64(b.N), "allocation_failure_rate")
		})
	}
}

// BenchmarkFigure4Fix replays Figure 4: the fixed check accepts the -1
// sentinel.
func BenchmarkFigure4Fix(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		if _, err := replay.CompressedFileRead(true, true); err == nil {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "job_success_rate")
}

// BenchmarkFigure5FixLadder replays the full Figure 5 ladder per
// iteration and reports each rung's amplification.
func BenchmarkFigure5FixLadder(b *testing.B) {
	var results []replay.StormResult
	for i := 0; i < b.N; i++ {
		results = replay.FixLadder()
	}
	for _, r := range results {
		b.ReportMetric(r.AmplificationX, fmt.Sprintf("x_%s", r.Mode))
	}
}

// --- Figure 6 / §8.2 ------------------------------------------------------

// BenchmarkFigure6CrossTest runs the Figure 6 cross-test over the
// compact corpus and reports the distinct discrepancies found. The full
// 422-input run is exercised by the test suite and the crosstest
// command; the compact corpus keeps the benchmark iteration affordable
// while finding the same 15 discrepancies.
func BenchmarkFigure6CrossTest(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	var res *core.RunResult
	for i := 0; i < b.N; i++ {
		res, err = core.Run(inputs, core.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Report.DistinctKnown())), "distinct_discrepancies")
	b.ReportMetric(float64(len(res.Failures)), "oracle_failures")
	b.ReportMetric(float64(len(res.Cases)), "test_cases")
}

// BenchmarkFigure6PerFamily runs each plan family separately, matching
// the artifact's three scripts (spark_e2e, spark_hive_oneway,
// hive_spark_oneway).
func BenchmarkFigure6PerFamily(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	for _, family := range []string{"ss", "sh", "hs"} {
		b.Run(family, func(b *testing.B) {
			var res *core.RunResult
			for i := 0; i < b.N; i++ {
				res, err = core.Run(inputs, core.RunOptions{Families: []string{family}})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Report.DistinctKnown())), "distinct_discrepancies")
		})
	}
}

// BenchmarkFixConfigAblation reruns the cross-test under each
// discrepancy-resolving configuration, reporting how many distinct
// discrepancies remain — the "relying on custom configurations" sweep.
func BenchmarkFixConfigAblation(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	configs := map[string]map[string]string{
		"default":                 nil,
		"legacy-store-assignment": {"spark.sql.storeAssignmentPolicy": "legacy"},
		"ansi-off":                {"spark.sql.ansi.enabled": "false"},
		"utc-session":             {"spark.sql.session.timeZone": "UTC"},
		"char-padding":            {"spark.sql.readSideCharPadding": "true"},
		"no-legacy-decimal":       {"spark.sql.hive.writeLegacyDecimal": "false"},
		"all-fixes":               allFixConfs(),
	}
	for _, name := range []string{"default", "legacy-store-assignment", "ansi-off", "utc-session", "char-padding", "no-legacy-decimal", "all-fixes"} {
		conf := configs[name]
		b.Run(name, func(b *testing.B) {
			var res *core.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Run(inputs, core.RunOptions{SparkConf: conf})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Report.DistinctKnown())), "distinct_discrepancies")
			b.ReportMetric(float64(len(res.Failures)), "oracle_failures")
		})
	}
}

func allFixConfs() map[string]string {
	out := map[string]string{}
	for _, d := range inject.Registry() {
		for k, v := range d.FixConf {
			out[k] = v
		}
	}
	return out
}

// --- Extensions: incident replay, redundancy, version matrix -------------

// BenchmarkIncidentQuota replays the §1 GCP monitoring x quota incident
// per policy, reporting the quota collapse depth.
func BenchmarkIncidentQuota(b *testing.B) {
	cases := []struct {
		name          string
		policy        quotasim.QuotaPolicy
		fixedProtocol bool
	}{
		{"buggy", quotasim.PolicyTrustReports, false},
		{"grace-period", quotasim.PolicyGracePeriod, false},
		{"ignore-unregistered", quotasim.PolicyIgnoreUnregistered, false},
		{"fixed-protocol", quotasim.PolicyTrustReports, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var r quotasim.IncidentResult
			for i := 0; i < b.N; i++ {
				r = quotasim.RunIncident(c.policy, c.fixedProtocol)
			}
			b.ReportMetric(r.LowestQuota, "lowest_quota")
			b.ReportMetric(float64(r.OutageMinutes), "outage_minutes")
		})
	}
}

// BenchmarkRedundancyCoverage measures how many primary-interface read
// failures the §5.2 interaction-redundancy prototype masks on the
// DataFrame-Avro workload (the SPARK-39075 failure class).
func BenchmarkRedundancyCoverage(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	var report redundancy.CoverageReport
	for i := 0; i < b.N; i++ {
		report, err = redundancy.MeasureFailoverCoverage(inputs, core.DataFrame, core.DataFrame, "avro")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(report.PrimaryFailures), "primary_failures")
	b.ReportMetric(float64(report.ServedByFailover), "served_by_failover")
	b.ReportMetric(float64(report.StillFailing), "still_failing")
}

// BenchmarkVersionMatrix runs the cross-test under each Spark version
// profile — the §5.3 observation that co-deployed versions change the
// interaction behaviour.
func BenchmarkVersionMatrix(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	for _, version := range sparksim.Versions() {
		b.Run(version, func(b *testing.B) {
			// Apply the version defaults as deployment configuration.
			conf := sparksim.VersionConf(version)
			var res *core.RunResult
			for i := 0; i < b.N; i++ {
				res, err = core.Run(inputs, core.RunOptions{SparkConf: conf})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Report.DistinctKnown())), "distinct_discrepancies")
			b.ReportMetric(float64(len(res.Failures)), "oracle_failures")
		})
	}
}

// BenchmarkFigure6Parallel measures the harness with worker-pool
// parallelism (each test case has its own table; the engines are safe
// for concurrent use).
func BenchmarkFigure6Parallel(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var res *core.RunResult
			for i := 0; i < b.N; i++ {
				res, err = core.Run(inputs, core.RunOptions{Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Report.DistinctKnown())), "distinct_discrepancies")
		})
	}
}

// BenchmarkWideTable measures the multi-column (wide-table) mode.
func BenchmarkWideTable(b *testing.B) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		b.Fatal(err)
	}
	var res *core.WideResult
	for i := 0; i < b.N; i++ {
		res, err = core.RunWide(inputs, core.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Columns)), "columns")
	b.ReportMetric(float64(len(res.Report.DistinctKnown())), "distinct_discrepancies")
}

// BenchmarkWorkloadScale sweeps the workload size through both engines,
// reporting load throughput — the bulk-data path of the data plane.
func BenchmarkWorkloadScale(b *testing.B) {
	fixed := map[string]string{"spark.sql.hive.writeLegacyDecimal": "false"}
	for _, rows := range []int{100, 1000, 5000} {
		for _, via := range []struct {
			name   string
			engine workload.Engine
		}{{"dataframe", workload.ViaDataFrame}, {"hiveql", workload.ViaHive}} {
			b.Run(fmt.Sprintf("%s-rows%d", via.name, rows), func(b *testing.B) {
				tables := workload.Generate(workload.Spec{Tables: 1, RowsPerTable: rows, BatchSize: 200})
				b.ResetTimer()
				var res workload.RunResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = workload.Run(tables, via.engine, "parquet", fixed)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.RowsOut)*float64(b.N), "rows_scanned_total")
				if !res.ScanAgree {
					b.Fatal("cross-engine scan disagreement under fixed config")
				}
			})
		}
	}
}

// --- Observability overhead ----------------------------------------------

// TestDisabledObservabilityZeroAlloc pins the contract every benchmark
// above relies on: with tracing, metrics, and the flight recorder
// disabled (nil receivers), the instrumentation points that now sit on
// the harness and scheduler hot paths cost zero allocations. A
// regression here would silently tax every uninstrumented run.
func TestDisabledObservabilityZeroAlloc(t *testing.T) {
	var tracer *obs.Tracer
	var reg *obs.Registry
	var rec *obs.Recorder
	ev := obs.Event{Type: obs.EvCacheHit, Job: "job-000001"}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tracer.Span(nil, csi.Spark, csi.DataPlane, "case")
		sp.Child(csi.HDFS, csi.DataPlane, "write").Set("path", "/warehouse").Fail(nil).End()
		sp.End()
		reg.Counter("crossd_cache_hits_total").Inc()
		reg.Histogram(obs.MetricStageDurationMs, nil, "stage", obs.StageRun).
			ObserveExemplar(1.5, sp.TraceID())
		rec.Record(ev)
	})
	if allocs != 0 {
		t.Errorf("disabled observability hot path allocates: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkControlPlaneAPIDesign is the §6.3 ablation: the same
// impatient client behaviour against YARN's imperative container API
// (storms) versus a declarative replica API (idempotent re-applies).
func BenchmarkControlPlaneAPIDesign(b *testing.B) {
	b.Run("imperative-yarn", func(b *testing.B) {
		var r replay.StormResult
		for i := 0; i < b.N; i++ {
			r = replay.ContainerStorm(replay.StormOptions{Mode: flinksim.ModeBuggy})
		}
		b.ReportMetric(r.AmplificationX, "work_amplification_x")
	})
	b.Run("declarative-k8slike", func(b *testing.B) {
		var started int64
		for i := 0; i < b.N; i++ {
			sim := vclock.New()
			c := k8slike.New(sim, k8slike.Options{StartupLatencyMs: 150, ReconcileEveryMs: 100})
			client := k8slike.NewImpatientClient(c, "job", k8slike.ReplicaSpec{Replicas: 20, MemoryMB: 1024})
			client.Start(sim, 500)
			sim.Run(60000)
			c.Stop()
			started = c.Stats().Started
		}
		b.ReportMetric(float64(started)/20.0, "work_amplification_x")
	})
}
