// Data-plane example: the SPARK-27239 file-size discrepancy of
// Figure 2, its Figure 4 fix, and a live demonstration of three §8.2
// data-plane discrepancies on the Spark-Hive boundary.
package main

import (
	"fmt"
	"log"

	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/replay"
	"repro/internal/sparksim"
	"repro/internal/sqlval"
)

func main() {
	fmt.Println("SPARK-27239 (Figure 2): HDFS reports length -1 for compressed data;")
	fmt.Println("Spark asserts lengths are nonnegative.")
	if _, err := replay.CompressedFileRead(true, false); err != nil {
		fmt.Printf("  buggy:  %v\n", err)
	}
	if data, err := replay.CompressedFileRead(true, true); err == nil {
		fmt.Printf("  fixed (Figure 4, length >= -1): read %d bytes\n\n", len(data))
	}

	fs := hdfssim.New(nil)
	ms := hivesim.NewMetastore()
	spark := sparksim.NewSession(fs, ms)
	hive := hivesim.New(fs, ms)

	fmt.Println("Discrepancy #6 (HIVE-26528 model): Parquet INT96 timestamps.")
	mustSQL(spark, `CREATE TABLE events (ts TIMESTAMP) STORED AS PARQUET`)
	mustSQL(spark, `INSERT INTO events VALUES (TIMESTAMP '2021-06-15 12:00:00')`)
	sres := mustSQL(spark, `SELECT * FROM events`)
	hres, err := hive.Execute(`SELECT * FROM events`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Spark reads back: %s\n", sqlval.FormatTimestamp(sres.Rows[0][0].I))
	fmt.Printf("  Hive reads back:  %s  (writer zone ignored)\n\n", sqlval.FormatTimestamp(hres.Rows[0][0].I))

	fmt.Println("Discrepancy #8 (SPARK-40616 model): CHAR padding.")
	mustSQL(spark, `CREATE TABLE tags (c CHAR(4)) STORED AS ORC`)
	mustSQL(spark, `INSERT INTO tags VALUES ('ab')`)
	sres = mustSQL(spark, `SELECT * FROM tags`)
	hres, err = hive.Execute(`SELECT * FROM tags`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Spark reads back: %q\n", sres.Rows[0][0].S)
	fmt.Printf("  Hive reads back:  %q  (read-side padding)\n\n", hres.Rows[0][0].S)

	fmt.Println("Discrepancy #5 (SPARK-40439): decimal with excess precision.")
	mustSQL(spark, `CREATE TABLE amounts (d DECIMAL(5,2)) STORED AS PARQUET`)
	if _, err := spark.SQL(`INSERT INTO amounts VALUES (1.23456)`); err != nil {
		fmt.Printf("  SparkSQL insert:  %v\n", err)
	}
	if _, err := hive.Execute(`INSERT INTO amounts VALUES (1.23456)`); err == nil {
		hres, _ = hive.Execute(`SELECT * FROM amounts`)
		fmt.Printf("  HiveQL insert:    accepted silently, stored %s\n", hres.Rows[0][0])
	}
	fmt.Println("\n  The same data, the same table - different outcomes per interface:")
	fmt.Println("  exactly the inconsistent error behavior of Finding 15.")
}

func mustSQL(s *sparksim.Session, q string) *sparksim.Result {
	res, err := s.SQL(q)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
