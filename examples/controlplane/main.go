// Control-plane example: the FLINK-12342 container-request storm of
// Figure 1 and its Figure 5 fix ladder, plus a parameter sweep showing
// where the synchronous assumption breaks — the crossover between the
// client's heartbeat interval and YARN's allocation latency.
package main

import (
	"fmt"

	"repro/internal/flinksim"
	"repro/internal/replay"
)

func main() {
	fmt.Println("FLINK-12342: Flink asks YARN for C containers every 500ms.")
	fmt.Println("When allocation latency x C exceeds the interval, the client")
	fmt.Println("re-requests the pending containers plus C — a storm (Figure 1).")
	fmt.Println()

	fmt.Println("Fix ladder (Figure 5):")
	for _, r := range replay.FixLadder() {
		fmt.Println("  " + r.String())
	}

	fmt.Println()
	fmt.Println("Where the assumption breaks: amplification vs allocation latency")
	fmt.Println("(buggy client, C=20, heartbeat 500ms)")
	fmt.Printf("  %-14s %-14s %s\n", "latency(ms)", "requested", "amplification")
	for _, latency := range []int64{5, 10, 25, 50, 100, 200, 400} {
		r := replay.ContainerStorm(replay.StormOptions{
			Mode:    flinksim.ModeBuggy,
			AllocMs: latency,
		})
		fmt.Printf("  %-14d %-14d %.1fx\n", latency, r.TotalRequested, r.AmplificationX)
	}
	fmt.Println()
	fmt.Println("Below the crossover (latency*C < interval) the sync assumption")
	fmt.Println("holds and the buggy client behaves; past it, requests explode.")
}
