// Quickstart: stand up a co-deployed Spark+Hive pair, write a value
// through one interface, read it back through the others, and run the
// cross-testing framework over a handful of inputs.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/serde"
	"repro/internal/sparksim"
	"repro/internal/sqlval"
)

func main() {
	// One warehouse and one metastore shared by both engines — the
	// co-deployment of Figure 6.
	fs := hdfssim.New(nil)
	ms := hivesim.NewMetastore()
	spark := sparksim.NewSession(fs, ms)
	hive := hivesim.New(fs, ms)

	// Write through SparkSQL.
	must(spark.SQL(`CREATE TABLE users (Id INT, Name STRING) STORED AS PARQUET`))
	must(spark.SQL(`INSERT INTO users VALUES (1, 'ada'), (2, 'grace')`))

	// Read back through all three interfaces.
	res := must(spark.SQL(`SELECT * FROM users WHERE Id >= 2`))
	fmt.Printf("SparkSQL : %v\n", res.Rows)

	df, err := spark.Table("users")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DataFrame: %v\n", df.Rows)

	hres, err := hive.Execute(`SELECT * FROM users`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HiveQL   : %v (columns %v)\n", hres.Rows, hres.Columns)

	// Write through the DataFrame API as well.
	schema := serde.Schema{Columns: []serde.Column{
		{Name: "Id", Type: sqlval.Int},
		{Name: "Name", Type: sqlval.String},
	}}
	frame, err := spark.CreateDataFrame(schema, []sqlval.Row{
		{sqlval.IntVal(sqlval.Int, 3), sqlval.StringVal("edsger")},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := frame.SaveAsTable("users", "parquet"); err != nil {
		log.Fatal(err)
	}
	res = must(spark.SQL(`SELECT * FROM users`))
	fmt.Printf("After DataFrame append: %d rows\n\n", len(res.Rows))

	// Now the cross-test: a few inputs through every plan and format.
	corpus, err := core.BuildCorpus()
	if err != nil {
		log.Fatal(err)
	}
	var subset []core.Input
	for _, in := range corpus {
		if strings.HasPrefix(in.Name, "tinyint_small") ||
			strings.HasPrefix(in.Name, "char_short") ||
			strings.HasPrefix(in.Name, "decimal_excess") {
			subset = append(subset, in)
		}
	}
	run, err := core.Run(subset, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cross-tested %d inputs -> %d oracle failures, %d distinct discrepancies:\n",
		len(subset), len(run.Failures), len(run.Report.Found))
	for _, found := range run.Report.Found {
		label := found.Signature
		if found.Known != nil {
			label = fmt.Sprintf("#%d %s — %s", found.Known.Number, found.Known.JIRA, found.Known.Title)
		}
		fmt.Printf("  %s\n", label)
	}
}

func must(res *sparksim.Result, err error) *sparksim.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
