// Fault-tolerance example: the two CSI-specific reliability directions
// the paper proposes, running live.
//
// First, the §1 GCP incident — a monitoring × quota interaction — under
// the buggy policy, the emergency mitigation, and the two fixes.
// Second, §5.2/§10 interaction redundancy: cross-system interactions
// are single points of failure despite redundant components and data,
// so a redundant reader that can fall back to (or vote across) sibling
// interfaces masks CSI failures that would otherwise take the consumer
// down.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/quotasim"
	"repro/internal/redundancy"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

func main() {
	fmt.Println("Part 1 — the GCP User-ID incident (§1)")
	fmt.Println("A deregistered monitor reports usage 0; the quota system treats")
	fmt.Println("zero as expected load and shrinks the quota under the service.")
	fmt.Println()
	scenarios := []struct {
		label         string
		policy        quotasim.QuotaPolicy
		fixedProtocol bool
	}{
		{"buggy: trust every report", quotasim.PolicyTrustReports, false},
		{"mitigation: grace period before enforcement", quotasim.PolicyGracePeriod, false},
		{"consumer fix: ignore unregistered monitors", quotasim.PolicyIgnoreUnregistered, false},
		{"producer fix: deregistered monitors stop reporting", quotasim.PolicyTrustReports, true},
	}
	for _, sc := range scenarios {
		r := quotasim.RunIncident(sc.policy, sc.fixedProtocol)
		outcome := "no outage"
		if r.OutageStartMs >= 0 {
			outcome = fmt.Sprintf("OUTAGE for %d min, quota collapsed to %.0f", r.OutageMinutes, r.LowestQuota)
		}
		fmt.Printf("  %-52s %s\n", sc.label, outcome)
	}

	fmt.Println()
	fmt.Println("Part 2 — interaction redundancy (§5.2 / §10)")
	d := core.NewDeployment()
	dec, _ := sqlval.ParseDecimal("12.34")
	schema := serde.Schema{Columns: []serde.Column{{Name: "amt", Type: sqlval.DecimalType(10, 2)}}}
	df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(dec, 10)}})
	if err != nil {
		log.Fatal(err)
	}
	if err := df.SaveAsTable("amounts", "parquet"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("A DataFrame-written decimal table carries Spark's legacy binary")
	fmt.Println("encoding (SPARK-39158); a Hive-first consumer fails — unless it")
	fmt.Println("can fail over to a sibling interface:")
	res, err := redundancy.ReadWithFailover(d, "amounts", core.HiveQL, core.SparkSQL, core.DataFrame)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Attempts {
		fmt.Printf("  %s\n", a)
	}
	fmt.Printf("  -> served by %s, %d interface failure(s) masked\n\n", res.Served, res.MaskedFailures)

	fmt.Println("Voting turns a silent discrepancy into an observable signal:")
	if _, err := d.Spark.SQL(`CREATE TABLE tags (c CHAR(4)) STORED AS ORC`); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Spark.SQL(`INSERT INTO tags VALUES ('ab')`); err != nil {
		log.Fatal(err)
	}
	vres, err := redundancy.ReadWithVoting(d, "tags")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  majority value: %s (served by %s)\n", vres.Value, vres.Served)
	for _, dis := range vres.Disagreements {
		fmt.Printf("  disagreement:   %s\n", dis)
	}

	fmt.Println()
	fmt.Println("Coverage on the DataFrame-Avro workload (SPARK-39075 class):")
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		log.Fatal(err)
	}
	report, err := redundancy.MeasureFailoverCoverage(inputs, core.DataFrame, core.DataFrame, "avro")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", report)
}
