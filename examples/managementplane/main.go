// Management-plane example: the FLINK-19141 scheduler-configuration
// mismatch of Figure 3, plus the cross-system configuration plane with
// provenance tracing — the silent-overwrite (SPARK-16901) and
// ignored-key (SPARK-10181) patterns of Table 7, and the FLINK-887
// monitoring kill.
package main

import (
	"fmt"

	"repro/internal/confplane"
	"repro/internal/flinksim"
	"repro/internal/replay"
	"repro/internal/yarnsim"
)

func main() {
	fmt.Println("FLINK-19141 (Figure 3): the two YARN schedulers read different")
	fmt.Println("configuration keys with inconsistent semantics.")
	tuned := map[string]string{yarnsim.KeyMinAllocMB: "128"}
	if err := replay.SchedulerMismatch("capacity", tuned); err == nil {
		fmt.Println("  capacity scheduler: allocation OK with minimum-allocation-mb=128")
	}
	if err := replay.SchedulerMismatch("fair", tuned); err != nil {
		fmt.Printf("  fair scheduler:     %v\n\n", err)
	}

	fmt.Println("The configuration plane with provenance (the §6.2.1 mitigation):")
	plane := confplane.New()
	plane.AddLayer("yarn-site.xml", map[string]string{
		"yarn.scheduler.minimum-allocation-mb": "128",
		"yarn.resourcemanager.scheduler.class": "capacity",
	})
	plane.AddLayer("hive-site.xml", map[string]string{
		"hive.metastore.uris": "thrift://hive-prod:9083",
	})
	plane.AddLayer("spark-defaults.conf", map[string]string{
		"spark.yarn.keytab":    "/etc/krb/svc.keytab",
		"spark.yarn.principal": "svc@REALM",
	})
	// The SPARK-16901 pattern: a programmatic merge silently overwrites
	// the Hive setting.
	plane.AddLayer("spark-hadoop-merge", map[string]string{
		"hive.metastore.uris": "thrift://localhost:9083",
	})

	// The systems read their keys; the Kerberos pair is never consulted
	// (the SPARK-10181 pattern).
	plane.Get("yarn-capacity-scheduler", "yarn.scheduler.minimum-allocation-mb")
	plane.Get("yarn-rm", "yarn.resourcemanager.scheduler.class")
	plane.Get("spark-hive-client", "hive.metastore.uris")

	fmt.Println("\nSilent cross-layer overwrites detected:")
	for _, o := range plane.Overwrites() {
		fmt.Printf("  %s\n", o)
	}
	fmt.Println("\nConfigured but never read (ignored keys):")
	for _, k := range plane.IgnoredKeys() {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("\nFull provenance trace:")
	fmt.Print(plane.Trace("hive.metastore.uris"))

	fmt.Println("\nFLINK-887: monitoring data drives a critical action (Finding 9).")
	if killed, reason := replay.PmemKill(flinksim.SizingNoHeadroom); killed {
		fmt.Printf("  %s\n", reason)
	}
	if killed, _ := replay.PmemKill(flinksim.SizingWithCutoff); !killed {
		fmt.Println("  With the memory cutoff, the JobManager survives the monitor.")
	}
}
