package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/obs"
)

// systemCrossd tags the service's own spans: the scheduler pipeline is
// a control-plane hop above the per-case harness spans.
const systemCrossd csi.System = "crossd"

// Admission errors. The HTTP layer maps ErrQueueFull and ErrThrottled
// to 429 + Retry-After and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrThrottled = errors.New("serve: admission rate exceeded, retry later")
	ErrDraining  = errors.New("serve: server is draining, not accepting jobs")
)

// Runner executes one job spec under a context. *Executor is the
// production implementation; a cluster coordinator is another (it
// "executes" a large job by splitting it across worker nodes).
type Runner interface {
	Execute(ctx context.Context, spec JobSpec, onFailure func(core.Failure)) (*JobResult, error)
}

// PeerCache is the distributed cache tier a clustered scheduler probes
// before executing: Fetch asks the peers that could own the key for a
// finished result (marshaled JobResult bytes), Offer pushes a locally
// computed result to the key's owner. Both are best-effort — a tier
// that is down degrades to local execution, never to an error.
type PeerCache interface {
	Fetch(ctx context.Context, key string) ([]byte, bool)
	Offer(key string, data []byte)
}

// Job is one admitted submission. All mutable state is guarded by mu;
// Done is closed exactly once when the job reaches a terminal state.
type Job struct {
	ID   string
	Key  string
	Spec JobSpec

	// span is the job's root span (nil when tracing is off); trace is
	// its hex ID, stamped onto every stream event and stage exemplar.
	span  *obs.Span
	trace string

	mu       sync.Mutex
	state    string
	err      string
	cacheHit bool
	queued   time.Time
	started  time.Time
	finished time.Time
	result   []byte // marshaled JobResult, exactly what /result serves

	events []StreamEvent      // full history, so late stream subscribers replay
	subs   []chan StreamEvent // live subscribers

	cancel context.CancelFunc
	done   chan struct{}
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		Key:      j.Key,
		Kind:     j.Spec.Kind,
		State:    j.state,
		CacheHit: j.cacheHit,
		Error:    j.err,
	}
	if !j.queued.IsZero() {
		st.Queued = j.queued.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		from := j.started
		if from.IsZero() {
			from = j.queued
		}
		st.Duration = float64(j.finished.Sub(from)) / float64(time.Millisecond)
	}
	return st
}

// Result returns the marshaled JobResult bytes once the job is done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe returns the event history so far plus a channel carrying
// subsequent events; the channel is closed after the terminal event.
// A terminal job returns its full history and a closed channel.
func (j *Job) Subscribe() ([]StreamEvent, <-chan StreamEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history := append([]StreamEvent(nil), j.events...)
	ch := make(chan StreamEvent, 64)
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		close(ch)
		return history, ch
	}
	j.subs = append(j.subs, ch)
	return history, ch
}

// emit appends an event and fans it out. Slow subscribers lose events
// (non-blocking send) rather than stalling the worker; the history
// replay on subscribe keeps the NDJSON stream complete for readers
// that connect after the fact.
func (j *Job) emit(ev StreamEvent) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	ev.Job = j.ID
	ev.Trace = j.trace
	j.events = append(j.events, ev)
	subs := append([]chan StreamEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (j *Job) closeSubs() {
	j.mu.Lock()
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

// SchedulerOptions configure the worker pool.
type SchedulerOptions struct {
	// Workers is the number of concurrent job executors (minimum 1).
	// Each job additionally fans out over its own Parallel harness
	// workers, so keep Workers modest.
	Workers int
	// QueueDepth bounds the number of admitted-but-not-started jobs;
	// submissions past it are rejected with ErrQueueFull (the 429
	// backpressure signal). Minimum 1.
	QueueDepth int
	// JobTimeout bounds each job's execution (0 = none).
	JobTimeout time.Duration
	// AdmitRatePerSec, when > 0, enables token-bucket admission control
	// ahead of the cache probe: sustained submission above this rate is
	// rejected with ErrThrottled before the scheduler does any cache or
	// disk work. The queue alone bounds how much work waits; the bucket
	// bounds how fast work arrives — the difference matters under a
	// retry storm, where a freshly-drained queue refills instantly.
	AdmitRatePerSec float64
	// AdmitBurst is the bucket size (defaults to AdmitRatePerSec).
	AdmitBurst float64
	// Cache is the content-addressed result cache (required).
	Cache *Cache
	// Executor runs the jobs (required; shared across workers). The
	// production implementation is *Executor; tests substitute
	// deterministic runners.
	Executor Runner
	// Metrics, when non-nil, receives the service-level gauges and
	// counters (queue depth, in-flight jobs, cache hit ratio, ...).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one root span per job; its ID is
	// the trace_id carried by stream events and stage-histogram
	// exemplars. Long-running deployments should SetCap it.
	Tracer *obs.Tracer
	// Recorder, when non-nil, is the flight recorder fed with
	// admission, cache, drain, and oracle events (/debug/events).
	Recorder *obs.Recorder
	// Peers, when non-nil, is the distributed cache tier: after a local
	// cache miss, a worker probes the key's peer owners before running
	// anything, and offers locally computed results back to the owner.
	// This is what makes a resharded resubmission free cluster-wide —
	// the sub-job keys are location-independent content addresses.
	Peers PeerCache
}

// Scheduler owns the job table and the bounded worker pool.
type Scheduler struct {
	opts SchedulerOptions

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job // by ID
	byKey    map[string]*Job // queued/running jobs, for coalescing
	queue    chan *Job

	// Admission token bucket (guarded by mu; active when AdmitRatePerSec > 0).
	admitTokens float64
	admitLast   time.Time

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup
}

// NewScheduler starts the worker pool.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:       opts,
		jobs:       map[string]*Job{},
		byKey:      map[string]*Job{},
		queue:      make(chan *Job, opts.QueueDepth),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit admits a job. The three fast paths never execute anything:
// an invalid spec is rejected, a cached key is answered from the cache
// (as an immediately-done job), and a spec equal to a queued or
// running job coalesces onto it. Otherwise the job is enqueued, or
// rejected with ErrQueueFull when the queue is at depth.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	key, err := spec.CacheKey()
	if err != nil {
		s.count(obs.MetricJobsRejected, "reason", "invalid")
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobRejected, Detail: "invalid: " + err.Error()})
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.count(obs.MetricJobsRejected, "reason", "draining")
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobRejected, Key: key, Detail: "draining"})
		return nil, ErrDraining
	}
	if live, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		s.record(obs.MetricJobsSubmitted, "kind", spec.Kind)
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobCoalesced, Job: live.ID, Key: key, Trace: live.trace})
		return live, nil
	}
	// Rate admission after coalescing (a coalesced submission costs
	// nothing) but before the cache probe (shedding must stay cheaper
	// than the work it sheds, and the probe can touch disk).
	if !s.admitLocked(time.Now()) {
		s.mu.Unlock()
		s.count(obs.MetricJobsRejected, "reason", "throttled")
		s.count(obs.MetricAdmissionRejections, "reason", "throttled")
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobRejected, Key: key, Detail: "throttled"})
		return nil, ErrThrottled
	}
	// Cache probe under the admission lock: the lookup is memory/disk
	// only and keeps two racing submissions of a cold key from both
	// executing.
	probeStart := time.Now()
	data, hit := s.opts.Cache.Get(key)
	probe := time.Since(probeStart)
	if hit {
		job := s.newJobLocked(spec, key)
		job.cacheHit = true
		job.state = StateDone
		job.finished = time.Now()
		job.result = data
		close(job.done)
		s.mu.Unlock()
		s.record(obs.MetricJobsSubmitted, "kind", spec.Kind)
		s.count(obs.MetricCacheHits)
		s.updateCacheGauges()
		s.stage(obs.StageCacheProbe, probe, job.trace)
		s.opts.Recorder.Record(obs.Event{Type: obs.EvCacheHit, Job: job.ID, Key: key, Trace: job.trace})
		job.span.Set("cache", "hit").End()
		job.emit(StreamEvent{Type: StateDone, CacheHit: true, ReportSHA: reportSHA(data)})
		job.closeSubs()
		return job, nil
	}
	job := s.newJobLocked(spec, key) // state starts queued
	// Register for coalescing before the send: a fast worker may pick
	// the job up (and clean byKey) the instant it lands on the queue.
	s.byKey[key] = job
	select {
	case s.queue <- job:
	default:
		delete(s.jobs, job.ID)
		delete(s.byKey, key)
		depth := len(s.queue)
		s.mu.Unlock()
		s.count(obs.MetricJobsRejected, "reason", "queue_full")
		s.count(obs.MetricAdmissionRejections, "reason", "queue_full")
		// Keep the gauge honest at the moment clients are being told to
		// back off: rejection time is exactly when dashboards look at it.
		s.gauge(obs.MetricQueueDepth, float64(depth))
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobRejected, Key: key, Trace: job.trace, Detail: "queue_full"})
		job.span.Fail(ErrQueueFull).End()
		return nil, ErrQueueFull
	}
	depth := len(s.queue)
	s.mu.Unlock()
	s.record(obs.MetricJobsSubmitted, "kind", spec.Kind)
	s.count(obs.MetricCacheMisses)
	s.updateCacheGauges()
	s.stage(obs.StageCacheProbe, probe, job.trace)
	s.gauge(obs.MetricQueueDepth, float64(depth))
	s.opts.Recorder.Record(obs.Event{Type: obs.EvCacheMiss, Job: job.ID, Key: key, Trace: job.trace})
	s.opts.Recorder.Record(obs.Event{Type: obs.EvJobAdmitted, Job: job.ID, Key: key, Trace: job.trace, Detail: spec.Kind})
	return job, nil
}

func (s *Scheduler) newJobLocked(spec JobSpec, key string) *Job {
	s.seq++
	job := &Job{
		ID:     fmt.Sprintf("job-%06d-%s", s.seq, key[:8]),
		Key:    key,
		Spec:   spec,
		state:  StateQueued,
		queued: time.Now(),
		done:   make(chan struct{}),
	}
	job.span = s.opts.Tracer.Span(nil, systemCrossd, csi.ControlPlane, "job/"+spec.Kind)
	job.span.Set("job", job.ID).Set("key", key)
	job.trace = job.span.TraceID()
	s.jobs[job.ID] = job
	return job
}

// admitLocked spends one admission token, refilling the bucket from
// elapsed wall time first. Caller holds s.mu. Always true when rate
// admission is off.
func (s *Scheduler) admitLocked(now time.Time) bool {
	rate := s.opts.AdmitRatePerSec
	if rate <= 0 {
		return true
	}
	burst := s.opts.AdmitBurst
	if burst <= 0 {
		burst = rate
	}
	if s.admitLast.IsZero() {
		s.admitTokens = burst
	} else {
		s.admitTokens += now.Sub(s.admitLast).Seconds() * rate
		if s.admitTokens > burst {
			s.admitTokens = burst
		}
	}
	s.admitLast = now
	if s.admitTokens < 1 {
		return false
	}
	s.admitTokens--
	return true
}

// RetryAfterSeconds derives the 429 backpressure hint from the current
// queue depth: roughly how long the backlog ahead of a retry needs to
// make room, at about one second of service per queued job per worker,
// clamped to [1, 60]. A full queue therefore tells clients to wait
// longer than a nearly-empty one — the signal a well-behaved retry
// policy (and the loadgen engine's honoring policies) feeds into its
// backoff floor.
func (s *Scheduler) RetryAfterSeconds() int {
	workers := s.opts.Workers
	if workers < 1 {
		workers = 1
	}
	secs := 1 + len(s.queue)/workers
	if secs > 60 {
		secs = 60
	}
	return secs
}

// Job looks a job up by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs, newest first.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Scheduler) runJob(job *Job) {
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if s.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	wait := job.started.Sub(job.queued)
	job.mu.Unlock()
	s.gauge(obs.MetricQueueDepth, float64(len(s.queue)))
	s.addGauge(obs.MetricInflightJobs, 1)
	s.stage(obs.StageQueueWait, wait, job.trace)
	s.opts.Recorder.Record(obs.Event{Type: obs.EvJobStarted, Job: job.ID, Key: job.Key, Trace: job.trace})

	// Distributed cache tier: after the local miss that queued this
	// job, ask the key's peer owners before executing anything. The
	// probe runs outside every lock — it is network I/O.
	if s.opts.Peers != nil {
		probeStart := time.Now()
		data, ok := s.opts.Peers.Fetch(ctx, job.Key)
		s.stage(obs.StagePeerProbe, time.Since(probeStart), job.trace)
		if ok && validPeerResult(job.Key, data) {
			s.count(obs.MetricPeerCacheHits)
			s.opts.Recorder.Record(obs.Event{Type: obs.EvPeerCacheHit, Job: job.ID, Key: job.Key, Trace: job.trace})
			s.finishFromPeer(job, data)
			return
		}
		s.count(obs.MetricPeerCacheMisses)
		s.opts.Recorder.Record(obs.Event{Type: obs.EvPeerCacheMiss, Job: job.ID, Key: job.Key, Trace: job.trace})
	}

	runSpan := job.span.Child(systemCrossd, csi.ControlPlane, "run")
	runStart := time.Now()
	res, err := s.opts.Executor.Execute(ctx, job.Spec, func(f core.Failure) {
		ev := StreamEvent{
			Type:      "failure",
			Oracle:    f.Oracle.String(),
			Signature: f.Signature,
			Detail:    f.Detail,
		}
		if f.Case != nil {
			ev.Plan = f.Case.Plan.Name()
			ev.Format = f.Case.Format
			if f.Case.Input != nil {
				ev.Input = f.Case.Input.Name
			}
		}
		s.opts.Recorder.Record(obs.Event{Type: obs.EvOracleFailure, Job: job.ID, Trace: job.trace, Detail: f.Signature})
		job.emit(ev)
	})
	runSpan.Fail(err).End()
	s.stage(obs.StageRun, time.Since(runStart), job.trace)

	state := StateDone
	var final StreamEvent
	var data []byte
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		state = StateCancelled
		final = StreamEvent{Type: StateCancelled, Error: err.Error()}
	case err != nil:
		state = StateFailed
		final = StreamEvent{Type: StateFailed, Error: err.Error()}
	default:
		encStart := time.Now()
		data, err = marshalResult(res)
		if err != nil {
			state = StateFailed
			final = StreamEvent{Type: StateFailed, Error: err.Error()}
		} else {
			// Cache before publishing: once a result is visible, every
			// identical submission must be able to hit.
			final = StreamEvent{Type: StateDone, ReportSHA: res.ReportSHA}
			if cerr := s.opts.Cache.Put(job.Key, data); cerr != nil {
				final.Error = cerr.Error() // disk spill failure is non-fatal
			} else if s.opts.Peers != nil {
				// Write-through to the key's owner so any node can serve
				// the next resubmission without re-executing.
				s.opts.Peers.Offer(job.Key, data)
			}
		}
		s.stage(obs.StageEncode, time.Since(encStart), job.trace)
	}

	job.mu.Lock()
	job.state = state
	job.finished = time.Now()
	job.result = data
	if state != StateDone && err != nil {
		job.err = err.Error()
	}
	dur := job.finished.Sub(job.started)
	job.mu.Unlock()

	s.mu.Lock()
	if s.byKey[job.Key] == job {
		delete(s.byKey, job.Key)
	}
	s.mu.Unlock()

	job.emit(final)
	job.closeSubs()
	close(job.done)
	s.addGauge(obs.MetricInflightJobs, -1)
	s.count(obs.MetricJobsFinished, "state", state)
	if m := s.opts.Metrics; m != nil {
		m.Histogram(obs.MetricJobDurationMs, nil, "kind", job.Spec.Kind).
			ObserveExemplar(float64(dur)/float64(time.Millisecond), job.trace)
	}
	switch state {
	case StateDone:
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobDone, Job: job.ID, Key: job.Key, Trace: job.trace})
	case StateFailed:
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobFailed, Job: job.ID, Key: job.Key, Trace: job.trace, Detail: final.Error})
	case StateCancelled:
		s.opts.Recorder.Record(obs.Event{Type: obs.EvJobCancelled, Job: job.ID, Key: job.Key, Trace: job.trace, Detail: final.Error})
	}
	if state != StateDone && err != nil {
		job.span.Fail(err)
	}
	job.span.Set("state", state).End()
}

// finishFromPeer completes a job whose result arrived from the
// distributed cache tier: stored locally, published, and counted as a
// finished (cache-hit) job — without one case executing.
func (s *Scheduler) finishFromPeer(job *Job, data []byte) {
	final := StreamEvent{Type: StateDone, CacheHit: true, ReportSHA: reportSHA(data)}
	if cerr := s.opts.Cache.Put(job.Key, data); cerr != nil {
		final.Error = cerr.Error() // disk spill failure is non-fatal
	}
	job.mu.Lock()
	job.state = StateDone
	job.cacheHit = true
	job.finished = time.Now()
	job.result = data
	dur := job.finished.Sub(job.started)
	job.mu.Unlock()

	s.mu.Lock()
	if s.byKey[job.Key] == job {
		delete(s.byKey, job.Key)
	}
	s.mu.Unlock()

	job.emit(final)
	job.closeSubs()
	close(job.done)
	s.addGauge(obs.MetricInflightJobs, -1)
	s.count(obs.MetricJobsFinished, "state", StateDone)
	if m := s.opts.Metrics; m != nil {
		m.Histogram(obs.MetricJobDurationMs, nil, "kind", job.Spec.Kind).
			ObserveExemplar(float64(dur)/float64(time.Millisecond), job.trace)
	}
	s.opts.Recorder.Record(obs.Event{Type: obs.EvJobDone, Job: job.ID, Key: job.Key, Trace: job.trace})
	job.span.Set("cache", "peer").Set("state", StateDone).End()
}

// validPeerResult guards against a confused or stale peer: the bytes
// must decode as a JobResult whose content address matches the key we
// asked for. Anything else is treated as a miss.
func validPeerResult(key string, data []byte) bool {
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return false
	}
	return res.Key == key
}

// Drain stops admission, lets queued and in-flight jobs finish, and
// returns when the pool is idle. If ctx expires first, the remaining
// jobs are cancelled (they terminate as StateCancelled) and Drain
// waits for the workers to exit. Idempotent.
func (s *Scheduler) Drain(ctx context.Context) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	close(s.queue) // safe: all sends hold mu and re-check draining
	s.mu.Unlock()
	s.opts.Recorder.Record(obs.Event{Type: obs.EvDrainBegin})

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		s.cancelBase()
		<-idle
	}
	s.cancelBase()
	s.opts.Recorder.Record(obs.Event{Type: obs.EvDrainEnd})
}

// marshalResult produces the canonical result bytes (stable field
// order, trailing newline) served by /result and stored in the cache.
func marshalResult(res *JobResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// reportSHA recovers the report hash from marshaled result bytes for
// the cache-hit done event.
func reportSHA(data []byte) string {
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return ""
	}
	return res.ReportSHA
}

// metric helpers: all tolerate a nil registry.
func (s *Scheduler) count(name string, labels ...string) { s.record(name, labels...) }
func (s *Scheduler) record(name string, labels ...string) {
	if s.opts.Metrics != nil {
		s.opts.Metrics.Counter(name, labels...).Inc()
	}
}

// stage records one pipeline-stage latency with the job's trace ID as
// the bucket exemplar, joining the histogram back to the span chain.
func (s *Scheduler) stage(stage string, d time.Duration, trace string) {
	if s.opts.Metrics == nil {
		return
	}
	s.opts.Metrics.Histogram(obs.MetricStageDurationMs, nil, "stage", stage).
		ObserveExemplar(float64(d)/float64(time.Millisecond), trace)
}

func (s *Scheduler) gauge(name string, v float64) {
	if s.opts.Metrics != nil {
		s.opts.Metrics.Gauge(name).Set(v)
	}
}

// addGauge adjusts a gauge by delta under the scheduler lock (obs
// gauges are set-only, so read-modify-write needs external ordering).
func (s *Scheduler) addGauge(name string, delta float64) {
	if s.opts.Metrics == nil {
		return
	}
	s.mu.Lock()
	g := s.opts.Metrics.Gauge(name)
	g.Set(g.Value() + delta)
	s.mu.Unlock()
}

func (s *Scheduler) updateCacheGauges() {
	if s.opts.Metrics == nil {
		return
	}
	s.opts.Metrics.SetHitRatio()
}
