package serve

import (
	"context"
	"testing"
	"time"
)

// benchSpec is heavy enough that cold execution dominates every cache
// bookkeeping cost.
func benchSpec() JobSpec {
	return JobSpec{Kind: KindFuzz, Seed: 17, N: 2000, Parallel: 4}
}

func benchScheduler(b *testing.B) *Scheduler {
	b.Helper()
	c, err := NewCache(16, "")
	if err != nil {
		b.Fatal(err)
	}
	s := NewScheduler(SchedulerOptions{Workers: 2, QueueDepth: 8, Cache: c, Executor: &Executor{}})
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func submitAndWait(b *testing.B, s *Scheduler, spec JobSpec) *Job {
	b.Helper()
	job, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(5 * time.Minute):
		b.Fatal("job did not finish")
	}
	if st := job.Status(); st.State != StateDone {
		b.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	return job
}

// BenchmarkSubmitCold measures a full fuzz-campaign execution through
// the scheduler; each iteration uses a distinct seed so the cache
// never hits.
func BenchmarkSubmitCold(b *testing.B) {
	s := benchScheduler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := benchSpec()
		spec.Seed = uint64(1000 + i) // distinct key per iteration
		submitAndWait(b, s, spec)
	}
}

// BenchmarkSubmitCached measures resubmission of an already-cached
// spec: content-address lookup plus job bookkeeping, no execution.
func BenchmarkSubmitCached(b *testing.B) {
	s := benchScheduler(b)
	submitAndWait(b, s, benchSpec()) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitAndWait(b, s, benchSpec())
	}
}

// TestCachedAtLeast100xFaster pins the acceptance criterion with a
// generous margin: serving a cached report must be at least 100x
// faster than executing the campaign.
func TestCachedAtLeast100xFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	c, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestScheduler(t, SchedulerOptions{Cache: c})
	spec := benchSpec()

	coldStart := time.Now()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	cold := time.Since(coldStart)

	const warmRuns = 20
	warmStart := time.Now()
	for i := 0; i < warmRuns; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if st := j.Status(); !st.CacheHit {
			t.Fatal("warm submission missed the cache")
		}
	}
	warm := time.Since(warmStart) / warmRuns

	t.Logf("cold=%v warm=%v ratio=%.0fx", cold, warm, float64(cold)/float64(warm))
	if warm*100 > cold {
		t.Errorf("cached path only %.1fx faster than cold (cold=%v, warm avg=%v); want >=100x",
			float64(cold)/float64(warm), cold, warm)
	}
}
