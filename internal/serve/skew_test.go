package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/versions"
)

// smallSkewSpec is a cheap skew job: a handful of CHAR corpus inputs
// over one upgrade pair still exercises the full skew path (four
// engines, both probes, the skew oracle).
func smallSkewSpec() JobSpec {
	return JobSpec{
		Kind:        KindSkew,
		InputPrefix: "char",
		Pairs:       []string{"2.3.0/2.3.9->3.2.1/3.1.2"},
		Parallel:    2,
	}
}

// The skew job end to end: submit, wait, and the result carries the
// machine-readable matrix; an identical resubmission is a cache hit
// with byte-identical bytes and no re-execution.
func TestSkewJobEndToEnd(t *testing.T) {
	s, exec := newTestScheduler(t, SchedulerOptions{})
	job, err := s.Submit(smallSkewSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	first, ok := job.Result()
	if !ok {
		t.Fatalf("skew job produced no result: %+v", job.Status())
	}
	var res JobResult
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("result is not valid JSON: %v", err)
	}
	if res.Skew == nil {
		t.Fatalf("skew job produced no skew payload: %+v", res)
	}
	if len(res.Skew.Cells) != 1 {
		t.Fatalf("skew matrix has %d cells, want 1", len(res.Skew.Cells))
	}
	cell := res.Skew.Cells[0]
	if cell.Writer != "2.3.0/2.3.9" || cell.Reader != "3.2.1/3.1.2" {
		t.Errorf("cell pair = %s->%s", cell.Writer, cell.Reader)
	}
	// The CHAR inputs cross the SPARK-33480 boundary, so the upgrade
	// pair must confirm at least one skew discrepancy.
	if cell.SkewFailures == 0 || len(cell.SkewIDs) == 0 {
		t.Errorf("upgrade pair over CHAR inputs found no skew: %+v", cell)
	}
	again, err := s.Submit(smallSkewSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again)
	if !again.Status().CacheHit {
		t.Error("identical skew resubmission was not a cache hit")
	}
	second, _ := again.Result()
	if !bytes.Equal(first, second) {
		t.Error("cached skew result differs from the original")
	}
	if exec.Executions() != 1 {
		t.Errorf("executor ran %d times, want 1", exec.Executions())
	}
}

// Unknown version profiles must be rejected at admission — at Validate,
// at CacheKey, and at Submit — never silently normalized to a default
// stack. Normalizing would alias two different deployments under one
// cache key and serve one's report for the other.
func TestSkewSpecRejectsUnknownProfiles(t *testing.T) {
	s, exec := newTestScheduler(t, SchedulerOptions{})
	for _, bad := range []JobSpec{
		{Kind: KindSkew, Pairs: []string{"1.6.0/3.1.2->3.2.1/3.1.2"}},
		{Kind: KindSkew, Pairs: []string{"3.2.1/3.1.2->3.2.1/9.9.9"}},
		{Kind: KindSkew, Pairs: []string{"3.2.1/3.1.2", "latest/3.1.2"}},
		{Kind: KindSkew, Pairs: []string{"not-a-pair"}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted unknown profile in %v", bad.Pairs)
		}
		if _, err := bad.CacheKey(); err == nil {
			t.Errorf("CacheKey keyed unknown profile in %v", bad.Pairs)
		}
		if _, err := s.Submit(bad); err == nil {
			t.Errorf("Submit admitted unknown profile in %v", bad.Pairs)
		}
	}
	if exec.Executions() != 0 {
		t.Error("invalid skew specs reached the executor")
	}
}

// Skew cache keys: the version pairs are part of the content address
// (order included — cell order is pair order), the empty pair list is
// the default matrix spelled out, and Parallel stays excluded.
func TestSkewCacheKeySemantics(t *testing.T) {
	base := JobSpec{Kind: KindSkew, Pairs: []string{"3.2.1/3.1.2", "2.3.0/2.3.9->3.2.1/3.1.2"}}
	k1, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Parallel = 8
	if k2, _ := p.CacheKey(); k2 != k1 {
		t.Error("Parallel changed the skew cache key")
	}
	swapped := JobSpec{Kind: KindSkew, Pairs: []string{"2.3.0/2.3.9->3.2.1/3.1.2", "3.2.1/3.1.2"}}
	if k3, _ := swapped.CacheKey(); k3 == k1 {
		t.Error("pair order did not change the skew cache key")
	}
	var defaults []string
	for _, pr := range versions.DefaultPairs() {
		defaults = append(defaults, pr.String())
	}
	implicit := JobSpec{Kind: KindSkew}
	explicit := JobSpec{Kind: KindSkew, Pairs: defaults}
	ki, err := implicit.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ke, _ := explicit.CacheKey(); ke != ki {
		t.Error("default matrix and its explicit spelling hashed differently")
	}
	other := JobSpec{Kind: KindCorpus}
	if ko, _ := other.CacheKey(); ko == ki {
		t.Error("skew and corpus kinds share a cache key")
	}
}
