package serve

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// stormRunner wedges every admitted job until the gate is closed — the
// deterministic stand-in for a saturated executor during an overload.
// started (when non-nil) receives one token per Execute entry, so tests
// can wait until the worker pool is provably wedged before filling the
// queue.
type stormRunner struct {
	gate    chan struct{}
	started chan struct{}
}

func (r *stormRunner) Execute(ctx context.Context, spec JobSpec, _ func(core.Failure)) (*JobResult, error) {
	if r.started != nil {
		r.started <- struct{}{}
	}
	select {
	case <-r.gate:
		key, err := spec.CacheKey()
		if err != nil {
			return nil, err
		}
		return &JobResult{Key: key, Kind: spec.Kind, Spec: spec, Rendered: "storm", ReportSHA: core.HashBytes([]byte("storm"))}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestAdmissionThrottleSheds pins the token-bucket layer: sustained
// submission above AdmitRatePerSec is rejected with ErrThrottled before
// any cache or queue work, counted under the admission-rejections
// metric, and recorded by the flight recorder. Time then refills the
// bucket.
func TestAdmissionThrottleSheds(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(128)
	runner := &stormRunner{gate: make(chan struct{})}
	defer close(runner.gate)
	s, _ := newTestScheduler(t, SchedulerOptions{
		Workers: 2, QueueDepth: 16, Executor: runner,
		AdmitRatePerSec: 2, AdmitBurst: 2,
		Metrics: reg, Recorder: rec,
	})

	var throttled int
	for i := 0; i < 5; i++ {
		_, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: uint64(200 + i), N: 10})
		switch err {
		case nil:
		case ErrThrottled:
			throttled++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if throttled != 3 {
		t.Fatalf("burst of 5 against bucket of 2: throttled %d, want 3", throttled)
	}
	if got := reg.Counter(obs.MetricAdmissionRejections, "reason", "throttled").Value(); got != 3 {
		t.Errorf("%s{throttled} = %d, want 3", obs.MetricAdmissionRejections, got)
	}
	var recorded int
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvJobRejected && ev.Detail == "throttled" {
			recorded++
		}
	}
	if recorded != 3 {
		t.Errorf("flight recorder holds %d throttle rejections, want 3", recorded)
	}

	// ~1 s refills two tokens; the next submission must pass.
	time.Sleep(1100 * time.Millisecond)
	if _, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 299, N: 10}); err != nil {
		t.Errorf("submit after refill: %v", err)
	}
}

// TestRetryAfterScalesWithQueueDepth pins satellite #1: the 429 hint is
// derived from the live queue depth rather than hard-coded, and
// /metrics exports the queue-depth gauge and admission-rejections
// counter a dashboard needs to see the same pressure.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	reg := obs.NewRegistry()
	runner := &stormRunner{gate: make(chan struct{}), started: make(chan struct{}, 16)}
	defer close(runner.gate)
	srv, sched, _ := newTestServer(t, SchedulerOptions{
		Workers: 1, QueueDepth: 8, Executor: runner, Metrics: reg,
	})

	// Wedge the only worker, then fill the queue with distinct specs.
	// Once the worker is blocked inside Execute, queue occupancy can
	// only grow, so the fill and the 429 below are deterministic.
	if _, err := sched.Submit(JobSpec{Kind: KindFuzz, Seed: 300, N: 10}); err != nil {
		t.Fatal(err)
	}
	<-runner.started
	for i := 0; i < 8; i++ {
		if _, err := sched.Submit(JobSpec{Kind: KindFuzz, Seed: uint64(301 + i), N: 10}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}

	resp, _ := postJob(t, srv.URL, JobSpec{Kind: KindFuzz, Seed: 999, N: 10})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// 8 queued jobs on 1 worker: the hint must reflect the backlog, not
	// the old hard-coded "1".
	if want := 1 + 8/1; ra != want {
		t.Errorf("Retry-After = %d with a full queue of 8, want %d", ra, want)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	if !strings.Contains(text, obs.MetricQueueDepth+" 8") {
		t.Errorf("/metrics missing %s 8:\n%s", obs.MetricQueueDepth, text)
	}
	if !strings.Contains(text, obs.MetricAdmissionRejections+`{reason="queue_full"} 1`) {
		t.Errorf("/metrics missing admission-rejections counter:\n%s", text)
	}
}

// TestSustainedOverloadBoundedQueue is satellite #3: waves of
// submissions far past queue capacity against a wedged executor. The
// queue must stay bounded at its depth, every overflow must surface as
// ErrQueueFull and land in the flight recorder, and once the storm ends
// the scheduler must drain without leaking a single goroutine (the test
// suite runs under -race).
func TestSustainedOverloadBoundedQueue(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cache, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(2048)
	runner := &stormRunner{gate: make(chan struct{}), started: make(chan struct{}, 16)}
	const workers, depth = 2, 4
	s := NewScheduler(SchedulerOptions{
		Workers: workers, QueueDepth: depth,
		Cache: cache, Executor: runner, Metrics: reg, Recorder: rec,
	})

	// Wedge every worker before the storm so admission counts are
	// deterministic: nothing drains until the gate closes.
	var admitted, rejected int
	seed := uint64(1000)
	for w := 0; w < workers; w++ {
		seed++
		if _, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: seed, N: 10}); err != nil {
			t.Fatal(err)
		}
		admitted++
		<-runner.started
	}
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < 50; i++ {
			seed++
			_, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: seed, N: 10})
			switch err {
			case nil:
				admitted++
			case ErrQueueFull:
				rejected++
			default:
				t.Fatalf("wave %d submit %d: %v", wave, i, err)
			}
		}
		// The gauge may never exceed the configured depth, including at
		// the instant rejections are being issued.
		if g := reg.Gauge(obs.MetricQueueDepth).Value(); g > depth {
			t.Fatalf("wave %d: queue depth gauge %v above bound %d", wave, g, depth)
		}
		if ra := s.RetryAfterSeconds(); ra > 1+depth/workers {
			t.Fatalf("wave %d: RetryAfterSeconds %d above full-queue bound", wave, ra)
		}
		time.Sleep(20 * time.Millisecond) // sustain the storm across scheduler activity
	}

	// Nothing drained during the storm: exactly workers + depth jobs fit.
	if want := workers + depth; admitted != want {
		t.Errorf("admitted %d jobs through a wedged pool, want %d", admitted, want)
	}
	if admitted+rejected != 252 {
		t.Errorf("admitted %d + rejected %d != 252 submissions", admitted, rejected)
	}
	var recorded int
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvJobRejected && ev.Detail == "queue_full" {
			recorded++
		}
	}
	if recorded != rejected {
		t.Errorf("flight recorder holds %d queue_full rejections, want %d", recorded, rejected)
	}
	if got := reg.Counter(obs.MetricAdmissionRejections, "reason", "queue_full").Value(); got != int64(rejected) {
		t.Errorf("%s{queue_full} = %d, want %d", obs.MetricAdmissionRejections, got, rejected)
	}

	// End the storm: release the wedged jobs, drain, and verify the pool
	// left nothing behind.
	close(runner.gate)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)
	if g := reg.Gauge(obs.MetricInflightJobs).Value(); g != 0 {
		t.Errorf("in-flight gauge %v after drain", g)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d did not settle to baseline %d after drain", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
