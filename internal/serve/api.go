// Package serve is the serving layer of the cross-system testing
// framework: a long-running differential-testing service (crossd) that
// accepts test jobs over HTTP, executes them on a shared bounded
// worker pool over core.Run/core.RunTables, and content-addresses the
// results — the job spec is hashed, and completed reports live in an
// LRU+disk cache so an identical resubmission is served without
// re-executing a single case. The cache is sound because campaign and
// corpus runs are bit-identical for a fixed spec regardless of
// parallelism or scheduling.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fuzzgen"
	"repro/internal/partition"
	"repro/internal/versions"
)

// Job kinds.
const (
	// KindCorpus runs the Figure-6 corpus: every input × plan × format
	// under the three oracles, optionally under a deployment
	// configuration (a -conf sweep cell, as a service call).
	KindCorpus = "corpus"
	// KindSweep runs the corpus under the default configuration plus
	// every registry fix configuration and diffs the profiles.
	KindSweep = "sweep"
	// KindFuzz runs a fuzz campaign identified by (seed, n, confs).
	KindFuzz = "fuzz"
	// KindSkew runs the version-skew matrix: the corpus over every
	// writer×reader version pair, classifying skew-only discrepancies.
	KindSkew = "skew"
	// KindPartition runs a CoFI partition campaign over the control-plane
	// scenario registry, identified by (seed, scenarios, strategy,
	// trials, hold, schedule).
	KindPartition = "partition"
)

// JobSpec is a submitted job. The spec — not the submission — is the
// unit of identity: two submissions with equal specs share one cached
// result. Parallel is an execution hint and deliberately excluded from
// the cache key (results are bit-identical across worker counts).
type JobSpec struct {
	Kind string `json:"kind"`

	// Corpus/sweep parameters.
	Families    []string          `json:"families,omitempty"`
	Conf        map[string]string `json:"conf,omitempty"`
	InputPrefix string            `json:"input_prefix,omitempty"`

	// Fuzz parameters.
	Seed  uint64 `json:"seed,omitempty"`
	N     int    `json:"n,omitempty"`
	Confs int    `json:"confs,omitempty"`

	// Skew parameters: writer->reader version pairs, each a
	// "wSpark/wHive->rSpark/rHive" spec (a bare "spark/hive" stack is
	// the unskewed pair). Empty means versions.DefaultPairs(). Unknown
	// version profiles are rejected at admission — never normalized to
	// a default, which would alias two different deployments under one
	// cache key.
	Pairs []string `json:"pairs,omitempty"`

	// Partition parameters: the campaign's scenario subset (empty means
	// the full P* registry, in registry order), injection strategy
	// (empty means guided), random-trial budget and hold, and — for the
	// fixed strategy — the explicit cut schedule. All omitempty: specs
	// of other kinds never carry them, so pre-partition cache keys are
	// byte-identical.
	Scenarios []string        `json:"scenarios,omitempty"`
	Strategy  string          `json:"strategy,omitempty"`
	Trials    int             `json:"trials,omitempty"`
	HoldMs    int64           `json:"hold_ms,omitempty"`
	Schedule  []partition.Cut `json:"schedule,omitempty"`

	// Cluster sharding parameters. From offsets a fuzz campaign's
	// generated index range to [From, From+N) — a coordinator splits a
	// campaign into contiguous seed-range sub-jobs. Shard marks a
	// sub-job of a split corpus or fuzz parent: the executor then
	// attaches the merge metadata (failure ranks, shard reproducers)
	// the coordinator needs to reassemble the parent report
	// byte-identically. Both omitempty and zero on every direct
	// submission, so pre-cluster cache keys are byte-identical.
	From  int  `json:"from,omitempty"`
	Shard bool `json:"shard,omitempty"`

	// Parallel is the per-job harness worker count (not part of the
	// cache key; values below 2 run sequentially).
	Parallel int `json:"parallel,omitempty"`
}

// Validate rejects malformed specs before admission.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindCorpus, KindSweep, KindSkew:
		for _, f := range s.Families {
			if f != "ss" && f != "sh" && f != "hs" {
				return fmt.Errorf("serve: unknown plan family %q", f)
			}
		}
		if s.Kind == KindSkew {
			for _, spec := range s.Pairs {
				if _, err := versions.ParsePair(spec); err != nil {
					return fmt.Errorf("serve: bad version pair %q: %w", spec, err)
				}
			}
		}
	case KindFuzz:
		if s.N <= 0 {
			return fmt.Errorf("serve: fuzz job needs n > 0, got %d", s.N)
		}
		if s.N > 1_000_000 {
			return fmt.Errorf("serve: fuzz n %d exceeds the 1000000 admission limit", s.N)
		}
		if s.Confs < 0 {
			return fmt.Errorf("serve: confs must be non-negative, got %d", s.Confs)
		}
		if s.From < 0 {
			return fmt.Errorf("serve: from must be non-negative, got %d", s.From)
		}
	case KindPartition:
		if err := s.validatePartition(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("serve: unknown job kind %q (want %s, %s, %s, %s, or %s)", s.Kind, KindCorpus, KindSweep, KindFuzz, KindSkew, KindPartition)
	}
	if s.From != 0 && s.Kind != KindFuzz {
		return fmt.Errorf("serve: from applies only to fuzz jobs, got kind %q", s.Kind)
	}
	if s.Shard && s.Kind != KindCorpus && s.Kind != KindFuzz {
		return fmt.Errorf("serve: shard applies only to corpus and fuzz jobs, got kind %q", s.Kind)
	}
	if s.Parallel < 0 {
		return fmt.Errorf("serve: parallel must be non-negative, got %d", s.Parallel)
	}
	return nil
}

// validatePartition rejects malformed partition campaigns at admission:
// unknown scenario names, unknown strategies, a fixed strategy without a
// schedule, and schedule cuts naming nodes no selected scenario has.
func (s *JobSpec) validatePartition() error {
	known := map[string]bool{}
	for _, name := range s.Scenarios {
		sc := partition.ByName(name)
		if sc == nil {
			return fmt.Errorf("serve: unknown partition scenario %q (have %s)", name, strings.Join(partition.Names(), ", "))
		}
		for _, n := range sc.Nodes {
			known[n] = true
		}
	}
	if len(s.Scenarios) == 0 {
		for _, sc := range partition.Scenarios() {
			for _, n := range sc.Nodes {
				known[n] = true
			}
		}
	}
	strategy := s.Strategy
	if strategy == "" {
		strategy = string(partition.StrategyGuided)
	}
	if !partition.ValidStrategy(strategy) {
		return fmt.Errorf("serve: unknown partition strategy %q (have %s)", s.Strategy, strings.Join(partition.Strategies(), ", "))
	}
	if strategy == string(partition.StrategyFixed) && len(s.Schedule) == 0 {
		return fmt.Errorf("serve: partition strategy %q needs a non-empty schedule", partition.StrategyFixed)
	}
	for _, c := range s.Schedule {
		if c.From == "" || c.To == "" {
			return fmt.Errorf("serve: partition schedule cut needs both node names, got %q->%q", c.From, c.To)
		}
		for _, n := range []string{c.From, c.To} {
			if !known[n] {
				return fmt.Errorf("serve: partition schedule names node %q, which no selected scenario has", n)
			}
		}
		if c.AtMs < 0 {
			return fmt.Errorf("serve: partition schedule cut time must be non-negative, got %d", c.AtMs)
		}
		if c.HealAtMs != 0 && c.HealAtMs <= c.AtMs {
			return fmt.Errorf("serve: partition cut heal time %d must follow the cut at %d (or be 0 to hold)", c.HealAtMs, c.AtMs)
		}
	}
	if s.Trials < 0 {
		return fmt.Errorf("serve: trials must be non-negative, got %d", s.Trials)
	}
	if s.Trials > 10_000 {
		return fmt.Errorf("serve: trials %d exceeds the 10000 admission limit", s.Trials)
	}
	if s.HoldMs < 0 {
		return fmt.Errorf("serve: hold_ms must be non-negative, got %d", s.HoldMs)
	}
	return nil
}

// keySpec is the canonical content-address input: only fields that can
// change the result bytes. V guards the key schema — bump it when the
// result shape changes so stale disk entries miss instead of lying.
type keySpec struct {
	V        int               `json:"v"`
	Kind     string            `json:"kind"`
	Corpus   string            `json:"corpus,omitempty"`
	Families []string          `json:"families,omitempty"`
	Conf     map[string]string `json:"conf,omitempty"`
	Prefix   string            `json:"prefix,omitempty"`
	Seed     uint64            `json:"seed,omitempty"`
	N        int               `json:"n,omitempty"`
	Confs    int               `json:"confs,omitempty"`
	Pairs    []string          `json:"pairs,omitempty"`
	// Partition fields, appended after the pre-partition schema: all
	// omitempty and never set for other kinds, so every pre-partition
	// cache key encodes to the same bytes as before.
	Scenarios []string        `json:"scenarios,omitempty"`
	Strategy  string          `json:"strategy,omitempty"`
	Trials    int             `json:"trials,omitempty"`
	HoldMs    int64           `json:"hold_ms,omitempty"`
	Schedule  []partition.Cut `json:"schedule,omitempty"`
	// Cluster shard fields, appended after the partition schema: a
	// shard result carries merge metadata a whole-job result does not,
	// so the two must never share a content address. Both omitempty and
	// zero on plain submissions — pre-cluster keys are byte-identical.
	From  int  `json:"from,omitempty"`
	Shard bool `json:"shard,omitempty"`
}

const cacheKeyVersion = 1

// corpusFingerprint hashes the built-in corpus once per process: a
// code change to the input corpus changes every corpus/sweep cache key,
// so a disk cache carried across binaries can never serve stale
// reports.
var corpusFingerprint = sync.OnceValues(func() (string, error) {
	inputs, err := core.BuildCorpus()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, in := range inputs {
		fmt.Fprintf(&b, "%d|%s|%s|%s|%t\n", in.ID, in.Name, in.Type, in.Literal, in.Valid)
	}
	return core.HashBytes([]byte(b.String())), nil
})

// CacheKey returns the spec's content address: the hex sha256 of its
// canonical encoding (sorted families, canonical JSON map order,
// corpus fingerprint for corpus-backed kinds, no execution hints).
func (s *JobSpec) CacheKey() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	ks := keySpec{V: cacheKeyVersion, Kind: s.Kind}
	switch s.Kind {
	case KindCorpus, KindSweep, KindSkew:
		fp, err := corpusFingerprint()
		if err != nil {
			return "", err
		}
		ks.Corpus = fp
		ks.Families = append([]string(nil), s.Families...)
		sort.Strings(ks.Families)
		if s.Kind == KindCorpus {
			// A sweep replaces the session conf per cell, so the
			// submitted conf cannot change its result.
			ks.Conf = s.Conf
		}
		ks.Prefix = s.InputPrefix
		if s.Kind == KindSkew {
			// The version pairs are part of the content address, in
			// canonical (validated, writer->reader) spelling and in
			// submission order — pair order is cell order in the result.
			for _, spec := range s.Pairs {
				p, err := versions.ParsePair(spec)
				if err != nil {
					return "", err
				}
				ks.Pairs = append(ks.Pairs, p.String())
			}
			if len(s.Pairs) == 0 {
				for _, p := range versions.DefaultPairs() {
					ks.Pairs = append(ks.Pairs, p.String())
				}
			}
		}
	case KindFuzz:
		ks.Seed = s.Seed
		ks.N = s.N
		ks.Confs = s.Confs
		if ks.Confs == 0 {
			ks.Confs = 6 // the fuzzgen default, so 0 and 6 share a key
		}
		ks.From = s.From
	case KindPartition:
		ks.Seed = s.Seed
		// Defaults are normalized into the key (a 0-trials and a
		// 20-trials campaign are one result), and an empty scenario list
		// expands to the explicit registry, so growing the registry mints
		// new keys instead of serving stale "all scenarios" results.
		ks.Scenarios = append([]string(nil), s.Scenarios...)
		if len(ks.Scenarios) == 0 {
			for _, sc := range partition.Scenarios() {
				ks.Scenarios = append(ks.Scenarios, sc.Name)
			}
		}
		ks.Strategy = s.Strategy
		if ks.Strategy == "" {
			ks.Strategy = string(partition.StrategyGuided)
		}
		ks.Trials = s.Trials
		if ks.Trials == 0 {
			ks.Trials = 20 // the campaign default
		}
		ks.HoldMs = s.HoldMs
		if ks.HoldMs == 0 {
			ks.HoldMs = 1000 // the campaign default
		}
		ks.Schedule = append([]partition.Cut(nil), s.Schedule...)
	}
	ks.Shard = s.Shard
	return core.HashSpec(ks)
}

// ClusterJSON is one failure cluster of a fuzz job result.
type ClusterJSON struct {
	Signature string `json:"signature"`
	Known     int    `json:"known,omitempty"`
	Count     int    `json:"count"`
	Example   string `json:"example"`
}

// FuzzJSON is the machine-readable fuzz-campaign result.
type FuzzJSON struct {
	Seed          uint64        `json:"seed"`
	N             int           `json:"n"`
	From          int           `json:"from,omitempty"`
	Confs         int           `json:"confs"`
	Executed      int           `json:"executed"`
	TableCases    int           `json:"table_cases"`
	Failures      int           `json:"failures"`
	Clusters      []ClusterJSON `json:"clusters"`
	KnownHit      []int         `json:"known_hit"`
	NewSignatures []string      `json:"new_signatures,omitempty"`
}

// SkewCellJSON is one writer×reader cell of a skew job result.
type SkewCellJSON struct {
	Writer         string   `json:"writer"`
	Reader         string   `json:"reader"`
	Known          []int    `json:"known"`
	SkewIDs        []string `json:"skew_ids,omitempty"`
	SkewSignatures []string `json:"skew_signatures,omitempty"`
	Failures       int      `json:"failures"`
	SkewFailures   int      `json:"skew_failures"`
}

// SkewJSON is the machine-readable skew-matrix result.
type SkewJSON struct {
	Pairs []string       `json:"pairs"`
	Cells []SkewCellJSON `json:"cells"`
}

// MergeMeta is the shard-to-coordinator side channel: everything a
// deterministic merge needs that the rendered payloads do not carry.
// Only Shard sub-job results populate it (corpus and fuzz kinds), so
// plain job results are byte-identical to their pre-cluster shape.
type MergeMeta struct {
	// Ranks maps each failure cluster's signature to the rank of its
	// first failure in the global emission order (corpus: the core
	// failure rank; fuzz: cell ordinal + core rank). The coordinator
	// keeps the Example — and, for fuzz, the reproducer — from the
	// shard whose rank is minimal: exactly the failure the unsharded
	// run sees first.
	Ranks map[string]string `json:"ranks,omitempty"`
	// Reproducers are the shard's minimized reproducers (fuzz only);
	// Shrink is pure, so the minimum-rank shard's reproducer is the one
	// the unsharded campaign emits.
	Reproducers []fuzzgen.Reproducer `json:"reproducers,omitempty"`
}

// JobResult is what /result returns (and what the cache stores,
// verbatim): the job's content address, its spec, the human-readable
// rendering with its sha256, and the kind-specific machine-readable
// payload. Report uses exactly the core.ReportJSON shape crosstest
// -json prints, so CLI and server outputs are diffable.
type JobResult struct {
	Key       string            `json:"key"`
	Kind      string            `json:"kind"`
	Spec      JobSpec           `json:"spec"`
	Rendered  string            `json:"rendered"`
	ReportSHA string            `json:"report_sha256"`
	Report    *core.ReportJSON  `json:"report,omitempty"`
	Fuzz      *FuzzJSON         `json:"fuzz,omitempty"`
	Skew      *SkewJSON         `json:"skew,omitempty"`
	Sweep     []core.SweepCell  `json:"sweep,omitempty"`
	Partition *partition.Result `json:"partition,omitempty"`
	Conf      map[string]string `json:"conf,omitempty"`
	Merge     *MergeMeta        `json:"merge,omitempty"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobStatus is the /jobs/{id} view of a job.
type JobStatus struct {
	ID       string  `json:"id"`
	Key      string  `json:"key"`
	Kind     string  `json:"kind"`
	State    string  `json:"state"`
	CacheHit bool    `json:"cache_hit"`
	Error    string  `json:"error,omitempty"`
	Queued   string  `json:"queued_at,omitempty"`
	Started  string  `json:"started_at,omitempty"`
	Finished string  `json:"finished_at,omitempty"`
	Duration float64 `json:"duration_ms,omitempty"`
}

// StreamEvent is one NDJSON line of /jobs/{id}/stream: a failure as an
// oracle fires, then a terminal event.
type StreamEvent struct {
	Type string `json:"type"` // "failure" | "done" | "failed" | "cancelled"
	Job  string `json:"job"`
	Seq  int    `json:"seq"`
	// Trace is the job's root-span trace ID (empty when tracing is
	// off): the same ID the stage histograms carry as exemplars, so an
	// NDJSON failure line joins back to its causal span chain.
	Trace     string `json:"trace,omitempty"`
	Oracle    string `json:"oracle,omitempty"`
	Signature string `json:"signature,omitempty"`
	Detail    string `json:"detail,omitempty"`
	Plan      string `json:"plan,omitempty"`
	Format    string `json:"format,omitempty"`
	Input     string `json:"input,omitempty"`
	Error     string `json:"error,omitempty"`
	ReportSHA string `json:"report_sha256,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
}
