package serve

// Admission, cache-key, and end-to-end tests for the "partition" job
// kind: CoFI campaigns submitted to crossd, with validation rejecting
// malformed specs at the door and cache keys preserving both the
// partition defaults and every pre-partition key byte.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/partition"
)

func partitionSpec() JobSpec {
	return JobSpec{Kind: KindPartition, Seed: 42, Scenarios: []string{"yarn-app-state"}, Strategy: "guided"}
}

func TestPartitionValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string // "" = valid
	}{
		{"minimal guided", JobSpec{Kind: KindPartition}, ""},
		{"explicit everything", partitionSpec(), ""},
		{"compare with trials", JobSpec{Kind: KindPartition, Strategy: "compare", Trials: 5, HoldMs: 500}, ""},
		{"fixed with schedule", JobSpec{Kind: KindPartition, Strategy: "fixed",
			Schedule: []partition.Cut{{AtMs: 2100, From: "dn1", To: "nn"}}}, ""},
		{"unknown scenario", JobSpec{Kind: KindPartition, Scenarios: []string{"nope"}},
			`unknown partition scenario "nope"`},
		{"unknown strategy", JobSpec{Kind: KindPartition, Strategy: "chaotic"},
			`unknown partition strategy "chaotic"`},
		{"fixed without schedule", JobSpec{Kind: KindPartition, Strategy: "fixed"},
			"needs a non-empty schedule"},
		{"cut missing node name", JobSpec{Kind: KindPartition,
			Schedule: []partition.Cut{{AtMs: 1, From: "nn"}}},
			"needs both node names"},
		{"cut names unknown node", JobSpec{Kind: KindPartition, Scenarios: []string{"kafka-isr"},
			Schedule: []partition.Cut{{AtMs: 1, From: "controller", To: "nn"}}},
			`names node "nn"`},
		{"node from unselected scenario", JobSpec{Kind: KindPartition, Scenarios: []string{"hdfs-replica"},
			Schedule: []partition.Cut{{AtMs: 1, From: "rm", To: "nn"}}},
			`names node "rm"`},
		{"negative cut time", JobSpec{Kind: KindPartition,
			Schedule: []partition.Cut{{AtMs: -1, From: "dn1", To: "nn"}}},
			"must be non-negative"},
		{"heal before cut", JobSpec{Kind: KindPartition,
			Schedule: []partition.Cut{{AtMs: 2000, HealAtMs: 1500, From: "dn1", To: "nn"}}},
			"must follow the cut"},
		{"negative trials", JobSpec{Kind: KindPartition, Trials: -1}, "non-negative"},
		{"trials over limit", JobSpec{Kind: KindPartition, Trials: 10_001}, "admission limit"},
		{"negative hold", JobSpec{Kind: KindPartition, HoldMs: -5}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestPartitionCacheKeySemantics(t *testing.T) {
	base := partitionSpec()
	k1, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	// Defaults normalize into the key: empty strategy means guided,
	// trials 0 means 20, hold 0 means 1000.
	implicit := JobSpec{Kind: KindPartition, Seed: 42, Scenarios: []string{"yarn-app-state"}}
	if k2, _ := implicit.CacheKey(); k2 != k1 {
		t.Error("empty strategy must share the explicit guided key")
	}
	explicit := base
	explicit.Trials, explicit.HoldMs = 20, 1000
	if k3, _ := explicit.CacheKey(); k3 != k1 {
		t.Error("explicit default trials/hold must share the implicit key")
	}

	// An empty scenario list expands to the explicit registry, in
	// registry order (scenario order is identity-bearing: it orders the
	// report).
	var registryOrder []string
	for _, sc := range partition.Scenarios() {
		registryOrder = append(registryOrder, sc.Name)
	}
	all := JobSpec{Kind: KindPartition, Seed: 42}
	named := JobSpec{Kind: KindPartition, Seed: 42, Scenarios: registryOrder}
	ka, _ := all.CacheKey()
	if kn, _ := named.CacheKey(); kn != ka {
		t.Error("empty scenario list must share the full-registry key")
	}

	// Identity-bearing fields mint distinct keys.
	for name, vary := range map[string]func(*JobSpec){
		"seed":     func(s *JobSpec) { s.Seed = 43 },
		"strategy": func(s *JobSpec) { s.Strategy = "compare" },
		"trials":   func(s *JobSpec) { s.Trials = 21 },
		"hold":     func(s *JobSpec) { s.HoldMs = 999 },
		"scenario": func(s *JobSpec) { s.Scenarios = []string{"kafka-isr"} },
	} {
		spec := partitionSpec()
		vary(&spec)
		if k, _ := spec.CacheKey(); k == k1 {
			t.Errorf("varying %s did not change the cache key", name)
		}
	}
}

// TestPrePartitionKeysUnchanged pins a pre-partition cache key as a hex
// literal: adding the partition fields to keySpec (omitempty) must not
// move a single existing key, or every cached crossd result would be
// silently orphaned on upgrade.
func TestPrePartitionKeysUnchanged(t *testing.T) {
	spec := JobSpec{Kind: KindFuzz, Seed: 5, N: 40, Parallel: 2}
	key, err := spec.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	const pinned = "c403914af57ba99c6c7c648fe9d85e8a9d0cea7fc46f8770d4232a8041769e66"
	if key != pinned {
		t.Errorf("fuzz cache key moved: %s (pinned %s) — keySpec changed shape for pre-partition kinds", key, pinned)
	}
}

// TestPartitionJobEndToEnd submits a partition campaign through the
// scheduler: findings stream as caseless partition-oracle failures,
// the result caches, and an identical resubmission executes nothing.
func TestPartitionJobEndToEnd(t *testing.T) {
	s, exec := newTestScheduler(t, SchedulerOptions{})
	job, err := s.Submit(partitionSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st.State != StateDone {
		t.Fatalf("job state %+v", st)
	}

	events, _ := job.Subscribe()
	var failures []StreamEvent
	for _, ev := range events {
		if ev.Type == "failure" {
			failures = append(failures, ev)
		}
	}
	if len(failures) != 1 {
		t.Fatalf("streamed %d failures, want the single P3 finding", len(failures))
	}
	f := failures[0]
	if f.Oracle != "part" || f.Signature != "partition-app-state" {
		t.Errorf("failure = oracle %q signature %q, want part/partition-app-state", f.Oracle, f.Signature)
	}
	if f.Plan != "" || f.Input != "" {
		t.Errorf("partition failures are caseless, got plan %q input %q", f.Plan, f.Input)
	}
	if !strings.Contains(f.Detail, "[yarn-app-state]") {
		t.Errorf("detail %q does not name the scenario", f.Detail)
	}

	data, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Partition == nil || len(res.Partition.Outcomes) != 1 {
		t.Fatalf("result payload missing the campaign outcome: %+v", res.Partition)
	}
	if res.Partition.Outcomes[0].ID != "P3" {
		t.Errorf("outcome ID %s, want P3", res.Partition.Outcomes[0].ID)
	}

	again, err := s.Submit(partitionSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again)
	if st := again.Status(); !st.CacheHit {
		t.Error("identical resubmission missed the cache")
	}
	if n := exec.Executions(); n != 1 {
		t.Errorf("resubmission executed %d times, want 1", n)
	}
}
