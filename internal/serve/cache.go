package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// Cache is the content-addressed result cache: an in-memory LRU over
// marshaled JobResult bytes, optionally backed by a disk directory so
// results survive restarts. Keys are hex sha256 content addresses
// (validated before touching the filesystem), values are the exact
// bytes /result serves — a hit is byte-identical to the original
// response.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recent
	entries    map[string]*list.Element
	dir        string // "" = memory only
	recorder   *obs.Recorder

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds a cache holding up to maxEntries results in memory
// (minimum 1), spilled to dir when non-empty (created on demand).
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		entries:    map[string]*list.Element{},
		dir:        dir,
	}, nil
}

// Get returns the cached bytes for key. A memory miss falls through to
// disk; a disk hit is promoted back into the LRU. The returned slice
// must not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.hits++
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.insertLocked(key, data)
			c.hits++
			c.mu.Unlock()
			return data, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the bytes under key, in memory (evicting LRU entries past
// the budget) and on disk via an atomic tmp+rename write.
func (c *Cache) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("serve: invalid cache key %q", key)
	}
	c.mu.Lock()
	c.insertLocked(key, data)
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

func (c *Cache) insertLocked(key string, data []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	for c.ll.Len() > c.maxEntries {
		back := c.ll.Back()
		c.ll.Remove(back)
		evicted := back.Value.(*cacheEntry).key
		delete(c.entries, evicted)
		c.evictions++
		c.recorder.Record(obs.Event{Type: obs.EvCacheEvict, Key: evicted})
	}
}

// SetRecorder attaches a flight recorder that receives one EvCacheEvict
// per LRU eviction. Call before the cache is shared across goroutines.
func (c *Cache) SetRecorder(r *obs.Recorder) { c.recorder = r }

// Stats returns cumulative hit/miss/eviction counts and the current
// in-memory entry count.
func (c *Cache) Stats() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// validKey accepts exactly the hex sha256 alphabet, which keeps cache
// keys from ever escaping the cache directory.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
