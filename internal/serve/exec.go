package serve

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fuzzgen"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/versions"
)

// Executor maps job specs onto the harness entry points
// (core.Run, core.ConfigSweep, fuzzgen.RunCampaign). It counts real
// executions so tests can assert that a cache hit ran nothing.
type Executor struct {
	executions atomic.Int64
	// Tracer/Metrics are threaded into every harness run; per-job span
	// trees hang off a per-job root span. Recorder receives partition
	// fault-plane events (cuts, heals, invariant violations); nil
	// disables them.
	Tracer   *obs.Tracer
	Metrics  *obs.Registry
	Recorder *obs.Recorder
}

// Executions returns how many jobs actually ran (cache hits excluded).
func (e *Executor) Executions() int64 { return e.executions.Load() }

// Execute runs the spec under ctx and returns its result. Cancellation
// surfaces as ctx's error; the result of a cancelled job is discarded
// by the scheduler (partial reports are not cacheable).
func (e *Executor) Execute(ctx context.Context, spec JobSpec, onFailure func(core.Failure)) (*JobResult, error) {
	e.executions.Add(1)
	key, err := spec.CacheKey()
	if err != nil {
		return nil, err
	}
	res := &JobResult{Key: key, Kind: spec.Kind, Spec: spec, Conf: spec.Conf}
	switch spec.Kind {
	case KindCorpus:
		inputs, err := corpusInputs(spec.InputPrefix)
		if err != nil {
			return nil, err
		}
		run, err := core.Run(inputs, core.RunOptions{
			Context:   ctx,
			SparkConf: spec.Conf,
			Families:  spec.Families,
			Parallel:  spec.Parallel,
			Tracer:    e.Tracer,
			Metrics:   e.Metrics,
			OnFailure: onFailure,
		})
		if err != nil {
			return nil, err
		}
		rj := run.Report.JSON()
		res.Report = &rj
		res.Rendered = run.Report.Render()
		if spec.Shard {
			res.Merge = corpusMergeMeta(run.Report)
		}
	case KindSweep:
		inputs, err := corpusInputs(spec.InputPrefix)
		if err != nil {
			return nil, err
		}
		names, configs := sweepConfigs()
		cells, err := core.ConfigSweep(inputs, names, configs, core.RunOptions{
			Context:   ctx,
			Families:  spec.Families,
			Parallel:  spec.Parallel,
			Tracer:    e.Tracer,
			Metrics:   e.Metrics,
			OnFailure: onFailure,
		})
		if err != nil {
			return nil, err
		}
		res.Sweep = cells
		res.Rendered = core.RenderSweep(cells)
	case KindFuzz:
		camp, err := fuzzgen.RunCampaign(fuzzgen.Options{
			Context:   ctx,
			Seed:      spec.Seed,
			N:         spec.N,
			From:      spec.From,
			Confs:     spec.Confs,
			Parallel:  spec.Parallel,
			Tracer:    e.Tracer,
			Metrics:   e.Metrics,
			OnFailure: onFailure,
		})
		if err != nil {
			return nil, err
		}
		if camp.Cancelled {
			// The campaign flushed a partial result, but a serving
			// layer must never cache or return a non-reproducible
			// report for a content-addressed spec.
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, context.Canceled
		}
		res.Fuzz = fuzzJSON(camp)
		res.Rendered = camp.Render()
		if spec.Shard {
			res.Merge = fuzzMergeMeta(camp)
		}
	case KindSkew:
		inputs, err := corpusInputs(spec.InputPrefix)
		if err != nil {
			return nil, err
		}
		pairs, err := parsePairs(spec.Pairs)
		if err != nil {
			return nil, err
		}
		m, err := core.RunSkewMatrix(inputs, pairs, core.RunOptions{
			Context:   ctx,
			Families:  spec.Families,
			Parallel:  spec.Parallel,
			Tracer:    e.Tracer,
			Metrics:   e.Metrics,
			OnFailure: onFailure,
		})
		if err != nil {
			return nil, err
		}
		res.Skew = skewJSON(m)
		res.Rendered = m.Render()
	case KindPartition:
		// Campaigns run on the virtual clock and finish in milliseconds
		// of wall time, so they are not cancellable mid-run; ctx is
		// honored at the admission boundary like every other kind.
		pres, err := partition.Run(partition.Options{
			Seed:      spec.Seed,
			Scenarios: spec.Scenarios,
			Strategy:  partition.Strategy(spec.Strategy),
			Trials:    spec.Trials,
			HoldMs:    spec.HoldMs,
			Parallel:  spec.Parallel,
			Schedule:  spec.Schedule,
			Tracer:    e.Tracer,
			Metrics:   e.Metrics,
			Recorder:  e.Recorder,
			OnFinding: func(f partition.Finding) {
				if onFailure != nil {
					onFailure(core.PartitionFailure(f.Scenario, f.Signature, f.Detail))
				}
			},
		})
		if err != nil {
			return nil, err
		}
		res.Partition = pres
		res.Rendered = pres.Render()
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
	res.ReportSHA = core.HashBytes([]byte(res.Rendered))
	return res, nil
}

// corpusInputs builds the Figure-6 corpus, optionally restricted by
// name prefix (the -inputs flag of crosstest, as a job parameter).
func corpusInputs(prefix string) ([]core.Input, error) {
	inputs, err := core.BuildCorpus()
	if err != nil {
		return nil, err
	}
	if prefix == "" {
		return inputs, nil
	}
	var filtered []core.Input
	for _, in := range inputs {
		if strings.HasPrefix(in.Name, prefix) {
			filtered = append(filtered, in)
		}
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("serve: input prefix %q matches no corpus input", prefix)
	}
	return filtered, nil
}

// sweepConfigs assembles the sweep matrix exactly as crosstest -sweep
// does: the default configuration as baseline, then every distinct
// registry fix configuration.
func sweepConfigs() ([]string, map[string]map[string]string) {
	names := []string{"default"}
	configs := map[string]map[string]string{"default": nil}
	for _, d := range inject.Registry() {
		if len(d.FixConf) == 0 {
			continue
		}
		name := fmt.Sprintf("fix-%d", d.Number)
		if _, seen := configs[name]; seen {
			continue
		}
		names = append(names, name)
		configs[name] = d.FixConf
	}
	return names, configs
}

// parsePairs resolves the submitted pair specs (already validated at
// admission, but Execute re-validates: it must reject, never guess, if
// handed an unvalidated spec). Empty means the default matrix.
func parsePairs(specs []string) ([]versions.Pair, error) {
	if len(specs) == 0 {
		return versions.DefaultPairs(), nil
	}
	pairs := make([]versions.Pair, 0, len(specs))
	for _, spec := range specs {
		p, err := versions.ParsePair(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: bad version pair %q: %w", spec, err)
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

func skewJSON(m *core.SkewMatrix) *SkewJSON {
	out := &SkewJSON{}
	for _, cell := range m.Cells {
		out.Pairs = append(out.Pairs, cell.Pair.String())
		out.Cells = append(out.Cells, SkewCellJSON{
			Writer:         cell.Pair.Writer.String(),
			Reader:         cell.Pair.Reader.String(),
			Known:          cell.Known,
			SkewIDs:        cell.SkewIDs,
			SkewSignatures: cell.SkewSignatures,
			Failures:       cell.Failures,
			SkewFailures:   cell.SkewFailures,
		})
	}
	return out
}

// corpusMergeMeta captures, per failure cluster, the rank of its first
// failure — the coordinator's tiebreak for which shard's Example
// represents the merged cluster.
func corpusMergeMeta(r *core.Report) *MergeMeta {
	m := &MergeMeta{Ranks: map[string]string{}}
	for _, f := range r.Found {
		if len(f.Failures) > 0 {
			m.Ranks[f.Signature] = f.Failures[0].Rank
		}
	}
	return m
}

// fuzzMergeMeta captures each cluster's first-failure rank and the
// shard's minimized reproducers; the coordinator keeps the example and
// reproducer of the minimum-rank shard per signature.
func fuzzMergeMeta(camp *fuzzgen.Result) *MergeMeta {
	m := &MergeMeta{Ranks: map[string]string{}}
	for _, cl := range camp.Clusters {
		m.Ranks[cl.Signature] = cl.FirstRank
	}
	for _, r := range camp.Reproducers {
		m.Reproducers = append(m.Reproducers, *r)
	}
	return m
}

func fuzzJSON(camp *fuzzgen.Result) *FuzzJSON {
	out := &FuzzJSON{
		Seed:          camp.Opts.Seed,
		N:             camp.Opts.N,
		From:          camp.Opts.From,
		Confs:         camp.Opts.Confs,
		Executed:      camp.Executed,
		TableCases:    camp.TableCases,
		Failures:      camp.Failures,
		Clusters:      make([]ClusterJSON, 0, len(camp.Clusters)),
		KnownHit:      camp.KnownHit,
		NewSignatures: camp.NewSigs,
	}
	for _, cl := range camp.Clusters {
		out.Clusters = append(out.Clusters, ClusterJSON{
			Signature: cl.Signature,
			Known:     cl.Known,
			Count:     cl.Count,
			Example:   cl.Example,
		})
	}
	return out
}
