package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestCachePutGet(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(key, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok := c.Get(key)
	if !ok || !bytes.Equal(data, []byte("hello")) {
		t.Fatalf("Get = %q/%v", data, ok)
	}
	hits, misses, _, entries := c.Stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Errorf("stats = hits %d misses %d entries %d", hits, misses, entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := c.Put(testKey(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Error("oldest entry survived past the budget")
	}
	for i := 2; i <= 3; i++ {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Errorf("entry %d evicted early", i)
		}
	}
	// Touch 2, insert 4: 3 is now the LRU victim.
	c.Get(testKey(2))
	c.Put(testKey(4), []byte{4})
	if _, ok := c.Get(testKey(3)); ok {
		t.Error("recently-untouched entry survived; LRU order broken")
	}
	if _, ok := c.Get(testKey(2)); !ok {
		t.Error("recently-touched entry evicted")
	}
}

func TestCacheDiskSpillAndReload(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey(1), testKey(2)
	c.Put(k1, []byte("one"))
	c.Put(k2, []byte("two")) // evicts k1 from memory; disk copy remains
	if data, ok := c.Get(k1); !ok || string(data) != "one" {
		t.Fatalf("evicted entry not recovered from disk: %q/%v", data, ok)
	}

	// A fresh cache over the same directory serves previous results —
	// the across-restart property crossd relies on.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := c2.Get(k2); !ok || string(data) != "two" {
		t.Fatalf("restart lost cached result: %q/%v", data, ok)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(files) != 2 {
		t.Errorf("disk holds %d files, want 2", len(files))
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "put-*")); len(files) != 0 {
		t.Errorf("temp files leaked: %v", files)
	}
}

func TestCacheRejectsBadKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		strings.Repeat("g", 64), // non-hex
		"../../../../etc/passwd" + testKey(0)[:41], // traversal attempt
		strings.Repeat("A", 64),                    // uppercase hex not canonical
	} {
		if err := c.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("Get hit on invalid key %q", key)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("invalid keys touched the cache dir: %v", entries)
	}
}
