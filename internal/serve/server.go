package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// Server is the crossd HTTP API over a Scheduler:
//
//	POST /api/v1/jobs             submit a JobSpec -> JobStatus
//	                              (202 queued, 200 cache hit/coalesced,
//	                               400 invalid, 429 queue full + Retry-After,
//	                               503 draining)
//	GET  /api/v1/jobs             list job statuses, newest first
//	GET  /api/v1/jobs/{id}        one job's status
//	GET  /api/v1/jobs/{id}/result the completed JobResult (byte-identical
//	                              for cache hits), 409 until terminal
//	GET  /api/v1/jobs/{id}/stream NDJSON: one event per oracle failure
//	                              as batches complete, then a terminal event
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 JSON status+version (200) or "draining" (503)
//	GET  /debug/events            flight-recorder replay (?job=ID, ?n=N)
//	GET  /debug/pprof/...         the standard net/http/pprof handlers
type Server struct {
	sched *Scheduler
	opts  ServerOptions
	mux   *http.ServeMux
}

// ServerOptions configure the observability surface of the API.
type ServerOptions struct {
	// Metrics backs /metrics (nil = 404).
	Metrics *obs.Registry
	// Recorder backs /debug/events (nil = 404). Point it at the same
	// recorder the scheduler and cache write to.
	Recorder *obs.Recorder
	// Version is the build identity reported by /healthz (for example
	// buildinfo.Get().String()); empty omits the field.
	Version string
	// Cluster, when non-nil, is mounted at GET /cluster — on a
	// coordinator node it serves the cluster-wide aggregated metrics
	// and membership view.
	Cluster http.Handler
}

// NewServer wires the API over a scheduler.
func NewServer(sched *Scheduler, opts ServerOptions) *Server {
	s := &Server{sched: sched, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /api/v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /api/v1/cache/{key}", s.handleCachePut)
	if opts.Cluster != nil {
		s.mux.Handle("GET /cluster", opts.Cluster)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	job, err := s.sched.Submit(spec)
	switch {
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err == ErrQueueFull || err == ErrThrottled:
		// Backpressure: the hint scales with the backlog, so a client
		// honoring Retry-After naturally spreads a storm instead of
		// hammering a full queue every second.
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	st := job.Status()
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // served from cache, result already available
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].ID > statuses[j].ID })
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	data, done := job.Result()
	if !done {
		st := job.Status()
		if st.State == StateFailed || st.State == StateCancelled {
			writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job is %s: %s", st.State, st.Error)})
			return
		}
		writeJSON(w, http.StatusConflict, errorBody{Error: "job is " + st.State + "; retry after completion"})
		return
	}
	// Serve the stored bytes verbatim: a cached result is
	// byte-identical to the execution that produced it.
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	write := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	history, live := job.Subscribe()
	for _, ev := range history {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleCacheGet serves a finished result straight from the node's
// content-addressed cache — the peer-fetch side of the distributed
// cache tier. 404 is a plain miss, not an error.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed cache key"})
		return
	}
	data, ok := s.sched.opts.Cache.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "cache miss"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// maxCachePutBytes bounds an accepted cache offer; the largest real
// result (a full skew matrix) is well under a megabyte.
const maxCachePutBytes = 64 << 20

// handleCachePut accepts a peer's write-through offer: the bytes must
// decode as a JobResult whose content address matches the path key, so
// a confused peer cannot poison the tier.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed cache key"})
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxCachePutBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	if len(data) > maxCachePutBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "cache entry too large"})
		return
	}
	if !validPeerResult(key, data) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body is not a JobResult for key " + key})
		return
	}
	if err := s.sched.opts.Cache.Put(key, data); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opts.Metrics == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.opts.Metrics.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.sched.mu.Lock()
	draining := s.sched.draining
	s.sched.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Version string `json:"version,omitempty"`
	}{Status: "ok", Version: s.opts.Version})
}

// eventsBody is the /debug/events response: the flight recorder's
// retained window (oldest first) plus the lifetime event count, so a
// reader can tell how much history fell off the ring.
type eventsBody struct {
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"`
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Recorder == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	events := s.opts.Recorder.Events()
	if job := r.URL.Query().Get("job"); job != "" {
		filtered := events[:0]
		for _, ev := range events {
			if ev.Job == job {
				filtered = append(filtered, ev)
			}
		}
		events = filtered
	}
	if nstr := r.URL.Query().Get("n"); nstr != "" {
		n, err := strconv.Atoi(nstr)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "n must be a non-negative integer"})
			return
		}
		if n < len(events) {
			events = events[len(events)-n:] // most recent n, still oldest first
		}
	}
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, eventsBody{Total: s.opts.Recorder.Total(), Events: events})
}
