package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, opts SchedulerOptions) (*httptest.Server, *Scheduler, *Executor) {
	t.Helper()
	sched, exec := newTestScheduler(t, opts)
	srv := httptest.NewServer(NewServer(sched, ServerOptions{
		Metrics:  opts.Metrics,
		Recorder: opts.Recorder,
		Version:  "test-build",
	}))
	t.Cleanup(srv.Close)
	return srv, sched, exec
}

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, st
}

func getResult(t *testing.T, url, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/result", url, id))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			return data
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result returned %d: %s", resp.StatusCode, data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never produced a result", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The end-to-end acceptance path: submit (202), poll the result,
// resubmit the identical spec (200 + cache_hit), and the two result
// bodies are byte-identical while the executor ran exactly once.
func TestServerSubmitResultResubmit(t *testing.T) {
	srv, _, exec := newTestServer(t, SchedulerOptions{})
	spec := smallFuzzSpec()

	resp, st := postJob(t, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold submit returned %d, want 202", resp.StatusCode)
	}
	if st.CacheHit || st.ID == "" {
		t.Fatalf("cold submit status: %+v", st)
	}
	cold := getResult(t, srv.URL, st.ID)

	resp2, st2 := postJob(t, srv.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm submit returned %d, want 200", resp2.StatusCode)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("warm submit status: %+v", st2)
	}
	warm := getResult(t, srv.URL, st2.ID)
	if !bytes.Equal(cold, warm) {
		t.Error("cached result differs from cold result")
	}
	if n := exec.Executions(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}

	var res JobResult
	if err := json.Unmarshal(warm, &res); err != nil {
		t.Fatal(err)
	}
	if res.ReportSHA == "" || res.Fuzz == nil || !strings.Contains(res.Rendered, "fuzz campaign") {
		t.Errorf("result payload incomplete: sha=%q fuzz=%v", res.ReportSHA, res.Fuzz != nil)
	}
}

// The NDJSON stream carries one event per failure plus a terminal
// event, and a subscriber that connects after completion replays the
// same history.
func TestServerStream(t *testing.T) {
	srv, _, _ := newTestServer(t, SchedulerOptions{})
	_, st := postJob(t, srv.URL, smallFuzzSpec())

	readStream := func() []StreamEvent {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/stream", srv.URL, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("stream content type %q", ct)
		}
		var events []StreamEvent
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var ev StreamEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			events = append(events, ev)
		}
		return events
	}

	live := readStream() // blocks until the job finishes and closes the stream
	if len(live) == 0 {
		t.Fatal("empty stream")
	}
	last := live[len(live)-1]
	if last.Type != StateDone || last.ReportSHA == "" {
		t.Fatalf("terminal event: %+v", last)
	}
	failures := 0
	for _, ev := range live[:len(live)-1] {
		if ev.Type != "failure" || ev.Oracle == "" || ev.Signature == "" {
			t.Fatalf("non-failure mid-stream event: %+v", ev)
		}
		failures++
	}
	if failures == 0 {
		t.Error("fuzz job streamed no failures (seed 5 is known to produce them)")
	}

	replay := readStream() // job is terminal: pure history replay
	if len(replay) != len(live) {
		t.Fatalf("replay has %d events, live had %d", len(replay), len(live))
	}
	for i := range replay {
		if replay[i] != live[i] {
			t.Errorf("replay event %d differs: %+v vs %+v", i, replay[i], live[i])
		}
	}
}

// Queue overload surfaces as 429 + Retry-After; draining as 503 on
// both submit and healthz.
func TestServerBackpressureAndDrain(t *testing.T) {
	runner := newBlockingRunner()
	srv, sched, _ := newTestServer(t, SchedulerOptions{Workers: 1, QueueDepth: 1, Executor: runner})

	if resp, _ := postJob(t, srv.URL, JobSpec{Kind: KindFuzz, Seed: 300, N: 10}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d", resp.StatusCode)
	}
	<-runner.started
	if resp, _ := postJob(t, srv.URL, JobSpec{Kind: KindFuzz, Seed: 301, N: 10}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d", resp.StatusCode)
	}
	resp, _ := postJob(t, srv.URL, JobSpec{Kind: KindFuzz, Seed: 302, N: 10})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	close(runner.release)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sched.Drain(ctx)

	if resp, _ := postJob(t, srv.URL, JobSpec{Kind: KindFuzz, Seed: 303, N: 10}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit returned %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining returned %d, want 503", hr.StatusCode)
	}
}

func TestServerRejectsMalformedSubmissions(t *testing.T) {
	srv, _, exec := newTestServer(t, SchedulerOptions{})
	for _, body := range []string{
		`{"kind":"fuzz","n":10,"bogus_field":1}`, // unknown field
		`{"kind":"warp","n":10}`,                 // unknown kind
		`not json`,
	} {
		resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q returned %d, want 400", body, resp.StatusCode)
		}
	}
	if exec.Executions() != 0 {
		t.Error("malformed submissions reached the executor")
	}
}

func TestServerStatusAndList(t *testing.T) {
	srv, _, _ := newTestServer(t, SchedulerOptions{})
	_, st := postJob(t, srv.URL, smallFuzzSpec())
	getResult(t, srv.URL, st.ID)

	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var one JobStatus
	json.NewDecoder(resp.Body).Decode(&one)
	resp.Body.Close()
	if one.ID != st.ID || one.State != StateDone || one.Duration <= 0 {
		t.Errorf("status: %+v", one)
	}

	resp, err = http.Get(srv.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list: %+v", list)
	}

	resp, err = http.Get(srv.URL + "/api/v1/jobs/job-999999-deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job returned %d, want 404", resp.StatusCode)
	}
}

// /metrics carries the service gauges in Prometheus text form, and the
// cache-hit counter moves on resubmission.
func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv, _, _ := newTestServer(t, SchedulerOptions{Metrics: reg})
	spec := smallFuzzSpec()
	_, st := postJob(t, srv.URL, spec)
	getResult(t, srv.URL, st.ID)
	postJob(t, srv.URL, spec) // cache hit

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		obs.MetricCacheHits + " 1",
		obs.MetricCacheMisses + " 1",
		obs.MetricCacheHitRatio + " 0.5",
		obs.MetricJobsSubmitted + `{kind="fuzz"} 2`,
		obs.MetricJobsFinished + `{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
