package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// smallFuzzSpec is cheap enough for unit tests but produces failures.
func smallFuzzSpec() JobSpec {
	return JobSpec{Kind: KindFuzz, Seed: 5, N: 40, Parallel: 2}
}

func newTestScheduler(t *testing.T, opts SchedulerOptions) (*Scheduler, *Executor) {
	t.Helper()
	if opts.Cache == nil {
		c, err := NewCache(16, "")
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	var exec *Executor
	if opts.Executor == nil {
		exec = &Executor{}
		opts.Executor = exec
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 8
	}
	s := NewScheduler(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, exec
}

func waitDone(t *testing.T, job *Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish", job.ID)
	}
}

// The acceptance-criteria core: resubmitting an identical spec returns
// the byte-identical report from cache without re-executing a single
// case.
func TestResubmitServedFromCache(t *testing.T) {
	s, exec := newTestScheduler(t, SchedulerOptions{})
	first, err := s.Submit(smallFuzzSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	if st := first.Status(); st.State != StateDone || st.CacheHit {
		t.Fatalf("first run: %+v", st)
	}
	if n := exec.Executions(); n != 1 {
		t.Fatalf("first submission executed %d times", n)
	}
	cold, _ := first.Result()

	second, err := s.Submit(smallFuzzSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second)
	st := second.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("second run not a cache hit: %+v", st)
	}
	if n := exec.Executions(); n != 1 {
		t.Errorf("cache hit re-executed: %d executions", n)
	}
	cached, _ := second.Result()
	if !bytes.Equal(cold, cached) {
		t.Error("cached result is not byte-identical to the cold result")
	}
	var res JobResult
	if err := json.Unmarshal(cached, &res); err != nil {
		t.Fatalf("result is not valid JSON: %v", err)
	}
	if res.Fuzz == nil || res.Fuzz.Failures == 0 || res.ReportSHA == "" {
		t.Errorf("result payload incomplete: %+v", res)
	}
}

// Overlapping concurrent submissions of the same spec set: every job
// terminates done, each distinct spec executes exactly once (byKey
// coalescing plus the under-lock cache probe), and all clients of a
// key observe identical bytes.
func TestConcurrentOverlappingSubmissions(t *testing.T) {
	s, exec := newTestScheduler(t, SchedulerOptions{Workers: 4, QueueDepth: 64})
	specs := []JobSpec{
		{Kind: KindFuzz, Seed: 5, N: 40, Parallel: 2},
		{Kind: KindFuzz, Seed: 6, N: 40, Parallel: 2},
		{Kind: KindFuzz, Seed: 7, N: 40, Parallel: 2},
	}
	const clients = 6
	results := make([][]*Job, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, spec := range specs {
				job, err := s.Submit(spec)
				if err != nil {
					t.Errorf("client %d: %v", cl, err)
					continue
				}
				results[cl] = append(results[cl], job)
			}
		}()
	}
	wg.Wait()
	byKey := map[string][]byte{}
	for cl := range results {
		for _, job := range results[cl] {
			waitDone(t, job)
			if st := job.Status(); st.State != StateDone {
				t.Fatalf("job %s finished %s (%s)", job.ID, st.State, st.Error)
			}
			data, _ := job.Result()
			if prev, ok := byKey[job.Key]; ok {
				if !bytes.Equal(prev, data) {
					t.Errorf("key %s served two different results", job.Key)
				}
			} else {
				byKey[job.Key] = data
			}
		}
	}
	if len(byKey) != len(specs) {
		t.Errorf("distinct keys = %d, want %d", len(byKey), len(specs))
	}
	if n := exec.Executions(); n != int64(len(specs)) {
		t.Errorf("executions = %d, want %d (one per distinct spec)", n, len(specs))
	}
}

// blockingRunner parks every Execute until released (or its context
// ends), making queue-occupancy tests deterministic.
type blockingRunner struct {
	started chan struct{} // one token per Execute entry
	release chan struct{}
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan struct{}, 16), release: make(chan struct{})}
}

func (r *blockingRunner) Execute(ctx context.Context, spec JobSpec, _ func(core.Failure)) (*JobResult, error) {
	r.started <- struct{}{}
	select {
	case <-r.release:
		key, err := spec.CacheKey()
		if err != nil {
			return nil, err
		}
		return &JobResult{Key: key, Kind: spec.Kind, Spec: spec, Rendered: "fake", ReportSHA: core.HashBytes([]byte("fake"))}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Queue-depth admission control: with the single worker wedged and the
// queue at depth, a third distinct spec is rejected with ErrQueueFull,
// while a duplicate of the queued spec still coalesces (no slot
// needed).
func TestQueueBackpressure(t *testing.T) {
	runner := newBlockingRunner()
	s, _ := newTestScheduler(t, SchedulerOptions{Workers: 1, QueueDepth: 1, Executor: runner})

	running, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 100, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started // worker holds job 1; queue is empty again
	queued, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 101, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 102, N: 10}); err != ErrQueueFull {
		t.Errorf("overload submission returned %v, want ErrQueueFull", err)
	}
	co, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 101, N: 10})
	if err != nil {
		t.Fatalf("coalesced submission rejected: %v", err)
	}
	if co != queued {
		t.Error("identical queued spec did not coalesce onto the live job")
	}
	close(runner.release)
	waitDone(t, running)
	waitDone(t, queued)
	if st := queued.Status(); st.State != StateDone {
		t.Errorf("queued job finished %s", st.State)
	}
}

// Drain lets admitted jobs finish and rejects new ones.
func TestDrain(t *testing.T) {
	c, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(SchedulerOptions{Workers: 2, QueueDepth: 8, Cache: c, Executor: &Executor{}})
	job, err := s.Submit(smallFuzzSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	s.Drain(ctx)
	if st := job.Status(); st.State != StateDone {
		t.Errorf("in-flight job not drained: %+v", st)
	}
	if _, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 9, N: 10}); err != ErrDraining {
		t.Errorf("post-drain submission returned %v, want ErrDraining", err)
	}
	s.Drain(ctx) // idempotent
}

// An expired drain context cancels still-running jobs instead of
// hanging forever.
func TestDrainDeadlineCancelsRunning(t *testing.T) {
	runner := newBlockingRunner()
	c, _ := NewCache(16, "")
	s := NewScheduler(SchedulerOptions{Workers: 1, QueueDepth: 4, Cache: c, Executor: runner})
	job, err := s.Submit(JobSpec{Kind: KindFuzz, Seed: 200, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(ctx)
	waitDone(t, job)
	if st := job.Status(); st.State != StateCancelled {
		t.Errorf("job under expired drain = %s, want cancelled", st.State)
	}
}

// A job timeout cancels the run; nothing is cached for its key.
func TestJobTimeoutCancelsAndSkipsCache(t *testing.T) {
	runner := newBlockingRunner() // never released: only ctx can end it
	s, _ := newTestScheduler(t, SchedulerOptions{
		Workers:    1,
		QueueDepth: 4,
		JobTimeout: 30 * time.Millisecond,
		Executor:   runner,
	})
	spec := JobSpec{Kind: KindFuzz, Seed: 42, N: 10}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st.State != StateCancelled {
		t.Fatalf("timed-out job state = %s (%s)", st.State, st.Error)
	}
	key, _ := spec.CacheKey()
	if _, ok := s.opts.Cache.Get(key); ok {
		t.Error("cancelled job left a cached (partial) result")
	}
	if _, done := job.Result(); done {
		t.Error("cancelled job claims a result")
	}
}

// The service metrics move: submissions count, hit ratio reflects the
// second (cached) submission, the cache hit never reaches a worker.
func TestSchedulerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newTestScheduler(t, SchedulerOptions{Metrics: reg})
	j1, err := s.Submit(smallFuzzSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	j2, err := s.Submit(smallFuzzSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if v := reg.Counter(obs.MetricCacheHits).Value(); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}
	if v := reg.Counter(obs.MetricCacheMisses).Value(); v != 1 {
		t.Errorf("cache misses = %d, want 1", v)
	}
	if v := reg.Gauge(obs.MetricCacheHitRatio).Value(); v != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", v)
	}
	if v := reg.Counter(obs.MetricJobsSubmitted, "kind", KindFuzz).Value(); v != 2 {
		t.Errorf("submitted = %d, want 2", v)
	}
	if v := reg.Counter(obs.MetricJobsFinished, "state", StateDone).Value(); v != 1 {
		t.Errorf("finished done = %d, want 1 (the cache hit never ran)", v)
	}
	if v := reg.Gauge(obs.MetricInflightJobs).Value(); v != 0 {
		t.Errorf("in-flight after completion = %v, want 0", v)
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	s, exec := newTestScheduler(t, SchedulerOptions{})
	for _, spec := range []JobSpec{
		{Kind: "nope"},
		{Kind: KindFuzz, N: 0},
		{Kind: KindFuzz, N: -5},
		{Kind: KindCorpus, Families: []string{"zz"}},
		{Kind: KindFuzz, N: 10, Parallel: -1},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit accepted invalid spec %+v", spec)
		}
	}
	if exec.Executions() != 0 {
		t.Error("invalid specs reached the executor")
	}
}

// Cache keys: execution hints are excluded, result-shaping fields are
// included, fuzz confs 0 and 6 (the default) are the same job.
func TestCacheKeySemantics(t *testing.T) {
	base := JobSpec{Kind: KindFuzz, Seed: 1, N: 100, Parallel: 1}
	k1, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Parallel = 8
	if k2, _ := p.CacheKey(); k2 != k1 {
		t.Error("Parallel changed the cache key")
	}
	d := base
	d.Confs = 6
	if k3, _ := d.CacheKey(); k3 != k1 {
		t.Error("confs=6 (the default) hashed differently from confs=0")
	}
	n := base
	n.N = 101
	if k4, _ := n.CacheKey(); k4 == k1 {
		t.Error("N did not change the cache key")
	}
	c1 := JobSpec{Kind: KindCorpus, Families: []string{"sh", "ss"}}
	c2 := JobSpec{Kind: KindCorpus, Families: []string{"ss", "sh"}}
	kc1, err := c1.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc2, _ := c2.CacheKey(); kc2 != kc1 {
		t.Error("family order changed the cache key")
	}
	conf := JobSpec{Kind: KindCorpus, Conf: map[string]string{"spark.sql.ansi.enabled": "false"}}
	if kc3, _ := conf.CacheKey(); kc3 == kc1 {
		t.Error("conf did not change the corpus cache key")
	}
}
