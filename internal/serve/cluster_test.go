package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fakePeers is an in-memory serve.PeerCache for scheduler unit tests.
type fakePeers struct {
	mu      sync.Mutex
	store   map[string][]byte
	fetches int
	offers  int
}

func newFakePeers() *fakePeers { return &fakePeers{store: map[string][]byte{}} }

func (p *fakePeers) Fetch(ctx context.Context, key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fetches++
	data, ok := p.store[key]
	return data, ok
}

func (p *fakePeers) Offer(key string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.offers++
	p.store[key] = append([]byte(nil), data...)
}

func (p *fakePeers) offerCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.offers
}

// runOnce executes the spec on a throwaway scheduler and returns the
// stored result bytes.
func runOnce(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	s, _ := newTestScheduler(t, SchedulerOptions{})
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st.State != StateDone {
		t.Fatalf("seed run: %+v", st)
	}
	data, _ := job.Result()
	return data
}

// A peer-cache hit must skip execution entirely and serve bytes
// identical to the original run — the distributed-cache half of the
// zero-re-execution reshard property.
func TestPeerCacheHitSkipsExecution(t *testing.T) {
	spec := smallFuzzSpec()
	original := runOnce(t, spec)
	key, err := spec.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	peers := newFakePeers()
	peers.store[key] = original
	metrics := obs.NewRegistry()
	s, exec := newTestScheduler(t, SchedulerOptions{Peers: peers, Metrics: metrics})
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	st := job.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("peer hit should finish done as a cache hit: %+v", st)
	}
	if n := exec.Executions(); n != 0 {
		t.Errorf("peer hit executed %d times, want 0", n)
	}
	data, _ := job.Result()
	if !bytes.Equal(data, original) {
		t.Error("peer-served result is not byte-identical to the original")
	}
	if got := metrics.Counter(obs.MetricPeerCacheHits).Value(); got != 1 {
		t.Errorf("peer hit counter = %v, want 1", got)
	}

	// And the local cache was warmed: resubmission stays at 0 executions
	// without another peer fetch.
	before := peers.fetches
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again)
	if n := exec.Executions(); n != 0 {
		t.Errorf("resubmission after peer hit executed %d times", n)
	}
	if peers.fetches != before {
		t.Errorf("resubmission probed peers again (local cache not warmed)")
	}
}

// A peer miss falls through to local execution and offers the computed
// result back to the tier (write-through to the key's owner).
func TestPeerCacheMissExecutesAndOffers(t *testing.T) {
	spec := smallFuzzSpec()
	peers := newFakePeers()
	metrics := obs.NewRegistry()
	s, exec := newTestScheduler(t, SchedulerOptions{Peers: peers, Metrics: metrics})
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st.State != StateDone || st.CacheHit {
		t.Fatalf("peer miss should execute: %+v", st)
	}
	if n := exec.Executions(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	if got := metrics.Counter(obs.MetricPeerCacheMisses).Value(); got != 1 {
		t.Errorf("peer miss counter = %v, want 1", got)
	}
	if peers.offerCount() != 1 {
		t.Fatalf("offers = %d, want 1 (write-through after execution)", peers.offerCount())
	}
	key, _ := spec.CacheKey()
	data, _ := job.Result()
	if !bytes.Equal(peers.store[key], data) {
		t.Error("offered bytes differ from the stored result")
	}
}

// A peer returning bytes for the wrong key (a confused or poisoned
// tier) must be ignored: the scheduler validates the payload's content
// address before trusting it.
func TestPeerCacheRejectsMismatchedResult(t *testing.T) {
	spec := smallFuzzSpec()
	other := spec
	other.Seed = 6
	wrong := runOnce(t, other)

	key, _ := spec.CacheKey()
	peers := newFakePeers()
	peers.store[key] = wrong // bytes decode fine but carry the other key
	s, exec := newTestScheduler(t, SchedulerOptions{Peers: peers})
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st.State != StateDone || st.CacheHit {
		t.Fatalf("mismatched peer result must not short-circuit: %+v", st)
	}
	if n := exec.Executions(); n != 1 {
		t.Errorf("executions = %d, want 1 (recompute after rejecting peer bytes)", n)
	}
}

// Two sub-jobs split from different parent campaigns share a cache key
// when their specs coincide, and the scheduler coalesces them into one
// execution — byKey is keyed on the content address alone, not on any
// parent identity.
func TestSubJobsOfDifferentParentsCoalesce(t *testing.T) {
	runner := newBlockingRunner()
	s, _ := newTestScheduler(t, SchedulerOptions{Executor: runner, Workers: 1})

	// The same seed-range shard, as two parents would cut it: parent A
	// splitting [0,40) into [0,20)+[20,40), parent B splitting [20,60)
	// into [20,40)+[40,60). The [20,40) shard is shared.
	shard := JobSpec{Kind: KindFuzz, Seed: 5, N: 20, From: 20, Shard: true}
	first, err := s.Submit(shard)
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started // the shard is executing, not yet cached

	second, err := s.Submit(shard)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("concurrent identical shards got distinct jobs %s and %s", first.ID, second.ID)
	}
	close(runner.release)
	waitDone(t, first)
	waitDone(t, second)
	select {
	case <-runner.started:
		t.Error("coalesced shard executed a second time")
	default:
	}
}

// The peer-fetch endpoints: GET serves raw cached bytes, PUT validates
// the payload against the key before accepting it.
func TestCacheEndpoints(t *testing.T) {
	spec := smallFuzzSpec()
	key, _ := spec.CacheKey()

	sched, _ := newTestScheduler(t, SchedulerOptions{})
	srv := httptest.NewServer(NewServer(sched, ServerOptions{}))
	defer srv.Close()

	job, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	want, _ := job.Result()

	resp, err := http.Get(srv.URL + "/api/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("cache GET: status %d, %d bytes (want 200 with the stored result)", resp.StatusCode, len(got))
	}

	// A miss is 404; a malformed key is 400.
	missKey := strings.Repeat("0", len(key))
	for path, wantCode := range map[string]int{
		"/api/v1/cache/" + missKey:    http.StatusNotFound,
		"/api/v1/cache/not-a-key":     http.StatusBadRequest,
		"/api/v1/cache/" + key + "..": http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
	}

	// PUT into a fresh node, then read it back.
	sched2, exec2 := newTestScheduler(t, SchedulerOptions{})
	srv2 := httptest.NewServer(NewServer(sched2, ServerOptions{}))
	defer srv2.Close()

	put := func(path string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, srv2.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("/api/v1/cache/"+key, want); code != http.StatusNoContent {
		t.Fatalf("cache PUT: status %d, want 204", code)
	}
	// A poisoning attempt — valid JSON under the wrong key — is refused.
	if code := put("/api/v1/cache/"+missKey, want); code != http.StatusBadRequest {
		t.Errorf("mismatched PUT accepted: status %d, want 400", code)
	}
	if code := put("/api/v1/cache/"+key, []byte("not json")); code != http.StatusBadRequest {
		t.Errorf("garbage PUT accepted: status %d, want 400", code)
	}

	// The planted entry now serves a submission with zero executions.
	job2, err := sched2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job2)
	if st := job2.Status(); st.State != StateDone || !st.CacheHit {
		t.Fatalf("submission after peer PUT: %+v", st)
	}
	if n := exec2.Executions(); n != 0 {
		t.Errorf("peer-planted entry still executed %d times", n)
	}
	var res JobResult
	data, _ := job2.Result()
	if err := json.Unmarshal(data, &res); err != nil || res.Key != key {
		t.Errorf("served result invalid: err=%v key=%s", err, res.Key)
	}
}
