package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// The tentpole acceptance path: a job's wall clock decomposes into the
// four pipeline stages, each exported as a labelled histogram whose
// buckets carry the job's trace ID as an exemplar, joined to a root
// span in the tracer.
func TestStageMetricsWithExemplars(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.WallClock{})
	rec := obs.NewRecorder(64)
	srv, _, _ := newTestServer(t, SchedulerOptions{Metrics: reg, Tracer: tracer, Recorder: rec})
	_, st := postJob(t, srv.URL, smallFuzzSpec())
	getResult(t, srv.URL, st.ID)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, stage := range []string{obs.StageQueueWait, obs.StageCacheProbe, obs.StageRun, obs.StageEncode} {
		if !strings.Contains(text, obs.MetricStageDurationMs+`_count{stage="`+stage+`"} 1`) {
			t.Errorf("/metrics missing stage %q breakdown:\n%s", stage, text)
		}
	}
	// At least one bucket line must carry an exemplar trace ID, and
	// that ID must resolve to a span the tracer retained.
	var trace string
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, obs.MetricStageDurationMs+"_bucket") {
			continue
		}
		if i := strings.Index(line, `# {trace_id="`); i >= 0 {
			trace = line[i+len(`# {trace_id="`):]
			trace = trace[:strings.Index(trace, `"`)]
			break
		}
	}
	if trace == "" {
		t.Fatalf("no stage bucket carries an exemplar:\n%s", text)
	}
	found := false
	for _, sp := range tracer.Snapshot() {
		if sp.TraceID() == trace && sp.System == systemCrossd && strings.HasPrefix(sp.Name, "job/") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("exemplar trace %q does not resolve to a job root span", trace)
	}
}

// /debug/events replays the flight-recorder window for a just-finished
// job: admission, cache miss, start, and completion, in order, plus a
// coherent view under the ?job= and ?n= filters.
func TestDebugEventsReplay(t *testing.T) {
	// The fuzz job alone fires >100 oracle events; size the ring so the
	// admission events survive to the replay.
	rec := obs.NewRecorder(1024)
	srv, _, _ := newTestServer(t, SchedulerOptions{Recorder: rec})
	_, st := postJob(t, srv.URL, smallFuzzSpec())
	getResult(t, srv.URL, st.ID)

	getEvents := func(query string) eventsBody {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/events%s returned %d", query, resp.StatusCode)
		}
		var body eventsBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := getEvents("?job=" + st.ID)
	var types []string
	for _, ev := range body.Events {
		types = append(types, ev.Type)
		if ev.Job != st.ID {
			t.Errorf("job filter leaked event %+v", ev)
		}
	}
	joined := strings.Join(types, ",")
	for _, seq := range []string{obs.EvCacheMiss, obs.EvJobAdmitted, obs.EvJobStarted, obs.EvJobDone} {
		if !strings.Contains(joined, seq) {
			t.Errorf("job %s events missing %q: %v", st.ID, seq, types)
		}
	}
	if types[len(types)-1] != obs.EvJobDone {
		t.Errorf("last event for a done job is %q", types[len(types)-1])
	}
	// The fuzz seed produces oracle failures; each must be recorded.
	if !strings.Contains(joined, obs.EvOracleFailure) {
		t.Errorf("no oracle firings recorded: %v", types)
	}

	// A resubmission is a cache hit, visible in the unfiltered feed.
	postJob(t, srv.URL, smallFuzzSpec())
	all := getEvents("")
	hit := false
	for _, ev := range all.Events {
		if ev.Type == obs.EvCacheHit {
			hit = true
		}
	}
	if !hit {
		t.Errorf("cache hit not recorded; feed: %+v", all.Events)
	}
	if all.Total != uint64(rec.Total()) || all.Total == 0 {
		t.Errorf("total = %d, recorder says %d", all.Total, rec.Total())
	}

	last := getEvents("?n=1")
	if len(last.Events) != 1 {
		t.Fatalf("?n=1 returned %d events", len(last.Events))
	}
	if resp, err := http.Get(srv.URL + "/debug/events?n=-1"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("negative n returned %d, want 400", resp.StatusCode)
		}
	}
}

// Without a recorder the endpoint is absent, not empty — a deployment
// that disables the ring should fail probes loudly.
func TestDebugEventsDisabled(t *testing.T) {
	srv, _, _ := newTestServer(t, SchedulerOptions{})
	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/events without a recorder returned %d, want 404", resp.StatusCode)
	}
}

// Every NDJSON stream line carries the job's trace ID, and that ID
// resolves to the job root span — the satellite that joins the failure
// stream to the span chains.
func TestStreamCarriesTrace(t *testing.T) {
	tracer := obs.NewTracer(obs.WallClock{})
	srv, _, _ := newTestServer(t, SchedulerOptions{Tracer: tracer})
	_, st := postJob(t, srv.URL, smallFuzzSpec())

	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/stream", srv.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	trace := events[0].Trace
	if trace == "" {
		t.Fatal("stream events carry no trace ID")
	}
	for i, ev := range events {
		if ev.Trace != trace {
			t.Errorf("event %d trace %q != %q", i, ev.Trace, trace)
		}
	}
	found := false
	for _, sp := range tracer.Snapshot() {
		if sp.TraceID() == trace {
			found = true
		}
	}
	if !found {
		t.Errorf("stream trace %q not present in the tracer", trace)
	}
}

// /healthz reports the build identity alongside readiness.
func TestHealthzReportsVersion(t *testing.T) {
	srv, _, _ := newTestServer(t, SchedulerOptions{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}
	var body struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Version != "test-build" {
		t.Errorf("healthz body = %+v", body)
	}
}

// The pprof handlers are mounted on the same mux.
func TestPprofWired(t *testing.T) {
	srv, _, _ := newTestServer(t, SchedulerOptions{})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s returned %d", path, resp.StatusCode)
		}
	}
}

// LRU evictions reach the flight recorder with the evicted key, and
// drain transitions bracket the recorder feed.
func TestRecorderCacheEvictAndDrain(t *testing.T) {
	rec := obs.NewRecorder(32)
	c, err := NewCache(1, "")
	if err != nil {
		t.Fatal(err)
	}
	c.SetRecorder(rec)
	k1 := strings.Repeat("1", 64)
	k2 := strings.Repeat("2", 64)
	if err := c.Put(k1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Type != obs.EvCacheEvict || evs[0].Key != k1 {
		t.Fatalf("evict events = %+v", evs)
	}

	s, _ := newTestScheduler(t, SchedulerOptions{Recorder: rec})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)
	var sawBegin, sawEnd bool
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.EvDrainBegin:
			sawBegin = true
		case obs.EvDrainEnd:
			sawEnd = !sawBegin || true
		}
	}
	if !sawBegin || !sawEnd {
		t.Errorf("drain transitions not recorded: %+v", rec.Events())
	}
}
