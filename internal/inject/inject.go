// Package inject is the registry of the 15 Spark–Hive data-plane
// discrepancies modeled by the simulators (§8.2 of the paper). Each
// entry records the JIRA issue it reproduces, the §8.2 problem
// categories it belongs to, the classifier signatures that map observed
// test failures onto it, and — when one exists — the configuration that
// resolves it ("relying on custom (non-default) configurations").
//
// The registry is the ground truth the cross-testing harness is
// validated against: the harness must *discover* all 15 through its
// oracles without consulting the registry.
package inject

import "sort"

// Category is a §8.2 problem category.
type Category string

// The five problem categories of §8.2.
const (
	CannotRead        Category = "cannot-read-what-was-written"
	TypeViolation     Category = "type-violation"
	ConfigExposure    Category = "exposing-internal-configurations"
	InconsistentError Category = "inconsistent-error-behavior"
	CustomConfig      Category = "relying-on-custom-configurations"
)

// Categories lists the five categories with the paper's counts.
func Categories() []Category {
	return []Category{CannotRead, TypeViolation, ConfigExposure, InconsistentError, CustomConfig}
}

// PaperCategoryCounts are the §8.2 counts (2/2/5/7/8 of 15).
var PaperCategoryCounts = map[Category]int{
	CannotRead:        2,
	TypeViolation:     2,
	ConfigExposure:    5,
	InconsistentError: 7,
	CustomConfig:      8,
}

// Discrepancy is one modeled Spark–Hive data-plane discrepancy.
type Discrepancy struct {
	Number     int    // 1..15, the paper's artifact numbering
	JIRA       string // primary issue id ("" for the two unreported ones)
	Title      string // one-line description
	Categories []Category
	// Signatures are the classifier keys that map harness failures to
	// this discrepancy.
	Signatures []string
	// FixConf is the session configuration that resolves or unifies the
	// behaviour (empty when no configuration addresses it).
	FixConf map[string]string
	// Module names the code module the discrepancy's behaviour lives in.
	// Finding 13/14: most CSI fixes land in dedicated connector modules,
	// which makes connectors "an effective starting point for CSI
	// testing and verification".
	Module string
	// InConnector reports whether that module is a dedicated
	// cross-system connector (vs. generic engine code).
	InConnector bool
	// SinceVersion is the "system:version" that introduced the
	// discrepancy-relevant behavior ("" when it predates every modeled
	// version). FixedIn is the "system:version" whose defaults remove it
	// ("" when no modeled version does). A version-skew run whose pair
	// straddles one of these boundaries sees the discrepancy on one side
	// only — that is the cell-by-cell content of the skew matrix.
	SinceVersion string
	FixedIn      string
	// VersionNote anchors the boundary to the JIRA issue or
	// migration-guide entry that moved it.
	VersionNote string
}

// Registry returns the 15 discrepancies in artifact order.
func Registry() []Discrepancy {
	return []Discrepancy{
		{
			Number: 1, JIRA: "SPARK-39075",
			SinceVersion: "spark:2.4.0", VersionNote: "SPARK-24768",
			Module: "spark-avro connector (AvroDeserializer)", InConnector: true,
			Title:      "Avro widens BYTE/SHORT to INT on write; the DataFrame reader throws IncompatibleSchemaException reading them back",
			Categories: []Category{CannotRead, ConfigExposure, InconsistentError},
			Signatures: []string{"avro-incompatible-schema"},
		},
		{
			Number: 2, JIRA: "SPARK-39158",
			Module: "spark-hive connector (legacy decimal writer)", InConnector: true,
			Title:      "Decimals written by the DataFrame writer use Spark's legacy binary encoding; HiveQL reads fail with SerDeException",
			Categories: []Category{CannotRead, ConfigExposure},
			Signatures: []string{"legacy-binary-decimal"},
			FixConf:    map[string]string{"spark.sql.hive.writeLegacyDecimal": "false"},
		},
		{
			Number: 3, JIRA: "HIVE-26533",
			SinceVersion: "spark:2.4.0", VersionNote: "SPARK-24768",
			Module: "hive Avro SerDe + HiveExternalCatalog fallback", InConnector: true,
			Title:      "SparkSQL write/read via Avro converts BYTE/SHORT to INT and loses column-name case (warning: not case preserving)",
			Categories: []Category{TypeViolation, ConfigExposure},
			Signatures: []string{"integral-widening"},
		},
		{
			Number: 4, JIRA: "HIVE-26531",
			SinceVersion: "spark:2.4.0", VersionNote: "SPARK-24768",
			Module: "hive Avro SerDe (schema conversion)", InConnector: true,
			Title:      "Avro rejects non-string map keys that ORC and Parquet accept",
			Categories: []Category{ConfigExposure},
			Signatures: []string{"avro-map-key"},
		},
		{
			Number: 5, JIRA: "SPARK-40439",
			SinceVersion: "spark:3.0.0", VersionNote: "SPARK-28730",
			Module: "spark sql store assignment (generic insert path)", InConnector: false,
			Title:      "Decimal with excess precision: SparkSQL throws, DataFrame writes NULL silently",
			Categories: []Category{InconsistentError, CustomConfig},
			Signatures: []string{"insert-decimal-range"},
			FixConf:    map[string]string{"spark.sql.storeAssignmentPolicy": "legacy"},
		},
		{
			Number: 6, JIRA: "HIVE-26528",
			Module: "spark-parquet connector (INT96 timestamp writer)", InConnector: true,
			Title:      "Spark's Parquet INT96 writer stores session-zone-adjusted timestamps; Hive ignores the writer zone and reads shifted values",
			Categories: []Category{ConfigExposure},
			Signatures: []string{"timestamp-zone"},
			FixConf:    map[string]string{"spark.sql.session.timeZone": "UTC"},
		},
		{
			Number: 7, JIRA: "",
			SinceVersion: "spark:3.0.0", VersionNote: "SPARK-26651",
			Module: "spark/hive datetime rebase (generic)", InConnector: false,
			Title:      "Same root cause as #6, different behavior: pre-Gregorian dates shift between the proleptic and hybrid calendars",
			Categories: nil,
			Signatures: []string{"date-rebase"},
			FixConf:    map[string]string{"spark.sql.legacy.datetimeRebase": "true"},
		},
		{
			Number: 8, JIRA: "SPARK-40616",
			SinceVersion: "spark:3.1.0", VersionNote: "SPARK-33480",
			Module: "spark char/varchar read handling (generic)", InConnector: false,
			Title:      "CHAR(n): Hive pads to n on read, Spark strips the trailing pad",
			Categories: []Category{TypeViolation, CustomConfig},
			Signatures: []string{"char-padding"},
			FixConf:    map[string]string{"spark.sql.readSideCharPadding": "true"},
		},
		{
			Number: 9, JIRA: "SPARK-40525",
			SinceVersion: "spark:3.0.0", VersionNote: "spark-3.0-migration:ansi",
			Module: "spark sql cast evaluation (generic)", InConnector: false,
			Title:      "IEEE spellings ('NaN', 'Infinity') into FLOAT/DOUBLE: SparkSQL rejects under ANSI, DataFrame and Hive accept or null silently",
			Categories: []Category{InconsistentError, CustomConfig},
			Signatures: []string{"insert-float-invalid"},
			FixConf:    map[string]string{"spark.sql.ansi.enabled": "false"},
		},
		{
			Number: 10, JIRA: "SPARK-40624",
			SinceVersion: "spark:3.0.0", VersionNote: "SPARK-28730",
			Module: "spark sql store assignment (generic insert path)", InConnector: false,
			Title:      "INT/BIGINT range violations on insert: SparkSQL throws, DataFrame wraps, Hive nulls",
			Categories: []Category{InconsistentError, CustomConfig},
			Signatures: []string{"insert-int-range"},
			FixConf:    map[string]string{"spark.sql.storeAssignmentPolicy": "legacy"},
		},
		{
			Number: 11, JIRA: "",
			SinceVersion: "spark:3.0.0", VersionNote: "SPARK-28730",
			Module: "spark sql store assignment (generic insert path)", InConnector: false,
			Title:      "Addressed with the same config as #10: TINYINT/SMALLINT range violations split the same way",
			Categories: []Category{InconsistentError, CustomConfig},
			Signatures: []string{"insert-smallint-range"},
			FixConf:    map[string]string{"spark.sql.storeAssignmentPolicy": "legacy"},
		},
		{
			Number: 12, JIRA: "SPARK-40629",
			SinceVersion: "spark:3.0.0", VersionNote: "spark-3.0-migration:ansi",
			Module: "spark sql cast evaluation (generic)", InConnector: false,
			Title:      "Invalid DATE/TIMESTAMP strings: SparkSQL throws, DataFrame and Hive write NULL silently",
			Categories: []Category{InconsistentError, CustomConfig},
			Signatures: []string{"insert-datetime-invalid"},
			FixConf:    map[string]string{"spark.sql.ansi.enabled": "false"},
		},
		{
			Number: 13, JIRA: "",
			SinceVersion: "spark:3.1.0", VersionNote: "SPARK-33480",
			Module: "spark char/varchar length checks (generic)", InConnector: false,
			Title:      "VARCHAR/CHAR length overflow: SparkSQL throws, DataFrame and Hive truncate silently; spark.sql.legacy.charVarcharAsString removes the check",
			Categories: []Category{InconsistentError, CustomConfig},
			Signatures: []string{"insert-charlength"},
			FixConf:    map[string]string{"spark.sql.legacy.charVarcharAsString": "true"},
		},
		{
			Number: 14, JIRA: "SPARK-40637",
			SinceVersion: "hive:3.0.0", VersionNote: "SPARK-40637",
			Module: "hive ORC SerDe (struct reader)", InConnector: true,
			Title:      "A struct whose members are all NULL folds to NULL through Hive's ORC reader but not Spark's",
			Categories: nil,
			Signatures: []string{"struct-null"},
		},
		{
			Number: 15, JIRA: "SPARK-40630",
			Module: "spark dataframe writer (generic coercion)", InConnector: false,
			Title:      "Invalid BOOLEAN input is inserted as NULL with no feedback on the DataFrame and Hive paths (error-handling oracle)",
			Categories: []Category{CustomConfig},
			Signatures: []string{"insert-boolean-invalid"},
			FixConf:    map[string]string{"spark.sql.ansi.enabled": "true"},
		},
	}
}

// BySignature returns the signature → discrepancy index.
func BySignature() map[string]Discrepancy {
	out := make(map[string]Discrepancy)
	for _, d := range Registry() {
		for _, sig := range d.Signatures {
			out[sig] = d
		}
	}
	return out
}

// CategoryCounts tallies category membership over a set of discrepancy
// numbers.
func CategoryCounts(numbers []int) map[Category]int {
	want := make(map[int]bool, len(numbers))
	for _, n := range numbers {
		want[n] = true
	}
	out := make(map[Category]int)
	for _, d := range Registry() {
		if !want[d.Number] {
			continue
		}
		for _, c := range d.Categories {
			out[c]++
		}
	}
	return out
}

// Numbers returns the sorted discrepancy numbers in the registry.
func Numbers() []int {
	reg := Registry()
	out := make([]int, len(reg))
	for i, d := range reg {
		out[i] = d.Number
	}
	sort.Ints(out)
	return out
}
