package inject

import (
	"strings"
	"testing"
)

// Structural invariants of the skew registry, checked without running
// the harness (the live confirmation of each entry is the golden skew
// matrix in internal/core): sequential IDs, real-looking anchors,
// collision-free signature index, and version boundaries on modeled
// systems.
func TestSkewRegistryWellFormed(t *testing.T) {
	reg := SkewRegistry()
	if len(reg) < 5 {
		t.Fatalf("skew registry has %d entries, want >= 5", len(reg))
	}
	bySig := map[string]string{}
	for i, d := range reg {
		if want := "S" + string(rune('1'+i)); i < 9 && d.ID != want {
			t.Errorf("entry %d has ID %s, want %s", i, d.ID, want)
		}
		jira := strings.HasPrefix(d.Anchor, "SPARK-") || strings.HasPrefix(d.Anchor, "HIVE-")
		guide := strings.Contains(d.Anchor, ":")
		if !jira && !guide {
			t.Errorf("%s anchor %q is neither a JIRA id nor a migration-guide key", d.ID, d.Anchor)
		}
		system, _, ok := strings.Cut(d.Boundary, ":")
		if !ok || (system != "spark" && system != "hive") {
			t.Errorf("%s boundary %q is not spark:version or hive:version", d.ID, d.Boundary)
		}
		for _, sig := range d.Signatures {
			if prev, dup := bySig[sig]; dup {
				t.Errorf("signature %q claimed by both %s and %s", sig, prev, d.ID)
			}
			bySig[sig] = d.ID
		}
	}
	if len(SkewBySignature()) != len(bySig) {
		t.Errorf("SkewBySignature has %d entries, want %d", len(SkewBySignature()), len(bySig))
	}
	if len(SkewByID()) != len(reg) {
		t.Errorf("SkewByID has %d entries, want %d", len(SkewByID()), len(reg))
	}
}

// Version annotations on the standard registry: every boundary is
// spark:/hive:-prefixed and every annotated entry carries the anchor
// that moved the behavior.
func TestRegistryVersionAnnotations(t *testing.T) {
	annotated := 0
	for _, d := range Registry() {
		for _, b := range []string{d.SinceVersion, d.FixedIn} {
			if b == "" {
				continue
			}
			system, version, ok := strings.Cut(b, ":")
			if !ok || (system != "spark" && system != "hive") || version == "" {
				t.Errorf("#%d boundary %q is not spark:version or hive:version", d.Number, b)
			}
		}
		if d.SinceVersion != "" || d.FixedIn != "" {
			annotated++
			if d.VersionNote == "" {
				t.Errorf("#%d has a version boundary but no JIRA/migration anchor", d.Number)
			}
		}
	}
	if annotated < 5 {
		t.Errorf("only %d registry entries carry version boundaries, want >= 5", annotated)
	}
}
