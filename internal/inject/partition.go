package inject

// PartitionDiscrepancy is a cross-system interaction failure that
// surfaces only under a network partition applied inside a specific
// state-inconsistency window — the CoFI class (SNIPPETS.md Snippet 2).
// Unlike the data-plane discrepancies (D*) and the version skews (S*),
// these are control-plane failures: two nodes hold different views of
// shared state, a partition freezes the disagreement, and a later
// management operation acts on the stale side. The partition oracle
// (csi.OraclePartition) isolates them from failures either node could
// produce alone.
// Control-plane problem categories for the partition (P*) family.
// These are manifestations the data-plane taxonomy of §8.2 has no slot
// for: a management operation that reports the wrong outcome (a stop
// that never completes, a kill recorded against a finished app), and
// unbounded resource growth from a reconciliation loop acting on stale
// state. They are deliberately NOT part of Categories(), which is the
// paper's five-category §8.2 census.
const (
	OperationOutcome Category = "wrong-operation-outcome"
	PerfDegradation  Category = "resource-over-allocation"
)

type PartitionDiscrepancy struct {
	ID     string // P1..P7, mirroring the S* skew numbering
	Anchor string // the JIRA issue whose failure mode the scenario reproduces
	Title  string
	// Scenario is the internal/partition scenario name that reproduces
	// the failure.
	Scenario string
	// Invariant is the cross-node consistency invariant whose violation
	// the scenario's ground-truth checks detect.
	Invariant string
	// Categories are the §8.2 problem categories the failure manifests
	// as once the partition freezes the inconsistent views.
	Categories []Category
	// Signatures are the classifier keys scenario violations carry.
	Signatures []string
}

// PartitionRegistry returns the modeled partition discrepancies, in P*
// order. IDs, scenario names, and signatures mirror the
// internal/partition scenario registry one-for-one (tested both ways).
func PartitionRegistry() []PartitionDiscrepancy {
	return []PartitionDiscrepancy{
		{
			ID: "P1", Anchor: "HDFS-15367", Scenario: "hdfs-replica",
			Title:      "NameNode serves replica locations a partitioned DataNode's block report never corrected",
			Invariant:  "every replica location the NameNode lists is backed by a DataNode that holds the block",
			Categories: []Category{CannotRead},
			Signatures: []string{"partition-stale-replica"},
		},
		{
			ID: "P2", Anchor: "HDFS-15235", Scenario: "hdfs-lease",
			Title:      "A lease reassigned during a client GC pause splits the brain: the DataNode pipeline keeps honoring the old holder and rejects the new one",
			Invariant:  "the DataNode pipeline accepts writes only from the NameNode's current lease holder",
			Categories: []Category{InconsistentError},
			Signatures: []string{"partition-lease-split-brain"},
		},
		{
			ID: "P3", Anchor: "YARN-10288", Scenario: "yarn-app-state",
			Title:      "A kill lands on the RM's stale RUNNING state machine after the AM already finished; the cluster record contradicts the real outcome",
			Invariant:  "the RM's application state machine converges to the AM's terminal state",
			Categories: []Category{InconsistentError},
			Signatures: []string{"partition-app-state"},
		},
		{
			ID: "P4", Anchor: "YARN-10301", Scenario: "yarn-service-stop",
			Title:      "Stopping a service whose container already exited retries into the partition forever because the RM's container cache is stale",
			Invariant:  "a requested stop completes once any node knows the container is no longer running",
			Categories: []Category{OperationOutcome},
			Signatures: []string{"partition-stop-lost"},
		},
		{
			ID: "P5", Anchor: "KAFKA-3410", Scenario: "kafka-isr",
			Title:      "The controller elects a lagging follower from its stale ISR copy; acknowledged records vanish from the new leader's log",
			Invariant:  "a consumer's acknowledged offsets never exceed the elected leader's log end",
			Categories: []Category{CannotRead},
			Signatures: []string{"partition-isr-divergence"},
		},
		{
			ID: "P6", Anchor: "HBASE-6060", Scenario: "hbase-region-assign",
			Title:      "A region move whose close RPC is partitioned away leaves the region open on both servers, which accept divergent writes",
			Invariant:  "at most one region server serves a region at any instant",
			Categories: []Category{InconsistentError},
			Signatures: []string{"partition-double-assign"},
		},
		{
			ID: "P7", Anchor: "FLINK-10848", Scenario: "flink-pending-book",
			Title:      "An asymmetric partition drops allocation notifications; the heartbeat re-requests the stale pending book and the RM over-allocates unboundedly",
			Invariant:  "containers the RM grants are eventually acknowledged or released, bounded by the job's target",
			Categories: []Category{PerfDegradation},
			Signatures: []string{"partition-over-allocation"},
		},
	}
}

// PartitionBySignature returns the signature → partition discrepancy
// index.
func PartitionBySignature() map[string]PartitionDiscrepancy {
	out := make(map[string]PartitionDiscrepancy)
	for _, d := range PartitionRegistry() {
		for _, sig := range d.Signatures {
			out[sig] = d
		}
	}
	return out
}

// PartitionByID returns the ID → partition discrepancy index.
func PartitionByID() map[string]PartitionDiscrepancy {
	out := make(map[string]PartitionDiscrepancy)
	for _, d := range PartitionRegistry() {
		out[d.ID] = d
	}
	return out
}
