// External test package: internal/core (which loadgen uses for report
// hashing) imports inject, so the mirror test must sit outside the
// package to avoid a test-only import cycle.
package inject_test

import (
	"testing"

	"repro/internal/inject"
	"repro/internal/loadgen"
)

// TestLoadRegistryMirrorsClassifier pins the round trip with the
// loadgen classifier in both directions: every signature the
// classifier can emit maps to exactly one registry entry, and every
// registry signature is one the classifier actually emits.
func TestLoadRegistryMirrorsClassifier(t *testing.T) {
	emitted := loadgen.KnownSignatures()
	index := inject.LoadBySignature()
	if len(emitted) != len(index) {
		t.Errorf("classifier emits %d signatures, registry indexes %d", len(emitted), len(index))
	}
	for _, sig := range emitted {
		if _, ok := index[sig]; !ok {
			t.Errorf("classifier signature %q has no registry entry", sig)
		}
	}
	known := map[string]bool{}
	for _, sig := range emitted {
		known[sig] = true
	}
	for _, d := range inject.LoadRegistry() {
		for _, sig := range d.Signatures {
			if !known[sig] {
				t.Errorf("%s signature %q is not one the classifier emits", d.ID, sig)
			}
		}
	}
}
