package inject

// SkewDiscrepancy is a discrepancy that exists only between two
// *versions* of the same deployment — the upgrade-triggered CSI
// failures of §5. Unlike the 15 single-deployment discrepancies, a skew
// discrepancy needs a writer stack and a reader stack on opposite sides
// of a version boundary to surface; the version-skew oracle isolates
// them from discrepancies both versions share.
type SkewDiscrepancy struct {
	ID     string // S1..S8, the artifact's skew numbering
	Anchor string // the JIRA issue or migration-guide key that moved the behavior
	Title  string
	// Boundary is the "system:version" the behavior changed at.
	Boundary string
	// Categories are the §8.2 problem categories the skew manifests as.
	Categories []Category
	// Signatures are the classifier keys (skew-oracle signatures, plus
	// any standard-oracle signatures only a skewed pair produces) that
	// map failures onto this entry.
	Signatures []string
}

// SkewRegistry returns the modeled version-skew discrepancies.
func SkewRegistry() []SkewDiscrepancy {
	return []SkewDiscrepancy{
		{
			ID: "S1", Anchor: "SPARK-24768", Boundary: "spark:2.4.0",
			Title:      "Avro tables written (or read) on Spark >=2.4 have no data source at all on a 2.3 stack",
			Categories: []Category{CannotRead},
			Signatures: []string{"skew-avro-unavailable", "avro-unavailable"},
		},
		{
			ID: "S2", Anchor: "SPARK-26651", Boundary: "spark:3.0.0",
			Title:      "Pre-Gregorian dates written under the hybrid calendar (Spark 2.x) shift when read under the proleptic calendar (Spark 3.x), and vice versa",
			Categories: []Category{CannotRead},
			Signatures: []string{"skew-date-rebase"},
		},
		{
			ID: "S3", Anchor: "HIVE-12192", Boundary: "hive:3.0.0",
			Title:      "Parquet timestamps read in the server's local zone by Hive 2.x but in UTC by Hive 3.x",
			Categories: []Category{ConfigExposure},
			Signatures: []string{"skew-timestamp-zone"},
		},
		{
			ID: "S4", Anchor: "SPARK-40616", Boundary: "hive:3.0.0",
			Title:      "CHAR(n) values read back padded by a Hive 3 stack but unpadded by a Hive 2.3 stack",
			Categories: []Category{TypeViolation},
			Signatures: []string{"skew-char-padding"},
		},
		{
			ID: "S5", Anchor: "SPARK-40637", Boundary: "hive:3.0.0",
			Title:      "An ORC struct whose members are all NULL folds to NULL through Hive 3's reader but survives through Hive 2.3's",
			Categories: []Category{TypeViolation},
			Signatures: []string{"skew-struct-null"},
		},
		{
			ID: "S6", Anchor: "SPARK-28730", Boundary: "spark:3.0.0",
			Title:      "Out-of-range inserts silently coerced by Spark 2.x store assignment are rejected by Spark 3.x ANSI store assignment",
			Categories: []Category{InconsistentError},
			Signatures: []string{"skew-store-assignment"},
		},
		{
			ID: "S7", Anchor: "spark-3.0-migration:ansi", Boundary: "spark:3.0.0",
			Title:      "Invalid literals (bad dates, IEEE spellings) inserted as NULL by Spark 2.x are cast errors under Spark 3.x ANSI mode",
			Categories: []Category{InconsistentError},
			Signatures: []string{"skew-ansi-cast"},
		},
		{
			ID: "S8", Anchor: "SPARK-33480", Boundary: "spark:3.1.0",
			Title:      "Overlong CHAR/VARCHAR inserts truncated by Spark 2.x (charVarcharAsString) are length errors on Spark >=3.1",
			Categories: []Category{InconsistentError},
			Signatures: []string{"skew-char-length"},
		},
		{
			ID: "S9", Anchor: "SPARK-33480", Boundary: "spark:3.1.0",
			Title:      "CHAR/VARCHAR columns created by a pre-3.1 stack are plain STRING; the same content reads back under a different type identity",
			Categories: []Category{TypeViolation},
			Signatures: []string{"skew-char-type"},
		},
	}
}

// SkewBySignature returns the signature → skew discrepancy index.
func SkewBySignature() map[string]SkewDiscrepancy {
	out := make(map[string]SkewDiscrepancy)
	for _, d := range SkewRegistry() {
		for _, sig := range d.Signatures {
			out[sig] = d
		}
	}
	return out
}

// SkewByID returns the ID → skew discrepancy index.
func SkewByID() map[string]SkewDiscrepancy {
	out := make(map[string]SkewDiscrepancy)
	for _, d := range SkewRegistry() {
		out[d.ID] = d
	}
	return out
}
