package inject

import (
	"fmt"
	"strings"
	"testing"
)

// TestLoadRegistryWellFormed mirrors the skew/partition structural
// checks: sequential L* IDs, anchors that point at a real incident or
// paper, collision-free signatures, and a census boundary — the load
// categories must stay out of the five-category §8.2 list.
func TestLoadRegistryWellFormed(t *testing.T) {
	reg := LoadRegistry()
	if len(reg) < 3 {
		t.Fatalf("load registry has %d entries, want >= 3", len(reg))
	}
	census := Categories()
	bySig := map[string]string{}
	for i, d := range reg {
		if want := fmt.Sprintf("L%d", i+1); d.ID != want {
			t.Errorf("entry %d has ID %s, want %s", i, d.ID, want)
		}
		if d.Anchor == "" || d.Cell == "" || d.Mitigation == "" {
			t.Errorf("%s is missing anchor/cell/mitigation", d.ID)
		}
		if !strings.Contains(d.Cell, "@") {
			t.Errorf("%s cell %q is not a policy @ peak coordinate", d.ID, d.Cell)
		}
		if len(d.Categories) == 0 {
			t.Errorf("%s carries no categories", d.ID)
		}
		for _, c := range d.Categories {
			for _, paper := range census {
				if c == paper {
					t.Errorf("%s claims §8.2 census category %q: load-plane failures must stay out of the paper's count", d.ID, c)
				}
			}
		}
		for _, sig := range d.Signatures {
			if prev, dup := bySig[sig]; dup {
				t.Errorf("signature %q claimed by both %s and %s", sig, prev, d.ID)
			}
			bySig[sig] = d.ID
		}
	}
	if len(LoadBySignature()) != len(bySig) {
		t.Errorf("LoadBySignature has %d entries, want %d", len(LoadBySignature()), len(bySig))
	}
	if len(LoadByID()) != len(reg) {
		t.Errorf("LoadByID has %d entries, want %d", len(LoadByID()), len(reg))
	}
}
