package inject

// LoadDiscrepancy is a cross-system interaction failure that needs no
// code defect at all: every component is working as designed, and the
// interaction between a client-side retry policy and a server-side
// queue still drives the composed system into a self-sustaining bad
// state. These are the metastable failures of the workload engine
// (internal/loadgen) — the L* family, mirroring the S* skew and P*
// partition numbering.
// Load-plane problem categories for the L* family. Like the partition
// categories, these are manifestations the data-plane taxonomy of §8.2
// has no slot for — the study's census counts discrepancies between
// systems' data interpretations, not emergent feedback loops — so they
// are deliberately NOT part of Categories().
const (
	// MetastableCollapse: goodput stays collapsed after the trigger
	// that caused the overload has ended.
	MetastableCollapse Category = "metastable-collapse"
	// RetryStorm: clients multiply offered load exactly when capacity
	// is scarcest.
	RetryStorm Category = "sustained-retry-storm"
)

// LoadDiscrepancy is one modeled load-interaction failure.
type LoadDiscrepancy struct {
	ID     string // L1..L3
	Anchor string // the incident report or paper the failure mode reproduces
	Title  string
	// Cell names the phase-diagram coordinate (policy @ peak rps, seed
	// 42 geometry) that reproduces the failure in internal/loadgen.
	Cell string
	// Mitigation is the client- or server-side change that turns the
	// same cell stable or recovering.
	Mitigation string
	// Categories are the load-plane categories above plus any §8.2
	// category the failure manifests as.
	Categories []Category
	// Signatures are the classifier keys (loadgen.KnownSignatures)
	// that map classified cells onto this entry — mirrored one-for-one
	// with the loadgen classifier, tested from both packages.
	Signatures []string
}

// LoadRegistry returns the modeled load discrepancies in L* order.
func LoadRegistry() []LoadDiscrepancy {
	return []LoadDiscrepancy{
		{
			ID: "L1", Anchor: "aws-dynamodb-2015-09-20",
			Title:      "A transient capacity dip outlives its trigger: timed-out requests are retried into the full queue, the server burns capacity completing orphaned work, and goodput stays collapsed after load returns to normal",
			Cell:       "naive @ 800 rps",
			Mitigation: "server-side token-bucket admission (reject cheaply at the door) or a client-side circuit breaker with terminal shed",
			Categories: []Category{MetastableCollapse, RetryStorm},
			Signatures: []string{"metastable-collapse"},
		},
		{
			ID: "L2", Anchor: "osdi22-metastable-failures-in-the-wild",
			Title:      "Retry amplification as the sustaining effect: post-trigger offered load is a multiple of arrivals, so the system cannot drain even at sub-capacity demand",
			Cell:       "naive @ 1600 rps",
			Mitigation: "capped exponential backoff bounds the amplification factor; honoring Retry-After aligns retries with drain capacity",
			Categories: []Category{RetryStorm},
			Signatures: []string{"retry-storm"},
		},
		{
			ID: "L3", Anchor: "aws-builders-library:timeouts-retries-backoff-jitter",
			Title:      "Synchronized backoff without jitter re-clusters retries into bursts that saturate the queue at each deadline boundary",
			Cell:       "backoff @ 800 rps",
			Mitigation: "full jitter spreads each retry uniformly over its backoff window, dissolving the bursts",
			Categories: []Category{RetryStorm},
			Signatures: []string{"thundering-herd"},
		},
	}
}

// LoadBySignature returns the signature → load discrepancy index.
func LoadBySignature() map[string]LoadDiscrepancy {
	out := make(map[string]LoadDiscrepancy)
	for _, d := range LoadRegistry() {
		for _, sig := range d.Signatures {
			out[sig] = d
		}
	}
	return out
}

// LoadByID returns the ID → load discrepancy index.
func LoadByID() map[string]LoadDiscrepancy {
	out := make(map[string]LoadDiscrepancy)
	for _, d := range LoadRegistry() {
		out[d.ID] = d
	}
	return out
}
