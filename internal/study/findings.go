package study

import (
	"fmt"
	"strings"

	"repro/internal/csi"
	"repro/internal/dataset"
)

// Check is one verifiable statistic backing a finding.
type Check struct {
	Name string
	Got  int
	Want int
}

// OK reports whether the statistic reproduced.
func (c Check) OK() bool { return c.Got == c.Want }

// Finding is one of the paper's numbered findings with its recomputed
// statistics.
type Finding struct {
	Number    int
	Statement string
	Checks    []Check
}

// OK reports whether every statistic reproduced.
func (f Finding) OK() bool {
	for _, c := range f.Checks {
		if !c.OK() {
			return false
		}
	}
	return true
}

// Render formats the finding with pass/fail marks.
func (f Finding) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Finding %d: %s\n", f.Number, f.Statement)
	for _, c := range f.Checks {
		mark := "ok"
		if !c.OK() {
			mark = "MISMATCH"
		}
		fmt.Fprintf(&b, "  %-52s got %4d  want %4d  [%s]\n", c.Name, c.Got, c.Want, mark)
	}
	return b.String()
}

// Findings recomputes Findings 1–13 from the dataset.
func Findings(failures []dataset.Failure) []Finding {
	incidents := dataset.CSIIncidents()
	planes := PlaneCounts(failures)
	dp := dataPlane(failures)
	cfg := configFailures(failures)
	cp := controlPlaneRecords(failures)

	cascaded, codeFix, minDur, maxDur := 0, 0, 1<<31, 0
	for _, inc := range incidents {
		if inc.CascadedExternally {
			cascaded++
		}
		if inc.MentionedCodeFix {
			codeFix++
		}
		if inc.DurationMinutes < minDur {
			minDur = inc.DurationMinutes
		}
		if inc.DurationMinutes > maxDur {
			maxDur = inc.DurationMinutes
		}
	}

	metadataTypical, metadataCustom, apiSem := 0, 0, 0
	tableOps, kvOps, serialization := 0, 0, 0
	for i := range dp {
		switch dp[i].DataProperty {
		case dataset.PropAddress, dataset.PropSchemaStructure, dataset.PropSchemaValue:
			metadataTypical++
		case dataset.PropCustom:
			metadataCustom++
		case dataset.PropAPISemantics:
			apiSem++
		}
		switch dp[i].DataAbstraction {
		case dataset.AbstractionTable:
			tableOps++
		case dataset.AbstractionKVTuple:
			kvOps++
		}
		if dp[i].Serialization {
			serialization++
		}
	}

	silentIgnoredOrOverridden, paramCfg, compCfg := 0, 0, 0
	for i := range cfg {
		if cfg[i].ConfigPattern == dataset.ConfigIgnorance || cfg[i].ConfigPattern == dataset.ConfigUnexpectedOverride {
			silentIgnoredOrOverridden++
		}
		switch cfg[i].ConfigCategory {
		case dataset.ConfigParameter:
			paramCfg++
		case dataset.ConfigComponent:
			compCfg++
		}
	}
	monitoring := planes[csi.ManagementPlane] - len(cfg)

	apiMisuse, implicit, wrongCtx, implicitProps := 0, 0, 0, 0
	for i := range cp {
		switch cp[i].ControlPattern {
		case dataset.APISemanticViolation:
			apiMisuse++
			implicitProps++
			if cp[i].APIMisuse == dataset.ImplicitSemanticViolation {
				implicit++
			} else {
				wrongCtx++
			}
		case dataset.StateResourceInconsistency:
			implicitProps++
		}
	}

	withFix, checkingOrEH, upstreamSpecific, inConnector, generic := 0, 0, 0, 0, 0
	for i := range failures {
		f := &failures[i]
		if f.FixPattern != dataset.FixOthers {
			withFix++
		}
		if f.FixPattern == dataset.FixChecking || f.FixPattern == dataset.FixErrorHandling {
			checkingOrEH++
		}
		switch f.FixLocation {
		case dataset.FixUpstreamConnector:
			upstreamSpecific++
			inConnector++
		case dataset.FixUpstreamSpecific:
			upstreamSpecific++
		case dataset.FixGeneric:
			generic++
		}
	}

	return []Finding{
		{1, "Among 55 cloud incidents, 11 (20%) were caused by CSI failures, showing their catastrophic consequences.", []Check{
			{"sampled incidents", dataset.TotalIncidents(), 55},
			{"CSI incidents", len(incidents), 11},
			{"minimum duration (min)", minDur, 10},
			{"maximum duration (min)", maxDur, 1140},
			{"median duration (min)", MedianDuration(incidents), 106},
			{"incidents cascading to external services", cascaded, 8},
			{"postmortems mentioning interaction code fixes", codeFix, 4},
		}},
		{2, "Data- and management-plane interactions contribute significant percentages: 51% data, 32% management, 17% control.", []Check{
			{"data-plane failures", planes[csi.DataPlane], 61},
			{"management-plane failures", planes[csi.ManagementPlane], 39},
			{"control-plane failures", planes[csi.ControlPlane], 20},
			{"data-plane percent", percent(planes[csi.DataPlane], len(failures)), 51},
			{"management-plane percent", percent(planes[csi.ManagementPlane], len(failures)), 32},
			{"control-plane percent", percent(planes[csi.ControlPlane], len(failures)), 17},
		}},
		{3, "Most (89/120) CSI failures are manifested through crashing behavior.", []Check{
			{"crashing failures", CrashingCount(failures), dataset.CrashingTarget},
			{"total failures", len(failures), 120},
		}},
		{4, "The majority (50/61) of data-plane CSI failures are caused by metadata: typical (42/61) and custom (8/61); the others (11/61) by API semantics.", []Check{
			{"typical metadata (address + schema)", metadataTypical, 42},
			{"custom metadata", metadataCustom, 8},
			{"metadata total", metadataTypical + metadataCustom, 50},
			{"API semantics", apiSem, 11},
		}},
		{5, "Complicated data abstractions are more error-prone: 57% (35/61) are table-related; none are key-value tuple operations.", []Check{
			{"table-related failures", tableOps, 35},
			{"key-value tuple failures", kvOps, 0},
		}},
		{6, "25% (15/61) data-plane CSI failures are root-caused by data serialization.", []Check{
			{"serialization-rooted failures", serialization, 15},
		}},
		{7, "CSI-inducing configuration issues are about coherently configuring multiple systems; 60% (18/30) are silent ignorance or unexpected override.", []Check{
			{"configuration failures", len(cfg), 30},
			{"silently ignored or overridden", silentIgnoredOrOverridden, 18},
		}},
		{8, "Parameter-related configuration issues are the majority (21/30); the rest (9/30) are in configuration components.", []Check{
			{"parameter-related", paramCfg, 21},
			{"component-related", compCfg, 9},
		}},
		{9, "Monitoring-related CSIs are critical to reliability, especially when monitoring data triggers critical actions.", []Check{
			{"monitoring-related failures", monitoring, 9},
		}},
		{10, "Most control-plane CSI failures are rooted in implicit properties: implicit API semantics and state/resource inconsistencies.", []Check{
			{"API semantic violations", apiMisuse, 13},
			{"state/resource inconsistencies + API", implicitProps, 18},
			{"control-plane total", len(cp), 20},
		}},
		{11, "API misuses contribute the majority (13/20) of control-plane failures: implicit semantic violation (8/13) and wrong invocation context (5/13).", []Check{
			{"API misuses", apiMisuse, 13},
			{"implicit semantic violations", implicit, 8},
			{"wrong invocation context", wrongCtx, 5},
		}},
		{12, "In 40% (46/115) CSI failures, the merged fixes improve condition checking and error handling instead of repairing the interaction.", []Check{
			{"failures with merged fixes", withFix, 115},
			{"checking or error-handling fixes", checkingOrEH, 46},
		}},
		{13, "In 69% (79/115) fixes were upstream code specific to the downstream; 68 of those 79 (86%) resided in dedicated connector modules.", []Check{
			{"upstream-specific fixes", upstreamSpecific, 79},
			{"fixes inside connector modules", inConnector, 68},
			{"generic-code fixes", generic, 36},
		}},
	}
}

// CBSComparison recomputes the §5.1 comparison against the CBS slice:
// the share of control-plane CSI failures in the 2014 dataset.
func CBSComparison() (csiCount, dependencyCount, controlPercent int) {
	slice := dataset.CBSSlice()
	control := 0
	for _, issue := range slice {
		switch issue.Label {
		case dataset.CBSCSIFailure:
			csiCount++
			if issue.Plane == csi.ControlPlane {
				control++
			}
		case dataset.CBSDependencyFailure:
			dependencyCount++
		}
	}
	return csiCount, dependencyCount, percent(control, csiCount)
}
