package study

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func findRow(t *testing.T, table Table, first string) []string {
	t.Helper()
	for _, row := range table.Rows {
		if row[0] == first {
			return row
		}
	}
	t.Fatalf("%s: row %q not found", table.ID, first)
	return nil
}

func TestTable1Totals(t *testing.T) {
	table := Table1(dataset.Failures())
	if got := findRow(t, table, "Total")[3]; got != "120" {
		t.Errorf("total = %s", got)
	}
	// Spot-check the largest and smallest rows.
	for _, row := range table.Rows {
		if row[0] == "Spark" && row[1] == "Hive" && row[3] != "26" {
			t.Errorf("Spark-Hive = %s", row[3])
		}
		if row[0] == "Hive" && row[1] == "Kafka" && row[3] != "1" {
			t.Errorf("Hive-Kafka = %s", row[3])
		}
	}
}

func TestTable2PlaneShares(t *testing.T) {
	table := Table2(dataset.Failures())
	if row := findRow(t, table, "Data"); row[1] != "61" || row[2] != "51%" {
		t.Errorf("data row = %v", row)
	}
	if row := findRow(t, table, "Management"); row[1] != "39" || row[2] != "32%" {
		t.Errorf("management row = %v", row)
	}
	if row := findRow(t, table, "Control"); row[1] != "20" || row[2] != "17%" {
		t.Errorf("control row = %v", row)
	}
}

func TestTable3Renders(t *testing.T) {
	table := Table3(dataset.Failures())
	if len(table.Rows) != 15 {
		t.Errorf("rows = %d", len(table.Rows))
	}
	text := table.Render()
	if !strings.Contains(text, "Job/task failure") || !strings.Contains(text, "47") {
		t.Errorf("render missing dominant symptom:\n%s", text)
	}
}

func TestTable4Properties(t *testing.T) {
	table := Table4(dataset.Failures())
	cases := map[string]string{
		"Address": "10", "Schema": "32", "  Structure": "14", "  Value": "18",
		"Custom Property": "8", "API semantics": "11", "Total": "61",
	}
	for name, want := range cases {
		if row := findRow(t, table, name); row[1] != want {
			t.Errorf("%s = %s, want %s", name, row[1], want)
		}
	}
}

func TestTable5Joint(t *testing.T) {
	table := Table5(dataset.Failures())
	if row := findRow(t, table, "Table"); row[6] != "35" {
		t.Errorf("table row = %v", row)
	}
	if row := findRow(t, table, "File"); row[6] != "18" {
		t.Errorf("file row = %v", row)
	}
	if row := findRow(t, table, "Stream"); row[6] != "8" {
		t.Errorf("stream row = %v", row)
	}
	if row := findRow(t, table, "KV Tuple"); row[6] != "0" {
		t.Errorf("kv row = %v", row)
	}
	if row := findRow(t, table, "Total"); row[6] != "61" {
		t.Errorf("total row = %v", row)
	}
}

func TestTable6Patterns(t *testing.T) {
	table := Table6(dataset.Failures())
	cases := map[string]string{
		"Type Confusion": "12", "Unsupported Operations": "15", "Unspoken Convention": "9",
		"Undefined Values": "7", "Wrong API Assumptions": "18", "Total": "61",
	}
	for name, want := range cases {
		if row := findRow(t, table, name); row[1] != want {
			t.Errorf("%s = %s, want %s", name, row[1], want)
		}
	}
}

func TestTable7ConfigPatterns(t *testing.T) {
	table := Table7(dataset.Failures())
	cases := map[string]string{
		"Ignorance": "12", "Unexpected override": "6", "Inconsistent context": "10",
		"Mishandling configuration values": "2", "Total": "30",
	}
	for name, want := range cases {
		if row := findRow(t, table, name); row[1] != want {
			t.Errorf("%s = %s, want %s", name, row[1], want)
		}
	}
}

func TestTable8ControlPatterns(t *testing.T) {
	table := Table8(dataset.Failures())
	cases := map[string]string{
		"API semantic violation": "13", "State/resource inconsistency": "5",
		"Feature inconsistency": "2", "Total": "20",
	}
	for name, want := range cases {
		if row := findRow(t, table, name); row[1] != want {
			t.Errorf("%s = %s, want %s", name, row[1], want)
		}
	}
}

func TestTable9FixPatterns(t *testing.T) {
	table := Table9(dataset.Failures())
	cases := map[string]string{
		"Checking": "38", "Error handling": "8", "Interaction": "69", "Others": "5", "Total": "120",
	}
	for name, want := range cases {
		if row := findRow(t, table, name); row[1] != want {
			t.Errorf("%s = %s, want %s", name, row[1], want)
		}
	}
}

// TestAllFindingsReproduce is the study's headline check: every
// quantitative statistic in Findings 1-13 recomputes to the published
// value from the dataset.
func TestAllFindingsReproduce(t *testing.T) {
	findings := Findings(dataset.Failures())
	if len(findings) != 13 {
		t.Fatalf("findings = %d", len(findings))
	}
	for _, f := range findings {
		if !f.OK() {
			t.Errorf("finding %d failed:\n%s", f.Number, f.Render())
		}
	}
}

func TestFindingRenderMarksMismatch(t *testing.T) {
	f := Finding{Number: 99, Statement: "test", Checks: []Check{{Name: "x", Got: 1, Want: 2}}}
	if f.OK() {
		t.Error("finding with mismatch should not be OK")
	}
	if !strings.Contains(f.Render(), "MISMATCH") {
		t.Errorf("render = %q", f.Render())
	}
}

func TestCBSComparison(t *testing.T) {
	csiCount, depCount, controlPct := CBSComparison()
	if csiCount != 39 || depCount != 15 {
		t.Errorf("cbs = %d CSI / %d dependency", csiCount, depCount)
	}
	if controlPct != 69 {
		t.Errorf("control share = %d%%, want 69%%", controlPct)
	}
}

func TestMedianDuration(t *testing.T) {
	if got := MedianDuration(dataset.CSIIncidents()); got != 106 {
		t.Errorf("median = %d", got)
	}
	if got := MedianDuration(nil); got != 0 {
		t.Errorf("empty median = %d", got)
	}
	even := []dataset.Incident{{DurationMinutes: 10}, {DurationMinutes: 20}}
	if got := MedianDuration(even); got != 15 {
		t.Errorf("even median = %d", got)
	}
}

func TestAllTables(t *testing.T) {
	tables := AllTables(dataset.Failures())
	if len(tables) != 9 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, table := range tables {
		if table.ID == "" || len(table.Rows) == 0 {
			t.Errorf("table %d is empty", i)
		}
		if text := table.Render(); !strings.Contains(text, table.Title) {
			t.Errorf("table %d render missing title", i)
		}
	}
}

func TestPercentRounding(t *testing.T) {
	cases := []struct{ n, total, want int }{
		{61, 120, 51}, {39, 120, 32}, {20, 120, 17}, {11, 55, 20}, {0, 0, 0}, {1, 3, 33}, {2, 3, 67},
	}
	for _, c := range cases {
		if got := percent(c.n, c.total); got != c.want {
			t.Errorf("percent(%d, %d) = %d, want %d", c.n, c.total, got, c.want)
		}
	}
}
