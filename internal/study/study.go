// Package study is the analysis engine of the reproduction: it
// recomputes every table (Tables 1–9) and every quantitative finding
// (Findings 1–13) of the paper from the dataset package, the way the
// artifact's reproduce_study notebook does from the original labels.
package study

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/csi"
	"repro/internal/dataset"
)

// Table is one rendered study table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			for _, w := range widths {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Table1 recomputes Table 1: target systems, interactions, and counts.
func Table1(failures []dataset.Failure) Table {
	counts := map[csi.Interaction]int{}
	for i := range failures {
		counts[failures[i].Interaction()]++
	}
	t := Table{ID: "Table 1", Title: "Target systems, their interactions, and the number of CSI failures",
		Header: []string{"Upstream", "Downstream", "Interaction", "# CSI failures"}}
	total := 0
	for _, p := range dataset.PairTargets() {
		n := counts[csi.Interaction{Upstream: p.Upstream, Downstream: p.Downstream}]
		total += n
		t.Rows = append(t.Rows, []string{string(p.Upstream), string(p.Downstream), p.Label, fmt.Sprint(n)})
	}
	t.Rows = append(t.Rows, []string{"Total", "", "", fmt.Sprint(total)})
	return t
}

// PlaneCounts tallies failures per plane (Table 2).
func PlaneCounts(failures []dataset.Failure) map[csi.Plane]int {
	out := map[csi.Plane]int{}
	for i := range failures {
		out[failures[i].Plane]++
	}
	return out
}

// Table2 recomputes Table 2: failures by plane.
func Table2(failures []dataset.Failure) Table {
	counts := PlaneCounts(failures)
	t := Table{ID: "Table 2", Title: "Categorization by planes",
		Header: []string{"Plane", "#", "%"}}
	total := len(failures)
	for _, p := range []csi.Plane{csi.ControlPlane, csi.DataPlane, csi.ManagementPlane} {
		t.Rows = append(t.Rows, []string{p.String(), fmt.Sprint(counts[p]),
			fmt.Sprintf("%d%%", percent(counts[p], total))})
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(total), "100%"})
	return t
}

// Table3 recomputes Table 3: failure symptoms by scope.
func Table3(failures []dataset.Failure) Table {
	type key struct {
		scope dataset.SymptomScope
		name  string
	}
	counts := map[key]int{}
	for i := range failures {
		s := failures[i].Symptom
		counts[key{s.Scope, s.Name}]++
	}
	t := Table{ID: "Table 3", Title: "Failure symptoms",
		Header: []string{"Scope", "Impact", "#"}}
	for _, row := range dataset.SymptomTargets() {
		t.Rows = append(t.Rows, []string{row.Scope.String(), row.Name,
			fmt.Sprint(counts[key{row.Scope, row.Name}])})
	}
	return t
}

// CrashingCount is Finding 3's numerator.
func CrashingCount(failures []dataset.Failure) int {
	n := 0
	for i := range failures {
		if failures[i].Symptom.Crashing {
			n++
		}
	}
	return n
}

// dataPlane filters the data-plane records.
func dataPlane(failures []dataset.Failure) []dataset.Failure {
	var out []dataset.Failure
	for i := range failures {
		if failures[i].Plane == csi.DataPlane {
			out = append(out, failures[i])
		}
	}
	return out
}

// Table4 recomputes Table 4: data properties of data-plane failures.
func Table4(failures []dataset.Failure) Table {
	dp := dataPlane(failures)
	counts := map[dataset.DataProperty]int{}
	for i := range dp {
		counts[dp[i].DataProperty]++
	}
	t := Table{ID: "Table 4", Title: "Data properties in which data-plane discrepancies are rooted",
		Header: []string{"Property", "# Fail."}}
	t.Rows = append(t.Rows, []string{"Address", fmt.Sprint(counts[dataset.PropAddress])})
	t.Rows = append(t.Rows, []string{"Schema", fmt.Sprint(counts[dataset.PropSchemaStructure] + counts[dataset.PropSchemaValue])})
	t.Rows = append(t.Rows, []string{"  Structure", fmt.Sprint(counts[dataset.PropSchemaStructure])})
	t.Rows = append(t.Rows, []string{"  Value", fmt.Sprint(counts[dataset.PropSchemaValue])})
	t.Rows = append(t.Rows, []string{"Custom Property", fmt.Sprint(counts[dataset.PropCustom])})
	t.Rows = append(t.Rows, []string{"API semantics", fmt.Sprint(counts[dataset.PropAPISemantics])})
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(len(dp))})
	return t
}

// Table5 recomputes Table 5: the abstraction × property joint.
func Table5(failures []dataset.Failure) Table {
	dp := dataPlane(failures)
	type key struct {
		a dataset.DataAbstraction
		p dataset.DataProperty
	}
	counts := map[key]int{}
	for i := range dp {
		counts[key{dp[i].DataAbstraction, dp[i].DataProperty}]++
	}
	props := []dataset.DataProperty{dataset.PropAddress, dataset.PropSchemaStructure,
		dataset.PropSchemaValue, dataset.PropCustom, dataset.PropAPISemantics}
	t := Table{ID: "Table 5", Title: "Data abstractions in which data-plane discrepancies are rooted",
		Header: []string{"Abstraction", "Address", "Struct.", "Value", "Custom", "API", "Total"}}
	colTotals := make([]int, len(props))
	for _, a := range []dataset.DataAbstraction{dataset.AbstractionTable, dataset.AbstractionFile,
		dataset.AbstractionStream, dataset.AbstractionKVTuple} {
		row := []string{a.String()}
		rowTotal := 0
		for pi, p := range props {
			n := counts[key{a, p}]
			rowTotal += n
			colTotals[pi] += n
			row = append(row, fmt.Sprint(n))
		}
		row = append(row, fmt.Sprint(rowTotal))
		t.Rows = append(t.Rows, row)
	}
	totalRow := []string{"Total"}
	grand := 0
	for _, n := range colTotals {
		grand += n
		totalRow = append(totalRow, fmt.Sprint(n))
	}
	totalRow = append(totalRow, fmt.Sprint(grand))
	t.Rows = append(t.Rows, totalRow)
	return t
}

// Table6 recomputes Table 6: data-plane discrepancy patterns.
func Table6(failures []dataset.Failure) Table {
	dp := dataPlane(failures)
	counts := map[dataset.DataPattern]int{}
	for i := range dp {
		counts[dp[i].DataPattern]++
	}
	t := Table{ID: "Table 6", Title: "Discrepancy patterns of data-plane CSI failures",
		Header: []string{"Pattern", "# Fail."}}
	for _, p := range []dataset.DataPattern{dataset.TypeConfusion, dataset.UnsupportedOperations,
		dataset.UnspokenConvention, dataset.UndefinedValues, dataset.WrongAPIAssumptions} {
		t.Rows = append(t.Rows, []string{p.String(), fmt.Sprint(counts[p])})
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(len(dp))})
	return t
}

// configFailures filters the management-plane configuration records.
func configFailures(failures []dataset.Failure) []dataset.Failure {
	var out []dataset.Failure
	for i := range failures {
		if failures[i].Plane == csi.ManagementPlane && failures[i].MgmtKind == dataset.MgmtConfig {
			out = append(out, failures[i])
		}
	}
	return out
}

// Table7 recomputes Table 7: configuration discrepancy patterns.
func Table7(failures []dataset.Failure) Table {
	cfg := configFailures(failures)
	counts := map[dataset.ConfigPattern]int{}
	for i := range cfg {
		counts[cfg[i].ConfigPattern]++
	}
	t := Table{ID: "Table 7", Title: "Discrepancy patterns of configuration-related CSI failures",
		Header: []string{"Pattern", "# Fail."}}
	for _, p := range []dataset.ConfigPattern{dataset.ConfigIgnorance, dataset.ConfigUnexpectedOverride,
		dataset.ConfigInconsistentContext, dataset.ConfigMishandledValues} {
		t.Rows = append(t.Rows, []string{p.String(), fmt.Sprint(counts[p])})
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(len(cfg))})
	return t
}

// controlPlaneRecords filters the control-plane records.
func controlPlaneRecords(failures []dataset.Failure) []dataset.Failure {
	var out []dataset.Failure
	for i := range failures {
		if failures[i].Plane == csi.ControlPlane {
			out = append(out, failures[i])
		}
	}
	return out
}

// Table8 recomputes Table 8: control-plane discrepancy patterns.
func Table8(failures []dataset.Failure) Table {
	cp := controlPlaneRecords(failures)
	counts := map[dataset.ControlPattern]int{}
	for i := range cp {
		counts[cp[i].ControlPattern]++
	}
	t := Table{ID: "Table 8", Title: "Discrepancy patterns of control-plane CSI failures",
		Header: []string{"Pattern", "# Fail."}}
	for _, p := range []dataset.ControlPattern{dataset.APISemanticViolation,
		dataset.StateResourceInconsistency, dataset.FeatureInconsistency} {
		t.Rows = append(t.Rows, []string{p.String(), fmt.Sprint(counts[p])})
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(len(cp))})
	return t
}

// Table9 recomputes Table 9: fix patterns.
func Table9(failures []dataset.Failure) Table {
	counts := map[dataset.FixPattern]int{}
	for i := range failures {
		counts[failures[i].FixPattern]++
	}
	t := Table{ID: "Table 9", Title: "Fix patterns of the evaluated CSI failures",
		Header: []string{"Fix Pattern", "# Fail."}}
	for _, p := range []dataset.FixPattern{dataset.FixChecking, dataset.FixErrorHandling,
		dataset.FixInteraction, dataset.FixOthers} {
		t.Rows = append(t.Rows, []string{p.String(), fmt.Sprint(counts[p])})
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(len(failures))})
	return t
}

// AllTables renders Tables 1–9 in order.
func AllTables(failures []dataset.Failure) []Table {
	return []Table{
		Table1(failures), Table2(failures), Table3(failures), Table4(failures),
		Table5(failures), Table6(failures), Table7(failures), Table8(failures), Table9(failures),
	}
}

// percent rounds half-to-even using exact integer arithmetic, matching
// the paper's reported shares (39/120 is reported as 32%, 61/120 as
// 51%).
func percent(n, total int) int {
	if total == 0 {
		return 0
	}
	q, rem := n*100/total, n*100%total
	switch {
	case 2*rem > total:
		return q + 1
	case 2*rem == total && q%2 == 1:
		return q + 1
	default:
		return q
	}
}

// MedianDuration computes the median incident duration in minutes.
func MedianDuration(incidents []dataset.Incident) int {
	d := make([]int, len(incidents))
	for i, inc := range incidents {
		d[i] = inc.DurationMinutes
	}
	sort.Ints(d)
	if len(d) == 0 {
		return 0
	}
	if len(d)%2 == 1 {
		return d[len(d)/2]
	}
	return (d[len(d)/2-1] + d[len(d)/2]) / 2
}
