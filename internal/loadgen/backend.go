package loadgen

import (
	"fmt"

	"repro/internal/kafkasim"
	"repro/internal/yarnsim"
)

// Backend hooks a simulated control plane behind the service plane:
// every request the SimServer completes performs one operation against
// the backing system. This is how the engine "drives" the YARN and
// Kafka simulators — overload in the workload engine becomes real
// control-plane traffic (application lifecycles, produce/fetch round
// trips) instead of an abstract service delay, so a metastable cell
// leaves the same footprint in the control plane that the paper's
// cross-system failures do.
//
// Implementations run inside vclock callbacks and need not be
// goroutine-safe.
type Backend interface {
	Name() string
	// Op performs the n-th completed request's operation (n counts from
	// 0). Errors are counted (RunStats.BackendErrs) but do not fail the
	// request: a degraded control plane does not stop the data plane.
	Op(n int64) error
}

// YarnBackend drives the simulated YARN ResourceManager: each served
// request is one application lifecycle — submit, report a final
// status, read the status back — so a load cell exercises the same
// registration path the monitoring-plane failures (SPARK-3627,
// SPARK-10851) live on.
type YarnBackend struct {
	RM *yarnsim.ResourceManager
	// FailEvery > 0 reports every n-th application FAILED, keeping the
	// RM's ledger heterogeneous the way a real cluster's is.
	FailEvery int64

	apps int64
}

// Name implements Backend.
func (b *YarnBackend) Name() string { return "yarn" }

// Apps returns the number of application lifecycles completed.
func (b *YarnBackend) Apps() int64 { return b.apps }

// Op implements Backend.
func (b *YarnBackend) Op(n int64) error {
	app := b.RM.SubmitApplication(fmt.Sprintf("load-%06d", n))
	status := yarnsim.AppSucceeded
	if b.FailEvery > 0 && n%b.FailEvery == b.FailEvery-1 {
		status = yarnsim.AppFailed
	}
	if err := b.RM.ReportFinalStatus(app.ID, status, ""); err != nil {
		return err
	}
	got, finished, err := b.RM.ApplicationStatus(app.ID)
	if err != nil {
		return err
	}
	if !finished || got != status {
		return fmt.Errorf("yarn backend: application %d recorded %s (finished=%v), want %s",
			app.ID, got, finished, status)
	}
	b.apps++
	return nil
}

// KafkaBackend drives the simulated Kafka broker: each served request
// produces one keyed record (round-robin across partitions) and
// fetches it back, a full data-plane round trip per completion.
type KafkaBackend struct {
	Broker     *kafkasim.Broker
	Topic      string
	Partitions int

	produced int64
}

// NewKafkaBackend creates the topic and returns the backend.
func NewKafkaBackend(broker *kafkasim.Broker, topic string, partitions int) (*KafkaBackend, error) {
	if err := broker.CreateTopic(topic, partitions); err != nil {
		return nil, err
	}
	return &KafkaBackend{Broker: broker, Topic: topic, Partitions: partitions}, nil
}

// Name implements Backend.
func (b *KafkaBackend) Name() string { return "kafka" }

// Produced returns the number of records produced and read back.
func (b *KafkaBackend) Produced() int64 { return b.produced }

// Op implements Backend.
func (b *KafkaBackend) Op(n int64) error {
	part := int(n % int64(b.Partitions))
	key := fmt.Sprintf("load-%06d", n)
	off, err := b.Broker.Produce(b.Topic, part, key, []byte("payload"))
	if err != nil {
		return err
	}
	recs, _, err := b.Broker.Fetch(b.Topic, part, off, 1)
	if err != nil {
		return err
	}
	if len(recs) != 1 || recs[0].Key != key {
		return fmt.Errorf("kafka backend: read-back at %s/%d offset %d returned %d records", b.Topic, part, off, len(recs))
	}
	b.produced++
	return nil
}
