package loadgen

import "repro/internal/vclock"

// ServerConfig models the service plane: a bounded FIFO queue in front
// of Workers parallel executors with a fixed per-request service time,
// optionally guarded by token-bucket admission control. It is the
// virtual-time twin of the crossd scheduler's admission path (bounded
// queue, 429 + Retry-After, token bucket), which is what makes the
// phase diagram's lessons transferable to the real service.
type ServerConfig struct {
	Workers   int
	QueueCap  int
	ServiceMs int64
	// TokenRate (micro-tokens/sec) and TokenBurst enable token-bucket
	// admission ahead of the queue when TokenRate > 0: a deliberate
	// ceiling below saturation that rejects cheaply instead of queueing
	// into the timeout zone.
	TokenRate  int64
	TokenBurst int64
}

// CapacityRPS returns the server's service capacity in whole requests
// per second.
func (c ServerConfig) CapacityRPS() int64 {
	if c.ServiceMs <= 0 {
		return 0
	}
	return int64(c.Workers) * 1000 / c.ServiceMs
}

// Rejection is a synchronous admission refusal.
type Rejection struct {
	Reason       string // ReasonQueueFull or ReasonThrottled
	RetryAfterMs int64  // server hint: earliest useful retry
}

const nanoPerToken = 1_000_000_000

type serverReq struct {
	done func(completedAtMs int64)
}

// SimServer is the discrete-event service. Not safe for concurrent
// use: all calls happen inside vclock callbacks.
type SimServer struct {
	sim *vclock.Sim
	cfg ServerConfig

	queue []serverReq // FIFO; head is queue[qhead]
	qhead int
	busy  int

	tokensNano   int64
	lastRefillMs int64

	// Served counts completed requests (useful or wasted).
	Served int64

	// Backend, when set, performs one control-plane operation per
	// completed request (see backend.go). BackendOps counts operations
	// attempted; BackendErrs counts the ones that failed.
	Backend     Backend
	BackendOps  int64
	BackendErrs int64
}

// NewSimServer builds a server on the simulator.
func NewSimServer(sim *vclock.Sim, cfg ServerConfig) *SimServer {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 1
	}
	if cfg.ServiceMs < 1 {
		cfg.ServiceMs = 1
	}
	return &SimServer{sim: sim, cfg: cfg, tokensNano: cfg.TokenBurst * nanoPerToken}
}

// QueueLen returns the number of queued (not yet executing) requests.
func (s *SimServer) QueueLen() int { return len(s.queue) - s.qhead }

// RetryAfterMs derives the backpressure hint from the current queue
// depth: the time until the queue as it stands has drained — the same
// derivation internal/serve uses for its 429 Retry-After header.
func (s *SimServer) RetryAfterMs() int64 {
	return (int64(s.QueueLen()) + 1) * s.cfg.ServiceMs / int64(s.cfg.Workers)
}

// Submit offers one request at the current virtual time. On admission
// it returns nil and done fires when service completes — regardless of
// whether the client still cares, which is exactly the wasted-work
// channel metastability feeds on. On rejection it returns the reason
// and hint synchronously and done never fires.
func (s *SimServer) Submit(done func(completedAtMs int64)) *Rejection {
	if rej := s.takeToken(); rej != nil {
		return rej
	}
	if s.QueueLen() >= s.cfg.QueueCap {
		return &Rejection{Reason: ReasonQueueFull, RetryAfterMs: s.RetryAfterMs()}
	}
	s.queue = append(s.queue, serverReq{done: done})
	s.dispatch()
	return nil
}

func (s *SimServer) takeToken() *Rejection {
	if s.cfg.TokenRate <= 0 {
		return nil
	}
	now := s.sim.Now()
	// micro-tokens/sec x elapsed ms = nano-tokens.
	s.tokensNano += (now - s.lastRefillMs) * s.cfg.TokenRate
	s.lastRefillMs = now
	if max := s.cfg.TokenBurst * nanoPerToken; s.tokensNano > max {
		s.tokensNano = max
	}
	if s.tokensNano >= nanoPerToken {
		s.tokensNano -= nanoPerToken
		return nil
	}
	deficit := nanoPerToken - s.tokensNano
	wait := (deficit + s.cfg.TokenRate - 1) / s.cfg.TokenRate // ms, ceil
	if wait < 1 {
		wait = 1
	}
	return &Rejection{Reason: ReasonThrottled, RetryAfterMs: wait}
}

func (s *SimServer) dispatch() {
	for s.busy < s.cfg.Workers && s.QueueLen() > 0 {
		req := s.queue[s.qhead]
		s.queue[s.qhead] = serverReq{}
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		s.busy++
		s.sim.After(s.cfg.ServiceMs, func() {
			s.busy--
			s.Served++
			if s.Backend != nil {
				if err := s.Backend.Op(s.BackendOps); err != nil {
					s.BackendErrs++
				}
				s.BackendOps++
			}
			req.done(s.sim.Now())
			s.dispatch()
		})
	}
}
