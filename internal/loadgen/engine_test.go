package loadgen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestEngineRejectsBadConfig(t *testing.T) {
	policy := Naive{MaxAttempts: 2}
	cases := []struct {
		name string
		cfg  EngineConfig
		want string
	}{
		{"no curve", EngineConfig{HorizonMs: 1000, Client: ClientConfig{Policy: policy}}, "needs a curve"},
		{"no policy", EngineConfig{Curve: Constant{RPS: MicroRPS}, HorizonMs: 1000}, "needs a retry policy"},
		{"no horizon", EngineConfig{Curve: Constant{RPS: MicroRPS}, Client: ClientConfig{Policy: policy}}, "horizon must be positive"},
		{"bad mode", EngineConfig{Curve: Constant{RPS: MicroRPS}, HorizonMs: 1000,
			Client: ClientConfig{Policy: policy, Mode: "ajar"}}, "unknown client mode"},
		{"closed without clients", EngineConfig{Curve: Constant{RPS: MicroRPS}, HorizonMs: 1000,
			Client: ClientConfig{Policy: policy, Mode: ModeClosed}}, "needs clients"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Run = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestEngineStableUnderload pins the control cell: offered load well
// under capacity completes everything in deadline, with no retries and
// no queue growth.
func TestEngineStableUnderload(t *testing.T) {
	stats, err := Run(EngineConfig{
		Seed:      1,
		Curve:     Constant{RPS: 100 * MicroRPS},
		HorizonMs: 10_000,
		Server:    ServerConfig{Workers: 4, QueueCap: 200, ServiceMs: 10},
		Client:    ClientConfig{Policy: Naive{MaxAttempts: 4}, TimeoutMs: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := stats.Totals
	if tot.Timeouts != 0 || tot.RejectQueue != 0 || tot.GiveUps != 0 {
		t.Errorf("underloaded cell saw failures: %+v", tot)
	}
	if tot.Attempts != tot.Arrivals {
		t.Errorf("attempts %d != arrivals %d: retries on an idle server", tot.Attempts, tot.Arrivals)
	}
	// Arrivals in the last service interval may complete past the
	// horizon; everything else must land as goodput.
	if tot.Goodput < tot.Arrivals-5 {
		t.Errorf("goodput %d vs arrivals %d", tot.Goodput, tot.Arrivals)
	}
	if stats.P99Ms > 50 {
		t.Errorf("P99 = %.1f ms on an idle server", stats.P99Ms)
	}
}

// TestEngineDeterministic pins bit-identical stats for identical
// configs, in both client modes.
func TestEngineDeterministic(t *testing.T) {
	open := EngineConfig{
		Seed:      42,
		Curve:     Spike{Base: 300 * MicroRPS, Peak: 800 * MicroRPS, FromMs: 2000, ToMs: 4000},
		HorizonMs: 8_000,
		Server:    ServerConfig{Workers: 4, QueueCap: 200, ServiceMs: 10},
		Client:    ClientConfig{Policy: Naive{MaxAttempts: 4}, TimeoutMs: 300},
	}
	a, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("open-loop: identical configs produced different stats")
	}

	closed := open
	closed.Client.Mode = ModeClosed
	closed.Client.Clients = 50
	closed.Client.ThinkMs = 20
	c1, err := Run(closed)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Run(closed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Error("closed-loop: identical configs produced different stats")
	}
	if c1.Totals.Arrivals == 0 || c1.Totals.Goodput == 0 {
		t.Errorf("closed-loop population did no work: %+v", c1.Totals)
	}
}

// TestEngineClosedLoopSelfClocks pins the defining closed-loop
// property: the population cannot offer more than clients/(service +
// think) sessions per second, so overload shows up as latency, not as
// an unbounded arrival backlog.
func TestEngineClosedLoopSelfClocks(t *testing.T) {
	stats, err := Run(EngineConfig{
		Seed:      7,
		Curve:     Constant{RPS: 0}, // closed loop ignores the curve's schedule
		HorizonMs: 10_000,
		Server:    ServerConfig{Workers: 2, QueueCap: 50, ServiceMs: 10},
		Client: ClientConfig{
			Mode: ModeClosed, Clients: 20, ThinkMs: 50,
			Policy: Naive{MaxAttempts: 2}, TimeoutMs: 300,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 clients cycling at >= 60 ms (10 service + 50 think) is at most
	// ~333 sessions/sec; with capacity 200/s the server saturates but
	// the closed loop cannot storm past its population.
	maxRate := int64(20 * 10_000 / 60)
	if stats.Totals.Arrivals > maxRate {
		t.Errorf("closed loop offered %d sessions, above the population ceiling %d", stats.Totals.Arrivals, maxRate)
	}
	if stats.Totals.Goodput == 0 {
		t.Error("no goodput from a modest closed-loop population")
	}
}

func TestEngineEventBudgetExhaustion(t *testing.T) {
	_, err := Run(EngineConfig{
		Seed:      1,
		Curve:     Constant{RPS: 500 * MicroRPS},
		HorizonMs: 10_000,
		MaxEvents: 50,
		Server:    ServerConfig{Workers: 1, QueueCap: 10, ServiceMs: 10},
		Client:    ClientConfig{Policy: Naive{MaxAttempts: 4}, TimeoutMs: 300},
		Label:     "tiny-budget",
	})
	if err == nil || !strings.Contains(err.Error(), "event budget") {
		t.Errorf("Run = %v, want event-budget exhaustion error", err)
	}
}

// TestEngineObservability pins the obs wiring: per-cell counters land
// in the shared registry and per-phase spans open and close with the
// overload attribute on the spike.
func TestEngineObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(nil)
	stats, err := Run(EngineConfig{
		Seed:      42,
		Curve:     Spike{Base: 300 * MicroRPS, Peak: 800 * MicroRPS, FromMs: 1000, ToMs: 2000},
		HorizonMs: 4_000,
		Server:    ServerConfig{Workers: 4, QueueCap: 200, ServiceMs: 10},
		Client:    ClientConfig{Policy: Naive{MaxAttempts: 4}, TimeoutMs: 300},
		Label:     "obs-cell",
		Tracer:    tr,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.MetricLoadAttempts, "cell", "obs-cell").Value(); got != stats.Totals.Attempts {
		t.Errorf("%s = %d, want %d", obs.MetricLoadAttempts, got, stats.Totals.Attempts)
	}
	if got := reg.Counter(obs.MetricLoadGoodput, "cell", "obs-cell").Value(); got != stats.Totals.Goodput {
		t.Errorf("%s = %d, want %d", obs.MetricLoadGoodput, got, stats.Totals.Goodput)
	}

	want := map[string]bool{"load/pre-spike": false, "load/spike": false, "load/post-spike": false}
	for _, sp := range tr.Snapshot() {
		if _, ok := want[sp.Name]; !ok {
			continue
		}
		want[sp.Name] = true
		if sp.EndMs < 0 {
			t.Errorf("span %s never ended", sp.Name)
		}
		overload := false
		for _, a := range sp.Attrs {
			if a.Key == "overload" && a.Value == "true" {
				overload = true
			}
		}
		if overload != (sp.Name == "load/spike") {
			t.Errorf("span %s overload attr = %v", sp.Name, overload)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing phase span %s", name)
		}
	}
}
