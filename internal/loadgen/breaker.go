package loadgen

// BreakerConfig configures the client-side circuit breaker shared by a
// population. Disabled (the zero value) means every attempt reaches
// the server.
type BreakerConfig struct {
	Enabled bool
	// FailThreshold is the number of consecutive failures that opens
	// the breaker.
	FailThreshold int
	// OpenMs is how long the breaker stays open before letting one
	// half-open probe through.
	OpenMs int64
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a consecutive-failure circuit breaker on the virtual
// clock. It is the load-shedding mechanism that turns a metastable
// cell into a recovering one: while open, the amplified retry traffic
// fails fast at the client instead of pinning the server's queue, so
// the queue drains below the timeout boundary and the half-open probe
// finds a healthy server.
//
// A nil *Breaker always allows (the breakerless rows).
type Breaker struct {
	cfg      BreakerConfig
	state    int
	fails    int
	openedAt int64
	probing  bool

	// Opens counts closed/half-open -> open transitions, reported per
	// cell: a flapping breaker is visible in the phase diagram.
	Opens int64
}

// NewBreaker builds a breaker, or nil when the config is disabled.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if !cfg.Enabled {
		return nil
	}
	if cfg.FailThreshold < 1 {
		cfg.FailThreshold = 1
	}
	if cfg.OpenMs < 1 {
		cfg.OpenMs = 1
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether an attempt may be issued at virtual time now.
// An open breaker transitions to half-open after OpenMs and admits
// exactly one probe; further attempts are shed until the probe
// resolves.
func (b *Breaker) Allow(now int64) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now-b.openedAt < b.cfg.OpenMs {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports an attempt outcome at virtual time now. Only
// attempts Allow admitted should be recorded.
func (b *Breaker) Record(now int64, ok bool) {
	if b == nil {
		return
	}
	if ok {
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.cfg.FailThreshold {
		if b.state != breakerOpen {
			b.Opens++
		}
		b.state = breakerOpen
		b.openedAt = now
		b.fails = 0
		b.probing = false
	}
}

// State renders the current state for stats sampling.
func (b *Breaker) State() string {
	if b == nil {
		return "disabled"
	}
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
