package loadgen

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fuzzgen"
	"repro/internal/serve"
)

// This file is the bridge from the virtual-time engine to the real
// crossd service: the same retry policies and circuit breaker, driven
// wall-clock through the serve.Scheduler/Runner seam (no HTTP). The
// phase diagram predicts which client behaviours melt the scheduler's
// admission path; DriveScheduler is how those behaviours are replayed
// against the production code to check the prediction — rejections
// arrive as ErrQueueFull/ErrThrottled exactly where the SimServer
// hands back ReasonQueueFull/ReasonThrottled, and the Retry-After
// hint comes from the same queue-depth derivation the 429 header uses.

// CrossdStormOptions configure one storm against a real scheduler.
type CrossdStormOptions struct {
	Seed     uint64
	Sessions int // distinct jobs pushed through the scheduler
	Clients  int // concurrent submitters (the storm's parallelism)

	Policy  RetryPolicy
	Breaker BreakerConfig // shared client-side breaker (process-wide)

	// DelayDiv compresses retry delays so second-scale backoff runs in
	// test time: a policy delay of d ms sleeps d/DelayDiv ms of wall
	// clock (default 1, i.e. uncompressed).
	DelayDiv int64

	// WaitTimeout bounds how long a client waits for an admitted job to
	// finish before counting it failed (default 30 s).
	WaitTimeout time.Duration

	// JobN sizes each fuzz job (default 8 cases).
	JobN int
}

// CrossdStormStats is the storm's outcome. Totals are exact
// (conservation: Completed+Failed+GiveUps+BreakerShed == Sessions) but
// the split between rejection kinds is wall-clock dependent — assert
// shapes, not bytes.
type CrossdStormStats struct {
	Sessions       int64
	Attempts       int64
	Completed      int64
	Failed         int64
	RejectQueue    int64
	RejectThrottle int64
	BreakerShed    int64
	GiveUps        int64
	BreakerOpens   int64
}

// lockedBreaker adapts the engine's single-threaded breaker to the
// storm's concurrent clients.
type lockedBreaker struct {
	mu sync.Mutex
	b  *Breaker
}

func (l *lockedBreaker) allow(nowMs int64) bool {
	if l.b == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Allow(nowMs)
}

func (l *lockedBreaker) record(nowMs int64, ok bool) {
	if l.b == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.Record(nowMs, ok)
}

func (l *lockedBreaker) opens() int64 {
	if l.b == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Opens
}

// DriveScheduler replays a retry storm against a live scheduler. Each
// session is a distinct job spec (seed-derived, so nothing coalesces);
// each client runs the session loop: submit, wait on admission, retry
// per policy on ErrQueueFull/ErrThrottled using the scheduler's own
// RetryAfterSeconds hint, shed terminally when the breaker is open.
func DriveScheduler(sched *serve.Scheduler, opts CrossdStormOptions) (*CrossdStormStats, error) {
	if sched == nil {
		return nil, fmt.Errorf("loadgen: storm needs a scheduler")
	}
	if opts.Sessions < 1 {
		return nil, fmt.Errorf("loadgen: storm needs sessions > 0")
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("loadgen: storm needs a retry policy")
	}
	if opts.Clients < 1 {
		opts.Clients = 1
	}
	if opts.DelayDiv < 1 {
		opts.DelayDiv = 1
	}
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 30 * time.Second
	}
	if opts.JobN < 1 {
		opts.JobN = 8
	}

	stats := &CrossdStormStats{Sessions: int64(opts.Sessions)}
	var mu sync.Mutex
	breaker := &lockedBreaker{b: NewBreaker(opts.Breaker)}
	//crossvet:wallclock the storm bridge deliberately drives a real scheduler in wall time; nothing here feeds a pinned report
	start := time.Now()
	//crossvet:wallclock breaker timestamps measure the same wall-clock storm, not virtual time
	nowMs := func() int64 { return time.Since(start).Milliseconds() }

	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				runStormSession(sched, opts, i, breaker, nowMs, stats, &mu)
			}
		}()
	}
	for i := 0; i < opts.Sessions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	stats.BreakerOpens = breaker.opens()
	return stats, nil
}

func runStormSession(sched *serve.Scheduler, opts CrossdStormOptions, i int,
	breaker *lockedBreaker, nowMs func() int64, stats *CrossdStormStats, mu *sync.Mutex) {
	rng := fuzzgen.NewRand(fuzzgen.DeriveSeed(opts.Seed, i))
	spec := serve.JobSpec{
		Kind:     serve.KindFuzz,
		Seed:     fuzzgen.DeriveSeed(opts.Seed, i),
		N:        opts.JobN,
		Parallel: 1,
	}
	bump := func(f func()) {
		mu.Lock()
		f()
		mu.Unlock()
	}
	for attempt := 1; ; attempt++ {
		if !breaker.allow(nowMs()) {
			// Terminal shed — the same fail-fast the engine models: an
			// open breaker surfaces the error instead of queueing another
			// lap of the retry loop.
			bump(func() { stats.BreakerShed++ })
			return
		}
		bump(func() { stats.Attempts++ })
		job, err := sched.Submit(spec)
		switch {
		case err == nil:
			select {
			case <-job.Done():
			//crossvet:wallclock the admitted-job wait races real scheduler completion against a wall-clock deadline by design
			case <-time.After(opts.WaitTimeout):
				bump(func() { stats.Failed++ })
				breaker.record(nowMs(), false)
				return
			}
			if job.Status().State == serve.StateDone {
				bump(func() { stats.Completed++ })
				breaker.record(nowMs(), true)
			} else {
				bump(func() { stats.Failed++ })
				breaker.record(nowMs(), false)
			}
			return
		case errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrThrottled):
			bump(func() {
				if errors.Is(err, serve.ErrThrottled) {
					stats.RejectThrottle++
				} else {
					stats.RejectQueue++
				}
			})
			breaker.record(nowMs(), false)
			hintMs := int64(sched.RetryAfterSeconds()) * 1000
			d := opts.Policy.Delay(attempt, hintMs, rng)
			if d < 0 {
				bump(func() { stats.GiveUps++ })
				return
			}
			//crossvet:wallclock retry backoff sleeps real time against the real scheduler (compressed by DelayDiv)
			time.Sleep(time.Duration(d) * time.Millisecond / time.Duration(opts.DelayDiv))
		default:
			bump(func() { stats.Failed++ })
			return
		}
	}
}
