package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// gateRunner is the crossd executor stand-in: jobs block on the gate
// (nil = run immediately), so tests control exactly when the scheduler
// is wedged. started (when non-nil) receives one token per Execute
// entry for deterministic wedging; buffer it for every job the test
// will ever run, since nothing drains it after the wedge.
type gateRunner struct {
	gate    chan struct{}
	started chan struct{}
	delay   time.Duration
}

func (r *gateRunner) Execute(ctx context.Context, spec serve.JobSpec, _ func(core.Failure)) (*serve.JobResult, error) {
	if r.started != nil {
		r.started <- struct{}{}
	}
	if r.gate != nil {
		select {
		case <-r.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	key, err := spec.CacheKey()
	if err != nil {
		return nil, err
	}
	return &serve.JobResult{Key: key, Kind: spec.Kind, Spec: spec, Rendered: "storm", ReportSHA: core.HashBytes([]byte("storm"))}, nil
}

func newStormScheduler(t *testing.T, runner serve.Runner, workers, depth int) *serve.Scheduler {
	t.Helper()
	cache, err := serve.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewScheduler(serve.SchedulerOptions{
		Workers: workers, QueueDepth: depth, Cache: cache, Executor: runner,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// wedge fills the scheduler: every worker provably blocked inside
// Execute, every queue slot occupied. Until the gate closes, any
// further submission deterministically gets ErrQueueFull.
func wedge(t *testing.T, s *serve.Scheduler, runner *gateRunner, workers, depth int) {
	t.Helper()
	for w := 0; w < workers; w++ {
		if _, err := s.Submit(serve.JobSpec{Kind: serve.KindFuzz, Seed: uint64(90001 + w), N: 10}); err != nil {
			t.Fatal(err)
		}
		<-runner.started
	}
	for i := 0; i < depth; i++ {
		if _, err := s.Submit(serve.JobSpec{Kind: serve.KindFuzz, Seed: uint64(90101 + i), N: 10}); err != nil {
			t.Fatalf("queue fill %d: %v", i, err)
		}
	}
}

// TestCrossdStormNaiveGivesUp replays the phase diagram's naive row
// against the real scheduler while it is wedged: every submission hits
// the full queue, every session burns its attempts and gives up —
// retry amplification with zero goodput, exactly the storm shape the
// virtual cells predict.
func TestCrossdStormNaiveGivesUp(t *testing.T) {
	const workers, depth = 2, 4
	runner := &gateRunner{gate: make(chan struct{}), started: make(chan struct{}, 256)}
	s := newStormScheduler(t, runner, workers, depth)
	wedge(t, s, runner, workers, depth)

	stats, err := DriveScheduler(s, CrossdStormOptions{
		Seed: 42, Sessions: 20, Clients: 4,
		Policy: Naive{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	close(runner.gate)

	if stats.Completed != 0 || stats.GiveUps != 20 {
		t.Errorf("wedged naive storm: completed %d, give-ups %d, want 0/20", stats.Completed, stats.GiveUps)
	}
	if want := int64(20 * 3); stats.Attempts != want || stats.RejectQueue != want {
		t.Errorf("attempts %d rejects %d, want %d each: 3x amplification, all rejected", stats.Attempts, stats.RejectQueue, want)
	}
}

// TestCrossdStormBreakerShedsTerminally pins the engine's key client
// lesson on the real scheduler: once the shared breaker opens, later
// sessions shed terminally instead of re-entering the retry loop.
func TestCrossdStormBreakerShedsTerminally(t *testing.T) {
	const workers, depth = 2, 4
	runner := &gateRunner{gate: make(chan struct{}), started: make(chan struct{}, 256)}
	s := newStormScheduler(t, runner, workers, depth)
	wedge(t, s, runner, workers, depth)

	// One client, so the breaker's state machine is sequential: session
	// 1 fails three straight submissions and opens the breaker; every
	// later session is shed before touching the scheduler.
	stats, err := DriveScheduler(s, CrossdStormOptions{
		Seed: 42, Sessions: 10, Clients: 1,
		Policy:  Naive{MaxAttempts: 3},
		Breaker: BreakerConfig{Enabled: true, FailThreshold: 3, OpenMs: 600_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	close(runner.gate)

	if stats.Attempts != 3 || stats.GiveUps != 1 {
		t.Errorf("first session: attempts %d give-ups %d, want 3/1", stats.Attempts, stats.GiveUps)
	}
	if stats.BreakerShed != 9 {
		t.Errorf("breaker shed %d of the remaining sessions, want 9", stats.BreakerShed)
	}
	if stats.BreakerOpens != 1 {
		t.Errorf("breaker opened %d times, want 1", stats.BreakerOpens)
	}
}

// TestCrossdStormBackoffRecovers is the defended row: capped backoff
// honoring the scheduler's own Retry-After hint rides out a wedge
// window and then completes every session.
func TestCrossdStormBackoffRecovers(t *testing.T) {
	const workers, depth = 2, 4
	runner := &gateRunner{gate: make(chan struct{}), started: make(chan struct{}, 256), delay: 2 * time.Millisecond}
	s := newStormScheduler(t, runner, workers, depth)
	wedge(t, s, runner, workers, depth)

	done := make(chan struct{})
	var stats *CrossdStormStats
	var err error
	go func() {
		defer close(done)
		stats, err = DriveScheduler(s, CrossdStormOptions{
			Seed: 42, Sessions: 30, Clients: 6,
			// Hint-honoring backoff: a 2 s Retry-After compresses to
			// 20 ms of wall clock.
			Policy:   CappedBackoff{BaseMs: 100, CapMs: 5000, MaxAttempts: 200, FullJitter: true, HonorRetryAfter: true},
			DelayDiv: 100,
		})
	}()

	// Hold the wedge long enough that the first submissions certainly
	// land on a full queue, then lift it and let the storm drain.
	time.Sleep(100 * time.Millisecond)
	close(runner.gate)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("storm did not finish after the wedge lifted")
	}
	if err != nil {
		t.Fatal(err)
	}

	if stats.Completed != 30 {
		t.Errorf("completed %d of 30 sessions, want all: backoff + Retry-After must recover", stats.Completed)
	}
	if stats.Failed != 0 || stats.GiveUps != 0 || stats.BreakerShed != 0 {
		t.Errorf("failed %d give-ups %d shed %d, want 0s", stats.Failed, stats.GiveUps, stats.BreakerShed)
	}
	if stats.RejectQueue == 0 {
		t.Error("no queue rejections during a 100 ms wedge: the storm never stressed the scheduler")
	}
	if stats.Attempts <= stats.Completed {
		t.Errorf("attempts %d <= completions %d: retries never happened", stats.Attempts, stats.Completed)
	}
}

func TestCrossdStormOptionValidation(t *testing.T) {
	if _, err := DriveScheduler(nil, CrossdStormOptions{Sessions: 1, Policy: Naive{MaxAttempts: 1}}); err == nil {
		t.Error("nil scheduler accepted")
	}
	runner := &gateRunner{}
	s := newStormScheduler(t, runner, 1, 1)
	if _, err := DriveScheduler(s, CrossdStormOptions{Policy: Naive{MaxAttempts: 1}}); err == nil {
		t.Error("zero sessions accepted")
	}
	if _, err := DriveScheduler(s, CrossdStormOptions{Sessions: 1}); err == nil {
		t.Error("nil policy accepted")
	}
}
