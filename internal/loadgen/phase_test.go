package loadgen

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSeed pins the sweep every golden and headline assertion runs;
// the CI loadgen-smoke job asserts the same report.
const goldenSeed = 42

var (
	phaseOnce sync.Once
	phaseRes  *PhaseResult
	phaseErr  error
)

// stdPhase runs the full seed-42 sweep once per test binary; the golden,
// headline, and schedule-sharing tests all read the same result.
func stdPhase(t *testing.T) *PhaseResult {
	t.Helper()
	phaseOnce.Do(func() {
		phaseRes, phaseErr = RunPhaseDiagram(PhaseOptions{Seed: goldenSeed})
	})
	if phaseErr != nil {
		t.Fatal(phaseErr)
	}
	return phaseRes
}

// TestGoldenPhaseDiagram pins the full seed-42 phase diagram byte for
// byte. Any drift in the arrival dither, the retry policies, the
// breaker, the server model, the classifier thresholds, or the renderer
// shows up as a golden diff (regenerate deliberately with -update).
func TestGoldenPhaseDiagram(t *testing.T) {
	res := stdPhase(t)
	got := res.Render()
	path := filepath.Join("testdata", "phase_seed42.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("phase diagram drifted from golden (regenerate deliberately with -update):\n got:\n%s\nwant:\n%s", got, want)
	}
	if res.Hash() != core.HashBytes([]byte(got)) {
		t.Error("Hash() must be the hash of the rendered report")
	}
}

// TestCollapseVsRecoveryHeadline is the experiment the engine exists
// for: on the byte-identical arrival schedule, naive retries keep the
// system collapsed for the entire 40 s after the 10 s spike ends, while
// capped backoff + jitter + a circuit breaker recovers.
func TestCollapseVsRecoveryHeadline(t *testing.T) {
	res := stdPhase(t)
	for _, peak := range []int64{800, 1600} {
		naive := res.CellAt("naive", peak)
		defended := res.CellAt("backoff+jitter+breaker", peak)
		if naive == nil || defended == nil {
			t.Fatalf("peak %d: missing headline cells", peak)
		}

		// Identical offered load, window by window: the only difference
		// between the two cells is client retry behaviour.
		for i := range naive.Stats.Windows {
			if a, b := naive.Stats.Windows[i].Arrivals, defended.Stats.Windows[i].Arrivals; a != b {
				t.Fatalf("peak %d window %d: arrival schedules diverged (%d vs %d)", peak, i, a, b)
			}
		}

		if naive.Classification.Class != ClassMetastable {
			t.Errorf("naive@%d = %s, want %s", peak, naive.Classification.Class, ClassMetastable)
		}
		if got := naive.Classification.TailCollapsed; got != tailWindows {
			t.Errorf("naive@%d tail collapsed = %d, want %d: collapse must persist to the horizon", peak, got, tailWindows)
		}
		if amp := naive.Classification.PostAmplification; amp < stormAmplification {
			t.Errorf("naive@%d post amplification = %.2f, want >= %.1f", peak, amp, stormAmplification)
		}
		sigs := strings.Join(naive.Classification.Signatures, " ")
		if !strings.Contains(sigs, SigMetastableCollapse) || !strings.Contains(sigs, SigRetryStorm) {
			t.Errorf("naive@%d signatures = %q, want collapse + storm", peak, sigs)
		}

		if defended.Classification.Class != ClassRecovering {
			t.Errorf("backoff+jitter+breaker@%d = %s, want %s", peak, defended.Classification.Class, ClassRecovering)
		}
		if got := defended.Classification.TailCollapsed; got != 0 {
			t.Errorf("backoff+jitter+breaker@%d tail collapsed = %d, want 0", peak, got)
		}
		if q := defended.Stats.Totals.QueueLen; q != 0 {
			t.Errorf("backoff+jitter+breaker@%d final queue = %d, want drained", peak, q)
		}
		if defended.Stats.Totals.Goodput < 4*naive.Stats.Totals.Goodput {
			t.Errorf("peak %d: defended goodput %d not >= 4x naive %d",
				peak, defended.Stats.Totals.Goodput, naive.Stats.Totals.Goodput)
		}
		if defended.Stats.BreakerOpens == 0 {
			t.Errorf("backoff+jitter+breaker@%d recovered without the breaker ever opening", peak)
		}
	}

	// The sub-capacity control column stays stable in every row.
	for _, policy := range res.Policies {
		if c := res.CellAt(policy, 350); c == nil || c.Classification.Class != ClassStable {
			t.Errorf("%s@350 not stable", policy)
		}
	}
	// Backoff alone — even jittered — is not enough without the breaker:
	// the retry horizon outlives the spike and keeps the queue pinned.
	for _, policy := range []string{"backoff", "backoff+jitter"} {
		if c := res.CellAt(policy, 800); c == nil || c.Classification.Class != ClassMetastable {
			t.Errorf("%s@800 should stay metastable without a breaker", policy)
		}
	}
}

// TestPhaseParallelDeterminism pins bit-identical reports across
// worker counts: the CI smoke job diffs -parallel 1 against 4.
func TestPhaseParallelDeterminism(t *testing.T) {
	seq := stdPhase(t) // Parallel default 1
	par, err := RunPhaseDiagram(PhaseOptions{Seed: goldenSeed, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Error("report differs between Parallel 1 and 4")
	}
	if seq.Hash() != par.Hash() {
		t.Error("hash differs between Parallel 1 and 4")
	}
}

// TestAdmissionRescuesNaive pins the server-side half of the story:
// token-bucket admission control turns the naive client's metastable
// cells into recovering ones by rejecting cheaply at the door instead
// of queueing into the timeout zone.
func TestAdmissionRescuesNaive(t *testing.T) {
	res, err := RunPhaseDiagram(PhaseOptions{
		Seed: goldenSeed, Admission: true,
		Policies: []string{"naive"}, PeakRPS: []int64{800},
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := res.CellAt("naive", 800)
	if cell == nil {
		t.Fatal("missing cell")
	}
	if cell.Classification.Class != ClassRecovering {
		t.Errorf("naive@800 with admission = %s, want %s", cell.Classification.Class, ClassRecovering)
	}
	if cell.Stats.Totals.RejectThrottle == 0 {
		t.Error("admission control never throttled during a 2x-capacity spike")
	}
	bare := stdPhase(t).CellAt("naive", 800)
	if cell.Stats.Totals.Goodput < 4*bare.Stats.Totals.Goodput {
		t.Errorf("admission goodput %d not >= 4x undefended %d",
			cell.Stats.Totals.Goodput, bare.Stats.Totals.Goodput)
	}
}

func TestPhaseDiagramErrors(t *testing.T) {
	if _, err := RunPhaseDiagram(PhaseOptions{Policies: []string{"yolo"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy error = %v", err)
	}
	if _, err := RunPhaseDiagram(PhaseOptions{PeakRPS: []int64{0}}); err == nil ||
		!strings.Contains(err.Error(), "must be positive") {
		t.Errorf("bad peak error = %v", err)
	}
}

func TestCellAt(t *testing.T) {
	res := stdPhase(t)
	if res.CellAt("naive", 12345) != nil || res.CellAt("nope", 800) != nil {
		t.Error("CellAt returned a cell for an unknown coordinate")
	}
}
