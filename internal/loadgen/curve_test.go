package loadgen

import (
	"reflect"
	"strings"
	"testing"
)

// TestScheduleDeterministic pins that a schedule is a pure function of
// (seed, curve, horizon) — the property every phase-diagram comparison
// rests on — and that distinct seeds actually decorrelate the dither.
func TestScheduleDeterministic(t *testing.T) {
	c := Spike{Base: 300 * MicroRPS, Peak: 800 * MicroRPS, FromMs: 2000, ToMs: 4000}
	a := Schedule(42, c, 10_000)
	b := Schedule(42, c, 10_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	other := Schedule(43, c, 10_000)
	if reflect.DeepEqual(a, other) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestScheduleTracksCurve checks the realized arrival count stays close
// to the curve's integral (the dither is unbiased) and that instants
// are sorted within the horizon.
func TestScheduleTracksCurve(t *testing.T) {
	const horizon = 20_000
	arr := Schedule(7, Constant{RPS: 300 * MicroRPS}, horizon)
	want := 300 * horizon / 1000 // 6000
	if n := len(arr); n < want*95/100 || n > want*105/100 {
		t.Errorf("constant 300 rps over %d ms realized %d arrivals, want ~%d", horizon, n, want)
	}
	last := int64(-1)
	for _, at := range arr {
		if at < last {
			t.Fatalf("schedule not sorted: %d after %d", at, last)
		}
		if at < 0 || at >= horizon {
			t.Fatalf("arrival %d outside [0, %d)", at, horizon)
		}
		last = at
	}

	// A rate above 1000 rps emits whole arrivals every millisecond, not
	// just dithered ones.
	dense := Schedule(7, Constant{RPS: 2500 * MicroRPS}, 1000)
	if n, want := len(dense), 2500; n < want*98/100 || n > want*102/100 {
		t.Errorf("2500 rps over 1 s realized %d arrivals, want ~%d", n, want)
	}
}

func TestCurveShapes(t *testing.T) {
	spike := Spike{Base: 100, Peak: 900, FromMs: 10, ToMs: 20}
	for _, tc := range []struct {
		at   int64
		want int64
	}{{0, 100}, {9, 100}, {10, 900}, {19, 900}, {20, 100}} {
		if got := spike.Rate(tc.at); got != tc.want {
			t.Errorf("spike.Rate(%d) = %d, want %d", tc.at, got, tc.want)
		}
	}

	ramp := Ramp{From: 0, To: 1000, StartMs: 0, EndMs: 1000}
	prev := int64(-1)
	for _, at := range []int64{0, 250, 500, 750, 999, 1000, 2000} {
		got := ramp.Rate(at)
		if got < prev {
			t.Errorf("ramp.Rate(%d) = %d decreased below %d", at, got, prev)
		}
		prev = got
	}
	if got := ramp.Rate(500); got != 500 {
		t.Errorf("ramp midpoint = %d, want 500", got)
	}
	if got := ramp.Rate(5000); got != 1000 {
		t.Errorf("ramp plateau = %d, want 1000", got)
	}

	d := Diurnal{Base: 100, Peak: 500, PeriodMs: 1000}
	if got := d.Rate(0); got != 100 {
		t.Errorf("diurnal trough = %d, want 100", got)
	}
	if got := d.Rate(500); got != 500 {
		t.Errorf("diurnal crest = %d, want 500", got)
	}
	if got := d.Rate(1000); got != 100 {
		t.Errorf("diurnal wraparound = %d, want 100", got)
	}
	if a, b := d.Rate(250), d.Rate(750); a != b {
		t.Errorf("triangle not symmetric: Rate(250)=%d Rate(750)=%d", a, b)
	}
	for at := int64(0); at < 2000; at += 50 {
		if r := d.Rate(at); r < 100 || r > 500 {
			t.Fatalf("diurnal.Rate(%d) = %d outside [base, peak]", at, r)
		}
	}
}

func TestOverloadEndMs(t *testing.T) {
	spike := Spike{Base: 1, Peak: 2, FromMs: 10_000, ToMs: 20_000}
	if got := OverloadEndMs(spike, 60_000); got != 20_000 {
		t.Errorf("spike overload end = %d, want 20000", got)
	}
	if got := OverloadEndMs(Constant{RPS: 1}, 60_000); got != 0 {
		t.Errorf("constant overload end = %d, want 0", got)
	}
}

func TestCurveByName(t *testing.T) {
	for _, name := range Curves() {
		c, err := CurveByName(name, 100*MicroRPS, 500*MicroRPS, 1000, 2000)
		if err != nil {
			t.Fatalf("CurveByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("CurveByName(%q).Name() = %q", name, c.Name())
		}
		if len(c.Phases(10_000)) == 0 {
			t.Errorf("curve %q has no phases", name)
		}
	}
	if _, err := CurveByName("sawtooth", 1, 2, 0, 1); err == nil || !strings.Contains(err.Error(), "unknown curve") {
		t.Errorf("unknown curve error = %v", err)
	}
}
