// Package loadgen is the metastable-failure workload engine: a
// deterministic open-loop/closed-loop load generator over the
// internal/vclock discrete-event simulator.
//
// The paper's thesis is that cross-system failures emerge only when
// systems are exercised *together* under realistic interaction
// patterns. The data-plane harness injects wrong *values*; the
// partition plane injects wrong *views*; this package injects wrong
// *load*: retry storms, thundering herds, and metastable collapse —
// the failure mode where a client plane and a service plane each work
// in isolation and fail when connected, and where the failure outlives
// the trigger that started it (Bronson et al., HotOS '21; Huang et
// al., OSDI '22).
//
// The model is the classic timeout-retry amplification loop:
//
//   - an open-loop arrival process (a splitmix64-seeded curve:
//     constant, ramp, spike, or diurnal) offers new sessions;
//   - each session issues a request against a bounded-queue server
//     with fixed per-request service time and optional admission
//     control (token bucket + queue-depth rejection);
//   - the client gives up on a request after a timeout, but the server
//     keeps processing the orphaned request — wasted work;
//   - failed attempts retry under a per-population retry policy
//     (naive immediate, capped exponential backoff with or without
//     full jitter) behind an optional circuit breaker.
//
// Once queueing delay exceeds the client timeout, every completion is
// wasted and every arrival becomes MaxAttempts arrivals: the system
// sustains overload at a base rate it previously served with ease.
// That hysteresis is metastability, and the phase-diagram runner
// (RunPhaseDiagram) maps exactly where it lives in the (load, policy)
// plane — and shows the identical arrival schedule recovering when
// backoff, jitter, and a breaker shed the amplified load.
//
// Everything is deterministic: arrivals are a pure function of
// (seed, curve, horizon); per-session retry jitter derives from
// (seed, session); all state mutates inside single-threaded vclock
// callbacks; reports render from slices in a fixed order. A campaign's
// Render/Hash is bit-identical across -parallel settings and repeated
// runs, which is what lets CI pin a seed-42 phase diagram as a golden.
package loadgen

// Outcome labels for a finished session, in the order they are
// rendered.
const (
	// OutcomeOK: a response arrived within the client timeout.
	OutcomeOK = "ok"
	// OutcomeGiveUp: the retry policy exhausted its attempts.
	OutcomeGiveUp = "give_up"
)

// Attempt-failure reasons.
const (
	ReasonTimeout   = "timeout"    // accepted, but no response within the deadline
	ReasonQueueFull = "queue_full" // rejected by queue-depth admission
	ReasonThrottled = "throttled"  // rejected by the token bucket
	ReasonBreaker   = "breaker"    // shed client-side by the open circuit breaker
)

// Classification of one phase-diagram cell.
const (
	// ClassStable: no collapsed window anywhere, even at peak load —
	// the server tracked the offered curve end to end.
	ClassStable = "stable"
	// ClassRecovering: goodput collapsed under the perturbation but
	// the tail of the horizon is healthy again.
	ClassRecovering = "recovering"
	// ClassMetastable: goodput is still collapsed in the tail of the
	// horizon, long after the load spike ended — the failure is
	// self-sustaining.
	ClassMetastable = "metastable"
)

// Signatures the classifier can attach to a cell. Each maps onto an
// inject.LoadRegistry entry (round-tripped by tests both ways, like
// the D*/S*/P* families).
const (
	// SigMetastableCollapse: the tail windows stay collapsed after the
	// trigger is gone.
	SigMetastableCollapse = "metastable-collapse"
	// SigRetryStorm: post-spike attempt amplification sustained at 3x
	// the offered arrivals or more.
	SigRetryStorm = "retry-storm"
	// SigThunderingHerd: retries cluster into synchronized bursts (a
	// high peak-to-mean attempt ratio at sub-window resolution with a
	// jitter-free policy).
	SigThunderingHerd = "thundering-herd"
)

// KnownSignatures lists every signature the classifier can emit, in
// stable order. inject.LoadRegistry mirrors it one-for-one.
func KnownSignatures() []string {
	return []string{SigMetastableCollapse, SigRetryStorm, SigThunderingHerd}
}
