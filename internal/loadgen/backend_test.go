package loadgen

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/kafkasim"
	"repro/internal/vclock"
	"repro/internal/yarnsim"
)

// backendCell runs a small stable cell with the given backend: 50 rps
// against 400 rps of capacity for 2 s, so every arrival is served and
// every completion drives one control-plane operation.
func backendCell(t *testing.T, b Backend) *RunStats {
	t.Helper()
	stats, err := Run(EngineConfig{
		Seed:      7,
		Curve:     Constant{RPS: 50 * MicroRPS},
		HorizonMs: 2000,
		Server:    ServerConfig{Workers: 4, QueueCap: 50, ServiceMs: 10},
		Client:    ClientConfig{Policy: Naive{MaxAttempts: 2}},
		Backend:   b,
		Label:     "backend-cell",
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestYarnBackendDrivesControlPlane pins the tentpole's YARN leg: each
// served request is a full application lifecycle, and the RM's ledger
// afterwards matches the engine's counters exactly.
func TestYarnBackendDrivesControlPlane(t *testing.T) {
	rm := yarnsim.New(vclock.New(), yarnsim.Options{})
	backend := &YarnBackend{RM: rm, FailEvery: 10}
	stats := backendCell(t, backend)

	if stats.BackendOps == 0 {
		t.Fatal("no control-plane operations for a cell full of completions")
	}
	if stats.BackendErrs != 0 {
		t.Fatalf("backend errors = %d, want 0", stats.BackendErrs)
	}
	served := stats.Totals.Goodput + stats.Totals.Wasted
	if stats.BackendOps != served {
		t.Errorf("backend ops = %d, served = %d: one lifecycle per completion", stats.BackendOps, served)
	}
	if backend.Apps() != stats.BackendOps {
		t.Errorf("backend completed %d lifecycles, ops counter says %d", backend.Apps(), stats.BackendOps)
	}
	// The RM recorded the heterogeneous statuses the backend reported.
	status, finished, err := rm.ApplicationStatus(1)
	if err != nil || !finished || status != yarnsim.AppSucceeded {
		t.Errorf("application 1 = %v/%v/%v, want finished SUCCEEDED", status, finished, err)
	}
	status, _, err = rm.ApplicationStatus(10) // 10th op (n=9) is the FailEvery=10 failure
	if err != nil || status != yarnsim.AppFailed {
		t.Errorf("application 10 = %v/%v, want FAILED", status, err)
	}
}

// TestKafkaBackendDrivesBroker pins the Kafka leg: every completion is
// a produce + read-back round trip, and the broker's end offsets sum
// to the operation count.
func TestKafkaBackendDrivesBroker(t *testing.T) {
	broker := kafkasim.NewBroker()
	backend, err := NewKafkaBackend(broker, "load", 3)
	if err != nil {
		t.Fatal(err)
	}
	stats := backendCell(t, backend)

	if stats.BackendErrs != 0 {
		t.Fatalf("backend errors = %d, want 0", stats.BackendErrs)
	}
	if backend.Produced() != stats.BackendOps {
		t.Errorf("produced %d, ops %d", backend.Produced(), stats.BackendOps)
	}
	var total int64
	for p := 0; p < 3; p++ {
		end, err := broker.EndOffset("load", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != stats.BackendOps {
		t.Errorf("broker holds %d records across partitions, want %d", total, stats.BackendOps)
	}
}

// errBackend always fails; the engine must count the failures without
// letting them disturb the data plane.
type errBackend struct{ ops int64 }

func (e *errBackend) Name() string { return "err" }
func (e *errBackend) Op(int64) error {
	e.ops++
	return errors.New("control plane down")
}

func TestBackendErrorsDoNotFailRequests(t *testing.T) {
	backend := &errBackend{}
	stats := backendCell(t, backend)
	if stats.BackendErrs != stats.BackendOps || stats.BackendErrs == 0 {
		t.Errorf("errs %d of %d ops, want all", stats.BackendErrs, stats.BackendOps)
	}
	clean := backendCell(t, nil)
	if stats.Totals.Goodput != clean.Totals.Goodput {
		t.Errorf("goodput %d with failing backend vs %d without: backend errors must not fail requests",
			stats.Totals.Goodput, clean.Totals.Goodput)
	}
}

// TestBackendRunsDeterministic: a control-plane backend adds no
// nondeterminism — identical configs give identical stats.
func TestBackendRunsDeterministic(t *testing.T) {
	a := backendCell(t, &YarnBackend{RM: yarnsim.New(vclock.New(), yarnsim.Options{})})
	b := backendCell(t, &YarnBackend{RM: yarnsim.New(vclock.New(), yarnsim.Options{})})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("backend runs diverged:\n%+v\n%+v", a, b)
	}
}
