package loadgen

import (
	"fmt"

	"repro/internal/fuzzgen"
)

// RetryPolicy decides how a session reacts to a failed attempt.
// Implementations must be stateless value types: one policy instance
// is shared by every session in a population, and any randomness must
// come from the session's own rng so cells stay deterministic.
type RetryPolicy interface {
	Name() string
	// Delay returns the wait in virtual ms before attempt+1, or -1 to
	// give up. attempt counts the attempts already made (>= 1).
	// retryAfterMs is the server's Retry-After hint (0 = none); whether
	// it is honored is the policy's choice.
	Delay(attempt int, retryAfterMs int64, rng *fuzzgen.Rand) int64
	// Jittered reports whether the policy decorrelates retries. The
	// classifier uses it to attribute synchronized retry bursts.
	Jittered() bool
}

// Naive retries immediately (next virtual millisecond) up to
// MaxAttempts total attempts, ignoring any Retry-After hint — the
// client the metastability literature warns about.
type Naive struct {
	MaxAttempts int
}

func (p Naive) Name() string   { return "naive" }
func (p Naive) Jittered() bool { return false }
func (p Naive) Delay(attempt int, retryAfterMs int64, rng *fuzzgen.Rand) int64 {
	if attempt >= p.MaxAttempts {
		return -1
	}
	return 1 // "immediate": the next event-loop instant
}

// CappedBackoff waits base*2^(attempt-1) capped at CapMs. FullJitter
// draws the actual delay uniformly from [1, d] (the AWS "full jitter"
// variant); HonorRetryAfter raises the floor to the server's hint
// before jittering.
type CappedBackoff struct {
	BaseMs          int64
	CapMs           int64
	MaxAttempts     int
	FullJitter      bool
	HonorRetryAfter bool
}

func (p CappedBackoff) Name() string {
	name := "backoff"
	if p.FullJitter {
		name += "-jitter"
	}
	return name
}

func (p CappedBackoff) Jittered() bool { return p.FullJitter }

func (p CappedBackoff) Delay(attempt int, retryAfterMs int64, rng *fuzzgen.Rand) int64 {
	if attempt >= p.MaxAttempts {
		return -1
	}
	d := p.CapMs
	if shift := attempt - 1; shift < 32 && p.BaseMs<<shift < p.CapMs {
		d = p.BaseMs << shift
	}
	if p.HonorRetryAfter && retryAfterMs > d {
		d = retryAfterMs
	}
	if d < 1 {
		d = 1
	}
	if p.FullJitter {
		d = 1 + int64(rng.Intn(int(d)))
	}
	return d
}

// PolicySpec pairs a retry policy with the breaker setting for one
// phase-diagram row: the policy axis of the diagram is really
// (retry behaviour, breaker on/off).
type PolicySpec struct {
	Label   string
	Policy  RetryPolicy
	Breaker BreakerConfig
}

// defaultBreaker is the breaker used by every *-breaker row: open
// after 5 consecutive failures, probe after 2 virtual seconds.
func defaultBreaker() BreakerConfig {
	return BreakerConfig{Enabled: true, FailThreshold: 5, OpenMs: 2000}
}

// Policies returns the phase-diagram rows, in render order: the naive
// client, the naive client saved by a breaker, capped backoff without
// and with full jitter, and the full defensive stack.
func Policies() []PolicySpec {
	naive := Naive{MaxAttempts: 4}
	backoff := CappedBackoff{BaseMs: 50, CapMs: 5000, MaxAttempts: 6, HonorRetryAfter: true}
	jittered := backoff
	jittered.FullJitter = true
	return []PolicySpec{
		{Label: "naive", Policy: naive},
		{Label: "naive+breaker", Policy: naive, Breaker: defaultBreaker()},
		{Label: "backoff", Policy: backoff},
		{Label: "backoff+jitter", Policy: jittered},
		{Label: "backoff+jitter+breaker", Policy: jittered, Breaker: defaultBreaker()},
	}
}

// PolicyByLabel resolves one phase-diagram row by its label.
func PolicyByLabel(label string) (PolicySpec, error) {
	for _, p := range Policies() {
		if p.Label == label {
			return p, nil
		}
	}
	return PolicySpec{}, fmt.Errorf("loadgen: unknown policy %q (have %s)", label, PolicyLabels())
}

// PolicyLabels renders the row labels, comma-joined, for error text and
// CLI help.
func PolicyLabels() string {
	s := ""
	for i, p := range Policies() {
		if i > 0 {
			s += ","
		}
		s += p.Label
	}
	return s
}
