package loadgen

import (
	"reflect"
	"testing"
)

// classifyServer is the synthetic-window geometry: 400 requests of
// capacity per 1 s window, collapse line at goodput < 120.
var classifyServer = ServerConfig{Workers: 4, QueueCap: 200, ServiceMs: 10}

func windowsOf(goodput ...int64) *RunStats {
	stats := &RunStats{}
	for i, g := range goodput {
		w := WindowStats{FromMs: int64(i) * 1000, Arrivals: 300, Attempts: 500, Goodput: g}
		stats.Windows = append(stats.Windows, w)
	}
	return stats
}

func TestClassifyStable(t *testing.T) {
	stats := windowsOf(390, 395, 400, 400, 400, 400)
	cls := Classify(stats, classifyServer, 1000, 2000, false)
	if cls.Class != ClassStable || cls.CollapsedWindows != 0 {
		t.Errorf("classification = %+v, want stable/0", cls)
	}
	if len(cls.Signatures) != 0 {
		t.Errorf("stable cell carries signatures %v", cls.Signatures)
	}
}

func TestClassifyRecovering(t *testing.T) {
	// Collapse during the perturbation, healthy tail.
	stats := windowsOf(100, 50, 80, 400, 400, 400, 400, 400)
	cls := Classify(stats, classifyServer, 1000, 3000, false)
	if cls.Class != ClassRecovering {
		t.Errorf("class = %s, want %s", cls.Class, ClassRecovering)
	}
	if cls.CollapsedWindows != 3 || cls.TailCollapsed != 0 {
		t.Errorf("collapsed=%d tail=%d, want 3/0", cls.CollapsedWindows, cls.TailCollapsed)
	}
}

func TestClassifyMetastable(t *testing.T) {
	// Collapse that persists to the end of the horizon.
	stats := windowsOf(400, 100, 60, 50, 40, 30, 20, 10)
	cls := Classify(stats, classifyServer, 1000, 2000, false)
	if cls.Class != ClassMetastable {
		t.Errorf("class = %s, want %s", cls.Class, ClassMetastable)
	}
	if cls.TailCollapsed < tailCollapsedMin {
		t.Errorf("tail collapsed = %d, want >= %d", cls.TailCollapsed, tailCollapsedMin)
	}
	if got := cls.Signatures; len(got) == 0 || got[0] != SigMetastableCollapse {
		t.Errorf("signatures = %v, want %s first", got, SigMetastableCollapse)
	}
}

// TestClassifyRetryStorm pins the amplification signature: sustained
// post-overload attempts >= 3x arrivals across >= 3 consecutive windows.
func TestClassifyRetryStorm(t *testing.T) {
	stats := &RunStats{}
	for i := 0; i < 8; i++ {
		w := WindowStats{FromMs: int64(i) * 1000, Arrivals: 300, Attempts: 300, Goodput: 400}
		if i >= 4 {
			w.Attempts = 1000 // 3.3x amplification after the overload ends
			w.Goodput = 50
		}
		stats.Windows = append(stats.Windows, w)
	}
	cls := Classify(stats, classifyServer, 1000, 4000, false)
	found := false
	for _, s := range cls.Signatures {
		if s == SigRetryStorm {
			found = true
		}
	}
	if !found {
		t.Errorf("signatures = %v, want %s", cls.Signatures, SigRetryStorm)
	}
	if cls.PostAmplification < 3.0 {
		t.Errorf("post amplification = %.2f, want >= 3", cls.PostAmplification)
	}

	// Two amplified windows separated by a calm one: no storm.
	stats.Windows[5].Attempts = 300
	cls = Classify(stats, classifyServer, 1000, 4000, false)
	for _, s := range cls.Signatures {
		if s == SigRetryStorm {
			t.Errorf("non-consecutive amplification still flagged a storm: %v", cls.Signatures)
		}
	}
}

// TestClassifyThunderingHerd pins burst attribution: a synchronized
// 100 ms cluster in a jitter-free cell earns the signature; the same
// windows under a jittered policy do not (jitter is the cure, so the
// herd cannot be attributed to it).
func TestClassifyThunderingHerd(t *testing.T) {
	stats := windowsOf(100, 50, 40, 30, 20, 10)
	// Mean 50 attempts per 100 ms slice; one slice carrying 250 is a herd.
	stats.Windows[1].MaxBurst = 250
	cls := Classify(stats, classifyServer, 1000, 2000, false)
	herd := false
	for _, s := range cls.Signatures {
		if s == SigThunderingHerd {
			herd = true
		}
	}
	if !herd {
		t.Errorf("signatures = %v, want %s", cls.Signatures, SigThunderingHerd)
	}

	jittered := Classify(stats, classifyServer, 1000, 2000, true)
	for _, s := range jittered.Signatures {
		if s == SigThunderingHerd {
			t.Errorf("jittered cell blamed for a herd: %v", jittered.Signatures)
		}
	}
}

func TestClassifyEmpty(t *testing.T) {
	cls := Classify(&RunStats{}, classifyServer, 1000, 0, false)
	if cls.Class != ClassStable {
		t.Errorf("empty run class = %s, want stable", cls.Class)
	}
}

// TestKnownSignatures pins the stable order the inject.LoadRegistry
// mirrors.
func TestKnownSignatures(t *testing.T) {
	want := []string{SigMetastableCollapse, SigRetryStorm, SigThunderingHerd}
	if got := KnownSignatures(); !reflect.DeepEqual(got, want) {
		t.Errorf("KnownSignatures() = %v, want %v", got, want)
	}
}
