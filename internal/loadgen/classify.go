package loadgen

// The classifier turns one cell's window series into the phase-diagram
// vocabulary: stable / recovering / metastable, plus the failure
// signatures (retry storm, thundering herd, metastable collapse) that
// map onto the inject.LoadRegistry the way D*/S*/P* findings map onto
// theirs.

// Classifier thresholds. They are part of the pinned golden: changing
// one deliberately means regenerating the phase diagram.
const (
	// collapseFrac: a window is collapsed when goodput is below this
	// fraction of the server's per-window capacity while clients are
	// offering at least that capacity — the server is saturated and
	// producing (almost) nothing useful.
	collapseFrac = 0.3
	// tailWindows is how many horizon-final windows the metastability
	// test inspects.
	tailWindows = 5
	// tailCollapsedMin: at least this many tail windows must be
	// collapsed to call the cell metastable.
	tailCollapsedMin = 3
	// stormAmplification: sustained post-overload attempts/arrivals at
	// or above this ratio is a retry storm.
	stormAmplification = 3.0
	// stormWindowsMin: the amplification must hold for this many
	// consecutive post-overload windows.
	stormWindowsMin = 3
	// herdBurstRatio: the largest 100 ms attempt burst in a
	// post-overload window at or above this multiple of the window's
	// mean 100 ms rate marks a synchronized herd (only attributed to
	// jitter-free policies; jitter exists precisely to spread these).
	herdBurstRatio = 4.0
)

// Classification is the classifier's verdict on one cell.
type Classification struct {
	Class string `json:"class"`
	// CollapsedWindows counts collapsed windows over the whole run;
	// TailCollapsed counts them inside the tail.
	CollapsedWindows int `json:"collapsed_windows"`
	TailCollapsed    int `json:"tail_collapsed"`
	// PostAmplification is the attempts/arrivals ratio over the
	// post-overload windows (0 when there are none).
	PostAmplification float64 `json:"post_amplification"`
	// Signatures name the failure modes observed, in KnownSignatures
	// order.
	Signatures []string `json:"signatures,omitempty"`
}

// capacityPerWindow returns how many requests the server can serve in
// one stats window.
func capacityPerWindow(server ServerConfig, windowMs int64) float64 {
	return float64(server.CapacityRPS()) * float64(windowMs) / 1000.0
}

// collapsed reports whether one window is collapsed given the per-
// window capacity: demand at or above capacity, goodput far below it.
func collapsed(w WindowStats, capacity float64) bool {
	return float64(w.Attempts) >= capacity && float64(w.Goodput) < collapseFrac*capacity
}

// Classify reduces one cell run to its phase-diagram verdict.
// overloadEndMs is the end of the curve's last deliberate overload
// phase (OverloadEndMs); jittered is the policy's Jittered().
func Classify(stats *RunStats, server ServerConfig, windowMs, overloadEndMs int64, jittered bool) Classification {
	capacity := capacityPerWindow(server, windowMs)
	out := Classification{Class: ClassStable}
	if capacity <= 0 || len(stats.Windows) == 0 {
		return out
	}

	tailStart := len(stats.Windows) - tailWindows
	if tailStart < 0 {
		tailStart = 0
	}
	for i, w := range stats.Windows {
		if collapsed(w, capacity) {
			out.CollapsedWindows++
			if i >= tailStart {
				out.TailCollapsed++
			}
		}
	}

	// Post-overload statistics: everything after the perturbation (or
	// the whole run when the curve has none).
	var postArrivals, postAttempts int64
	stormRun, stormPeak := 0, 0
	herd := false
	for _, w := range stats.Windows {
		// Herd: compare the window's peak 100 ms burst to its mean
		// 100 ms attempt rate, over the whole run — synchronized retry
		// clusters form at the overload's onset, when a whole queue-fill
		// wave times out together and reissues after identical delays.
		if w.Attempts > 0 {
			mean := float64(w.Attempts) / (float64(windowMs) / 100.0)
			if mean > 0 && float64(w.MaxBurst) >= herdBurstRatio*mean && w.MaxBurst >= 20 {
				herd = true
			}
		}
		if w.FromMs < overloadEndMs {
			continue
		}
		postArrivals += w.Arrivals
		postAttempts += w.Attempts
		if w.Arrivals > 0 && float64(w.Attempts) >= stormAmplification*float64(w.Arrivals) {
			stormRun++
			if stormRun > stormPeak {
				stormPeak = stormRun
			}
		} else {
			stormRun = 0
		}
	}
	if postArrivals > 0 {
		out.PostAmplification = float64(postAttempts) / float64(postArrivals)
	}

	switch {
	case out.TailCollapsed >= tailCollapsedMin:
		out.Class = ClassMetastable
	case out.CollapsedWindows > 0:
		out.Class = ClassRecovering
	}

	if out.Class == ClassMetastable {
		out.Signatures = append(out.Signatures, SigMetastableCollapse)
	}
	if stormPeak >= stormWindowsMin {
		out.Signatures = append(out.Signatures, SigRetryStorm)
	}
	if herd && !jittered && out.Class != ClassStable {
		out.Signatures = append(out.Signatures, SigThunderingHerd)
	}
	return out
}
