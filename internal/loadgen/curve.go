package loadgen

import (
	"fmt"

	"repro/internal/fuzzgen"
)

// MicroRPS is the fixed-point rate unit: requests per second scaled by
// 1e6. All curve arithmetic is integer, so a schedule is bit-identical
// on every platform (no transcendental float functions anywhere near
// the golden path).
const MicroRPS int64 = 1_000_000

// Curve is an offered-load profile: the target arrival rate at every
// virtual instant, plus the phase structure the engine uses for spans
// and the classifier uses to separate "during the perturbation" from
// "after it ended".
type Curve interface {
	Name() string
	// Rate returns the arrival rate at virtual time t, in micro-rps.
	Rate(tMs int64) int64
	// Phases splits [0, horizonMs) into labelled intervals. Phases
	// marked Overload are the deliberate perturbation; classification
	// keys off the end of the last one.
	Phases(horizonMs int64) []Phase
}

// Phase is one labelled interval of a curve.
type Phase struct {
	Name     string
	FromMs   int64
	ToMs     int64
	Overload bool
}

// Constant offers a flat rate.
type Constant struct {
	RPS int64 // micro-rps
}

func (c Constant) Name() string         { return "constant" }
func (c Constant) Rate(tMs int64) int64 { return c.RPS }
func (c Constant) Phases(horizonMs int64) []Phase {
	return []Phase{{Name: "steady", FromMs: 0, ToMs: horizonMs}}
}

// Spike offers Base everywhere except [FromMs, ToMs), where it offers
// Peak. This is the canonical metastability trigger: a bounded burst
// whose effects should end when it does.
type Spike struct {
	Base   int64 // micro-rps
	Peak   int64 // micro-rps
	FromMs int64
	ToMs   int64
}

func (c Spike) Name() string { return "spike" }
func (c Spike) Rate(tMs int64) int64 {
	if tMs >= c.FromMs && tMs < c.ToMs {
		return c.Peak
	}
	return c.Base
}
func (c Spike) Phases(horizonMs int64) []Phase {
	return []Phase{
		{Name: "pre-spike", FromMs: 0, ToMs: c.FromMs},
		{Name: "spike", FromMs: c.FromMs, ToMs: c.ToMs, Overload: true},
		{Name: "post-spike", FromMs: c.ToMs, ToMs: horizonMs},
	}
}

// Ramp interpolates linearly from From to To over [StartMs, EndMs),
// holding To afterwards — the "success disaster" profile: growth that
// crosses capacity and stays there.
type Ramp struct {
	From    int64 // micro-rps
	To      int64 // micro-rps
	StartMs int64
	EndMs   int64
}

func (c Ramp) Name() string { return "ramp" }
func (c Ramp) Rate(tMs int64) int64 {
	switch {
	case tMs < c.StartMs:
		return c.From
	case tMs >= c.EndMs:
		return c.To
	default:
		span := c.EndMs - c.StartMs
		return c.From + (c.To-c.From)*(tMs-c.StartMs)/span
	}
}
func (c Ramp) Phases(horizonMs int64) []Phase {
	return []Phase{
		{Name: "floor", FromMs: 0, ToMs: c.StartMs},
		{Name: "ramp", FromMs: c.StartMs, ToMs: c.EndMs},
		{Name: "plateau", FromMs: c.EndMs, ToMs: horizonMs},
	}
}

// Diurnal is a triangle wave between Base and Peak with the given
// period: rate climbs linearly for the first half-period and falls for
// the second. A triangle instead of a sinusoid keeps the arithmetic
// integer (goldens must not depend on math.Sin rounding).
type Diurnal struct {
	Base     int64 // micro-rps
	Peak     int64 // micro-rps
	PeriodMs int64
}

func (c Diurnal) Name() string { return "diurnal" }
func (c Diurnal) Rate(tMs int64) int64 {
	if c.PeriodMs <= 0 {
		return c.Base
	}
	half := c.PeriodMs / 2
	pos := tMs % c.PeriodMs
	if pos >= half {
		pos = c.PeriodMs - pos
	}
	return c.Base + (c.Peak-c.Base)*pos/half
}
func (c Diurnal) Phases(horizonMs int64) []Phase {
	return []Phase{{Name: "diurnal", FromMs: 0, ToMs: horizonMs}}
}

// OverloadEndMs returns the end of the last Overload phase, or 0 when
// the curve has none.
func OverloadEndMs(c Curve, horizonMs int64) int64 {
	var end int64
	for _, p := range c.Phases(horizonMs) {
		if p.Overload && p.ToMs > end {
			end = p.ToMs
		}
	}
	return end
}

// Schedule generates the open-loop arrival instants over [0,
// horizonMs): a pure function of (seed, curve, horizonMs). Each virtual
// millisecond contributes rate(t) nano-arrivals to an accumulator;
// whole arrivals are emitted as they accrue and the fractional
// remainder is resolved by a seeded Bernoulli draw, so the realized
// schedule is an unbiased, seed-dependent sample of the curve while
// staying integer end to end.
func Schedule(seed uint64, c Curve, horizonMs int64) []int64 {
	const nanoPerArrival = 1_000_000_000
	rng := fuzzgen.NewRand(seed)
	var out []int64
	var acc int64
	for t := int64(0); t < horizonMs; t++ {
		// micro-rps x 1ms = nano-arrivals.
		acc += c.Rate(t)
		for acc >= nanoPerArrival {
			acc -= nanoPerArrival
			out = append(out, t)
		}
		// Dither the remainder: emit one extra arrival this ms with
		// probability acc/1e9, consuming it from the accumulator.
		if acc > 0 && int64(rng.Uint64()%nanoPerArrival) < acc {
			acc -= nanoPerArrival
			out = append(out, t)
		}
	}
	return out
}

// Curves returns the registered curve names, in render order.
func Curves() []string { return []string{"constant", "spike", "ramp", "diurnal"} }

// CurveByName builds a curve from a name and the standard cell
// parameters: base rate, peak rate, and the perturbation window. It is
// the CLI's constructor; the phase diagram builds Spikes directly.
func CurveByName(name string, base, peak int64, fromMs, toMs int64) (Curve, error) {
	switch name {
	case "constant":
		return Constant{RPS: base}, nil
	case "spike":
		return Spike{Base: base, Peak: peak, FromMs: fromMs, ToMs: toMs}, nil
	case "ramp":
		return Ramp{From: base, To: peak, StartMs: fromMs, EndMs: toMs}, nil
	case "diurnal":
		return Diurnal{Base: base, Peak: peak, PeriodMs: toMs - fromMs}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown curve %q (have constant, spike, ramp, diurnal)", name)
	}
}
