package loadgen

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fuzzgen"
	"repro/internal/obs"
)

// PhaseOptions configures a phase-diagram sweep: every retry-policy
// row against every load column, each cell on a fresh virtual clock
// but — per column — the byte-identical arrival schedule, so the only
// variable between a collapsed cell and a recovered one is the client's
// retry behaviour.
type PhaseOptions struct {
	Seed uint64
	// Policies selects the rows (labels from Policies()); empty = all.
	Policies []string
	// PeakRPS selects the columns: the spike's peak rate in whole rps.
	// Empty = DefaultPeaks.
	PeakRPS []int64
	// Parallel runs cells concurrently (default 1). Reports are
	// bit-identical regardless.
	Parallel int

	// Admission enables the server-side token bucket in every cell —
	// the "what if the server defends itself" sweep.
	Admission bool

	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// The standard cell geometry. The server serves 400 rps (4 workers x
// 10 ms); the base load is a comfortable 300 rps; the spike occupies
// [10 s, 20 s) of a 60 s horizon, leaving 40 s of post-trigger
// history for the metastability verdict.
const (
	StdWorkers   = 4
	StdQueueCap  = 200
	StdServiceMs = 10
	StdBaseRPS   = 300
	StdHorizonMs = 60_000
	StdWindowMs  = 1000
	StdSpikeFrom = 10_000
	StdSpikeTo   = 20_000
	StdTimeoutMs = 300
)

// DefaultPeaks are the standard load columns: below capacity (the
// control), 2x capacity, and 4x capacity.
func DefaultPeaks() []int64 { return []int64{350, 800, 1600} }

// StdServer returns the standard cell server. With admission on, the
// token bucket caps sustained intake at ~90% of service capacity with
// a one-second burst allowance — rejecting cheaply at the door instead
// of queueing into the timeout zone.
func StdServer(admission bool) ServerConfig {
	cfg := ServerConfig{Workers: StdWorkers, QueueCap: StdQueueCap, ServiceMs: StdServiceMs}
	if admission {
		cfg.TokenRate = 360 * MicroRPS
		cfg.TokenBurst = 360
	}
	return cfg
}

// Cell is one evaluated (policy, load) coordinate.
type Cell struct {
	Policy  string `json:"policy"`
	PeakRPS int64  `json:"peak_rps"`

	Stats          *RunStats      `json:"stats"`
	Classification Classification `json:"classification"`
}

// PhaseResult is a full sweep.
type PhaseResult struct {
	Seed      uint64   `json:"seed"`
	Admission bool     `json:"admission"`
	Policies  []string `json:"policies"`
	PeakRPS   []int64  `json:"peak_rps"`
	Cells     []Cell   `json:"cells"` // row-major: policies x peaks
}

// columnSeed derives the arrival-schedule seed for one load column: a
// pure function of (sweep seed, peak), independent of the policy row,
// so every row in a column replays the identical arrivals.
func columnSeed(seed uint64, peak int64) uint64 {
	return fuzzgen.DeriveSeed(seed, int(peak))
}

// CellConfig builds the EngineConfig for one coordinate. Exposed so
// the CLI's single-cell mode and the sweep agree exactly.
func CellConfig(seed uint64, spec PolicySpec, peak int64, admission bool) EngineConfig {
	curve := Spike{Base: StdBaseRPS * MicroRPS, Peak: peak * MicroRPS, FromMs: StdSpikeFrom, ToMs: StdSpikeTo}
	return EngineConfig{
		Seed:      columnSeed(seed, peak),
		Curve:     curve,
		HorizonMs: StdHorizonMs,
		WindowMs:  StdWindowMs,
		Server:    StdServer(admission),
		Client: ClientConfig{
			Mode:      ModeOpen,
			TimeoutMs: StdTimeoutMs,
			Policy:    spec.Policy,
			Breaker:   spec.Breaker,
		},
		Label: fmt.Sprintf("%s@%d", spec.Label, peak),
	}
}

// RunPhaseDiagram executes the sweep. Cells are independent units on
// Parallel workers; assembly order is row-major and deterministic.
func RunPhaseDiagram(opts PhaseOptions) (*PhaseResult, error) {
	var specs []PolicySpec
	if len(opts.Policies) == 0 {
		specs = Policies()
	} else {
		for _, label := range opts.Policies {
			spec, err := PolicyByLabel(label)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	peaks := opts.PeakRPS
	if len(peaks) == 0 {
		peaks = DefaultPeaks()
	}
	for _, p := range peaks {
		if p <= 0 {
			return nil, fmt.Errorf("loadgen: peak rps must be positive, got %d", p)
		}
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}

	// Precompute each column's arrival schedule once; every row shares
	// the same backing slice (read-only inside Run).
	schedules := make(map[int64][]int64, len(peaks))
	for _, peak := range peaks {
		cfg := CellConfig(opts.Seed, specs[0], peak, opts.Admission)
		schedules[peak] = Schedule(cfg.Seed, cfg.Curve, cfg.HorizonMs)
	}

	type coord struct {
		row, col int
	}
	coords := make([]coord, 0, len(specs)*len(peaks))
	for r := range specs {
		for c := range peaks {
			coords = append(coords, coord{r, c})
		}
	}
	cells := make([]Cell, len(coords))
	var firstErr error
	var errMu sync.Mutex
	runCell := func(i int) {
		co := coords[i]
		spec, peak := specs[co.row], peaks[co.col]
		cfg := CellConfig(opts.Seed, spec, peak, opts.Admission)
		cfg.Arrivals = schedules[peak]
		cfg.Tracer = opts.Tracer
		cfg.Metrics = opts.Metrics
		stats, err := Run(cfg)
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		cls := Classify(stats, cfg.Server, cfg.WindowMs, OverloadEndMs(cfg.Curve, cfg.HorizonMs), spec.Policy.Jittered())
		cells[i] = Cell{Policy: spec.Label, PeakRPS: peak, Stats: stats, Classification: cls}
	}

	if opts.Parallel == 1 {
		for i := range coords {
			runCell(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < opts.Parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runCell(i)
				}
			}()
		}
		for i := range coords {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &PhaseResult{Seed: opts.Seed, Admission: opts.Admission, PeakRPS: peaks}
	for _, s := range specs {
		res.Policies = append(res.Policies, s.Label)
	}
	res.Cells = cells
	return res, nil
}

// CellAt returns the cell for (policy label, peak), or nil.
func (r *PhaseResult) CellAt(policy string, peak int64) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Policy == policy && r.Cells[i].PeakRPS == peak {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render formats the sweep deterministically: the per-cell detail
// blocks followed by the classification matrix. Byte-identical across
// -parallel settings and repeated runs.
func (r *PhaseResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load phase diagram seed=%d admission=%v base=%drps capacity=%drps spike=[%ds,%ds) horizon=%ds\n",
		r.Seed, r.Admission, int64(StdBaseRPS), StdServer(false).CapacityRPS(),
		StdSpikeFrom/1000, StdSpikeTo/1000, StdHorizonMs/1000)
	for i := range r.Cells {
		cell := &r.Cells[i]
		st, cls := cell.Stats, &cell.Classification
		t := st.Totals
		fmt.Fprintf(&b, "\n%s peak=%drps: %s\n", cell.Policy, cell.PeakRPS, cls.Class)
		fmt.Fprintf(&b, "  arrivals=%d attempts=%d goodput=%d wasted=%d timeouts=%d\n",
			t.Arrivals, t.Attempts, t.Goodput, t.Wasted, t.Timeouts)
		fmt.Fprintf(&b, "  rejected: queue=%d throttled=%d breaker_shed=%d give_ups=%d final_queue=%d\n",
			t.RejectQueue, t.RejectThrottle, t.BreakerShed, t.GiveUps, t.QueueLen)
		fmt.Fprintf(&b, "  latency p50=%.1fms p95=%.1fms p99=%.1fms breaker_opens=%d\n",
			st.P50Ms, st.P95Ms, st.P99Ms, st.BreakerOpens)
		fmt.Fprintf(&b, "  collapsed_windows=%d tail_collapsed=%d post_amplification=%.2f\n",
			cls.CollapsedWindows, cls.TailCollapsed, cls.PostAmplification)
		if len(cls.Signatures) > 0 {
			fmt.Fprintf(&b, "  signatures: %s\n", strings.Join(cls.Signatures, " "))
		}
	}

	fmt.Fprintf(&b, "\nphase matrix (rows=policy, cols=spike peak rps)\n")
	fmt.Fprintf(&b, "  %-24s", "")
	for _, p := range r.PeakRPS {
		fmt.Fprintf(&b, " %12d", p)
	}
	b.WriteString("\n")
	for _, policy := range r.Policies {
		fmt.Fprintf(&b, "  %-24s", policy)
		for _, p := range r.PeakRPS {
			cls := "-"
			if c := r.CellAt(policy, p); c != nil {
				cls = c.Classification.Class
			}
			fmt.Fprintf(&b, " %12s", cls)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Hash is the sweep's content hash: sha256 over the rendered report.
func (r *PhaseResult) Hash() string {
	return core.HashBytes([]byte(r.Render()))
}
