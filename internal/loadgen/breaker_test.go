package loadgen

import "testing"

func TestBreakerDisabledIsNil(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b != nil {
		t.Fatal("disabled config must build a nil breaker")
	}
	// The nil breaker is a real code path (breakerless rows): every
	// method must be safe and permissive.
	if !b.Allow(0) {
		t.Error("nil breaker must allow")
	}
	b.Record(0, false)
	if got := b.State(); got != "disabled" {
		t.Errorf("nil breaker State() = %q, want disabled", got)
	}
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, FailThreshold: 3, OpenMs: 100})
	for i := 0; i < 2; i++ {
		if !b.Allow(int64(i)) {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		b.Record(int64(i), false)
	}
	// A success resets the consecutive count.
	b.Record(2, true)
	b.Record(3, false)
	b.Record(4, false)
	if b.State() != "closed" {
		t.Fatalf("2 failures after a success should not open (threshold 3); state = %s", b.State())
	}
	b.Record(5, false)
	if b.State() != "open" {
		t.Fatalf("3 consecutive failures must open; state = %s", b.State())
	}
	if b.Opens != 1 {
		t.Errorf("Opens = %d, want 1", b.Opens)
	}
	if b.Allow(6) {
		t.Error("open breaker allowed an attempt before OpenMs elapsed")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, FailThreshold: 1, OpenMs: 100})
	b.Record(10, false) // open at t=10
	if b.Allow(50) {
		t.Fatal("allowed during open window")
	}
	if !b.Allow(110) {
		t.Fatal("must admit one half-open probe after OpenMs")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow(111) {
		t.Fatal("second attempt admitted while probe in flight")
	}
	b.Record(120, true) // probe succeeds
	if b.State() != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
	if !b.Allow(121) {
		t.Error("closed breaker must allow")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, FailThreshold: 5, OpenMs: 100})
	for i := 0; i < 5; i++ {
		b.Record(int64(i), false)
	}
	if b.Opens != 1 || b.State() != "open" {
		t.Fatalf("state=%s opens=%d after threshold failures", b.State(), b.Opens)
	}
	if !b.Allow(200) {
		t.Fatal("probe not admitted")
	}
	// One failed probe reopens immediately — no threshold accumulation
	// in half-open.
	b.Record(210, false)
	if b.State() != "open" || b.Opens != 2 {
		t.Fatalf("failed probe: state=%s opens=%d, want open/2", b.State(), b.Opens)
	}
	// The open window restarts from the probe failure.
	if b.Allow(250) {
		t.Error("reopened breaker allowed before its fresh OpenMs elapsed")
	}
	if !b.Allow(310) {
		t.Error("reopened breaker must admit a probe after OpenMs from reopen")
	}
}
