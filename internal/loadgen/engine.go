package loadgen

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/fuzzgen"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// systemLoadgen tags the engine's spans: load generation is a client
// plane above the service under test.
const systemLoadgen csi.System = "loadgen"

// LatencyBucketsMs are the histogram bounds for user-perceived session
// latency: wide enough to cover backoff-dominated completions.
var LatencyBucketsMs = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Client modes.
const (
	ModeOpen   = "open"   // arrivals follow the curve regardless of outcomes
	ModeClosed = "closed" // a fixed population; each client waits, thinks, reissues
)

// ClientConfig models the client plane of one cell.
type ClientConfig struct {
	Mode      string // ModeOpen (default) or ModeClosed
	Clients   int    // closed-loop population size
	ThinkMs   int64  // closed-loop think time between sessions
	TimeoutMs int64  // per-attempt deadline; expiry is a failure even if the server later completes
	Policy    RetryPolicy
	Breaker   BreakerConfig
}

// EngineConfig is one cell of the phase diagram: a curve, a client
// population, and a server, on one virtual clock.
type EngineConfig struct {
	Seed      uint64
	Curve     Curve
	HorizonMs int64
	WindowMs  int64 // stats window (default 1000)
	Server    ServerConfig
	Client    ClientConfig

	// Backend, when set, is the control plane every served request
	// drives (one YARN application lifecycle, one Kafka produce/fetch
	// round trip, ...). Nil keeps the server purely synthetic.
	Backend Backend

	// Arrivals overrides the generated schedule. The phase-diagram
	// runner passes the same slice to every policy row so the
	// collapse-vs-recovery comparison runs on a byte-identical
	// schedule.
	Arrivals []int64

	// MaxEvents bounds the discrete-event budget (0 = derived from the
	// schedule). Exhaustion is an error: it means a retry loop ran away.
	MaxEvents int

	Label   string // cell label stamped onto spans
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// WindowStats aggregates one stats window.
type WindowStats struct {
	FromMs         int64 `json:"from_ms"`
	Arrivals       int64 `json:"arrivals"`
	Attempts       int64 `json:"attempts"`
	Goodput        int64 `json:"goodput"`
	Wasted         int64 `json:"wasted"` // completions after the client's deadline
	Timeouts       int64 `json:"timeouts"`
	RejectQueue    int64 `json:"reject_queue"`
	RejectThrottle int64 `json:"reject_throttle"`
	BreakerShed    int64 `json:"breaker_shed"`
	GiveUps        int64 `json:"give_ups"`
	QueueLen       int   `json:"queue_len"` // sampled at window end
	// MaxBurst is the largest attempt count inside any 100 ms slice of
	// the window: the thundering-herd detector's raw signal.
	MaxBurst int64 `json:"max_burst"`
}

// RunStats is one cell's full outcome.
type RunStats struct {
	Label        string        `json:"label"`
	Windows      []WindowStats `json:"windows"`
	Totals       WindowStats   `json:"totals"`
	P50Ms        float64       `json:"p50_ms"`
	P95Ms        float64       `json:"p95_ms"`
	P99Ms        float64       `json:"p99_ms"`
	BreakerOpens int64         `json:"breaker_opens,omitempty"`
	Events       int           `json:"events"`
	// BackendOps / BackendErrs mirror the SimServer's control-plane
	// counters when a Backend is attached.
	BackendOps  int64 `json:"backend_ops,omitempty"`
	BackendErrs int64 `json:"backend_errs,omitempty"`
}

// Run executes one cell to the horizon. Deterministic: identical
// configs produce identical stats on every platform.
func Run(cfg EngineConfig) (*RunStats, error) {
	if cfg.Curve == nil {
		return nil, fmt.Errorf("loadgen: engine needs a curve")
	}
	if cfg.Client.Policy == nil {
		return nil, fmt.Errorf("loadgen: engine needs a retry policy")
	}
	if cfg.HorizonMs <= 0 {
		return nil, fmt.Errorf("loadgen: horizon must be positive, got %d", cfg.HorizonMs)
	}
	if cfg.WindowMs <= 0 {
		cfg.WindowMs = 1000
	}
	if cfg.Client.TimeoutMs <= 0 {
		cfg.Client.TimeoutMs = 300
	}
	mode := cfg.Client.Mode
	if mode == "" {
		mode = ModeOpen
	}
	if mode != ModeOpen && mode != ModeClosed {
		return nil, fmt.Errorf("loadgen: unknown client mode %q (want %s or %s)", mode, ModeOpen, ModeClosed)
	}
	if mode == ModeClosed && cfg.Client.Clients < 1 {
		return nil, fmt.Errorf("loadgen: closed-loop mode needs clients > 0")
	}

	sim := vclock.New()
	server := NewSimServer(sim, cfg.Server)
	server.Backend = cfg.Backend
	breaker := NewBreaker(cfg.Client.Breaker)
	hist := cfg.Metrics.Histogram(obs.MetricLoadLatencyMs, LatencyBucketsMs, "cell", cfg.Label)
	if hist == nil {
		// The quantile report needs a histogram even when the caller
		// passed no registry; a private one costs nothing.
		hist = obs.NewRegistry().Histogram(obs.MetricLoadLatencyMs, LatencyBucketsMs)
	}

	nWindows := int((cfg.HorizonMs + cfg.WindowMs - 1) / cfg.WindowMs)
	windows := make([]WindowStats, nWindows)
	for i := range windows {
		windows[i].FromMs = int64(i) * cfg.WindowMs
	}
	win := func() *WindowStats {
		i := int(sim.Now() / cfg.WindowMs)
		if i >= nWindows {
			i = nWindows - 1
		}
		return &windows[i]
	}

	// Sub-window burst tracking: attempts per 100 ms slice.
	const burstSliceMs = 100
	var burstSlice, burstCount int64
	attempt := func() {
		w := win()
		w.Attempts++
		if cfg.Metrics != nil {
			cfg.Metrics.Counter(obs.MetricLoadAttempts, "cell", cfg.Label).Inc()
		}
		if slice := sim.Now() / burstSliceMs; slice != burstSlice {
			burstSlice, burstCount = slice, 0
		}
		burstCount++
		if burstCount > w.MaxBurst {
			w.MaxBurst = burstCount
		}
	}

	sessionSeq := int64(0)
	var startSession func(clientID int64)
	var issue func(sess *session)

	scheduleNext := func(sess *session) {
		// Closed loop: the client thinks, then opens a new session.
		if mode != ModeClosed {
			return
		}
		think := cfg.Client.ThinkMs
		if think < 1 {
			think = 1
		}
		id := sess.clientID
		sim.After(think, func() { startSession(id) })
	}

	retryOrGiveUp := func(sess *session, retryAfterMs int64) {
		d := cfg.Client.Policy.Delay(sess.attempt, retryAfterMs, sess.rng)
		if d < 0 {
			win().GiveUps++
			scheduleNext(sess)
			return
		}
		sim.After(d, func() { issue(sess) })
	}

	issue = func(sess *session) {
		sess.attempt++
		attempt()
		now := sim.Now()
		if !breaker.Allow(now) {
			// Fail fast, terminally: a breaker-open error surfaces to
			// the caller instead of re-entering the retry loop. This is
			// the breaker's entire value — without it, every session
			// shed during the open window would re-flood the server the
			// instant the breaker closed, and the half-open probe could
			// never stick (the engine demonstrated exactly that flap
			// before shed became terminal).
			win().BreakerShed++
			scheduleNext(sess)
			return
		}
		// Per-attempt in-flight state: a retry may already be running
		// when an earlier, abandoned request completes, and that orphan
		// must count as wasted work — never as the new attempt's
		// response.
		att := &inflight{}
		if rej := server.Submit(func(completedAt int64) {
			if att.timedOut {
				win().Wasted++
				return
			}
			att.timer.Stop()
			lat := completedAt - sess.firstMs
			w := win()
			w.Goodput++
			hist.Observe(float64(lat))
			if cfg.Metrics != nil {
				cfg.Metrics.Counter(obs.MetricLoadGoodput, "cell", cfg.Label).Inc()
			}
			breaker.Record(completedAt, true)
			scheduleNext(sess)
		}); rej != nil {
			w := win()
			if rej.Reason == ReasonThrottled {
				w.RejectThrottle++
			} else {
				w.RejectQueue++
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Counter(obs.MetricLoadRejected, "cell", cfg.Label, "reason", rej.Reason).Inc()
			}
			breaker.Record(now, false)
			retryOrGiveUp(sess, rej.RetryAfterMs)
			return
		}
		att.timer = sim.After(cfg.Client.TimeoutMs, func() {
			att.timedOut = true
			win().Timeouts++
			breaker.Record(sim.Now(), false)
			retryOrGiveUp(sess, 0)
		})
	}

	startSession = func(clientID int64) {
		if sim.Now() >= cfg.HorizonMs {
			return
		}
		sessionSeq++
		win().Arrivals++
		sess := &session{
			clientID: clientID,
			firstMs:  sim.Now(),
			rng:      fuzzgen.NewRand(fuzzgen.DeriveSeed(cfg.Seed, int(sessionSeq))),
		}
		issue(sess)
	}

	// Seed the arrival process.
	arrivals := cfg.Arrivals
	if mode == ModeOpen {
		if arrivals == nil {
			arrivals = Schedule(cfg.Seed, cfg.Curve, cfg.HorizonMs)
		}
		for _, at := range arrivals {
			at := at
			sim.After(at, func() { startSession(-1) })
		}
	} else {
		// Closed loop: stagger the population over the first second so
		// client think cycles do not phase-lock from the start.
		rng := fuzzgen.NewRand(cfg.Seed)
		for c := 0; c < cfg.Client.Clients; c++ {
			id := int64(c)
			sim.After(int64(rng.Intn(1000)), func() { startSession(id) })
		}
	}

	// Window-end queue sampling.
	for i := 1; i <= nWindows; i++ {
		i := i
		at := int64(i) * cfg.WindowMs
		if at > cfg.HorizonMs {
			at = cfg.HorizonMs
		}
		// Sample after every same-instant event: schedule one tick at
		// the window edge; ties run in scheduling order, and these are
		// scheduled last for their instant only relative to earlier
		// inserts, so sample the *previous* window's end state.
		sim.After(at-1, func() { windows[i-1].QueueLen = server.QueueLen() })
	}

	// Per-phase spans: virtual-time intervals with outcome attributes.
	type phaseSpan struct {
		span  *obs.Span
		start int64
	}
	if cfg.Tracer != nil {
		for _, p := range cfg.Curve.Phases(cfg.HorizonMs) {
			if p.ToMs <= p.FromMs {
				continue
			}
			p := p
			ps := &phaseSpan{}
			sim.After(p.FromMs, func() {
				ps.span = cfg.Tracer.Span(nil, systemLoadgen, csi.ControlPlane, "load/"+p.Name)
				ps.span.Set("cell", cfg.Label).Set("from_ms", fmt.Sprint(p.FromMs)).Set("to_ms", fmt.Sprint(p.ToMs))
				if p.Overload {
					ps.span.Set("overload", "true")
				}
			})
			end := p.ToMs
			if end > cfg.HorizonMs {
				end = cfg.HorizonMs
			}
			sim.After(end-1, func() {
				if ps.span != nil {
					ps.span.Set("queue_len_at_end", fmt.Sprint(server.QueueLen()))
					ps.span.End()
				}
			})
		}
	}

	budget := cfg.MaxEvents
	if budget <= 0 {
		// Every session costs at most attempts x (issue + reject/timeout
		// + completion + retry timer) events plus scheduling overhead.
		perSession := 1
		switch p := cfg.Client.Policy.(type) {
		case Naive:
			perSession = p.MaxAttempts
		case CappedBackoff:
			perSession = p.MaxAttempts
		}
		n := len(arrivals)
		if mode == ModeClosed {
			n = cfg.Client.Clients * int(cfg.HorizonMs/(cfg.Client.ThinkMs+1)+1)
		}
		budget = (n + 1) * (perSession + 2) * 6
		if budget < 1_000_000 {
			budget = 1_000_000
		}
	}
	n, exhausted := sim.RunLimit(cfg.HorizonMs, budget)
	if exhausted {
		return nil, fmt.Errorf("loadgen: cell %q exhausted its %d-event budget at t=%dms — runaway retry loop", cfg.Label, budget, sim.Now())
	}

	stats := &RunStats{Label: cfg.Label, Windows: windows, Events: n}
	for _, w := range windows {
		stats.Totals.Arrivals += w.Arrivals
		stats.Totals.Attempts += w.Attempts
		stats.Totals.Goodput += w.Goodput
		stats.Totals.Wasted += w.Wasted
		stats.Totals.Timeouts += w.Timeouts
		stats.Totals.RejectQueue += w.RejectQueue
		stats.Totals.RejectThrottle += w.RejectThrottle
		stats.Totals.BreakerShed += w.BreakerShed
		stats.Totals.GiveUps += w.GiveUps
		if w.MaxBurst > stats.Totals.MaxBurst {
			stats.Totals.MaxBurst = w.MaxBurst
		}
	}
	stats.Totals.QueueLen = server.QueueLen()
	stats.BackendOps = server.BackendOps
	stats.BackendErrs = server.BackendErrs
	stats.P50Ms = hist.Quantile(0.50)
	stats.P95Ms = hist.Quantile(0.95)
	stats.P99Ms = hist.Quantile(0.99)
	if breaker != nil {
		stats.BreakerOpens = breaker.Opens
	}
	return stats, nil
}

// session is one user interaction: the attempt loop from first issue
// to OK or give-up.
type session struct {
	clientID int64
	firstMs  int64
	attempt  int
	rng      *fuzzgen.Rand
}

// inflight is one accepted request's client-side state. It outlives
// the attempt that issued it: the server completes orphaned requests
// after the client has timed out and moved on.
type inflight struct {
	timer    *vclock.Timer
	timedOut bool
}
