package loadgen

import (
	"strings"
	"testing"

	"repro/internal/fuzzgen"
)

func TestNaiveDelays(t *testing.T) {
	p := Naive{MaxAttempts: 4}
	rng := fuzzgen.NewRand(1)
	for attempt := 1; attempt <= 3; attempt++ {
		if d := p.Delay(attempt, 500, rng); d != 1 {
			t.Errorf("naive Delay(attempt=%d) = %d, want 1 (ignores Retry-After)", attempt, d)
		}
	}
	if d := p.Delay(4, 0, rng); d != -1 {
		t.Errorf("naive Delay at MaxAttempts = %d, want -1 (give up)", d)
	}
	if p.Jittered() {
		t.Error("naive must report Jittered() == false")
	}
}

func TestCappedBackoffDoubling(t *testing.T) {
	p := CappedBackoff{BaseMs: 50, CapMs: 5000, MaxAttempts: 6}
	rng := fuzzgen.NewRand(1)
	want := []int64{50, 100, 200, 400, 800}
	for i, w := range want {
		if d := p.Delay(i+1, 0, rng); d != w {
			t.Errorf("backoff Delay(attempt=%d) = %d, want %d", i+1, d, w)
		}
	}
	if d := p.Delay(6, 0, rng); d != -1 {
		t.Errorf("backoff Delay at MaxAttempts = %d, want -1", d)
	}

	capped := CappedBackoff{BaseMs: 50, CapMs: 120, MaxAttempts: 10}
	if d := capped.Delay(5, 0, rng); d != 120 {
		t.Errorf("capped Delay(attempt=5) = %d, want the 120 ms cap", d)
	}
	// The shift guard: absurd attempt counts must not overflow into a
	// negative or tiny delay.
	if d := capped.Delay(9, 0, rng); d != 120 {
		t.Errorf("capped Delay(attempt=9) = %d, want 120", d)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	rng := fuzzgen.NewRand(1)
	honoring := CappedBackoff{BaseMs: 50, CapMs: 5000, MaxAttempts: 6, HonorRetryAfter: true}
	if d := honoring.Delay(1, 700, rng); d != 700 {
		t.Errorf("honoring policy Delay with hint 700 = %d, want 700 (hint raises the floor)", d)
	}
	if d := honoring.Delay(5, 700, rng); d != 800 {
		t.Errorf("honoring policy Delay(attempt=5) with hint 700 = %d, want 800 (own backoff already higher)", d)
	}
	ignoring := CappedBackoff{BaseMs: 50, CapMs: 5000, MaxAttempts: 6}
	if d := ignoring.Delay(1, 700, rng); d != 50 {
		t.Errorf("non-honoring policy Delay with hint = %d, want 50", d)
	}
}

// TestFullJitterBounds pins the AWS full-jitter contract: the realized
// delay is uniform on [1, d], never zero, never above the deterministic
// delay — and actually varies (that is the whole point).
func TestFullJitterBounds(t *testing.T) {
	p := CappedBackoff{BaseMs: 400, CapMs: 5000, MaxAttempts: 6, FullJitter: true}
	rng := fuzzgen.NewRand(99)
	seen := map[int64]bool{}
	for i := 0; i < 500; i++ {
		d := p.Delay(1, 0, rng)
		if d < 1 || d > 400 {
			t.Fatalf("jittered delay %d outside [1, 400]", d)
		}
		seen[d] = true
	}
	if len(seen) < 50 {
		t.Errorf("500 jittered draws produced only %d distinct delays; jitter is not spreading", len(seen))
	}
	if !p.Jittered() {
		t.Error("full-jitter policy must report Jittered() == true")
	}
}

func TestPolicyRegistry(t *testing.T) {
	specs := Policies()
	if len(specs) != 5 {
		t.Fatalf("Policies() = %d rows, want 5", len(specs))
	}
	for _, spec := range specs {
		got, err := PolicyByLabel(spec.Label)
		if err != nil {
			t.Fatalf("PolicyByLabel(%q): %v", spec.Label, err)
		}
		if got.Label != spec.Label {
			t.Errorf("round trip %q -> %q", spec.Label, got.Label)
		}
		hasBreaker := strings.HasSuffix(spec.Label, "+breaker")
		if spec.Breaker.Enabled != hasBreaker {
			t.Errorf("%q: breaker enabled = %v, want %v", spec.Label, spec.Breaker.Enabled, hasBreaker)
		}
	}
	if _, err := PolicyByLabel("yolo"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown label error = %v", err)
	}
	if labels := PolicyLabels(); !strings.Contains(labels, "backoff+jitter+breaker") {
		t.Errorf("PolicyLabels() = %q missing the defensive stack", labels)
	}
}
