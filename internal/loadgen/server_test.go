package loadgen

import (
	"testing"

	"repro/internal/vclock"
)

func TestCapacityRPS(t *testing.T) {
	if got := (ServerConfig{Workers: 4, ServiceMs: 10}).CapacityRPS(); got != 400 {
		t.Errorf("4 workers x 10 ms = %d rps, want 400", got)
	}
	if got := (ServerConfig{}).CapacityRPS(); got != 0 {
		t.Errorf("zero config capacity = %d, want 0", got)
	}
}

func TestServerServiceLatencyAndFIFO(t *testing.T) {
	sim := vclock.New()
	srv := NewSimServer(sim, ServerConfig{Workers: 1, QueueCap: 10, ServiceMs: 10})
	var order []int
	var times []int64
	for i := 0; i < 3; i++ {
		i := i
		if rej := srv.Submit(func(at int64) { order = append(order, i); times = append(times, at) }); rej != nil {
			t.Fatalf("submit %d rejected: %+v", i, rej)
		}
	}
	sim.Run(1000)
	if want := []int{0, 1, 2}; len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order %v, want %v", order, want)
	}
	// One worker, 10 ms service: completions at 10, 20, 30.
	for i, want := range []int64{10, 20, 30} {
		if times[i] != want {
			t.Errorf("completion %d at %d ms, want %d", i, times[i], want)
		}
	}
	if srv.Served != 3 {
		t.Errorf("Served = %d, want 3", srv.Served)
	}
}

func TestServerQueueFullRejection(t *testing.T) {
	sim := vclock.New()
	srv := NewSimServer(sim, ServerConfig{Workers: 2, QueueCap: 3, ServiceMs: 10})
	admitted := 0
	// 2 go straight to workers, 3 queue, the rest must bounce.
	var rej *Rejection
	for i := 0; i < 7; i++ {
		if r := srv.Submit(func(int64) {}); r != nil {
			rej = r
		} else {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d, want 5 (2 executing + 3 queued)", admitted)
	}
	if rej == nil || rej.Reason != ReasonQueueFull {
		t.Fatalf("rejection = %+v, want reason %q", rej, ReasonQueueFull)
	}
	// Hint: (queue 3 + 1) x 10 ms / 2 workers = 20 ms.
	if rej.RetryAfterMs != 20 {
		t.Errorf("RetryAfterMs = %d, want 20", rej.RetryAfterMs)
	}
	if got := srv.QueueLen(); got != 3 {
		t.Errorf("QueueLen = %d, want 3", got)
	}
}

// TestServerWastedWorkChannel pins the property metastability feeds on:
// the server completes every admitted request and fires done, whether
// or not a client still cares.
func TestServerWastedWorkChannel(t *testing.T) {
	sim := vclock.New()
	srv := NewSimServer(sim, ServerConfig{Workers: 1, QueueCap: 50, ServiceMs: 10})
	done := 0
	admitted := 0
	for i := 0; i < 40; i++ {
		if srv.Submit(func(int64) { done++ }) == nil {
			admitted++
		}
	}
	sim.Run(10_000)
	if done != admitted {
		t.Errorf("done fired %d times for %d admitted requests", done, admitted)
	}
}

func TestServerTokenBucket(t *testing.T) {
	sim := vclock.New()
	// 100 tokens/sec, burst 5: five immediate admissions, then throttle.
	srv := NewSimServer(sim, ServerConfig{
		Workers: 8, QueueCap: 100, ServiceMs: 1,
		TokenRate: 100 * MicroRPS, TokenBurst: 5,
	})
	for i := 0; i < 5; i++ {
		if rej := srv.Submit(func(int64) {}); rej != nil {
			t.Fatalf("burst submit %d rejected: %+v", i, rej)
		}
	}
	rej := srv.Submit(func(int64) {})
	if rej == nil || rej.Reason != ReasonThrottled {
		t.Fatalf("rejection = %+v, want reason %q", rej, ReasonThrottled)
	}
	// 100 tokens/sec = one token per 10 ms.
	if rej.RetryAfterMs != 10 {
		t.Errorf("throttle hint = %d ms, want 10", rej.RetryAfterMs)
	}

	// After the hinted wait the bucket has refilled exactly one token.
	fired := false
	sim.After(rej.RetryAfterMs, func() {
		if r := srv.Submit(func(int64) {}); r != nil {
			t.Errorf("submit after hinted wait rejected: %+v", r)
		}
		if r := srv.Submit(func(int64) {}); r == nil || r.Reason != ReasonThrottled {
			t.Errorf("second submit in the same ms = %+v, want throttled", r)
		}
		fired = true
	})
	sim.Run(1000)
	if !fired {
		t.Fatal("timer never fired")
	}
}
