// Package serde implements the three storage formats of the §8 case
// study — Avro-, ORC- and Parquet-like binary row formats — on a shared
// binary codec. Each format reproduces the documented behaviours that
// the paper's discrepancies are rooted in:
//
//   - Avro widens TINYINT/SMALLINT to INT in the writer schema, folds
//     CHAR/VARCHAR to STRING, and rejects non-string map keys.
//   - ORC optionally writes positional column names (_col0, _col1, …)
//     as Hive's writer does, losing the real names.
//   - Parquet carries writer metadata (e.g. Spark's case-preserving
//     schema and the writer time-zone) alongside the data.
//
// All formats are schema-on-write: Decode returns the schema the writer
// actually recorded, which is how several cross-system discrepancies
// become visible.
package serde

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/sqlval"
)

// Column is a named, typed column of a file schema.
type Column struct {
	Name string
	Type sqlval.Type
}

// Schema is the ordered column list recorded in a data file.
type Schema struct {
	Columns []Column
}

// ColumnNames returns the names in order.
func (s Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Equal reports schema equality including column names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i].Name != o.Columns[i].Name || !s.Columns[i].Type.Equal(o.Columns[i].Type) {
			return false
		}
	}
	return true
}

// String renders the schema as "name:TYPE, ...".
func (s Schema) String() string {
	out := ""
	for i, c := range s.Columns {
		if i > 0 {
			out += ", "
		}
		out += c.Name + ":" + c.Type.String()
	}
	return out
}

// File is a decoded data file: the writer schema, writer metadata, and
// the row payload.
type File struct {
	Schema Schema
	Meta   map[string]string
	Rows   []sqlval.Row
}

// Format is a storage format: a named pair of encode/decode routines.
// Meta carries writer-side key/value metadata (Parquet and ORC persist
// it; Avro drops it, as the real container's schema-only header would).
type Format interface {
	// Name returns the lowercase format name ("avro", "orc", "parquet").
	Name() string
	// Encode serializes rows under the schema, applying the format's
	// write-side transformations. The returned file is self-describing.
	Encode(schema Schema, meta map[string]string, rows []sqlval.Row) ([]byte, error)
	// Decode parses a file produced by Encode.
	Decode(data []byte) (*File, error)
}

// ByName returns the format for a name, or an error for unknown names.
func ByName(name string) (Format, error) {
	switch name {
	case "avro":
		return Avro{}, nil
	case "orc":
		return ORC{}, nil
	case "parquet":
		return Parquet{}, nil
	default:
		return nil, fmt.Errorf("serde: unknown format %q", name)
	}
}

// Formats lists the three supported format names in the paper's order.
func Formats() []string { return []string{"orc", "parquet", "avro"} }

// --- binary codec -----------------------------------------------------

type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) byte(b byte) {
	w.buf = append(w.buf, b)
}

func (w *writer) float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

type reader struct {
	buf []byte
	pos int
}

var errCorrupt = fmt.Errorf("serde: corrupt file")

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.pos += n
	return v, nil
}

// count reads a collection length and validates it against the bytes
// remaining: every element needs at least one byte, so a larger count
// is corruption — without this check a hostile length would drive an
// enormous allocation.
func (r *reader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)-r.pos) {
		return 0, errCorrupt
	}
	return int(v), nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if r.pos+int(n) > len(r.buf) {
		return nil, errCorrupt
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) byteVal() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errCorrupt
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) float64() (float64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, errCorrupt
	}
	bits := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return math.Float64frombits(bits), nil
}

// encodeSchema writes the schema as a column list of (name, DDL type).
func encodeSchema(w *writer, s Schema) {
	w.uvarint(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		w.str(c.Name)
		w.str(c.Type.String())
	}
}

func decodeSchema(r *reader) (Schema, error) {
	n, err := r.count()
	if err != nil {
		return Schema{}, err
	}
	s := Schema{Columns: make([]Column, n)}
	for i := range s.Columns {
		name, err := r.str()
		if err != nil {
			return Schema{}, err
		}
		ddl, err := r.str()
		if err != nil {
			return Schema{}, err
		}
		t, err := sqlval.ParseType(ddl)
		if err != nil {
			return Schema{}, fmt.Errorf("serde: bad column type %q: %v", ddl, err)
		}
		s.Columns[i] = Column{Name: name, Type: t}
	}
	return s, nil
}

func encodeMeta(w *writer, meta map[string]string, keys []string) {
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(meta[k])
	}
}

func decodeMeta(r *reader) (map[string]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	meta := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.str()
		if err != nil {
			return nil, err
		}
		meta[k] = v
	}
	return meta, nil
}

// encodeValue writes v interpreted under its declared type t.
func encodeValue(w *writer, v sqlval.Value, t sqlval.Type) error {
	if v.Null {
		w.byte(0)
		return nil
	}
	w.byte(1)
	switch t.Kind {
	case sqlval.KindBoolean:
		if v.B {
			w.byte(1)
		} else {
			w.byte(0)
		}
	case sqlval.KindTinyInt, sqlval.KindSmallInt, sqlval.KindInt, sqlval.KindBigInt,
		sqlval.KindDate, sqlval.KindTimestamp:
		w.varint(v.I)
	case sqlval.KindFloat, sqlval.KindDouble:
		w.float64(v.F)
	case sqlval.KindDecimal:
		w.varint(v.D.Unscaled)
		w.varint(int64(v.D.Scale))
	case sqlval.KindString, sqlval.KindChar, sqlval.KindVarchar:
		w.str(v.S)
	case sqlval.KindBinary:
		w.bytes(v.Bytes)
	case sqlval.KindArray:
		w.uvarint(uint64(len(v.List)))
		for _, e := range v.List {
			if err := encodeValue(w, e, *t.Elem); err != nil {
				return err
			}
		}
	case sqlval.KindMap:
		w.uvarint(uint64(len(v.Keys)))
		for i := range v.Keys {
			if err := encodeValue(w, v.Keys[i], *t.Key); err != nil {
				return err
			}
			if err := encodeValue(w, v.Vals[i], *t.Value); err != nil {
				return err
			}
		}
	case sqlval.KindStruct:
		for i, f := range t.Fields {
			if i >= len(v.FieldVals) {
				return fmt.Errorf("serde: struct value missing field %q", f.Name)
			}
			if err := encodeValue(w, v.FieldVals[i], f.Type); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("serde: cannot encode kind %v", t.Kind)
	}
	return nil
}

func decodeValue(r *reader, t sqlval.Type) (sqlval.Value, error) {
	present, err := r.byteVal()
	if err != nil {
		return sqlval.Value{}, err
	}
	if present == 0 {
		return sqlval.NullOf(t), nil
	}
	v := sqlval.Value{Type: t}
	switch t.Kind {
	case sqlval.KindBoolean:
		b, err := r.byteVal()
		if err != nil {
			return sqlval.Value{}, err
		}
		v.B = b != 0
	case sqlval.KindTinyInt, sqlval.KindSmallInt, sqlval.KindInt, sqlval.KindBigInt,
		sqlval.KindDate, sqlval.KindTimestamp:
		v.I, err = r.varint()
		if err != nil {
			return sqlval.Value{}, err
		}
	case sqlval.KindFloat, sqlval.KindDouble:
		v.F, err = r.float64()
		if err != nil {
			return sqlval.Value{}, err
		}
	case sqlval.KindDecimal:
		u, err := r.varint()
		if err != nil {
			return sqlval.Value{}, err
		}
		s, err := r.varint()
		if err != nil {
			return sqlval.Value{}, err
		}
		v.D = sqlval.Decimal{Unscaled: u, Scale: int(s)}
	case sqlval.KindString, sqlval.KindChar, sqlval.KindVarchar:
		v.S, err = r.str()
		if err != nil {
			return sqlval.Value{}, err
		}
	case sqlval.KindBinary:
		b, err := r.bytes()
		if err != nil {
			return sqlval.Value{}, err
		}
		v.Bytes = append([]byte(nil), b...)
	case sqlval.KindArray:
		n, err := r.count()
		if err != nil {
			return sqlval.Value{}, err
		}
		v.List = make([]sqlval.Value, n)
		for i := range v.List {
			v.List[i], err = decodeValue(r, *t.Elem)
			if err != nil {
				return sqlval.Value{}, err
			}
		}
	case sqlval.KindMap:
		n, err := r.count()
		if err != nil {
			return sqlval.Value{}, err
		}
		v.Keys = make([]sqlval.Value, n)
		v.Vals = make([]sqlval.Value, n)
		for i := range v.Keys {
			v.Keys[i], err = decodeValue(r, *t.Key)
			if err != nil {
				return sqlval.Value{}, err
			}
			v.Vals[i], err = decodeValue(r, *t.Value)
			if err != nil {
				return sqlval.Value{}, err
			}
		}
	case sqlval.KindStruct:
		v.FieldVals = make([]sqlval.Value, len(t.Fields))
		for i, f := range t.Fields {
			v.FieldVals[i], err = decodeValue(r, f.Type)
			if err != nil {
				return sqlval.Value{}, err
			}
		}
	default:
		return sqlval.Value{}, fmt.Errorf("serde: cannot decode kind %v", t.Kind)
	}
	return v, nil
}

// encodeContainer writes the common container layout used by all three
// formats: magic, schema, metadata (sorted keys), row count, rows.
func encodeContainer(magic string, schema Schema, meta map[string]string, rows []sqlval.Row) ([]byte, error) {
	w := &writer{}
	w.buf = append(w.buf, magic...)
	encodeSchema(w, schema)
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	encodeMeta(w, meta, keys)
	w.uvarint(uint64(len(rows)))
	for _, row := range rows {
		if len(row) != len(schema.Columns) {
			return nil, fmt.Errorf("serde: row has %d values, schema has %d columns", len(row), len(schema.Columns))
		}
		for i, v := range row {
			if err := encodeValue(w, v, schema.Columns[i].Type); err != nil {
				return nil, err
			}
		}
	}
	return w.buf, nil
}

func decodeContainer(magic string, data []byte) (*File, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("serde: bad magic, not a %s file", magic)
	}
	r := &reader{buf: data, pos: len(magic)}
	schema, err := decodeSchema(r)
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(r)
	if err != nil {
		return nil, err
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	rows := make([]sqlval.Row, n)
	for i := range rows {
		row := make(sqlval.Row, len(schema.Columns))
		for j := range row {
			row[j], err = decodeValue(r, schema.Columns[j].Type)
			if err != nil {
				return nil, err
			}
		}
		rows[i] = row
	}
	return &File{Schema: schema, Meta: meta, Rows: rows}, nil
}
