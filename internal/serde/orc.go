package serde

import (
	"fmt"

	"repro/internal/sqlval"
)

// ORC is the ORC-like columnar format. Hive's ORC writer historically
// records positional column names (_col0, _col1, …) instead of the real
// names — the "unspoken convention" behind SPARK-21686 — controlled
// here by PositionalNames. Writer metadata (such as Spark's
// case-preserving schema) is persisted.
type ORC struct {
	// PositionalNames replaces column names with _colN on write, as
	// Hive's writer does. Readers then depend on the metastore (not the
	// file) to recover real names.
	PositionalNames bool
}

const orcMagic = "ORC1"

// Name implements Format.
func (ORC) Name() string { return "orc" }

// Encode implements Format.
func (o ORC) Encode(schema Schema, meta map[string]string, rows []sqlval.Row) ([]byte, error) {
	out := schema
	if o.PositionalNames {
		out = Schema{Columns: make([]Column, len(schema.Columns))}
		for i, c := range schema.Columns {
			out.Columns[i] = Column{Name: fmt.Sprintf("_col%d", i), Type: c.Type}
		}
	}
	return encodeContainer(orcMagic, out, meta, rows)
}

// Decode implements Format.
func (ORC) Decode(data []byte) (*File, error) {
	return decodeContainer(orcMagic, data)
}
