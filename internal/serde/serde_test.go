package serde

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlval"
)

func sampleSchema() Schema {
	return Schema{Columns: []Column{
		{Name: "Id", Type: sqlval.Int},
		{Name: "name", Type: sqlval.String},
		{Name: "score", Type: sqlval.Double},
		{Name: "amount", Type: sqlval.DecimalType(10, 2)},
		{Name: "created", Type: sqlval.Timestamp},
		{Name: "tags", Type: sqlval.ArrayType(sqlval.String)},
		{Name: "attrs", Type: sqlval.MapType(sqlval.String, sqlval.Int)},
		{Name: "nested", Type: sqlval.StructType(sqlval.Field{Name: "x", Type: sqlval.Int})},
	}}
}

func sampleRows() []sqlval.Row {
	d, _ := sqlval.ParseDecimal("12.34")
	return []sqlval.Row{
		{
			sqlval.IntVal(sqlval.Int, 1),
			sqlval.StringVal("alice"),
			sqlval.DoubleVal(3.14),
			sqlval.Value{Type: sqlval.DecimalType(10, 2), D: d},
			sqlval.TimestampVal(1234567890123456),
			sqlval.ArrayVal(sqlval.String, sqlval.StringVal("a"), sqlval.StringVal("b")),
			sqlval.MapVal(sqlval.String, sqlval.Int,
				[]sqlval.Value{sqlval.StringVal("k")},
				[]sqlval.Value{sqlval.IntVal(sqlval.Int, 7)}),
			sqlval.StructVal(sqlval.StructType(sqlval.Field{Name: "x", Type: sqlval.Int}), sqlval.IntVal(sqlval.Int, 9)),
		},
		{
			sqlval.NullOf(sqlval.Int),
			sqlval.NullOf(sqlval.String),
			sqlval.NullOf(sqlval.Double),
			sqlval.NullOf(sqlval.DecimalType(10, 2)),
			sqlval.NullOf(sqlval.Timestamp),
			sqlval.NullOf(sqlval.ArrayType(sqlval.String)),
			sqlval.NullOf(sqlval.MapType(sqlval.String, sqlval.Int)),
			sqlval.NullOf(sqlval.StructType(sqlval.Field{Name: "x", Type: sqlval.Int})),
		},
	}
}

func TestByName(t *testing.T) {
	for _, name := range Formats() {
		f, err := ByName(name)
		if err != nil || f.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := ByName("csv"); err == nil {
		t.Error("expected error for unknown format")
	}
}

func TestParquetRoundTripExact(t *testing.T) {
	meta := map[string]string{MetaWriterEngine: "spark", MetaSparkSchema: sampleSchema().String()}
	data, err := (Parquet{}).Encode(sampleSchema(), meta, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	f, err := (Parquet{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Schema.Equal(sampleSchema()) {
		t.Errorf("schema = %v", f.Schema)
	}
	if f.Meta[MetaWriterEngine] != "spark" {
		t.Errorf("meta lost: %v", f.Meta)
	}
	for i, row := range sampleRows() {
		if !f.Rows[i].Equal(row) {
			t.Errorf("row %d = %v, want %v", i, f.Rows[i], row)
		}
	}
}

func TestORCPositionalNames(t *testing.T) {
	// Hive's writer convention (SPARK-21686): real names are lost.
	data, err := (ORC{PositionalNames: true}).Encode(sampleSchema(), nil, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	f, err := (ORC{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema.Columns[0].Name != "_col0" || f.Schema.Columns[1].Name != "_col1" {
		t.Errorf("names = %v", f.Schema.ColumnNames())
	}
	// Types and data survive.
	if !f.Schema.Columns[0].Type.Equal(sqlval.Int) {
		t.Errorf("type = %v", f.Schema.Columns[0].Type)
	}
	if !f.Rows[0][1].EqualData(sqlval.StringVal("alice")) {
		t.Errorf("data = %v", f.Rows[0][1])
	}
}

func TestORCPreservedNames(t *testing.T) {
	data, err := (ORC{}).Encode(sampleSchema(), map[string]string{"k": "v"}, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	f, err := (ORC{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema.Columns[0].Name != "Id" {
		t.Errorf("names = %v", f.Schema.ColumnNames())
	}
	if f.Meta["k"] != "v" {
		t.Errorf("meta = %v", f.Meta)
	}
}

func TestAvroWidensSmallIntegrals(t *testing.T) {
	// SPARK-39075 model: BYTE/SHORT become INT in the writer schema.
	schema := Schema{Columns: []Column{
		{Name: "b", Type: sqlval.TinyInt},
		{Name: "s", Type: sqlval.SmallInt},
	}}
	rows := []sqlval.Row{{sqlval.IntVal(sqlval.TinyInt, 5), sqlval.IntVal(sqlval.SmallInt, 6)}}
	data, err := (Avro{}).Encode(schema, nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	f, err := (Avro{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema.Columns[0].Type.Kind != sqlval.KindInt || f.Schema.Columns[1].Type.Kind != sqlval.KindInt {
		t.Errorf("writer schema = %v", f.Schema)
	}
	if f.Rows[0][0].I != 5 || f.Rows[0][1].I != 6 {
		t.Errorf("values = %v", f.Rows[0])
	}
}

func TestAvroFoldsCharVarchar(t *testing.T) {
	schema := Schema{Columns: []Column{
		{Name: "c", Type: sqlval.CharType(4)},
		{Name: "v", Type: sqlval.VarcharType(8)},
	}}
	rows := []sqlval.Row{{sqlval.CharVal("ab  ", 4), sqlval.VarcharVal("xyz", 8)}}
	data, err := (Avro{}).Encode(schema, nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	f, err := (Avro{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema.Columns[0].Type.Kind != sqlval.KindString || f.Schema.Columns[1].Type.Kind != sqlval.KindString {
		t.Errorf("schema = %v", f.Schema)
	}
}

func TestAvroRejectsNonStringMapKeys(t *testing.T) {
	// HIVE-26531 model: MAP<INT, …> is an Avro write-time error while
	// ORC and Parquet accept it.
	schema := Schema{Columns: []Column{{Name: "m", Type: sqlval.MapType(sqlval.Int, sqlval.String)}}}
	row := sqlval.Row{sqlval.MapVal(sqlval.Int, sqlval.String,
		[]sqlval.Value{sqlval.IntVal(sqlval.Int, 1)},
		[]sqlval.Value{sqlval.StringVal("x")})}
	_, err := (Avro{}).Encode(schema, nil, []sqlval.Row{row})
	var ue *UnsupportedError
	if !errors.As(err, &ue) || !strings.Contains(ue.Reason, "map keys must be STRING") {
		t.Fatalf("avro err = %v", err)
	}
	if _, err := (ORC{}).Encode(schema, nil, []sqlval.Row{row}); err != nil {
		t.Errorf("orc should accept: %v", err)
	}
	if _, err := (Parquet{}).Encode(schema, nil, []sqlval.Row{row}); err != nil {
		t.Errorf("parquet should accept: %v", err)
	}
}

func TestAvroDropsMetadata(t *testing.T) {
	schema := Schema{Columns: []Column{{Name: "a", Type: sqlval.Int}}}
	data, err := (Avro{}).Encode(schema, map[string]string{MetaSparkSchema: "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := (Avro{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Meta) != 0 {
		t.Errorf("avro should drop metadata, got %v", f.Meta)
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	data, err := (ORC{}).Encode(sampleSchema(), nil, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Parquet{}).Decode(data); err == nil {
		t.Error("parquet decode of orc data should fail")
	}
	if _, err := (Avro{}).Decode([]byte{1, 2}); err == nil {
		t.Error("short data should fail")
	}
}

func TestDecodeRejectsTruncatedData(t *testing.T) {
	data, err := (Parquet{}).Encode(sampleSchema(), nil, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > 4; cut /= 2 {
		if _, err := (Parquet{}).Decode(data[:cut]); err == nil {
			t.Errorf("truncated decode at %d should fail", cut)
		}
	}
}

func TestEncodeRejectsShapeMismatch(t *testing.T) {
	schema := Schema{Columns: []Column{{Name: "a", Type: sqlval.Int}}}
	_, err := (Parquet{}).Encode(schema, nil, []sqlval.Row{{sqlval.IntVal(sqlval.Int, 1), sqlval.IntVal(sqlval.Int, 2)}})
	if err == nil {
		t.Error("row wider than schema should fail")
	}
}

func TestRoundTripPropertyIntColumns(t *testing.T) {
	schema := Schema{Columns: []Column{
		{Name: "a", Type: sqlval.BigInt},
		{Name: "b", Type: sqlval.String},
	}}
	f := func(n int64, s string) bool {
		rows := []sqlval.Row{{sqlval.IntVal(sqlval.BigInt, n), sqlval.StringVal(s)}}
		for _, name := range Formats() {
			format, _ := ByName(name)
			data, err := format.Encode(schema, nil, rows)
			if err != nil {
				return false
			}
			decoded, err := format.Decode(data)
			if err != nil {
				return false
			}
			if decoded.Rows[0][0].I != n || decoded.Rows[0][1].S != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaEqualAndString(t *testing.T) {
	s := sampleSchema()
	if !s.Equal(sampleSchema()) {
		t.Error("schema should equal itself")
	}
	other := sampleSchema()
	other.Columns[0].Name = "id"
	if s.Equal(other) {
		t.Error("case-different names must not be equal")
	}
	if !strings.Contains(s.String(), "Id:INT") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestDecodeNeverPanicsOnCorruptInput(t *testing.T) {
	// Robustness: arbitrary byte mutations of a valid file must yield
	// an error or a well-formed result, never a panic — read-side
	// crashes on foreign data are exactly the failure class the study
	// catalogues.
	data, err := (Parquet{}).Encode(sampleSchema(), map[string]string{"k": "v"}, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte) bool {
		mutated := append([]byte(nil), data...)
		mutated[int(pos)%len(mutated)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked at pos %d val %d: %v", pos, val, r)
			}
		}()
		file, err := (Parquet{}).Decode(mutated)
		if err != nil {
			return true
		}
		// A successful decode must be internally consistent.
		for _, row := range file.Rows {
			if len(row) != len(file.Schema.Columns) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		for _, name := range Formats() {
			format, _ := ByName(name)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s decode panicked: %v", name, r)
					}
				}()
				_, _ = format.Decode(data)
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
