package serde

import "testing"

// FuzzDecode asserts decoder totality over arbitrary bytes for all
// three formats: error or well-formed file, never a panic or runaway
// allocation.
func FuzzDecode(f *testing.F) {
	valid, err := (Parquet{}).Encode(sampleSchema(), map[string]string{"k": "v"}, sampleRows())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("PAR1"))
	f.Add([]byte("ORC1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range Formats() {
			format, _ := ByName(name)
			file, err := format.Decode(data)
			if err != nil {
				continue
			}
			for _, row := range file.Rows {
				if len(row) != len(file.Schema.Columns) {
					t.Fatalf("%s: malformed decode accepted", name)
				}
			}
		}
	})
}
