package serde

import "repro/internal/sqlval"

// Parquet is the Parquet-like columnar format. It is the most faithful
// of the three carriers: schema and values round-trip exactly, and
// writer metadata is persisted. The cross-system hazards live in the
// metadata conventions layered on top by the engines:
//
//   - MetaSparkSchema carries Spark's case-preserving schema; Hive
//     ignores it and serves its lowercase metastore schema instead.
//   - MetaWriterTimezone records the zone the writer adjusted INT96
//     timestamps into; readers that ignore it (Hive) see shifted
//     values (the HIVE-26528 model).
type Parquet struct{}

// Reserved metadata keys written by the engines.
const (
	// MetaSparkSchema carries Spark's case-preserving schema DDL.
	MetaSparkSchema = "org.apache.spark.sql.parquet.row.metadata"
	// MetaWriterTimezone records the writer's session time zone as a
	// UTC offset in seconds.
	MetaWriterTimezone = "writer.time.zone"
	// MetaWriterEngine identifies the producing engine ("spark"/"hive").
	MetaWriterEngine = "created.by"
)

const parquetMagic = "PAR1"

// Name implements Format.
func (Parquet) Name() string { return "parquet" }

// Encode implements Format.
func (Parquet) Encode(schema Schema, meta map[string]string, rows []sqlval.Row) ([]byte, error) {
	return encodeContainer(parquetMagic, schema, meta, rows)
}

// Decode implements Format.
func (Parquet) Decode(data []byte) (*File, error) {
	return decodeContainer(parquetMagic, data)
}
