package serde

import (
	"fmt"

	"repro/internal/sqlval"
)

// Avro is the Avro-like row format. Its write path applies Avro's type
// promotions, which are the root cause of two §8.2 discrepancies:
//
//   - TINYINT and SMALLINT have no Avro representation and are widened
//     to INT in the writer schema (SPARK-39075, HIVE-26533);
//   - CHAR(n)/VARCHAR(n) fold to STRING;
//   - map keys must be strings — non-string keys are rejected at write
//     time (HIVE-26531).
//
// Because the container records only the writer schema, readers see the
// promoted types, not the table's declared types.
type Avro struct{}

const avroMagic = "AVR1"

// Name implements Format.
func (Avro) Name() string { return "avro" }

// UnsupportedError reports a type the format cannot represent.
type UnsupportedError struct {
	Format string
	Type   sqlval.Type
	Reason string
}

// Error implements the error interface.
func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("%s: unsupported type %s: %s", e.Format, e.Type, e.Reason)
}

// avroWriterType maps a declared SQL type to the type Avro records.
func avroWriterType(t sqlval.Type) (sqlval.Type, error) {
	switch t.Kind {
	case sqlval.KindTinyInt, sqlval.KindSmallInt:
		return sqlval.Int, nil
	case sqlval.KindChar, sqlval.KindVarchar:
		return sqlval.String, nil
	case sqlval.KindArray:
		elem, err := avroWriterType(*t.Elem)
		if err != nil {
			return sqlval.Null, err
		}
		return sqlval.ArrayType(elem), nil
	case sqlval.KindMap:
		if !t.Key.IsCharacter() {
			return sqlval.Null, &UnsupportedError{
				Format: "avro",
				Type:   t,
				Reason: "AvroTypeException: map keys must be STRING",
			}
		}
		val, err := avroWriterType(*t.Value)
		if err != nil {
			return sqlval.Null, err
		}
		return sqlval.MapType(sqlval.String, val), nil
	case sqlval.KindStruct:
		fields := make([]sqlval.Field, len(t.Fields))
		for i, f := range t.Fields {
			ft, err := avroWriterType(f.Type)
			if err != nil {
				return sqlval.Null, err
			}
			fields[i] = sqlval.Field{Name: f.Name, Type: ft}
		}
		return sqlval.StructType(fields...), nil
	default:
		return t, nil
	}
}

// Encode implements Format. Writer metadata is dropped: the Avro
// container persists only its schema, which is why Spark's
// case-preserving schema metadata "only works with ORC and Parquet".
func (Avro) Encode(schema Schema, _ map[string]string, rows []sqlval.Row) ([]byte, error) {
	out := Schema{Columns: make([]Column, len(schema.Columns))}
	for i, c := range schema.Columns {
		wt, err := avroWriterType(c.Type)
		if err != nil {
			return nil, err
		}
		out.Columns[i] = Column{Name: c.Name, Type: wt}
	}
	promoted := make([]sqlval.Row, len(rows))
	for r, row := range rows {
		p := make(sqlval.Row, len(row))
		for i, v := range row {
			pv, err := sqlval.Cast(v, out.Columns[i].Type, sqlval.CastANSI)
			if err != nil {
				return nil, fmt.Errorf("avro: promoting column %q: %w", out.Columns[i].Name, err)
			}
			p[i] = pv
		}
		promoted[r] = p
	}
	return encodeContainer(avroMagic, out, nil, promoted)
}

// Decode implements Format, returning the writer (promoted) schema.
func (Avro) Decode(data []byte) (*File, error) {
	return decodeContainer(avroMagic, data)
}
