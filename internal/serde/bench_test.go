package serde

import (
	"fmt"
	"testing"

	"repro/internal/sqlval"
)

func benchRows(n int) (Schema, []sqlval.Row) {
	schema := Schema{Columns: []Column{
		{Name: "id", Type: sqlval.BigInt},
		{Name: "name", Type: sqlval.String},
		{Name: "score", Type: sqlval.Double},
		{Name: "tags", Type: sqlval.ArrayType(sqlval.String)},
	}}
	rows := make([]sqlval.Row, n)
	for i := range rows {
		rows[i] = sqlval.Row{
			sqlval.IntVal(sqlval.BigInt, int64(i)),
			sqlval.StringVal(fmt.Sprintf("user-%06d", i)),
			sqlval.DoubleVal(float64(i) * 1.5),
			sqlval.ArrayVal(sqlval.String, sqlval.StringVal("a"), sqlval.StringVal("b")),
		}
	}
	return schema, rows
}

// BenchmarkEncode measures write-side serialization per format — the
// ad-hoc serialization hot path Finding 6 discusses.
func BenchmarkEncode(b *testing.B) {
	schema, rows := benchRows(1000)
	for _, name := range Formats() {
		format, _ := ByName(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := format.Encode(schema, nil, rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode measures read-side deserialization per format.
func BenchmarkDecode(b *testing.B) {
	schema, rows := benchRows(1000)
	for _, name := range Formats() {
		format, _ := ByName(name)
		data, err := format.Encode(schema, nil, rows)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := format.Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
