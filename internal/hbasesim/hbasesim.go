// Package hbasesim simulates an HBase-like region server over the
// simulated HDFS namespace, reproducing the control-plane CSI failure
// of HBASE-537: at startup HBase wrongly assumed the HDFS NameNode was
// ready to serve writes while it was still in safe mode, crashing on
// its first WAL append. The fixed behaviour polls the NameNode state
// before serving.
package hbasesim

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// StartupMode selects the HBASE-537 behaviour.
type StartupMode int

// The two behaviours.
const (
	// StartupAssumeReady is the defect: HBase starts serving without
	// checking NameNode readiness.
	StartupAssumeReady StartupMode = iota
	// StartupWaitForNameNode is the fix: startup blocks (on the virtual
	// clock) until the NameNode leaves safe mode.
	StartupWaitForNameNode
)

// ErrNotServing reports an operation against a region server that has
// not (successfully) started.
var ErrNotServing = fmt.Errorf("hbase: region server is not serving")

// RegionServer is a single-node HBase over HDFS.
type RegionServer struct {
	mu      sync.Mutex
	fs      *hdfssim.FileSystem
	sim     *vclock.Sim
	serving bool
	crashed error

	memstore map[string]map[string]string // table -> key -> value
	regions  map[string]bool              // regions this server holds open
	walSeq   int

	tracer   *obs.Tracer
	traceTop *obs.Span
}

// SetTrace attaches a tracer and a default parent span; the region
// server then emits a span for every operation that crosses the HDFS
// boundary (WAL appends, flushes, the startup readiness probe). A nil
// tracer disables emission.
func (rs *RegionServer) SetTrace(tr *obs.Tracer, parent *obs.Span) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.tracer = tr
	rs.traceTop = parent
}

// span emits a completed boundary span; call with rs.mu held.
func (rs *RegionServer) span(plane csi.Plane, name, detail string, err error) {
	if rs.tracer == nil {
		return
	}
	sp := rs.tracer.Span(rs.traceTop, csi.HBase, plane, name)
	if detail != "" {
		sp.Set("path", detail)
	}
	sp.Fail(err)
	sp.End()
}

// New creates a stopped region server.
func New(sim *vclock.Sim, fs *hdfssim.FileSystem) *RegionServer {
	return &RegionServer{fs: fs, sim: sim, memstore: make(map[string]map[string]string)}
}

// Start brings the server up under the given mode. Under
// StartupAssumeReady with a safe-mode NameNode, the first WAL write
// crashes the server — the HBASE-537 failure. Under
// StartupWaitForNameNode, start is retried on the virtual clock every
// pollMs until the NameNode is writable.
func (rs *RegionServer) Start(mode StartupMode, pollMs int64) {
	switch mode {
	case StartupWaitForNameNode:
		var attempt func()
		attempt = func() {
			safe := rs.fs.InSafeMode()
			rs.mu.Lock()
			rs.span(csi.ControlPlane, "namenode-probe", "", nil)
			rs.mu.Unlock()
			if safe {
				rs.sim.After(pollMs, attempt)
				return
			}
			rs.finishStart()
		}
		attempt()
	default:
		// Assume readiness: serve immediately, regardless of NameNode
		// state.
		rs.finishStart()
	}
}

func (rs *RegionServer) finishStart() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.serving = true
	rs.crashed = nil
}

// Serving reports whether the server accepts requests.
func (rs *RegionServer) Serving() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.serving && rs.crashed == nil
}

// CrashReason returns the error that took the server down, if any.
func (rs *RegionServer) CrashReason() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.crashed
}

// Put writes a cell, appending to the write-ahead log on HDFS first.
// A WAL append failure (e.g. NameNode safe mode) crashes the server.
func (rs *RegionServer) Put(table, key, value string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return ErrNotServing
	}
	record, err := json.Marshal(map[string]string{"table": table, "key": key, "value": value})
	if err != nil {
		return err
	}
	walPath := fmt.Sprintf("/hbase/WALs/wal-%06d", rs.walSeq)
	err = rs.fs.Write(walPath, record, hdfssim.WriteOptions{})
	rs.span(csi.DataPlane, "wal-append", walPath, err)
	if err != nil {
		rs.crashed = fmt.Errorf("hbase: aborting region server: WAL append failed: %w", err)
		rs.serving = false
		return rs.crashed
	}
	rs.walSeq++
	if rs.memstore[table] == nil {
		rs.memstore[table] = make(map[string]string)
	}
	rs.memstore[table][key] = value
	return nil
}

// Get reads a cell.
func (rs *RegionServer) Get(table, key string) (string, bool, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return "", false, ErrNotServing
	}
	v, ok := rs.memstore[table][key]
	return v, ok, nil
}

// Scan returns the sorted keys of a table.
func (rs *RegionServer) Scan(table string) ([]string, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return nil, ErrNotServing
	}
	keys := make([]string, 0, len(rs.memstore[table]))
	for k := range rs.memstore[table] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Flush persists the memstore to HFiles on HDFS.
func (rs *RegionServer) Flush() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return ErrNotServing
	}
	// Flush in sorted table order: map iteration order must not decide
	// the sequence of HDFS writes (or the span order they emit).
	tables := make([]string, 0, len(rs.memstore))
	for table := range rs.memstore {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		data, err := json.Marshal(rs.memstore[table])
		if err != nil {
			return err
		}
		path := fmt.Sprintf("/hbase/data/%s/hfile-%06d", table, rs.walSeq)
		err = rs.fs.Write(path, data, hdfssim.WriteOptions{Overwrite: true})
		rs.span(csi.DataPlane, "flush", path, err)
		if err != nil {
			if errors.Is(err, hdfssim.ErrSafeMode) {
				rs.crashed = fmt.Errorf("hbase: aborting region server: flush failed: %w", err)
				rs.serving = false
				return rs.crashed
			}
			return err
		}
	}
	return nil
}
