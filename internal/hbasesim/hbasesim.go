// Package hbasesim simulates an HBase-like region server over the
// simulated HDFS namespace, reproducing the control-plane CSI failure
// of HBASE-537: at startup HBase wrongly assumed the HDFS NameNode was
// ready to serve writes while it was still in safe mode, crashing on
// its first WAL append. The fixed behaviour polls the NameNode state
// before serving.
package hbasesim

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hdfssim"
	"repro/internal/vclock"
)

// StartupMode selects the HBASE-537 behaviour.
type StartupMode int

// The two behaviours.
const (
	// StartupAssumeReady is the defect: HBase starts serving without
	// checking NameNode readiness.
	StartupAssumeReady StartupMode = iota
	// StartupWaitForNameNode is the fix: startup blocks (on the virtual
	// clock) until the NameNode leaves safe mode.
	StartupWaitForNameNode
)

// ErrNotServing reports an operation against a region server that has
// not (successfully) started.
var ErrNotServing = fmt.Errorf("hbase: region server is not serving")

// RegionServer is a single-node HBase over HDFS.
type RegionServer struct {
	mu      sync.Mutex
	fs      *hdfssim.FileSystem
	sim     *vclock.Sim
	serving bool
	crashed error

	memstore map[string]map[string]string // table -> key -> value
	regions  map[string]bool              // regions this server holds open
	walSeq   int
}

// New creates a stopped region server.
func New(sim *vclock.Sim, fs *hdfssim.FileSystem) *RegionServer {
	return &RegionServer{fs: fs, sim: sim, memstore: make(map[string]map[string]string)}
}

// Start brings the server up under the given mode. Under
// StartupAssumeReady with a safe-mode NameNode, the first WAL write
// crashes the server — the HBASE-537 failure. Under
// StartupWaitForNameNode, start is retried on the virtual clock every
// pollMs until the NameNode is writable.
func (rs *RegionServer) Start(mode StartupMode, pollMs int64) {
	switch mode {
	case StartupWaitForNameNode:
		var attempt func()
		attempt = func() {
			if rs.fs.InSafeMode() {
				rs.sim.After(pollMs, attempt)
				return
			}
			rs.finishStart()
		}
		attempt()
	default:
		// Assume readiness: serve immediately, regardless of NameNode
		// state.
		rs.finishStart()
	}
}

func (rs *RegionServer) finishStart() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.serving = true
	rs.crashed = nil
}

// Serving reports whether the server accepts requests.
func (rs *RegionServer) Serving() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.serving && rs.crashed == nil
}

// CrashReason returns the error that took the server down, if any.
func (rs *RegionServer) CrashReason() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.crashed
}

// Put writes a cell, appending to the write-ahead log on HDFS first.
// A WAL append failure (e.g. NameNode safe mode) crashes the server.
func (rs *RegionServer) Put(table, key, value string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return ErrNotServing
	}
	record, err := json.Marshal(map[string]string{"table": table, "key": key, "value": value})
	if err != nil {
		return err
	}
	walPath := fmt.Sprintf("/hbase/WALs/wal-%06d", rs.walSeq)
	if err := rs.fs.Write(walPath, record, hdfssim.WriteOptions{}); err != nil {
		rs.crashed = fmt.Errorf("hbase: aborting region server: WAL append failed: %w", err)
		rs.serving = false
		return rs.crashed
	}
	rs.walSeq++
	if rs.memstore[table] == nil {
		rs.memstore[table] = make(map[string]string)
	}
	rs.memstore[table][key] = value
	return nil
}

// Get reads a cell.
func (rs *RegionServer) Get(table, key string) (string, bool, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return "", false, ErrNotServing
	}
	v, ok := rs.memstore[table][key]
	return v, ok, nil
}

// Scan returns the sorted keys of a table.
func (rs *RegionServer) Scan(table string) ([]string, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return nil, ErrNotServing
	}
	keys := make([]string, 0, len(rs.memstore[table]))
	for k := range rs.memstore[table] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Flush persists the memstore to HFiles on HDFS.
func (rs *RegionServer) Flush() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.serving || rs.crashed != nil {
		return ErrNotServing
	}
	for table, cells := range rs.memstore {
		data, err := json.Marshal(cells)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("/hbase/data/%s/hfile-%06d", table, rs.walSeq)
		if err := rs.fs.Write(path, data, hdfssim.WriteOptions{Overwrite: true}); err != nil {
			if errors.Is(err, hdfssim.ErrSafeMode) {
				rs.crashed = fmt.Errorf("hbase: aborting region server: flush failed: %w", err)
				rs.serving = false
				return rs.crashed
			}
			return err
		}
	}
	return nil
}
