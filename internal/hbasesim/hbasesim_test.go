package hbasesim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/hdfssim"
	"repro/internal/vclock"
)

func TestPutGetScan(t *testing.T) {
	sim := vclock.New()
	fs := hdfssim.New(sim)
	rs := New(sim, fs)
	rs.Start(StartupAssumeReady, 0)
	if err := rs.Put("users", "row1", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Put("users", "row2", "bob"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := rs.Get("users", "row1")
	if err != nil || !ok || v != "alice" {
		t.Fatalf("get = %q, %v, %v", v, ok, err)
	}
	keys, err := rs.Scan("users")
	if err != nil || len(keys) != 2 || keys[0] != "row1" {
		t.Fatalf("scan = %v, %v", keys, err)
	}
	// WAL entries landed on HDFS.
	if len(fs.List("/hbase/WALs")) != 2 {
		t.Errorf("WALs = %v", fs.List("/hbase/WALs"))
	}
}

func TestAssumeReadyCrashesInSafeMode(t *testing.T) {
	// HBASE-537: HBase assumed NameNode readiness; the first WAL append
	// against a safe-mode NameNode crashes the server.
	sim := vclock.New()
	fs := hdfssim.New(sim)
	fs.SetSafeMode(true)
	rs := New(sim, fs)
	rs.Start(StartupAssumeReady, 0)
	if !rs.Serving() {
		t.Fatal("assume-ready server should claim to serve")
	}
	err := rs.Put("t", "k", "v")
	if err == nil || !errors.Is(err, hdfssim.ErrSafeMode) {
		t.Fatalf("put = %v, want safe-mode WAL failure", err)
	}
	if rs.Serving() {
		t.Error("server should have crashed")
	}
	if reason := rs.CrashReason(); reason == nil || !strings.Contains(reason.Error(), "WAL append failed") {
		t.Errorf("crash reason = %v", reason)
	}
	// Crashed server rejects everything.
	if _, _, err := rs.Get("t", "k"); !errors.Is(err, ErrNotServing) {
		t.Errorf("get after crash = %v", err)
	}
}

func TestWaitForNameNodeSurvivesSafeMode(t *testing.T) {
	// The fix: startup polls until the NameNode leaves safe mode.
	sim := vclock.New()
	fs := hdfssim.New(sim)
	fs.SetSafeMode(true)
	rs := New(sim, fs)
	rs.Start(StartupWaitForNameNode, 1000)
	sim.Run(5000)
	if rs.Serving() {
		t.Fatal("server should still be waiting")
	}
	fs.SetSafeMode(false)
	sim.Run(10000)
	if !rs.Serving() {
		t.Fatal("server should have started after safe mode exit")
	}
	if err := rs.Put("t", "k", "v"); err != nil {
		t.Fatal(err)
	}
}

func TestFlushWritesHFiles(t *testing.T) {
	sim := vclock.New()
	fs := hdfssim.New(sim)
	rs := New(sim, fs)
	rs.Start(StartupAssumeReady, 0)
	if err := rs.Put("t", "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(fs.List("/hbase/data/t")) != 1 {
		t.Errorf("hfiles = %v", fs.List("/hbase/data/t"))
	}
}

func TestOperationsBeforeStart(t *testing.T) {
	rs := New(vclock.New(), hdfssim.New(nil))
	if err := rs.Put("t", "k", "v"); !errors.Is(err, ErrNotServing) {
		t.Errorf("put = %v", err)
	}
	if _, err := rs.Scan("t"); !errors.Is(err, ErrNotServing) {
		t.Errorf("scan = %v", err)
	}
	if err := rs.Flush(); !errors.Is(err, ErrNotServing) {
		t.Errorf("flush = %v", err)
	}
}

func TestGetMissingKey(t *testing.T) {
	rs := New(vclock.New(), hdfssim.New(nil))
	rs.Start(StartupAssumeReady, 0)
	_, ok, err := rs.Get("t", "missing")
	if err != nil || ok {
		t.Errorf("get = %v, %v", ok, err)
	}
}
