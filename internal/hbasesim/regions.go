package hbasesim

// Region assignment: which regions a server believes it is serving.
// Assignment is the master/regionserver shared state behind HBase's
// double-assignment class of partition failures (HBASE-6060 and kin):
// a move is "close on the old server, open on the new one", and if the
// close is partitioned away while the open lands, two servers serve the
// same region and accept divergent writes.

import (
	"fmt"
	"sort"
)

// ErrRegionNotServing reports an operation against a region this
// server does not currently hold open.
var ErrRegionNotServing = fmt.Errorf("hbase: region is not served by this server")

// OpenRegion marks the region as served by this server.
func (rs *RegionServer) OpenRegion(region string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.regions == nil {
		rs.regions = make(map[string]bool)
	}
	rs.regions[region] = true
}

// CloseRegion marks the region as no longer served.
func (rs *RegionServer) CloseRegion(region string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	delete(rs.regions, region)
}

// ServesRegion reports whether the region is open on this server.
func (rs *RegionServer) ServesRegion(region string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.regions[region]
}

// Regions returns the regions open on this server, sorted.
func (rs *RegionServer) Regions() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, 0, len(rs.regions))
	for r := range rs.regions {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// PutRegion is Put scoped to a region: it rejects writes to regions
// this server does not hold open — the check that *should* fence a
// client routed by stale assignment metadata, and that double
// assignment defeats.
func (rs *RegionServer) PutRegion(region, table, key, value string) error {
	rs.mu.Lock()
	serving := rs.regions[region]
	rs.mu.Unlock()
	if !serving {
		return fmt.Errorf("%w: %s", ErrRegionNotServing, region)
	}
	return rs.Put(table, key, value)
}
