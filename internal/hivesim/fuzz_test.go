package hivesim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
)

// FuzzHiveQLParse asserts totality of the HiveQL front end: any query
// string yields a result or an error, never a panic. Seeds come from
// the §8 corpus literals. Run `go test -fuzz=FuzzHiveQLParse` for an
// extended exploration; the seed corpus runs in normal tests.
func FuzzHiveQLParse(f *testing.F) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		f.Fatal(err)
	}
	for i, in := range inputs {
		if i%5 == 0 {
			f.Add(fmt.Sprintf("CREATE TABLE t (C %s) STORED AS orc", in.Type))
		}
		f.Add(fmt.Sprintf("INSERT INTO t VALUES (%s)", in.Literal))
	}
	f.Add("SELECT * FROM t")
	f.Add("CREATE TABLE t (a INT, A STRING)")
	f.Add("INSERT INTO t VALUES (NAMED_STRUCT('a',")
	f.Add("SELECT count(*) FROM t GROUP BY missing")
	f.Fuzz(func(t *testing.T, query string) {
		fs := hdfssim.New(nil)
		ms := hivesim.NewMetastore()
		h := hivesim.New(fs, ms)
		if _, err := h.Execute("CREATE TABLE t (C INT) STORED AS orc"); err != nil {
			t.Fatalf("fixture table: %v", err)
		}
		_, _ = h.Execute(query) // must not panic
	})
}
