package hivesim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/serde"
	"repro/internal/sqlval"
)

func TestEscapeUnescapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		esc := EscapePartitionValue(s)
		// Escaped form contains only path-safe bytes and '%'.
		for i := 0; i < len(esc); i++ {
			if !hiveSafePathByte(esc[i]) && esc[i] != '%' {
				return false
			}
		}
		return UnescapePartitionValue(esc) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionDirRendering(t *testing.T) {
	cols := []serde.Column{
		{Name: "day", Type: sqlval.String},
		{Name: "bucket", Type: sqlval.Int},
	}
	dir, err := PartitionDir(cols, sqlval.Row{sqlval.StringVal("a b"), sqlval.IntVal(sqlval.Int, 7)}, EscapePartitionValue)
	if err != nil {
		t.Fatal(err)
	}
	if dir != "day=a%20b/bucket=7" {
		t.Errorf("dir = %q", dir)
	}
	// NULL values use the Hive default partition.
	dir, err = PartitionDir(cols[:1], sqlval.Row{sqlval.NullOf(sqlval.String)}, EscapePartitionValue)
	if err != nil || dir != "day=__HIVE_DEFAULT_PARTITION__" {
		t.Errorf("dir = %q, %v", dir, err)
	}
	// Arity mismatch.
	if _, err := PartitionDir(cols, sqlval.Row{sqlval.StringVal("x")}, EscapePartitionValue); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestParsePartitionValues(t *testing.T) {
	table := &Table{
		Name:     "t",
		Location: "/warehouse/t",
		PartitionCols: []serde.Column{
			{Name: "day", Type: sqlval.String},
			{Name: "bucket", Type: sqlval.Int},
		},
	}
	row, err := ParsePartitionValues(table, "/warehouse/t/day=a%20b/bucket=7/part-00000.orc",
		UnescapePartitionValue, sqlval.CastHive)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].S != "a b" || row[1].I != 7 {
		t.Errorf("row = %v", row)
	}
	// Wrong level count.
	if _, err := ParsePartitionValues(table, "/warehouse/t/part-0.orc", UnescapePartitionValue, sqlval.CastHive); err == nil {
		t.Error("missing partition levels should fail")
	}
	// Wrong column name.
	if _, err := ParsePartitionValues(table, "/warehouse/t/other=x/bucket=1/part-0.orc", UnescapePartitionValue, sqlval.CastHive); err == nil {
		t.Error("mismatched partition name should fail")
	}
	// Unpartitioned table: nil values.
	plain := &Table{Name: "p", Location: "/warehouse/p"}
	row, err = ParsePartitionValues(plain, "/warehouse/p/part-0.orc", UnescapePartitionValue, sqlval.CastHive)
	if err != nil || row != nil {
		t.Errorf("plain = %v, %v", row, err)
	}
}

func TestMetastoreHelpers(t *testing.T) {
	ms := NewMetastore()
	tbl, err := ms.CreateTablePartitioned("T1",
		[]serde.Column{{Name: "A", Type: sqlval.Int}},
		[]serde.Column{{Name: "Day", Type: sqlval.String}}, "orc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.PartitionCols[0].Name != "day" {
		t.Errorf("partition column not lowercased: %v", tbl.PartitionCols)
	}
	all := tbl.AllColumns()
	if len(all) != 2 || all[1].Name != "day" {
		t.Errorf("all columns = %v", all)
	}
	if names := ms.Tables(); len(names) != 1 || names[0] != "t1" {
		t.Errorf("tables = %v", names)
	}
	ms.SetProp(tbl, "k", "v")
	if ms.Prop(tbl, "k") != "v" {
		t.Error("prop round trip")
	}
	p := ms.NextPart(tbl)
	if !strings.HasPrefix(p, "/warehouse/t1/part-") {
		t.Errorf("part = %q", p)
	}
	// Duplicate across data and partition columns is rejected.
	if _, err := ms.CreateTablePartitioned("t2",
		[]serde.Column{{Name: "a", Type: sqlval.Int}},
		[]serde.Column{{Name: "A", Type: sqlval.String}}, "orc", nil); err == nil {
		t.Error("case-colliding data/partition columns should be rejected")
	}
}

func TestProjectWhereOperators(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (id INT)`)
	exec(t, h, `INSERT INTO t VALUES (1), (2), (3)`)
	cases := map[string]int{
		`SELECT * FROM t WHERE id = 2`:  1,
		`SELECT * FROM t WHERE id != 2`: 2,
		`SELECT * FROM t WHERE id <> 2`: 2,
		`SELECT * FROM t WHERE id < 2`:  1,
		`SELECT * FROM t WHERE id <= 2`: 2,
		`SELECT * FROM t WHERE id > 2`:  1,
		`SELECT * FROM t WHERE id >= 2`: 2,
	}
	for q, want := range cases {
		res := exec(t, h, q)
		if len(res.Rows) != want {
			t.Errorf("%s -> %d rows, want %d", q, len(res.Rows), want)
		}
	}
	// NULL never matches.
	exec(t, h, `INSERT INTO t VALUES (NULL)`)
	res := exec(t, h, `SELECT * FROM t WHERE id >= 0`)
	if len(res.Rows) != 3 {
		t.Errorf("NULL matched: %v", res.Rows)
	}
}

func TestAvroDeriveNested(t *testing.T) {
	in := []serde.Column{
		{Name: "a", Type: sqlval.ArrayType(sqlval.TinyInt)},
		{Name: "m", Type: sqlval.MapType(sqlval.String, sqlval.SmallInt)},
		{Name: "s", Type: sqlval.StructType(sqlval.Field{Name: "x", Type: sqlval.TinyInt})},
	}
	out := AvroMetastoreColumns(in)
	if out[0].Type.Elem.Kind != sqlval.KindInt {
		t.Errorf("array elem = %v", out[0].Type)
	}
	if out[1].Type.Value.Kind != sqlval.KindInt {
		t.Errorf("map value = %v", out[1].Type)
	}
	if out[2].Type.Fields[0].Type.Kind != sqlval.KindInt {
		t.Errorf("struct field = %v", out[2].Type)
	}
}

func TestSerDeErrorRendering(t *testing.T) {
	e := &SerDeError{Table: "t", Column: "c", Detail: "boom"}
	if !strings.Contains(e.Error(), "SerDeException") || !strings.Contains(e.Error(), "t.c") {
		t.Errorf("err = %q", e.Error())
	}
}
