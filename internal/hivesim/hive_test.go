package hivesim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/hdfssim"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

func newHive(t *testing.T) *Hive {
	t.Helper()
	return New(hdfssim.New(nil), NewMetastore())
}

func exec(t *testing.T, h *Hive, q string) *Result {
	t.Helper()
	res, err := h.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE users (id INT, name STRING) STORED AS ORC`)
	exec(t, h, `INSERT INTO users VALUES (1, 'alice'), (2, 'bob')`)
	res := exec(t, h, `SELECT * FROM users`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].S != "alice" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Columns[0].Name != "id" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestMetastoreLowercasesNames(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE MixedCase (UserId INT, UserName STRING)`)
	table, err := h.Metastore().GetTable("mixedcase")
	if err != nil {
		t.Fatal(err)
	}
	if table.Columns[0].Name != "userid" || table.Columns[1].Name != "username" {
		t.Errorf("columns = %v", table.Columns)
	}
	// Lookup is case-insensitive.
	if _, err := h.Metastore().GetTable("MIXEDCASE"); err != nil {
		t.Error(err)
	}
}

func TestDuplicateCaseInsensitiveColumnsRejected(t *testing.T) {
	h := newHive(t)
	if _, err := h.Execute(`CREATE TABLE t (a INT, A STRING)`); err == nil {
		t.Error("case-colliding columns should be rejected")
	}
}

func TestSelectWithWhereAndProjection(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (id INT, score DOUBLE)`)
	exec(t, h, `INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)`)
	res := exec(t, h, `SELECT id FROM t WHERE score > 2.0`)
	if len(res.Rows) != 2 || len(res.Rows[0]) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 2 || res.Rows[1][0].I != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestHiveLenientCoercionSilentNull(t *testing.T) {
	// The error-handling oracle's target: invalid input becomes NULL
	// with no feedback.
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (n INT)`)
	res := exec(t, h, `INSERT INTO t VALUES ('not-a-number')`)
	if len(res.Warnings) != 0 {
		t.Errorf("warnings = %v", res.Warnings)
	}
	out := exec(t, h, `SELECT * FROM t`)
	if !out.Rows[0][0].Null {
		t.Errorf("row = %v", out.Rows[0])
	}
}

func TestHiveOutOfRangeBecomesNull(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (b TINYINT)`)
	exec(t, h, `INSERT INTO t VALUES (200)`)
	out := exec(t, h, `SELECT * FROM t`)
	if !out.Rows[0][0].Null {
		t.Errorf("row = %v", out.Rows[0])
	}
}

func TestCharPaddedOnRead(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (c CHAR(4))`)
	exec(t, h, `INSERT INTO t VALUES ('ab')`)
	out := exec(t, h, `SELECT * FROM t`)
	if out.Rows[0][0].S != "ab  " {
		t.Errorf("char = %q", out.Rows[0][0].S)
	}
}

func TestAvroTableRegistersIntForSmallIntegrals(t *testing.T) {
	// HIVE-26533: the Avro SerDe derives INT for TINYINT/SMALLINT.
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (b TINYINT, s SMALLINT, i INT) STORED AS AVRO`)
	table, _ := h.Metastore().GetTable("t")
	for i := 0; i < 3; i++ {
		if table.Columns[i].Type.Kind != sqlval.KindInt {
			t.Errorf("col %d = %v", i, table.Columns[i].Type)
		}
	}
	exec(t, h, `INSERT INTO t VALUES (1, 2, 3)`)
	out := exec(t, h, `SELECT * FROM t`)
	if out.Rows[0][0].Type.Kind != sqlval.KindInt || out.Rows[0][0].I != 1 {
		t.Errorf("read = %v", out.Rows[0])
	}
}

func TestAvroRejectsNonStringMapKeysOnInsert(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (m MAP<INT, STRING>) STORED AS AVRO`)
	_, err := h.Execute(`INSERT INTO t VALUES (MAP(1, 'x'))`)
	if err == nil || !strings.Contains(err.Error(), "map keys must be STRING") {
		t.Errorf("err = %v", err)
	}
	// ORC tables accept the same data.
	exec(t, h, `CREATE TABLE t2 (m MAP<INT, STRING>) STORED AS ORC`)
	exec(t, h, `INSERT INTO t2 VALUES (MAP(1, 'x'))`)
	out := exec(t, h, `SELECT * FROM t2`)
	if len(out.Rows[0][0].Keys) != 1 || out.Rows[0][0].Keys[0].I != 1 {
		t.Errorf("map = %v", out.Rows[0][0])
	}
}

func TestORCWritesPositionalNames(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (UserId INT) STORED AS ORC`)
	exec(t, h, `INSERT INTO t VALUES (7)`)
	table, _ := h.Metastore().GetTable("t")
	paths := h.FileSystem().List(table.Location)
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	data, _ := h.FileSystem().Read(paths[0])
	// The ORC file itself carries _col0, not userid.
	if !strings.Contains(string(data), "_col0") {
		t.Error("orc file should carry positional names")
	}
	// Hive still reads it back via positional resolution.
	out := exec(t, h, `SELECT * FROM t`)
	if out.Rows[0][0].I != 7 {
		t.Errorf("read = %v", out.Rows[0])
	}
}

func TestDateHybridCalendarRoundTripsWithinHive(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (d DATE)`)
	exec(t, h, `INSERT INTO t VALUES (DATE '1500-06-01'), (DATE '2021-06-15')`)
	out := exec(t, h, `SELECT * FROM t`)
	if got := sqlval.FormatDate(out.Rows[0][0].I); got != "1500-06-01" {
		t.Errorf("pre-cutover date = %s", got)
	}
	if got := sqlval.FormatDate(out.Rows[1][0].I); got != "2021-06-15" {
		t.Errorf("modern date = %s", got)
	}
	// But the stored day count is the hybrid one, visible to other
	// engines: the raw file value differs from the proleptic count.
	table, _ := h.Metastore().GetTable("t")
	rows := mustReadRaw(t, h, table)
	want, _ := sqlval.ParseDate("1500-06-01")
	if rows[0][0].I == want {
		t.Error("stored pre-cutover day count should be rebased")
	}
}

func mustReadRaw(t *testing.T, h *Hive, table *Table) []sqlval.Row {
	t.Helper()
	var out []sqlval.Row
	for _, p := range h.FileSystem().List(table.Location) {
		data, err := h.FileSystem().Read(p)
		if err != nil {
			t.Fatal(err)
		}
		format, err := serde.ByName(table.Format)
		if err != nil {
			t.Fatal(err)
		}
		f, err := format.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f.Rows...)
	}
	return out
}

func TestStructOfNullsFoldsToNullOnORC(t *testing.T) {
	// SPARK-40637 model: Hive's ORC reader returns NULL for a struct
	// whose members are all NULL.
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (s STRUCT<a:INT, b:STRING>) STORED AS ORC`)
	exec(t, h, `INSERT INTO t VALUES (NAMED_STRUCT('a', NULL, 'b', NULL))`)
	out := exec(t, h, `SELECT * FROM t`)
	if !out.Rows[0][0].Null {
		t.Errorf("struct = %v", out.Rows[0][0])
	}
	// Parquet preserves the struct-of-nulls.
	exec(t, h, `CREATE TABLE t2 (s STRUCT<a:INT, b:STRING>) STORED AS PARQUET`)
	exec(t, h, `INSERT INTO t2 VALUES (NAMED_STRUCT('a', NULL, 'b', NULL))`)
	out = exec(t, h, `SELECT * FROM t2`)
	if out.Rows[0][0].Null {
		t.Error("parquet struct-of-nulls should not fold")
	}
}

func TestDropTable(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a INT)`)
	exec(t, h, `DROP TABLE t`)
	if _, err := h.Execute(`SELECT * FROM t`); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("err = %v", err)
	}
	exec(t, h, `DROP TABLE IF EXISTS t`)
	if _, err := h.Execute(`DROP TABLE t`); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("err = %v", err)
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a INT)`)
	exec(t, h, `CREATE TABLE IF NOT EXISTS t (a INT)`)
	if _, err := h.Execute(`CREATE TABLE t (a INT)`); err == nil {
		t.Error("duplicate create should fail")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a INT, b INT)`)
	if _, err := h.Execute(`INSERT INTO t VALUES (1)`); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestMultipleInsertsAccumulate(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a INT)`)
	for i := 0; i < 3; i++ {
		exec(t, h, `INSERT INTO t VALUES (1)`)
	}
	out := exec(t, h, `SELECT * FROM t`)
	if len(out.Rows) != 3 {
		t.Errorf("rows = %d", len(out.Rows))
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a INT)`)
	if _, err := h.Execute(`SELECT nope FROM t`); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestNestedValuesRoundTrip(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a ARRAY<INT>, m MAP<STRING, INT>, s STRUCT<x:INT>) STORED AS PARQUET`)
	exec(t, h, `INSERT INTO t VALUES (ARRAY(1,2), MAP('k', 9), NAMED_STRUCT('x', 5))`)
	out := exec(t, h, `SELECT * FROM t`)
	row := out.Rows[0]
	if len(row[0].List) != 2 || row[0].List[1].I != 2 {
		t.Errorf("array = %v", row[0])
	}
	if row[1].Keys[0].S != "k" || row[1].Vals[0].I != 9 {
		t.Errorf("map = %v", row[1])
	}
	if row[2].FieldVals[0].I != 5 {
		t.Errorf("struct = %v", row[2])
	}
}

func TestInsertOverwriteReplacesContents(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a INT)`)
	exec(t, h, `INSERT INTO t VALUES (1), (2)`)
	exec(t, h, `INSERT OVERWRITE TABLE t VALUES (9)`)
	out := exec(t, h, `SELECT * FROM t`)
	if len(out.Rows) != 1 || out.Rows[0][0].I != 9 {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestAggregates(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (n INT, d DOUBLE)`)
	exec(t, h, `INSERT INTO t VALUES (1, 1.5), (2, 2.5), (NULL, 3.0), (4, NULL)`)
	res := exec(t, h, `SELECT COUNT(*), COUNT(n), SUM(n), MIN(n), MAX(n), AVG(d) FROM t`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].I != 4 || row[1].I != 3 {
		t.Errorf("counts = %v, %v", row[0], row[1])
	}
	if row[2].I != 7 || row[3].I != 1 || row[4].I != 4 {
		t.Errorf("sum/min/max = %v %v %v", row[2], row[3], row[4])
	}
	if row[5].F < 2.33 || row[5].F > 2.34 {
		t.Errorf("avg = %v", row[5])
	}
	if res.Columns[0].Name != "count(*)" || res.Columns[2].Name != "sum(n)" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Aggregates respect WHERE.
	res = exec(t, h, `SELECT COUNT(*) FROM t WHERE n >= 2`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("filtered count = %v", res.Rows[0][0])
	}
	// Empty input: count 0, sum/min NULL.
	exec(t, h, `CREATE TABLE e (n INT)`)
	res = exec(t, h, `SELECT COUNT(*), SUM(n), MIN(n) FROM e`)
	if res.Rows[0][0].I != 0 || !res.Rows[0][1].Null || !res.Rows[0][2].Null {
		t.Errorf("empty aggregates = %v", res.Rows[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (n INT, s STRING)`)
	if _, err := h.Execute(`SELECT n, COUNT(*) FROM t`); err == nil {
		t.Error("mixed projection should require GROUP BY")
	}
	if _, err := h.Execute(`SELECT SUM(s) FROM t`); err == nil {
		t.Error("SUM over string should fail")
	}
	if _, err := h.Execute(`SELECT COUNT(nope) FROM t`); err == nil {
		t.Error("unknown column should fail")
	}
	// MIN over strings works (lexicographic).
	exec(t, h, `INSERT INTO t VALUES (1, 'b'), (2, 'a')`)
	res := exec(t, h, `SELECT MIN(s), MAX(s) FROM t`)
	if res.Rows[0][0].S != "a" || res.Rows[0][1].S != "b" {
		t.Errorf("min/max string = %v", res.Rows[0])
	}
}

func TestGroupBy(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE sales (region STRING, amount INT)`)
	exec(t, h, `INSERT INTO sales VALUES ('east', 10), ('west', 5), ('east', 20), ('west', 7), ('north', 1)`)
	res := exec(t, h, `SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	// First-seen order: east, west, north.
	if res.Rows[0][0].S != "east" || res.Rows[0][1].I != 2 || res.Rows[0][2].I != 30 {
		t.Errorf("east = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "west" || res.Rows[1][2].I != 12 {
		t.Errorf("west = %v", res.Rows[1])
	}
	if res.Columns[0].Name != "region" || res.Columns[2].Name != "sum(amount)" {
		t.Errorf("columns = %v", res.Columns)
	}
	// GROUP BY respects WHERE.
	res = exec(t, h, `SELECT region, COUNT(*) FROM sales WHERE amount >= 7 GROUP BY region`)
	if len(res.Rows) != 2 {
		t.Errorf("filtered groups = %v", res.Rows)
	}
	// Empty input keeps the header.
	exec(t, h, `CREATE TABLE empty (r STRING, a INT)`)
	res = exec(t, h, `SELECT r, COUNT(*) FROM empty GROUP BY r`)
	if len(res.Rows) != 0 || len(res.Columns) != 2 {
		t.Errorf("empty group = %v / %v", res.Columns, res.Rows)
	}
}

func TestGroupByErrors(t *testing.T) {
	h := newHive(t)
	exec(t, h, `CREATE TABLE t (a STRING, b INT)`)
	if _, err := h.Execute(`SELECT b, COUNT(*) FROM t GROUP BY a`); err == nil {
		t.Error("selecting a non-grouped column should fail")
	}
	if _, err := h.Execute(`SELECT nope, COUNT(*) FROM t GROUP BY nope`); err == nil {
		t.Error("unknown grouping column should fail")
	}
}
