package hivesim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
)

// DefaultFormat is the storage format used when DDL omits STORED AS.
const DefaultFormat = "orc"

// Result is the outcome of a HiveQL statement.
type Result struct {
	Columns  []serde.Column
	Rows     []sqlval.Row
	Warnings []string
}

// SerDeError is a read-side deserialization failure, Hive's analogue of
// SerDeException. The §8.2 "cannot read what was written" discrepancy
// SPARK-39158 surfaces as this error when Hive encounters Spark's
// legacy binary decimal encoding.
type SerDeError struct {
	Table  string
	Column string
	Detail string
}

// Error implements the error interface.
func (e *SerDeError) Error() string {
	return fmt.Sprintf("hive: SerDeException reading %s.%s: %s", e.Table, e.Column, e.Detail)
}

// Hive is the simulated Hive engine: a HiveQL front end over the shared
// metastore and warehouse.
type Hive struct {
	ms      *Metastore
	fs      *hdfssim.FileSystem
	tracer  *obs.Tracer
	version string
}

// New creates a Hive engine over the given file system and metastore.
// The metastore is shared with Spark's Hive connector in cross-system
// deployments.
func New(fs *hdfssim.FileSystem, ms *Metastore) *Hive {
	return &Hive{ms: ms, fs: fs}
}

// Metastore returns the engine's metastore.
func (h *Hive) Metastore() *Metastore { return h.ms }

// FileSystem returns the warehouse file system.
func (h *Hive) FileSystem() *hdfssim.FileSystem { return h.fs }

// SetTracer attaches an observability tracer; spans are threaded
// explicitly through ExecuteSpan so concurrent callers don't race.
func (h *Hive) SetTracer(tr *obs.Tracer) { h.tracer = tr }

// Execute runs one HiveQL statement.
func (h *Hive) Execute(query string) (*Result, error) {
	return h.ExecuteSpan(nil, query)
}

// ExecuteSpan runs one HiveQL statement under an explicit parent span,
// emitting a Hive data-plane span with SerDe/warehouse children. With
// no tracer attached this is exactly Execute.
func (h *Hive) ExecuteSpan(parent *obs.Span, query string) (*Result, error) {
	sp := h.tracer.Span(parent, csi.Hive, csi.DataPlane, "hiveql")
	res, err := h.dispatch(sp, query)
	sp.Fail(err).End()
	return res, err
}

func (h *Hive) dispatch(sp *obs.Span, query string) (*Result, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlparse.CreateTable:
		return h.createTable(sp, s)
	case *sqlparse.DropTable:
		err := h.ms.DropTable(s.Table, s.IfExists)
		sp.Child(csi.Hive, csi.ManagementPlane, "metastore/drop-table").
			Set("table", s.Table).Fail(err).End()
		return &Result{}, err
	case *sqlparse.Insert:
		return h.insert(sp, s)
	case *sqlparse.Select:
		return h.selectRows(sp, s)
	default:
		return nil, fmt.Errorf("hive: unsupported statement %T", stmt)
	}
}

func (h *Hive) createTable(sp *obs.Span, s *sqlparse.CreateTable) (*Result, error) {
	format := s.Format
	if format == "" {
		format = DefaultFormat
	}
	if _, err := serde.ByName(format); err != nil {
		return nil, err
	}
	cols := make([]serde.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = serde.Column{Name: c.Name, Type: c.Type}
	}
	if format == "avro" {
		cols = AvroMetastoreColumns(cols)
	}
	partCols := make([]serde.Column, len(s.PartitionedBy))
	for i, c := range s.PartitionedBy {
		partCols[i] = serde.Column{Name: c.Name, Type: c.Type}
	}
	_, err := h.ms.CreateTablePartitioned(s.Table, cols, partCols, format, s.Props)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/create-table").
		Set("table", s.Table).Set("format", format).Fail(err).End()
	if err != nil && s.IfNotExists && strings.Contains(err.Error(), "already exists") {
		return &Result{}, nil
	}
	return &Result{}, err
}

// AvroMetastoreColumns applies the Hive Avro SerDe's schema derivation
// to metastore columns: TINYINT and SMALLINT have no Avro type and are
// registered as INT (the HIVE-26533 behaviour). The derivation recurses
// into nested types.
func AvroMetastoreColumns(cols []serde.Column) []serde.Column {
	out := make([]serde.Column, len(cols))
	for i, c := range cols {
		out[i] = serde.Column{Name: c.Name, Type: avroDerive(c.Type)}
	}
	return out
}

func avroDerive(t sqlval.Type) sqlval.Type {
	switch t.Kind {
	case sqlval.KindTinyInt, sqlval.KindSmallInt:
		return sqlval.Int
	case sqlval.KindArray:
		return sqlval.ArrayType(avroDerive(*t.Elem))
	case sqlval.KindMap:
		return sqlval.MapType(*t.Key, avroDerive(*t.Value))
	case sqlval.KindStruct:
		fields := make([]sqlval.Field, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = sqlval.Field{Name: f.Name, Type: avroDerive(f.Type)}
		}
		return sqlval.StructType(fields...)
	default:
		return t
	}
}

func (h *Hive) insert(sp *obs.Span, s *sqlparse.Insert) (*Result, error) {
	table, err := h.ms.GetTable(s.Table)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/get-table").
		Set("table", s.Table).Fail(err).End()
	if err != nil {
		return nil, err
	}
	allCols := table.AllColumns()
	rows := make([]sqlval.Row, 0, len(s.Rows))
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(allCols) {
			return nil, fmt.Errorf("hive: INSERT has %d values, table %s has %d columns",
				len(exprRow), table.Name, len(allCols))
		}
		row := make(sqlval.Row, len(exprRow))
		for i, e := range exprRow {
			v, err := sqlparse.Eval(e, sqlval.CastHive)
			if err != nil {
				return nil, err
			}
			// Hive's lenient coercion: failures become NULL silently.
			coerced, _ := sqlval.Cast(v, allCols[i].Type, sqlval.CastHive)
			row[i] = coerced
		}
		rows = append(rows, row)
	}
	if s.Overwrite {
		if err := h.Truncate(table); err != nil {
			return nil, err
		}
	}
	if err := h.writeRows(sp, table, rows); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// Truncate removes every part file of the table.
func (h *Hive) Truncate(table *Table) error {
	for _, path := range h.fs.List(table.Location) {
		if err := h.fs.Delete(path); err != nil {
			return err
		}
	}
	return nil
}

// WriteRows appends rows (already coerced to the table schema; for
// partitioned tables the partition values trail the data columns) to
// the table through Hive's writer personality: positional ORC names,
// hybrid-calendar date rebasing, and Hive's partition-path escaping.
func (h *Hive) WriteRows(table *Table, rows []sqlval.Row) error {
	return h.writeRows(nil, table, rows)
}

func (h *Hive) writeRows(sp *obs.Span, table *Table, rows []sqlval.Row) error {
	format, err := h.writerFor(table.Format)
	if err != nil {
		return err
	}
	// Group rows by partition directory ("" for unpartitioned tables).
	nData := len(table.Columns)
	groups := map[string][]sqlval.Row{}
	var order []string
	for _, row := range rows {
		dir := ""
		if len(table.PartitionCols) > 0 {
			dir, err = PartitionDir(table.PartitionCols, row[nData:], EscapePartitionValue)
			if err != nil {
				return err
			}
		}
		out := make(sqlval.Row, nData)
		for j := 0; j < nData; j++ {
			out[j] = hiveWriteTransform(row[j])
		}
		if _, ok := groups[dir]; !ok {
			order = append(order, dir)
		}
		groups[dir] = append(groups[dir], out)
	}
	meta := map[string]string{serde.MetaWriterEngine: "hive"}
	for _, dir := range order {
		data, err := format.Encode(table.Schema(), meta, groups[dir])
		if sp != nil {
			sp.Child(csi.SerDe, csi.DataPlane, table.Format+"/encode").
				Set("rows", strconv.Itoa(len(groups[dir]))).Fail(err).End()
		}
		if err != nil {
			return err
		}
		path := h.ms.NextPartIn(table, dir)
		err = h.fs.Write(path, data, hdfssim.WriteOptions{Overwrite: true})
		if sp != nil {
			sp.Child(csi.HDFS, csi.DataPlane, "warehouse/write").
				Set("path", path).Fail(err).End()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Hive) writerFor(name string) (serde.Format, error) {
	switch name {
	case "orc":
		// Hive's ORC writer records positional column names (SPARK-21686).
		return serde.ORC{PositionalNames: true}, nil
	default:
		return serde.ByName(name)
	}
}

// hiveWriteTransform rebases DATE values into the hybrid calendar that
// Hive's writers use, recursing into nested values.
func hiveWriteTransform(v sqlval.Value) sqlval.Value {
	return transformDates(v, sqlval.RebaseGregorianToHybrid)
}

// hiveReadTransform reinterprets stored day counts through the hybrid
// calendar on read.
func hiveReadTransform(v sqlval.Value) sqlval.Value {
	return transformDates(v, sqlval.RebaseHybridToGregorian)
}

func transformDates(v sqlval.Value, f func(int64) int64) sqlval.Value {
	if v.Null {
		return v
	}
	switch v.Type.Kind {
	case sqlval.KindDate:
		v.I = f(v.I)
		return v
	case sqlval.KindArray:
		out := v.Clone()
		for i := range out.List {
			out.List[i] = transformDates(out.List[i], f)
		}
		return out
	case sqlval.KindMap:
		out := v.Clone()
		for i := range out.Keys {
			out.Keys[i] = transformDates(out.Keys[i], f)
			out.Vals[i] = transformDates(out.Vals[i], f)
		}
		return out
	case sqlval.KindStruct:
		out := v.Clone()
		for i := range out.FieldVals {
			out.FieldVals[i] = transformDates(out.FieldVals[i], f)
		}
		return out
	default:
		return v
	}
}

func (h *Hive) selectRows(sp *obs.Span, s *sqlparse.Select) (*Result, error) {
	table, err := h.ms.GetTable(s.Table)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/get-table").
		Set("table", s.Table).Fail(err).End()
	if err != nil {
		return nil, err
	}
	rows, err := h.readRows(sp, table)
	if err != nil {
		return nil, err
	}
	return Project(table.AllColumns(), rows, s, sqlval.CastHive)
}

// ReadRows scans every part file of the table and converts the stored
// rows to the metastore schema under Hive's read personality.
func (h *Hive) ReadRows(table *Table) ([]sqlval.Row, error) {
	return h.readRows(nil, table)
}

func (h *Hive) readRows(sp *obs.Span, table *Table) ([]sqlval.Row, error) {
	format, err := serde.ByName(table.Format)
	if err != nil {
		return nil, err
	}
	var out []sqlval.Row
	for _, path := range h.fs.List(table.Location) {
		data, err := h.fs.Read(path)
		if sp != nil {
			sp.Child(csi.HDFS, csi.DataPlane, "warehouse/read").
				Set("path", path).Fail(err).End()
		}
		if err != nil {
			return nil, err
		}
		// One SerDe span covers the decode and row conversion: a
		// SerDeException (e.g. SPARK-39158) is a SerDe-boundary failure.
		var dec *obs.Span
		if sp != nil {
			dec = sp.Child(csi.SerDe, csi.DataPlane, table.Format+"/decode")
		}
		file, err := format.Decode(data)
		if err != nil {
			dec.Fail(err).End()
			return nil, err
		}
		partVals, err := ParsePartitionValues(table, path, UnescapePartitionValue, sqlval.CastHive)
		if err != nil {
			dec.Fail(err).End()
			return nil, err
		}
		resolve := columnResolver(file.Schema, table.Columns)
		for _, fileRow := range file.Rows {
			row := make(sqlval.Row, len(table.Columns), len(table.Columns)+len(partVals))
			for i, col := range table.Columns {
				idx := resolve[i]
				if idx < 0 {
					row[i] = sqlval.NullOf(col.Type)
					continue
				}
				v, err := h.convertForRead(table, col, file.Schema.Columns[idx].Type, fileRow[idx])
				if err != nil {
					dec.Fail(err).End()
					return nil, err
				}
				row[i] = v
			}
			row = append(row, partVals.Clone()...)
			out = append(out, row)
		}
		dec.End()
	}
	return out, nil
}

// convertForRead maps a stored value to the declared column type with
// Hive's read-side behaviours.
func (h *Hive) convertForRead(table *Table, col serde.Column, fileType sqlval.Type, v sqlval.Value) (sqlval.Value, error) {
	// Spark's legacy binary decimal encoding is opaque to Hive's
	// deserializers (SPARK-39158).
	if fileType.Kind == sqlval.KindBinary && col.Type.Kind == sqlval.KindDecimal {
		return sqlval.Value{}, &SerDeError{
			Table:  table.Name,
			Column: col.Name,
			Detail: fmt.Sprintf("cannot deserialize BINARY as %s (unannotated legacy decimal)", col.Type),
		}
	}
	v = hiveReadTransform(v)
	profile := h.profile()
	// Pre-HIVE-12192 releases interpret Parquet INT96 timestamps in the
	// server's local zone rather than UTC; the modeled server runs in
	// America/Los_Angeles.
	if table.Format == "parquet" && profile.ParquetLocalZoneSeconds != 0 {
		off := profile.ParquetLocalZoneSeconds
		v = sqlval.TransformLeaves(v, func(lv sqlval.Value) sqlval.Value {
			if lv.Type.Kind == sqlval.KindTimestamp {
				lv.I += off * sqlval.MicrosPerSecond
			}
			return lv
		})
	}
	// Hive 3's ORC reader folds a struct whose members are all NULL into
	// a NULL struct (the SPARK-40637 model); Hive 2.3 returns the struct
	// with NULL members.
	if table.Format == "orc" && profile.OrcStructFold && v.Type.Kind == sqlval.KindStruct && !v.Null {
		allNull := len(v.FieldVals) > 0
		for _, fv := range v.FieldVals {
			if !fv.Null {
				allNull = false
				break
			}
		}
		if allNull {
			return sqlval.NullOf(col.Type), nil
		}
	}
	// Lenient conversion to the declared type; CHAR padding is applied
	// by the cast (Hive 3 pads CHAR on the read side; Hive 2.3's reader
	// returns the stored string unpadded).
	out, _ := sqlval.Cast(v, col.Type, sqlval.CastHive)
	if out.Type.Kind == sqlval.KindChar && !out.Null && !profile.ReadSideCharPadding {
		out.S = strings.TrimRight(out.S, " ")
	}
	return out, nil
}

// columnResolver maps each target column to a file column index (−1
// when absent). Files with positional names (_col0, _col1, …) resolve
// by position — Hive's ORC convention; otherwise names match
// case-insensitively.
func columnResolver(file serde.Schema, target []serde.Column) []int {
	positional := len(file.Columns) > 0
	for i, c := range file.Columns {
		if c.Name != fmt.Sprintf("_col%d", i) {
			positional = false
			break
		}
	}
	out := make([]int, len(target))
	for i := range target {
		out[i] = -1
		if positional {
			if i < len(file.Columns) {
				out[i] = i
			}
			continue
		}
		for j, fc := range file.Columns {
			if strings.EqualFold(fc.Name, target[i].Name) {
				out[i] = j
				break
			}
		}
	}
	return out
}

// Project applies the SELECT projection and WHERE predicate to rows of
// the given schema. It is shared by the Hive engine and, because Spark
// links Hive libraries for its connector, by the Spark SQL front end.
func Project(columns []serde.Column, rows []sqlval.Row, s *sqlparse.Select, mode sqlval.CastMode) (*Result, error) {
	colIdx := func(name string) (int, error) {
		for i, c := range columns {
			if strings.EqualFold(c.Name, name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("sql: column %q not found", name)
	}
	var sel []int
	var outCols []serde.Column
	for _, item := range s.Items {
		if item.Star {
			for i, c := range columns {
				sel = append(sel, i)
				outCols = append(outCols, c)
			}
			continue
		}
		i, err := colIdx(item.Column)
		if err != nil {
			return nil, err
		}
		sel = append(sel, i)
		outCols = append(outCols, columns[i])
	}
	var filter func(sqlval.Row) (bool, error)
	if s.Where != nil {
		wi, err := colIdx(s.Where.Column)
		if err != nil {
			return nil, err
		}
		lit, err := sqlparse.Eval(s.Where.Value, mode)
		if err != nil {
			return nil, err
		}
		want, err := sqlval.Cast(lit, columns[wi].Type, mode)
		if err != nil {
			return nil, err
		}
		op := s.Where.Op
		filter = func(row sqlval.Row) (bool, error) {
			if row[wi].Null || want.Null {
				return false, nil // SQL three-valued logic: NULL never matches
			}
			c, err := sqlval.Compare(row[wi], want)
			if err != nil {
				return false, err
			}
			switch op {
			case "=":
				return c == 0, nil
			case "!=":
				return c != 0, nil
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			case ">=":
				return c >= 0, nil
			default:
				return false, fmt.Errorf("sql: unknown operator %q", op)
			}
		}
	}
	var kept []sqlval.Row
	for _, row := range rows {
		if filter != nil {
			ok, err := filter(row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		kept = append(kept, row)
	}
	// Aggregate queries produce a single row; mixing aggregates with
	// plain columns requires GROUP BY, which this subset does not cover.
	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg || s.GroupBy != "" {
		for _, item := range s.Items {
			if item.Agg == "" && !strings.EqualFold(item.Column, s.GroupBy) {
				return nil, fmt.Errorf("sql: non-aggregate column %q must appear in GROUP BY", item.Column)
			}
		}
		if s.GroupBy == "" {
			return aggregate(columns, kept, s)
		}
		return aggregateGrouped(columns, kept, s)
	}
	if s.OrderBy != nil {
		oi, err := colIdx(s.OrderBy.Column)
		if err != nil {
			return nil, err
		}
		desc := s.OrderBy.Desc
		var sortErr error
		sort.SliceStable(kept, func(i, j int) bool {
			c, err := sqlval.Compare(kept[i][oi], kept[j][oi])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if s.Limit >= 0 && len(kept) > s.Limit {
		kept = kept[:s.Limit]
	}
	res := &Result{Columns: outCols}
	for _, row := range kept {
		out := make(sqlval.Row, len(sel))
		for i, idx := range sel {
			out[i] = row[idx]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// aggregateGrouped evaluates GROUP BY over a single grouping column:
// rows are bucketed by the column's rendered value and each bucket is
// aggregated independently. Groups are emitted in first-seen order.
func aggregateGrouped(columns []serde.Column, rows []sqlval.Row, s *sqlparse.Select) (*Result, error) {
	gi := -1
	for i, c := range columns {
		if strings.EqualFold(c.Name, s.GroupBy) {
			gi = i
			break
		}
	}
	if gi < 0 {
		return nil, fmt.Errorf("sql: column %q not found", s.GroupBy)
	}
	var order []string
	groups := map[string][]sqlval.Row{}
	keyVal := map[string]sqlval.Value{}
	for _, row := range rows {
		k := row[gi].String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			keyVal[k] = row[gi]
		}
		groups[k] = append(groups[k], row)
	}
	res := &Result{}
	for n, k := range order {
		sub := &sqlparse.Select{Items: nil, Table: s.Table}
		var rowOut sqlval.Row
		for _, item := range s.Items {
			if item.Agg == "" {
				if n == 0 {
					res.Columns = append(res.Columns, columns[gi])
				}
				rowOut = append(rowOut, keyVal[k])
				continue
			}
			sub.Items = []sqlparse.SelectItem{item}
			part, err := aggregate(columns, groups[k], sub)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				res.Columns = append(res.Columns, part.Columns[0])
			}
			rowOut = append(rowOut, part.Rows[0][0])
		}
		res.Rows = append(res.Rows, rowOut)
	}
	if len(order) == 0 {
		// Preserve the header for empty inputs.
		for _, item := range s.Items {
			name := item.Column
			if item.Agg != "" {
				name = item.Agg + "(" + item.Column + ")"
				if item.Star {
					name = item.Agg + "(*)"
				}
			}
			res.Columns = append(res.Columns, serde.Column{Name: name, Type: sqlval.String})
		}
	}
	return res, nil
}

// aggregate evaluates an all-aggregate projection over the filtered
// rows, producing a single result row.
func aggregate(columns []serde.Column, rows []sqlval.Row, s *sqlparse.Select) (*Result, error) {
	colIdx := func(name string) (int, error) {
		for i, c := range columns {
			if strings.EqualFold(c.Name, name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("sql: column %q not found", name)
	}
	res := &Result{}
	out := make(sqlval.Row, 0, len(s.Items))
	for _, item := range s.Items {
		label := item.Agg + "(*)"
		var idx int
		if !item.Star {
			var err error
			idx, err = colIdx(item.Column)
			if err != nil {
				return nil, err
			}
			label = fmt.Sprintf("%s(%s)", item.Agg, columns[idx].Name)
		}
		v, err := aggValue(item, idx, columns, rows)
		if err != nil {
			return nil, err
		}
		res.Columns = append(res.Columns, serde.Column{Name: label, Type: v.Type})
		out = append(out, v)
	}
	res.Rows = []sqlval.Row{out}
	return res, nil
}

func aggValue(item sqlparse.SelectItem, idx int, columns []serde.Column, rows []sqlval.Row) (sqlval.Value, error) {
	switch item.Agg {
	case "count":
		n := int64(0)
		for _, row := range rows {
			if item.Star || !row[idx].Null {
				n++
			}
		}
		return sqlval.IntVal(sqlval.BigInt, n), nil
	case "sum", "avg":
		col := columns[idx]
		if !col.Type.IsNumeric() {
			return sqlval.Value{}, fmt.Errorf("sql: %s over non-numeric column %q", item.Agg, col.Name)
		}
		sum := 0.0
		n := int64(0)
		for _, row := range rows {
			v := row[idx]
			if v.Null {
				continue
			}
			n++
			switch v.Type.Kind {
			case sqlval.KindFloat, sqlval.KindDouble:
				sum += v.F
			case sqlval.KindDecimal:
				sum += v.D.Float64()
			default:
				sum += float64(v.I)
			}
		}
		if n == 0 {
			return sqlval.NullOf(sqlval.Double), nil
		}
		if item.Agg == "avg" {
			return sqlval.DoubleVal(sum / float64(n)), nil
		}
		if col.Type.IsIntegral() {
			return sqlval.IntVal(sqlval.BigInt, int64(sum)), nil
		}
		return sqlval.DoubleVal(sum), nil
	case "min", "max":
		var best sqlval.Value
		found := false
		for _, row := range rows {
			v := row[idx]
			if v.Null {
				continue
			}
			if !found {
				best = v
				found = true
				continue
			}
			c, err := sqlval.Compare(v, best)
			if err != nil {
				return sqlval.Value{}, err
			}
			if (item.Agg == "min" && c < 0) || (item.Agg == "max" && c > 0) {
				best = v
			}
		}
		if !found {
			return sqlval.NullOf(columns[idx].Type), nil
		}
		return best, nil
	default:
		return sqlval.Value{}, fmt.Errorf("sql: unknown aggregate %q", item.Agg)
	}
}
