// Package hivesim simulates the Hive engine of the §8 case study: a
// case-insensitive metastore, a HiveQL front end, and a warehouse of
// serialized part files on a simulated HDFS namespace.
//
// The engine reproduces Hive's cross-system-visible personality:
//
//   - table and column names are lowercased in the metastore, losing
//     case (the "not case preserving" half of HIVE-26533);
//   - value coercion is lenient — invalid or out-of-range data becomes
//     NULL with no feedback (the error-handling oracle's target);
//   - the ORC writer records positional _colN column names
//     (SPARK-21686);
//   - CHAR(n) values are padded to n on the read side;
//   - DATE day counts are interpreted through the hybrid
//     Julian/Gregorian calendar, shifting pre-1582 dates written by
//     proleptic-calendar engines (the HIVE-26528-family model);
//   - Parquet writer time-zone metadata is ignored on read, so
//     timestamps written by Spark's adjusted INT96 path are shifted.
package hivesim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/serde"
)

// ErrNoSuchTable reports a lookup of an unknown table.
var ErrNoSuchTable = fmt.Errorf("hive: table not found")

// ErrTableExists reports a CREATE TABLE collision.
var ErrTableExists = fmt.Errorf("hive: table already exists")

// Table is a metastore entry. Names are stored lowercased.
type Table struct {
	Name    string
	Columns []serde.Column
	// PartitionCols are the partition columns; their values select the
	// "name=value" directory a row's part file lands in.
	PartitionCols []serde.Column
	Format        string
	Location      string
	Props         map[string]string

	partSeq int
}

// Schema returns the table's schema.
func (t *Table) Schema() serde.Schema {
	return serde.Schema{Columns: t.Columns}
}

// Metastore is the case-insensitive catalog shared by Hive and, through
// the Spark Hive connector, by Spark.
type Metastore struct {
	mu     sync.Mutex
	tables map[string]*Table
}

// NewMetastore returns an empty metastore.
func NewMetastore() *Metastore {
	return &Metastore{tables: make(map[string]*Table)}
}

// CreateTable registers a table, lowercasing the table and column
// names — Hive's metastore is case-insensitive by design.
func (m *Metastore) CreateTable(name string, columns []serde.Column, format string, props map[string]string) (*Table, error) {
	return m.CreateTablePartitioned(name, columns, nil, format, props)
}

// CreateTablePartitioned registers a table with partition columns.
func (m *Metastore) CreateTablePartitioned(name string, columns, partitionCols []serde.Column, format string, props map[string]string) (*Table, error) {
	key := strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, key)
	}
	seen := make(map[string]bool, len(columns)+len(partitionCols))
	lower := func(in []serde.Column) ([]serde.Column, error) {
		out := make([]serde.Column, len(in))
		for i, c := range in {
			l := strings.ToLower(c.Name)
			if seen[l] {
				return nil, fmt.Errorf("hive: duplicate column %q (column names are case-insensitive)", l)
			}
			seen[l] = true
			out[i] = serde.Column{Name: l, Type: c.Type}
		}
		return out, nil
	}
	cols, err := lower(columns)
	if err != nil {
		return nil, err
	}
	partCols, err := lower(partitionCols)
	if err != nil {
		return nil, err
	}
	if props == nil {
		props = map[string]string{}
	} else {
		cp := make(map[string]string, len(props))
		for k, v := range props {
			cp[k] = v
		}
		props = cp
	}
	t := &Table{
		Name:          key,
		Columns:       cols,
		PartitionCols: partCols,
		Format:        format,
		Location:      "/warehouse/" + key,
		Props:         props,
	}
	m.tables[key] = t
	return t, nil
}

// GetTable looks a table up case-insensitively.
func (m *Metastore) GetTable(name string) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, strings.ToLower(name))
	}
	return t, nil
}

// DropTable removes a table. With ifExists, dropping a missing table is
// a no-op.
func (m *Metastore) DropTable(name string, ifExists bool) error {
	key := strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoSuchTable, key)
	}
	delete(m.tables, key)
	return nil
}

// Tables lists table names, sorted.
func (m *Metastore) Tables() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tables))
	for n := range m.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NextPart allocates the next part-file path for a table.
func (m *Metastore) NextPart(t *Table) string {
	return m.NextPartIn(t, "")
}

// NextPartIn allocates the next part-file path under the given
// partition directory ("" for unpartitioned tables).
func (m *Metastore) NextPartIn(t *Table, partitionDir string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	base := t.Location
	if partitionDir != "" {
		base += "/" + partitionDir
	}
	p := fmt.Sprintf("%s/part-%05d.%s", base, t.partSeq, t.Format)
	t.partSeq++
	return p
}

// AllColumns returns data columns followed by partition columns — the
// schema SELECT * projects.
func (t *Table) AllColumns() []serde.Column {
	if len(t.PartitionCols) == 0 {
		return t.Columns
	}
	out := make([]serde.Column, 0, len(t.Columns)+len(t.PartitionCols))
	out = append(out, t.Columns...)
	return append(out, t.PartitionCols...)
}

// SetProp updates a table property.
func (m *Metastore) SetProp(t *Table, key, value string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t.Props[key] = value
}

// Prop reads a table property.
func (m *Metastore) Prop(t *Table, key string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return t.Props[key]
}
