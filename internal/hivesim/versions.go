package hivesim

import (
	"fmt"

	"repro/internal/versions"
)

// Version profiles for the Hive engine. The modeled baseline is Hive
// 3.1.2 — the release the Figure-6 deployment runs — and Hive 2.3.9 is
// the downgrade target for version-skew runs. Each behavioral gate is
// keyed in internal/versions to the JIRA issue or migration note that
// changed it: HIVE-12192 (3.x stores/reads Parquet timestamps in UTC
// instead of the local zone), read-side CHAR padding semantics
// (SPARK-40616 context), and the ORC all-NULL struct fold observed
// against Hive 3 readers (SPARK-40637 context).
const (
	Version23 = versions.Hive23
	Version31 = versions.Hive31
)

// Versions lists the supported Hive version profiles.
func Versions() []string { return versions.HiveVersions() }

// ApplyVersionProfile pins the engine to a release's read-side
// behaviors. Engines without a profile run the modeled baseline
// (Hive 3.1.2).
func (h *Hive) ApplyVersionProfile(version string) error {
	if _, ok := versions.GetHiveProfile(version); !ok {
		return fmt.Errorf("hive: unknown version %q (have %v)", version, Versions())
	}
	h.version = version
	return nil
}

// Version returns the engine's version profile name (empty when no
// profile was applied).
func (h *Hive) Version() string { return h.version }

// profile resolves the active behavior profile, defaulting to the
// baseline so unversioned engines behave exactly as before the version
// axis existed.
func (h *Hive) profile() versions.HiveProfile {
	if h.version != "" {
		if p, ok := versions.GetHiveProfile(h.version); ok {
			return p
		}
	}
	p, _ := versions.GetHiveProfile(versions.Hive31)
	return p
}
