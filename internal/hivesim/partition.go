package hivesim

import (
	"fmt"
	"strings"

	"repro/internal/serde"
	"repro/internal/sqlval"
)

// Partition path handling. Hive's FileUtils.escapePathName percent-
// encodes every byte outside [A-Za-z0-9_.-] when building the
// "name=value" partition directories, and decodes %XX sequences on
// read. Spark historically used its own, narrower escaping — the
// divergence is a live candidate discrepancy the cross-test surfaces
// (see the partition tests in sparksim).

func hiveSafePathByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == '-'
}

// EscapePartitionValue applies Hive's path escaping.
func EscapePartitionValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if hiveSafePathByte(c) {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	return b.String()
}

// UnescapePartitionValue decodes %XX sequences; malformed sequences are
// kept literally, as Hive's decoder does.
func UnescapePartitionValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, okHi := hexVal(s[i+1])
			lo, okLo := hexVal(s[i+2])
			if okHi && okLo {
				b.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// PartitionDir renders the partition directory for the given partition
// values using the provided value escaper.
func PartitionDir(cols []serde.Column, values sqlval.Row, escape func(string) string) (string, error) {
	if len(cols) != len(values) {
		return "", fmt.Errorf("hive: %d partition values for %d partition columns", len(values), len(cols))
	}
	segs := make([]string, len(cols))
	for i, c := range cols {
		v, err := sqlval.Cast(values[i], sqlval.String, sqlval.CastHive)
		if err != nil {
			return "", err
		}
		raw := v.S
		if v.Null {
			raw = "__HIVE_DEFAULT_PARTITION__"
		}
		segs[i] = c.Name + "=" + escape(raw)
	}
	return strings.Join(segs, "/"), nil
}

// ParsePartitionValues extracts partition values from a part-file path
// relative to the table location, decoding each with unescape and
// coercing to the partition column types under the given cast mode.
func ParsePartitionValues(table *Table, path string, unescape func(string) string, mode sqlval.CastMode) (sqlval.Row, error) {
	if len(table.PartitionCols) == 0 {
		return nil, nil
	}
	rel := strings.TrimPrefix(path, table.Location+"/")
	segs := strings.Split(rel, "/")
	if len(segs) != len(table.PartitionCols)+1 {
		return nil, fmt.Errorf("hive: path %q does not match %d partition levels", path, len(table.PartitionCols))
	}
	out := make(sqlval.Row, len(table.PartitionCols))
	for i, col := range table.PartitionCols {
		name, raw, ok := strings.Cut(segs[i], "=")
		if !ok || !strings.EqualFold(name, col.Name) {
			return nil, fmt.Errorf("hive: partition segment %q does not match column %q", segs[i], col.Name)
		}
		decoded := unescape(raw)
		if decoded == "__HIVE_DEFAULT_PARTITION__" {
			out[i] = sqlval.NullOf(col.Type)
			continue
		}
		v, _ := sqlval.Cast(sqlval.StringVal(decoded), col.Type, mode)
		out[i] = v
	}
	return out, nil
}
