// Package integration_test builds the repository's command binaries and
// runs them end to end, asserting the headline outputs: the study tool
// reproduces every finding, the cross-test reports all 15 discrepancies,
// and the replay tool exhibits each failure and fix.
package integration_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "csi-bin")
	if err != nil {
		os.Exit(1)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
	build.Dir = repoRoot()
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

func repoRoot() string {
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd)) // internal/integration -> repo root
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCsistudyEndToEnd(t *testing.T) {
	out := run(t, "csistudy")
	for _, want := range []string{
		"Table 1", "Table 9",
		"All quantitative findings reproduce the published statistics.",
		"CSI-failure-induced incidents: 11 (20%), median duration 106 minutes",
		"Control-plane share of CBS CSI failures: 69%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csistudy output missing %q", want)
		}
	}
}

func TestCsistudyDatasetListing(t *testing.T) {
	out := run(t, "csistudy", "-dataset")
	for _, want := range []string{"FLINK-12342", "SPARK-27239", "[synthesized]", "120 records"} {
		if !strings.Contains(out, want) {
			t.Errorf("dataset listing missing %q", want)
		}
	}
}

func TestCrosstestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	out := run(t, "crosstest", "-parallel", "8")
	if !strings.Contains(out, "Distinct discrepancies: 15") {
		t.Error("crosstest did not report 15 distinct discrepancies")
	}
	for _, want := range []string{
		"SPARK-39075", "SPARK-40630",
		"cannot-read-what-was-written         2/2",
		"relying-on-custom-configurations     8/8",
		"Module locality",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("crosstest output missing %q", want)
		}
	}
	if strings.Contains(out, "Unmapped signatures") {
		t.Error("crosstest reported unmapped signatures on the default corpus")
	}
}

func TestCrosstestDeploymentConfig(t *testing.T) {
	out := run(t, "crosstest",
		"-inputs", "ts_noon",
		"-conf", "spark.sql.session.timeZone=UTC")
	if !strings.Contains(out, "Distinct discrepancies: 0") {
		t.Errorf("UTC deployment should resolve the timestamp discrepancy:\n%s", out)
	}
}

func TestCrosstestExtensionModes(t *testing.T) {
	out := run(t, "crosstest", "-inputs", "char_short", "-wide", "-partitions")
	if !strings.Contains(out, "Partitioned-table mode") ||
		!strings.Contains(out, "partition-path-escaping") {
		t.Errorf("partition mode missing:\n%s", out)
	}
	if !strings.Contains(out, "Wide-table mode") {
		t.Error("wide mode missing")
	}
}

func TestCsireplayEndToEnd(t *testing.T) {
	out := run(t, "csireplay")
	for _, want := range []string{
		"FLINK-12342", "buggy-sync-assumption", "resolution3-nmclient-async",
		"SPARK-27239", "length (-1) cannot be negative",
		"FLINK-19141", "could not allocate",
		"FLINK-887", "beyond physical memory limits",
		"YARN-2790", "delegation token expired",
		"HBASE-537", "safe mode",
		"SPARK-19361", "not contiguous",
		"User-ID", "OUTAGE",
		"Interaction redundancy", "served by sparksql",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csireplay output missing %q", want)
		}
	}
}

func TestCsireplayUnknownScenario(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "csireplay"), "nope")
	if err := cmd.Run(); err == nil {
		t.Error("unknown scenario should exit nonzero")
	}
}
