package fuzzgen

import (
	"testing"

	"repro/internal/inject"
)

func TestCampaignFindsKnownDiscrepancies(t *testing.T) {
	res, err := RunCampaign(Options{Seed: 1, N: 300, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 300 {
		t.Errorf("generated = %d, want 300", res.Generated)
	}
	if res.TableCases <= res.Generated {
		t.Errorf("table cases = %d, want more than one per probe group on average", res.TableCases)
	}
	if len(res.KnownHit) < 10 {
		t.Errorf("known discrepancies hit = %v, want at least 10 of the 15", res.KnownHit)
	}
	if res.Failures == 0 || len(res.Clusters) == 0 {
		t.Error("campaign found nothing at all")
	}
}

func TestCampaignNewSignaturesAreOutsideRegistry(t *testing.T) {
	res, err := RunCampaign(Options{Seed: 2, N: 400, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	known := inject.BySignature()
	for _, s := range res.NewSigs {
		if _, ok := known[s]; ok {
			t.Errorf("signature %q reported new but is in the Figure-6 registry", s)
		}
	}
	for _, r := range res.Reproducers {
		if _, ok := known[r.Signature]; ok {
			t.Errorf("reproducer %q shrunk for a known signature", r.Signature)
		}
	}
}

// TestCampaignReproducersMinimizedAndReplayable: the acceptance
// contract on shrinking — minimized strictly no larger than original,
// and the minimized case still detects its signature.
func TestCampaignReproducersMinimizedAndReplayable(t *testing.T) {
	res, err := RunCampaign(Options{Seed: 2, N: 600, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reproducers) == 0 {
		t.Skip("seed found no new signatures at this budget")
	}
	for _, r := range res.Reproducers {
		if r.MinimizedSize > r.OriginalSize {
			t.Errorf("%s: minimized size %d > original %d", r.Signature, r.MinimizedSize, r.OriginalSize)
		}
		if got := r.Case.Size(); got != r.MinimizedSize {
			t.Errorf("%s: recorded minimized size %d, recomputed %d", r.Signature, r.MinimizedSize, got)
		}
		if !Detects(&r.Case, r.Signature) {
			t.Errorf("%s: minimized reproducer no longer detects its signature", r.Signature)
		}
	}
}

func TestCampaignRejectsNegativeParallel(t *testing.T) {
	if _, err := RunCampaign(Options{Seed: 1, N: 10, Parallel: -1}); err == nil {
		t.Fatal("want error for negative Parallel")
	}
	if _, err := RunCampaign(Options{Seed: 1, N: -5}); err == nil {
		t.Fatal("want error for negative N")
	}
}

func TestShrinkPreservesSignatureAndShrinks(t *testing.T) {
	// A hand-built case-collision schema with deliberate padding: two
	// extra columns, a removable conf key, and a long literal.
	c := Case{
		Columns: []ColumnSpec{
			{Name: "Amount", Type: "TINYINT", Literal: "5"},
			{Name: "aMOUNT", Type: "INT", Literal: "123456"},
			{Name: "Other", Type: "STRING", Literal: "'irrelevant-padding'"},
		},
		Conf: map[string]string{"spark.sql.session.timeZone": "UTC"},
		Assignments: []Assignment{
			{Plan: "w_sql_r_sql", Format: "orc"},
			{Plan: "w_sql_r_df", Format: "orc"},
		},
	}
	sig := "error-hive" // duplicate case-colliding columns
	if !Detects(&c, sig) {
		t.Fatal("hand-built collision case does not reproduce error-hive")
	}
	min := Shrink(c, sig)
	if !Detects(&min, sig) {
		t.Fatal("shrunk case lost the signature")
	}
	if min.Size() >= c.Size() {
		t.Errorf("shrink did not reduce size: %d -> %d", c.Size(), min.Size())
	}
	if len(min.Columns) > 2 {
		t.Errorf("shrink kept %d columns, the collision needs only 2", len(min.Columns))
	}
	if len(min.Conf) != 0 {
		t.Errorf("shrink kept irrelevant conf %v", min.Conf)
	}
	if len(min.Assignments) != 1 {
		t.Errorf("shrink kept %d assignments, want 1", len(min.Assignments))
	}
}
