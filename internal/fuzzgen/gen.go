package fuzzgen

import (
	"fmt"
	"strings"

	"repro/internal/confplane"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/versions"
)

// ColumnSpec is one generated column: a declared type and the SQL
// literal inserted into it. Valid records the inferred validity (see
// buildColumns); it is informational in persisted reproducers — replay
// re-infers it so hand-edited corpus files cannot go stale.
type ColumnSpec struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Literal string `json:"literal"`
	Valid   bool   `json:"valid"`
}

// Assignment pins a case to one plan (by its Figure-6 name, e.g.
// "w_sql_r_hive") and one backend format.
type Assignment struct {
	Plan   string `json:"plan"`
	Format string `json:"format"`
}

// Case is one generated probe group: a multi-column schema, a session
// configuration, and the interface/format assignments it runs under.
// Sibling assignments share column identity, which is what gives the
// differential oracle its pairs.
type Case struct {
	Seed        uint64            `json:"seed"`
	Columns     []ColumnSpec      `json:"columns"`
	Conf        map[string]string `json:"conf,omitempty"`
	Assignments []Assignment      `json:"assignments"`
	// Pair, when non-empty, runs the case on a version-skew deployment
	// ("wSpark/wHive->rSpark/rHive"). omitempty keeps pre-version corpus
	// files and case encodings byte-identical.
	Pair string `json:"pair,omitempty"`
}

// Size is the shrinker's metric: assignments + columns + configuration
// entries + total literal length. Every accepted shrink step strictly
// decreases it, so minimized reproducers are never larger than their
// originals.
func (c Case) Size() int {
	n := len(c.Assignments) + len(c.Columns) + len(c.Conf)
	for _, col := range c.Columns {
		n += len(col.Literal)
	}
	return n
}

// Generator produces deterministic random cases for one campaign seed.
type Generator struct {
	seed     uint64
	confPool []map[string]string
	plans    map[string][]core.Plan // family -> plans
	// pairPool, when non-empty, turns on the version axis: each case
	// draws a writer->reader pair (index 0 is the unskewed baseline, so
	// single-version behavior stays represented in every campaign).
	pairPool []string
}

// EnableVersions arms the version axis with the default pair matrix.
// The pair draw is a pure function of the case seed — independent of
// the column/assignment stream — so enabling versions changes no other
// draw of an existing case.
func (g *Generator) EnableVersions() {
	g.pairPool = g.pairPool[:0]
	for _, p := range versions.DefaultPairs() {
		g.pairPool = append(g.pairPool, p.String())
	}
}

// NewGenerator builds a generator. confs is the size of the per-campaign
// configuration pool (the first entry is always the default
// configuration, so defaults stay represented in every campaign).
func NewGenerator(seed uint64, confs int) *Generator {
	g := &Generator{seed: seed, plans: map[string][]core.Plan{}}
	for _, p := range core.Plans() {
		g.plans[p.Family] = append(g.plans[p.Family], p)
	}
	if confs < 1 {
		confs = 1
	}
	cr := NewRand(DeriveSeed(seed, -1))
	g.confPool = append(g.confPool, nil)
	for i := 1; i < confs; i++ {
		g.confPool = append(g.confPool, randomConf(cr))
	}
	return g
}

// ConfPool exposes the campaign's configuration pool (index 0 is the
// default configuration).
func (g *Generator) ConfPool() []map[string]string { return g.confPool }

// Case generates the index-th case of the campaign.
func (g *Generator) Case(index int) Case {
	seed := DeriveSeed(g.seed, index)
	r := NewRand(seed)
	c := Case{Seed: seed}
	c.Conf = g.confPool[r.Intn(len(g.confPool))]
	c.Columns = g.columns(r)
	c.Assignments = g.assignments(r)
	if len(g.pairPool) > 0 {
		pr := NewRand(DeriveSeed(seed, -2))
		c.Pair = g.pairPool[pr.Intn(len(g.pairPool))]
	}
	return c
}

// columns generates 1..4 columns. At most one column is drawn from the
// invalid-leaning strategies so a failing row has a single plausible
// culprit — that keeps oracle attribution sharp and shrinking short.
func (g *Generator) columns(r *Rand) []ColumnSpec {
	n := 1 + r.Intn(4)
	cols := make([]ColumnSpec, 0, n)
	names := columnNames(r, n)
	invalidAt := -1
	if r.Pct(35) {
		invalidAt = r.Intn(n)
	}
	for i := 0; i < n; i++ {
		typ := Pick(r, typePool)
		lit := genLiteral(r, typ, i == invalidAt)
		cols = append(cols, ColumnSpec{Name: names[i], Type: typ, Literal: lit})
	}
	return cols
}

// assignments picks the case's plan/format probes. Patterns mirror the
// differential oracle's grouping: interface pairs share a format within
// a family, format pairs share a plan, grids do both, and solo cases
// feed only the write-read and error-handling oracles.
func (g *Generator) assignments(r *Rand) []Assignment {
	families := []string{"ss", "sh", "hs"}
	family := Pick(r, families)
	plans := g.plans[family]
	formats := core.Formats()
	format := Pick(r, formats)
	switch r.Intn(10) {
	case 0: // solo
		return []Assignment{{Plan: Pick(r, plans).Name(), Format: format}}
	case 1, 2, 3: // interface pair: two plans of the family, one format
		a := r.Intn(len(plans))
		b := (a + 1 + r.Intn(len(plans)-1)) % len(plans)
		return []Assignment{
			{Plan: plans[a].Name(), Format: format},
			{Plan: plans[b].Name(), Format: format},
		}
	case 4, 5, 6: // format pair/triple: one plan across formats
		plan := Pick(r, plans).Name()
		out := []Assignment{{Plan: plan, Format: formats[0]}, {Plan: plan, Format: formats[1]}}
		if r.Pct(50) {
			out = append(out, Assignment{Plan: plan, Format: formats[2]})
		}
		return out
	default: // grid: two plans × two formats
		a := r.Intn(len(plans))
		b := (a + 1 + r.Intn(len(plans)-1)) % len(plans)
		f2 := formats[(indexOf(formats, format)+1+r.Intn(len(formats)-1))%len(formats)]
		return []Assignment{
			{Plan: plans[a].Name(), Format: format},
			{Plan: plans[a].Name(), Format: f2},
			{Plan: plans[b].Name(), Format: format},
			{Plan: plans[b].Name(), Format: f2},
		}
	}
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return 0
}

// randomConf assembles one session configuration through the
// cross-system configuration plane: a site layer under a session layer,
// exactly the §6.2.1 layering where silent overrides arise. The
// effective view is what the deployment runs under.
func randomConf(r *Rand) map[string]string {
	plane := confplane.New()
	plane.AddLayer("fuzz-site", randomLayer(r, 1+r.Intn(2)))
	if r.Pct(50) {
		plane.AddLayer("fuzz-session", randomLayer(r, 1+r.Intn(2)))
	}
	return plane.Effective()
}

func randomLayer(r *Rand, n int) map[string]string {
	out := map[string]string{}
	for i := 0; i < n; i++ {
		k := Pick(r, confKeys)
		out[k.key] = Pick(r, k.values)
	}
	return out
}

var confKeys = []struct {
	key    string
	values []string
}{
	{sparksim.ConfStoreAssignmentPolicy, []string{"ansi", "legacy"}},
	{sparksim.ConfAnsiEnabled, []string{"true", "false"}},
	{sparksim.ConfCharVarcharAsString, []string{"true", "false"}},
	{sparksim.ConfReadSideCharPadding, []string{"true", "false"}},
	{sparksim.ConfSessionTimeZone, []string{"UTC", "America/Los_Angeles", "Asia/Shanghai", "Europe/Rome"}},
	{sparksim.ConfWriteLegacyDecimal, []string{"true", "false"}},
	{sparksim.ConfDatetimeRebaseLegacy, []string{"true", "false"}},
	{sparksim.ConfCaseSensitive, []string{"true", "false"}},
}

var typePool = []string{
	"BOOLEAN", "TINYINT", "SMALLINT", "INT", "BIGINT",
	"FLOAT", "DOUBLE", "DECIMAL(10,2)", "DECIMAL(5,2)",
	"STRING", "CHAR(4)", "VARCHAR(4)", "BINARY",
	"DATE", "TIMESTAMP",
	"ARRAY<INT>", "ARRAY<TINYINT>", "MAP<STRING,INT>", "MAP<INT,STRING>",
	"STRUCT<a:INT,b:STRING>",
}

// baseNames seeds column-name generation; mutations produce the
// case-collision pairs the schema planes disagree about.
var baseNames = []string{"FuzzCol", "MixedCase", "Value", "Payload", "RowKey", "Extra", "Amount", "Label"}

// reservedNames are SQL keywords used as identifiers — legal through
// some interfaces, rejected by others.
var reservedNames = []string{"table", "select", "date", "timestamp", "insert", "format"}

// columnNames produces n distinct-ish names: mixed-case bases with
// occasional reserved words, and occasionally a case-collision twin of
// an earlier column.
func columnNames(r *Rand, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i > 0 && r.Pct(12):
			out = append(out, flipCase(out[r.Intn(i)]))
		case r.Pct(8):
			out = append(out, Pick(r, reservedNames))
		default:
			name := Pick(r, baseNames)
			if r.Pct(50) {
				name = fmt.Sprintf("%s%d", name, r.Intn(100))
			}
			if r.Pct(25) {
				name = flipCase(name)
			}
			out = append(out, name)
		}
	}
	return out
}

func flipCase(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
			b.WriteRune(c - 32)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + 32)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// genLiteral produces a SQL literal for the type. invalid leans the
// draw toward boundary-violating and malformed values; validity is
// ultimately inferred at build time (buildColumns), not here.
func genLiteral(r *Rand, typ string, invalid bool) string {
	kind := typ
	if i := strings.IndexAny(typ, "(<"); i > 0 {
		kind = typ[:i]
	}
	if r.Pct(6) {
		return "NULL"
	}
	switch kind {
	case "BOOLEAN":
		if invalid {
			return Pick(r, []string{"'yes'", "'no'", "'maybe'", "'2'"})
		}
		return Pick(r, []string{"true", "false", "'true'", "'false'"})
	case "TINYINT":
		if invalid {
			return Pick(r, []string{fmt.Sprint(128 + r.Intn(500)), fmt.Sprint(-129 - r.Intn(500)), "'abc'"})
		}
		return fmt.Sprint(-128 + r.Intn(256))
	case "SMALLINT":
		if invalid {
			return Pick(r, []string{fmt.Sprint(32768 + r.Intn(100000)), fmt.Sprint(-32769 - r.Intn(100000)), "'x'"})
		}
		return fmt.Sprint(-32768 + r.Intn(65536))
	case "INT":
		if invalid {
			return Pick(r, []string{fmt.Sprint(int64(2147483648) + int64(r.Intn(1<<30))), fmt.Sprint(int64(-2147483649) - int64(r.Intn(1<<30))), "'zzz'"})
		}
		return Pick(r, []string{fmt.Sprint(r.Intn(1 << 31)), "-2147483648", "2147483647", fmt.Sprint(-r.Intn(1 << 31))})
	case "BIGINT":
		if invalid {
			return Pick(r, []string{"'99999999999999999999999'", "'pqr'"})
		}
		return Pick(r, []string{fmt.Sprint(int64(r.Uint64() >> 1)), "9223372036854775807", "-9223372036854775808"})
	case "FLOAT", "DOUBLE":
		if invalid {
			return Pick(r, []string{"'NaN'", "'Infinity'", "'-Infinity'", "'abc'"})
		}
		return Pick(r, []string{
			fmt.Sprintf("%d.%d", r.Intn(1000), r.Intn(100)),
			fmt.Sprintf("-%d.%d", r.Intn(1000), r.Intn(100)),
			fmt.Sprintf("%d.5e%d", r.Intn(10), r.Intn(6)),
		})
	case "DECIMAL":
		if invalid {
			return Pick(r, []string{
				fmt.Sprintf("%d.%05d", r.Intn(100), r.Intn(100000)), // excess scale
				fmt.Sprintf("%d", 1000000+r.Intn(1000000)),          // too wide for (5,2) and (10,2) stays valid
				"'abc'",
			})
		}
		return fmt.Sprintf("%d.%02d", r.Intn(999), r.Intn(100))
	case "STRING":
		return Pick(r, []string{
			fmt.Sprintf("'s_%d'", r.Intn(10000)),
			"''",
			"'héllo wörld'",
			"'it''s'",
			fmt.Sprintf("'%s'", strings.Repeat("x", 1+r.Intn(12))),
		})
	case "CHAR", "VARCHAR":
		if invalid {
			return fmt.Sprintf("'%s'", strings.Repeat("y", 5+r.Intn(8)))
		}
		return fmt.Sprintf("'%s'", strings.Repeat("a", 1+r.Intn(4)))
	case "BINARY":
		return Pick(r, []string{"X'CAFEBABE'", "X''", fmt.Sprintf("X'%02X'", r.Intn(256))})
	case "DATE":
		if invalid {
			return Pick(r, []string{
				fmt.Sprintf("'2021-02-%d'", 30+r.Intn(10)),
				fmt.Sprintf("'2021-%d-01'", 13+r.Intn(10)),
				"'not-a-date'",
			})
		}
		return Pick(r, []string{
			fmt.Sprintf("DATE '20%02d-%02d-%02d'", r.Intn(40), 1+r.Intn(12), 1+r.Intn(28)),
			fmt.Sprintf("DATE '1%d00-06-01'", 5+r.Intn(4)), // pre-Gregorian territory
			"DATE '1970-01-01'",
		})
	case "TIMESTAMP":
		if invalid {
			return Pick(r, []string{
				fmt.Sprintf("'2021-01-01 %d:00:00'", 25+r.Intn(10)),
				fmt.Sprintf("'2021-02-30 %02d:00:00'", r.Intn(24)),
			})
		}
		return fmt.Sprintf("TIMESTAMP '20%02d-%02d-%02d %02d:%02d:%02d'",
			r.Intn(40), 1+r.Intn(12), 1+r.Intn(28), r.Intn(24), r.Intn(60), r.Intn(60))
	case "ARRAY":
		elem := func() string { return fmt.Sprint(r.Intn(128)) }
		switch r.Intn(3) {
		case 0:
			return "ARRAY()"
		case 1:
			return fmt.Sprintf("ARRAY(%s)", elem())
		default:
			return fmt.Sprintf("ARRAY(%s, %s)", elem(), elem())
		}
	case "MAP":
		if strings.HasPrefix(typ, "MAP<INT") {
			return fmt.Sprintf("MAP(%d, 'v%d')", r.Intn(100), r.Intn(100))
		}
		return fmt.Sprintf("MAP('k%d', %d)", r.Intn(100), r.Intn(100))
	case "STRUCT":
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("NAMED_STRUCT('a', %d, 'b', 's%d')", r.Intn(100), r.Intn(100))
		case 1:
			return "NAMED_STRUCT('a', NULL, 'b', NULL)"
		default:
			return fmt.Sprintf("NAMED_STRUCT('a', %d, 'b', NULL)", r.Intn(100))
		}
	}
	return "NULL"
}
