package fuzzgen

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42, 6)
	b := NewGenerator(42, 6)
	if !reflect.DeepEqual(a.ConfPool(), b.ConfPool()) {
		t.Fatal("conf pools differ for identical seeds")
	}
	for i := 0; i < 200; i++ {
		ca, cb := a.Case(i), b.Case(i)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("case %d differs: %+v vs %+v", i, ca, cb)
		}
	}
}

func TestGeneratorCaseRegenerableOutOfOrder(t *testing.T) {
	g := NewGenerator(42, 6)
	want := g.Case(137)
	// A fresh generator asked only for case 137 must produce the same
	// case — per-case seeds, not a shared stream.
	if got := NewGenerator(42, 6).Case(137); !reflect.DeepEqual(got, want) {
		t.Fatal("case 137 not regenerable in isolation")
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(1, 6).Case(0)
	b := NewGenerator(2, 6).Case(0)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different campaign seeds produced identical first cases")
	}
}

func TestGeneratedCasesAreWellFormed(t *testing.T) {
	g := NewGenerator(7, 6)
	formats := map[string]bool{}
	for _, f := range core.Formats() {
		formats[f] = true
	}
	for i := 0; i < 500; i++ {
		c := g.Case(i)
		if len(c.Columns) < 1 || len(c.Columns) > maxColumnsPerCase {
			t.Fatalf("case %d: %d columns", i, len(c.Columns))
		}
		if len(c.Assignments) < 1 {
			t.Fatalf("case %d: no assignments", i)
		}
		for _, a := range c.Assignments {
			if _, ok := planByName[a.Plan]; !ok {
				t.Fatalf("case %d: unknown plan %q", i, a.Plan)
			}
			if !formats[a.Format] {
				t.Fatalf("case %d: unknown format %q", i, a.Format)
			}
		}
		// Every case must materialize into executable table cases.
		tables, err := TableCases(&c, i)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(tables) != len(c.Assignments) {
			t.Fatalf("case %d: %d tables for %d assignments", i, len(tables), len(c.Assignments))
		}
	}
}

func TestBuildColumnsInfersValidity(t *testing.T) {
	c := Case{
		Columns: []ColumnSpec{
			{Name: "A", Type: "TINYINT", Literal: "5"},
			{Name: "B", Type: "TINYINT", Literal: "999"},
			{Name: "C", Type: "BOOLEAN", Literal: "'maybe'"},
		},
	}
	cols := buildColumns(&c, 100)
	if !cols[0].Input.Valid {
		t.Error("in-range TINYINT inferred invalid")
	}
	if cols[1].Input.Valid {
		t.Error("overflowing TINYINT inferred valid")
	}
	if cols[2].Input.Valid {
		t.Error("junk BOOLEAN inferred valid")
	}
	if cols[0].Input.ID != 100 || cols[2].Input.ID != 102 {
		t.Errorf("IDs = %d,%d, want consecutive from base", cols[0].Input.ID, cols[2].Input.ID)
	}
}
