package fuzzgen

import (
	"testing"

	"repro/internal/versions"
)

// The version axis is strictly additive: enabling it attaches a pair to
// every case without disturbing a single other draw, and disabling it
// leaves case encodings (and therefore pinned campaign hashes) exactly
// as before the axis existed.
func TestVersionAxisDoesNotPerturbCases(t *testing.T) {
	plain := NewGenerator(11, 4)
	armed := NewGenerator(11, 4)
	armed.EnableVersions()
	sawSkewed := false
	pairs := map[string]bool{}
	for i := 0; i < 60; i++ {
		p, a := plain.Case(i), armed.Case(i)
		if p.Pair != "" {
			t.Fatalf("case %d of a plain generator carries pair %q", i, p.Pair)
		}
		if a.Pair == "" {
			t.Fatalf("case %d of an armed generator carries no pair", i)
		}
		pr, err := versions.ParsePair(a.Pair)
		if err != nil {
			t.Fatalf("case %d drew invalid pair %q: %v", i, a.Pair, err)
		}
		if pr.Skewed() {
			sawSkewed = true
		}
		pairs[a.Pair] = true
		// Strip the pair; everything else must be identical.
		a.Pair = ""
		if summarizeCase(p) != summarizeCase(a) || p.Seed != a.Seed {
			t.Fatalf("case %d differs beyond the pair:\n plain %s\n armed %s",
				i, summarizeCase(p), summarizeCase(a))
		}
	}
	if !sawSkewed {
		t.Error("60 cases never drew a skewed pair")
	}
	if len(pairs) < 2 {
		t.Errorf("60 cases drew only %d distinct pairs", len(pairs))
	}
}

// A versioned campaign stays bit-reproducible across parallelism and
// crosses the upgrade boundary: version-gated signatures appear that
// the same seed never produces single-version.
func TestVersionedCampaignDeterministicAndSkewed(t *testing.T) {
	opts := Options{Seed: 11, N: 60, Confs: 3, Versions: true}
	base, err := RunCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 8} {
		o := opts
		o.Parallel = parallel
		res, err := RunCampaign(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hash() != base.Hash() {
			t.Errorf("versioned campaign hash differs at parallel=%d", parallel)
		}
	}
	plain := opts
	plain.Versions = false
	single, err := RunCampaign(plain)
	if err != nil {
		t.Fatal(err)
	}
	if single.Hash() == base.Hash() {
		t.Error("version axis did not change the campaign outcome")
	}
	singleSigs := map[string]bool{}
	for _, cl := range single.Clusters {
		singleSigs[cl.Signature] = true
	}
	skewOnly := 0
	for _, cl := range base.Clusters {
		if !singleSigs[cl.Signature] {
			skewOnly++
		}
	}
	if skewOnly == 0 {
		t.Error("versioned campaign produced no signature the single-version campaign lacks")
	}
}

// A reproducer carrying a version pair replays on the skew deployment:
// Execute honors Case.Pair and rejects an unknown one.
func TestExecuteHonorsCasePair(t *testing.T) {
	c := Case{
		Columns:     []ColumnSpec{{Name: "c", Type: "CHAR(4)", Literal: "'ab'"}},
		Assignments: []Assignment{{Plan: "w_sql_r_hive", Format: "parquet"}},
		Pair:        "2.3.0/2.3.9->3.2.1/3.1.2",
	}
	res, err := Execute(&c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) == 0 {
		t.Fatal("versioned Execute ran no cases")
	}
	c.Pair = "1.6.0/2.3.9->3.2.1/3.1.2"
	if _, err := Execute(&c, 1); err == nil {
		t.Error("Execute accepted an unknown version profile")
	}
}
