package fuzzgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/versions"
)

// Options configure a campaign.
type Options struct {
	// Context, when non-nil, makes the campaign cancellable between
	// (and inside) configuration batches: a cancelled campaign stops
	// executing, marks the partial result Cancelled, and still
	// clusters and renders what ran — the flush-on-SIGTERM path of
	// crossfuzz and the per-job cancellation path of crossd.
	Context context.Context
	// Seed is the campaign seed; a fixed (Seed, N) pair is reproducible
	// run-to-run, bit for bit.
	Seed uint64
	// N is the number of generated probe groups.
	N int
	// From offsets the generated index range to [From, From+N): a
	// coordinator shards a campaign into contiguous seed ranges whose
	// cases, table labels, and failure ranks are exactly the slices the
	// full campaign would produce (g.Case(i) is pure in i). 0 — the
	// whole campaign — is the default and leaves pre-existing
	// fixed-seed hashes untouched.
	From int
	// Parallel is the harness worker count per batch (values below 2
	// run sequentially; negative is an error).
	Parallel int
	// Budget bounds campaign wall time (0 = none). A budget-stopped
	// campaign is NOT reproducible — the report says so.
	Budget time.Duration
	// Confs is the configuration-pool size (default 6; minimum 1, the
	// default configuration).
	Confs int
	// Versions arms the version axis: each case additionally draws a
	// writer->reader version pair from versions.DefaultPairs() and runs
	// on the matching skew deployment. Off by default — the version
	// axis changes every case, so fixed-seed campaign hashes pinned
	// before it existed stay valid.
	Versions bool
	// CorpusDir, when set, dedups new signatures against the persisted
	// corpus and is where Promote writes reproducers.
	CorpusDir string
	// Tracer and Metrics thread the observability layer through every
	// batch, exactly as in core.Run.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// OnFailure, when non-nil, receives every oracle failure as its
	// batch completes (deterministic order within a batch) — crossd's
	// NDJSON stream endpoint feeds from it.
	OnFailure func(core.Failure)
}

// Cluster is one failure signature's campaign-level tally.
type Cluster struct {
	Signature string
	Known     int // discrepancy number in the Figure-6 registry, 0 if new
	Count     int
	Example   string
	// FirstRank orders the cluster's first failure within the campaign's
	// global emission order: the (configuration × version-pair) cell
	// ordinal, then the failure's core rank, 0x1f-separated. Merging
	// shard clusters by minimum FirstRank reproduces the Example (and
	// reproducer seed case) the unsharded campaign picks.
	FirstRank string
}

// Reproducer is one minimized new-signature failure, as persisted to
// the regression corpus.
type Reproducer struct {
	Signature     string `json:"signature"`
	Detail        string `json:"detail"`
	OriginalSize  int    `json:"original_size"`
	MinimizedSize int    `json:"minimized_size"`
	Case          Case   `json:"case"`
}

// Result is a campaign's outcome.
type Result struct {
	Opts        Options
	Generated   int
	Executed    int // probe groups actually run (< Generated when budget-stopped)
	TableCases  int
	Failures    int
	Clusters    []Cluster
	KnownHit    []int
	NewSigs     []string
	Reproducers []*Reproducer
	Stopped     bool
	// Cancelled marks a campaign stopped by its Context (SIGTERM in
	// crossfuzz, job cancellation or timeout in crossd); like Stopped,
	// the partial report is flushed but not reproducible.
	Cancelled bool
	Elapsed   time.Duration
}

// RunCampaign generates opts.N cases, executes them batched by session
// configuration through core.RunTables, clusters the failures, and
// shrinks the first-seen case of every signature outside the Figure-6
// registry (and outside the persisted corpus) to a minimal reproducer.
func RunCampaign(opts Options) (*Result, error) {
	if opts.Parallel < 0 {
		return nil, fmt.Errorf("fuzzgen: Parallel must be non-negative, got %d", opts.Parallel)
	}
	if opts.N < 0 {
		return nil, fmt.Errorf("fuzzgen: N must be non-negative, got %d", opts.N)
	}
	if opts.From < 0 {
		return nil, fmt.Errorf("fuzzgen: From must be non-negative, got %d", opts.From)
	}
	if opts.Confs == 0 {
		opts.Confs = 6
	}
	started := time.Now() //crossvet:wallclock Elapsed is operator-facing; the campaign hash covers Render, which excludes it
	deadline := time.Time{}
	if opts.Budget > 0 {
		deadline = started.Add(opts.Budget)
	}

	g := NewGenerator(opts.Seed, opts.Confs)
	if opts.Versions {
		g.EnableVersions()
	}
	res := &Result{Opts: opts}

	// Known signatures: the Figure-6 registry plus whatever the corpus
	// already holds — a signature is only "new" once.
	knownSigs := inject.BySignature()
	corpusSigs := map[string]bool{}
	if opts.CorpusDir != "" {
		existing, err := LoadCorpus(opts.CorpusDir)
		if err != nil {
			return nil, err
		}
		for _, r := range existing {
			corpusSigs[r.Signature] = true
		}
	}

	// Generate everything up front (generation is cheap and pure), then
	// batch by configuration-pool index so each deployment is stood up
	// once per configuration.
	type genCase struct {
		index int
		c     Case
		conf  int
	}
	cases := make([]*genCase, 0, opts.N)
	confIndex := map[string]int{}
	for i, conf := range g.ConfPool() {
		confIndex[confKey(conf)] = i
	}
	for i := opts.From; i < opts.From+opts.N; i++ {
		c := g.Case(i)
		cases = append(cases, &genCase{index: i, c: c, conf: confIndex[confKey(c.Conf)]})
	}
	res.Generated = len(cases)

	// Batches are (configuration, version pair) cells so each deployment
	// is stood up once per cell. Without the version axis the pair order
	// is the single empty spec — the pre-version batching, bit for bit.
	pairOrder := []string{""}
	if opts.Versions {
		pairOrder = pairOrder[:0]
		for _, p := range versions.DefaultPairs() {
			pairOrder = append(pairOrder, p.String())
		}
	}
	clusters := map[string]*Cluster{}
	firstBySig := map[string]*genCase{}
batches:
	for confIdx := 0; confIdx < len(g.ConfPool()); confIdx++ {
		for pairIdx, pairSpec := range pairOrder {
			if ctxCancelled(opts.Context) {
				res.Cancelled = true
				break batches
			}
			//crossvet:wallclock Budget is a real-time stop knob; a budget-stopped run is marked Stopped, not pinned
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.Stopped = true
				break batches
			}
			var batch []*core.TableCase
			owner := map[*core.TableCase]*genCase{}
			groups := 0
			for _, gc := range cases {
				if gc.conf != confIdx || gc.c.Pair != pairSpec {
					continue
				}
				tables, err := TableCases(&gc.c, gc.index)
				if err != nil {
					return nil, err
				}
				for _, tc := range tables {
					owner[tc] = gc
				}
				batch = append(batch, tables...)
				groups++
			}
			if len(batch) == 0 {
				continue
			}
			ro := core.RunOptions{
				Context:   opts.Context,
				SparkConf: g.ConfPool()[confIdx],
				Parallel:  opts.Parallel,
				Tracer:    opts.Tracer,
				Metrics:   opts.Metrics,
				OnFailure: opts.OnFailure,
			}
			if pairSpec != "" {
				pair, err := versions.ParsePair(pairSpec)
				if err != nil {
					return nil, err
				}
				ro.Versions = &pair
			}
			run, err := core.RunTables(batch, ro)
			if err != nil {
				// A mid-batch cancellation drops the incomplete batch (its
				// oracle verdicts would be partial) but keeps everything
				// already executed; any other error aborts the campaign.
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					res.Cancelled = true
					break batches
				}
				return nil, err
			}
			res.Executed += groups
			res.TableCases += len(batch)
			res.Failures += len(run.Failures)
			cellOrd := confIdx*len(pairOrder) + pairIdx
			for _, f := range run.Failures {
				cl, ok := clusters[f.Signature]
				if !ok {
					cl = &Cluster{
						Signature: f.Signature,
						// Within a batch emission order equals rank order,
						// and batches run in cell order — so cell ordinal +
						// rank is the failure's global position.
						FirstRank: fmt.Sprintf("%08d\x1f%s", cellOrd, f.Rank),
					}
					if d, known := knownSigs[f.Signature]; known {
						cl.Known = d.Number
					}
					clusters[f.Signature] = cl
				}
				cl.Count++
				if cl.Example == "" {
					cl.Example = f.Detail
				}
				if _, seen := firstBySig[f.Signature]; !seen {
					// Failures attach to table cases via their label;
					// recover the owning generated case for shrinking.
					for tc, gc := range owner {
						if tc.Label == f.Case.Table {
							firstBySig[f.Signature] = gc
							break
						}
					}
				}
			}
		}
	}

	sigs := make([]string, 0, len(clusters))
	for s := range clusters {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	knownSet := map[int]bool{}
	for _, s := range sigs {
		cl := clusters[s]
		res.Clusters = append(res.Clusters, *cl)
		if cl.Known > 0 {
			knownSet[cl.Known] = true
			continue
		}
		res.NewSigs = append(res.NewSigs, s)
		if corpusSigs[s] {
			continue // already in the regression corpus
		}
		gc, ok := firstBySig[s]
		if !ok {
			continue
		}
		orig := cloneCase(gc.c)
		min := Shrink(orig, s)
		res.Reproducers = append(res.Reproducers, &Reproducer{
			Signature:     s,
			Detail:        cl.Example,
			OriginalSize:  orig.Size(),
			MinimizedSize: min.Size(),
			Case:          min,
		})
	}
	for n := range knownSet {
		res.KnownHit = append(res.KnownHit, n)
	}
	sort.Ints(res.KnownHit)
	res.Elapsed = time.Since(started) //crossvet:wallclock Elapsed is operator-facing; the campaign hash covers Render, which excludes it
	return res, nil
}

// Promote writes the campaign's minimized reproducers into the corpus
// directory and returns the files written.
func (res *Result) Promote(dir string) ([]string, error) {
	var files []string
	for _, r := range res.Reproducers {
		f, err := WriteReproducer(dir, r)
		if err != nil {
			return files, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ctxCancelled reports whether a (possibly nil) context is done.
func ctxCancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// confKey fingerprints a configuration for batching.
func confKey(conf map[string]string) string {
	keys := make([]string, 0, len(conf))
	for k := range conf {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, conf[k])
	}
	return b.String()
}

// Render produces the campaign report. It contains no timing, so a
// fixed-seed unbudgeted campaign renders byte-identically run-to-run
// and across Parallel settings — Hash over it is the reproducibility
// check.
func (res *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-system fuzz campaign\n")
	fmt.Fprintf(&b, "==========================\n")
	fmt.Fprintf(&b, "seed=%d n=%d confs=%d", res.Opts.Seed, res.Opts.N, res.Opts.Confs)
	if res.Opts.From > 0 {
		// Printed only on shard runs, so whole-campaign hashes pinned
		// before sharding existed stay valid.
		fmt.Fprintf(&b, " from=%d", res.Opts.From)
	}
	fmt.Fprintf(&b, "\n")
	if res.Opts.Versions {
		// Printed only when the version axis is armed, so pre-version
		// campaign hashes are untouched.
		fmt.Fprintf(&b, "versions=on pairs=%d\n", len(versions.DefaultPairs()))
	}
	fmt.Fprintf(&b, "probe groups: %d, table cases: %d, oracle failures: %d\n", res.Executed, res.TableCases, res.Failures)
	if res.Stopped {
		fmt.Fprintf(&b, "NOTE: budget exhausted after %d of %d probe groups; this report is not reproducible\n", res.Executed, res.Generated)
	}
	if res.Cancelled {
		fmt.Fprintf(&b, "NOTE: stopped early (cancelled) after %d of %d probe groups; this report is partial and not reproducible\n", res.Executed, res.Generated)
	}
	fmt.Fprintf(&b, "\nclusters (%d):\n", len(res.Clusters))
	for _, cl := range res.Clusters {
		tag := "new"
		if cl.Known > 0 {
			tag = fmt.Sprintf("known #%d", cl.Known)
		}
		fmt.Fprintf(&b, "  %-28s %6d  (%s)\n", cl.Signature, cl.Count, tag)
		fmt.Fprintf(&b, "      example: %s\n", cl.Example)
	}
	fmt.Fprintf(&b, "\nknown discrepancies hit: %v\n", res.KnownHit)
	fmt.Fprintf(&b, "new signatures: %v\n", res.NewSigs)
	if len(res.Reproducers) > 0 {
		fmt.Fprintf(&b, "\nminimized reproducers:\n")
		for _, r := range res.Reproducers {
			fmt.Fprintf(&b, "  %-28s size %d -> %d: %s\n", r.Signature, r.OriginalSize, r.MinimizedSize, summarizeCase(r.Case))
		}
	}
	return b.String()
}

// Hash is the reproducibility fingerprint: sha256 over the rendered
// report.
func (res *Result) Hash() string {
	sum := sha256.Sum256([]byte(res.Render()))
	return hex.EncodeToString(sum[:])
}

func summarizeCase(c Case) string {
	var cols []string
	for _, col := range c.Columns {
		cols = append(cols, fmt.Sprintf("%s %s = %s", col.Name, col.Type, col.Literal))
	}
	var asn []string
	for _, a := range c.Assignments {
		asn = append(asn, a.Plan+"/"+a.Format)
	}
	s := fmt.Sprintf("[%s] via %s", strings.Join(cols, ", "), strings.Join(asn, ", "))
	if len(c.Conf) > 0 {
		s += " conf " + confKey(c.Conf)
	}
	return s
}
