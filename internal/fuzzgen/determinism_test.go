package fuzzgen

import "testing"

// TestCampaignDeterministicAcrossParallelism is the race-focused
// reproducibility contract: the same campaign under Parallel: 8 and
// Parallel: 1 must render byte-identical reports — concurrency is an
// execution detail, and any ordering leak (map iteration, merge order,
// shared state) breaks the fixed-seed guarantee. Run under -race this
// also shakes out data races in the shared deployment.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	concurrent, err := RunCampaign(Options{Seed: 99, N: 250, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := RunCampaign(Options{Seed: 99, N: 250, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	cr, sr := concurrent.Render(), sequential.Render()
	if cr != sr {
		t.Errorf("reports differ between Parallel 8 and 1:\n--- parallel ---\n%s\n--- sequential ---\n%s", cr, sr)
	}
	if concurrent.Hash() != sequential.Hash() {
		t.Errorf("report hashes differ: %s vs %s", concurrent.Hash(), sequential.Hash())
	}
}

// TestCampaignDeterministicRunToRun: same options, two runs, identical
// hash — the reproducibility half of the acceptance criteria.
func TestCampaignDeterministicRunToRun(t *testing.T) {
	a, err := RunCampaign(Options{Seed: 5, N: 200, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(Options{Seed: 5, N: 200, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("fixed-seed campaign not reproducible: %s vs %s", a.Hash(), b.Hash())
	}
}
