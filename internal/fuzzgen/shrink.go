package fuzzgen

import "sort"

// Shrink delta-debugs a failing case down to a minimal reproducer for
// one signature: drop assignments, drop columns, drop configuration
// keys, then simplify literals, repeating until a fixpoint. Every
// accepted step strictly decreases Case.Size, so the result is never
// larger than the input and termination is guaranteed. The predicate
// re-executes the candidate sequentially, so shrinking is deterministic
// for a given (case, signature).
func Shrink(c Case, signature string) Case {
	best := cloneCase(c)
	if !Detects(&best, signature) {
		// Not reproducible in isolation (e.g. it needed another case's
		// tables): return the original untouched.
		return best
	}
	for changed := true; changed; {
		changed = false
		// Pass 1: drop assignments, keeping at least one.
		for i := 0; len(best.Assignments) > 1 && i < len(best.Assignments); i++ {
			cand := cloneCase(best)
			cand.Assignments = append(cand.Assignments[:i], cand.Assignments[i+1:]...)
			if Detects(&cand, signature) {
				best = cand
				changed = true
				i--
			}
		}
		// Pass 2: drop columns, keeping at least one.
		for i := 0; len(best.Columns) > 1 && i < len(best.Columns); i++ {
			cand := cloneCase(best)
			cand.Columns = append(cand.Columns[:i], cand.Columns[i+1:]...)
			if Detects(&cand, signature) {
				best = cand
				changed = true
				i--
			}
		}
		// Pass 3: drop configuration keys (sorted for determinism).
		keys := make([]string, 0, len(best.Conf))
		for k := range best.Conf {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cand := cloneCase(best)
			delete(cand.Conf, k)
			if len(cand.Conf) == 0 {
				cand.Conf = nil
			}
			if Detects(&cand, signature) {
				best = cand
				changed = true
			}
		}
		// Pass 4: simplify literals toward strictly shorter canonical
		// spellings.
		for i := range best.Columns {
			for _, lit := range simplerLiterals(best.Columns[i].Literal) {
				cand := cloneCase(best)
				cand.Columns[i].Literal = lit
				if Detects(&cand, signature) {
					best = cand
					changed = true
					break
				}
			}
		}
	}
	return best
}

// simplerLiterals proposes strictly shorter replacement literals, most
// aggressive first. Candidates keep SQL well-formedness; whether the
// replacement preserves the failure is the predicate's job.
func simplerLiterals(lit string) []string {
	var out []string
	for _, cand := range []string{"0", "''", "NULL", "'a'", "1.0"} {
		if len(cand) < len(lit) {
			out = append(out, cand)
		}
	}
	// Halve long quoted strings: 'xxxxxxxx' -> 'xxxx'.
	if n := len(lit); n > 6 && lit[0] == '\'' && lit[n-1] == '\'' {
		body := lit[1 : n-1]
		out = append(out, "'"+body[:len(body)/2]+"'")
	}
	return out
}
