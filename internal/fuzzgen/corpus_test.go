package fuzzgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/inject"
)

// corpusDir is the repo-level discrepancy regression corpus.
const corpusDir = "../../testdata/fuzzcorpus"

// TestRegressionCorpusReplays is the forever-test: every reproducer a
// past campaign promoted must still fail with its recorded signature.
// A change that "fixes" one of these should consciously delete the
// file, not silently stop detecting the discrepancy.
func TestRegressionCorpusReplays(t *testing.T) {
	corpus, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("regression corpus is empty — expected the seeded reproducers")
	}
	known := inject.BySignature()
	for _, r := range corpus {
		r := r
		t.Run(r.Signature, func(t *testing.T) {
			if _, ok := known[r.Signature]; ok {
				t.Errorf("corpus entry %q duplicates a Figure-6 registry signature", r.Signature)
			}
			ok, err := Replay(r)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("reproducer no longer detects %q: %s", r.Signature, summarizeCase(r.Case))
			}
			if r.MinimizedSize > r.OriginalSize {
				t.Errorf("minimized size %d > original %d", r.MinimizedSize, r.OriginalSize)
			}
		})
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := &Reproducer{
		Signature:     "test-sig",
		Detail:        "example",
		OriginalSize:  10,
		MinimizedSize: 4,
		Case: Case{
			Seed:        7,
			Columns:     []ColumnSpec{{Name: "C", Type: "INT", Literal: "1", Valid: true}},
			Conf:        map[string]string{"spark.sql.ansi.enabled": "false"},
			Assignments: []Assignment{{Plan: "w_sql_r_sql", Format: "orc"}},
		},
	}
	path, err := WriteReproducer(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "test-sig.json" {
		t.Errorf("file name = %s", filepath.Base(path))
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d reproducers, want 1", len(loaded))
	}
	got := loaded[0]
	if got.Signature != r.Signature || got.Case.Seed != r.Case.Seed ||
		len(got.Case.Columns) != 1 || got.Case.Conf["spark.sql.ansi.enabled"] != "false" {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}

// TestLoadCorpusRejectsUnknownField: decoding is strict, so a typoed
// reproducer field (here "signatur") fails loudly instead of being
// dropped and replaying a half-empty case.
func TestLoadCorpusRejectsUnknownField(t *testing.T) {
	dir := t.TempDir()
	corrupt := []byte(`{
  "signatur": "typo-field",
  "detail": "example",
  "original_size": 10,
  "minimized_size": 4,
  "case": {
    "seed": 7,
    "columns": [{"name": "C", "type": "INT", "literal": "1", "valid": true}],
    "assignments": [{"plan": "w_sql_r_sql", "format": "orc"}]
  }
}`)
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCorpus(dir)
	if err == nil {
		t.Fatal("LoadCorpus accepted a corpus file with an unknown field")
	}
	if !strings.Contains(err.Error(), "corrupt.json") || !strings.Contains(err.Error(), "signatur") {
		t.Errorf("error does not name the file and field: %v", err)
	}
}

// Malformed JSON (not just unknown fields) must also name the file.
func TestLoadCorpusRejectsMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("LoadCorpus accepted malformed JSON")
	}
}

func TestLoadCorpusMissingDirIsEmpty(t *testing.T) {
	out, err := LoadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil || out != nil {
		t.Errorf("missing dir: out=%v err=%v, want nil/nil", out, err)
	}
}

// TestCampaignDedupsAgainstCorpus: a signature already persisted must
// not be re-shrunk or re-promoted by a later campaign.
func TestCampaignDedupsAgainstCorpus(t *testing.T) {
	res, err := RunCampaign(Options{Seed: 2, N: 600, Parallel: 4, CorpusDir: corpusDir})
	if err != nil {
		t.Fatal(err)
	}
	existing, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	persisted := map[string]bool{}
	for _, r := range existing {
		persisted[r.Signature] = true
	}
	for _, r := range res.Reproducers {
		if persisted[r.Signature] {
			t.Errorf("campaign re-minimized already-persisted signature %q", r.Signature)
		}
	}
}
