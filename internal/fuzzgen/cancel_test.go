package fuzzgen

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// A pre-cancelled campaign flushes a partial (here: empty) result with
// the Cancelled marker instead of erroring out — the contract the
// crossfuzz signal handler and crossd job cancellation rely on.
func TestCampaignCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCampaign(Options{Context: ctx, Seed: 1, N: 50, Parallel: 2})
	if err != nil {
		t.Fatalf("cancelled campaign errored: %v", err)
	}
	if !res.Cancelled {
		t.Fatal("result not marked Cancelled")
	}
	if res.Executed != 0 {
		t.Errorf("pre-cancelled campaign executed %d probe groups", res.Executed)
	}
	if !strings.Contains(res.Render(), "stopped early (cancelled)") {
		t.Errorf("Render missing the stopped-early marker:\n%s", res.Render())
	}
	if res.Hash() == "" {
		t.Error("partial report has no hash")
	}
}

// An uncancelled context must not perturb the campaign: same report
// hash as a context-free run (bit-identical determinism is what the
// crossd result cache keys on).
func TestCampaignContextTransparent(t *testing.T) {
	base, err := RunCampaign(Options{Seed: 11, N: 120, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := RunCampaign(Options{Context: context.Background(), Seed: 11, N: 120, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() != withCtx.Hash() {
		t.Errorf("report hash changed under a live context: %s vs %s", base.Hash(), withCtx.Hash())
	}
}

// OnFailure receives exactly the campaign's failures.
func TestCampaignOnFailureCount(t *testing.T) {
	streamed := 0
	res, err := RunCampaign(Options{Seed: 3, N: 80, Parallel: 1, OnFailure: func(core.Failure) { streamed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != res.Failures {
		t.Errorf("streamed %d failures, campaign counted %d", streamed, res.Failures)
	}
	if streamed == 0 {
		t.Error("expected at least one failure from seed 3 / n 80")
	}
}
