// Package fuzzgen is the generative counterpart of the fixed §8 corpus:
// a seeded, fully deterministic fuzzing campaign over the cross-system
// data plane. It generates randomized multi-column schemas, typed
// values, session configurations, and interface/format assignments;
// executes them through the core harness; shrinks every failing case to
// a minimal reproducer with delta debugging; and dedups minimized
// failures against the known Figure-6 discrepancies, persisting
// genuinely new ones as JSON reproducers that a regression test replays
// forever after.
//
// Determinism is the design constraint everything else bends around
// (the flaky-test literature's lesson: a failure you cannot re-run is a
// failure you cannot fix). The PRNG is an owned splitmix64 — not
// math/rand — so a campaign's output is a pure function of (seed, n)
// across Go releases, and every generated case carries its own derived
// seed so it can be regenerated in isolation.
package fuzzgen

// Rand is a deterministic splitmix64 pseudo-random stream.
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with the given value.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 advances the stream (splitmix64: Steele et al., "Fast
// splittable pseudorandom number generators").
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("fuzzgen: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Pct returns true with probability p/100.
func (r *Rand) Pct(p int) bool {
	return r.Intn(100) < p
}

// Pick returns one element of a non-empty slice.
func Pick[T any](r *Rand, s []T) T {
	return s[r.Intn(len(s))]
}

// DeriveSeed produces an independent per-case seed from a campaign seed
// and a case index, so any case can be regenerated without replaying
// the stream that led to it.
func DeriveSeed(campaign uint64, index int) uint64 {
	return NewRand(campaign ^ (uint64(index)+1)*0xd1342543de82ef95).Uint64()
}
