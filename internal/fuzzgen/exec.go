package fuzzgen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/versions"
)

// maxColumnsPerCase bounds a case's schema width; column input IDs are
// allocated in blocks of this size so sibling assignments share IDs
// (differential pairing) while distinct cases never collide.
const maxColumnsPerCase = 8

// buildColumns turns a case's column specs into harness inputs.
// Validity is inferred, not trusted: a literal that coerces to its
// declared type under ANSI semantics is valid (the write-read oracle's
// contract), anything else is invalid (the error-handling oracle's).
// A literal the evaluator cannot build at all is replaced by NULL so a
// hand-edited corpus file degrades instead of aborting a campaign.
func buildColumns(c *Case, baseID int) []core.WideColumn {
	out := make([]core.WideColumn, 0, len(c.Columns))
	for i := range c.Columns {
		col := &c.Columns[i]
		id := baseID + i
		in, err := core.MakeInput(id, col.Name, col.Type, col.Literal, true)
		if err != nil {
			in, err = core.MakeInput(id, col.Name, col.Type, col.Literal, false)
		}
		if err != nil {
			col.Literal = "NULL"
			in, _ = core.MakeInput(id, col.Name, col.Type, "NULL", true)
		}
		col.Valid = in.Valid
		out = append(out, core.WideColumn{Name: col.Name, Input: in})
	}
	return out
}

var planByName = func() map[string]core.Plan {
	m := map[string]core.Plan{}
	for _, p := range core.Plans() {
		m[p.Name()] = p
	}
	return m
}()

// TableCases materializes a case's probe group: one core.TableCase per
// assignment, all sharing the case's columns. Labels embed the case
// index so table names never collide within a batch.
func TableCases(c *Case, index int) ([]*core.TableCase, error) {
	cols := buildColumns(c, index*maxColumnsPerCase)
	out := make([]*core.TableCase, 0, len(c.Assignments))
	for i, a := range c.Assignments {
		plan, ok := planByName[a.Plan]
		if !ok {
			return nil, fmt.Errorf("fuzzgen: unknown plan %q", a.Plan)
		}
		out = append(out, &core.TableCase{
			Label:   fmt.Sprintf("fz%06d_%d", index, i),
			Columns: cols,
			Plan:    plan,
			Format:  a.Format,
			// Global enumeration ordinal: case index scaled past the
			// assignment bound (generated cases carry ≤ 4 assignments,
			// the grid pattern), so column ranks from a seed-range shard
			// line up with the full campaign's.
			Ord: int64(index)*maxColumnsPerCase + int64(i),
		})
	}
	return out, nil
}

// Execute runs a single case in isolation (the shrinker's and
// replayer's predicate) and returns the harness result. A case carrying
// a version pair replays on the matching skew deployment — a reproducer
// that needs the upgrade boundary keeps it.
func Execute(c *Case, parallel int) (*core.RunResult, error) {
	tables, err := TableCases(c, 0)
	if err != nil {
		return nil, err
	}
	opts := core.RunOptions{SparkConf: c.Conf, Parallel: parallel}
	if c.Pair != "" {
		pair, err := versions.ParsePair(c.Pair)
		if err != nil {
			return nil, err
		}
		opts.Versions = &pair
	}
	return core.RunTables(tables, opts)
}

// Detects reports whether executing the case surfaces the signature.
func Detects(c *Case, signature string) bool {
	cp := cloneCase(*c)
	res, err := Execute(&cp, 1)
	if err != nil {
		return false
	}
	for _, f := range res.Failures {
		if f.Signature == signature {
			return true
		}
	}
	return false
}

// cloneCase deep-copies a case so predicate runs (which re-infer column
// validity and may rewrite broken literals) never mutate the original.
func cloneCase(c Case) Case {
	cp := c
	cp.Columns = append([]ColumnSpec(nil), c.Columns...)
	cp.Assignments = append([]Assignment(nil), c.Assignments...)
	if c.Conf != nil {
		cp.Conf = make(map[string]string, len(c.Conf))
		for k, v := range c.Conf {
			cp.Conf[k] = v
		}
	}
	return cp
}
