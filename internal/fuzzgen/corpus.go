package fuzzgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The discrepancy regression corpus: every genuinely new minimized
// failure a campaign finds is persisted as one JSON reproducer file,
// named after its signature. A regression test replays the whole
// directory on every build, so a signature once found can never be
// silently lost — the BugSwarm lesson of continuously growing a
// reproducible failure dataset instead of freezing it.

// WriteReproducer persists one reproducer to dir (created on demand)
// and returns the file path written.
func WriteReproducer(dir string, r *Reproducer) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, sanitizeSignature(r.Signature)+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every reproducer in dir, sorted by file name. A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]*Reproducer, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Reproducer
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		// Strict decoding: a typoed field in a hand-edited reproducer
		// must fail loudly, not silently replay something else.
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var r Reproducer
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("fuzzgen: corpus file %s: %w", name, err)
		}
		if r.Signature == "" || len(r.Case.Columns) == 0 || len(r.Case.Assignments) == 0 {
			return nil, fmt.Errorf("fuzzgen: corpus file %s: incomplete reproducer", name)
		}
		out = append(out, &r)
	}
	return out, nil
}

// Replay executes a persisted reproducer and reports whether its
// recorded signature is still detected.
func Replay(r *Reproducer) (bool, error) {
	cp := cloneCase(r.Case)
	res, err := Execute(&cp, 1)
	if err != nil {
		return false, err
	}
	for _, f := range res.Failures {
		if f.Signature == r.Signature {
			return true, nil
		}
	}
	return false, nil
}

func sanitizeSignature(sig string) string {
	var b strings.Builder
	for _, c := range sig {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
