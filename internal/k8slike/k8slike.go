// Package k8slike implements the §6.3 implication as a runnable
// contrast: "an arguably more tangible solution is to design simple and
// consistent control-plane APIs. Kubernetes presents one good example
// of such a design, where a unified API and object-metadata structure
// ensures semantic consistency and transparency."
//
// The resource manager here is declarative: clients state a desired
// replica count on an object and a reconciler converges actual state
// toward it. Re-submitting the same desire is idempotent, so the
// FLINK-12342 failure class — an imperative client re-requesting
// pending asks under a broken synchrony assumption — cannot amplify:
// the "storm" collapses into repeated writes of the same spec. The
// benchmark harness compares the two designs' request amplification
// directly.
package k8slike

import (
	"fmt"

	"repro/internal/vclock"
)

// ObjectMeta is the uniform metadata every API object carries — the
// "unified object-metadata structure" of the implication.
type ObjectMeta struct {
	Name       string
	Generation int64 // bumped on every spec change
}

// ReplicaSpec is the declared desired state.
type ReplicaSpec struct {
	Replicas int
	MemoryMB int64
}

// ReplicaStatus is the observed state maintained by the reconciler.
type ReplicaStatus struct {
	ReadyReplicas      int
	ObservedGeneration int64
}

// ReplicaSet is the API object.
type ReplicaSet struct {
	Meta   ObjectMeta
	Spec   ReplicaSpec
	Status ReplicaStatus
}

// Cluster is the declarative control plane: an object store plus a
// reconciliation loop on the virtual clock.
type Cluster struct {
	sim     *vclock.Sim
	objects map[string]*ReplicaSet

	// StartupLatencyMs is the time to bring one replica up — the same
	// latency that triggers the imperative storm.
	StartupLatencyMs int64

	capacityMB int64
	usedMB     int64

	applies    int64 // spec writes received
	reconciles int64 // reconcile iterations executed
	started    int64 // replicas actually started
	loop       *vclock.Timer
	busyUntil  int64
}

// Options configure a cluster.
type Options struct {
	StartupLatencyMs int64
	CapacityMB       int64
	ReconcileEveryMs int64
}

// New starts the reconciler on the clock.
func New(sim *vclock.Sim, opts Options) *Cluster {
	if opts.StartupLatencyMs == 0 {
		opts.StartupLatencyMs = 150
	}
	if opts.CapacityMB == 0 {
		opts.CapacityMB = 1 << 30
	}
	if opts.ReconcileEveryMs == 0 {
		opts.ReconcileEveryMs = 100
	}
	c := &Cluster{
		sim:              sim,
		objects:          make(map[string]*ReplicaSet),
		StartupLatencyMs: opts.StartupLatencyMs,
		capacityMB:       opts.CapacityMB,
	}
	c.loop = sim.Every(opts.ReconcileEveryMs, c.reconcile)
	return c
}

// Stop halts the reconciler.
func (c *Cluster) Stop() { c.loop.Stop() }

// Apply declares desired state. Re-applying an identical spec is a
// no-op beyond the write itself — the idempotence that removes the
// storm class.
func (c *Cluster) Apply(name string, spec ReplicaSpec) *ReplicaSet {
	c.applies++
	obj, ok := c.objects[name]
	if !ok {
		obj = &ReplicaSet{Meta: ObjectMeta{Name: name}}
		c.objects[name] = obj
	}
	if obj.Spec != spec {
		obj.Spec = spec
		obj.Meta.Generation++
	}
	return obj
}

// Get returns the object.
func (c *Cluster) Get(name string) (*ReplicaSet, error) {
	obj, ok := c.objects[name]
	if !ok {
		return nil, fmt.Errorf("k8slike: replicaset %q not found", name)
	}
	return obj, nil
}

// reconcile converges each object one replica per startup latency — a
// serialized starter, like the YARN allocator it is contrasted with.
func (c *Cluster) reconcile() {
	c.reconciles++
	if c.sim.Now() < c.busyUntil {
		return // a replica is still starting
	}
	for _, obj := range c.objects {
		switch {
		case obj.Status.ReadyReplicas < obj.Spec.Replicas:
			if c.usedMB+obj.Spec.MemoryMB > c.capacityMB {
				continue
			}
			c.busyUntil = c.sim.Now() + c.StartupLatencyMs
			target := obj
			c.sim.After(c.StartupLatencyMs, func() {
				if target.Status.ReadyReplicas < target.Spec.Replicas {
					target.Status.ReadyReplicas++
					c.usedMB += target.Spec.MemoryMB
					c.started++
					target.Status.ObservedGeneration = target.Meta.Generation
				}
			})
			return // one start in flight at a time
		case obj.Status.ReadyReplicas > obj.Spec.Replicas:
			obj.Status.ReadyReplicas--
			c.usedMB -= obj.Spec.MemoryMB
			obj.Status.ObservedGeneration = obj.Meta.Generation
			return
		default:
			obj.Status.ObservedGeneration = obj.Meta.Generation
		}
	}
}

// Stats are the cluster's lifetime counters.
type Stats struct {
	Applies    int64
	Reconciles int64
	Started    int64
}

// Stats returns the counters.
func (c *Cluster) Stats() Stats {
	return Stats{Applies: c.applies, Reconciles: c.reconciles, Started: c.started}
}

// ImpatientClient mirrors the FLINK-12342 client against the
// declarative API: every heartbeat in which the replicas are not ready
// yet, it re-applies its desired state. Against an imperative API this
// behaviour storms; here every re-apply is the same spec.
type ImpatientClient struct {
	cluster *Cluster
	name    string
	spec    ReplicaSpec
	applies int64
	doneAt  int64
	ticker  *vclock.Timer
}

// NewImpatientClient creates the client.
func NewImpatientClient(cluster *Cluster, name string, spec ReplicaSpec) *ImpatientClient {
	return &ImpatientClient{cluster: cluster, name: name, spec: spec, doneAt: -1}
}

// Start applies the desire and re-applies it on every heartbeat until
// the replicas are ready.
func (ic *ImpatientClient) Start(sim *vclock.Sim, heartbeatMs int64) {
	apply := func() {
		obj := ic.cluster.Apply(ic.name, ic.spec)
		ic.applies++
		if obj.Status.ReadyReplicas >= ic.spec.Replicas && ic.doneAt < 0 {
			ic.doneAt = sim.Now()
			ic.ticker.Stop()
		}
	}
	obj := ic.cluster.Apply(ic.name, ic.spec)
	ic.applies++
	_ = obj
	ic.ticker = sim.Every(heartbeatMs, apply)
}

// Applies returns the spec writes the client issued.
func (ic *ImpatientClient) Applies() int64 { return ic.applies }

// DoneAt returns when the desire was satisfied (-1 if never).
func (ic *ImpatientClient) DoneAt() int64 { return ic.doneAt }

// ReplicasStarted returns how many replica starts the client's desire
// actually caused — the amplification denominator.
func (ic *ImpatientClient) ReplicasStarted(c *Cluster) int64 {
	obj, err := c.Get(ic.name)
	if err != nil {
		return 0
	}
	return int64(obj.Status.ReadyReplicas)
}
