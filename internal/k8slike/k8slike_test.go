package k8slike

import (
	"testing"

	"repro/internal/flinksim"
	"repro/internal/replay"
	"repro/internal/vclock"
)

func TestReconcilerConverges(t *testing.T) {
	sim := vclock.New()
	c := New(sim, Options{StartupLatencyMs: 100, ReconcileEveryMs: 50})
	c.Apply("jobmanagers", ReplicaSpec{Replicas: 5, MemoryMB: 1024})
	sim.Run(60000)
	obj, err := c.Get("jobmanagers")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Status.ReadyReplicas != 5 {
		t.Errorf("ready = %d", obj.Status.ReadyReplicas)
	}
	if obj.Status.ObservedGeneration != obj.Meta.Generation {
		t.Errorf("generation lag: %d vs %d", obj.Status.ObservedGeneration, obj.Meta.Generation)
	}
	c.Stop()
}

func TestApplyIsIdempotent(t *testing.T) {
	sim := vclock.New()
	c := New(sim, Options{})
	spec := ReplicaSpec{Replicas: 3, MemoryMB: 512}
	c.Apply("x", spec)
	gen := c.objects["x"].Meta.Generation
	for i := 0; i < 10; i++ {
		c.Apply("x", spec)
	}
	if c.objects["x"].Meta.Generation != gen {
		t.Error("identical re-applies must not bump the generation")
	}
	c.Apply("x", ReplicaSpec{Replicas: 4, MemoryMB: 512})
	if c.objects["x"].Meta.Generation != gen+1 {
		t.Error("spec change should bump the generation")
	}
}

func TestScaleDown(t *testing.T) {
	sim := vclock.New()
	c := New(sim, Options{StartupLatencyMs: 10, ReconcileEveryMs: 10})
	c.Apply("x", ReplicaSpec{Replicas: 4, MemoryMB: 100})
	sim.Run(5000)
	c.Apply("x", ReplicaSpec{Replicas: 1, MemoryMB: 100})
	sim.Run(10000)
	obj, _ := c.Get("x")
	if obj.Status.ReadyReplicas != 1 {
		t.Errorf("ready after scale-down = %d", obj.Status.ReadyReplicas)
	}
}

func TestGetMissing(t *testing.T) {
	c := New(vclock.New(), Options{})
	if _, err := c.Get("nope"); err == nil {
		t.Error("missing object should error")
	}
}

// TestDeclarativeAPIDesignsOutTheStorm is the §6.3 ablation: the very
// client behaviour that floods YARN (FLINK-12342) is harmless against
// a declarative API, because re-stating a desire is idempotent.
func TestDeclarativeAPIDesignsOutTheStorm(t *testing.T) {
	// Imperative baseline: the buggy client against the YARN model.
	imperative := replay.ContainerStorm(replay.StormOptions{Mode: flinksim.ModeBuggy})
	if imperative.AmplificationX < 10 {
		t.Fatalf("baseline should storm: %.1fx", imperative.AmplificationX)
	}

	// The same impatience against the declarative API.
	sim := vclock.New()
	c := New(sim, Options{StartupLatencyMs: 150, ReconcileEveryMs: 100})
	client := NewImpatientClient(c, "job", ReplicaSpec{Replicas: 20, MemoryMB: 1024})
	client.Start(sim, 500)
	sim.Run(60000)
	c.Stop()

	if started := client.ReplicasStarted(c); started != 20 {
		t.Fatalf("replicas started = %d", started)
	}
	// The client re-applied its spec on every heartbeat, but the
	// cluster started exactly the desired replicas: amplification of
	// actual work is 1.0 regardless of how often the desire is
	// restated.
	if got := c.Stats().Started; got != 20 {
		t.Errorf("replica starts = %d, want exactly 20", got)
	}
	if client.DoneAt() < 0 {
		t.Error("client never satisfied")
	}
	// The imperative design did real extra work for every re-request;
	// the declarative one absorbed the same client behaviour.
	if imperative.TotalRequested <= 20 {
		t.Error("imperative baseline lost its storm")
	}
}
