// Package redundancy prototypes the CSI fault-tolerance direction the
// paper proposes in §5.2 and §10: cross-system interactions are single
// points of failure despite redundancy in components and data, and "a
// potential direction is to leverage the diversity of existing
// interfaces to build interaction redundancy across systems."
//
// The package implements two strategies over a co-deployment's read
// interfaces:
//
//   - failover: try interfaces in preference order until one serves
//     the request, recording which discrepancies were masked;
//   - voting: read through every interface, serve the majority value,
//     and surface the disagreement — turning a silent data-plane
//     discrepancy into an observable signal at serving time.
package redundancy

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sqlval"
)

// Attempt records one interface's outcome during a redundant read.
type Attempt struct {
	Interface core.Iface
	Err       error
	HasRow    bool
	Value     sqlval.Value
}

func (a Attempt) String() string {
	if a.Err != nil {
		return fmt.Sprintf("%s: error: %v", a.Interface, a.Err)
	}
	if !a.HasRow {
		return fmt.Sprintf("%s: no row", a.Interface)
	}
	return fmt.Sprintf("%s: %s", a.Interface, a.Value)
}

// Result is the outcome of a redundant read.
type Result struct {
	// Served is the interface whose answer was returned.
	Served core.Iface
	// Value/HasRow is the served answer.
	Value  sqlval.Value
	HasRow bool
	// Attempts records every interface consulted.
	Attempts []Attempt
	// MaskedFailures counts interfaces that errored before the served
	// one (failover) or deviated from the majority (voting).
	MaskedFailures int
	// Disagreements describes value-level divergence among successful
	// interfaces — a discrepancy detected at serving time.
	Disagreements []string
}

// ErrAllInterfacesFailed reports that no interface could serve.
var ErrAllInterfacesFailed = fmt.Errorf("redundancy: all interfaces failed")

// ReadWithFailover tries the interfaces in order, returning the first
// successful read. Interfaces that fail before the served one are the
// masked CSI failures — the downstream is available, only the
// particular interaction is broken, which is exactly the opportunity
// §5.2 identifies.
func ReadWithFailover(d *core.Deployment, table string, order ...core.Iface) (Result, error) {
	if len(order) == 0 {
		order = []core.Iface{core.SparkSQL, core.DataFrame, core.HiveQL}
	}
	res := Result{}
	for _, iface := range order {
		out := d.Read(iface, table)
		att := Attempt{Interface: iface, Err: out.Err, HasRow: out.HasRow, Value: out.Value}
		res.Attempts = append(res.Attempts, att)
		if out.Err != nil {
			res.MaskedFailures++
			continue
		}
		res.Served = iface
		res.Value = out.Value
		res.HasRow = out.HasRow
		return res, nil
	}
	return res, fmt.Errorf("%w: table %s via %v", ErrAllInterfacesFailed, table, order)
}

// ReadWithVoting reads through every interface and serves the majority
// answer (by data equality). Ties are broken by interface order.
// Minority answers and errors are reported as disagreements.
func ReadWithVoting(d *core.Deployment, table string, ifaces ...core.Iface) (Result, error) {
	if len(ifaces) == 0 {
		ifaces = []core.Iface{core.SparkSQL, core.DataFrame, core.HiveQL}
	}
	res := Result{}
	type bucket struct {
		attempt Attempt
		votes   int
	}
	var buckets []*bucket
	for _, iface := range ifaces {
		out := d.Read(iface, table)
		att := Attempt{Interface: iface, Err: out.Err, HasRow: out.HasRow, Value: out.Value}
		res.Attempts = append(res.Attempts, att)
		if out.Err != nil {
			continue
		}
		placed := false
		for _, b := range buckets {
			if sameAnswer(b.attempt, att) {
				b.votes++
				placed = true
				break
			}
		}
		if !placed {
			buckets = append(buckets, &bucket{attempt: att, votes: 1})
		}
	}
	if len(buckets) == 0 {
		return res, fmt.Errorf("%w: table %s via %v", ErrAllInterfacesFailed, table, ifaces)
	}
	best := buckets[0]
	for _, b := range buckets[1:] {
		if b.votes > best.votes {
			best = b
		}
	}
	res.Served = best.attempt.Interface
	res.Value = best.attempt.Value
	res.HasRow = best.attempt.HasRow
	for _, att := range res.Attempts {
		if att.Err != nil {
			res.MaskedFailures++
			res.Disagreements = append(res.Disagreements,
				fmt.Sprintf("%s failed while peers served: %v", att.Interface, att.Err))
			continue
		}
		if !sameAnswer(best.attempt, att) {
			res.MaskedFailures++
			res.Disagreements = append(res.Disagreements,
				fmt.Sprintf("%s returned %s, majority returned %s", att.Interface, att.Value, best.attempt.Value))
		}
	}
	return res, nil
}

func sameAnswer(a, b Attempt) bool {
	if a.HasRow != b.HasRow {
		return false
	}
	if !a.HasRow {
		return true
	}
	return a.Value.EqualData(b.Value) && a.Value.Type.Kind == b.Value.Type.Kind
}

// CoverageReport quantifies how much interaction redundancy buys on a
// workload: of the reads that fail through one fixed interface, how
// many a redundant reader serves anyway.
type CoverageReport struct {
	Reads            int
	PrimaryFailures  int
	ServedByFailover int
	StillFailing     int
}

// String renders the report.
func (r CoverageReport) String() string {
	return fmt.Sprintf("reads=%d primary-failures=%d served-by-failover=%d still-failing=%d",
		r.Reads, r.PrimaryFailures, r.ServedByFailover, r.StillFailing)
}

// MeasureFailoverCoverage writes each input through writeIface into its
// own table and reads it back with primary as the preferred interface,
// falling back to the rest. It reports how many primary-interface read
// failures the redundancy masked.
func MeasureFailoverCoverage(inputs []core.Input, writeIface, primary core.Iface, format string) (CoverageReport, error) {
	d := core.NewDeployment()
	order := []core.Iface{primary}
	for _, i := range []core.Iface{core.SparkSQL, core.DataFrame, core.HiveQL} {
		if i != primary {
			order = append(order, i)
		}
	}
	report := CoverageReport{}
	for idx := range inputs {
		in := inputs[idx]
		table := fmt.Sprintf("t_red_%04d", in.ID)
		if w := d.Write(writeIface, table, format, in); w.Err != nil {
			continue // write-side failures are not the read path's to mask
		}
		report.Reads++
		primaryOut := d.Read(primary, table)
		if primaryOut.Err == nil {
			continue
		}
		report.PrimaryFailures++
		res, err := ReadWithFailover(d, table, order...)
		if err != nil {
			report.StillFailing++
			continue
		}
		if res.Served != primary && strings.TrimSpace(string(res.Served)) != "" {
			report.ServedByFailover++
		}
	}
	return report, nil
}
