package redundancy

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// setupLegacyDecimalTable creates the SPARK-39158 situation: a
// DataFrame-written decimal table that HiveQL cannot read.
func setupLegacyDecimalTable(t *testing.T, d *core.Deployment) string {
	t.Helper()
	dec, _ := sqlval.ParseDecimal("12.34")
	schema := serde.Schema{Columns: []serde.Column{{Name: "amt", Type: sqlval.DecimalType(10, 2)}}}
	df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(dec, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SaveAsTable("amounts", "parquet"); err != nil {
		t.Fatal(err)
	}
	return "amounts"
}

func TestFailoverMasksHiveSerDeFailure(t *testing.T) {
	d := core.NewDeployment()
	table := setupLegacyDecimalTable(t, d)
	// A Hive-first reader fails over to SparkSQL and serves the value.
	res, err := ReadWithFailover(d, table, core.HiveQL, core.SparkSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != core.SparkSQL {
		t.Errorf("served by %s", res.Served)
	}
	if res.MaskedFailures != 1 {
		t.Errorf("masked = %d", res.MaskedFailures)
	}
	if res.Value.D.String() != "12.34" {
		t.Errorf("value = %v", res.Value)
	}
	if len(res.Attempts) != 2 || res.Attempts[0].Err == nil {
		t.Errorf("attempts = %v", res.Attempts)
	}
}

func TestFailoverMasksAvroIncompatibleSchema(t *testing.T) {
	// SPARK-39075: the DataFrame reader fails on Avro-widened BYTE; a
	// redundant reader serves through SparkSQL's fallback path.
	d := core.NewDeployment()
	schema := serde.Schema{Columns: []serde.Column{{Name: "B", Type: sqlval.TinyInt}}}
	df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.IntVal(sqlval.TinyInt, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SaveAsTable("bytes", "avro"); err != nil {
		t.Fatal(err)
	}
	res, err := ReadWithFailover(d, "bytes", core.DataFrame, core.SparkSQL, core.HiveQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != core.SparkSQL || res.Value.I != 5 {
		t.Errorf("res = %+v", res)
	}
}

func TestFailoverAllFail(t *testing.T) {
	d := core.NewDeployment()
	_, err := ReadWithFailover(d, "missing_table")
	if !errors.Is(err, ErrAllInterfacesFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestVotingSurfacesCharPaddingDisagreement(t *testing.T) {
	// SPARK-40616: Hive pads CHAR on read, Spark strips. Voting serves
	// the 2-1 majority and reports the minority deviation.
	d := core.NewDeployment()
	if _, err := d.Spark.SQL(`CREATE TABLE tags (c CHAR(4)) STORED AS ORC`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Spark.SQL(`INSERT INTO tags VALUES ('ab')`); err != nil {
		t.Fatal(err)
	}
	res, err := ReadWithVoting(d, "tags")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.S != "ab" {
		t.Errorf("majority value = %q", res.Value.S)
	}
	if res.MaskedFailures != 1 || len(res.Disagreements) != 1 {
		t.Errorf("disagreements = %v", res.Disagreements)
	}
	if !strings.Contains(res.Disagreements[0], "hiveql") {
		t.Errorf("disagreement = %q", res.Disagreements[0])
	}
}

func TestVotingUnanimous(t *testing.T) {
	d := core.NewDeployment()
	if _, err := d.Spark.SQL(`CREATE TABLE nums (n INT) STORED AS PARQUET`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Spark.SQL(`INSERT INTO nums VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	res, err := ReadWithVoting(d, "nums")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I != 7 || res.MaskedFailures != 0 || len(res.Disagreements) != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestVotingCountsErrorsAsDisagreements(t *testing.T) {
	d := core.NewDeployment()
	table := setupLegacyDecimalTable(t, d)
	res, err := ReadWithVoting(d, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaskedFailures != 1 {
		t.Errorf("masked = %d (%v)", res.MaskedFailures, res.Disagreements)
	}
	if res.Value.D.String() != "12.34" {
		t.Errorf("value = %v", res.Value)
	}
}

func TestVotingAllFail(t *testing.T) {
	d := core.NewDeployment()
	if _, err := ReadWithVoting(d, "missing"); !errors.Is(err, ErrAllInterfacesFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestMeasureFailoverCoverage(t *testing.T) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		t.Fatal(err)
	}
	// DataFrame-written Avro tables, read DataFrame-first: the
	// SPARK-39075 class fails on the primary and is served by failover.
	report, err := MeasureFailoverCoverage(inputs, core.DataFrame, core.DataFrame, "avro")
	if err != nil {
		t.Fatal(err)
	}
	if report.PrimaryFailures == 0 {
		t.Fatal("expected primary-interface failures on the avro corpus")
	}
	if report.ServedByFailover != report.PrimaryFailures {
		t.Errorf("failover served %d of %d primary failures; still failing %d",
			report.ServedByFailover, report.PrimaryFailures, report.StillFailing)
	}
	if !strings.Contains(report.String(), "served-by-failover") {
		t.Errorf("render = %q", report)
	}
}
