package replay

import (
	"strings"
	"testing"

	"repro/internal/csi"
	"repro/internal/obs"
)

// TestScenario23Chains pins the acceptance property: each of the three
// §2.3 scenarios yields a propagation chain crossing at least two
// systems, in causal order (the initiating system leads).
func TestScenario23Chains(t *testing.T) {
	for _, tc := range []struct {
		name  string
		first csi.System
		also  csi.System
	}{
		{"storm", csi.Flink, csi.YARN},
		{"filesize", csi.Spark, csi.HDFS},
		{"scheduler", csi.Flink, csi.YARN},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := Scenario23Trace(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			hops := tr.Chain(nil)
			systems := obs.Systems(hops)
			if len(systems) < 2 {
				t.Fatalf("chain crosses %d systems, want >= 2: %v", len(systems), systems)
			}
			if systems[0] != tc.first {
				t.Errorf("chain starts at %s, want %s", systems[0], tc.first)
			}
			found := false
			for _, s := range systems[1:] {
				if s == tc.also {
					found = true
				}
			}
			if !found {
				t.Errorf("chain never reaches %s after %s: %v", tc.also, tc.first, systems)
			}
			rendered := obs.RenderChain(hops)
			if !strings.Contains(rendered, "→") {
				t.Errorf("rendered chain has no arrows: %q", rendered)
			}
			t.Logf("%s: %s", tc.name, rendered)
		})
	}
}

// TestScenario23FailureMarked pins that the buggy filesize and
// scheduler replays mark the failing hop.
func TestScenario23FailureMarked(t *testing.T) {
	for _, name := range []string{"filesize", "scheduler"} {
		chain, err := Scenario23Chain(name)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(chain, "✗") {
			t.Errorf("%s chain has no failure mark: %q", name, chain)
		}
	}
}

// TestScenario23Unknown rejects unknown scenario names.
func TestScenario23Unknown(t *testing.T) {
	if _, err := Scenario23Trace("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestStormTraceOnVirtualClock pins that storm spans carry virtual
// timestamps: YARN allocations land after the Flink requests that
// triggered them.
func TestStormTraceOnVirtualClock(t *testing.T) {
	tr, err := Scenario23Trace("storm")
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	var firstFlink, firstAlloc int64 = -1, -1
	for _, s := range spans {
		if s.System == csi.Flink && firstFlink < 0 {
			firstFlink = s.StartMs
		}
		if s.System == csi.YARN && s.Name == "allocate" && firstAlloc < 0 {
			firstAlloc = s.StartMs
		}
	}
	if firstFlink < 0 || firstAlloc < 0 {
		t.Fatalf("missing spans: flink@%d alloc@%d", firstFlink, firstAlloc)
	}
	if firstAlloc <= firstFlink {
		t.Errorf("first allocation at %dms not after first request at %dms", firstAlloc, firstFlink)
	}
}
