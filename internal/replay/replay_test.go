package replay

import (
	"strings"
	"testing"

	"repro/internal/flinksim"
	"repro/internal/hbasesim"
	"repro/internal/yarnsim"
)

func TestFixLadderShape(t *testing.T) {
	// Figure 5: the buggy mode storms; both workarounds and the
	// resolution hold requests at the target.
	results := FixLadder()
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	buggy, w1, w2, async := results[0], results[1], results[2], results[3]
	if buggy.AmplificationX < 10 {
		t.Errorf("buggy amplification = %.1fx, want a storm", buggy.AmplificationX)
	}
	for _, r := range []StormResult{w1, w2, async} {
		if r.TotalRequested != r.Target {
			t.Errorf("%v requested %d, want %d", r.Mode, r.TotalRequested, r.Target)
		}
		if r.Allocated != r.Target {
			t.Errorf("%v allocated %d", r.Mode, r.Allocated)
		}
	}
	if buggy.Allocated != buggy.Target {
		t.Errorf("buggy allocated = %d (job should still eventually run)", buggy.Allocated)
	}
	if !strings.Contains(buggy.String(), "buggy") {
		t.Errorf("render = %q", buggy.String())
	}
}

func TestCompressedFileRead(t *testing.T) {
	// Figure 2: the original check fails on compressed files.
	if _, err := CompressedFileRead(true, false); err == nil || !strings.Contains(err.Error(), "cannot be negative") {
		t.Errorf("buggy check on compressed file: err = %v", err)
	}
	// Figure 4: the fix accepts -1.
	data, err := CompressedFileRead(true, true)
	if err != nil || len(data) == 0 {
		t.Errorf("fixed check: %v", err)
	}
	// Uncompressed files pass under both.
	if _, err := CompressedFileRead(false, false); err != nil {
		t.Errorf("uncompressed buggy check: %v", err)
	}
}

func TestSchedulerMismatch(t *testing.T) {
	tuned := map[string]string{yarnsim.KeyMinAllocMB: "128"}
	// Figure 3: the capacity scheduler honours the tuned key.
	if err := SchedulerMismatch("capacity", tuned); err != nil {
		t.Errorf("capacity: %v", err)
	}
	// The fair scheduler ignores it and fails the allocation.
	if err := SchedulerMismatch("fair", tuned); err == nil {
		t.Error("fair scheduler should fail with capacity-scheduler keys")
	}
	// Tuning the fair scheduler's own key resolves it.
	fairTuned := map[string]string{yarnsim.KeyIncAllocMB: "128"}
	if err := SchedulerMismatch("fair", fairTuned); err != nil {
		t.Errorf("fair with its own keys: %v", err)
	}
}

func TestPmemKill(t *testing.T) {
	killed, reason := PmemKill(flinksim.SizingNoHeadroom)
	if !killed || !strings.Contains(reason, "beyond physical memory limits") {
		t.Errorf("no-headroom: killed=%v reason=%q", killed, reason)
	}
	killed, _ = PmemKill(flinksim.SizingWithCutoff)
	if killed {
		t.Error("cutoff sizing should survive the monitor")
	}
}

func TestTokenExpiry(t *testing.T) {
	if err := TokenExpiry(true); err == nil {
		t.Error("late renewal should hit an expired token")
	}
	if err := TokenExpiry(false); err != nil {
		t.Errorf("adjacent renewal: %v", err)
	}
}

func TestSafeModeStartup(t *testing.T) {
	ok, err := SafeModeStartup(hbasesim.StartupAssumeReady, 3000)
	if ok || err == nil {
		t.Errorf("assume-ready should crash: ok=%v err=%v", ok, err)
	}
	ok, err = SafeModeStartup(hbasesim.StartupWaitForNameNode, 3000)
	if !ok {
		t.Errorf("wait-for-namenode should succeed: %v", err)
	}
}

func TestOffsetGap(t *testing.T) {
	n, err := OffsetGap(true)
	if err == nil {
		t.Errorf("contiguity assumption should fail (consumed %d)", n)
	}
	n, err = OffsetGap(false)
	if err != nil || n != 3 {
		t.Errorf("fixed consumer = %d records, %v (want the 3 compaction survivors)", n, err)
	}
}
