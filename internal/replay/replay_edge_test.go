package replay

// Edge-case tests for the replay entry points: the boundaries where a
// scenario's defect does NOT fire (so a fix or a lucky schedule cannot
// be confused with the bug), and the negative paths for unknown
// scenario names.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/flinksim"
	"repro/internal/hbasesim"
	"repro/internal/kafkasim"
)

// TestScenario23UnknownNames rejects every unknown name on both the
// trace and chain entry points, and names the offender in the error.
func TestScenario23UnknownNames(t *testing.T) {
	for _, name := range []string{"", "nope", "Storm", "storm ", "filesize2"} {
		if _, err := Scenario23Trace(name); err == nil {
			t.Errorf("Scenario23Trace(%q) accepted an unknown name", name)
		} else if !strings.Contains(err.Error(), fmt.Sprintf("%q", name)) {
			t.Errorf("Scenario23Trace(%q) error does not name the offender: %v", name, err)
		}
		if _, err := Scenario23Chain(name); err == nil {
			t.Errorf("Scenario23Chain(%q) accepted an unknown name", name)
		}
	}
}

// TestSafeModeStartupExitAtZero pins the boundary where the safe-mode
// window is empty: the NameNode exits safe mode at 0 ms, before the
// first write arrives, so even the buggy assume-ready startup serves
// the write. HBASE-537 needs an open window — exit-at-0 must not be
// reported as the bug.
func TestSafeModeStartupExitAtZero(t *testing.T) {
	for _, mode := range []hbasesim.StartupMode{hbasesim.StartupAssumeReady, hbasesim.StartupWaitForNameNode} {
		ok, err := SafeModeStartup(mode, 0)
		if !ok {
			t.Errorf("mode %v with exit-at-0 should serve the first write: %v", mode, err)
		}
	}
}

// TestOffsetGapContiguousLog pins the boundary where the contiguity
// assumption is harmless: compaction over unique keys removes nothing,
// offsets stay contiguous, and the buggy consumer reads the full log
// without error. SPARK-19361 needs a gap — an already-contiguous log
// must not trip the reproduction.
func TestOffsetGapContiguousLog(t *testing.T) {
	broker := kafkasim.NewBroker()
	if err := broker.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		// Unique keys: every record is its key's latest value.
		if _, err := broker.Produce("events", 0, fmt.Sprintf("user-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := broker.Compact("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("compaction over unique keys removed %d records, want 0", removed)
	}
	src := flinksim.NewKafkaSource(broker, flinksim.KafkaSourceOptions{
		Topic: "events", AssumeContiguousOffsets: true,
	})
	total := 0
	for {
		recs, err := src.Poll(4)
		if err != nil {
			t.Fatalf("contiguity assumption failed on a contiguous log after %d records: %v", total, err)
		}
		if len(recs) == 0 {
			break
		}
		total += len(recs)
	}
	if total != 10 {
		t.Errorf("consumed %d records from a contiguous log, want 10", total)
	}
}
