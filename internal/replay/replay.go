// Package replay wires the paper's concrete failure scenarios —
// Figures 1 through 5 and the §6 case examples — into runnable
// reproductions on the simulators, each with its buggy and fixed
// behaviour. The csireplay command, the examples, and the benchmark
// harness all drive these entry points.
package replay

import (
	"fmt"
	"strconv"

	"repro/internal/csi"
	"repro/internal/flinksim"
	"repro/internal/hbasesim"
	"repro/internal/hdfssim"
	"repro/internal/kafkasim"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/yarnsim"
)

// StormResult summarizes a FLINK-12342 (Figure 1 / Figure 5) run.
type StormResult struct {
	Mode           flinksim.ClientMode
	Target         int
	Allocated      int
	TotalRequested int
	RMRequestsSeen int64
	DoneAtMs       int64
	AmplificationX float64
	HorizonMs      int64
}

// String renders the result as a Figure 1 style summary line.
func (r StormResult) String() string {
	return fmt.Sprintf("%-36s target=%d allocated=%d requested=%d (%.1fx) done@%dms",
		r.Mode, r.Target, r.Allocated, r.TotalRequested, r.AmplificationX, r.DoneAtMs)
}

// StormOptions parameterize the Figure 1 scenario.
type StormOptions struct {
	Mode        flinksim.ClientMode
	Target      int   // C, the containers the job needs
	HeartbeatMs int64 // Flink's request interval (500 ms in the issue)
	AllocMs     int64 // YARN's per-container allocation latency
	HorizonMs   int64 // virtual-time budget
	// Tracer, when non-nil, records the Flink↔YARN span tree on the
	// scenario's virtual clock.
	Tracer *obs.Tracer
}

// ContainerStorm replays FLINK-12342: a Flink job requesting Target
// containers from a YARN RM whose allocation latency exceeds what the
// client's synchronous assumption tolerates.
func ContainerStorm(opts StormOptions) StormResult {
	if opts.Target == 0 {
		opts.Target = 20
	}
	if opts.HeartbeatMs == 0 {
		opts.HeartbeatMs = 500
	}
	if opts.AllocMs == 0 {
		opts.AllocMs = 150
	}
	if opts.HorizonMs == 0 {
		opts.HorizonMs = 60000
	}
	sim := vclock.New()
	rm := yarnsim.New(sim, yarnsim.Options{AllocLatencyMs: opts.AllocMs, ClusterMemoryMB: 1 << 30})
	client := flinksim.NewYarnResourceClient(sim, rm, flinksim.ResourceClientOptions{
		Mode:        opts.Mode,
		Target:      opts.Target,
		HeartbeatMs: opts.HeartbeatMs,
		Ask:         yarnsim.Resource{MemoryMB: 1024, Vcores: 1},
	})
	var root *obs.Span
	if opts.Tracer != nil {
		opts.Tracer.SetClock(sim)
		root = opts.Tracer.Span(nil, csi.Flink, csi.ControlPlane, "flink-12342/job").
			Set("mode", opts.Mode.String()).Set("target", strconv.Itoa(opts.Target))
		client.SetTrace(opts.Tracer, root)
		rm.SetTrace(opts.Tracer, root)
	}
	client.Start()
	sim.Run(opts.HorizonMs)
	client.Stop()
	root.End()
	res := StormResult{
		Mode:           opts.Mode,
		Target:         opts.Target,
		Allocated:      client.Allocated(),
		TotalRequested: client.TotalRequested(),
		RMRequestsSeen: rm.Stats().RequestsReceived,
		DoneAtMs:       client.DoneAt(),
		HorizonMs:      opts.HorizonMs,
	}
	if opts.Target > 0 {
		res.AmplificationX = float64(res.TotalRequested) / float64(opts.Target)
	}
	return res
}

// FixLadder runs the four Figure 5 behaviours on the same scenario.
func FixLadder() []StormResult {
	out := make([]StormResult, 0, 4)
	for _, mode := range []flinksim.ClientMode{
		flinksim.ModeBuggy, flinksim.ModeWorkaround1, flinksim.ModeWorkaround2, flinksim.ModeAsync,
	} {
		opts := StormOptions{Mode: mode}
		if mode == flinksim.ModeWorkaround1 {
			opts.HeartbeatMs = 5000 // the new configuration parameter
		}
		out = append(out, ContainerStorm(opts))
	}
	return out
}

// CompressedFileRead replays SPARK-27239 (Figures 2 and 4): a Spark
// job validating the size of an HDFS file before reading it. With
// fixedCheck false the job applies the original `length >= 0`
// assertion and fails on compressed files; with true it applies the
// Figure 4 fix (`length >= -1`).
func CompressedFileRead(compressed, fixedCheck bool) ([]byte, error) {
	return CompressedFileReadTraced(compressed, fixedCheck, nil)
}

// CompressedFileReadTraced is CompressedFileRead with span emission:
// the Spark-side job span parents the HDFS write/stat/read spans, and
// the length assertion gets its own (failing, when buggy) span.
func CompressedFileReadTraced(compressed, fixedCheck bool, tr *obs.Tracer) ([]byte, error) {
	fs := hdfssim.New(nil)
	root := tr.Span(nil, csi.Spark, csi.DataPlane, "input-file-read").
		Set("compressed", strconv.FormatBool(compressed))
	defer root.End()
	fs.SetTrace(tr, root)
	path := "/warehouse/events/part-00000"
	if err := fs.Write(path, []byte("row1\nrow2\n"), hdfssim.WriteOptions{Compress: compressed}); err != nil {
		root.Fail(err)
		return nil, err
	}
	info, err := fs.Stat(path)
	if err != nil {
		root.Fail(err)
		return nil, err
	}
	// Spark's InputFileBlockHolder requirement.
	min := int64(0)
	if fixedCheck {
		min = -1
	}
	if info.Length < min {
		err := fmt.Errorf("spark: requirement failed: length (%d) cannot be negative", info.Length)
		root.Child(csi.Spark, csi.DataPlane, "length-check").
			Set("length", strconv.FormatInt(info.Length, 10)).Fail(err).End()
		root.Fail(err)
		return nil, err
	}
	root.Child(csi.Spark, csi.DataPlane, "length-check").
		Set("length", strconv.FormatInt(info.Length, 10)).End()
	data, err := fs.Read(path)
	root.Fail(err)
	return data, err
}

// SchedulerMismatch replays FLINK-19141 (Figure 3): a Flink deployment
// tuned for the capacity scheduler's keys submits a container request
// to an RM running the scheduler named by schedulerClass
// ("capacity" or "fair"). The tunedKeys are the configuration the
// operator set. It returns the allocation error, if any.
func SchedulerMismatch(schedulerClass string, tunedKeys map[string]string) error {
	return SchedulerMismatchTraced(schedulerClass, tunedKeys, nil)
}

// SchedulerMismatchTraced is SchedulerMismatch with span emission: the
// Flink-side submission span parents the YARN request/allocate spans,
// so a mis-normalized ask renders as Flink → YARN ✗.
func SchedulerMismatchTraced(schedulerClass string, tunedKeys map[string]string, tr *obs.Tracer) error {
	conf := yarnsim.Config{
		yarnsim.KeySchedulerClass: schedulerClass,
		yarnsim.KeyMaxAllocMB:     "1500",
	}
	for k, v := range tunedKeys {
		conf[k] = v
	}
	sim := vclock.New()
	rm := yarnsim.New(sim, yarnsim.Options{Conf: conf})
	var root *obs.Span
	if tr != nil {
		tr.SetClock(sim)
		root = tr.Span(nil, csi.Flink, csi.ControlPlane, "submit-job").
			Set("scheduler", schedulerClass)
		rm.SetTrace(tr, root)
	}
	var allocErr error
	rm.RequestContainers(1, yarnsim.Resource{MemoryMB: 1100, Vcores: 1},
		nil, func(err error) { allocErr = err })
	sim.Run(10000)
	root.Fail(allocErr).End()
	return allocErr
}

// Scenario23Trace replays one of the three §2.3 scenarios (storm,
// filesize, scheduler) in its buggy form under a fresh tracer and
// returns the recorded trace.
func Scenario23Trace(name string) (*obs.Tracer, error) {
	tr := obs.NewTracer(nil)
	switch name {
	case "storm":
		ContainerStorm(StormOptions{Mode: flinksim.ModeBuggy, Tracer: tr})
	case "filesize":
		if _, err := CompressedFileReadTraced(true, false, tr); err == nil {
			return nil, fmt.Errorf("replay: buggy length check unexpectedly passed")
		}
	case "scheduler":
		err := SchedulerMismatchTraced("fair", map[string]string{yarnsim.KeyMinAllocMB: "128"}, tr)
		if err == nil {
			return nil, fmt.Errorf("replay: fair scheduler unexpectedly allocated the capacity-tuned ask")
		}
	default:
		return nil, fmt.Errorf("replay: unknown §2.3 scenario %q", name)
	}
	return tr, nil
}

// Scenario23Chain renders the cross-system propagation chain of a §2.3
// scenario's buggy replay.
func Scenario23Chain(name string) (string, error) {
	tr, err := Scenario23Trace(name)
	if err != nil {
		return "", err
	}
	return obs.RenderChain(tr.Chain(nil)), nil
}

// PmemKill replays FLINK-887: a JobManager container sized with or
// without JVM headroom against YARN's pmem monitor. It reports whether
// the monitor killed the JobManager and the kill message.
func PmemKill(sizing flinksim.JVMSizing) (bool, string) {
	sim := vclock.New()
	rm := yarnsim.New(sim, yarnsim.Options{AllocLatencyMs: 10})
	var jm *yarnsim.Container
	rm.RequestContainers(1, yarnsim.Resource{MemoryMB: 2048, Vcores: 1},
		func(c *yarnsim.Container) { jm = c }, nil)
	sim.Run(100)
	if jm == nil {
		return false, ""
	}
	var reason string
	rm.StartPmemMonitor(1000, func(c *yarnsim.Container) { reason = c.KillReason })
	rm.SetContainerPmem(jm.ID, flinksim.ProcessPmemMB(2048, sizing))
	sim.Run(5000)
	rm.StopPmemMonitor()
	return reason != "", reason
}

// TokenExpiry replays YARN-2790: a YARN job holds an HDFS delegation
// token; with lateRenewal the renewal happens long before the read (and
// the token expires in between), while the fix renews adjacent to the
// consuming operation.
func TokenExpiry(lateRenewal bool) error {
	sim := vclock.New()
	fs := hdfssim.New(sim)
	fs.SetTokenTTL(1000)
	if err := fs.Write("/staging/job.xml", []byte("<conf/>"), hdfssim.WriteOptions{}); err != nil {
		return err
	}
	token := fs.IssueToken("yarn-rm")
	var readErr error
	read := func() { _, readErr = fs.ReadWithToken("/staging/job.xml", token.ID) }
	if lateRenewal {
		// Renewal at submission time, consumption much later.
		if err := fs.RenewToken(token.ID); err != nil {
			return err
		}
		sim.After(5000, read)
	} else {
		// The fix: renew immediately before the consuming operation.
		sim.After(5000, func() {
			if err := fs.RenewToken(token.ID); err != nil {
				readErr = err
				return
			}
			read()
		})
	}
	sim.Run(10000)
	return readErr
}

// SafeModeStartup replays HBASE-537: an HBase region server starting
// against a NameNode that is still in safe mode (which exits at
// exitAtMs on the virtual clock). It returns whether the first Put
// succeeded and the server's crash reason, if any.
func SafeModeStartup(mode hbasesim.StartupMode, exitAtMs int64) (bool, error) {
	sim := vclock.New()
	fs := hdfssim.New(sim)
	fs.SetSafeMode(true)
	sim.After(exitAtMs, func() { fs.SetSafeMode(false) })
	rs := hbasesim.New(sim, fs)
	rs.Start(mode, 500)
	var putErr error
	done := false
	// The first client write arrives shortly after startup begins.
	var attempt func()
	attempt = func() {
		if !rs.Serving() {
			if rs.CrashReason() != nil {
				putErr = rs.CrashReason()
				done = true
				return
			}
			sim.After(500, attempt)
			return
		}
		putErr = rs.Put("t", "row", "v")
		done = true
	}
	sim.After(100, attempt)
	sim.Run(exitAtMs + 5000)
	if !done && putErr == nil {
		putErr = fmt.Errorf("hbase: write never completed")
	}
	return putErr == nil, putErr
}

// OffsetGap replays the SPARK-19361 pattern: a streaming consumer over
// a compacted topic, with and without the offset-contiguity assumption.
// It returns the number of records consumed and the job error, if any.
func OffsetGap(assumeContiguous bool) (int, error) {
	broker := kafkasim.NewBroker()
	if err := broker.CreateTopic("events", 1); err != nil {
		return 0, err
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("user-%d", i%3)
		if _, err := broker.Produce("events", 0, key, []byte{byte(i)}); err != nil {
			return 0, err
		}
	}
	if _, err := broker.Compact("events", 0); err != nil {
		return 0, err
	}
	src := flinksim.NewKafkaSource(broker, flinksim.KafkaSourceOptions{
		Topic: "events", AssumeContiguousOffsets: assumeContiguous,
	})
	total := 0
	for {
		recs, err := src.Poll(4)
		if err != nil {
			return total, err
		}
		if len(recs) == 0 {
			return total, nil
		}
		total += len(recs)
	}
}
