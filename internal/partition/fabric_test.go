package partition

import (
	"reflect"
	"testing"

	"repro/internal/vclock"
)

func TestFabricConnectivity(t *testing.T) {
	sim := vclock.New()
	fab := NewFabric(sim, "b", "a", "c")
	if got := fab.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Nodes() = %v, want sorted a b c", got)
	}
	if !fab.Connected("a", "a") {
		t.Error("a node must always reach itself")
	}
	if !fab.Connected("a", "b") || !fab.Connected("b", "a") {
		t.Error("fresh fabric must be fully connected")
	}

	fab.Cut("a", "b")
	if fab.Connected("a", "b") || fab.Connected("b", "a") {
		t.Error("symmetric cut must sever both directions")
	}
	if !fab.Connected("a", "c") {
		t.Error("cut a-b must not affect a-c")
	}
	fab.Heal("a", "b")
	if !fab.Connected("a", "b") || !fab.Connected("b", "a") {
		t.Error("heal must restore both directions")
	}
}

func TestFabricOneWayCut(t *testing.T) {
	fab := NewFabric(vclock.New(), "a", "b")
	fab.CutOneWay("a", "b")
	if fab.Connected("a", "b") {
		t.Error("a->b must be down after CutOneWay(a, b)")
	}
	if !fab.Connected("b", "a") {
		t.Error("b->a must stay up after CutOneWay(a, b)")
	}
	fab.HealAll()
	if !fab.Connected("a", "b") {
		t.Error("HealAll must restore one-way cuts")
	}
}

func TestFabricHistoryAndHooks(t *testing.T) {
	sim := vclock.New()
	fab := NewFabric(sim, "a", "b")
	var hooked []string
	fab.OnChange = func(ev LinkEvent) { hooked = append(hooked, ev.String()) }
	sim.After(100, func() { fab.Cut("a", "b") })
	sim.After(300, func() { fab.Heal("a", "b") })
	sim.Run(1000)

	want := []string{"cut {a<->b} at 100 ms", "heal {a<->b} at 300 ms"}
	var got []string
	for _, ev := range fab.History() {
		got = append(got, ev.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("History() = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(hooked, want) {
		t.Errorf("OnChange saw %v, want %v", hooked, want)
	}
}

func TestFabricUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cut with an unknown node must panic: scenarios wire only known nodes")
		}
	}()
	NewFabric(vclock.New(), "a", "b").Cut("a", "zz")
}

func TestUndirectedLinksEnumeration(t *testing.T) {
	fab := NewFabric(vclock.New(), "c", "a", "b")
	got := fab.UndirectedLinks()
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UndirectedLinks() = %v, want %v", got, want)
	}
}
