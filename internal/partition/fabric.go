// Package partition is the control-plane fault plane of the
// reproduction: a per-link network-connectivity model over the virtual
// clock (cut/heal at chosen vclock points, symmetric and asymmetric
// partitions), an invariant layer that snapshots each simulated node's
// view of shared control-plane state (HDFS replica sets and leases,
// YARN application/container state machines, Kafka ISR membership and
// offsets, HBase region assignment, Flink's pending-request book) and
// detects inconsistent views, and a consistency-guided injector that —
// CoFI's key idea (SNIPPETS.md Snippet 2) — triggers the cut exactly
// when two nodes disagree about that state and then *holds* it, so the
// periodic reconciliation traffic that would otherwise repair the
// disagreement cannot mask the bug.
//
// Everything is deterministic: scenarios run on vclock.Sim, random
// schedules derive from a splitmix64 seed, and campaign reports are
// bit-identical across -parallel settings, so every P* finding replays
// exactly.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/vclock"
)

// Link is one directed connectivity edge between two named nodes.
type Link struct {
	From, To string
}

// String formats the directed link.
func (l Link) String() string { return l.From + "->" + l.To }

// LinkEvent is one entry of the fabric's cut/heal history.
type LinkEvent struct {
	AtMs   int64
	Cut    bool // true = cut, false = heal
	A, B   string
	OneWay bool // A->B only; symmetric otherwise
}

// String formats the event for reports and recorder details.
func (e LinkEvent) String() string {
	op := "heal"
	if e.Cut {
		op = "cut"
	}
	arrow := "<->"
	if e.OneWay {
		arrow = "->"
	}
	return fmt.Sprintf("%s {%s%s%s} at %d ms", op, e.A, arrow, e.B, e.AtMs)
}

// Fabric models the network between a scenario's nodes: every directed
// link is up unless explicitly cut. It is not safe for concurrent use —
// like the simulators it connects, it lives on one vclock scheduler.
type Fabric struct {
	sim   *vclock.Sim
	nodes []string
	known map[string]bool
	down  map[Link]bool
	hist  []LinkEvent

	// OnChange, when set, observes every cut/heal (the obs hook).
	OnChange func(LinkEvent)
}

// NewFabric builds a fully-connected fabric over the named nodes.
func NewFabric(sim *vclock.Sim, nodes ...string) *Fabric {
	f := &Fabric{
		sim:   sim,
		nodes: append([]string(nil), nodes...),
		known: make(map[string]bool, len(nodes)),
		down:  make(map[Link]bool),
	}
	sort.Strings(f.nodes)
	for _, n := range f.nodes {
		f.known[n] = true
	}
	return f
}

// Nodes returns the fabric's node names, sorted.
func (f *Fabric) Nodes() []string { return append([]string(nil), f.nodes...) }

// HasNode reports whether the fabric knows the node.
func (f *Fabric) HasNode(name string) bool { return f.known[name] }

func (f *Fabric) check(name string) {
	if !f.known[name] {
		panic(fmt.Sprintf("partition: unknown node %q (fabric has %v)", name, f.nodes))
	}
}

func (f *Fabric) record(ev LinkEvent) {
	ev.AtMs = f.sim.Now()
	f.hist = append(f.hist, ev)
	if f.OnChange != nil {
		f.OnChange(ev)
	}
}

// Cut severs both directions between a and b.
func (f *Fabric) Cut(a, b string) {
	f.check(a)
	f.check(b)
	f.down[Link{a, b}] = true
	f.down[Link{b, a}] = true
	f.record(LinkEvent{Cut: true, A: a, B: b})
}

// CutOneWay severs only the from->to direction — the asymmetric
// partition where requests still flow one way but responses are lost.
func (f *Fabric) CutOneWay(from, to string) {
	f.check(from)
	f.check(to)
	f.down[Link{from, to}] = true
	f.record(LinkEvent{Cut: true, A: from, B: to, OneWay: true})
}

// Heal restores both directions between a and b.
func (f *Fabric) Heal(a, b string) {
	f.check(a)
	f.check(b)
	delete(f.down, Link{a, b})
	delete(f.down, Link{b, a})
	f.record(LinkEvent{Cut: false, A: a, B: b})
}

// HealAll restores every link.
func (f *Fabric) HealAll() {
	for l := range f.down {
		delete(f.down, l)
	}
	f.record(LinkEvent{Cut: false, A: "*", B: "*"})
}

// Connected reports whether from can currently reach to. A node always
// reaches itself.
func (f *Fabric) Connected(from, to string) bool {
	f.check(from)
	f.check(to)
	if from == to {
		return true
	}
	return !f.down[Link{from, to}]
}

// History returns the cut/heal events so far, in virtual-time order.
func (f *Fabric) History() []LinkEvent { return append([]LinkEvent(nil), f.hist...) }

// UndirectedLinks enumerates the fabric's node pairs in canonical
// (sorted) order — the deterministic link universe random schedules
// draw from.
func (f *Fabric) UndirectedLinks() [][2]string {
	var out [][2]string
	for i := 0; i < len(f.nodes); i++ {
		for j := i + 1; j < len(f.nodes); j++ {
			out = append(out, [2]string{f.nodes[i], f.nodes[j]})
		}
	}
	return out
}
