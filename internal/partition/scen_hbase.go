package partition

// P6 (HBASE-6060): a region move is "open on the destination, close on
// the source", driven by the master. Partition the close away while the
// open lands and both region servers hold the region; clients routed by
// stale location caches write to one, clients routed by the master
// write to the other, and the row diverges — the double-assignment
// class the region-serving check exists to prevent.

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/hbasesim"
	"repro/internal/hdfssim"
	"repro/internal/vclock"
)

func scenarioHBaseRegionAssign() *Scenario {
	const region = "r1"
	return &Scenario{
		ID:        "P6",
		Name:      "hbase-region-assign",
		System:    csi.HBase,
		Anchor:    "HBASE-6060",
		Signature: "partition-double-assign",
		Nodes:     []string{"master", "rs1", "rs2"},
		HorizonMs: 6000,
		ArmAtMs:   1000,
		WindowKey: "region:" + region,
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)
			// Each server gets its own filesystem: HDFS files are
			// immutable and the simulated servers name WALs identically,
			// which models each server owning its own WAL directory.
			servers := map[string]*hbasesim.RegionServer{
				"rs1": hbasesim.New(sim, hdfssim.New(sim)),
				"rs2": hbasesim.New(sim, hdfssim.New(sim)),
			}
			servers["rs1"].Start(hbasesim.StartupAssumeReady, 0)
			servers["rs2"].Start(hbasesim.StartupAssumeReady, 0)
			servers["rs1"].OpenRegion(region)
			masterMap := "rs1"
			acceptedOn := map[string]bool{}

			// The master moves r1 from rs1 to rs2 at 2200 ms: assignment
			// record first, then the open RPC to rs2, then the close RPC
			// to rs1 — each retried every 300 ms while its server is
			// unreachable. The gap between open landing and close landing
			// is the natural double-serve window.
			sim.After(2200, func() {
				masterMap = "rs2"
				var openRPC func()
				openRPC = func() {
					if !fab.Connected("master", "rs2") {
						sim.After(300, openRPC)
						return
					}
					servers["rs2"].OpenRegion(region)
				}
				sim.After(50, openRPC)
				var closeRPC func()
				closeRPC = func() {
					if !fab.Connected("master", "rs1") {
						sim.After(300, closeRPC)
						return
					}
					servers["rs1"].CloseRegion(region)
				}
				sim.After(200, closeRPC)
			})

			// A write lands on whichever server the client's location
			// cache names; a not-serving rejection sends the client back
			// to the master for the current assignment.
			write := func(server, value string) {
				if err := servers[server].PutRegion(region, "t", "row", value); err == nil {
					acceptedOn[server] = true
					return
				}
				if server != masterMap {
					if err := servers[masterMap].PutRegion(region, "t", "row", value); err == nil {
						acceptedOn[masterMap] = true
					}
				}
			}
			// Client A's cache still points at rs1; client B routes via
			// the master.
			sim.After(2950, func() { write("rs1", "A") })
			sim.After(3100, func() { write(masterMap, "B") })

			in.FinalCheck = func() {
				if acceptedOn["rs1"] && acceptedOn["rs2"] {
					v1, _, _ := servers["rs1"].Get("t", "row")
					v2, _, _ := servers["rs2"].Get("t", "row")
					in.Report("partition-double-assign", fmt.Sprintf(
						"region %s was served by rs1 and rs2 at once — the close RPC of a move never reached rs1 — and both accepted writes for the same row (rs1=%q, rs2=%q; HBASE-6060 double assignment)",
						region, v1, v2))
				}
			}
			in.ViewsFn = func() map[string]View {
				views := map[string]View{
					"master": {"region:" + region: masterMap},
					"rs1":    {},
					"rs2":    {},
				}
				for _, name := range []string{"rs1", "rs2"} {
					if servers[name].ServesRegion(region) {
						views[name]["region:"+region] = name
					}
				}
				return views
			}
			return in
		},
	}
}
