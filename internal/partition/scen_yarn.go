package partition

// The two YARN scenarios, anchored to CoFI's ResourceManager findings:
//
//   P3 (YARN-10288): the RM's application state machine is fed by AM
//   heartbeats. Freeze the heartbeat while the AM finishes and a later
//   kill is applied to a stale RUNNING machine — the RM records KILLED
//   for an application that completed successfully (the same stale-
//   state-machine class whose loud symptom is the "invalid application
//   state transition" error).
//
//   P4 (YARN-10301): stopping a service whose container has already
//   exited relies on the NodeManager's status sync. Freeze it and the
//   RM forwards the stop into the partition forever — the stop never
//   completes.

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/vclock"
	"repro/internal/yarnsim"
)

func scenarioYarnAppState() *Scenario {
	return &Scenario{
		ID:        "P3",
		Name:      "yarn-app-state",
		System:    csi.YARN,
		Anchor:    "YARN-10288",
		Signature: "partition-app-state",
		Nodes:     []string{"rm", "am", "client"},
		HorizonMs: 6000,
		ArmAtMs:   1500,
		WindowKey: "app:1",
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)
			rm := yarnsim.New(sim, yarnsim.Options{})
			app := rm.SubmitApplication("batch-job")
			amState := yarnsim.StateAccepted

			// The AM's real lifecycle: RUNNING at 1000 ms, FINISHED at
			// 2000 ms.
			sim.After(1000, func() {
				if amState == yarnsim.StateAccepted {
					amState = yarnsim.StateRunning
				}
			})
			sim.After(2000, func() {
				if amState == yarnsim.StateRunning {
					amState = yarnsim.StateFinished
				}
			})

			// AM heartbeats reconcile the RM's state machine toward the
			// AM's, one valid transition at a time.
			sim.Every(300, func() {
				if !fab.Connected("am", "rm") {
					return
				}
				for {
					rmState, err := rm.AppState(app.ID)
					if err != nil || rmState == amState {
						return
					}
					next := rmState
					switch rmState {
					case yarnsim.StateAccepted:
						next = yarnsim.StateRunning
					case yarnsim.StateRunning:
						next = amState
					}
					if next == rmState || rm.TransitionApp(app.ID, next) != nil {
						return
					}
				}
			})

			// The client kills the application at 3500 ms. Against a
			// current state machine the kill is rejected with the
			// YARN-10288 invalid-transition error ("already finished");
			// against a stale RUNNING machine it is recorded.
			sim.After(3500, func() {
				if !fab.Connected("client", "rm") {
					return
				}
				if err := rm.TransitionApp(app.ID, yarnsim.StateKilled); err != nil {
					return // correctly rejected: the app already finished
				}
				if fab.Connected("rm", "am") && yarnsim.ValidAppTransition(amState, yarnsim.StateKilled) {
					amState = yarnsim.StateKilled
				}
			})

			in.FinalCheck = func() {
				rmState, _ := rm.AppState(app.ID)
				if amState == yarnsim.StateFinished && rmState == yarnsim.StateKilled {
					in.Report("partition-app-state", fmt.Sprintf(
						"the application finished successfully on its AM, but the RM recorded %s: a kill landed on the RM's stale RUNNING state machine (YARN-10288 class)",
						rmState))
				}
			}
			in.ViewsFn = func() map[string]View {
				rmState, _ := rm.AppState(app.ID)
				return map[string]View{
					"rm":     {"app:1": rmState.String()},
					"am":     {"app:1": amState.String()},
					"client": {},
				}
			}
			return in
		},
	}
}

func scenarioYarnServiceStop() *Scenario {
	return &Scenario{
		ID:        "P4",
		Name:      "yarn-service-stop",
		System:    csi.YARN,
		Anchor:    "YARN-10301",
		Signature: "partition-stop-lost",
		Nodes:     []string{"rm", "nm", "client"},
		HorizonMs: 6000,
		ArmAtMs:   1000,
		WindowKey: "container:1",
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)
			rm := yarnsim.New(sim, yarnsim.Options{})

			nmState := "" // the container's real state on the NodeManager
			rmCache := "" // the RM's view of it
			stopRequested, stopped := false, false

			rm.RequestContainers(1, yarnsim.Resource{MemoryMB: 1024, Vcores: 1},
				func(c *yarnsim.Container) {
					nmState = "RUNNING"
					rmCache = "RUNNING"
				}, nil)

			// The service's container exits at 2200 ms.
			sim.After(2200, func() {
				if nmState == "RUNNING" {
					nmState = "EXITED"
				}
			})

			// NodeManager status sync keeps the RM's cache honest.
			sim.Every(300, func() {
				if nmState != "" && fab.Connected("nm", "rm") {
					rmCache = nmState
				}
			})

			// The client asks the RM to stop the service at 3600 ms. An
			// RM that knows the container exited acknowledges at once;
			// otherwise it forwards the stop to the NodeManager,
			// retrying every 400 ms while the NM is unreachable.
			var rmStop func()
			rmStop = func() {
				if stopped {
					return
				}
				if rmCache == "EXITED" || rmCache == "STOPPED" {
					stopped = true
					return
				}
				if fab.Connected("rm", "nm") {
					nmState = "STOPPED"
					rmCache = "STOPPED"
					stopped = true
					return
				}
				sim.After(400, rmStop)
			}
			var clientStop func()
			clientStop = func() {
				if !fab.Connected("client", "rm") {
					sim.After(400, clientStop)
					return
				}
				stopRequested = true
				rmStop()
			}
			sim.After(3600, clientStop)

			in.FinalCheck = func() {
				if stopRequested && !stopped {
					in.Report("partition-stop-lost", fmt.Sprintf(
						"the stop of a service whose container had already exited never completed: the RM's cached container state %q kept it retrying a NodeManager it could not reach (YARN-10301)",
						rmCache))
				}
			}
			in.ViewsFn = func() map[string]View {
				views := map[string]View{"rm": {}, "nm": {}, "client": {}}
				if rmCache != "" {
					views["rm"]["container:1"] = rmCache
				}
				if nmState != "" {
					views["nm"]["container:1"] = nmState
				}
				return views
			}
			return in
		},
	}
}
