package partition

// P5 (KAFKA-3410 class): the controller elects partition leaders from
// *its* copy of the ISR. The leader shrinks the ISR the moment a
// follower lags, advances the high watermark alone, and tells the
// controller on the next metadata sync — a window where leader and
// controller hold different ISRs. Cut the leader away inside that
// window and the controller "fails over" to the lagging follower,
// electing a leader whose log is missing acknowledged records: the
// consumer's next fetch lands beyond the new leader's log end.

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/csi"
	"repro/internal/kafkasim"
	"repro/internal/vclock"
)

func scenarioKafkaISR() *Scenario {
	const topic = "events"
	return &Scenario{
		ID:        "P5",
		Name:      "kafka-isr",
		System:    csi.Kafka,
		Anchor:    "KAFKA-3410",
		Signature: "partition-isr-divergence",
		Nodes:     []string{"controller", "b1", "b2"},
		HorizonMs: 6000,
		ArmAtMs:   500,
		WindowKey: "isr:" + topic + "/0",
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)

			// One Broker instance per broker node: each holds its own log
			// and its own local copy of the replication metadata.
			b1log, b2log := kafkasim.NewBroker(), kafkasim.NewBroker()
			_ = b1log.CreateTopic(topic, 1)
			_ = b2log.CreateTopic(topic, 1)
			_ = b1log.SetLeader(topic, 0, "b1")
			_ = b1log.SetISR(topic, 0, "b1", "b2")
			_ = b2log.SetLeader(topic, 0, "b1")
			_ = b2log.SetISR(topic, 0, "b1", "b2")
			logOf := func(name string) *kafkasim.Broker {
				if name == "b2" {
					return b2log
				}
				return b1log
			}

			// The controller's own metadata copy.
			ctrlLeader := "b1"
			ctrlISR := []string{"b1", "b2"}
			missed := 0

			b2Slow := false
			sim.After(2000, func() { b2Slow = true })

			// Producer: a record every 150 ms until 2500 ms, to whichever
			// broker the controller's metadata names as leader. b1
			// replicates to b2 while it can; once the ISR is down to the
			// leader alone, the high watermark advances without b2.
			sim.Every(150, func() {
				if sim.Now() > 2500 {
					return
				}
				lead := logOf(ctrlLeader)
				off, err := lead.Produce(topic, 0, "", []byte(fmt.Sprintf("v%d", sim.Now())))
				if err != nil {
					return
				}
				if ctrlLeader != "b1" {
					_ = lead.SetHighWatermark(topic, 0, off+1)
					return
				}
				if !b2Slow && fab.Connected("b1", "b2") {
					_, _ = b2log.Produce(topic, 0, "", []byte(fmt.Sprintf("v%d", sim.Now())))
					_ = b1log.SetHighWatermark(topic, 0, off+1)
					_ = b2log.SetHighWatermark(topic, 0, off+1)
				} else if isr, _ := b1log.ISR(topic, 0); len(isr) == 1 {
					_ = b1log.SetHighWatermark(topic, 0, off+1)
				}
			})

			// b1's ISR manager notices the lagging follower at 2100 ms,
			// shrinks the ISR to itself and commits its whole log.
			sim.After(2100, func() {
				if b2Slow {
					_ = b1log.SetISR(topic, 0, "b1")
					end, _ := b1log.EndOffset(topic, 0)
					_ = b1log.SetHighWatermark(topic, 0, end)
				}
			})

			// b2 recovers at 3000 ms: catches up from b1 and rejoins the
			// ISR (only meaningful while b1 is still the leader).
			sim.After(3000, func() {
				b2Slow = false
				if ctrlLeader != "b1" || !fab.Connected("b2", "b1") {
					return
				}
				end2, _ := b2log.EndOffset(topic, 0)
				recs, _, err := b1log.Fetch(topic, 0, end2, 1000)
				if err != nil {
					return
				}
				for _, r := range recs {
					_, _ = b2log.Produce(topic, 0, r.Key, r.Value)
				}
				_ = b1log.SetISR(topic, 0, "b1", "b2")
				end1, _ := b1log.EndOffset(topic, 0)
				_ = b1log.SetHighWatermark(topic, 0, end1)
				_ = b2log.SetHighWatermark(topic, 0, end1)
			})

			// Metadata propagation from the leader, every 250 ms: to the
			// controller and to the follower.
			sim.Every(250, func() {
				if ctrlLeader != "b1" {
					return
				}
				isr, _ := b1log.ISR(topic, 0)
				if fab.Connected("b1", "controller") {
					ctrlISR = isr
				}
				if fab.Connected("b1", "b2") {
					_ = b2log.SetISR(topic, 0, isr...)
				}
			})

			// The controller's failure detector: two consecutive missed
			// pings and it elects a new leader from ITS ISR copy. An ISR
			// that (correctly) holds only the dead leader yields no
			// candidate and the partition stays put — the stale copy is
			// what makes the election unclean.
			sim.Every(300, func() {
				if ctrlLeader != "b1" {
					return
				}
				if fab.Connected("controller", "b1") {
					missed = 0
					return
				}
				missed++
				if missed < 2 {
					return
				}
				for _, cand := range ctrlISR {
					if cand == "b1" {
						continue
					}
					ctrlLeader = cand
					lead := logOf(cand)
					_ = lead.SetLeader(topic, 0, cand)
					_ = lead.SetISR(topic, 0, cand)
					end, _ := lead.EndOffset(topic, 0)
					_ = lead.SetHighWatermark(topic, 0, end)
					return
				}
			})

			// The consumer polls the leader named by the controller every
			// 200 ms, reading only committed records. Resuming past the
			// new leader's log end means acknowledged records vanished.
			consNext := int64(0)
			sim.Every(200, func() {
				lead := logOf(ctrlLeader)
				_, next, err := lead.Fetch(topic, 0, consNext, 100)
				if err != nil {
					if errors.Is(err, kafkasim.ErrOffsetOutOfRange) {
						end, _ := lead.EndOffset(topic, 0)
						if consNext > end {
							in.Report("partition-isr-divergence", fmt.Sprintf(
								"consumer resumed at offset %d on new leader %s whose log ends at %d: %d acknowledged records vanished after an election from the controller's stale ISR (KAFKA-3410 class)",
								consNext, ctrlLeader, end, consNext-end))
						}
					}
					return
				}
				if hwm, _ := lead.HighWatermark(topic, 0); next > hwm {
					next = hwm
				}
				if next > consNext {
					consNext = next
				}
			})

			in.ViewsFn = func() map[string]View {
				isrKey, leaderKey := "isr:"+topic+"/0", "leader:"+topic+"/0"
				view := func(b *kafkasim.Broker) View {
					lead, _ := b.Leader(topic, 0)
					isr, _ := b.ISR(topic, 0)
					return View{leaderKey: lead, isrKey: strings.Join(isr, ",")}
				}
				return map[string]View{
					"controller": {leaderKey: ctrlLeader, isrKey: strings.Join(ctrlISR, ",")},
					"b1":         view(b1log),
					"b2":         view(b2log),
				}
			}
			return in
		},
	}
}
