package partition

// The invariant layer: each node exposes a View — its local belief
// about shared control-plane state, as key/value declarations — and the
// monitor compares views after every simulator event. A key two nodes
// declare with different values is an inconsistency: exactly the
// condition CoFI injects partitions under, because the reconciliation
// message that would repair it is in flight and cuttable.

import "sort"

// View is one node's declared view of shared state. A node declares
// only keys it holds a belief about; keys absent from a view are not
// compared (a DataNode that never saw a lease has no opinion on it).
type View map[string]string

// Inconsistency is one observed disagreement: a key declared by at
// least two nodes with differing values.
type Inconsistency struct {
	AtMs   int64
	Key    string
	Values map[string]string // node -> declared value
	Nodes  []string          // declaring nodes, sorted
}

// DisagreeingPairs returns the node pairs holding different values for
// the key, in canonical sorted order — the links the default guided
// isolation cuts.
func (inc Inconsistency) DisagreeingPairs() [][2]string {
	var out [][2]string
	for i := 0; i < len(inc.Nodes); i++ {
		for j := i + 1; j < len(inc.Nodes); j++ {
			if inc.Values[inc.Nodes[i]] != inc.Values[inc.Nodes[j]] {
				out = append(out, [2]string{inc.Nodes[i], inc.Nodes[j]})
			}
		}
	}
	return out
}

// FindInconsistency scans the node views and returns the first
// disagreement in canonical order (lexicographically smallest key), or
// nil when every shared key agrees. Determinism note: iteration is over
// sorted keys and sorted nodes, never map order.
func FindInconsistency(atMs int64, views map[string]View) *Inconsistency {
	nodes := make([]string, 0, len(views))
	for n := range views {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	keySet := make(map[string]bool)
	for _, n := range nodes {
		for k := range views[n] {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		var declaring []string
		values := make(map[string]string)
		distinct := map[string]bool{}
		for _, n := range nodes {
			if v, ok := views[n][k]; ok {
				declaring = append(declaring, n)
				values[n] = v
				distinct[v] = true
			}
		}
		if len(declaring) >= 2 && len(distinct) >= 2 {
			return &Inconsistency{AtMs: atMs, Key: k, Values: values, Nodes: declaring}
		}
	}
	return nil
}

// Violation is one invariant violation a scenario reported: shared
// state that diverged in a way recovery never repaired (stale metadata
// served, a write accepted under a lost lease, acknowledged records
// vanishing, both sides of a region move serving).
type Violation struct {
	AtMs      int64
	Signature string
	Detail    string
}
