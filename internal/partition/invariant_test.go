package partition

import (
	"reflect"
	"testing"
)

func TestFindInconsistency(t *testing.T) {
	cases := []struct {
		name  string
		views map[string]View
		want  *Inconsistency // nil = consistent
	}{
		{
			name:  "all views agree",
			views: map[string]View{"a": {"k": "v"}, "b": {"k": "v"}},
		},
		{
			name:  "single declarer is not a disagreement",
			views: map[string]View{"a": {"k": "v"}, "b": {}},
		},
		{
			name:  "no opinion differs from a wrong opinion",
			views: map[string]View{"a": {"k": "v"}, "b": {"other": "x"}},
		},
		{
			name:  "two declarers disagree",
			views: map[string]View{"a": {"k": "v1"}, "b": {"k": "v2"}, "c": {}},
			want: &Inconsistency{
				AtMs: 7, Key: "k",
				Values: map[string]string{"a": "v1", "b": "v2"},
				Nodes:  []string{"a", "b"},
			},
		},
		{
			name: "smallest key wins when several disagree",
			views: map[string]View{
				"a": {"zz": "1", "aa": "1"},
				"b": {"zz": "2", "aa": "2"},
			},
			want: &Inconsistency{
				AtMs: 7, Key: "aa",
				Values: map[string]string{"a": "1", "b": "2"},
				Nodes:  []string{"a", "b"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := FindInconsistency(7, tc.views)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("FindInconsistency = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestDisagreeingPairs(t *testing.T) {
	inc := Inconsistency{
		Key:    "k",
		Values: map[string]string{"a": "1", "b": "2", "c": "1"},
		Nodes:  []string{"a", "b", "c"},
	}
	// a-c agree; only pairs spanning the two camps disagree.
	want := [][2]string{{"a", "b"}, {"b", "c"}}
	if got := inc.DisagreeingPairs(); !reflect.DeepEqual(got, want) {
		t.Errorf("DisagreeingPairs = %v, want %v", got, want)
	}
}
