package partition

// The scenario registry: seven control-plane deployments, each wired
// from the real simulators with per-node cached views reconciled over
// fabric-gated periodic loops, each anchored to the JIRA issue whose
// failure mode it reproduces. Every scenario has one *natural*
// inconsistency window — a span of virtual time where two nodes
// legitimately disagree while a reconciliation message is in flight —
// and one management-plane operation later in the timeline that goes
// wrong if the disagreement is frozen. The windows are narrow (100-300
// ms in 5-8 s horizons) and the acting operations are far from them,
// which is exactly why naive random-time injection with a bounded hold
// either misses the window or heals early enough for recovery to mask
// the bug.

import (
	"sort"

	"repro/internal/csi"
	"repro/internal/vclock"
)

// Instance is one built scenario run: live view closures plus the
// violations the scenario's ground-truth checks reported.
type Instance struct {
	sim *vclock.Sim
	// ViewsFn snapshots every node's current view of shared state.
	ViewsFn func() map[string]View
	// FinalCheck, if set, runs after the horizon — for invariants only
	// decidable at end of run (terminal state machines, divergent logs).
	FinalCheck func()

	violations []Violation
	seen       map[string]bool
}

// NewInstance creates an instance on the scenario's clock.
func NewInstance(sim *vclock.Sim) *Instance {
	return &Instance{sim: sim, seen: make(map[string]bool)}
}

// Report records an invariant violation, deduplicating by signature
// (the same split-brain often trips several ground-truth checks).
func (in *Instance) Report(signature, detail string) {
	if in.seen[signature] {
		return
	}
	in.seen[signature] = true
	in.violations = append(in.violations, Violation{AtMs: in.sim.Now(), Signature: signature, Detail: detail})
}

// Violations returns the reported violations in report order.
func (in *Instance) Violations() []Violation {
	return append([]Violation(nil), in.violations...)
}

// Views snapshots the node views.
func (in *Instance) Views() map[string]View {
	if in.ViewsFn == nil {
		return nil
	}
	return in.ViewsFn()
}

// Scenario is one registered partition scenario.
type Scenario struct {
	// ID is the P* registry key (inject.PartitionRegistry mirrors it).
	ID string
	// Name is the stable scenario name used by CLIs and job specs.
	Name string
	// System is the primary system whose shared state diverges.
	System csi.System
	// Anchor is the JIRA issue the failure mode reproduces.
	Anchor string
	// Signature is the classifier key the scenario's violation carries.
	Signature string
	// Nodes are the fabric's node names.
	Nodes []string
	// HorizonMs bounds the run.
	HorizonMs int64
	// ArmAtMs is when the guided monitor arms: initial-propagation
	// transients before it are not injection candidates.
	ArmAtMs int64
	// WindowKey names the view key whose natural disagreement window
	// the scenario is built around (reports and EXPERIMENTS.md).
	WindowKey string
	// Build wires the simulators onto the clock and fabric.
	Build func(sim *vclock.Sim, fab *Fabric) *Instance
	// Isolate applies the guided cut for an observed inconsistency.
	// Nil means the default: a held symmetric cut of every link between
	// disagreeing nodes.
	Isolate func(fab *Fabric, inc Inconsistency)
}

// isolate applies the scenario's guided cut.
func (sc *Scenario) isolate(fab *Fabric, inc Inconsistency) {
	if sc.Isolate != nil {
		sc.Isolate(fab, inc)
		return
	}
	for _, pair := range inc.DisagreeingPairs() {
		fab.Cut(pair[0], pair[1])
	}
}

// Scenarios returns the registry in P* order.
func Scenarios() []*Scenario {
	return []*Scenario{
		scenarioHDFSReplica(),
		scenarioHDFSLease(),
		scenarioYarnAppState(),
		scenarioYarnServiceStop(),
		scenarioKafkaISR(),
		scenarioHBaseRegionAssign(),
		scenarioFlinkPendingBook(),
	}
}

// ByName returns the named scenario, or nil.
func ByName(name string) *Scenario {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	var out []string
	for _, sc := range Scenarios() {
		out = append(out, sc.Name)
	}
	sort.Strings(out)
	return out
}
