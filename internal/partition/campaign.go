package partition

// The campaign runner: the consistency-guided injector, plus the two
// baselines it is measured against.
//
//   observe  — no injection; measures each scenario's natural
//              inconsistency window (when the views first disagree
//              after arming, and when reconciliation repairs them).
//   guided   — CoFI: step the simulator one event at a time, compare
//              every node's view after each event, and on the first
//              post-arm disagreement cut the links between the
//              disagreeing nodes and HOLD the cut to the horizon.
//   random   — the naive baseline: a seeded random link and cut time,
//              healed after a bounded hold.
//   fixed    — a caller-supplied schedule (the serve job kind and the
//              replay path for pinned regressions).
//   compare  — observe + guided + random side by side, and the report
//              names the findings only the guided injector reached.
//
// Every mode is deterministic: the random schedules are a pure
// function of (seed, scenario, trial), units never share mutable
// state, and the report renderer iterates slices, never maps — so a
// campaign's Render/Hash is bit-identical across -parallel settings
// and repeated runs.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/fuzzgen"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Strategy selects the injection mode of a campaign.
type Strategy string

// The campaign strategies.
const (
	StrategyObserve Strategy = "observe"
	StrategyGuided  Strategy = "guided"
	StrategyRandom  Strategy = "random"
	StrategyFixed   Strategy = "fixed"
	StrategyCompare Strategy = "compare"
)

// Strategies returns the valid strategy names, sorted.
func Strategies() []string {
	return []string{"compare", "fixed", "guided", "observe", "random"}
}

// ValidStrategy reports whether name is a known strategy.
func ValidStrategy(name string) bool {
	for _, s := range Strategies() {
		if s == name {
			return true
		}
	}
	return false
}

// Cut is one scheduled link cut of a fixed schedule.
type Cut struct {
	AtMs     int64  `json:"at_ms"`
	From     string `json:"from"`
	To       string `json:"to"`
	OneWay   bool   `json:"one_way,omitempty"`
	HealAtMs int64  `json:"heal_at_ms,omitempty"` // 0 = held to the horizon
}

// Options configures a campaign.
type Options struct {
	Seed      uint64
	Scenarios []string // scenario names; empty = full registry
	Strategy  Strategy // default guided
	Trials    int      // random trials per scenario (default 20)
	HoldMs    int64    // random-cut hold before healing (default 1000)
	Parallel  int      // concurrent units (default 1)
	Schedule  []Cut    // StrategyFixed's schedule

	Tracer    *obs.Tracer
	Metrics   *obs.Registry
	Recorder  *obs.Recorder
	OnFinding func(Finding) // called in deterministic report order
}

// Finding is one invariant violation surfaced by a campaign unit.
type Finding struct {
	Scenario  string `json:"scenario"`
	ID        string `json:"id"`
	Anchor    string `json:"anchor"`
	Signature string `json:"signature"`
	Detail    string `json:"detail"`
	AtMs      int64  `json:"at_ms"`
	Strategy  string `json:"strategy"`
	Trial     int    `json:"trial"`     // random trial index; -1 otherwise
	CutAtMs   int64  `json:"cut_at_ms"` // when the triggering cut landed; -1 = none
}

// ScenarioOutcome aggregates every unit run against one scenario.
type ScenarioOutcome struct {
	Scenario  string `json:"scenario"`
	ID        string `json:"id"`
	Anchor    string `json:"anchor"`
	Signature string `json:"signature"`
	Nodes     string `json:"nodes"` // comma-joined, sorted
	HorizonMs int64  `json:"horizon_ms"`
	WindowKey string `json:"window_key"`

	// The observe pass: the natural inconsistency window. -1 = never
	// opened / never closed inside the horizon.
	WindowOpenMs  int64     `json:"window_open_ms"`
	WindowCloseMs int64     `json:"window_close_ms"`
	Baseline      []Finding `json:"baseline,omitempty"` // violations with no injection (a modeling bug if non-empty)

	GuidedCutMs    int64     `json:"guided_cut_ms"` // -1 = the guided monitor never fired
	GuidedCuts     []string  `json:"guided_cuts,omitempty"`
	GuidedFindings []Finding `json:"guided_findings,omitempty"`

	RandomTrials   int       `json:"random_trials,omitempty"`
	RandomFindings []Finding `json:"random_findings,omitempty"`

	FixedFindings []Finding `json:"fixed_findings,omitempty"`
}

// Result is a full campaign outcome.
type Result struct {
	Seed     uint64            `json:"seed"`
	Strategy Strategy          `json:"strategy"`
	Trials   int               `json:"trials"`
	HoldMs   int64             `json:"hold_ms"`
	Outcomes []ScenarioOutcome `json:"outcomes"`
}

// PlannedCut is one entry of a deterministic schedule enumeration: the
// exact cut a random trial will inject for a given seed.
type PlannedCut struct {
	Scenario string `json:"scenario"`
	Trial    int    `json:"trial"`
	From     string `json:"from"`
	To       string `json:"to"`
	AtMs     int64  `json:"at_ms"`
	HealAtMs int64  `json:"heal_at_ms"`
}

// registryIndex returns the scenario's stable position in the full
// registry, so a scenario's random schedule does not depend on which
// subset of scenarios a campaign selected.
func registryIndex(sc *Scenario) int {
	for i, s := range Scenarios() {
		if s.ID == sc.ID {
			return i
		}
	}
	return 0
}

// randomCutFor derives trial k's cut for a scenario: a pure function of
// (seed, scenario, trial).
func randomCutFor(sc *Scenario, seed uint64, trial int) ([2]string, int64) {
	rng := fuzzgen.NewRand(fuzzgen.DeriveSeed(seed, registryIndex(sc)*1000+trial))
	fab := NewFabric(vclock.New(), sc.Nodes...)
	links := fab.UndirectedLinks()
	link := links[rng.Intn(len(links))]
	at := int64(rng.Intn(int(sc.HorizonMs)))
	return link, at
}

// PlanRandom enumerates the cut schedule a random campaign with the
// given parameters will inject, without running anything.
func PlanRandom(seed uint64, scenarios []string, trials int, holdMs int64) ([]PlannedCut, error) {
	scs, err := selectScenarios(scenarios)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = defaultTrials
	}
	if holdMs <= 0 {
		holdMs = defaultHoldMs
	}
	var out []PlannedCut
	for _, sc := range scs {
		for k := 0; k < trials; k++ {
			link, at := randomCutFor(sc, seed, k)
			out = append(out, PlannedCut{
				Scenario: sc.Name, Trial: k,
				From: link[0], To: link[1],
				AtMs: at, HealAtMs: at + holdMs,
			})
		}
	}
	return out, nil
}

const (
	defaultTrials = 20
	defaultHoldMs = 1000
)

func selectScenarios(names []string) ([]*Scenario, error) {
	if len(names) == 0 {
		return Scenarios(), nil
	}
	var out []*Scenario
	for _, name := range names {
		sc := ByName(name)
		if sc == nil {
			return nil, fmt.Errorf("partition: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, sc)
	}
	return out, nil
}

// unitResult is what one isolated run of one scenario produces.
type unitResult struct {
	windowOpen  int64
	windowClose int64
	cutAt       int64
	cuts        []string
	findings    []Finding
}

// runUnit executes one (scenario, mode, trial) unit on a fresh clock,
// fabric, and simulator wiring. mode is one of the Strategy values
// except compare; schedule applies only to fixed; trial only to random.
func runUnit(sc *Scenario, mode Strategy, trial int, opts Options) unitResult {
	res := unitResult{windowOpen: -1, windowClose: -1, cutAt: -1}
	sim := vclock.New()
	fab := NewFabric(sim, sc.Nodes...)

	var sp *obs.Span
	if opts.Tracer != nil {
		sp = opts.Tracer.Span(nil, sc.System, csi.ControlPlane, "partition:"+string(mode)+":"+sc.Name)
		sp.Set("scenario", sc.Name).Set("anchor", sc.Anchor)
		if trial >= 0 {
			sp.Set("trial", fmt.Sprintf("%d", trial))
		}
	}
	fab.OnChange = func(ev LinkEvent) {
		typ := obs.EvPartitionHeal
		if ev.Cut {
			typ = obs.EvPartitionCut
			if opts.Metrics != nil {
				opts.Metrics.Counter(obs.MetricPartitionCuts, "scenario", sc.Name).Inc()
			}
		}
		opts.Recorder.Record(obs.Event{Type: typ, Job: sc.Name, Detail: ev.String()})
	}

	in := sc.Build(sim, fab)

	switch mode {
	case StrategyRandom:
		link, at := randomCutFor(sc, opts.Seed, trial)
		res.cutAt = at
		sim.After(at, func() { fab.Cut(link[0], link[1]) })
		sim.After(at+opts.HoldMs, func() { fab.Heal(link[0], link[1]) })
		sim.Run(sc.HorizonMs)
	case StrategyFixed:
		for _, c := range opts.Schedule {
			if !fab.HasNode(c.From) || !fab.HasNode(c.To) {
				continue
			}
			c := c
			if res.cutAt < 0 || c.AtMs < res.cutAt {
				res.cutAt = c.AtMs
			}
			sim.After(c.AtMs, func() {
				if c.OneWay {
					fab.CutOneWay(c.From, c.To)
				} else {
					fab.Cut(c.From, c.To)
				}
			})
			if c.HealAtMs > c.AtMs {
				sim.After(c.HealAtMs, func() { fab.Heal(c.From, c.To) })
			}
		}
		sim.Run(sc.HorizonMs)
	default: // observe and guided share the step-driven monitor
		injected := false
		for {
			next := sim.NextAt()
			if next < 0 || next > sc.HorizonMs {
				break
			}
			sim.Step()
			if sim.Now() < sc.ArmAtMs {
				continue
			}
			inc := FindInconsistency(sim.Now(), in.Views())
			if inc == nil {
				if res.windowOpen >= 0 && res.windowClose < 0 {
					res.windowClose = sim.Now()
				}
				continue
			}
			if res.windowOpen < 0 {
				res.windowOpen = sim.Now()
			}
			if mode == StrategyGuided && !injected {
				injected = true
				res.cutAt = sim.Now()
				sc.isolate(fab, *inc)
			}
		}
		sim.Run(sc.HorizonMs) // land the clock exactly on the horizon
	}

	if in.FinalCheck != nil {
		in.FinalCheck()
	}
	for _, v := range in.Violations() {
		res.findings = append(res.findings, Finding{
			Scenario: sc.Name, ID: sc.ID, Anchor: sc.Anchor,
			Signature: v.Signature, Detail: v.Detail, AtMs: v.AtMs,
			Strategy: string(mode), Trial: trial, CutAtMs: res.cutAt,
		})
		opts.Recorder.Record(obs.Event{Type: obs.EvInvariantViolated, Job: sc.Name, Detail: v.Signature})
		if opts.Metrics != nil {
			opts.Metrics.Counter(obs.MetricPartitionFindings, "scenario", sc.Name, "strategy", string(mode)).Inc()
		}
	}
	for _, ev := range fab.History() {
		res.cuts = append(res.cuts, ev.String())
	}
	if sp != nil {
		sp.Set("findings", fmt.Sprintf("%d", len(res.findings)))
		sp.End()
	}
	return res
}

// Run executes a campaign. Units (scenario x mode x trial) are fully
// independent and run on opts.Parallel workers; results are assembled
// in deterministic order regardless of completion order.
func Run(opts Options) (*Result, error) {
	if opts.Strategy == "" {
		opts.Strategy = StrategyGuided
	}
	if !ValidStrategy(string(opts.Strategy)) {
		return nil, fmt.Errorf("partition: unknown strategy %q (have %s)", opts.Strategy, strings.Join(Strategies(), ", "))
	}
	if opts.Trials <= 0 {
		opts.Trials = defaultTrials
	}
	if opts.HoldMs <= 0 {
		opts.HoldMs = defaultHoldMs
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	if opts.Strategy == StrategyFixed && len(opts.Schedule) == 0 {
		return nil, fmt.Errorf("partition: strategy %q needs a non-empty schedule", StrategyFixed)
	}
	scs, err := selectScenarios(opts.Scenarios)
	if err != nil {
		return nil, err
	}

	// Enumerate units. Every strategy runs the observe pass: the
	// natural window contextualizes any finding, and it is cheap.
	type unit struct {
		scIdx int
		mode  Strategy
		trial int
	}
	var units []unit
	for i := range scs {
		units = append(units, unit{i, StrategyObserve, -1})
		if opts.Strategy == StrategyGuided || opts.Strategy == StrategyCompare {
			units = append(units, unit{i, StrategyGuided, -1})
		}
		if opts.Strategy == StrategyRandom || opts.Strategy == StrategyCompare {
			for k := 0; k < opts.Trials; k++ {
				units = append(units, unit{i, StrategyRandom, k})
			}
		}
		if opts.Strategy == StrategyFixed {
			units = append(units, unit{i, StrategyFixed, -1})
		}
	}

	results := make([]unitResult, len(units))
	if opts.Parallel == 1 {
		for i, u := range units {
			results[i] = runUnit(scs[u.scIdx], u.mode, u.trial, opts)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < opts.Parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					u := units[i]
					results[i] = runUnit(scs[u.scIdx], u.mode, u.trial, opts)
				}
			}()
		}
		for i := range units {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Deterministic assembly, in scenario order then mode then trial —
	// the order units were enumerated in.
	res := &Result{Seed: opts.Seed, Strategy: opts.Strategy, Trials: opts.Trials, HoldMs: opts.HoldMs}
	outcomes := make([]ScenarioOutcome, len(scs))
	for i, sc := range scs {
		outcomes[i] = ScenarioOutcome{
			Scenario: sc.Name, ID: sc.ID, Anchor: sc.Anchor, Signature: sc.Signature,
			Nodes:     strings.Join(NewFabric(vclock.New(), sc.Nodes...).Nodes(), ","),
			HorizonMs: sc.HorizonMs, WindowKey: sc.WindowKey,
			WindowOpenMs: -1, WindowCloseMs: -1, GuidedCutMs: -1,
		}
	}
	emit := func(fs []Finding) {
		if opts.OnFinding != nil {
			for _, f := range fs {
				opts.OnFinding(f)
			}
		}
	}
	for i, u := range units {
		out := &outcomes[u.scIdx]
		r := results[i]
		switch u.mode {
		case StrategyObserve:
			out.WindowOpenMs, out.WindowCloseMs = r.windowOpen, r.windowClose
			out.Baseline = append(out.Baseline, r.findings...)
		case StrategyGuided:
			out.GuidedCutMs = r.cutAt
			out.GuidedCuts = r.cuts
			out.GuidedFindings = append(out.GuidedFindings, r.findings...)
		case StrategyRandom:
			out.RandomTrials++
			out.RandomFindings = append(out.RandomFindings, r.findings...)
		case StrategyFixed:
			out.FixedFindings = append(out.FixedFindings, r.findings...)
		}
	}
	for i := range outcomes {
		emit(outcomes[i].Baseline)
		emit(outcomes[i].GuidedFindings)
		emit(outcomes[i].RandomFindings)
		emit(outcomes[i].FixedFindings)
	}
	res.Outcomes = outcomes
	return res, nil
}

// GuidedOnlyIDs returns the P* IDs found by the guided injector and by
// no random trial — the CoFI differential a compare campaign exists to
// demonstrate.
func (r *Result) GuidedOnlyIDs() []string {
	randomHit := map[string]bool{}
	for _, out := range r.Outcomes {
		for _, f := range out.RandomFindings {
			randomHit[f.ID] = true
		}
	}
	var ids []string
	for _, out := range r.Outcomes {
		for _, f := range out.GuidedFindings {
			if !randomHit[f.ID] {
				ids = append(ids, f.ID)
				break
			}
		}
	}
	sort.Strings(ids)
	return ids
}

// Render formats the campaign deterministically: byte-identical output
// for identical options, independent of Parallel.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition campaign seed=%d strategy=%s trials=%d hold=%dms scenarios=%d\n",
		r.Seed, r.Strategy, r.Trials, r.HoldMs, len(r.Outcomes))
	writeFinding := func(f Finding) {
		fmt.Fprintf(&b, "    - %s @%dms", f.Signature, f.AtMs)
		if f.Trial >= 0 {
			fmt.Fprintf(&b, " (trial %d, cut @%dms)", f.Trial, f.CutAtMs)
		}
		fmt.Fprintf(&b, ": %s\n", f.Detail)
	}
	guidedCount, randomCount := 0, 0
	var guidedIDs []string
	for _, out := range r.Outcomes {
		fmt.Fprintf(&b, "\n%s %s (%s) nodes=%s horizon=%dms\n",
			out.ID, out.Scenario, out.Anchor, out.Nodes, out.HorizonMs)
		switch {
		case out.WindowOpenMs < 0:
			fmt.Fprintf(&b, "  natural window: none (key %s)\n", out.WindowKey)
		case out.WindowCloseMs < 0:
			fmt.Fprintf(&b, "  natural window: [%dms, horizon) key %s\n", out.WindowOpenMs, out.WindowKey)
		default:
			fmt.Fprintf(&b, "  natural window: [%dms, %dms) key %s\n", out.WindowOpenMs, out.WindowCloseMs, out.WindowKey)
		}
		fmt.Fprintf(&b, "  baseline: %d violations\n", len(out.Baseline))
		for _, f := range out.Baseline {
			writeFinding(f)
		}
		if r.Strategy == StrategyGuided || r.Strategy == StrategyCompare {
			if out.GuidedCutMs < 0 {
				fmt.Fprintf(&b, "  guided: no inconsistency observed; no cut\n")
			} else {
				fmt.Fprintf(&b, "  guided: cut at %dms [%s]; %d findings\n",
					out.GuidedCutMs, strings.Join(out.GuidedCuts, "; "), len(out.GuidedFindings))
			}
			for _, f := range out.GuidedFindings {
				writeFinding(f)
			}
			if len(out.GuidedFindings) > 0 {
				guidedCount += len(out.GuidedFindings)
				guidedIDs = append(guidedIDs, out.ID)
			}
		}
		if r.Strategy == StrategyRandom || r.Strategy == StrategyCompare {
			fmt.Fprintf(&b, "  random: %d trials, %d findings\n", out.RandomTrials, len(out.RandomFindings))
			for _, f := range out.RandomFindings {
				writeFinding(f)
			}
			randomCount += len(out.RandomFindings)
		}
		if r.Strategy == StrategyFixed {
			fmt.Fprintf(&b, "  fixed: %d findings\n", len(out.FixedFindings))
			for _, f := range out.FixedFindings {
				writeFinding(f)
			}
		}
	}
	fmt.Fprintf(&b, "\nsummary strategy=%s\n", r.Strategy)
	if r.Strategy == StrategyGuided || r.Strategy == StrategyCompare {
		fmt.Fprintf(&b, "  guided findings: %d (%s)\n", guidedCount, strings.Join(guidedIDs, " "))
	}
	if r.Strategy == StrategyRandom || r.Strategy == StrategyCompare {
		fmt.Fprintf(&b, "  random findings: %d\n", randomCount)
	}
	if r.Strategy == StrategyCompare {
		only := r.GuidedOnlyIDs()
		fmt.Fprintf(&b, "  guided-only: %d (%s)\n", len(only), strings.Join(only, " "))
	}
	return b.String()
}

// Hash is the campaign's content hash: sha256 over the rendered report.
func (r *Result) Hash() string {
	return core.HashBytes([]byte(r.Render()))
}
