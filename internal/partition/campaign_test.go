package partition

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSeed pins the campaign every golden and differential assertion
// runs: the CI partition-smoke job and the serve tests use the same
// seed, so one pinned report covers them all.
const goldenSeed = 42

func mustRun(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenCompareReport pins the full seed-42 compare campaign byte
// for byte. Any behavioural drift in a scenario, the injector, the
// random schedules, or the renderer shows up as a golden diff
// (regenerate deliberately with -update).
func TestGoldenCompareReport(t *testing.T) {
	res := mustRun(t, Options{Seed: goldenSeed, Strategy: StrategyCompare})
	got := res.Render()
	path := filepath.Join("testdata", "compare_seed42.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("compare report drifted from golden (regenerate deliberately with -update):\n got:\n%s\nwant:\n%s", got, want)
	}
	if res.Hash() != core.HashBytes([]byte(got)) {
		t.Error("Hash() must be the hash of the rendered report")
	}
}

// TestGuidedFindsWhatRandomMisses is the CoFI differential the whole
// package exists for: under the same seed budget, the consistency-
// guided injector reaches every P* finding while random-time injection
// (20 trials x 1000 ms holds per scenario) reaches only the scenarios
// whose inconsistency windows are wide or whose effects outlast a heal.
func TestGuidedFindsWhatRandomMisses(t *testing.T) {
	res := mustRun(t, Options{Seed: goldenSeed, Strategy: StrategyCompare})

	var guided, random []string
	for _, out := range res.Outcomes {
		if len(out.GuidedFindings) > 0 {
			guided = append(guided, out.ID)
		}
		if len(out.RandomFindings) > 0 {
			random = append(random, out.ID)
		}
	}
	if want := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"}; !reflect.DeepEqual(guided, want) {
		t.Errorf("guided found %v, want every scenario %v", guided, want)
	}
	if want := []string{"P2", "P5"}; !reflect.DeepEqual(random, want) {
		t.Errorf("random found %v, want %v (seed %d)", random, want, goldenSeed)
	}
	only := res.GuidedOnlyIDs()
	if len(only) < 3 {
		t.Fatalf("guided-only = %v; the differential needs at least 3 scenarios random misses", only)
	}
	if want := []string{"P1", "P3", "P4", "P6", "P7"}; !reflect.DeepEqual(only, want) {
		t.Errorf("GuidedOnlyIDs = %v, want %v", only, want)
	}
}

// TestBaselinesClean pins that no scenario violates its invariant
// without injection — a non-empty baseline would mean the finding is a
// modeling bug, not a partition bug — and that every scenario has a
// real, bounded natural inconsistency window for the guided injector to
// hit (P7's stays open: the pending book diverges until the delayed
// notifications drain).
func TestBaselinesClean(t *testing.T) {
	res := mustRun(t, Options{Seed: goldenSeed, Strategy: StrategyObserve})
	for _, out := range res.Outcomes {
		if len(out.Baseline) != 0 {
			t.Errorf("%s: %d baseline violations without injection: %+v", out.ID, len(out.Baseline), out.Baseline)
		}
		if out.WindowOpenMs < 0 {
			t.Errorf("%s: no natural inconsistency window; guided injection has nothing to react to", out.ID)
		}
		if out.ID != "P7" && out.WindowCloseMs <= out.WindowOpenMs {
			t.Errorf("%s: window [%d, %d) never closes; reconciliation should repair it un-injected",
				out.ID, out.WindowOpenMs, out.WindowCloseMs)
		}
	}
}

// TestHoldPreventsMasking demonstrates why the guided injector HOLDS
// its cut: the same cut at the same instant inside P1's window finds
// the bug when held to the horizon, and is masked when healed — the
// next block report repairs the NameNode's replica list before the
// client read.
func TestHoldPreventsMasking(t *testing.T) {
	cut := Cut{AtMs: 2100, From: "dn1", To: "nn"} // inside P1's [2020, 2250) window
	held := mustRun(t, Options{
		Seed: goldenSeed, Scenarios: []string{"hdfs-replica"},
		Strategy: StrategyFixed, Schedule: []Cut{cut},
	})
	if n := len(held.Outcomes[0].FixedFindings); n != 1 {
		t.Fatalf("held cut found %d violations, want 1", n)
	}

	cut.HealAtMs = 2400 // heal before the 2500 ms block report
	healed := mustRun(t, Options{
		Seed: goldenSeed, Scenarios: []string{"hdfs-replica"},
		Strategy: StrategyFixed, Schedule: []Cut{cut},
	})
	if n := len(healed.Outcomes[0].FixedFindings); n != 0 {
		t.Fatalf("healed cut found %d violations, want 0: recovery must mask the unheld cut", n)
	}
}

// TestParallelDeterminism pins the deterministic-replay property:
// identical options render byte-identical reports (and emit identical
// finding streams) regardless of worker count. Run under -race and
// -count=3 by the tier-1 suite.
func TestParallelDeterminism(t *testing.T) {
	var seq, par []Finding
	r1 := mustRun(t, Options{Seed: goldenSeed, Strategy: StrategyCompare, Parallel: 1,
		OnFinding: func(f Finding) { seq = append(seq, f) }})
	r4 := mustRun(t, Options{Seed: goldenSeed, Strategy: StrategyCompare, Parallel: 4,
		OnFinding: func(f Finding) { par = append(par, f) }})
	if r1.Render() != r4.Render() {
		t.Error("report differs between -parallel 1 and 4")
	}
	if r1.Hash() != r4.Hash() {
		t.Error("hash differs between -parallel 1 and 4")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("OnFinding stream differs:\n seq=%+v\n par=%+v", seq, par)
	}
}

// TestPlanRandomDeterministic pins that random schedules are a pure
// function of (seed, scenario, trial) — and independent of which
// scenario subset a campaign selects, so a single-scenario rerun
// replays exactly the cuts the full campaign injected.
func TestPlanRandomDeterministic(t *testing.T) {
	full, err := PlanRandom(goldenSeed, nil, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := PlanRandom(goldenSeed, nil, 5, 1000)
	if !reflect.DeepEqual(full, again) {
		t.Error("same seed produced different plans")
	}
	other, _ := PlanRandom(goldenSeed+1, nil, 5, 1000)
	if reflect.DeepEqual(full, other) {
		t.Error("different seeds produced identical plans")
	}

	sub, err := PlanRandom(goldenSeed, []string{"kafka-isr"}, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var fromFull []PlannedCut
	for _, c := range full {
		if c.Scenario == "kafka-isr" {
			fromFull = append(fromFull, c)
		}
	}
	if !reflect.DeepEqual(sub, fromFull) {
		t.Errorf("subset plan differs from the full plan's kafka-isr slice:\n sub=%v\n full=%v", sub, fromFull)
	}
}

// TestCampaignErrors covers the admission-style failures Run must
// reject rather than guess at.
func TestCampaignErrors(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"unknown scenario", Options{Scenarios: []string{"nope"}}, `unknown scenario "nope"`},
		{"unknown strategy", Options{Strategy: "chaotic"}, `unknown strategy "chaotic"`},
		{"fixed without schedule", Options{Strategy: StrategyFixed}, "needs a non-empty schedule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Run = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if _, err := PlanRandom(1, []string{"nope"}, 1, 1); err == nil {
		t.Error("PlanRandom accepted an unknown scenario")
	}
}

// TestFixedSkipsUnknownNodes pins that a fixed schedule spanning
// several scenarios applies to each only the cuts whose nodes exist
// there (serve validates against the union of selected scenarios).
func TestFixedSkipsUnknownNodes(t *testing.T) {
	res := mustRun(t, Options{
		Seed: goldenSeed, Scenarios: []string{"yarn-app-state"},
		Strategy: StrategyFixed,
		Schedule: []Cut{
			{AtMs: 2050, From: "am", To: "rm"},       // applies: inside P3's window
			{AtMs: 2100, From: "dn1", To: "nn"},      // P1 nodes; skipped here
			{AtMs: 10, From: "controller", To: "b1"}, // P5 nodes; skipped here
		},
	})
	out := res.Outcomes[0]
	if n := len(out.FixedFindings); n != 1 {
		t.Fatalf("fixed findings = %d, want 1 (the am-rm cut inside the window)", n)
	}
	if got := out.FixedFindings[0].CutAtMs; got != 2050 {
		t.Errorf("CutAtMs = %d, want 2050 (the applied cut, not a skipped one)", got)
	}
}
