package partition

// Round-trip tests between the scenario registry (this package) and
// the P* discrepancy registry (internal/inject): every entry on either
// side must resolve on the other, with matching IDs, anchors, scenario
// names, and signatures — so a campaign finding always classifies and
// a classifier entry is never dead.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/inject"
)

func TestRegistryRoundTrip(t *testing.T) {
	scenarios := Scenarios()
	registry := inject.PartitionRegistry()
	if len(scenarios) != len(registry) {
		t.Fatalf("scenario registry has %d entries, P* registry has %d", len(scenarios), len(registry))
	}

	// Scenario -> discrepancy: every scenario's ID, anchor, and
	// signature must resolve to the matching P* entry.
	byID := inject.PartitionByID()
	bySig := inject.PartitionBySignature()
	for _, sc := range scenarios {
		d, ok := byID[sc.ID]
		if !ok {
			t.Errorf("scenario %s (%s) has no P* registry entry", sc.ID, sc.Name)
			continue
		}
		if d.Scenario != sc.Name {
			t.Errorf("%s: registry scenario %q != scenario name %q", sc.ID, d.Scenario, sc.Name)
		}
		if d.Anchor != sc.Anchor {
			t.Errorf("%s: registry anchor %q != scenario anchor %q", sc.ID, d.Anchor, sc.Anchor)
		}
		if got, ok := bySig[sc.Signature]; !ok || got.ID != sc.ID {
			t.Errorf("%s: signature %q resolves to %v, want the same entry", sc.ID, sc.Signature, got.ID)
		}
		if len(d.Categories) == 0 || d.Title == "" || d.Invariant == "" {
			t.Errorf("%s: registry entry missing categories, title, or invariant", sc.ID)
		}
	}

	// Discrepancy -> scenario: every P* entry must point at a real
	// scenario and claim exactly its signature.
	for _, d := range registry {
		sc := ByName(d.Scenario)
		if sc == nil {
			t.Errorf("%s: registry scenario %q does not exist", d.ID, d.Scenario)
			continue
		}
		if sc.ID != d.ID {
			t.Errorf("registry %s points at scenario %s", d.ID, sc.ID)
		}
		if len(d.Signatures) != 1 || d.Signatures[0] != sc.Signature {
			t.Errorf("%s: registry signatures %v, want exactly [%s]", d.ID, d.Signatures, sc.Signature)
		}
	}
}

// TestClassifyPartition pins the classifier bridge: campaign findings
// classify by signature, unknown signatures report as genuinely new.
func TestClassifyPartition(t *testing.T) {
	for _, sc := range Scenarios() {
		d, ok := core.ClassifyPartition(sc.Signature)
		if !ok || d.ID != sc.ID {
			t.Errorf("ClassifyPartition(%q) = %v/%v, want %s", sc.Signature, d.ID, ok, sc.ID)
		}
	}
	if _, ok := core.ClassifyPartition("partition-nope"); ok {
		t.Error("unknown signature classified")
	}
}

// TestPartitionFailureShape pins the failure lift: partition findings
// carry the partition oracle, a caseless shape (Case and Peer nil), and
// a detail prefixed with the scenario.
func TestPartitionFailureShape(t *testing.T) {
	f := core.PartitionFailure("kafka-isr", "partition-isr-divergence", "offsets vanished")
	if f.Oracle.String() != "part" {
		t.Errorf("oracle = %q, want part", f.Oracle.String())
	}
	if f.Case != nil || f.Peer != nil {
		t.Error("partition failures must not carry a test case or peer")
	}
	if f.Detail != "[kafka-isr] offsets vanished" {
		t.Errorf("detail = %q", f.Detail)
	}
}

// TestPartitionCategoriesOutsideCensus pins that the two control-plane
// categories stay out of Categories(): the §8.2 census and its
// Figure-6 counts are data-plane only.
func TestPartitionCategoriesOutsideCensus(t *testing.T) {
	for _, c := range inject.Categories() {
		if c == inject.OperationOutcome || c == inject.PerfDegradation {
			t.Errorf("control-plane category %q leaked into the §8.2 census", c)
		}
	}
}
