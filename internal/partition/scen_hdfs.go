package partition

// The two HDFS scenarios, anchored to CoFI's NameNode findings:
//
//   P1 (HDFS-15367): a DataNode's block report is the only thing that
//   keeps the NameNode's replica locations honest. Cut it away while
//   the views disagree and the NameNode serves locations no DataNode
//   backs.
//
//   P2 (HDFS-15235): a lease that expires during a client GC pause is
//   reassigned by the NameNode; if neither the old holder nor the
//   DataNode pipeline hears about it, the old holder's stale-generation
//   writes are accepted and the new holder's legitimate ones rejected.

import (
	"fmt"
	"strings"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/vclock"
)

func scenarioHDFSReplica() *Scenario {
	const path = "/data/part-0"
	return &Scenario{
		ID:        "P1",
		Name:      "hdfs-replica",
		System:    csi.HDFS,
		Anchor:    "HDFS-15367",
		Signature: "partition-stale-replica",
		Nodes:     []string{"nn", "dn1", "dn2", "client"},
		HorizonMs: 6000,
		ArmAtMs:   100,
		WindowKey: "replica@dn1:" + path,
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)
			fs := hdfssim.New(sim)
			_ = fs.Write(path, []byte("block"), hdfssim.WriteOptions{})
			fs.SetReplicas(path, "dn1", "dn2")
			holds := map[string]bool{"dn1": true, "dn2": true}

			// dn1 loses its replica to a disk fault at 2020 ms — between
			// block-report ticks, so the NameNode's view stays stale until
			// the next report at 2250 ms.
			sim.After(2020, func() { holds["dn1"] = false })

			// Block reports: each DataNode tells the NameNode what it
			// actually holds; the NameNode repairs its location list and
			// re-replicates from the surviving copy after 100 ms.
			report := func(dn string) {
				if !fab.Connected(dn, "nn") {
					return
				}
				listed := false
				for _, n := range fs.Replicas(path) {
					if n == dn {
						listed = true
					}
				}
				switch {
				case holds[dn] && !listed:
					fs.AddReplica(path, dn)
				case !holds[dn] && listed:
					fs.RemoveReplica(path, dn)
					sim.After(100, func() {
						if holds["dn2"] && fab.Connected("nn", dn) && fab.Connected(dn, "dn2") {
							holds[dn] = true
							fs.AddReplica(path, dn)
						}
					})
				}
			}
			sim.Every(250, func() { report("dn1") })
			sim.Every(250, func() { report("dn2") })

			// The client opens the file at 4200 ms and reads from the
			// first listed location it can reach. A reachable location
			// that does not hold the block is the HDFS-15367 violation:
			// NameNode metadata pointing at a replica that is not there.
			sim.After(4200, func() {
				if !fab.Connected("client", "nn") {
					return // cannot even fetch locations; not a metadata bug
				}
				for _, loc := range fs.Replicas(path) {
					if !fab.Connected("client", loc) {
						continue
					}
					if holds[loc] {
						return // served
					}
					in.Report("partition-stale-replica", fmt.Sprintf(
						"client read of %s failed: NameNode metadata lists replica on %s but the DataNode does not hold the block (locations %s)",
						path, loc, strings.Join(fs.Replicas(path), ",")))
					return
				}
			})

			in.ViewsFn = func() map[string]View {
				nn := View{}
				for _, n := range fs.Replicas(path) {
					nn["replica@"+n+":"+path] = "held"
				}
				dnView := func(dn string) View {
					v := View{}
					if holds[dn] {
						v["replica@"+dn+":"+path] = "held"
					} else {
						v["replica@"+dn+":"+path] = "gone"
					}
					return v
				}
				return map[string]View{
					"nn": nn, "dn1": dnView("dn1"), "dn2": dnView("dn2"), "client": {},
				}
			}
			return in
		},
	}
}

func scenarioHDFSLease() *Scenario {
	const path = "/data/output"
	const key = "lease:" + path
	return &Scenario{
		ID:        "P2",
		Name:      "hdfs-lease",
		System:    csi.HDFS,
		Anchor:    "HDFS-15235",
		Signature: "partition-lease-split-brain",
		Nodes:     []string{"nn", "c1", "c2", "dn"},
		HorizonMs: 6000,
		ArmAtMs:   1500,
		WindowKey: key,
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)
			fs := hdfssim.New(sim)
			fs.SetLeaseTTL(1000)

			// Per-node beliefs about the lease, as "holder:gen".
			belief := map[string]string{} // c1/c2's own belief
			dnCache := ""                 // DataNode's cached pipeline lease
			dnSynced := false
			paused := false // c1's GC pause

			// The GC pause: c1 stops renewing in [2000, 2800).
			sim.After(2000, func() { paused = true })
			sim.After(2800, func() { paused = false })

			// c1 acquires the write lease at 500 ms and renews every
			// 300 ms — until the GC pause lets it lapse at 2700 ms.
			sim.After(500, func() {
				if !fab.Connected("c1", "nn") {
					return
				}
				gen, err := fs.AcquireLease(path, "c1")
				if err != nil {
					return
				}
				belief["c1"] = fmt.Sprintf("c1:%d", gen)
				sim.Every(300, func() {
					if paused || belief["c1"] == "" || !fab.Connected("c1", "nn") {
						return
					}
					if err := fs.RenewLease(path, "c1"); err != nil {
						belief["c1"] = "" // the client learns it lost the lease
					}
				})
			})

			// The NameNode's lease monitor: a 100 ms cadence that gives
			// the invariant layer an observation point at the exact
			// expiry instant (expiry itself is lazy).
			sim.Every(100, func() {})

			// The DataNode caches the NameNode's lease view every 250 ms
			// and validates pipeline writes against the cache.
			sim.Every(250, func() {
				if !fab.Connected("dn", "nn") {
					return
				}
				holder, gen := fs.LeaseHolder(path)
				if holder == "" {
					dnCache = ""
				} else {
					dnCache = fmt.Sprintf("%s:%d", holder, gen)
				}
				dnSynced = true
			})

			// write models a pipeline write: the DataNode accepts it when
			// the presented holder:gen matches its cache (or it has no
			// cached lease to check against), and the scenario judges the
			// outcome against the NameNode's ground truth.
			write := func(client string) {
				cred := belief[client]
				if cred == "" || !fab.Connected(client, "dn") {
					return
				}
				accepted := dnCache == "" || dnCache == cred
				holder, _ := fs.LeaseHolder(path)
				switch {
				case accepted && holder != client:
					in.Report("partition-lease-split-brain", fmt.Sprintf(
						"DataNode accepted a pipeline write from %s under stale lease %s while the NameNode's lease holder is %q (HDFS-15235 split-brain)",
						client, cred, holder))
				case !accepted && holder == client:
					in.Report("partition-lease-split-brain", fmt.Sprintf(
						"DataNode rejected the current lease holder %s (lease %s): its cached pipeline lease %q never learned the reassignment",
						client, cred, dnCache))
				}
			}

			// c2 acquires the lapsed lease at 3200 ms (retrying while the
			// NameNode is unreachable) and writes at 3500 ms; c1 — still
			// believing it holds the lease — writes at 4000 ms.
			var c2Acquire func()
			c2Acquire = func() {
				if !fab.Connected("c2", "nn") {
					sim.After(300, c2Acquire)
					return
				}
				gen, err := fs.AcquireLease(path, "c2")
				if err != nil {
					sim.After(300, c2Acquire)
					return
				}
				belief["c2"] = fmt.Sprintf("c2:%d", gen)
			}
			sim.After(3200, c2Acquire)
			sim.After(3500, func() { write("c2") })
			sim.After(4000, func() { write("c1") })

			in.ViewsFn = func() map[string]View {
				holder, gen := fs.LeaseHolder(path)
				nnVal := ""
				if holder != "" {
					nnVal = fmt.Sprintf("%s:%d", holder, gen)
				}
				views := map[string]View{"nn": {key: nnVal}, "c1": {}, "c2": {}, "dn": {}}
				if v, ok := belief["c1"]; ok {
					views["c1"][key] = v
				}
				if v, ok := belief["c2"]; ok {
					views["c2"][key] = v
				}
				if dnSynced {
					views["dn"][key] = dnCache
				}
				return views
			}
			return in
		},
	}
}
