package partition

// P7 (FLINK-10848): the JobManager's pending-request book assumes every
// request is answered. Under an *asymmetric* partition — requests reach
// the RM, allocation notifications never come back — the ModeBuggy
// client re-requests its whole stale book every heartbeat, and the RM
// grants container after container to a job that never hears about any
// of them. This is the one scenario whose guided isolation overrides
// the default symmetric cut: the inconsistency (RM's live-container
// count vs the JobManager's allocated count) is only held open by
// cutting the rm->jm direction alone.

import (
	"fmt"
	"strconv"

	"repro/internal/csi"
	"repro/internal/flinksim"
	"repro/internal/vclock"
	"repro/internal/yarnsim"
)

// gatedGateway carries JobManager->RM traffic over the fabric: a
// request is lost when jm cannot reach rm at send time, and an
// allocation (or error) notification is lost when rm cannot reach jm at
// delivery time. Lost messages leave the pending book untouched —
// exactly the staleness FLINK-10848's heartbeat storm feeds on.
type gatedGateway struct {
	sim           *vclock.Sim
	fab           *Fabric
	rm            *yarnsim.ResourceManager
	notifyDelayMs int64
}

func (g *gatedGateway) RequestContainers(n int, ask yarnsim.Resource, onAllocated func(*yarnsim.Container), onError func(error)) {
	if !g.fab.Connected("jm", "rm") {
		return // request lost on the wire; the book keeps the entries
	}
	g.rm.RequestContainers(n, ask,
		func(c *yarnsim.Container) {
			g.sim.After(g.notifyDelayMs, func() {
				if g.fab.Connected("rm", "jm") {
					onAllocated(c)
				}
				// else: the RM granted a container the job never hears of
			})
		},
		func(err error) {
			g.sim.After(g.notifyDelayMs, func() {
				if g.fab.Connected("rm", "jm") {
					onError(err)
				}
			})
		})
}

func scenarioFlinkPendingBook() *Scenario {
	const target = 5
	return &Scenario{
		ID:        "P7",
		Name:      "flink-pending-book",
		System:    csi.Flink,
		Anchor:    "FLINK-10848",
		Signature: "partition-over-allocation",
		Nodes:     []string{"rm", "jm"},
		HorizonMs: 6000,
		ArmAtMs:   500,
		WindowKey: "containers:flink-job",
		Isolate: func(fab *Fabric, inc Inconsistency) {
			fab.CutOneWay("rm", "jm")
		},
		Build: func(sim *vclock.Sim, fab *Fabric) *Instance {
			in := NewInstance(sim)
			rmgr := yarnsim.New(sim, yarnsim.Options{AllocLatencyMs: 150})
			gw := &gatedGateway{sim: sim, fab: fab, rm: rmgr, notifyDelayMs: 250}
			client := flinksim.NewYarnResourceClient(sim, rmgr, flinksim.ResourceClientOptions{
				Mode:        flinksim.ModeBuggy,
				Target:      target,
				HeartbeatMs: 500,
				Gateway:     gw,
			})
			sim.After(2000, client.Start)

			in.FinalCheck = func() {
				granted := rmgr.Stats().ContainersGranted
				if client.Allocated() < target && granted >= int64(4*target) {
					in.Report("partition-over-allocation", fmt.Sprintf(
						"the RM granted %d containers against a target of %d while the JobManager received %d allocation notifications: every heartbeat re-requested the stale pending book across an asymmetric partition (FLINK-10848)",
						granted, target, client.Allocated()))
				}
			}
			in.ViewsFn = func() map[string]View {
				return map[string]View{
					"rm": {"containers:flink-job": strconv.Itoa(rmgr.Stats().LiveContainers)},
					"jm": {"containers:flink-job": strconv.Itoa(client.Allocated())},
				}
			}
			return in
		},
	}
}
