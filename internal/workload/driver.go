package workload

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sqlval"
)

// Engine selects the driver's write/read path.
type Engine int

// The drivers.
const (
	// ViaDataFrame loads through Spark's DataFrame writer and scans
	// through the DataFrame reader.
	ViaDataFrame Engine = iota
	// ViaHive loads and scans through HiveQL. The SQL path builds
	// statements, so it exercises the parser as real clients do; it is
	// driven batch-by-batch with multi-row VALUES.
	ViaHive
)

// RunResult summarizes a driver run.
type RunResult struct {
	Tables  int
	RowsIn  int
	RowsOut int
	// ScanAgree reports whether both engines scanned every table with
	// the same row counts and no errors. At workload scale a single
	// data-plane discrepancy (e.g. the legacy decimal encoding of
	// SPARK-39158) flips this for the whole deployment.
	ScanAgree bool
	// HiveScanErrors counts tables Hive could not scan at all.
	HiveScanErrors int
}

// Run loads the workload into a fresh co-deployment through the given
// engine under the given Spark configuration, then scans every table
// back through BOTH engines and compares row counts — a bulk-data smoke
// of the cross-system data plane.
func Run(tables []Table, via Engine, format string, sparkConf map[string]string) (RunResult, error) {
	d := core.NewDeployment()
	for k, v := range sparkConf {
		d.Spark.Conf().Set(k, v)
	}
	res := RunResult{Tables: len(tables), ScanAgree: true}
	for _, t := range tables {
		switch via {
		case ViaDataFrame:
			for _, batch := range t.Batches {
				df, err := d.Spark.CreateDataFrame(t.Schema, batch)
				if err != nil {
					return res, err
				}
				if err := df.SaveAsTable(t.Name, format); err != nil {
					return res, err
				}
				res.RowsIn += len(batch)
			}
		case ViaHive:
			var defs []string
			for _, c := range t.Schema.Columns {
				defs = append(defs, fmt.Sprintf("%s %s", c.Name, c.Type))
			}
			create := fmt.Sprintf("CREATE TABLE %s (%s) STORED AS %s", t.Name, strings.Join(defs, ", "), format)
			if _, err := d.Hive.Execute(create); err != nil {
				return res, err
			}
			for _, batch := range t.Batches {
				if _, err := d.Hive.Execute(insertStatement(t.Name, batch)); err != nil {
					return res, err
				}
				res.RowsIn += len(batch)
			}
		default:
			return res, fmt.Errorf("workload: unknown engine %d", via)
		}

		sres, err := d.Spark.SQL(fmt.Sprintf("SELECT * FROM %s", t.Name))
		if err != nil {
			return res, err
		}
		res.RowsOut += len(sres.Rows)
		// Cross-engine comparison: full scan row count and COUNT(*) must
		// agree across the boundary.
		hres, err := d.Hive.Execute(fmt.Sprintf("SELECT * FROM %s", t.Name))
		if err != nil {
			// A cross-system read failure (e.g. SerDeException on Spark's
			// legacy decimals) is a finding, not a driver error.
			res.HiveScanErrors++
			res.ScanAgree = false
			continue
		}
		if len(sres.Rows) != len(hres.Rows) {
			res.ScanAgree = false
		}
		hcount, err := d.Hive.Execute(fmt.Sprintf("SELECT COUNT(*) FROM %s", t.Name))
		if err != nil || len(hcount.Rows) != 1 || hcount.Rows[0][0].I != int64(len(hres.Rows)) {
			res.ScanAgree = false
		}
	}
	return res, nil
}

// insertStatement renders a multi-row INSERT for the batch.
func insertStatement(table string, batch []sqlval.Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", table)
	for i, row := range batch {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(literal(v))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// literal renders a value as a SQL literal the parser accepts.
func literal(v sqlval.Value) string {
	if v.Null {
		return "NULL"
	}
	switch v.Type.Kind {
	case sqlval.KindString, sqlval.KindChar, sqlval.KindVarchar:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case sqlval.KindTimestamp:
		return fmt.Sprintf("TIMESTAMP '%s'", sqlval.FormatTimestamp(v.I))
	case sqlval.KindDate:
		return fmt.Sprintf("DATE '%s'", sqlval.FormatDate(v.I))
	case sqlval.KindBoolean:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return v.String()
	}
}
