package workload

import (
	"testing"

	"repro/internal/sqlval"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Tables: 2, RowsPerTable: 50, BatchSize: 20})
	b := Generate(Spec{Tables: 2, RowsPerTable: 50, BatchSize: 20})
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("tables = %d / %d", len(a), len(b))
	}
	for ti := range a {
		for bi := range a[ti].Batches {
			for ri := range a[ti].Batches[bi] {
				ra, rb := a[ti].Batches[bi][ri], b[ti].Batches[bi][ri]
				if !ra.Equal(rb) {
					t.Fatalf("row %d/%d/%d differs: %v vs %v", ti, bi, ri, ra, rb)
				}
			}
		}
	}
	// Different seeds generate different data.
	c := Generate(Spec{Tables: 2, RowsPerTable: 50, BatchSize: 20, Seed: 42})
	if a[0].Batches[0][0].Equal(c[0].Batches[0][0]) {
		t.Error("different seeds should generate different rows")
	}
}

func TestGenerateShape(t *testing.T) {
	tables := Generate(Spec{Tables: 3, RowsPerTable: 55, BatchSize: 20})
	rows, batches := Totals(tables)
	if rows != 165 {
		t.Errorf("rows = %d", rows)
	}
	if batches != 9 { // 3 full batches per table (20+20+15)
		t.Errorf("batches = %d", batches)
	}
	for _, tab := range tables {
		if len(tab.Schema.Columns) != 7 {
			t.Errorf("schema = %v", tab.Schema)
		}
		for _, batch := range tab.Batches {
			for _, row := range batch {
				if len(row) != 7 {
					t.Fatalf("row arity = %d", len(row))
				}
				if row[3].Type.Kind != sqlval.KindDecimal || row[3].D.Scale != 2 {
					t.Fatalf("amount = %v", row[3])
				}
			}
		}
	}
}

func TestRunViaDataFrameHitsLegacyDecimal(t *testing.T) {
	// Under the default configuration the DataFrame loader writes
	// Spark's legacy binary decimals: Spark scans everything, Hive scans
	// nothing — SPARK-39158 at workload scale.
	tables := Generate(Spec{Tables: 2, RowsPerTable: 100, BatchSize: 50})
	res, err := Run(tables, ViaDataFrame, "parquet", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsIn != 200 || res.RowsOut != 200 {
		t.Errorf("rows in/out = %d/%d", res.RowsIn, res.RowsOut)
	}
	if res.ScanAgree || res.HiveScanErrors != 2 {
		t.Errorf("res = %+v, want every Hive scan to fail under the default config", res)
	}
}

func TestRunViaDataFrameFixedDecimalWriter(t *testing.T) {
	tables := Generate(Spec{Tables: 2, RowsPerTable: 100, BatchSize: 50})
	res, err := Run(tables, ViaDataFrame, "parquet",
		map[string]string{"spark.sql.hive.writeLegacyDecimal": "false"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScanAgree || res.HiveScanErrors != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestRunViaHive(t *testing.T) {
	tables := Generate(Spec{Tables: 1, RowsPerTable: 60, BatchSize: 30})
	res, err := Run(tables, ViaHive, "orc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsIn != 60 || res.RowsOut != 60 || !res.ScanAgree {
		t.Errorf("res = %+v", res)
	}
}

func TestRunAvroCrossEngineAgreesOnCounts(t *testing.T) {
	// With the decimal writer fixed, the workload schema avoids the
	// Avro-incompatible types, so even the widening format agrees.
	tables := Generate(Spec{Tables: 1, RowsPerTable: 40, BatchSize: 40})
	res, err := Run(tables, ViaDataFrame, "avro",
		map[string]string{"spark.sql.hive.writeLegacyDecimal": "false"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScanAgree || res.RowsOut != 40 {
		t.Errorf("res = %+v", res)
	}
}

func TestLiteralRendering(t *testing.T) {
	cases := map[string]sqlval.Value{
		"NULL":                            sqlval.NullOf(sqlval.Int),
		"'it''s'":                         sqlval.StringVal("it's"),
		"true":                            sqlval.BoolVal(true),
		"DATE '1970-01-01'":               sqlval.DateVal(0),
		"TIMESTAMP '1970-01-01 00:00:01'": sqlval.TimestampVal(sqlval.MicrosPerSecond),
		"42":                              sqlval.IntVal(sqlval.Int, 42),
	}
	for want, v := range cases {
		if got := literal(v); got != want {
			t.Errorf("literal(%v) = %q, want %q", v, got, want)
		}
	}
}
