// Package workload generates deterministic analytic workloads for the
// benchmark harness: batches of typed rows over parameterized schemas,
// and driver routines that run them through the co-deployed engines.
// The generator is seeded and pure, so every benchmark run replays the
// identical workload.
package workload

import (
	"fmt"
	"math"

	"repro/internal/serde"
	"repro/internal/sqlval"
)

// Spec parameterizes a workload.
type Spec struct {
	// Tables is the number of tables to create.
	Tables int
	// RowsPerTable is the rows inserted into each table.
	RowsPerTable int
	// BatchSize is the rows per INSERT (each batch becomes a part file).
	BatchSize int
	// Format is the storage format ("orc", "parquet", "avro").
	Format string
	// Seed drives the deterministic generator.
	Seed uint64
}

// Defaults fills zero fields with usable values.
func (s Spec) Defaults() Spec {
	if s.Tables == 0 {
		s.Tables = 4
	}
	if s.RowsPerTable == 0 {
		s.RowsPerTable = 1000
	}
	if s.BatchSize == 0 {
		s.BatchSize = 200
	}
	if s.Format == "" {
		s.Format = "parquet"
	}
	if s.Seed == 0 {
		s.Seed = 0x9e3779b97f4a7c15
	}
	return s
}

// Table is one generated table: a schema and its row batches.
type Table struct {
	Name    string
	Schema  serde.Schema
	Batches [][]sqlval.Row
}

// rng is a small splitmix64 generator: deterministic, seedable, and
// independent of the math/rand global state.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// analyticSchema is the fixed mixed-type schema analytic fact tables
// use: identifiers, measures, dimensions, and a timestamp.
func analyticSchema() serde.Schema {
	return serde.Schema{Columns: []serde.Column{
		{Name: "EventId", Type: sqlval.BigInt},
		{Name: "UserId", Type: sqlval.Int},
		{Name: "Action", Type: sqlval.String},
		{Name: "Amount", Type: sqlval.DecimalType(12, 2)},
		{Name: "Score", Type: sqlval.Double},
		{Name: "Flagged", Type: sqlval.Boolean},
		{Name: "At", Type: sqlval.Timestamp},
	}}
}

var actions = []string{"view", "click", "purchase", "refund", "share"}

// Generate builds the workload.
func Generate(spec Spec) []Table {
	spec = spec.Defaults()
	r := &rng{state: spec.Seed}
	schema := analyticSchema()
	tables := make([]Table, spec.Tables)
	for t := range tables {
		table := Table{Name: fmt.Sprintf("events_%02d", t), Schema: schema}
		rows := make([]sqlval.Row, spec.RowsPerTable)
		for i := range rows {
			cents := int64(r.intn(1_000_000))
			rows[i] = sqlval.Row{
				sqlval.IntVal(sqlval.BigInt, int64(t)<<32|int64(i)),
				sqlval.IntVal(sqlval.Int, int64(r.intn(100_000))),
				sqlval.StringVal(actions[r.intn(len(actions))]),
				sqlval.Value{Type: sqlval.DecimalType(12, 2), D: sqlval.Decimal{Unscaled: cents, Scale: 2}},
				sqlval.DoubleVal(math.Sqrt(float64(r.intn(10_000)))),
				sqlval.BoolVal(r.intn(100) < 3),
				sqlval.TimestampVal(1_600_000_000_000_000 + int64(i)*sqlval.MicrosPerSecond),
			}
		}
		for start := 0; start < len(rows); start += spec.BatchSize {
			end := start + spec.BatchSize
			if end > len(rows) {
				end = len(rows)
			}
			table.Batches = append(table.Batches, rows[start:end])
		}
		tables[t] = table
	}
	return tables
}

// Totals reports the workload's size.
func Totals(tables []Table) (rows, batches int) {
	for _, t := range tables {
		for _, b := range t.Batches {
			rows += len(b)
			batches++
		}
	}
	return rows, batches
}
