package flinksim

import (
	"errors"
	"testing"

	"repro/internal/kafkasim"
	"repro/internal/vclock"
	"repro/internal/yarnsim"
)

// storm runs the FLINK-12342 scenario under a mode: C containers, a
// 500 ms heartbeat, and a per-container allocation latency long enough
// that a batch cannot complete within one heartbeat.
func storm(t *testing.T, mode ClientMode, heartbeatMs int64) *YarnResourceClient {
	t.Helper()
	sim := vclock.New()
	rm := yarnsim.New(sim, yarnsim.Options{AllocLatencyMs: 150, ClusterMemoryMB: 1 << 30})
	client := NewYarnResourceClient(sim, rm, ResourceClientOptions{
		Mode:        mode,
		Target:      20,
		HeartbeatMs: heartbeatMs,
		Ask:         yarnsim.Resource{MemoryMB: 1024, Vcores: 1},
	})
	client.Start()
	sim.Run(60000) // one virtual minute
	client.Stop()
	return client
}

func TestBuggyModeFloodsResourceManager(t *testing.T) {
	// Figure 1: the synchronous assumption turns 50 needed containers
	// into thousands of requests.
	c := storm(t, ModeBuggy, 500)
	if c.Allocated() != 20 {
		t.Errorf("allocated = %d", c.Allocated())
	}
	if c.TotalRequested() < 500 {
		t.Errorf("total requested = %d, want a storm (>= 500)", c.TotalRequested())
	}
}

func TestWorkaround1LargerIntervalAvoidsStorm(t *testing.T) {
	// Figure 5 workaround #1: with the interval raised beyond the batch
	// allocation time (20 × 150 ms = 3 s), no re-requests happen.
	c := storm(t, ModeWorkaround1, 5000)
	if c.Allocated() != 20 {
		t.Errorf("allocated = %d", c.Allocated())
	}
	if c.TotalRequested() != 20 {
		t.Errorf("total requested = %d, want exactly 20", c.TotalRequested())
	}
}

func TestWorkaround1StillVulnerableWhenIntervalTooSmall(t *testing.T) {
	// The workaround reduces likelihood, it does not remove the root
	// cause: a mistuned interval still storms.
	c := storm(t, ModeWorkaround1, 500)
	if c.TotalRequested() < 500 {
		t.Errorf("total requested = %d, workaround #1 with small interval should still storm", c.TotalRequested())
	}
}

func TestWorkaround2TopsUpDeficitOnly(t *testing.T) {
	c := storm(t, ModeWorkaround2, 500)
	if c.Allocated() != 20 {
		t.Errorf("allocated = %d", c.Allocated())
	}
	if c.TotalRequested() != 20 {
		t.Errorf("total requested = %d, want exactly 20", c.TotalRequested())
	}
}

func TestAsyncResolutionRequestsOnce(t *testing.T) {
	c := storm(t, ModeAsync, 500)
	if c.Allocated() != 20 {
		t.Errorf("allocated = %d", c.Allocated())
	}
	if c.TotalRequested() != 20 {
		t.Errorf("total requested = %d", c.TotalRequested())
	}
	if c.DoneAt() != 20*150 {
		t.Errorf("done at %d ms, want 3000", c.DoneAt())
	}
}

func TestStormOutcomesOrdering(t *testing.T) {
	buggy := storm(t, ModeBuggy, 500)
	fixed := storm(t, ModeAsync, 500)
	if buggy.TotalRequested() <= 10*fixed.TotalRequested() {
		t.Errorf("storm factor = %d vs %d, want >10x", buggy.TotalRequested(), fixed.TotalRequested())
	}
}

func TestJVMSizingVersusPmemMonitor(t *testing.T) {
	// FLINK-887: without headroom the JobManager exceeds its container
	// and is killed; the cutoff sizing survives.
	sim := vclock.New()
	rm := yarnsim.New(sim, yarnsim.Options{AllocLatencyMs: 10})
	var jm *yarnsim.Container
	rm.RequestContainers(1, yarnsim.Resource{MemoryMB: 2048, Vcores: 1}, func(c *yarnsim.Container) { jm = c }, nil)
	sim.Run(100)
	var killed *yarnsim.Container
	rm.StartPmemMonitor(1000, func(c *yarnsim.Container) { killed = c })

	rm.SetContainerPmem(jm.ID, ProcessPmemMB(2048, SizingNoHeadroom))
	sim.Run(3000)
	if killed == nil {
		t.Fatal("no-headroom JobManager should be pmem-killed")
	}

	killed = nil
	var jm2 *yarnsim.Container
	rm.RequestContainers(1, yarnsim.Resource{MemoryMB: 2048, Vcores: 1}, func(c *yarnsim.Container) { jm2 = c }, nil)
	sim.Run(3200)
	rm.SetContainerPmem(jm2.ID, ProcessPmemMB(2048, SizingWithCutoff))
	sim.Run(10000)
	if killed != nil {
		t.Errorf("cutoff-sized JobManager killed: %s", killed.KillReason)
	}
}

func TestKafkaSourceContiguityAssumption(t *testing.T) {
	broker := kafkasim.NewBroker()
	if err := broker.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := broker.Produce("events", 0, "k"+string(rune('a'+i%2)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction removes superseded keys, leaving gaps.
	removed, err := broker.Compact("events", 0)
	if err != nil || removed == 0 {
		t.Fatalf("compact = %d, %v", removed, err)
	}

	buggy := NewKafkaSource(broker, KafkaSourceOptions{Topic: "events", AssumeContiguousOffsets: true})
	_, err = buggy.Poll(10)
	var oge *OffsetGapError
	if !errors.As(err, &oge) {
		t.Fatalf("err = %v, want OffsetGapError", err)
	}

	fixed := NewKafkaSource(broker, KafkaSourceOptions{Topic: "events"})
	recs, err := fixed.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // the latest record of each key survives compaction
		t.Errorf("records = %d (%v)", len(recs), recs)
	}
}

func TestKafkaSourceTransactionMarkers(t *testing.T) {
	broker := kafkasim.NewBroker()
	if err := broker.CreateTopic("tx", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Produce("tx", 0, "k", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.AppendTxnMarker("tx", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Produce("tx", 0, "k2", []byte("2")); err != nil {
		t.Fatal(err)
	}
	buggy := NewKafkaSource(broker, KafkaSourceOptions{Topic: "tx", AssumeContiguousOffsets: true})
	if _, err := buggy.Poll(10); err == nil {
		t.Error("marker gap should trip the contiguity assumption")
	}
	fixed := NewKafkaSource(broker, KafkaSourceOptions{Topic: "tx"})
	recs, err := fixed.Poll(10)
	if err != nil || len(recs) != 2 {
		t.Errorf("records = %v, %v", recs, err)
	}
}

func TestHiveCatalogProctimeMapping(t *testing.T) {
	// FLINK-17189: PROCTIME is stored as TIMESTAMP but the reverse
	// mapping is missing until fixed.
	if ToHiveType(TypeProctime) != "TIMESTAMP" {
		t.Error("PROCTIME should store as TIMESTAMP")
	}
	if _, err := FromHiveType("TIMESTAMP", TypeProctime, false); err == nil {
		t.Error("unfixed mapping should fail")
	}
	got, err := FromHiveType("TIMESTAMP", TypeProctime, true)
	if err != nil || got != TypeProctime {
		t.Errorf("fixed mapping = %v, %v", got, err)
	}
	got, err = FromHiveType("TIMESTAMP", TypeTimestamp, false)
	if err != nil || got != TypeTimestamp {
		t.Errorf("plain timestamp = %v, %v", got, err)
	}
}

func TestClientModeStrings(t *testing.T) {
	modes := []ClientMode{ModeBuggy, ModeWorkaround1, ModeWorkaround2, ModeAsync}
	seen := map[string]bool{}
	for _, m := range modes {
		s := m.String()
		if seen[s] {
			t.Errorf("duplicate mode name %q", s)
		}
		seen[s] = true
	}
}
