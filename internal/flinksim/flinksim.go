// Package flinksim simulates the Flink-side halves of the paper's
// control- and management-plane CSI failures:
//
//   - the YARN resource client of FLINK-12342 (Figure 1) with all four
//     behaviours of the fix ladder (Figure 5): the buggy synchronous
//     assumption, the two interim workarounds, and the asynchronous
//     resolution;
//   - the JobManager memory sizing of FLINK-887, which is killed by
//     YARN's pmem monitor when the JVM is sized without headroom;
//   - a Kafka source that optionally assumes contiguous offsets, the
//     SPARK-19361 / streaming-plane wrong-API-assumption pattern;
//   - the Hive catalog type mapping of FLINK-17189, which stores
//     PROCTIME columns as Hive TIMESTAMP but cannot translate them
//     back.
package flinksim

import (
	"fmt"
	"strconv"

	"repro/internal/csi"
	"repro/internal/kafkasim"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/yarnsim"
)

// ClientMode selects the resource client's behaviour, following the
// FLINK-12342 fix ladder of Figure 5.
type ClientMode int

// The four behaviours.
const (
	// ModeBuggy is the original behaviour: every heartbeat re-requests
	// the aggregated pending containers plus the current requirement,
	// assuming the previous round completed synchronously.
	ModeBuggy ClientMode = iota
	// ModeWorkaround1 is Figure 5 workaround #1: the heartbeat interval
	// becomes configurable (and is set large enough for allocations to
	// land), reducing the chance of re-requests.
	ModeWorkaround1
	// ModeWorkaround2 is Figure 5 workaround #2: container requests are
	// removed from the pending book as soon as they are submitted, so a
	// heartbeat only tops up the true deficit.
	ModeWorkaround2
	// ModeAsync is the resolution: the client uses the asynchronous
	// NMClientAsync API and reacts to allocation callbacks instead of
	// polling, submitting each request exactly once.
	ModeAsync
)

// String names the mode as in Figure 5.
func (m ClientMode) String() string {
	switch m {
	case ModeBuggy:
		return "buggy-sync-assumption"
	case ModeWorkaround1:
		return "workaround1-configurable-interval"
	case ModeWorkaround2:
		return "workaround2-remove-requests-early"
	case ModeAsync:
		return "resolution3-nmclient-async"
	default:
		return fmt.Sprintf("ClientMode(%d)", int(m))
	}
}

// RMGateway abstracts the client->RM request channel so a fault plane
// can interpose on it (drop requests, delay or drop allocation
// callbacks). *yarnsim.ResourceManager satisfies it directly.
type RMGateway interface {
	RequestContainers(n int, ask yarnsim.Resource,
		onAllocated func(*yarnsim.Container), onError func(error))
}

// ResourceClientOptions configure a YarnResourceClient.
type ResourceClientOptions struct {
	Mode ClientMode
	// Target is C, the number of containers the job requires.
	Target int
	// HeartbeatMs is the request interval (500 ms in FLINK-12342;
	// workaround #1 raises it).
	HeartbeatMs int64
	// Ask is the per-container resource request.
	Ask yarnsim.Resource
	// Gateway, when non-nil, carries container requests instead of the
	// direct RM call — the seam the partition fault plane cuts.
	Gateway RMGateway
}

// YarnResourceClient is Flink's container-requesting client.
type YarnResourceClient struct {
	sim  *vclock.Sim
	rm   *yarnsim.ResourceManager
	gw   RMGateway
	opts ResourceClientOptions

	allocated  int
	submitted  int // asks submitted and not yet allocated
	totalAsked int
	containers []*yarnsim.Container
	errs       []error
	ticker     *vclock.Timer
	doneAtMs   int64

	tracer   *obs.Tracer
	traceTop *obs.Span
}

// SetTrace attaches a tracer and default parent span; the client then
// emits a Flink control-plane span per container request round. The
// client runs single-threaded on the vclock scheduler. A nil tracer
// disables emission.
func (c *YarnResourceClient) SetTrace(tr *obs.Tracer, parent *obs.Span) {
	c.tracer = tr
	c.traceTop = parent
}

// NewYarnResourceClient creates the client; Start begins requesting.
func NewYarnResourceClient(sim *vclock.Sim, rm *yarnsim.ResourceManager, opts ResourceClientOptions) *YarnResourceClient {
	if opts.HeartbeatMs == 0 {
		opts.HeartbeatMs = 500
	}
	if opts.Ask.MemoryMB == 0 {
		opts.Ask = yarnsim.Resource{MemoryMB: 1024, Vcores: 1}
	}
	gw := opts.Gateway
	if gw == nil {
		gw = rm
	}
	return &YarnResourceClient{sim: sim, rm: rm, gw: gw, opts: opts, doneAtMs: -1}
}

// Start submits the initial request and, in the polling modes, arms the
// heartbeat.
func (c *YarnResourceClient) Start() {
	c.request(c.opts.Target)
	if c.opts.Mode == ModeAsync {
		return // callback-driven: no polling loop
	}
	c.ticker = c.sim.Every(c.opts.HeartbeatMs, func() { c.heartbeat() })
}

// Stop cancels the heartbeat.
func (c *YarnResourceClient) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

func (c *YarnResourceClient) heartbeat() {
	deficit := c.opts.Target - c.allocated
	if deficit <= 0 {
		return
	}
	switch c.opts.Mode {
	case ModeBuggy, ModeWorkaround1:
		// The synchronous assumption: if the containers have not shown
		// up by now, re-request the aggregated pending count plus the
		// requirement (the Figure 1 storm).
		if c.submitted > 0 {
			c.request(c.submitted + deficit)
		} else {
			c.request(deficit)
		}
	case ModeWorkaround2:
		// Requests were removed from the book at submission; top up the
		// true deficit only.
		if need := deficit - c.submitted; need > 0 {
			c.request(need)
		}
	}
}

func (c *YarnResourceClient) request(n int) {
	if n <= 0 {
		return
	}
	if c.tracer != nil {
		c.tracer.Span(c.traceTop, csi.Flink, csi.ControlPlane, "request-containers").
			Set("n", strconv.Itoa(n)).
			Set("mode", c.opts.Mode.String()).End()
	}
	c.totalAsked += n
	c.submitted += n
	c.gw.RequestContainers(n, c.opts.Ask,
		func(container *yarnsim.Container) {
			c.submitted--
			if c.allocated >= c.opts.Target {
				// Excess container from the storm: hand it straight back.
				c.rm.Release(container.ID)
				return
			}
			c.allocated++
			c.containers = append(c.containers, container)
			if c.allocated == c.opts.Target && c.doneAtMs < 0 {
				c.doneAtMs = c.sim.Now()
				c.Stop()
			}
		},
		func(err error) {
			c.submitted--
			c.errs = append(c.errs, err)
		})
}

// Allocated returns the number of containers the job holds.
func (c *YarnResourceClient) Allocated() int { return c.allocated }

// Pending returns the asks submitted and not yet answered — the
// "pending book" whose staleness drives the re-request storm.
func (c *YarnResourceClient) Pending() int { return c.submitted }

// TotalRequested returns the total container asks submitted — the
// Figure 1 metric that explodes to thousands under the buggy mode.
func (c *YarnResourceClient) TotalRequested() int { return c.totalAsked }

// Errors returns the allocation errors observed.
func (c *YarnResourceClient) Errors() []error { return c.errs }

// DoneAt returns the virtual time the target was reached (-1 if never).
func (c *YarnResourceClient) DoneAt() int64 { return c.doneAtMs }

// Containers returns the held containers.
func (c *YarnResourceClient) Containers() []*yarnsim.Container { return c.containers }

// --- FLINK-887: JobManager JVM sizing vs the pmem monitor --------------

// JVMSizing selects how the JobManager derives its JVM heap from the
// container's memory allocation.
type JVMSizing int

// The two sizings.
const (
	// SizingNoHeadroom sets the heap to the full container memory; the
	// process tree (heap + JVM overhead) then exceeds the container
	// limit and the pmem monitor kills it (FLINK-887).
	SizingNoHeadroom JVMSizing = iota
	// SizingWithCutoff reserves a fraction of the container memory for
	// off-heap overhead, the eventual fix.
	SizingWithCutoff
)

// JVMOverheadMB is the simulated off-heap overhead of the JobManager
// process (metaspace, threads, direct buffers).
const JVMOverheadMB = 256

// CutoffRatio is the fraction of container memory reserved for
// overhead under SizingWithCutoff.
const CutoffRatio = 0.25

// ProcessPmemMB returns the physical memory the JobManager process
// tree uses inside a container of the given size under the sizing
// policy.
func ProcessPmemMB(containerMB int64, sizing JVMSizing) int64 {
	switch sizing {
	case SizingWithCutoff:
		heap := int64(float64(containerMB) * (1 - CutoffRatio))
		return heap + JVMOverheadMB
	default:
		return containerMB + JVMOverheadMB
	}
}

// --- Kafka source -------------------------------------------------------

// KafkaSourceOptions configure a source.
type KafkaSourceOptions struct {
	Topic     string
	Partition int
	// AssumeContiguousOffsets reproduces the wrong API assumption of
	// SPARK-19361: the consumer treats any offset gap as data loss and
	// fails the job instead of resuming at the next live record.
	AssumeContiguousOffsets bool
}

// OffsetGapError is the job failure raised under the contiguity
// assumption.
type OffsetGapError struct {
	Topic    string
	Expected int64
	Got      int64
}

// Error implements the error interface.
func (e *OffsetGapError) Error() string {
	return fmt.Sprintf("flink: Kafka offsets are not contiguous on %s: expected %d, got %d (assumed lost data)",
		e.Topic, e.Expected, e.Got)
}

// KafkaSource consumes a partition record by record.
type KafkaSource struct {
	broker *kafkasim.Broker
	opts   KafkaSourceOptions
	next   int64
	read   []kafkasim.Record

	tracer   *obs.Tracer
	traceTop *obs.Span
}

// NewKafkaSource creates a source starting at offset 0.
func NewKafkaSource(broker *kafkasim.Broker, opts KafkaSourceOptions) *KafkaSource {
	return &KafkaSource{broker: broker, opts: opts}
}

// SetTrace attaches a tracer and default parent span; each Poll then
// emits a Flink data-plane span (failed on an offset-gap abort).
func (s *KafkaSource) SetTrace(tr *obs.Tracer, parent *obs.Span) {
	s.tracer = tr
	s.traceTop = parent
}

// Poll fetches up to max records, enforcing the contiguity assumption
// when configured. It returns the records fetched in this call.
func (s *KafkaSource) Poll(max int) ([]kafkasim.Record, error) {
	var sp *obs.Span
	if s.tracer != nil {
		sp = s.tracer.Span(s.traceTop, csi.Flink, csi.DataPlane, "kafka-source/poll").
			Set("topic", s.opts.Topic).
			Set("offset", strconv.FormatInt(s.next, 10))
	}
	recs, next, err := s.broker.Fetch(s.opts.Topic, s.opts.Partition, s.next, max)
	if err != nil {
		sp.Fail(err).End()
		return nil, err
	}
	expected := s.next
	for _, r := range recs {
		if s.opts.AssumeContiguousOffsets && r.Offset != expected {
			err := &OffsetGapError{Topic: s.opts.Topic, Expected: expected, Got: r.Offset}
			sp.Fail(err).End()
			return nil, err
		}
		expected = r.Offset + 1
		s.read = append(s.read, r)
	}
	s.next = next
	sp.End()
	return recs, nil
}

// Consumed returns every record read so far.
func (s *KafkaSource) Consumed() []kafkasim.Record { return s.read }

// --- FLINK-17189: Hive catalog type mapping ------------------------------

// FlinkType is the subset of Flink's logical types involved in the
// Hive catalog discrepancy.
type FlinkType string

// The relevant types.
const (
	TypeTimestamp FlinkType = "TIMESTAMP"
	TypeProctime  FlinkType = "PROCTIME" // a TIMESTAMP attribute, not a data type
)

// ToHiveType maps a Flink logical type to the Hive type the catalog
// stores. PROCTIME has no Hive representation and is stored as
// TIMESTAMP — losing the attribute.
func ToHiveType(t FlinkType) string {
	return "TIMESTAMP"
}

// FromHiveType maps a Hive catalog type back to the Flink type the
// schema declared. With the FLINK-17189 defect present the reverse
// mapping is missing: a PROCTIME column read back as TIMESTAMP fails
// schema validation.
func FromHiveType(hiveType string, declared FlinkType, fixed bool) (FlinkType, error) {
	if declared == TypeProctime {
		if !fixed {
			return "", fmt.Errorf("flink: catalog type TIMESTAMP cannot be mapped back to PROCTIME column (FLINK-17189)")
		}
		return TypeProctime, nil
	}
	return TypeTimestamp, nil
}
