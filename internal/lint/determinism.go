package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The determinism analyzer. Campaign reports must be bit-identical
// across -parallel settings and cache keys must be pure functions of
// the job spec, so the packages that compute them may not consult the
// wall clock (check "wallclock"), math/rand (check "rand" — all
// randomness flows from splitmix64 seeds), or the process environment
// (check "env"), and may not let Go's randomized map-iteration order
// reach a rendered or hashed output (check "maprange"). The
// legitimately wall-clocked service/observability packages are listed
// in Config.WallClockAllowed and simply not covered.

// wallClockFuncs are the time functions that read or depend on the
// wall clock or the runtime timer.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs are the os functions that read the process environment.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// renderSinkMethods are method names that serialize bytes into an
// order-sensitive output: writers, string builders, and hashes. A map
// range whose body reaches one of these leaks iteration order.
var renderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Sum": true,
}

// renderSinkFuncs are package-level print/write helpers, keyed by
// "pkgpath.Func".
var renderSinkFuncs = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"io.WriteString": true, "encoding/binary.Write": true,
}

func analyzeDeterminism(m *Module, cfg *Config, r *reporter) {
	for _, p := range m.SortedPackages() {
		if !cfg.isDeterministic(m, p) {
			continue
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					r.add(imp.Pos(), "rand",
						"deterministic package %s imports %s; derive randomness from a splitmix64 seed instead",
						p.Base(), path)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					pkg, name := calleePkgFunc(p.Info, n)
					switch {
					case pkg == "time" && wallClockFuncs[name]:
						r.add(n.Pos(), "wallclock",
							"deterministic package %s calls time.%s; schedule on the virtual clock instead",
							p.Base(), name)
					case pkg == "os" && envFuncs[name]:
						r.add(n.Pos(), "env",
							"deterministic package %s calls os.%s; behavior must be a pure function of the job spec",
							p.Base(), name)
					}
				case *ast.RangeStmt:
					checkMapRange(p, n, r)
				}
				return true
			})
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) when
// the callee is a package-level function of another package; otherwise
// returns "", "".
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// checkMapRange flags a range over a map whose body writes into an
// order-sensitive sink. Order-insensitive bodies — collecting keys for
// sorting, counting, set building — pass untouched.
func checkMapRange(p *Package, rng *ast.RangeStmt, r *reporter) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, name := calleePkgFunc(p.Info, call); pkg != "" {
			if renderSinkFuncs[pkg+"."+name] {
				r.add(rng.Pos(), "maprange",
					"map iteration order reaches %s.%s; iterate a sorted key slice instead", pkgBase(pkg), name)
				return false
			}
			return true
		}
		if p.Info.Selections[sel] != nil && renderSinkMethods[sel.Sel.Name] {
			r.add(rng.Pos(), "maprange",
				"map iteration order reaches a %s call; iterate a sorted key slice instead", sel.Sel.Name)
			return false
		}
		return true
	})
}

// pkgBase returns the final element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
