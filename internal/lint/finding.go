package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Finding is one contract violation at one source position.
type Finding struct {
	// File is the module-root-relative, slash-separated path.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Analyzer is the analyzer that produced the finding; Check is the
	// specific contract clause, and is also the waiver key: a
	// //crossvet:<check> <reason> comment on the finding's line (or the
	// line above) waives it.
	Analyzer string `json:"analyzer"`
	Check    string `json:"check"`
	Message  string `json:"message"`
	// Waived marks a finding covered by a waiver comment; Reason is
	// the waiver's justification.
	Waived bool   `json:"waived,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// line renders the finding's canonical report line.
func (f *Finding) line() string {
	s := fmt.Sprintf("%s:%d:%d: %s/%s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Check, f.Message)
	if f.Waived {
		s += fmt.Sprintf(" (waived: %s)", f.Reason)
	}
	return s
}

// Report is one deterministic crossvet run: every finding (waived and
// not), sorted, plus the sha256 fingerprint of the canonical body —
// the same reproducibility convention as the crossfuzz campaign and
// crosspart reports.
type Report struct {
	Module   string    `json:"module"`
	Findings []Finding `json:"findings"`
	Hash     string    `json:"hash"`
}

// Unwaived returns the findings not covered by a waiver.
func (r *Report) Unwaived() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Waived {
			out = append(out, f)
		}
	}
	return out
}

// Canonical renders the hashed body: one sorted line per finding.
func (r *Report) Canonical() string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.line())
		b.WriteByte('\n')
	}
	return b.String()
}

// Render produces the human-readable report. Waived findings are
// printed only when showWaived is set; the trailing hash line is the
// fingerprint of the full canonical body either way, so the hash is
// independent of display flags.
func (r *Report) Render(showWaived bool) string {
	var b strings.Builder
	unwaived, waived := 0, 0
	for _, f := range r.Findings {
		if f.Waived {
			waived++
		} else {
			unwaived++
		}
	}
	fmt.Fprintf(&b, "crossvet %s: %d finding(s), %d waived\n", r.Module, unwaived, waived)
	for _, f := range r.Findings {
		if f.Waived && !showWaived {
			continue
		}
		b.WriteString(f.line())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "report-hash: sha256:%s\n", r.Hash)
	return b.String()
}

// seal sorts, deduplicates, and fingerprints the findings. Duplicates
// arise legitimately when two registry specs share classifier
// functions; collapsing identical lines keeps the report stable.
func (r *Report) seal() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	dedup := r.Findings[:0]
	for i, f := range r.Findings {
		if i > 0 && f == r.Findings[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	r.Findings = dedup
	sum := sha256.Sum256([]byte(r.Canonical()))
	r.Hash = hex.EncodeToString(sum[:])
}
