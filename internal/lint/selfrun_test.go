package lint

import "testing"

// TestSelfRunClean pins the real module clean under the real config:
// zero unwaived findings, and every waiver carries its justification.
// This is the in-tree mirror of the CI crossvet gate — a contract
// regression anywhere in the repo fails this test before it fails CI.
func TestSelfRunClean(t *testing.T) {
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	rep, err := Run(m, DefaultConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range rep.Unwaived() {
		t.Errorf("unwaived finding: %s", f.line())
	}
	waived := 0
	for _, f := range rep.Findings {
		if f.Waived {
			waived++
			if f.Reason == "" {
				t.Errorf("waived finding without reason: %s", f.line())
			}
		}
	}
	// The tree carries intentional, documented exceptions (the load
	// engine's real-time storm bridge, operator-facing elapsed times);
	// if this drops to zero the waiver plumbing itself is suspect.
	if waived == 0 {
		t.Error("expected at least one waived finding in the real tree")
	}
}
