package lint

import "testing"

func TestBoundaryFixture(t *testing.T) {
	rep := runFixture(t, "boundary", &Config{
		SimSuffix: "sim",
		ObsPkg:    "bfix/internal/obs",
	})
	checkFindings(t, rep, []want{
		{check: "boundary/boundary", file: "asim/asim.go", msg: "asim.Bare crosses into bsim"},
		{check: "boundary/boundary", file: "asim/asim.go", msg: "asim.BarePkgLevel crosses into bsim"},
		{check: "boundary/boundary", file: "asim/asim.go", waived: true, msg: "asim.Waived crosses into bsim"},
	})
}
