package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The boundary-span analyzer. A call from one simulator package into
// another is a cross-system boundary — the paper's §2 unit of
// analysis, where implicit contracts fail through the cracks — and
// every failure report reconstructs its propagation chain from obs
// spans, so an exported simulator function that crosses such a
// boundary must thread the tracer. Threading is satisfied
// structurally, matching the repo's two idioms:
//
//   - the function accepts a *obs.Span or *obs.Tracer parameter (the
//     sparksim/hivesim *Span entry points), or
//   - its receiver's struct type carries a *obs.Tracer or *obs.Span
//     field installed via SetTrace/SetTracer (the hdfssim/yarnsim/
//     flinksim client pattern).
//
// The check is per exported function and intentionally shallow: it
// inspects direct calls only, because the repo's convention is that
// the exported entry point opens the span and unexported helpers take
// it as a parameter.
func analyzeBoundary(m *Module, cfg *Config, r *reporter) {
	for _, p := range m.SortedPackages() {
		if !cfg.isSim(p) {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				if !receiverExported(p, fd) {
					continue
				}
				callees := boundaryCallees(m, cfg, p, fd)
				if len(callees) == 0 {
					continue
				}
				if funcThreadsTracer(p, fd, cfg.ObsPkg) {
					continue
				}
				r.add(fd.Name.Pos(), "boundary",
					"%s.%s crosses into %s without threading the obs tracer: add a *obs.Span parameter or a *obs.Tracer field on the receiver",
					p.Base(), funcLabel(fd), strings.Join(callees, ", "))
			}
		}
	}
}

// funcLabel renders "Func" or "(Recv).Method".
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// receiverExported reports whether the function is reachable from
// outside the package: a plain function, or a method on an exported
// named type.
func receiverExported(p *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// boundaryCallees returns the sorted base names of the *other*
// simulator packages the function's body calls into directly.
func boundaryCallees(m *Module, cfg *Config, p *Package, fd *ast.FuncDecl) []string {
	seen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var obj types.Object
		if s := p.Info.Selections[sel]; s != nil {
			obj = s.Obj()
		} else {
			obj = p.Info.Uses[sel.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg() == p.Types {
			return true
		}
		callee := m.Pkgs[fn.Pkg().Path()]
		if callee != nil && cfg.isSim(callee) {
			seen[callee.Base()] = true
		}
		return true
	})
	var out []string
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// funcThreadsTracer reports whether the function satisfies the
// threading contract: an obs parameter or an obs field on the
// receiver's struct.
func funcThreadsTracer(p *Package, fd *ast.FuncDecl, obsPkg string) bool {
	def, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isObsPtr(sig.Params().At(i).Type(), obsPkg) {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if isObsPtr(st.Field(i).Type(), obsPkg) {
						return true
					}
				}
			}
		}
	}
	return false
}

// isObsPtr reports whether t is *obs.Tracer or *obs.Span for the
// configured obs package.
func isObsPtr(t types.Type, obsPkg string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != obsPkg {
		return false
	}
	name := named.Obj().Name()
	return name == "Tracer" || name == "Span"
}
