package lint

import (
	"strings"
)

// The waiver grammar. A finding is waived by a directive comment
//
//	//crossvet:<check> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above it. <check> is the finding's Check key (wallclock,
// rand, env, maprange, boundary, registry, errorcmp); <reason> is a
// mandatory free-text justification — a reasonless waiver is itself a
// finding, as is a waiver that no longer waives anything, so stale
// exceptions cannot accumulate silently.
const waiverPrefix = "//crossvet:"

// waiver is one parsed directive.
type waiver struct {
	file   string
	line   int
	check  string
	reason string
	used   bool
}

// collectWaivers parses every //crossvet: directive in the module.
func collectWaivers(m *Module) []*waiver {
	var out []*waiver
	for _, p := range m.SortedPackages() {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, waiverPrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, waiverPrefix)
					check, reason, _ := strings.Cut(rest, " ")
					file, line, _ := m.Rel(c.Pos())
					out = append(out, &waiver{
						file:   file,
						line:   line,
						check:  check,
						reason: strings.TrimSpace(reason),
					})
				}
			}
		}
	}
	return out
}

// applyWaivers marks findings covered by a directive and appends
// waiver-hygiene findings: reasonless directives and unused ones.
func applyWaivers(findings []Finding, waivers []*waiver) []Finding {
	byFile := map[string][]*waiver{}
	for _, w := range waivers {
		byFile[w.file] = append(byFile[w.file], w)
	}
	for i := range findings {
		f := &findings[i]
		for _, w := range byFile[f.File] {
			if w.check != f.Check || w.reason == "" {
				continue
			}
			if w.line == f.Line || w.line == f.Line-1 {
				f.Waived = true
				f.Reason = w.reason
				w.used = true
			}
		}
	}
	for _, w := range waivers {
		switch {
		case w.reason == "":
			findings = append(findings, Finding{
				File: w.file, Line: w.line, Col: 1,
				Analyzer: "waiver", Check: "no-reason",
				Message: "waiver //crossvet:" + w.check + " carries no reason; every exception must be justified",
			})
		case !w.used:
			findings = append(findings, Finding{
				File: w.file, Line: w.line, Col: 1,
				Analyzer: "waiver", Check: "unused",
				Message: "waiver //crossvet:" + w.check + " waives nothing; delete it",
			})
		}
	}
	return findings
}
