// Package lint is crossvet's zero-dependency static-analysis
// framework. It loads the module's packages with nothing but the
// standard library (go/parser + go/types, with the source importer
// resolving stdlib dependencies) and runs a suite of repo-specific
// analyzers, each encoding one cross-boundary contract the dynamic
// harness otherwise only assumes: determinism of the deterministic
// packages, obs-tracer threading at simulator boundaries, registry ↔
// classifier signature coverage, and errors.Is discipline for foreign
// sentinels. Findings are emitted in deterministic order with a
// sha256 report hash, following the same reproducibility conventions
// as the crossfuzz and crosspart reports: the linter obeys the
// contract it enforces.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Base returns the last import-path element (the package directory
// name, which for this module always matches the package name).
func (p *Package) Base() string {
	if i := strings.LastIndexByte(p.ImportPath, '/'); i >= 0 {
		return p.ImportPath[i+1:]
	}
	return p.ImportPath
}

// Module is a loaded module: every non-test package, type-checked,
// sharing one FileSet.
type Module struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the shared position table.
	Fset *token.FileSet
	// Pkgs maps import path → package.
	Pkgs map[string]*Package
}

// SortedPackages returns the module packages in import-path order —
// the canonical analysis order.
func (m *Module) SortedPackages() []*Package {
	out := make([]*Package, 0, len(m.Pkgs))
	for _, p := range m.Pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// Rel renders a position as a root-relative, slash-separated
// file:line:col string — the deterministic coordinate used in reports.
func (m *Module) Rel(pos token.Pos) (string, int, int) {
	p := m.Fset.Position(pos)
	rel, err := filepath.Rel(m.Root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every non-test package under root.
// Directories named "testdata", hidden directories, and _test.go files
// are skipped, matching the go tool's build rules. Loading is fully
// deterministic: directories and files are visited in sorted order.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	m := &Module{
		Root: root,
		Path: modulePath(gomod),
		Fset: token.NewFileSet(),
		Pkgs: make(map[string]*Package),
	}
	if m.Path == "" {
		return nil, fmt.Errorf("lint: no module path in %s/go.mod", root)
	}

	// Discover package directories.
	dirs := map[string]string{} // import path → dir
	err = filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(p)
			if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			ip := m.Path
			if rel != "." {
				ip = m.Path + "/" + filepath.ToSlash(rel)
			}
			dirs[ip] = dir
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ld := &loader{m: m, dirs: dirs, loading: map[string]bool{}}
	ld.std, _ = importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom)
	if ld.std == nil {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}

	var ips []string
	for ip := range dirs {
		ips = append(ips, ip)
	}
	sort.Strings(ips)
	for _, ip := range ips {
		if _, err := ld.load(ip); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// loader type-checks module packages on demand, memoized, delegating
// imports outside the module to the stdlib source importer.
type loader struct {
	m       *Module
	dirs    map[string]string
	std     types.ImporterFrom
	loading map[string]bool
}

// Import implements types.Importer over the module + stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.m.Path || strings.HasPrefix(path, ld.m.Path+"/") {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.ImportFrom(path, ld.m.Root, 0)
}

// load parses and type-checks one module package.
func (ld *loader) load(ip string) (*Package, error) {
	if p, ok := ld.m.Pkgs[ip]; ok {
		return p, nil
	}
	if ld.loading[ip] {
		return nil, fmt.Errorf("lint: import cycle through %s", ip)
	}
	ld.loading[ip] = true
	defer delete(ld.loading, ip)

	dir, ok := ld.dirs[ip]
	if !ok {
		return nil, fmt.Errorf("lint: no package for import path %s", ip)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(ld.m.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(ip, ld.m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", ip, err)
	}
	p := &Package{ImportPath: ip, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.m.Pkgs[ip] = p
	return p, nil
}
