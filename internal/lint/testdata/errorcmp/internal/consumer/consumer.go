// Package consumer compares errors across the fixture boundary in
// every shape the analyzer distinguishes.
package consumer

import (
	"errors"

	"efix/internal/esim"
)

// ErrLocal is this package's own sentinel: == against it stays legal.
var ErrLocal = errors.New("consumer: local")

// Bad compares a foreign sentinel with ==: a finding.
func Bad() bool {
	return esim.Do() == esim.ErrGone // want: errorcmp
}

// BadNeq compares with !=: a finding.
func BadNeq() bool {
	return esim.Do() != esim.ErrGone // want: errorcmp
}

// BadSwitch is the tag form of the same comparison: a finding.
func BadSwitch() string {
	switch esim.Do() {
	case esim.ErrBusy: // want: errorcmp
		return "busy"
	}
	return "ok"
}

// Waived is the == form, justified.
func Waived() bool {
	return esim.Do() == esim.ErrGone //crossvet:errorcmp fixture: identity comparison kept to prove the waiver grammar
}

// Good matches with errors.Is: legal.
func Good() bool {
	return errors.Is(esim.Do(), esim.ErrGone)
}

// GoodLocal compares its own sentinel: legal.
func GoodLocal(err error) bool {
	return err == ErrLocal
}

// GoodNil compares against nil: legal.
func GoodNil(err error) bool {
	return err == nil
}
