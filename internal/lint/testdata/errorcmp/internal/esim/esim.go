// Package esim declares the fixture's foreign sentinels.
package esim

import "errors"

// ErrGone is the sentinel other packages must match with errors.Is.
var ErrGone = errors.New("esim: gone")

// ErrBusy exercises the switch-tag form.
var ErrBusy = errors.New("esim: busy")

// Do returns a (possibly wrapped) sentinel.
func Do() error { return ErrGone }
