module efix

go 1.22
