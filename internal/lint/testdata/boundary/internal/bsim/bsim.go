// Package bsim is the callee side of the fixture boundary.
package bsim

// Store is the shared-state system asim crosses into.
type Store struct{}

// Write is the boundary operation.
func (s *Store) Write(key string) error { return nil }

// Ping is a package-level boundary operation.
func Ping() error { return nil }
