// Package obs is the fixture stand-in for the tracing package.
package obs

// Tracer mirrors the real tracer's shape.
type Tracer struct{}

// Span mirrors the real span's shape.
type Span struct{}

// Span opens a child span.
func (t *Tracer) Span(parent *Span, name string) *Span { return &Span{} }
