// Package asim is the caller side of the fixture boundary: every
// threading idiom the analyzer accepts, plus the violations it must
// flag.
package asim

import (
	"bfix/internal/bsim"
	"bfix/internal/obs"
)

// Bare crosses into bsim with no tracer anywhere: a finding.
func Bare(s *bsim.Store) error { // want: boundary
	return s.Write("k")
}

// BarePkgLevel crosses through a package-level callee: a finding.
func BarePkgLevel() error { // want: boundary
	return bsim.Ping()
}

// Waived is the same defect, justified.
//
//crossvet:boundary fixture: untraced crossing kept to prove the waiver grammar
func Waived(s *bsim.Store) error {
	return s.Write("k")
}

// SpanParam threads the tracer by parameter: legal.
func SpanParam(sp *obs.Span, s *bsim.Store) error {
	return s.Write("k")
}

// Client threads the tracer by receiver field: legal.
type Client struct {
	tracer *obs.Tracer
	store  *bsim.Store
}

// Do crosses the boundary from a traced receiver: legal.
func (c *Client) Do() error {
	return c.store.Write("k")
}

// bareClient is unexported: its methods are outside the contract.
type bareClient struct {
	store *bsim.Store
}

// Do is exported but unreachable from outside the package.
func (c *bareClient) Do() error {
	return c.store.Write("k")
}

// helper is unexported: outside the contract.
func helper(s *bsim.Store) error {
	return s.Write("k")
}

// Local never leaves the package: no boundary, no finding.
func Local(c *bareClient) error {
	return helper(c.store)
}
