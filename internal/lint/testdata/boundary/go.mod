module bfix

go 1.22
