// Package reg mirrors internal/inject: four registry families, each
// declaring the classifier signatures that confirm its entries.
package reg

// Entry is the common registry-entry shape.
type Entry struct {
	ID         string
	Signatures []string
}

// FigRegistry mirrors the Figure-6 family (switch-return classifier).
func FigRegistry() []Entry {
	return []Entry{
		{ID: "D1", Signatures: []string{"fig-one"}},
		{ID: "D2", Signatures: []string{"fig-two"}},
	}
}

// SkewRegistry mirrors the S* family: prefixed signatures produced by
// a classifier that returns bare names, plus one bare standard-oracle
// signature (the S1 pattern).
func SkewRegistry() []Entry {
	return []Entry{
		{ID: "S1", Signatures: []string{"skew-sk-one", "fig-one"}},
		{ID: "S2", Signatures: []string{"skew-sk-two"}},
	}
}

// PartRegistry mirrors the P* family (struct-field classifier).
func PartRegistry() []Entry {
	return []Entry{
		{ID: "P1", Signatures: []string{"part-one"}},
		{ID: "P2", Signatures: []string{"part-two"}},
	}
}

// LoadRegistry mirrors the L* family (const-vocabulary classifier).
func LoadRegistry() []Entry {
	return []Entry{
		{ID: "L1", Signatures: []string{"load-one"}},
		{ID: "L2", Signatures: []string{"load-two"}},
	}
}
