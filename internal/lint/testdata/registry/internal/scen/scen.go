// Package scen mirrors internal/partition's scenario registry: the
// classifier keys live in Signature struct fields.
package scen

// Scenario is the fixture scenario shape.
type Scenario struct {
	Name      string
	Signature string
}

// Scenarios returns the fixture scenarios.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "one", Signature: "part-one"},
		{Name: "two", Signature: "part-two"},
	}
}
