// Package classify mirrors internal/core's classifier switches.
package classify

// ClassifyFig is the Figure-6-shaped classifier: literal returns per
// case, dynamic fallback out of scope.
func ClassifyFig(code string) string {
	switch code {
	case "a":
		return "fig-one"
	case "b":
		return "fig-two"
	}
	return "fallback-" + code
}

// ClassifySkew returns bare names that the oracle prefixes with
// "skew-" at the emit site.
func ClassifySkew(code string) string {
	switch code {
	case "x":
		return "sk-one"
	case "y":
		return "sk-two"
	}
	return "fallback-" + code
}
