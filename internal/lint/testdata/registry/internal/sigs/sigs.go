// Package sigs mirrors internal/loadgen's signature vocabulary: the
// classifier keys are Sig* string constants.
package sigs

// The classifier vocabulary.
const (
	SigLoadOne = "load-one"
	SigLoadTwo = "load-two"
)
