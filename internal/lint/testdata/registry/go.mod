module regfix

go 1.22
