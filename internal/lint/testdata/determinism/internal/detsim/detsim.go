// Package detsim is a fixture simulator package: deterministic by
// suffix, not by listing.
package detsim

import "time"

// Tick trips the wallclock check through the sim-suffix rule.
func Tick() time.Time {
	return time.Now() // want: wallclock
}
