// Package clocked is a fixture for the allowlist: a legitimately
// wall-clocked package the determinism analyzer must not cover.
package clocked

import "time"

// Stamp may use the wall clock freely.
func Stamp() int64 { return time.Now().UnixMilli() }
