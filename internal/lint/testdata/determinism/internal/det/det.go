// Package det is a fixture: an explicitly-listed deterministic
// package carrying one violation of each determinism sub-check plus
// one waived site and the two waiver-hygiene defects.
package det

import (
	"math/rand" // want: rand
	"os"
	"strings"
	"time"
)

// WallClock trips the wallclock check.
func WallClock() int64 {
	return time.Now().UnixMilli() // want: wallclock
}

// WaivedClock is the same call, justified.
func WaivedClock() int64 {
	return time.Now().UnixMilli() //crossvet:wallclock fixture: timing is display-only
}

// Env trips the env check.
func Env() string {
	return os.Getenv("HOME") // want: env
}

// Render trips the maprange check: iteration order reaches a builder.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want: maprange
		b.WriteString(k)
	}
	return b.String()
}

// Collect is the legal shape: order-insensitive accumulation.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Rand exists to use the import.
func Rand() int { return rand.Int() }

//crossvet:wallclock
var reasonless = 0 // the directive above has no reason: want waiver/no-reason

//crossvet:env fixture: this waiver covers nothing and must be reported unused
var unusedWaiver = 0
