package lint

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unformatted walks the module and returns the root-relative paths of
// .go files whose contents differ from gofmt output — the in-process
// equivalent of `gofmt -l`, so the -ci gate needs no external tools.
// testdata trees and hidden directories are skipped, matching the
// package loader's build rules (mutation-test fixtures are generated
// deliberately unformatted).
func Unformatted(root string) ([]string, error) {
	var out []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(p)
			if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		fmted, err := format.Source(src)
		if err != nil {
			// A file that does not parse is a build problem, not a
			// formatting one; the loader reports it with a position.
			return nil
		}
		if !bytes.Equal(src, fmted) {
			rel, err := filepath.Rel(root, p)
			if err != nil {
				return err
			}
			out = append(out, filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
