package lint

import "testing"

// detConfig mirrors DefaultConfig's determinism shape over the
// fixture: det is listed deterministic, detsim is deterministic by
// suffix, clocked is allowlisted.
func detConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{"internal/det"},
		SimSuffix:         "sim",
		WallClockAllowed:  []string{"internal/clocked"},
	}
}

func TestDeterminismFixture(t *testing.T) {
	rep := runFixture(t, "determinism", detConfig())
	checkFindings(t, rep, []want{
		{check: "determinism/rand", file: "det/det.go", msg: "math/rand"},
		{check: "determinism/wallclock", file: "det/det.go", msg: "time.Now"},
		{check: "determinism/wallclock", file: "det/det.go", waived: true, msg: "time.Now"},
		{check: "determinism/env", file: "det/det.go", msg: "os.Getenv"},
		{check: "determinism/maprange", file: "det/det.go", msg: "WriteString"},
		{check: "determinism/wallclock", file: "detsim/detsim.go", msg: "time.Now"},
		{check: "waiver/no-reason", file: "det/det.go", msg: "crossvet:wallclock"},
		{check: "waiver/unused", file: "det/det.go", msg: "crossvet:env"},
	})
	for _, f := range rep.Findings {
		if f.File == "internal/clocked/clocked.go" {
			t.Errorf("allowlisted package flagged: %s", f.line())
		}
	}
}

// TestDeterminismValidate pins the config guards: a package cannot be
// both deterministic and allowlisted, and a simulator package cannot
// be allowlisted.
func TestDeterminismValidate(t *testing.T) {
	m := loadFixture(t, "determinism")
	cfg := detConfig()
	cfg.WallClockAllowed = append(cfg.WallClockAllowed, "internal/det")
	if _, err := Run(m, cfg); err == nil {
		t.Error("deterministic+allowed overlap not rejected")
	}
	cfg = detConfig()
	cfg.WallClockAllowed = []string{"internal/detsim"}
	if _, err := Run(m, cfg); err == nil {
		t.Error("allowlisted simulator package not rejected")
	}
}
