package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one of the testdata mini-modules.
func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	m, err := LoadModule(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return m
}

// runFixture loads and analyzes a fixture under cfg.
func runFixture(t *testing.T, name string, cfg *Config) *Report {
	t.Helper()
	rep, err := Run(loadFixture(t, name), cfg)
	if err != nil {
		t.Fatalf("run fixture %s: %v", name, err)
	}
	return rep
}

// want is one expected finding, matched structurally.
type want struct {
	check  string // analyzer/check key
	file   string // report-path suffix
	waived bool
	msg    string // message substring
}

// checkFindings asserts that the report's findings match wants 1:1,
// in any order.
func checkFindings(t *testing.T, rep *Report, wants []want) {
	t.Helper()
	used := make([]bool, len(rep.Findings))
	for _, w := range wants {
		found := false
		for i, f := range rep.Findings {
			if used[i] || f.Analyzer+"/"+f.Check != w.check || f.Waived != w.waived {
				continue
			}
			if !strings.HasSuffix(f.File, w.file) || !strings.Contains(f.Message, w.msg) {
				continue
			}
			used[i], found = true, true
			break
		}
		if !found {
			t.Errorf("missing expected finding %s in %s (waived=%v, msg~%q)", w.check, w.file, w.waived, w.msg)
		}
	}
	for i, f := range rep.Findings {
		if !used[i] {
			t.Errorf("unexpected finding: %s", f.line())
		}
	}
	for _, f := range rep.Findings {
		if f.Waived && f.Reason == "" {
			t.Errorf("waived finding without reason: %s", f.line())
		}
	}
}

// copyTree copies a fixture tree into dst, dropping from the file at
// relPath every line containing drop (which must remove exactly one
// line). With relPath == "" the tree is copied verbatim.
func copyTree(t *testing.T, src, dst, relPath, drop string) {
	t.Helper()
	dropped := 0
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if relPath != "" && filepath.ToSlash(rel) == relPath {
			var kept []string
			for _, line := range strings.Split(string(data), "\n") {
				if strings.Contains(line, drop) {
					dropped++
					continue
				}
				kept = append(kept, line)
			}
			data = []byte(strings.Join(kept, "\n"))
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
	if relPath != "" && dropped != 1 {
		t.Fatalf("mutation dropped %d lines containing %q in %s; want exactly 1", dropped, drop, relPath)
	}
}
