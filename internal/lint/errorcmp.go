package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The error-contract analyzer. An error that crosses a package
// boundary is part of that boundary's contract: the caller may
// classify it (errors.As onto an exported error type) or match it
// (errors.Is against the sentinel), but never compare it with ==,
// because the producing package is free to wrap its sentinels — and
// the simulators do, precisely to model the paper's
// inconsistent-error-behavior category. Comparing a package's *own*
// sentinel with == stays legal: within one package the identity is
// part of the implementation, not a cross-system contract.
func analyzeErrorCmp(m *Module, cfg *Config, r *reporter) {
	for _, p := range m.SortedPackages() {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					checkSentinelOperand(m, cfg, p, r, n.X, n.Pos())
					checkSentinelOperand(m, cfg, p, r, n.Y, n.Pos())
				case *ast.SwitchStmt:
					// switch err { case pkg.ErrX: } — the tag form of the
					// same comparison.
					if n.Tag == nil || !isErrorExpr(p, n.Tag) {
						return true
					}
					for _, stmt := range n.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							checkSentinelOperand(m, cfg, p, r, e, e.Pos())
						}
					}
				}
				return true
			})
		}
	}
}

// checkSentinelOperand flags e when it names an exported error
// sentinel declared package-level in a different module package.
func checkSentinelOperand(m *Module, cfg *Config, p *Package, r *reporter, e ast.Expr, pos token.Pos) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg() == p.Types || !v.Exported() {
		return
	}
	// Package-level sentinels only: the declaring scope is the
	// package scope.
	if v.Parent() != v.Pkg().Scope() {
		return
	}
	if !isErrorType(v.Type()) {
		return
	}
	path := v.Pkg().Path()
	if cfg.SentinelPkgPrefix != "" && !hasPathPrefix(path, cfg.SentinelPkgPrefix) {
		return
	}
	r.add(pos, "errorcmp",
		"comparison with == against sentinel %s.%s from another package; the boundary contract allows wrapping — use errors.Is",
		pkgBase(path), v.Name())
}

// isErrorExpr reports whether the expression's static type is error.
func isErrorExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && isErrorType(tv.Type)
}

// isErrorType reports whether t is the built-in error interface (the
// type every sentinel declared with errors.New/fmt.Errorf carries).
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// hasPathPrefix matches an import-path prefix ("repro/" covers the
// whole module; "repro" alone would also match "reproX").
func hasPathPrefix(path, prefix string) bool {
	if len(path) < len(prefix) {
		return false
	}
	return path[:len(prefix)] == prefix
}
