package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// regConfig mirrors the four registry↔classifier shapes of
// DefaultConfig over the regfix fixture: switch-return, prefixed
// skew, struct-field, and const-vocabulary.
func regConfig() *Config {
	return &Config{
		Registries: []RegistrySpec{
			{
				Name:            "fig",
				RegistryPkg:     "regfix/internal/reg",
				RegistryFuncs:   []string{"FigRegistry"},
				ClassifierPkg:   "regfix/internal/classify",
				ClassifierFuncs: []string{"ClassifyFig"},
				Prefixes:        []string{""},
			},
			{
				Name:            "skew",
				RegistryPkg:     "regfix/internal/reg",
				RegistryFuncs:   []string{"SkewRegistry"},
				ClassifierPkg:   "regfix/internal/classify",
				ClassifierFuncs: []string{"ClassifySkew", "ClassifyFig"},
				Prefixes:        []string{"", "skew-"},
			},
			{
				Name:            "partition",
				RegistryPkg:     "regfix/internal/reg",
				RegistryFuncs:   []string{"PartRegistry"},
				ClassifierPkg:   "regfix/internal/scen",
				ClassifierField: "Signature",
				Prefixes:        []string{""},
			},
			{
				Name:                  "load",
				RegistryPkg:           "regfix/internal/reg",
				RegistryFuncs:         []string{"LoadRegistry"},
				ClassifierPkg:         "regfix/internal/sigs",
				ClassifierConstPrefix: "Sig",
				Prefixes:              []string{""},
			},
		},
	}
}

// TestRegistryFixtureClean pins the balanced fixture clean: every
// registry signature classifiable, every classifier case claimed.
func TestRegistryFixtureClean(t *testing.T) {
	rep := runFixture(t, "registry", regConfig())
	checkFindings(t, rep, nil)
}

// TestRegistryMutation is the mutation test of the coverage contract:
// for each of the four families, delete exactly the classifier case
// backing one registry signature from a copy of the fixture, and
// assert crossvet reports exactly that signature — nothing more,
// nothing less.
func TestRegistryMutation(t *testing.T) {
	cases := []struct {
		family string
		file   string // fixture-relative classifier file
		drop   string // unique content of the line to delete
		sig    string // the registry signature that must be reported
	}{
		{
			family: "fig",
			file:   "internal/classify/classify.go",
			drop:   `return "fig-two"`,
			sig:    `fig registry signature "fig-two" has no classifier case`,
		},
		{
			family: "skew",
			file:   "internal/classify/classify.go",
			drop:   `return "sk-two"`,
			sig:    `skew registry signature "skew-sk-two" has no classifier case`,
		},
		{
			family: "partition",
			file:   "internal/scen/scen.go",
			drop:   `Signature: "part-two"`,
			sig:    `partition registry signature "part-two" has no classifier case`,
		},
		{
			family: "load",
			file:   "internal/sigs/sigs.go",
			drop:   `SigLoadTwo`,
			sig:    `load registry signature "load-two" has no classifier case`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			dst := t.TempDir()
			copyTree(t, filepath.Join("testdata", "registry"), dst, tc.file, tc.drop)
			m, err := LoadModule(dst)
			if err != nil {
				t.Fatalf("load mutated fixture: %v", err)
			}
			rep, err := Run(m, regConfig())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(rep.Findings) != 1 {
				t.Fatalf("want exactly 1 finding, got %d:\n%s", len(rep.Findings), rep.Canonical())
			}
			f := rep.Findings[0]
			if f.Analyzer != "registry" || f.Check != "registry" || !strings.Contains(f.Message, tc.sig) {
				t.Errorf("wrong finding: %s (want message ~%q)", f.line(), tc.sig)
			}
		})
	}
}

// TestRegistryOrphanMutation exercises the reverse direction: delete
// a registry entry and the classifier case it claimed becomes an
// orphan.
func TestRegistryOrphanMutation(t *testing.T) {
	dst := t.TempDir()
	copyTree(t, filepath.Join("testdata", "registry"), dst, "internal/reg/reg.go", `"load-two"`)
	m, err := LoadModule(dst)
	if err != nil {
		t.Fatalf("load mutated fixture: %v", err)
	}
	rep, err := Run(m, regConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d:\n%s", len(rep.Findings), rep.Canonical())
	}
	f := rep.Findings[0]
	if f.Check != "registry" || !strings.Contains(f.Message, `classifier emits "load-two" which no registry entry claims`) {
		t.Errorf("wrong finding: %s", f.line())
	}
}

// TestRegistryStaleAnchor pins the anti-vacuity guard: a renamed
// registry function must surface as an anchor finding, not a silent
// pass.
func TestRegistryStaleAnchor(t *testing.T) {
	cfg := regConfig()
	cfg.Registries = cfg.Registries[:1]
	cfg.Registries[0].RegistryFuncs = []string{"Renamed"}
	rep, err := Run(loadFixture(t, "registry"), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Check == "anchor" && f.File == "go.mod" && strings.Contains(f.Message, "reg.Renamed not found") {
			found = true
		}
	}
	if !found {
		t.Errorf("stale anchor not reported:\n%s", rep.Canonical())
	}
}
