package lint

import (
	"fmt"
	"go/token"
)

// Analyzer is one contract checker.
type Analyzer struct {
	// Name labels the analyzer's findings.
	Name string
	// Contract is the one-line statement of the rule it enforces.
	Contract string
	run      func(m *Module, cfg *Config, r *reporter)
}

// Analyzers returns the suite in its fixed run order.
func Analyzers() []Analyzer {
	return []Analyzer{
		{
			Name: "determinism",
			Contract: "deterministic packages stay off the wall clock, math/rand, and the environment, " +
				"and never let map-iteration order feed rendered or hashed output",
			run: analyzeDeterminism,
		},
		{
			Name: "boundary",
			Contract: "exported simulator functions that call into another simulator package " +
				"thread the obs tracer across the cross-system boundary",
			run: analyzeBoundary,
		},
		{
			Name: "registry",
			Contract: "every inject registry signature has a classifier case and every " +
				"classifier case maps back to a registry entry",
			run: analyzeRegistry,
		},
		{
			Name: "errorcmp",
			Contract: "errors crossing a package boundary are matched with errors.Is, " +
				"never compared with == against a foreign sentinel",
			run: analyzeErrorCmp,
		},
	}
}

// reporter accumulates findings during a run.
type reporter struct {
	m        *Module
	analyzer string
	findings []Finding
}

// add records one finding at pos.
func (r *reporter) add(pos token.Pos, check, format string, args ...any) {
	file, line, col := r.m.Rel(pos)
	r.findings = append(r.findings, Finding{
		File: file, Line: line, Col: col,
		Analyzer: r.analyzer, Check: check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the full suite over the module and seals the report.
func Run(m *Module, cfg *Config) (*Report, error) {
	if err := validate(m, cfg); err != nil {
		return nil, err
	}
	r := &reporter{m: m}
	for _, a := range Analyzers() {
		r.analyzer = a.Name
		a.run(m, cfg, r)
	}
	rep := &Report{Module: m.Path, Findings: applyWaivers(r.findings, collectWaivers(m))}
	rep.seal()
	return rep, nil
}

// validate rejects configs whose package sets contradict each other:
// a package cannot be both deterministic and wall-clock-allowed.
func validate(m *Module, cfg *Config) error {
	for _, det := range cfg.DeterministicPkgs {
		for _, allowed := range cfg.WallClockAllowed {
			if det == allowed {
				return fmt.Errorf("lint: %s is listed both deterministic and wall-clock-allowed", det)
			}
		}
	}
	for _, allowed := range cfg.WallClockAllowed {
		if p := m.Pkgs[m.Path+"/"+allowed]; p != nil && cfg.isSim(p) {
			return fmt.Errorf("lint: simulator package %s cannot be wall-clock-allowed", allowed)
		}
	}
	return nil
}
