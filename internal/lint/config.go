package lint

import "strings"

// Config selects which packages each analyzer covers and anchors the
// registry-coverage specs. DefaultConfig encodes this repository's
// contracts; fixture tests build small configs of the same shapes.
type Config struct {
	// DeterministicPkgs are the import-path *suffixes* (relative to the
	// module path, e.g. "internal/core") whose output must be a pure
	// function of their inputs: no wall clock, no math/rand, no
	// environment reads, no map-iteration order feeding rendered or
	// hashed output. Per-site exceptions use a //crossvet:wallclock
	// (rand, env, maprange) waiver with a reason.
	DeterministicPkgs []string
	// SimSuffix marks the simulator packages: any module package whose
	// base name ends with this suffix is one side of a cross-system
	// boundary (the paper's §2 unit of analysis). Every simulator
	// package is also implicitly deterministic.
	SimSuffix string
	// WallClockAllowed are the packages that legitimately touch the
	// wall clock (the service layer, the observability recorder, the
	// benchmark recorder). They must never appear in DeterministicPkgs;
	// the runner enforces the disjointness.
	WallClockAllowed []string
	// ObsPkg is the import path of the tracing package whose *Tracer /
	// *Span must be threaded across simulator boundaries.
	ObsPkg string
	// SentinelPkgPrefix scopes the error-contract analyzer: comparisons
	// with == / != against exported error sentinels declared in a
	// *different* package under this prefix are findings (use
	// errors.Is: a wrapped error crossing a boundary must still
	// classify). Empty means the whole module.
	SentinelPkgPrefix string
	// Registries are the registry ↔ classifier coverage contracts.
	Registries []RegistrySpec
}

// RegistrySpec anchors one registry family to its classifier. The
// registry side is always a set of `Signatures: []string{...}` (or
// `Signature: "..."`) literals inside the named registry functions;
// the classifier side is one of three shapes, matching the three
// idioms the repo uses:
//
//   - ClassifierFuncs: signature string literals returned from the
//     named functions (the Figure-6 and skew classifier switches);
//   - ClassifierConstPrefix: package-level string constants whose
//     names carry the prefix (the loadgen Sig* vocabulary);
//   - ClassifierField: string literals assigned to the named struct
//     field anywhere in the classifier package (the partition
//     scenario registry's Signature fields).
//
// Every registry signature must be producible as Prefix+literal for
// some Prefix (the forward check: no dead registry entry), and every
// classifier literal must map into the union of all registries' sig
// sets the same way (the reverse check: no orphan classifier case).
type RegistrySpec struct {
	// Name labels findings ("fig6", "skew", "partition", "load").
	Name string
	// RegistryPkg / RegistryFuncs locate the registry constructors.
	RegistryPkg   string
	RegistryFuncs []string
	// SigField is the registry field holding the signature strings
	// (default "Signatures").
	SigField string
	// ClassifierPkg locates the classifier package.
	ClassifierPkg string
	// Exactly one of the three classifier shapes should be set.
	ClassifierFuncs       []string
	ClassifierConstPrefix string
	ClassifierField       string
	// Prefixes are tried when matching classifier literals to registry
	// signatures; "" means the literal is the signature verbatim. The
	// skew classifier returns bare names that the oracle prefixes with
	// "skew-" at the emit site, so its spec carries {"", "skew-"}.
	Prefixes []string
}

// DefaultConfig returns the contracts of this repository.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"internal/cluster/chash",
			"internal/cluster/merge",
			"internal/core",
			"internal/fuzzgen",
			"internal/loadgen",
			"internal/partition",
			"internal/serde",
			"internal/sqlval",
			"internal/vclock",
			"internal/versions",
		},
		SimSuffix: "sim",
		WallClockAllowed: []string{
			"internal/cluster",
			"internal/serve",
			"internal/obs",
			"internal/benchrec",
		},
		ObsPkg:            "repro/internal/obs",
		SentinelPkgPrefix: "repro/",
		Registries: []RegistrySpec{
			{
				Name:          "fig6",
				RegistryPkg:   "repro/internal/inject",
				RegistryFuncs: []string{"Registry"},
				ClassifierPkg: "repro/internal/core",
				ClassifierFuncs: []string{
					"classifyError", "classifyCast", "classifyTargetFamily", "classifyValueDiff",
				},
				Prefixes: []string{""},
			},
			{
				Name:          "skew",
				RegistryPkg:   "repro/internal/inject",
				RegistryFuncs: []string{"SkewRegistry"},
				ClassifierPkg: "repro/internal/core",
				// classifySkew's distinctive cases plus the shared
				// fallthrough classifiers it delegates to; the oracle
				// prefixes every emitted name with "skew-", and a skew
				// entry may also claim a bare standard-oracle signature
				// (S1's "avro-unavailable"), hence both prefixes.
				ClassifierFuncs: []string{
					"classifySkew", "classifyError", "classifyCast", "classifyTargetFamily", "classifyValueDiff",
				},
				Prefixes: []string{"", "skew-"},
			},
			{
				Name:            "partition",
				RegistryPkg:     "repro/internal/inject",
				RegistryFuncs:   []string{"PartitionRegistry"},
				ClassifierPkg:   "repro/internal/partition",
				ClassifierField: "Signature",
				Prefixes:        []string{""},
			},
			{
				Name:                  "load",
				RegistryPkg:           "repro/internal/inject",
				RegistryFuncs:         []string{"LoadRegistry"},
				ClassifierPkg:         "repro/internal/loadgen",
				ClassifierConstPrefix: "Sig",
				Prefixes:              []string{""},
			},
		},
	}
}

// isDeterministic reports whether the package is under the
// determinism contract: listed explicitly, or a simulator package.
func (c *Config) isDeterministic(m *Module, p *Package) bool {
	for _, suf := range c.DeterministicPkgs {
		if p.ImportPath == m.Path+"/"+suf {
			return true
		}
	}
	return c.isSim(p)
}

// isSim reports whether the package is a simulator package.
func (c *Config) isSim(p *Package) bool {
	return c.SimSuffix != "" && strings.HasSuffix(p.Base(), c.SimSuffix)
}
