package lint

import "testing"

func TestErrorCmpFixture(t *testing.T) {
	rep := runFixture(t, "errorcmp", &Config{
		SentinelPkgPrefix: "efix/",
	})
	checkFindings(t, rep, []want{
		// Bad (==) and BadNeq (!=) both hit ErrGone.
		{check: "errorcmp/errorcmp", file: "consumer/consumer.go", msg: "sentinel esim.ErrGone"},
		{check: "errorcmp/errorcmp", file: "consumer/consumer.go", msg: "sentinel esim.ErrGone"},
		{check: "errorcmp/errorcmp", file: "consumer/consumer.go", msg: "sentinel esim.ErrBusy"},
		{check: "errorcmp/errorcmp", file: "consumer/consumer.go", waived: true, msg: "sentinel esim.ErrGone"},
	})
}
