package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The registry-coverage analyzer. Each discrepancy family (the
// Figure-6 D*, the version-skew S*, the partition P*, the load L*)
// lives twice: as declarative registry entries in internal/inject and
// as the classifier that maps observed failures onto signatures.
// Nothing but hand-written round-trip tests keeps the two in sync —
// exactly the "implicit cross-boundary contract" failure mode the
// paper studies — so this analyzer enforces both directions
// statically: every registry signature must be producible by its
// classifier (no dead registry entry the oracles can never confirm),
// and every classifier case must map back to some registry entry (no
// failure mode silently outside the census). Only literal classifier
// cases participate; dynamically built fallback signatures
// ("error-<token>", fmt.Sprintf families) are deliberately out of
// scope.

// sigLit is one signature string literal with its position.
type sigLit struct {
	val string
	pos token.Pos
}

func analyzeRegistry(m *Module, cfg *Config, r *reporter) {
	// The union of every family's registry signatures: the reverse
	// check matches against all families because a classifier shared
	// between oracles (e.g. the skew fallthrough into the standard
	// classifier) legitimately emits another family's signature.
	union := map[string]bool{}
	regSigs := make([][]sigLit, len(cfg.Registries))
	for i, spec := range cfg.Registries {
		regSigs[i] = registrySignatures(m, spec, r)
		for _, s := range regSigs[i] {
			union[s.val] = true
		}
	}
	for i, spec := range cfg.Registries {
		lits := classifierLiterals(m, spec, r)
		set := map[string]bool{}
		for _, l := range lits {
			set[l.val] = true
		}
		// Forward: registry → classifier.
		for _, s := range regSigs[i] {
			if !matches(s.val, set, spec.Prefixes) {
				r.add(s.pos, "registry",
					"%s registry signature %q has no classifier case in %s",
					spec.Name, s.val, pkgBase(spec.ClassifierPkg))
			}
		}
		// Reverse: classifier → some registry.
		for _, l := range lits {
			if !claimed(l.val, union, spec.Prefixes) {
				r.add(l.pos, "registry",
					"classifier emits %q which no registry entry claims", l.val)
			}
		}
	}
}

// matches reports whether sig equals prefix+lit for some classifier
// literal and allowed prefix.
func matches(sig string, lits map[string]bool, prefixes []string) bool {
	for _, pre := range prefixes {
		if rest, ok := strings.CutPrefix(sig, pre); ok && lits[rest] {
			return true
		}
	}
	return false
}

// claimed reports whether prefix+lit is a registered signature for
// some allowed prefix.
func claimed(lit string, union map[string]bool, prefixes []string) bool {
	for _, pre := range prefixes {
		if union[pre+lit] {
			return true
		}
	}
	return false
}

// registrySignatures collects the signature literals declared inside
// the spec's registry functions. An anchor that yields nothing is
// itself a finding: a renamed registry function must not make the
// check pass vacuously.
func registrySignatures(m *Module, spec RegistrySpec, r *reporter) []sigLit {
	var out []sigLit
	field := spec.SigField
	if field == "" {
		field = "Signatures"
	}
	p := m.Pkgs[spec.RegistryPkg]
	if p == nil {
		r.anchorStale(spec, "registry package %s not found", spec.RegistryPkg)
		return nil
	}
	for _, fname := range spec.RegistryFuncs {
		fd := findFunc(p, fname)
		if fd == nil {
			r.anchorStale(spec, "registry function %s.%s not found", p.Base(), fname)
			continue
		}
		n := len(out)
		collectFieldLits(fd.Body, field, &out)
		if len(out) == n {
			r.anchorStale(spec, "registry function %s.%s declares no %s literals", p.Base(), fname, field)
		}
	}
	return out
}

// classifierLiterals collects the classifier's signature literals
// according to the spec's shape.
func classifierLiterals(m *Module, spec RegistrySpec, r *reporter) []sigLit {
	p := m.Pkgs[spec.ClassifierPkg]
	if p == nil {
		r.anchorStale(spec, "classifier package %s not found", spec.ClassifierPkg)
		return nil
	}
	var out []sigLit
	switch {
	case len(spec.ClassifierFuncs) > 0:
		for _, fname := range spec.ClassifierFuncs {
			fd := findFunc(p, fname)
			if fd == nil {
				r.anchorStale(spec, "classifier function %s.%s not found", p.Base(), fname)
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if lit := stringLit(res); lit != nil {
						out = append(out, *lit)
					}
				}
				return true
			})
		}
	case spec.ClassifierConstPrefix != "":
		scope := p.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			if !strings.HasPrefix(name, spec.ClassifierConstPrefix) {
				continue
			}
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			out = append(out, sigLit{val: constant.StringVal(c.Val()), pos: c.Pos()})
		}
	case spec.ClassifierField != "":
		for _, f := range p.Files {
			collectFieldLits(f, spec.ClassifierField, &out)
		}
	}
	if len(out) == 0 {
		r.anchorStale(spec, "classifier anchor for %s yields no signature literals", spec.Name)
	}
	return out
}

// collectFieldLits gathers string literals assigned to the named
// composite-literal field — both `Field: "sig"` and
// `Field: []string{"a", "b"}` shapes.
func collectFieldLits(root ast.Node, field string, out *[]sigLit) {
	ast.Inspect(root, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != field {
			return true
		}
		if lit := stringLit(kv.Value); lit != nil {
			*out = append(*out, *lit)
			return true
		}
		if cl, ok := kv.Value.(*ast.CompositeLit); ok {
			for _, el := range cl.Elts {
				if lit := stringLit(el); lit != nil {
					*out = append(*out, *lit)
				}
			}
		}
		return true
	})
}

// stringLit unquotes a string BasicLit, or returns nil.
func stringLit(e ast.Expr) *sigLit {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return nil
	}
	v, err := strconv.Unquote(bl.Value)
	if err != nil {
		return nil
	}
	return &sigLit{val: v, pos: bl.Pos()}
}

// findFunc returns the package-level function declaration with the
// given name, or nil.
func findFunc(p *Package, name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// anchorStale reports a stale spec anchor. It is pinned to go.mod
// because the missing symbol has no position of its own; it is never
// waivable by design (there is no source line to waive it on).
func (r *reporter) anchorStale(spec RegistrySpec, format string, args ...any) {
	r.findings = append(r.findings, Finding{
		File: "go.mod", Line: 1, Col: 1,
		Analyzer: r.analyzer, Check: "anchor",
		Message: "spec " + spec.Name + ": " + fmt.Sprintf(format, args...),
	})
}
