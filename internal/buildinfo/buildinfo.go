// Package buildinfo surfaces the binary's build identity — module
// version, VCS revision, and toolchain — from the metadata the Go
// linker already embeds (debug.ReadBuildInfo). Every CLI exposes it
// behind -version and crossd reports it from /healthz, so a failure
// report or a drained service can always be tied back to the exact
// build that produced it. No build-time ldflags are required.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version: a tagged release when built
	// from the module proxy, "(devel)" for source builds, "unknown"
	// when no build info is embedded (e.g. some test binaries).
	Version string `json:"version"`
	// Revision is the full VCS commit hash, empty when the build ran
	// outside a checkout (or with -buildvcs=false).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build checkout.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain that built the binary (runtime.Version()).
	Go string `json:"go"`
}

// Get reads the embedded build metadata. It never fails: missing
// pieces degrade to "unknown"/empty rather than erroring, because a
// -version flag must work in every build mode.
func Get() Info {
	info := Info{Version: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, the form the -version flags
// print: `(devel) (abc123def456-dirty) go1.22.0`.
func (i Info) String() string {
	out := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Dirty {
			rev += "-dirty"
		}
		out += " (" + rev + ")"
	}
	return out + " " + i.Go
}
