package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

// Get must always produce a usable identity: test binaries have build
// info embedded (a module path and the toolchain), and every field
// degrades gracefully rather than erroring.
func TestGetNeverFails(t *testing.T) {
	info := Get()
	if info.Version == "" {
		t.Error("Version is empty; want a version string or \"unknown\"")
	}
	if info.Go != runtime.Version() {
		t.Errorf("Go = %q, want %q", info.Go, runtime.Version())
	}
}

func TestStringRendering(t *testing.T) {
	for _, tc := range []struct {
		info Info
		want string
	}{
		{Info{Version: "(devel)", Go: "go1.22.0"}, "(devel) go1.22.0"},
		{Info{Version: "v1.2.3", Revision: "0123456789abcdef", Go: "go1.22.0"}, "v1.2.3 (0123456789ab) go1.22.0"},
		{Info{Version: "v1.2.3", Revision: "abc123", Dirty: true, Go: "go1.22.0"}, "v1.2.3 (abc123-dirty) go1.22.0"},
		{Info{Version: "unknown", Go: "go1.22.0"}, "unknown go1.22.0"},
	} {
		if got := tc.info.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.info, got, tc.want)
		}
	}
}

func TestStringMatchesGet(t *testing.T) {
	s := Get().String()
	if !strings.Contains(s, runtime.Version()) {
		t.Errorf("String() = %q does not mention the toolchain", s)
	}
	if strings.Count(s, " ") < 1 {
		t.Errorf("String() = %q not in 'version [rev] go' form", s)
	}
}
