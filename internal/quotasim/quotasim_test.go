package quotasim

import (
	"strings"
	"testing"

	"repro/internal/vclock"
)

func TestBuggyInterpretationCausesOutage(t *testing.T) {
	// §1: the deregistered monitor reports 0; the quota system treats
	// it as expected load and shrinks the quota below the true load.
	r := RunIncident(PolicyTrustReports, false)
	if r.OutageStartMs < 0 {
		t.Fatal("expected an outage")
	}
	if r.OutageMinutes < 10 {
		t.Errorf("outage lasted %d minutes, expected a sustained outage", r.OutageMinutes)
	}
	if !strings.Contains(r.String(), "OUTAGE") {
		t.Errorf("render = %q", r.String())
	}
}

func TestFixedReportingProtocolPreventsOutage(t *testing.T) {
	// The reporting fix: a deregistered monitor reports nothing, so the
	// quota never sees phantom zeros.
	r := RunIncident(PolicyTrustReports, true)
	if r.OutageStartMs >= 0 {
		t.Errorf("outage with fixed protocol: %s", r)
	}
	if r.FinalQuota < r.Load {
		t.Errorf("final quota %.0f below load", r.FinalQuota)
	}
}

func TestConsumerSideFixPreventsOutage(t *testing.T) {
	// The consumer-side fix: ignore reports from deregistered monitors.
	r := RunIncident(PolicyIgnoreUnregistered, false)
	if r.OutageStartMs >= 0 {
		t.Errorf("outage with consumer-side fix: %s", r)
	}
}

func TestGracePeriodBoundsTheDamage(t *testing.T) {
	// The mitigation used during the real incident: enforcement pauses
	// at the floor, so the quota cannot collapse to (near) zero —
	// though the service can still be degraded if floor < load.
	buggy := RunIncident(PolicyTrustReports, false)
	graced := RunIncident(PolicyGracePeriod, false)
	if graced.LowestQuota <= buggy.LowestQuota {
		t.Errorf("grace period should hold a higher quota floor: %.2f vs %.2f",
			graced.LowestQuota, buggy.LowestQuota)
	}
	if graced.LowestQuota < graced.Load/10 {
		t.Errorf("graced floor %.2f collapsed below the MinQuota floor", graced.LowestQuota)
	}
}

func TestQuotaTracksRealUsageWhenHealthy(t *testing.T) {
	sim := vclock.New()
	qm := NewQuotaManager(sim, PolicyTrustReports, 2000)
	m := NewMonitor(sim, 1000, false, qm.Observe)
	m.SetUsage(1000)
	sim.Run(30000)
	if qm.Quota < 1000 {
		t.Errorf("quota %.0f dropped below healthy usage", qm.Quota)
	}
	// Usage grows: quota follows with headroom.
	m.SetUsage(2000)
	sim.Run(60000)
	if qm.Quota < 2000*1.4 {
		t.Errorf("quota %.0f did not grow with usage", qm.Quota)
	}
	m.Stop()
	evals, _ := qm.Stats()
	if evals == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestMonitorStopsReporting(t *testing.T) {
	sim := vclock.New()
	reports := 0
	m := NewMonitor(sim, 1000, false, func(UsageReport) { reports++ })
	sim.Run(5000)
	m.Stop()
	before := reports
	sim.After(10000, func() {}) // advance past more would-be ticks
	sim.Run(20000)
	if reports != before {
		t.Errorf("reports after Stop: %d -> %d", before, reports)
	}
}

func TestDeregisteredBuggyMonitorReportsZero(t *testing.T) {
	sim := vclock.New()
	var last UsageReport
	m := NewMonitor(sim, 1000, false, func(r UsageReport) { last = r })
	m.SetUsage(500)
	sim.Run(1000)
	if last.Usage != 500 || !last.Registered {
		t.Fatalf("healthy report = %+v", last)
	}
	m.Deregister()
	sim.Run(2000)
	if last.Usage != 0 || last.Registered {
		t.Errorf("deregistered report = %+v, want the zero-usage discrepancy", last)
	}
}
