// Package quotasim reproduces the paper's opening incident (§1): the
// Google User-ID outage caused by a cross-system interaction between a
// monitoring system and a quota system.
//
// The root cause was a discrepancy in the monitoring data: a
// deregistered monitor reported the value 0 for the service's resource
// usage, and the quota system interpreted zero as the service's
// expected load, automatically shrinking its quota until the service
// was starved — a management-plane CSI failure in which each system
// behaved correctly per its own specification.
//
// The simulator runs the monitoring pipeline, the quota manager, and
// the consuming service on the shared virtual clock, with both the
// buggy interpretation and two mitigations (the grace period that
// paused enforcement during the real incident, and the fixed reporting
// protocol that distinguishes "no data" from "zero usage").
package quotasim

import (
	"fmt"

	"repro/internal/vclock"
)

// UsageReport is one monitoring datapoint for a service.
type UsageReport struct {
	AtMs int64
	// Usage is the reported resource usage. With the discrepancy
	// present, a deregistered monitor reports 0 here rather than
	// withholding the report.
	Usage float64
	// Registered distinguishes live monitors from deregistered ones.
	// The buggy quota consumer ignores this field — it is custom
	// metadata the downstream never agreed to interpret.
	Registered bool
}

// Monitor reports a service's usage on a period. Deregistering a buggy
// monitor keeps it reporting zeros; a fixed monitor stops reporting.
type Monitor struct {
	sim    *vclock.Sim
	report func(UsageReport)

	usage         float64
	registered    bool
	fixedProtocol bool
	ticker        *vclock.Timer
}

// NewMonitor creates a monitor that delivers reports to sink every
// periodMs. With fixedProtocol, a deregistered monitor stops reporting
// instead of reporting zero.
func NewMonitor(sim *vclock.Sim, periodMs int64, fixedProtocol bool, sink func(UsageReport)) *Monitor {
	m := &Monitor{sim: sim, report: sink, registered: true, fixedProtocol: fixedProtocol}
	m.ticker = sim.Every(periodMs, func() { m.tick() })
	return m
}

func (m *Monitor) tick() {
	if !m.registered {
		if m.fixedProtocol {
			return // no data beats wrong data
		}
		// The discrepancy: a deregistered monitor reports usage 0.
		m.report(UsageReport{AtMs: m.sim.Now(), Usage: 0, Registered: false})
		return
	}
	m.report(UsageReport{AtMs: m.sim.Now(), Usage: m.usage, Registered: true})
}

// SetUsage records the service's true current usage.
func (m *Monitor) SetUsage(u float64) { m.usage = u }

// Deregister removes the monitor from the registration database — the
// maintenance action that triggered the incident.
func (m *Monitor) Deregister() { m.registered = false }

// Stop halts the reporting loop.
func (m *Monitor) Stop() { m.ticker.Stop() }

// QuotaPolicy selects the quota manager's interpretation of the
// monitoring feed.
type QuotaPolicy int

// The three behaviours.
const (
	// PolicyTrustReports is the incident behaviour: every report is the
	// service's expected load; sustained zeros shrink the quota.
	PolicyTrustReports QuotaPolicy = iota
	// PolicyGracePeriod keeps enforcement but refuses to shrink below
	// the floor faster than the grace window — the emergency mitigation
	// used during the real incident.
	PolicyGracePeriod
	// PolicyIgnoreUnregistered is the fix on the consumer side: reports
	// from deregistered monitors are discarded.
	PolicyIgnoreUnregistered
)

// QuotaManager derives per-service quota from monitoring data.
type QuotaManager struct {
	sim    *vclock.Sim
	policy QuotaPolicy

	// Quota is the current allowance; it decays toward the observed
	// usage (plus headroom) on every evaluation.
	Quota float64
	// MinQuota is the floor below which PolicyGracePeriod refuses to
	// shrink within the grace window.
	MinQuota float64
	// Headroom is the multiplier over observed usage.
	Headroom float64

	graceUntilMs int64
	evaluations  int
	shrinks      int
}

// NewQuotaManager creates a manager with an initial quota.
func NewQuotaManager(sim *vclock.Sim, policy QuotaPolicy, initial float64) *QuotaManager {
	return &QuotaManager{sim: sim, policy: policy, Quota: initial, MinQuota: initial / 10, Headroom: 1.5}
}

// Observe consumes one monitoring report and re-evaluates the quota.
func (q *QuotaManager) Observe(r UsageReport) {
	q.evaluations++
	if q.policy == PolicyIgnoreUnregistered && !r.Registered {
		return
	}
	target := r.Usage * q.Headroom
	if target >= q.Quota {
		q.Quota = target
		return
	}
	// Shrink gradually toward the target (automated right-sizing).
	next := q.Quota * 0.5
	if next < target {
		next = target
	}
	if q.policy == PolicyGracePeriod {
		if q.sim.Now() < q.graceUntilMs && next < q.MinQuota {
			return
		}
		if next < q.MinQuota {
			// Entering dangerous territory arms a grace window instead
			// of enforcing immediately.
			q.graceUntilMs = q.sim.Now() + 60000
			return
		}
	}
	if next < q.Quota {
		q.shrinks++
	}
	q.Quota = next
}

// Stats reports evaluation counters.
func (q *QuotaManager) Stats() (evaluations, shrinks int) {
	return q.evaluations, q.shrinks
}

// Service is the quota consumer (the User-ID service of the incident).
type Service struct {
	Load float64 // true offered load
}

// Available reports whether the service can serve its load under the
// current quota.
func (s *Service) Available(q *QuotaManager) bool {
	return q.Quota >= s.Load
}

// IncidentResult summarizes a scenario run.
type IncidentResult struct {
	Policy        QuotaPolicy
	FixedProtocol bool
	OutageStartMs int64 // -1 when no outage occurred
	OutageMinutes int64
	FinalQuota    float64
	// LowestQuota is the minimum quota observed during the run — the
	// depth of the collapse the policy allowed.
	LowestQuota float64
	Load        float64
}

// String renders the result.
func (r IncidentResult) String() string {
	mode := fmt.Sprintf("policy=%d fixedProtocol=%v", r.Policy, r.FixedProtocol)
	if r.OutageStartMs < 0 {
		return fmt.Sprintf("%-34s no outage (quota %.0f >= load %.0f)", mode, r.FinalQuota, r.Load)
	}
	return fmt.Sprintf("%-34s OUTAGE at %dms lasting %d min (quota collapsed to %.0f, load %.0f)",
		mode, r.OutageStartMs, r.OutageMinutes, r.LowestQuota, r.Load)
}

// RunIncident replays the scenario: a healthy service whose monitor is
// deregistered at deregisterAtMs, observed until horizonMs. The
// operator re-registers the monitor 30 virtual minutes after the
// outage begins (as in the real incident's recovery).
func RunIncident(policy QuotaPolicy, fixedProtocol bool) IncidentResult {
	const (
		load          = 1000.0
		periodMs      = 10000
		deregisterAt  = 60000
		horizonMs     = 4 * 3600 * 1000
		recoveryDelay = 30 * 60 * 1000
	)
	sim := vclock.New()
	qm := NewQuotaManager(sim, policy, 2000)
	svc := &Service{Load: load}
	lowest := qm.Quota

	var monitor *Monitor
	outageStart := int64(-1)
	outageEnd := int64(-1)
	monitor = NewMonitor(sim, periodMs, fixedProtocol, func(r UsageReport) {
		qm.Observe(r)
		if qm.Quota < lowest {
			lowest = qm.Quota
		}
		if !svc.Available(qm) && outageStart < 0 {
			outageStart = sim.Now()
			// Operators notice and re-register the monitor after the
			// recovery delay.
			sim.After(recoveryDelay, func() {
				monitor.registered = true
			})
		}
		if svc.Available(qm) && outageStart >= 0 && outageEnd < 0 && sim.Now() > outageStart {
			outageEnd = sim.Now()
		}
	})
	monitor.SetUsage(load)
	sim.After(deregisterAt, monitor.Deregister)
	sim.Run(horizonMs)
	monitor.Stop()

	res := IncidentResult{
		Policy:        policy,
		FixedProtocol: fixedProtocol,
		OutageStartMs: outageStart,
		FinalQuota:    qm.Quota,
		LowestQuota:   lowest,
		Load:          load,
	}
	if outageStart >= 0 {
		end := outageEnd
		if end < 0 {
			end = horizonMs
		}
		res.OutageMinutes = (end - outageStart) / 60000
	}
	return res
}
