// Package confplane models the cross-system configuration plane of
// §6.2.1: the effective configuration of a co-deployment is assembled
// by layering and merging the configuration files of several systems,
// and the Finding 7 failure patterns — silent ignorance, unexpected
// override, inconsistent context — arise in exactly that assembly.
//
// The plane tracks full provenance: where each value came from, which
// earlier values it silently overwrote, and which system (if any)
// actually read it. The traceability this provides is the mitigation
// the paper's §6.2.1 implication calls for.
package confplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Layer is one configuration source (a file, a system's defaults, a
// programmatic override), applied in order.
type Layer struct {
	Name   string
	Values map[string]string
}

// Setting is one key's resolved state with provenance.
type Setting struct {
	Key   string
	Value string
	// Chain records every layer that set the key, in application
	// order; the last entry won.
	Chain []LayerValue
}

// LayerValue is one (layer, value) contribution.
type LayerValue struct {
	Layer string
	Value string
}

// Overwrite records a silent cross-layer override — the dominant
// §6.2.1 pattern (18/30 configuration CSI failures are silent
// ignorance or unexpected override).
type Overwrite struct {
	Key    string
	Loser  LayerValue
	Winner LayerValue
}

// String renders the event for reports.
func (o Overwrite) String() string {
	return fmt.Sprintf("%s: %q from layer %s silently overwritten by %q from layer %s",
		o.Key, o.Loser.Value, o.Loser.Layer, o.Winner.Value, o.Winner.Layer)
}

// Plane is the assembled cross-system configuration plane.
type Plane struct {
	mu       sync.Mutex
	layers   []Layer
	settings map[string]*Setting
	reads    map[string][]string // key -> systems that read it
}

// New returns an empty plane.
func New() *Plane {
	return &Plane{settings: make(map[string]*Setting), reads: make(map[string][]string)}
}

// AddLayer applies a configuration layer on top of the current state.
func (p *Plane) AddLayer(name string, values map[string]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.layers = append(p.layers, Layer{Name: name, Values: values})
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s, ok := p.settings[k]
		if !ok {
			s = &Setting{Key: k}
			p.settings[k] = s
		}
		s.Value = values[k]
		s.Chain = append(s.Chain, LayerValue{Layer: name, Value: values[k]})
	}
}

// Get reads a key on behalf of a system, recording the read for
// ignored-key analysis. The second result reports presence.
func (p *Plane) Get(system, key string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reads[key] = append(p.reads[key], system)
	s, ok := p.settings[key]
	if !ok {
		return "", false
	}
	return s.Value, true
}

// Effective returns the resolved key/value view.
func (p *Plane) Effective() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.settings))
	for k, s := range p.settings {
		out[k] = s.Value
	}
	return out
}

// Overwrites returns every silent cross-layer override, sorted by key.
// An override within the same layer name is not reported.
func (p *Plane) Overwrites() []Overwrite {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Overwrite
	for _, s := range p.settings {
		for i := 1; i < len(s.Chain); i++ {
			prev, cur := s.Chain[i-1], s.Chain[i]
			if prev.Layer == cur.Layer || prev.Value == cur.Value {
				continue
			}
			out = append(out, Overwrite{Key: s.Key, Loser: prev, Winner: cur})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// IgnoredKeys returns keys that were configured but never read by any
// system — the silent-ignorance pattern (SPARK-10181: Kerberos keytab
// and principal set for the Hive client but never consulted).
func (p *Plane) IgnoredKeys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for k := range p.settings {
		if len(p.reads[k]) == 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Readers returns the systems that read a key, in read order.
func (p *Plane) Readers(key string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.reads[key]...)
}

// Trace renders a key's provenance chain and readers — the
// cross-system traceability §6.2.1 argues for.
func (p *Plane) Trace(key string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.settings[key]
	if !ok {
		return fmt.Sprintf("%s: unset", key)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s = %q\n", key, s.Value)
	for i, lv := range s.Chain {
		marker := "overwritten"
		if i == len(s.Chain)-1 {
			marker = "effective"
		}
		fmt.Fprintf(&b, "  [%d] layer %-20s value %-20q (%s)\n", i, lv.Layer, lv.Value, marker)
	}
	readers := p.reads[key]
	if len(readers) == 0 {
		b.WriteString("  read by: nobody (IGNORED)\n")
	} else {
		fmt.Fprintf(&b, "  read by: %s\n", strings.Join(readers, ", "))
	}
	return b.String()
}

// Keys returns all configured keys, sorted.
func (p *Plane) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.settings))
	for k := range p.settings {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
