package confplane

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLayeringLastWins(t *testing.T) {
	p := New()
	p.AddLayer("hive-site.xml", map[string]string{"hive.exec.dynamic.partition": "true", "hive.metastore.uris": "thrift://h1"})
	p.AddLayer("spark-defaults.conf", map[string]string{"hive.metastore.uris": "thrift://h2"})
	eff := p.Effective()
	if eff["hive.metastore.uris"] != "thrift://h2" {
		t.Errorf("effective = %v", eff)
	}
	if eff["hive.exec.dynamic.partition"] != "true" {
		t.Errorf("effective = %v", eff)
	}
}

func TestSilentOverwriteDetection(t *testing.T) {
	// SPARK-16901 pattern: Spark's merge with the Hadoop configuration
	// silently overwrites Hive's settings.
	p := New()
	p.AddLayer("hive-site.xml", map[string]string{"hive.metastore.uris": "thrift://hive-prod"})
	p.AddLayer("hadoop-merge", map[string]string{"hive.metastore.uris": "thrift://default"})
	events := p.Overwrites()
	if len(events) != 1 {
		t.Fatalf("overwrites = %v", events)
	}
	e := events[0]
	if e.Key != "hive.metastore.uris" || e.Winner.Layer != "hadoop-merge" || e.Loser.Layer != "hive-site.xml" {
		t.Errorf("event = %+v", e)
	}
	if !strings.Contains(e.String(), "silently overwritten") {
		t.Errorf("render = %q", e.String())
	}
}

func TestSameValueOrSameLayerNotAnOverwrite(t *testing.T) {
	p := New()
	p.AddLayer("a", map[string]string{"k": "v"})
	p.AddLayer("b", map[string]string{"k": "v"}) // same value: harmless
	if events := p.Overwrites(); len(events) != 0 {
		t.Errorf("overwrites = %v", events)
	}
}

func TestIgnoredKeysDetection(t *testing.T) {
	// SPARK-10181 pattern: Kerberos settings configured for the Hive
	// client but never read.
	p := New()
	p.AddLayer("spark-defaults.conf", map[string]string{
		"spark.yarn.keytab":    "/etc/krb/user.keytab",
		"spark.yarn.principal": "user@REALM",
		"spark.executor.cores": "4",
	})
	if v, ok := p.Get("spark-core", "spark.executor.cores"); !ok || v != "4" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	ignored := p.IgnoredKeys()
	if len(ignored) != 2 || ignored[0] != "spark.yarn.keytab" || ignored[1] != "spark.yarn.principal" {
		t.Errorf("ignored = %v", ignored)
	}
}

func TestReadersAndTrace(t *testing.T) {
	p := New()
	p.AddLayer("yarn-site.xml", map[string]string{"yarn.scheduler.minimum-allocation-mb": "128"})
	p.AddLayer("flink-conf.yaml", map[string]string{"yarn.scheduler.minimum-allocation-mb": "256"})
	if _, ok := p.Get("flink", "yarn.scheduler.minimum-allocation-mb"); !ok {
		t.Fatal("key should exist")
	}
	if _, ok := p.Get("yarn-capacity-scheduler", "yarn.scheduler.minimum-allocation-mb"); !ok {
		t.Fatal("key should exist")
	}
	readers := p.Readers("yarn.scheduler.minimum-allocation-mb")
	if len(readers) != 2 || readers[0] != "flink" {
		t.Errorf("readers = %v", readers)
	}
	trace := p.Trace("yarn.scheduler.minimum-allocation-mb")
	for _, want := range []string{"yarn-site.xml", "flink-conf.yaml", "effective", "overwritten", "flink"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	if !strings.Contains(p.Trace("unset.key"), "unset") {
		t.Error("unset trace")
	}
	if !strings.Contains(p.Trace("yarn.scheduler.minimum-allocation-mb"), "flink") {
		t.Error("trace readers")
	}
}

func TestIgnoredMarkerInTrace(t *testing.T) {
	p := New()
	p.AddLayer("a", map[string]string{"dead.key": "1"})
	if !strings.Contains(p.Trace("dead.key"), "IGNORED") {
		t.Errorf("trace = %q", p.Trace("dead.key"))
	}
}

func TestGetMissing(t *testing.T) {
	p := New()
	if _, ok := p.Get("sys", "nope"); ok {
		t.Error("missing key should not be found")
	}
	// Even a miss is recorded as a read attempt for that key; if the
	// key is later set, it is not "ignored" retroactively.
	p.AddLayer("a", map[string]string{"nope": "1"})
	if ignored := p.IgnoredKeys(); len(ignored) != 0 {
		t.Errorf("ignored = %v", ignored)
	}
}

func TestKeysSorted(t *testing.T) {
	p := New()
	p.AddLayer("a", map[string]string{"z": "1", "a": "2", "m": "3"})
	keys := p.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Errorf("keys = %v", keys)
	}
}

func TestMergeLawLastLayerWinsProperty(t *testing.T) {
	// For any two layers, the effective value of every key in the
	// second layer equals the second layer's value.
	f := func(a, b map[string]string) bool {
		p := New()
		p.AddLayer("a", a)
		p.AddLayer("b", b)
		eff := p.Effective()
		for k, v := range b {
			if eff[k] != v {
				return false
			}
		}
		for k, v := range a {
			if _, shadowed := b[k]; !shadowed && eff[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
