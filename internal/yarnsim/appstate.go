package yarnsim

// Application lifecycle state machine with transition validation — the
// RM-side state CoFI's YARN findings (YARN-10288, YARN-10232) revolve
// around: when a partition hides the AM's progress from the RM, the
// RM's copy of the state machine goes stale, and a later management
// operation (kill, stop) either fires an "invalid application state
// transition" error or overwrites an outcome that already happened.

import "fmt"

// AppState is an application's lifecycle state as the RM tracks it.
// (AppStatus remains the separate *final status* the AM reports; the
// lifecycle state is what transitions are validated against.)
type AppState int

// The lifecycle states.
const (
	StateAccepted AppState = iota
	StateRunning
	StateFinished
	StateKilled
)

// String names the state as YARN logs it.
func (s AppState) String() string {
	switch s {
	case StateAccepted:
		return "ACCEPTED"
	case StateRunning:
		return "RUNNING"
	case StateFinished:
		return "FINISHED"
	case StateKilled:
		return "KILLED"
	default:
		return fmt.Sprintf("AppState(%d)", int(s))
	}
}

// InvalidTransitionError is the YARN-10288 error class: an event
// applied to a state machine that cannot accept it.
type InvalidTransitionError struct {
	App      int64
	From, To AppState
}

// Error implements the error interface.
func (e *InvalidTransitionError) Error() string {
	return fmt.Sprintf("yarn: invalid application state transition for app %d: %s -> %s", e.App, e.From, e.To)
}

// ValidAppTransition reports whether the lifecycle state machine
// accepts the transition. FINISHED and KILLED are terminal.
func ValidAppTransition(from, to AppState) bool {
	switch from {
	case StateAccepted:
		return to == StateRunning || to == StateKilled
	case StateRunning:
		return to == StateFinished || to == StateKilled
	default:
		return false
	}
}

// AppState returns the RM's lifecycle state for the application.
func (rm *ResourceManager) AppState(id int64) (AppState, error) {
	app, ok := rm.apps[id]
	if !ok {
		return StateAccepted, fmt.Errorf("yarn: unknown application %d", id)
	}
	return app.State, nil
}

// TransitionApp applies a lifecycle transition to the RM's state
// machine, rejecting invalid ones. The rejection is the point: it is
// what a kill against an already-terminal application surfaces, and
// what goes *missing* when the RM's state machine is stale.
func (rm *ResourceManager) TransitionApp(id int64, to AppState) error {
	app, ok := rm.apps[id]
	if !ok {
		return fmt.Errorf("yarn: unknown application %d", id)
	}
	if !ValidAppTransition(app.State, to) {
		return &InvalidTransitionError{App: id, From: app.State, To: to}
	}
	app.State = to
	return nil
}
