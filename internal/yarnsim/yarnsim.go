// Package yarnsim simulates a YARN ResourceManager with the
// cross-system-visible behaviours behind the paper's control- and
// management-plane CSI failures:
//
//   - container allocation is asynchronous with a per-container
//     latency, so a client that assumes the request/response cycle
//     completes within its polling interval re-requests pending
//     containers and floods the RM (FLINK-12342, Figure 1);
//   - two schedulers interpret the resource configuration keys
//     differently: the capacity scheduler reads
//     yarn.scheduler.minimum-allocation-mb while the fair scheduler
//     reads yarn.resource-types.memory-mb.increment-allocation
//     (FLINK-19141, Figure 3);
//   - a pmem monitor kills containers whose processes exceed their
//     requested memory (FLINK-887);
//   - the cluster-metrics API is only served in RM modes that
//     support it (YARN-9724).
//
// The simulator runs on a vclock.Sim discrete-event scheduler so the
// timing-dependent failures replay deterministically.
package yarnsim

import (
	"fmt"
	"strconv"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// SchedulerKind selects the RM's scheduler implementation.
type SchedulerKind int

// The two schedulers with inconsistent configuration semantics.
const (
	CapacityScheduler SchedulerKind = iota
	FairScheduler
)

// String names the scheduler.
func (k SchedulerKind) String() string {
	if k == FairScheduler {
		return "fair"
	}
	return "capacity"
}

// Configuration keys read by the schedulers. The overlap-free key sets
// are the FLINK-19141 discrepancy: a client that configures one
// scheduler's keys silently misconfigures the other.
const (
	// KeyMinAllocMB / KeyMinAllocVcores are read by the capacity
	// scheduler: requests are rounded up to multiples of these.
	KeyMinAllocMB     = "yarn.scheduler.minimum-allocation-mb"
	KeyMinAllocVcores = "yarn.scheduler.minimum-allocation-vcores"
	// KeyIncAllocMB / KeyIncAllocVcores are read by the fair scheduler.
	KeyIncAllocMB     = "yarn.resource-types.memory-mb.increment-allocation"
	KeyIncAllocVcores = "yarn.resource-types.vcores.increment-allocation"
	// KeyMaxAllocMB caps a single allocation for both schedulers.
	KeyMaxAllocMB = "yarn.scheduler.maximum-allocation-mb"
	// KeySchedulerClass selects the scheduler implementation.
	KeySchedulerClass = "yarn.resourcemanager.scheduler.class"
)

// Resource is a container resource ask.
type Resource struct {
	MemoryMB int64
	Vcores   int64
}

// Container is a granted allocation.
type Container struct {
	ID        int64
	Resource  Resource
	StartedMs int64
	// PmemUsedMB is the simulated physical memory used by the
	// container's process tree (JVM heap + overhead).
	PmemUsedMB int64
	Killed     bool
	KillReason string
}

// AllocationError reports an allocation the scheduler cannot satisfy.
type AllocationError struct {
	Ask    Resource
	Max    Resource
	Reason string
}

// Error implements the error interface.
func (e *AllocationError) Error() string {
	return fmt.Sprintf("yarn: could not allocate the required resource (ask %d MB / %d vcores): %s",
		e.Ask.MemoryMB, e.Ask.Vcores, e.Reason)
}

// Config is a YARN-side configuration map.
type Config map[string]string

func (c Config) int64(key string, def int64) int64 {
	if v, ok := c[key]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// ResourceManager is the simulated RM.
type ResourceManager struct {
	sim    *vclock.Sim
	conf   Config
	sched  SchedulerKind
	nextID int64

	// AllocLatencyMs is the virtual time to allocate one container.
	AllocLatencyMs int64

	capacityMB int64
	usedMB     int64

	containers map[int64]*Container
	apps       map[int64]*Application

	// allocFreeAtMs is when the (serialized) allocator thread becomes
	// free; queued requests pile up behind it, which is how a request
	// storm overloads the RM.
	allocFreeAtMs int64

	// counters for the Figure 1 / Table metrics
	requestsReceived   int64
	containersGranted  int64
	allocationFailures int64
	pmemKills          int64

	pmemMonitor *vclock.Timer
	metricsMode bool

	tracer   *obs.Tracer
	traceTop *obs.Span
}

// Options configure a ResourceManager.
type Options struct {
	Conf Config
	// ClusterMemoryMB is the total schedulable memory (default 1 TiB).
	ClusterMemoryMB int64
	// AllocLatencyMs is the per-container allocation latency
	// (default 200 ms, the Figure 1 hazard when > client interval / C).
	AllocLatencyMs int64
	// ServeClusterMetrics enables the getYarnClusterMetrics API
	// (absent in some RM modes — YARN-9724).
	ServeClusterMetrics bool
}

// New creates a ResourceManager on the virtual clock.
func New(sim *vclock.Sim, opts Options) *ResourceManager {
	conf := opts.Conf
	if conf == nil {
		conf = Config{}
	}
	sched := CapacityScheduler
	if conf[KeySchedulerClass] == "fair" {
		sched = FairScheduler
	}
	capMB := opts.ClusterMemoryMB
	if capMB == 0 {
		capMB = 1 << 20 // 1 TiB in MB
	}
	lat := opts.AllocLatencyMs
	if lat == 0 {
		lat = 200
	}
	return &ResourceManager{
		sim:            sim,
		conf:           conf,
		sched:          sched,
		AllocLatencyMs: lat,
		capacityMB:     capMB,
		containers:     make(map[int64]*Container),
		metricsMode:    opts.ServeClusterMetrics,
	}
}

// Scheduler returns the active scheduler kind.
func (rm *ResourceManager) Scheduler() SchedulerKind { return rm.sched }

// SetTrace attaches a tracer and default parent span; the RM then
// emits spans for container requests, allocations, and pmem kills.
// The RM runs single-threaded on the vclock scheduler, so no locking
// is needed. A nil tracer disables emission.
func (rm *ResourceManager) SetTrace(tr *obs.Tracer, parent *obs.Span) {
	rm.tracer = tr
	rm.traceTop = parent
}

// normalize rounds an ask up to the scheduler's allocation granularity.
// This is where the configuration discrepancy bites: each scheduler
// consults its own keys and ignores the other's.
func (rm *ResourceManager) normalize(ask Resource) (Resource, error) {
	roundUp := func(v, unit int64) int64 {
		if unit <= 0 {
			return v
		}
		return (v + unit - 1) / unit * unit
	}
	var unitMB, unitVC int64
	switch rm.sched {
	case CapacityScheduler:
		unitMB = rm.conf.int64(KeyMinAllocMB, 1024)
		unitVC = rm.conf.int64(KeyMinAllocVcores, 1)
	case FairScheduler:
		unitMB = rm.conf.int64(KeyIncAllocMB, 1024)
		unitVC = rm.conf.int64(KeyIncAllocVcores, 1)
	}
	out := Resource{MemoryMB: roundUp(ask.MemoryMB, unitMB), Vcores: roundUp(ask.Vcores, unitVC)}
	maxMB := rm.conf.int64(KeyMaxAllocMB, 8192)
	if out.MemoryMB > maxMB {
		return Resource{}, &AllocationError{
			Ask: out, Max: Resource{MemoryMB: maxMB},
			Reason: fmt.Sprintf("normalized ask %d MB exceeds %s=%d under the %s scheduler",
				out.MemoryMB, KeyMaxAllocMB, maxMB, rm.sched),
		}
	}
	return out, nil
}

// RequestContainers asks the RM for n containers of the given resource.
// The call returns immediately; each granted container is delivered to
// onAllocated after the allocation latency elapses. Allocation errors
// are delivered to onError.
func (rm *ResourceManager) RequestContainers(n int, ask Resource,
	onAllocated func(*Container), onError func(error)) {
	rm.requestsReceived += int64(n)
	var req *obs.Span
	if rm.tracer != nil {
		req = rm.tracer.Span(rm.traceTop, csi.YARN, csi.ControlPlane, "request-containers").
			Set("n", strconv.Itoa(n)).
			Set("ask_mb", strconv.FormatInt(ask.MemoryMB, 10)).
			Set("scheduler", rm.sched.String())
	}
	norm, err := rm.normalize(ask)
	if err != nil {
		rm.allocationFailures += int64(n)
		req.Fail(err).End()
		if onError != nil {
			onError(err)
		}
		return
	}
	req.End()
	if rm.allocFreeAtMs < rm.sim.Now() {
		rm.allocFreeAtMs = rm.sim.Now()
	}
	for i := 0; i < n; i++ {
		// Allocation work is serialized in the scheduler: each request
		// queues behind everything already pending.
		rm.allocFreeAtMs += rm.AllocLatencyMs
		delay := rm.allocFreeAtMs - rm.sim.Now()
		rm.sim.After(delay, func() {
			if rm.usedMB+norm.MemoryMB > rm.capacityMB {
				rm.allocationFailures++
				err := &AllocationError{Ask: norm, Reason: "cluster out of memory"}
				req.Child(csi.YARN, csi.ControlPlane, "allocate").Fail(err).End()
				if onError != nil {
					onError(err)
				}
				return
			}
			rm.nextID++
			c := &Container{ID: rm.nextID, Resource: norm, StartedMs: rm.sim.Now()}
			rm.usedMB += norm.MemoryMB
			rm.containers[c.ID] = c
			rm.containersGranted++
			req.Child(csi.YARN, csi.ControlPlane, "allocate").
				Set("container", strconv.FormatInt(c.ID, 10)).End()
			if onAllocated != nil {
				onAllocated(c)
			}
		})
	}
}

// Release returns a container's resources to the cluster.
func (rm *ResourceManager) Release(id int64) {
	if c, ok := rm.containers[id]; ok {
		rm.usedMB -= c.Resource.MemoryMB
		delete(rm.containers, id)
	}
}

// SetContainerPmem records the physical memory used by a container's
// process tree, as the NodeManager's monitor would observe it.
func (rm *ResourceManager) SetContainerPmem(id int64, usedMB int64) {
	if c, ok := rm.containers[id]; ok {
		c.PmemUsedMB = usedMB
	}
}

// StartPmemMonitor begins the periodic physical-memory check: any
// container whose process tree exceeds its requested memory is killed
// (the FLINK-887 failure when the client's JVM sizing ignores
// overhead).
func (rm *ResourceManager) StartPmemMonitor(intervalMs int64, onKill func(*Container)) {
	rm.pmemMonitor = rm.sim.Every(intervalMs, func() {
		for _, c := range rm.containers {
			if c.Killed || c.PmemUsedMB <= c.Resource.MemoryMB {
				continue
			}
			c.Killed = true
			c.KillReason = fmt.Sprintf(
				"Container [%d] is running beyond physical memory limits: %d MB used, %d MB requested. Killing container.",
				c.ID, c.PmemUsedMB, c.Resource.MemoryMB)
			rm.pmemKills++
			if rm.tracer != nil {
				rm.tracer.Span(rm.traceTop, csi.YARN, csi.ManagementPlane, "pmem-kill").
					Set("container", strconv.FormatInt(c.ID, 10)).
					Fail(fmt.Errorf("%s", c.KillReason)).End()
			}
			rm.Release(c.ID)
			if onKill != nil {
				onKill(c)
			}
		}
	})
}

// StopPmemMonitor stops the monitor.
func (rm *ResourceManager) StopPmemMonitor() {
	if rm.pmemMonitor != nil {
		rm.pmemMonitor.Stop()
	}
}

// ClusterMetrics is the subset of metrics the YARN-9724 API exposes.
type ClusterMetrics struct {
	Containers int
	UsedMB     int64
	CapacityMB int64
}

// GetClusterMetrics returns cluster metrics, or an error when the RM
// mode does not serve the API (YARN-9724: upstreams assumed its
// availability in all modes).
func (rm *ResourceManager) GetClusterMetrics() (ClusterMetrics, error) {
	if !rm.metricsMode {
		return ClusterMetrics{}, fmt.Errorf("yarn: getClusterMetrics is not supported in this ResourceManager mode")
	}
	return ClusterMetrics{Containers: len(rm.containers), UsedMB: rm.usedMB, CapacityMB: rm.capacityMB}, nil
}

// Stats are the RM's lifetime counters.
type Stats struct {
	RequestsReceived   int64
	ContainersGranted  int64
	AllocationFailures int64
	PmemKills          int64
	LiveContainers     int
}

// Stats returns a snapshot of the counters.
func (rm *ResourceManager) Stats() Stats {
	return Stats{
		RequestsReceived:   rm.requestsReceived,
		ContainersGranted:  rm.containersGranted,
		AllocationFailures: rm.allocationFailures,
		PmemKills:          rm.pmemKills,
		LiveContainers:     len(rm.containers),
	}
}
