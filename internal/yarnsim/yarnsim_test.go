package yarnsim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vclock"
)

func TestAllocationDeliveredAfterLatency(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{AllocLatencyMs: 100})
	var got []*Container
	rm.RequestContainers(3, Resource{MemoryMB: 1024, Vcores: 1},
		func(c *Container) { got = append(got, c) }, nil)
	sim.Run(250)
	if len(got) != 2 {
		t.Fatalf("allocated at 250ms = %d, want 2 (serialized allocator)", len(got))
	}
	sim.Run(300)
	if len(got) != 3 {
		t.Fatalf("allocated at 300ms = %d, want 3", len(got))
	}
	if got[0].StartedMs != 100 || got[2].StartedMs != 300 {
		t.Errorf("start times = %d, %d", got[0].StartedMs, got[2].StartedMs)
	}
}

func TestAllocatorSerializesAcrossRequests(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{AllocLatencyMs: 100})
	var times []int64
	cb := func(c *Container) { times = append(times, c.StartedMs) }
	rm.RequestContainers(2, Resource{MemoryMB: 512}, cb, nil)
	sim.Run(50)
	rm.RequestContainers(1, Resource{MemoryMB: 512}, cb, nil)
	sim.Run(1000)
	if len(times) != 3 || times[2] != 300 {
		t.Errorf("times = %v, third should queue behind the first two", times)
	}
}

func TestCapacitySchedulerRoundsUpToMinAlloc(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{Conf: Config{KeyMinAllocMB: "1024", KeyMaxAllocMB: "8192"}})
	var got *Container
	rm.RequestContainers(1, Resource{MemoryMB: 100, Vcores: 1}, func(c *Container) { got = c }, nil)
	sim.Run(10000)
	if got == nil || got.Resource.MemoryMB != 1024 {
		t.Fatalf("container = %+v", got)
	}
}

func TestFairSchedulerReadsDifferentKeys(t *testing.T) {
	// FLINK-19141 / Figure 3: the min-alloc keys configured for the
	// capacity scheduler are ignored by the fair scheduler, whose own
	// increment keys are unset and default to 1024 — so a request that
	// fits under the capacity scheduler's tuning fails under fair.
	conf := Config{
		KeySchedulerClass: "fair",
		KeyMinAllocMB:     "128", // the key the operator tuned — ignored
		KeyMaxAllocMB:     "1500",
	}
	sim := vclock.New()
	rm := New(sim, Options{Conf: conf})
	if rm.Scheduler() != FairScheduler {
		t.Fatal("scheduler should be fair")
	}
	var errs []error
	rm.RequestContainers(1, Resource{MemoryMB: 1100, Vcores: 1}, nil, func(err error) { errs = append(errs, err) })
	sim.Run(10000)
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	var ae *AllocationError
	if !errors.As(errs[0], &ae) || !strings.Contains(ae.Error(), "could not allocate") {
		t.Errorf("err = %v", errs[0])
	}
	// The same request under the capacity scheduler (which honours the
	// tuned key) succeeds: 1100 rounds to 1152 < 1500.
	conf2 := Config{KeyMinAllocMB: "128", KeyMaxAllocMB: "1500"}
	sim2 := vclock.New()
	rm2 := New(sim2, Options{Conf: conf2})
	var ok *Container
	rm2.RequestContainers(1, Resource{MemoryMB: 1100, Vcores: 1}, func(c *Container) { ok = c }, nil)
	sim2.Run(10000)
	if ok == nil || ok.Resource.MemoryMB != 1152 {
		t.Errorf("capacity alloc = %+v", ok)
	}
	// Configuring the fair scheduler's own key resolves it.
	conf3 := Config{KeySchedulerClass: "fair", KeyIncAllocMB: "128", KeyMaxAllocMB: "1500"}
	sim3 := vclock.New()
	rm3 := New(sim3, Options{Conf: conf3})
	var ok3 *Container
	rm3.RequestContainers(1, Resource{MemoryMB: 1100, Vcores: 1}, func(c *Container) { ok3 = c }, nil)
	sim3.Run(10000)
	if ok3 == nil {
		t.Error("fair scheduler with its own key should allocate")
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{ClusterMemoryMB: 2048, AllocLatencyMs: 10})
	var ids []int64
	rm.RequestContainers(2, Resource{MemoryMB: 1024, Vcores: 1}, func(c *Container) { ids = append(ids, c.ID) }, nil)
	sim.Run(1000)
	if len(ids) != 2 {
		t.Fatalf("allocated = %d", len(ids))
	}
	// Cluster full: next request fails.
	var failed error
	rm.RequestContainers(1, Resource{MemoryMB: 1024, Vcores: 1}, nil, func(err error) { failed = err })
	sim.Run(2000)
	if failed == nil {
		t.Fatal("expected out-of-memory failure")
	}
	rm.Release(ids[0])
	var ok *Container
	rm.RequestContainers(1, Resource{MemoryMB: 1024, Vcores: 1}, func(c *Container) { ok = c }, nil)
	sim.Run(3000)
	if ok == nil {
		t.Error("allocation after release should succeed")
	}
}

func TestPmemMonitorKillsOverLimitContainers(t *testing.T) {
	// FLINK-887: the pmem monitor kills containers whose process tree
	// exceeds the requested memory.
	sim := vclock.New()
	rm := New(sim, Options{AllocLatencyMs: 10})
	var c *Container
	rm.RequestContainers(1, Resource{MemoryMB: 1024, Vcores: 1}, func(got *Container) { c = got }, nil)
	sim.Run(100)
	if c == nil {
		t.Fatal("no container")
	}
	var killed *Container
	rm.StartPmemMonitor(100, func(k *Container) { killed = k })
	rm.SetContainerPmem(c.ID, 1024+256)
	sim.Run(500)
	if killed == nil || killed.ID != c.ID {
		t.Fatalf("killed = %+v", killed)
	}
	if !strings.Contains(killed.KillReason, "beyond physical memory limits") {
		t.Errorf("reason = %q", killed.KillReason)
	}
	if rm.Stats().PmemKills != 1 || rm.Stats().LiveContainers != 0 {
		t.Errorf("stats = %+v", rm.Stats())
	}
	rm.StopPmemMonitor()
}

func TestPmemMonitorSparesWithinLimit(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{AllocLatencyMs: 10})
	var c *Container
	rm.RequestContainers(1, Resource{MemoryMB: 1024, Vcores: 1}, func(got *Container) { c = got }, nil)
	sim.Run(100)
	rm.SetContainerPmem(c.ID, 1000)
	killed := 0
	rm.StartPmemMonitor(100, func(*Container) { killed++ })
	sim.Run(1000)
	if killed != 0 {
		t.Errorf("killed = %d", killed)
	}
}

func TestClusterMetricsAPIModeGated(t *testing.T) {
	// YARN-9724: the metrics API is not served in every RM mode.
	sim := vclock.New()
	rm := New(sim, Options{ServeClusterMetrics: false})
	if _, err := rm.GetClusterMetrics(); err == nil {
		t.Error("metrics should be unavailable")
	}
	rm2 := New(sim, Options{ServeClusterMetrics: true, AllocLatencyMs: 10})
	rm2.RequestContainers(1, Resource{MemoryMB: 512, Vcores: 1}, nil, nil)
	sim.Run(100)
	m, err := rm2.GetClusterMetrics()
	if err != nil || m.Containers != 1 {
		t.Errorf("metrics = %+v, %v", m, err)
	}
}

func TestStatsCounters(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{AllocLatencyMs: 10})
	rm.RequestContainers(5, Resource{MemoryMB: 512, Vcores: 1}, nil, nil)
	sim.Run(1000)
	s := rm.Stats()
	if s.RequestsReceived != 5 || s.ContainersGranted != 5 || s.AllocationFailures != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDriverReportingAccurate(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{})
	status, finished := rm.RunDriver("job-ok", false, ReportAccurately)
	if status != AppSucceeded || !finished {
		t.Errorf("success = %v/%v", status, finished)
	}
	status, finished = rm.RunDriver("job-bad", true, ReportAccurately)
	if status != AppFailed || !finished {
		t.Errorf("failure = %v/%v", status, finished)
	}
}

func TestDriverReportsSuccessForFailedJob(t *testing.T) {
	// SPARK-3627: the driver unconditionally unregisters with SUCCEEDED,
	// so YARN's monitoring disagrees with reality.
	sim := vclock.New()
	rm := New(sim, Options{})
	status, finished := rm.RunDriver("job-bad", true, ReportAlwaysSuccess)
	if status != AppSucceeded || !finished {
		t.Errorf("got %v/%v; the defect reports SUCCEEDED for a failed job", status, finished)
	}
}

func TestDriverExitsSilently(t *testing.T) {
	// SPARK-10851: the runner never unregisters — YARN's record stays
	// UNDEFINED and unfinished (reduced observability).
	sim := vclock.New()
	rm := New(sim, Options{})
	status, finished := rm.RunDriver("r-job", true, ReportNothing)
	if status != AppUndefined || finished {
		t.Errorf("got %v/%v; the defect leaves the status undefined", status, finished)
	}
}

func TestApplicationStatusUnknownApp(t *testing.T) {
	sim := vclock.New()
	rm := New(sim, Options{})
	if _, _, err := rm.ApplicationStatus(42); err == nil {
		t.Error("unknown app should error")
	}
	if err := rm.ReportFinalStatus(42, AppSucceeded, ""); err == nil {
		t.Error("unknown app should error")
	}
}

func TestAppStatusStrings(t *testing.T) {
	for s, want := range map[AppStatus]string{
		AppUndefined: "UNDEFINED", AppSucceeded: "SUCCEEDED", AppFailed: "FAILED", AppKilled: "KILLED",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", int(s), s.String())
		}
	}
}
