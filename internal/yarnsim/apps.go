package yarnsim

import "fmt"

// Application status reporting models the monitoring half of the
// management plane: YARN tracks each application's final status as
// reported by the application master. Two of the study's
// monitoring-plane CSI failures live exactly here:
//
//   - SPARK-3627: Spark reported SUCCEEDED to YARN for failed jobs, so
//     YARN's records disagreed with reality;
//   - SPARK-10851: Spark's R runner exited without reporting any final
//     status, so YARN saw an undefined outcome — reduced observability.

// AppStatus is an application's final status as YARN records it.
type AppStatus int

// The status values.
const (
	AppUndefined AppStatus = iota // never reported (the SPARK-10851 hole)
	AppSucceeded
	AppFailed
	AppKilled
)

// String names the status.
func (s AppStatus) String() string {
	switch s {
	case AppSucceeded:
		return "SUCCEEDED"
	case AppFailed:
		return "FAILED"
	case AppKilled:
		return "KILLED"
	default:
		return "UNDEFINED"
	}
}

// Application is a YARN application registration.
type Application struct {
	ID          int64
	Name        string
	State       AppState // lifecycle state (transition-validated)
	Finished    bool
	FinalStatus AppStatus
	Diagnostics string
}

// SubmitApplication registers a new application.
func (rm *ResourceManager) SubmitApplication(name string) *Application {
	rm.nextID++
	app := &Application{ID: rm.nextID, Name: name}
	if rm.apps == nil {
		rm.apps = make(map[int64]*Application)
	}
	rm.apps[app.ID] = app
	return app
}

// ReportFinalStatus is the unregister call an application master makes
// when it completes.
func (rm *ResourceManager) ReportFinalStatus(id int64, status AppStatus, diagnostics string) error {
	app, ok := rm.apps[id]
	if !ok {
		return fmt.Errorf("yarn: unknown application %d", id)
	}
	app.Finished = true
	app.FinalStatus = status
	app.Diagnostics = diagnostics
	return nil
}

// ApplicationStatus returns YARN's view of the application.
func (rm *ResourceManager) ApplicationStatus(id int64) (AppStatus, bool, error) {
	app, ok := rm.apps[id]
	if !ok {
		return AppUndefined, false, fmt.Errorf("yarn: unknown application %d", id)
	}
	return app.FinalStatus, app.Finished, nil
}

// DriverReporting selects how an upstream driver reports its outcome to
// YARN — the discrepancy axis of the monitoring failures.
type DriverReporting int

// The three reporting behaviours.
const (
	// ReportAccurately: the fixed behaviour.
	ReportAccurately DriverReporting = iota
	// ReportAlwaysSuccess is the SPARK-3627 defect: the driver
	// unconditionally unregisters with SUCCEEDED.
	ReportAlwaysSuccess
	// ReportNothing is the SPARK-10851 defect: the runner exits silently
	// without unregistering.
	ReportNothing
)

// RunDriver simulates an upstream job that either succeeds or fails,
// reporting to YARN per the given behaviour. It returns YARN's recorded
// status — compare it with jobFailed to observe the discrepancy.
func (rm *ResourceManager) RunDriver(name string, jobFailed bool, reporting DriverReporting) (AppStatus, bool) {
	app := rm.SubmitApplication(name)
	switch reporting {
	case ReportAlwaysSuccess:
		_ = rm.ReportFinalStatus(app.ID, AppSucceeded, "")
	case ReportNothing:
		// The runner exits without unregistering.
	default:
		status := AppSucceeded
		diag := ""
		if jobFailed {
			status = AppFailed
			diag = name + ": user code raised an exception"
		}
		_ = rm.ReportFinalStatus(app.ID, status, diag)
	}
	status, finished, _ := rm.ApplicationStatus(app.ID)
	return status, finished
}
