package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlval"
)

// Eval converts a literal expression to a naturally-typed value:
// integer literals become INT (or BIGINT when they do not fit), decimal
// literals become DECIMAL with their written scale, exponent literals
// become DOUBLE. The engine then coerces the natural value into the
// destination column type under its own cast mode; mode here only
// governs conversions inside nested literals and explicit CASTs.
func Eval(e Expr, mode sqlval.CastMode) (sqlval.Value, error) {
	switch lit := e.(type) {
	case NullLit:
		return sqlval.NullOf(sqlval.Null), nil
	case BoolLit:
		return sqlval.BoolVal(lit.Value), nil
	case NumberLit:
		return evalNumber(lit)
	case StringLit:
		return sqlval.StringVal(lit.Value), nil
	case BinaryLit:
		return sqlval.BinaryVal(lit.Value), nil
	case TypedLit:
		switch lit.Type.Kind {
		case sqlval.KindDate:
			days, err := sqlval.ParseDate(lit.Raw)
			if err != nil {
				return sqlval.Value{}, err
			}
			return sqlval.DateVal(days), nil
		case sqlval.KindTimestamp:
			micros, err := sqlval.ParseTimestamp(lit.Raw)
			if err != nil {
				return sqlval.Value{}, err
			}
			return sqlval.TimestampVal(micros), nil
		default:
			return sqlval.Value{}, fmt.Errorf("sql: unsupported typed literal %v", lit.Type)
		}
	case ArrayLit:
		items := make([]sqlval.Value, len(lit.Items))
		for i, it := range lit.Items {
			v, err := Eval(it, mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			items[i] = v
		}
		elem := unifyTypes(items)
		for i := range items {
			c, err := sqlval.Cast(items[i], elem, mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			items[i] = c
		}
		return sqlval.ArrayVal(elem, items...), nil
	case MapLit:
		keys := make([]sqlval.Value, len(lit.Keys))
		vals := make([]sqlval.Value, len(lit.Vals))
		for i := range lit.Keys {
			k, err := Eval(lit.Keys[i], mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			v, err := Eval(lit.Vals[i], mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			keys[i], vals[i] = k, v
		}
		keyT := unifyTypes(keys)
		valT := unifyTypes(vals)
		for i := range keys {
			k, err := sqlval.Cast(keys[i], keyT, mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			v, err := sqlval.Cast(vals[i], valT, mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			keys[i], vals[i] = k, v
		}
		return sqlval.MapVal(keyT, valT, keys, vals), nil
	case StructLit:
		fields := make([]sqlval.Field, len(lit.Names))
		vals := make([]sqlval.Value, len(lit.Vals))
		for i := range lit.Names {
			v, err := Eval(lit.Vals[i], mode)
			if err != nil {
				return sqlval.Value{}, err
			}
			vals[i] = v
			fields[i] = sqlval.Field{Name: lit.Names[i], Type: v.Type}
		}
		return sqlval.StructVal(sqlval.StructType(fields...), vals...), nil
	case CastExpr:
		inner, err := Eval(lit.Inner, mode)
		if err != nil {
			return sqlval.Value{}, err
		}
		return sqlval.Cast(inner, lit.To, mode)
	default:
		return sqlval.Value{}, fmt.Errorf("sql: unknown expression %T", e)
	}
}

func evalNumber(lit NumberLit) (sqlval.Value, error) {
	raw := lit.Raw
	if lit.Neg {
		raw = "-" + raw
	}
	if strings.ContainsAny(raw, "eE") {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return sqlval.Value{}, fmt.Errorf("sql: bad numeric literal %q", lit.Raw)
		}
		return sqlval.DoubleVal(f), nil
	}
	if strings.ContainsRune(raw, '.') {
		d, err := sqlval.ParseDecimal(raw)
		if err != nil {
			return sqlval.Value{}, fmt.Errorf("sql: bad numeric literal %q: %v", lit.Raw, err)
		}
		return sqlval.DecimalVal(d, d.Precision()), nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return sqlval.Value{}, fmt.Errorf("sql: integer literal %q out of range", lit.Raw)
	}
	if min, max := sqlval.IntegralRange(sqlval.KindInt); n >= min && n <= max {
		return sqlval.IntVal(sqlval.Int, n), nil
	}
	return sqlval.IntVal(sqlval.BigInt, n), nil
}

// unifyTypes picks the element type for a collection literal: the type
// of the first non-null item, widened to DOUBLE/BIGINT/STRING when the
// items disagree within a family.
func unifyTypes(items []sqlval.Value) sqlval.Type {
	t := sqlval.Null
	for _, v := range items {
		if v.Null && v.Type.Kind == sqlval.KindNull {
			continue
		}
		if t.Kind == sqlval.KindNull {
			t = v.Type
			continue
		}
		if t.Equal(v.Type) {
			continue
		}
		switch {
		case t.IsIntegral() && v.Type.IsIntegral():
			if v.Type.Kind > t.Kind {
				t = v.Type
			}
		case t.IsNumeric() && v.Type.IsNumeric():
			t = sqlval.Double
		case t.IsCharacter() && v.Type.IsCharacter():
			t = sqlval.String
		default:
			t = sqlval.String
		}
	}
	if t.Kind == sqlval.KindNull {
		t = sqlval.String
	}
	return t
}
