package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/sqlval"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (Id INT, Name STRING, amount DECIMAL(10,2)) STORED AS ORC`)
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Table != "t" || len(ct.Columns) != 3 || ct.Format != "orc" {
		t.Errorf("ct = %+v", ct)
	}
	if ct.Columns[0].Name != "Id" || !ct.Columns[2].Type.Equal(sqlval.DecimalType(10, 2)) {
		t.Errorf("columns = %+v", ct.Columns)
	}
}

func TestParseCreateTableNestedTypes(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (a ARRAY<INT>, m MAP<STRING, INT>, s STRUCT<x:INT, y:STRING>) USING PARQUET`)
	ct := stmt.(*CreateTable)
	if !ct.Columns[0].Type.Equal(sqlval.ArrayType(sqlval.Int)) {
		t.Errorf("array = %v", ct.Columns[0].Type)
	}
	if !ct.Columns[1].Type.Equal(sqlval.MapType(sqlval.String, sqlval.Int)) {
		t.Errorf("map = %v", ct.Columns[1].Type)
	}
	if ct.Columns[2].Type.Kind != sqlval.KindStruct || len(ct.Columns[2].Type.Fields) != 2 {
		t.Errorf("struct = %v", ct.Columns[2].Type)
	}
	if ct.Format != "parquet" {
		t.Errorf("format = %q", ct.Format)
	}
}

func TestParseCreateTableIfNotExistsAndProps(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE IF NOT EXISTS t (a INT) STORED AS AVRO TBLPROPERTIES ('k1'='v1', 'k2'='v2')`)
	ct := stmt.(*CreateTable)
	if !ct.IfNotExists || ct.Props["k1"] != "v1" || ct.Props["k2"] != "v2" {
		t.Errorf("ct = %+v", ct)
	}
}

func TestParseDropTable(t *testing.T) {
	stmt := mustParse(t, `DROP TABLE IF EXISTS t`)
	dt := stmt.(*DropTable)
	if dt.Table != "t" || !dt.IfExists {
		t.Errorf("dt = %+v", dt)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES (1, 'a', true, NULL), (-2, 'b', false, 3.14)`)
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 4 {
		t.Fatalf("ins = %+v", ins)
	}
	n := ins.Rows[1][0].(NumberLit)
	if !n.Neg || n.Raw != "2" {
		t.Errorf("neg literal = %+v", n)
	}
}

func TestParseInsertTypedLiterals(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES (DATE '2021-06-15', TIMESTAMP '2021-06-15 10:00:00', X'CAFE')`)
	ins := stmt.(*Insert)
	d := ins.Rows[0][0].(TypedLit)
	if d.Type.Kind != sqlval.KindDate || d.Raw != "2021-06-15" {
		t.Errorf("date lit = %+v", d)
	}
	b := ins.Rows[0][2].(BinaryLit)
	if len(b.Value) != 2 || b.Value[0] != 0xCA || b.Value[1] != 0xFE {
		t.Errorf("binary lit = %+v", b)
	}
}

func TestParseInsertCollections(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES (ARRAY(1, 2, 3), MAP('a', 1, 'b', 2), NAMED_STRUCT('x', 1, 'y', 'two'))`)
	ins := stmt.(*Insert)
	if len(ins.Rows[0][0].(ArrayLit).Items) != 3 {
		t.Error("array items")
	}
	m := ins.Rows[0][1].(MapLit)
	if len(m.Keys) != 2 || len(m.Vals) != 2 {
		t.Error("map pairs")
	}
	s := ins.Rows[0][2].(StructLit)
	if len(s.Names) != 2 || s.Names[1] != "y" {
		t.Errorf("struct = %+v", s)
	}
}

func TestParseSelect(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t`)
	sel := stmt.(*Select)
	if !sel.Items[0].Star || sel.Table != "t" || sel.Where != nil {
		t.Errorf("sel = %+v", sel)
	}
	stmt = mustParse(t, `SELECT a, B FROM t WHERE a >= 10`)
	sel = stmt.(*Select)
	if len(sel.Items) != 2 || sel.Items[1].Column != "B" {
		t.Errorf("items = %+v", sel.Items)
	}
	if sel.Where == nil || sel.Where.Op != ">=" || sel.Where.Column != "a" {
		t.Errorf("where = %+v", sel.Where)
	}
}

func TestParseCast(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES (CAST('5' AS INT))`)
	ins := stmt.(*Insert)
	c := ins.Rows[0][0].(CastExpr)
	if !c.To.Equal(sqlval.Int) {
		t.Errorf("cast = %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"CREATE t",
		"INSERT INTO t",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES (MAP('a'))",
		"CREATE TABLE t (a NOTATYPE)",
		"SELECT * FROM t extra garbage ~",
		"INSERT INTO t VALUES ('unterminated)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t -- trailing comment")
	if stmt.(*Select).Table != "t" {
		t.Error("comment handling broken")
	}
}

func TestEvalNumbers(t *testing.T) {
	v, err := Eval(NumberLit{Raw: "42"}, sqlval.CastANSI)
	if err != nil || v.Type.Kind != sqlval.KindInt || v.I != 42 {
		t.Errorf("int = %v, %v", v, err)
	}
	v, _ = Eval(NumberLit{Raw: "3000000000"}, sqlval.CastANSI)
	if v.Type.Kind != sqlval.KindBigInt {
		t.Errorf("big = %v", v)
	}
	v, _ = Eval(NumberLit{Raw: "1.25"}, sqlval.CastANSI)
	if v.Type.Kind != sqlval.KindDecimal || v.D.String() != "1.25" {
		t.Errorf("decimal = %v", v)
	}
	v, _ = Eval(NumberLit{Raw: "1e3"}, sqlval.CastANSI)
	if v.Type.Kind != sqlval.KindDouble || v.F != 1000 {
		t.Errorf("double = %v", v)
	}
	v, _ = Eval(NumberLit{Raw: "5", Neg: true}, sqlval.CastANSI)
	if v.I != -5 {
		t.Errorf("neg = %v", v)
	}
}

func TestEvalTypedLiterals(t *testing.T) {
	v, err := Eval(TypedLit{Type: sqlval.Date, Raw: "2021-06-15"}, sqlval.CastANSI)
	if err != nil || sqlval.FormatDate(v.I) != "2021-06-15" {
		t.Errorf("date = %v, %v", v, err)
	}
	if _, err := Eval(TypedLit{Type: sqlval.Date, Raw: "2021-02-30"}, sqlval.CastANSI); err == nil {
		t.Error("invalid typed date literal should error")
	}
}

func TestEvalCollections(t *testing.T) {
	e := ArrayLit{Items: []Expr{NumberLit{Raw: "1"}, NumberLit{Raw: "2"}}}
	v, err := Eval(e, sqlval.CastANSI)
	if err != nil || v.Type.Kind != sqlval.KindArray || len(v.List) != 2 {
		t.Fatalf("array = %v, %v", v, err)
	}
	m := MapLit{Keys: []Expr{StringLit{Value: "k"}}, Vals: []Expr{NumberLit{Raw: "1"}}}
	v, err = Eval(m, sqlval.CastANSI)
	if err != nil || v.Type.Kind != sqlval.KindMap || !v.Type.Key.Equal(sqlval.String) {
		t.Fatalf("map = %v, %v", v, err)
	}
	s := StructLit{Names: []string{"x"}, Vals: []Expr{BoolLit{Value: true}}}
	v, err = Eval(s, sqlval.CastANSI)
	if err != nil || v.Type.Kind != sqlval.KindStruct || !v.FieldVals[0].B {
		t.Fatalf("struct = %v, %v", v, err)
	}
}

func TestEvalMixedArrayUnifies(t *testing.T) {
	e := ArrayLit{Items: []Expr{NumberLit{Raw: "1"}, NumberLit{Raw: "2.5"}}}
	v, err := Eval(e, sqlval.CastLegacy)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type.Elem.Kind != sqlval.KindDouble {
		t.Errorf("unified elem = %v", v.Type.Elem)
	}
}

func TestEvalCast(t *testing.T) {
	c := CastExpr{Inner: StringLit{Value: "7"}, To: sqlval.BigInt}
	v, err := Eval(c, sqlval.CastANSI)
	if err != nil || v.I != 7 || v.Type.Kind != sqlval.KindBigInt {
		t.Errorf("cast = %v, %v", v, err)
	}
	bad := CastExpr{Inner: StringLit{Value: "x"}, To: sqlval.Int}
	if _, err := Eval(bad, sqlval.CastANSI); err == nil {
		t.Error("ANSI cast of 'x' should error")
	}
	v, err = Eval(bad, sqlval.CastHive)
	if err != nil || !v.Null {
		t.Errorf("hive cast = %v, %v", v, err)
	}
}

func TestStringEscapes(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES ('it''s', 'a\nb')`)
	ins := stmt.(*Insert)
	if ins.Rows[0][0].(StringLit).Value != "it's" {
		t.Errorf("escape = %+v", ins.Rows[0][0])
	}
	if !strings.Contains(ins.Rows[0][1].(StringLit).Value, "\n") {
		t.Errorf("backslash escape = %+v", ins.Rows[0][1])
	}
}

func TestParseOrderByLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10`)
	sel := stmt.(*Select)
	if sel.OrderBy == nil || sel.OrderBy.Column != "b" || !sel.OrderBy.Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
	stmt = mustParse(t, `SELECT * FROM t ORDER BY b ASC`)
	sel = stmt.(*Select)
	if sel.OrderBy.Desc || sel.Limit != -1 {
		t.Errorf("sel = %+v", sel)
	}
	for _, bad := range []string{
		`SELECT * FROM t ORDER b`,
		`SELECT * FROM t LIMIT -1`,
		`SELECT * FROM t LIMIT x`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParsePartitionedBy(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (a INT) PARTITIONED BY (day STRING, bucket INT) STORED AS ORC`)
	ct := stmt.(*CreateTable)
	if len(ct.PartitionedBy) != 2 || ct.PartitionedBy[0].Name != "day" ||
		!ct.PartitionedBy[1].Type.Equal(sqlval.Int) {
		t.Errorf("partitioned by = %+v", ct.PartitionedBy)
	}
	for _, bad := range []string{
		`CREATE TABLE t (a INT) PARTITIONED (day STRING)`,
		`CREATE TABLE t (a INT) PARTITIONED BY day STRING`,
		`CREATE TABLE t (a INT) PARTITIONED BY (day STRING`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseInsertOverwrite(t *testing.T) {
	stmt := mustParse(t, `INSERT OVERWRITE TABLE t VALUES (1)`)
	if !stmt.(*Insert).Overwrite {
		t.Error("overwrite flag not set")
	}
	stmt = mustParse(t, `INSERT INTO TABLE t VALUES (1)`)
	if stmt.(*Insert).Overwrite {
		t.Error("INTO should not be overwrite")
	}
}

func TestParseTrailingSemicolonAndBackquotes(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM `My Table`;")
	if stmt.(*Select).Table != "My Table" {
		t.Errorf("table = %q", stmt.(*Select).Table)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT * FROM `unterminated",
		"SELECT ~ FROM t",
		"SELECT ! FROM t",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
	// '!=' is valid.
	stmt := mustParse(t, "SELECT * FROM t WHERE a != 1")
	if stmt.(*Select).Where.Op != "!=" {
		t.Error("!= operator")
	}
}

func TestParseHexLiteralErrors(t *testing.T) {
	if _, err := Parse(`INSERT INTO t VALUES (X'GG')`); err == nil {
		t.Error("bad hex should fail")
	}
	stmt := mustParse(t, `INSERT INTO t VALUES (x'ff')`)
	b := stmt.(*Insert).Rows[0][0].(BinaryLit)
	if len(b.Value) != 1 || b.Value[0] != 0xFF {
		t.Errorf("lowercase hex = %v", b)
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT * FROM")
	pe, ok := err.(*ParseError)
	if !ok || pe.Pos == 0 {
		t.Errorf("err = %#v", err)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Errorf("render = %q", pe.Error())
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(NumberLit{Raw: "99999999999999999999"}, sqlval.CastANSI); err == nil {
		t.Error("out-of-range integer literal should fail")
	}
	if _, err := Eval(TypedLit{Type: sqlval.Timestamp, Raw: "junk"}, sqlval.CastANSI); err == nil {
		t.Error("bad timestamp literal should fail")
	}
	if _, err := Eval(TypedLit{Type: sqlval.Int, Raw: "1"}, sqlval.CastANSI); err == nil {
		t.Error("unsupported typed literal should fail")
	}
	// ANSI-mode collection with a failing element cast.
	bad := ArrayLit{Items: []Expr{StringLit{Value: "a"}, NumberLit{Raw: "1"}}}
	if v, err := Eval(bad, sqlval.CastANSI); err == nil {
		// unify picks STRING; 1 casts to "1" fine — ensure it did.
		if v.Type.Elem.Kind != sqlval.KindString {
			t.Errorf("unified = %v", v.Type)
		}
	}
}
