package sqlparse

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlval"
)

// Parse parses a single SQL statement (an optional trailing ';' is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input %q", p.cur().raw)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, p.errorf("expected %s, found %q", want, t.raw)
	}
	p.pos++
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().pos, Detail: fmt.Sprintf(format, args...)}
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(tokIdent, "CREATE"):
		return p.createTable()
	case p.accept(tokIdent, "DROP"):
		return p.dropTable()
	case p.accept(tokIdent, "INSERT"):
		return p.insert()
	case p.accept(tokIdent, "SELECT"):
		return p.selectStmt()
	default:
		return nil, p.errorf("expected CREATE, DROP, INSERT or SELECT, found %q", p.cur().raw)
	}
}

func (p *parser) createTable() (Statement, error) {
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTable{Props: map[string]string{}}
	if p.accept(tokIdent, "IF") {
		if _, err := p.expect(tokIdent, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Table = name.raw
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, ColumnDef{Name: col.raw, Type: typ})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokIdent, "PARTITIONED") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			stmt.PartitionedBy = append(stmt.PartitionedBy, ColumnDef{Name: col.raw, Type: typ})
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokIdent, "STORED") {
		if _, err := p.expect(tokIdent, "AS"); err != nil {
			return nil, err
		}
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.Format = strings.ToLower(f.text)
	}
	if p.accept(tokIdent, "USING") {
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.Format = strings.ToLower(f.text)
	}
	if p.accept(tokIdent, "TBLPROPERTIES") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		for {
			k, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			v, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			stmt.Props[k.text] = v.text
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// parseType consumes a type spelling, gathering the tokens that belong
// to it (parameters, angle brackets) and delegating to sqlval.ParseType.
func (p *parser) parseType() (sqlval.Type, error) {
	start := p.pos
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return sqlval.Null, err
	}
	var b strings.Builder
	b.WriteString(name.text)
	switch name.text {
	case "DECIMAL", "NUMERIC", "CHAR", "VARCHAR":
		if p.accept(tokPunct, "(") {
			b.WriteByte('(')
			for !p.at(tokPunct, ")") {
				if p.at(tokEOF, "") {
					return sqlval.Null, p.errorf("unterminated type parameters")
				}
				b.WriteString(p.cur().text)
				p.pos++
			}
			p.pos++
			b.WriteByte(')')
		}
	case "ARRAY", "MAP", "STRUCT":
		if _, err := p.expect(tokPunct, "<"); err != nil {
			return sqlval.Null, err
		}
		b.WriteByte('<')
		depth := 1
		for depth > 0 {
			t := p.cur()
			if t.kind == tokEOF {
				return sqlval.Null, p.errorf("unterminated nested type")
			}
			switch {
			case t.kind == tokPunct && t.text == "<":
				depth++
				b.WriteByte('<')
			case t.kind == tokPunct && t.text == ">":
				depth--
				b.WriteByte('>')
			case t.kind == tokPunct && t.text == ">=":
				// ">=" cannot appear in a well-formed type spelling.
				return sqlval.Null, p.errorf("malformed nested type")
			case t.kind == tokIdent:
				// Preserve the original case: struct field names are
				// case-significant to engines that preserve case, and
				// sqlval.ParseType accepts type keywords in any case.
				b.WriteString(t.raw)
			default:
				b.WriteString(t.text)
			}
			p.pos++
		}
	}
	typ, err := sqlval.ParseType(b.String())
	if err != nil {
		p.pos = start
		return sqlval.Null, p.errorf("bad type: %v", err)
	}
	return typ, nil
}

func (p *parser) dropTable() (Statement, error) {
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTable{}
	if p.accept(tokIdent, "IF") {
		if _, err := p.expect(tokIdent, "EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Table = name.raw
	return stmt, nil
}

func (p *parser) insert() (Statement, error) {
	// Accept both INSERT INTO and Hive's INSERT [OVERWRITE] TABLE.
	overwrite := false
	if !p.accept(tokIdent, "INTO") {
		if _, err := p.expect(tokIdent, "OVERWRITE"); err != nil {
			return nil, p.errorf("expected INTO or OVERWRITE")
		}
		overwrite = true
	}
	p.accept(tokIdent, "TABLE")
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &Insert{Table: name.raw, Overwrite: overwrite}
	if _, err := p.expect(tokIdent, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.exprLit()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) selectStmt() (Statement, error) {
	stmt := &Select{Limit: -1}
	for {
		if p.accept(tokPunct, "*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			switch col.text {
			case "COUNT", "SUM", "MIN", "MAX", "AVG":
				if p.accept(tokPunct, "(") {
					item := SelectItem{Agg: strings.ToLower(col.text)}
					if p.accept(tokPunct, "*") {
						if item.Agg != "count" {
							return nil, p.errorf("%s(*) is not supported", col.text)
						}
						item.Star = true
					} else {
						inner, err := p.expect(tokIdent, "")
						if err != nil {
							return nil, err
						}
						item.Column = inner.raw
					}
					if _, err := p.expect(tokPunct, ")"); err != nil {
						return nil, err
					}
					stmt.Items = append(stmt.Items, item)
					break
				}
				stmt.Items = append(stmt.Items, SelectItem{Column: col.raw})
			default:
				stmt.Items = append(stmt.Items, SelectItem{Column: col.raw})
			}
		}
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Table = name.raw
	if p.accept(tokIdent, "WHERE") {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		op := p.cur()
		switch op.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.pos++
		default:
			return nil, p.errorf("expected comparison operator, found %q", op.raw)
		}
		val, err := p.exprLit()
		if err != nil {
			return nil, err
		}
		opText := op.text
		if opText == "<>" {
			opText = "!="
		}
		stmt.Where = &Where{Column: col.raw, Op: opText, Value: val}
	}
	if p.accept(tokIdent, "GROUP") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = col.raw
	}
	if p.accept(tokIdent, "ORDER") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Column: col.raw}
		if p.accept(tokIdent, "DESC") {
			ob.Desc = true
		} else {
			p.accept(tokIdent, "ASC")
		}
		stmt.OrderBy = ob
	}
	if p.accept(tokIdent, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, p.errorf("bad LIMIT %q", n.text)
		}
		stmt.Limit = limit
	}
	return stmt, nil
}

// exprLit parses a literal expression.
func (p *parser) exprLit() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokPunct && t.text == "-":
		p.pos++
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		return NumberLit{Raw: n.text, Neg: true}, nil
	case t.kind == tokPunct && t.text == "+":
		p.pos++
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		return NumberLit{Raw: n.text}, nil
	case t.kind == tokNumber:
		p.pos++
		return NumberLit{Raw: t.text}, nil
	case t.kind == tokString && t.raw == "X":
		p.pos++
		b, err := hex.DecodeString(t.text)
		if err != nil {
			return nil, p.errorf("bad hex literal: %v", err)
		}
		return BinaryLit{Value: b}, nil
	case t.kind == tokString:
		p.pos++
		return StringLit{Value: t.text}, nil
	case t.kind == tokIdent:
		switch t.text {
		case "NULL":
			p.pos++
			return NullLit{}, nil
		case "TRUE":
			p.pos++
			return BoolLit{Value: true}, nil
		case "FALSE":
			p.pos++
			return BoolLit{Value: false}, nil
		case "DATE", "TIMESTAMP":
			p.pos++
			s, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			typ := sqlval.Date
			if t.text == "TIMESTAMP" {
				typ = sqlval.Timestamp
			}
			return TypedLit{Type: typ, Raw: s.text}, nil
		case "ARRAY":
			p.pos++
			items, err := p.argList()
			if err != nil {
				return nil, err
			}
			return ArrayLit{Items: items}, nil
		case "MAP":
			p.pos++
			items, err := p.argList()
			if err != nil {
				return nil, err
			}
			if len(items)%2 != 0 {
				return nil, p.errorf("MAP requires an even number of arguments")
			}
			m := MapLit{}
			for i := 0; i < len(items); i += 2 {
				m.Keys = append(m.Keys, items[i])
				m.Vals = append(m.Vals, items[i+1])
			}
			return m, nil
		case "NAMED_STRUCT":
			p.pos++
			items, err := p.argList()
			if err != nil {
				return nil, err
			}
			if len(items)%2 != 0 {
				return nil, p.errorf("NAMED_STRUCT requires an even number of arguments")
			}
			s := StructLit{}
			for i := 0; i < len(items); i += 2 {
				name, ok := items[i].(StringLit)
				if !ok {
					return nil, p.errorf("NAMED_STRUCT field names must be string literals")
				}
				s.Names = append(s.Names, name.Value)
				s.Vals = append(s.Vals, items[i+1])
			}
			return s, nil
		case "CAST":
			p.pos++
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			inner, err := p.exprLit()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "AS"); err != nil {
				return nil, err
			}
			to, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return CastExpr{Inner: inner, To: to}, nil
		}
		return nil, p.errorf("unexpected identifier %q in expression", t.raw)
	default:
		return nil, p.errorf("unexpected token %q in expression", t.raw)
	}
}

func (p *parser) argList() ([]Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var items []Expr
	if p.accept(tokPunct, ")") {
		return items, nil
	}
	for {
		e, err := p.exprLit()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return items, nil
}
