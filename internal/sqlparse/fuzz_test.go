package sqlparse

import "testing"

// FuzzParse asserts the parser's total safety: any input yields a
// statement or an error, never a panic. (Run `go test -fuzz=FuzzParse`
// for an extended exploration; the seed corpus runs in normal tests.)
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"CREATE TABLE t (a INT, b ARRAY<MAP<STRING,INT>>) PARTITIONED BY (p STRING) STORED AS ORC",
		"INSERT INTO t VALUES (1, 'x', NULL, ARRAY(1,2), NAMED_STRUCT('a', 1))",
		"INSERT OVERWRITE TABLE t VALUES (X'CAFE', DATE '2021-01-01')",
		"SELECT a, b FROM t WHERE a >= 10 ORDER BY b DESC LIMIT 5;",
		"DROP TABLE IF EXISTS `weird name`",
		"SELECT",
		"((((",
		"'unterminated",
		"CREATE TABLE t (a DECIMAL(38,38))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatal("nil statement without error")
		}
	})
}
