package sqlparse

import "repro/internal/sqlval"

// Statement is a parsed SQL statement: one of *CreateTable, *DropTable,
// *Insert, or *Select.
type Statement interface{ stmt() }

// ColumnDef is a column declaration in CREATE TABLE.
type ColumnDef struct {
	Name string // original spelling; engines apply their own case rules
	Type sqlval.Type
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] t (cols)
// [PARTITIONED BY (cols)] [STORED AS fmt] [TBLPROPERTIES (...)].
type CreateTable struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
	// PartitionedBy are the partition columns; their values select the
	// directory a row lands in.
	PartitionedBy []ColumnDef
	Format        string // "orc", "parquet", "avro"; empty means engine default
	Props         map[string]string
}

func (*CreateTable) stmt() {}

// DropTable is DROP TABLE [IF EXISTS] t.
type DropTable struct {
	Table    string
	IfExists bool
}

func (*DropTable) stmt() {}

// Insert is INSERT INTO t VALUES (...), (...) or INSERT OVERWRITE
// TABLE t VALUES (...), which replaces the table contents.
type Insert struct {
	Table     string
	Overwrite bool
	Rows      [][]Expr
}

func (*Insert) stmt() {}

// SelectItem is a projected column; Star selects all columns. Agg, when
// non-empty, names an aggregate function ("count", "sum", "min", "max",
// "avg") applied to the column (or to * for count).
type SelectItem struct {
	Star   bool
	Column string
	Agg    string
}

// Where is a simple comparison predicate column OP literal.
type Where struct {
	Column string
	Op     string // =, !=, <, <=, >, >=
	Value  Expr
}

// OrderBy is ORDER BY column [ASC|DESC].
type OrderBy struct {
	Column string
	Desc   bool
}

// Select is SELECT items FROM t [WHERE pred] [GROUP BY col]
// [ORDER BY col] [LIMIT n]. Limit is -1 when absent.
type Select struct {
	Items   []SelectItem
	Table   string
	Where   *Where
	GroupBy string // single grouping column; empty when absent
	OrderBy *OrderBy
	Limit   int
}

func (*Select) stmt() {}

// Expr is a literal expression. Engines convert it to a typed value
// with their own coercion rules via Eval.
type Expr interface{ expr() }

// NullLit is the NULL literal.
type NullLit struct{}

func (NullLit) expr() {}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

func (BoolLit) expr() {}

// NumberLit is an unparsed numeric literal; Neg records a unary minus.
type NumberLit struct {
	Raw string
	Neg bool
}

func (NumberLit) expr() {}

// StringLit is a quoted string.
type StringLit struct{ Value string }

func (StringLit) expr() {}

// BinaryLit is an X'...' hex literal.
type BinaryLit struct{ Value []byte }

func (BinaryLit) expr() {}

// TypedLit is DATE '...' or TIMESTAMP '...'.
type TypedLit struct {
	Type sqlval.Type
	Raw  string
}

func (TypedLit) expr() {}

// ArrayLit is ARRAY(e1, e2, ...).
type ArrayLit struct{ Items []Expr }

func (ArrayLit) expr() {}

// MapLit is MAP(k1, v1, k2, v2, ...).
type MapLit struct {
	Keys []Expr
	Vals []Expr
}

func (MapLit) expr() {}

// StructLit is NAMED_STRUCT('name1', e1, 'name2', e2, ...).
type StructLit struct {
	Names []string
	Vals  []Expr
}

func (StructLit) expr() {}

// CastExpr is CAST(e AS type).
type CastExpr struct {
	Inner Expr
	To    sqlval.Type
}

func (CastExpr) expr() {}
