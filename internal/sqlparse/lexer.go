// Package sqlparse implements the SQL subset shared by the simulated
// HiveQL and SparkSQL front ends: CREATE/DROP TABLE, INSERT ... VALUES,
// and single-table SELECT with optional WHERE. Literals cover every
// type exercised by the cross-testing corpus, including typed DATE /
// TIMESTAMP literals, hex BINARY literals, and the ARRAY / MAP /
// NAMED_STRUCT constructors.
package sqlparse

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokenKind
	text string // identifiers are upper-cased; strings are unquoted
	raw  string // original spelling
	pos  int
}

// ParseError reports a syntax error with its byte offset.
type ParseError struct {
	Pos    int
	Detail string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at offset %d: %s", e.Pos, e.Detail)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			raw := l.src[start:l.pos]
			// X'...' hex binary literal.
			if (raw == "X" || raw == "x") && l.pos < len(l.src) && l.src[l.pos] == '\'' {
				s, err := l.stringLit()
				if err != nil {
					return nil, err
				}
				l.toks = append(l.toks, token{kind: tokString, text: s, raw: "X'" + s + "'", pos: start})
				// Mark hex literals by a preceding punct-like sentinel.
				l.toks[len(l.toks)-1].raw = "X" // see parser.hexLiteral
				continue
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start})
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case c == '\'':
			s, err := l.stringLit()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, raw: "'" + s + "'", pos: start})
		case c == '`':
			// Backquoted identifier: preserves case and special chars.
			l.pos++
			end := strings.IndexByte(l.src[l.pos:], '`')
			if end < 0 {
				return nil, &ParseError{Pos: start, Detail: "unterminated quoted identifier"}
			}
			raw := l.src[l.pos : l.pos+end]
			l.pos += end + 1
			l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start})
		case strings.IndexByte("(),=<>*.-+;:", c) >= 0:
			// Two-char operators.
			if l.pos+1 < len(l.src) {
				two := l.src[l.pos : l.pos+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					l.pos += 2
					l.toks = append(l.toks, token{kind: tokPunct, text: two, raw: two, pos: start})
					continue
				}
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), raw: string(c), pos: start})
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokPunct, text: "!=", raw: "!=", pos: start})
				continue
			}
			return nil, &ParseError{Pos: start, Detail: "unexpected '!'"}
		default:
			return nil, &ParseError{Pos: start, Detail: fmt.Sprintf("unexpected character %q", string(c))}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' {
			l.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			// Exponent with optional sign.
			next := l.pos + 1
			if next < len(l.src) && (l.src[next] == '+' || l.src[next] == '-') {
				next++
			}
			if next < len(l.src) && l.src[next] >= '0' && l.src[next] <= '9' {
				l.pos = next
				continue
			}
		}
		break
	}
	raw := l.src[start:l.pos]
	l.toks = append(l.toks, token{kind: tokNumber, text: raw, raw: raw, pos: start})
}

func (l *lexer) stringLit() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", &ParseError{Pos: start, Detail: "unterminated string literal"}
}

func isIdentStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
