package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/csi"
	"repro/internal/inject"
	"repro/internal/sqlval"
)

func corpus(t *testing.T) []Input {
	t.Helper()
	inputs, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	return inputs
}

// subset filters the corpus by name prefixes, keeping ablation runs
// fast while exercising the relevant code paths.
func subset(t *testing.T, prefixes ...string) []Input {
	t.Helper()
	var out []Input
	for _, in := range corpus(t) {
		for _, p := range prefixes {
			if strings.HasPrefix(in.Name, p) {
				out = append(out, in)
				break
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("empty subset")
	}
	return out
}

func TestCorpusMatchesPaperCounts(t *testing.T) {
	inputs := corpus(t)
	if len(inputs) != CorpusSize {
		t.Errorf("corpus size = %d, want %d", len(inputs), CorpusSize)
	}
	valid, invalid := 0, 0
	for _, in := range inputs {
		if in.Valid {
			valid++
		} else {
			invalid++
		}
	}
	if valid != CorpusValid || invalid != CorpusInvalid {
		t.Errorf("valid/invalid = %d/%d, want %d/%d", valid, invalid, CorpusValid, CorpusInvalid)
	}
}

func TestCorpusCoversAllKinds(t *testing.T) {
	seen := map[sqlval.Kind]bool{}
	for _, in := range corpus(t) {
		seen[in.Type.Kind] = true
	}
	for _, k := range []sqlval.Kind{
		sqlval.KindBoolean, sqlval.KindTinyInt, sqlval.KindSmallInt, sqlval.KindInt,
		sqlval.KindBigInt, sqlval.KindFloat, sqlval.KindDouble, sqlval.KindDecimal,
		sqlval.KindString, sqlval.KindChar, sqlval.KindVarchar, sqlval.KindBinary,
		sqlval.KindDate, sqlval.KindTimestamp, sqlval.KindArray, sqlval.KindMap,
		sqlval.KindStruct,
	} {
		if !seen[k] {
			t.Errorf("no corpus input of kind %v", k)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := corpus(t)
	b := corpus(t)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Literal != b[i].Literal {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestPlansMatchFigure6(t *testing.T) {
	plans := Plans()
	if len(plans) != 8 {
		t.Fatalf("plans = %d, want 8", len(plans))
	}
	families := map[string]int{}
	for _, p := range plans {
		families[p.Family]++
	}
	if families["ss"] != 4 || families["sh"] != 2 || families["hs"] != 2 {
		t.Errorf("families = %v", families)
	}
	if len(Formats()) != 3 {
		t.Errorf("formats = %v", Formats())
	}
	if Plans()[0].Name() != "w_sql_r_sql" || Plans()[5].Name() != "w_df_r_hive" {
		t.Errorf("plan names = %s, %s", Plans()[0].Name(), Plans()[5].Name())
	}
}

// TestFullRunFindsFifteenDiscrepancies is the headline §8.2 result: the
// simple cross-testing of Figure 6 exposes 15 distinct discrepancies on
// the Spark-Hive data plane, with the paper's category tallies.
func TestFullRunFindsFifteenDiscrepancies(t *testing.T) {
	res, err := Run(corpus(t), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.DistinctKnown(); len(got) != 15 {
		t.Errorf("distinct known = %v, want all 15", got)
	}
	if unknown := res.Report.UnknownSignatures(); len(unknown) != 0 {
		t.Errorf("unknown signatures = %v", unknown)
	}
	counts := res.Report.CategoryCounts()
	for cat, want := range inject.PaperCategoryCounts {
		if counts[cat] != want {
			t.Errorf("category %s = %d, want %d", cat, counts[cat], want)
		}
	}
	// All three oracles fired.
	for _, o := range []csi.Oracle{csi.OracleWriteRead, csi.OracleErrorHandling, csi.OracleDifferential} {
		if res.Report.ByOracle[o] == 0 {
			t.Errorf("oracle %v produced no failures", o)
		}
	}
	// The rendered report names every JIRA id.
	text := res.Report.Render()
	for _, id := range []string{"SPARK-39075", "SPARK-39158", "HIVE-26533", "HIVE-26531", "SPARK-40439",
		"HIVE-26528", "SPARK-40616", "SPARK-40525", "SPARK-40624", "SPARK-40629", "SPARK-40637", "SPARK-40630"} {
		if !strings.Contains(text, id) {
			t.Errorf("report missing %s", id)
		}
	}
}

// TestFixConfigsResolveDiscrepancies verifies the "relying on custom
// (non-default) configurations" finding: re-running under a
// discrepancy's fix configuration makes that discrepancy disappear.
func TestFixConfigsResolveDiscrepancies(t *testing.T) {
	cases := []struct {
		number   int
		prefixes []string
	}{
		{2, []string{"decimal_simple", "decimal_neg"}},
		{5, []string{"decimal_excess", "decimal_too_wide"}},
		{6, []string{"ts_noon", "ts_micros"}},
		{7, []string{"date_pregregorian"}},
		{8, []string{"char_short"}},
		{10, []string{"int_over", "int_under"}},
		{11, []string{"tinyint_over", "tinyint_under", "smallint_over"}},
	}
	reg := map[int]inject.Discrepancy{}
	for _, d := range inject.Registry() {
		reg[d.Number] = d
	}
	for _, c := range cases {
		d := reg[c.number]
		if len(d.FixConf) == 0 {
			t.Fatalf("#%d has no fix config", c.number)
		}
		inputs := subset(t, c.prefixes...)

		base, err := Run(inputs, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !containsInt(base.Report.DistinctKnown(), c.number) {
			t.Errorf("#%d not found under default config (found %v)", c.number, base.Report.DistinctKnown())
			continue
		}
		fixed, err := Run(inputs, RunOptions{SparkConf: d.FixConf})
		if err != nil {
			t.Fatal(err)
		}
		// The fix configuration unifies behaviour across interfaces: the
		// write-read and differential oracles must go quiet for this
		// discrepancy. Error-handling failures can legitimately remain —
		// a legacy policy silences errors rather than adding feedback —
		// and the Avro metastore widening (#3) keeps a residual
		// interaction on that format, so the check covers ORC/Parquet.
		sigs := map[string]bool{}
		for _, s := range d.Signatures {
			sigs[s] = true
		}
		for _, f := range fixed.Failures {
			if !sigs[f.Signature] || f.Oracle == csi.OracleErrorHandling || f.Case.Format == "avro" ||
				(f.Peer != nil && f.Peer.Format == "avro") {
				continue
			}
			t.Errorf("#%d still fails under fix config %v: %s oracle=%v", c.number, d.FixConf, f.Detail, f.Oracle)
		}
	}
}

func containsInt(s []int, n int) bool {
	for _, v := range s {
		if v == n {
			return true
		}
	}
	return false
}

func TestWriteReadOracleOnCleanSubset(t *testing.T) {
	// Plain strings and ints round-trip everywhere: no failures at all.
	inputs := subset(t, "string_simple", "int_small", "bool_true")
	res, err := Run(inputs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Errorf("clean subset failures: %v", res.Failures[0].Detail)
	}
}

func TestErrorHandlingOracleFlagsSilentStores(t *testing.T) {
	inputs := subset(t, "bool_invalid_yes")
	res, err := Run(inputs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eh := 0
	for _, f := range res.Failures {
		if f.Oracle == csi.OracleErrorHandling {
			eh++
			if f.Signature != "insert-boolean-invalid" {
				t.Errorf("signature = %s", f.Signature)
			}
			// The silent paths are DataFrame writes and Hive writes;
			// SparkSQL rejects with feedback.
			if f.Case.Plan.Write == SparkSQL {
				t.Errorf("SparkSQL write should not fail EH: %s", f.Case.Describe())
			}
		}
	}
	if eh == 0 {
		t.Error("no EH failures for invalid boolean")
	}
}

func TestDifferentialOracleCrossFormat(t *testing.T) {
	// D4: non-string map keys fail only on Avro.
	inputs := subset(t, "map_int_string")
	res, err := Run(inputs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := res.Report.DistinctKnown()
	if !containsInt(found, 4) {
		t.Errorf("D4 not found: %v", found)
	}
}

func TestFamilyFilter(t *testing.T) {
	inputs := subset(t, "ts_noon")
	res, err := Run(inputs, RunOptions{Families: []string{"ss"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cases {
		if c.Plan.Family != "ss" {
			t.Errorf("unexpected family %s", c.Plan.Family)
		}
	}
	// The timestamp-zone discrepancy needs the sh family; ss alone is
	// clean for timestamps.
	if containsInt(res.Report.DistinctKnown(), 6) {
		t.Error("D6 should not appear in ss-only run")
	}
}

func TestDeploymentWriteUnknownInterface(t *testing.T) {
	d := NewDeployment()
	in := corpus(t)[0]
	if out := d.Write(Iface("bogus"), "t", "orc", in); out.Err == nil {
		t.Error("unknown interface should error")
	}
	if out := d.Read(Iface("bogus"), "t"); out.Err == nil {
		t.Error("unknown interface should error")
	}
}

func TestClassifyTargetFamilies(t *testing.T) {
	cases := map[string]sqlval.Type{
		"insert-decimal-range":    sqlval.DecimalType(5, 2),
		"insert-smallint-range":   sqlval.TinyInt,
		"insert-int-range":        sqlval.BigInt,
		"insert-float-invalid":    sqlval.Float,
		"insert-datetime-invalid": sqlval.Date,
		"insert-boolean-invalid":  sqlval.Boolean,
		"insert-charlength":       sqlval.VarcharType(4),
	}
	for want, typ := range cases {
		if got := classifyTargetFamily(typ); got != want {
			t.Errorf("classifyTargetFamily(%v) = %s, want %s", typ, got, want)
		}
	}
}

func TestRegistrySignaturesAreComplete(t *testing.T) {
	// Every registry entry has at least one signature and the category
	// tallies equal the paper's.
	sigs := inject.BySignature()
	if len(sigs) == 0 {
		t.Fatal("empty signature index")
	}
	counts := inject.CategoryCounts(inject.Numbers())
	for cat, want := range inject.PaperCategoryCounts {
		if counts[cat] != want {
			t.Errorf("registry category %s = %d, want %d", cat, counts[cat], want)
		}
	}
	if len(inject.Registry()) != 15 {
		t.Errorf("registry size = %d", len(inject.Registry()))
	}
}

func TestWideTableBuild(t *testing.T) {
	cols := BuildWideTable(corpus(t))
	if len(cols) < 15 {
		t.Fatalf("wide columns = %d, want one per distinct type", len(cols))
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			t.Errorf("duplicate column name %s", c.Name)
		}
		seen[c.Name] = true
		if !c.Input.Valid {
			t.Errorf("invalid input %s in wide table", c.Input.Name)
		}
	}
}

func TestRunWideFindsCrossColumnDiscrepancies(t *testing.T) {
	res, err := RunWide(corpus(t), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("wide run found nothing")
	}
	if unknown := res.Report.UnknownSignatures(); len(unknown) != 0 {
		t.Errorf("unknown signatures = %v", unknown)
	}
	found := res.Report.DistinctKnown()
	// The wide table must surface at least the Avro map-key rejection
	// (#4, which fails the whole Avro table), the legacy-decimal column
	// poisoning Hive reads (#2), and the timestamp/char column
	// discrepancies (#6, #8). #7 needs a pre-Gregorian date, which the
	// one-column-per-type selection does not include (it picks the
	// modern date).
	for _, want := range []int{2, 4, 6, 8} {
		if !containsInt(found, want) {
			t.Errorf("wide run missed #%d: %v", want, found)
		}
	}
}

func TestRunWideWithoutMapColumn(t *testing.T) {
	// Excluding the Avro-poisoning map<int,_> column lets the per-column
	// discrepancies surface on Avro too.
	var filtered []Input
	for _, in := range corpus(t) {
		if in.Name == "map_int_string" {
			continue
		}
		filtered = append(filtered, in)
	}
	res, err := RunWide(filtered, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := res.Report.DistinctKnown()
	for _, want := range []int{1, 3} {
		if !containsInt(found, want) {
			t.Errorf("wide run missed #%d: %v", want, found)
		}
	}
	if unknown := res.Report.UnknownSignatures(); len(unknown) != 0 {
		t.Errorf("unknown signatures = %v", unknown)
	}
}

func TestParallelRunMatchesSequential(t *testing.T) {
	inputs, err := BuildBaseCorpus()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(inputs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(inputs, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Report.DistinctKnown(), par.Report.DistinctKnown()
	if len(a) != len(b) {
		t.Fatalf("distinct: seq=%v par=%v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("distinct: seq=%v par=%v", a, b)
		}
	}
	if len(seq.Failures) != len(par.Failures) {
		t.Errorf("failures: seq=%d par=%d", len(seq.Failures), len(par.Failures))
	}
}

func TestConfigSweep(t *testing.T) {
	inputs, err := BuildBaseCorpus()
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]map[string]string{
		"default":     nil,
		"utc-session": {"spark.sql.session.timeZone": "UTC"},
	}
	cells, err := ConfigSweep(inputs, []string{"default", "utc-session"}, configs, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if len(cells[0].Distinct) != 15 {
		t.Errorf("baseline distinct = %v", cells[0].Distinct)
	}
	// UTC resolves the timestamp-zone discrepancy (#6) and introduces
	// nothing.
	if !containsInt(cells[1].Resolved, 6) {
		t.Errorf("utc-session resolved = %v, want #6", cells[1].Resolved)
	}
	if len(cells[1].Introduced) != 0 {
		t.Errorf("utc-session introduced = %v", cells[1].Introduced)
	}
	text := RenderSweep(cells)
	if !strings.Contains(text, "utc-session") || !strings.Contains(text, "#6") {
		t.Errorf("render = %q", text)
	}
	if _, err := ConfigSweep(inputs, []string{"nope"}, configs, RunOptions{Parallel: 1}); err == nil {
		t.Error("unknown config should error")
	}
}

func TestRunPartitionsSurfacesCandidateDiscrepancy(t *testing.T) {
	res, err := RunPartitions("orc", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("partition mode found nothing")
	}
	// The escaping divergence is NOT one of the known 15: it must
	// surface as an unmapped signature — a candidate new discrepancy.
	unknown := res.Report.UnknownSignatures()
	foundCandidate := false
	for _, sig := range unknown {
		if sig == "partition-path-escaping" {
			foundCandidate = true
		}
	}
	if !foundCandidate {
		t.Errorf("unknown signatures = %v, want partition-path-escaping", unknown)
	}
	// Plain values round-trip everywhere: no failures mention them.
	for _, f := range res.Failures {
		if f.Case.Input.Name == "partition_plain" {
			t.Errorf("plain partition value failed: %s", f.Detail)
		}
	}
	// The space value is the canonical divergence.
	seenSpace := false
	for _, f := range res.Failures {
		if f.Case.Input.Name == "partition_space" {
			seenSpace = true
		}
	}
	if !seenSpace {
		t.Error("space partition value did not diverge")
	}
}

func TestOracleLogs(t *testing.T) {
	inputs := subset(t, "char_short", "bool_invalid_yes", "ts_noon")
	res, err := Run(inputs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	logs := res.OracleLogs()
	if len(logs) == 0 {
		t.Fatal("no logs")
	}
	valid := map[string]bool{}
	for _, name := range oracleNames() {
		valid[name] = true
	}
	for key, entries := range logs {
		if !valid[key] {
			t.Errorf("unexpected log key %q", key)
		}
		for i := 1; i < len(entries); i++ {
			if entries[i].Index < entries[i-1].Index {
				t.Errorf("%s not sorted by input index", key)
			}
		}
	}
	// The difft entries carry the differing peer.
	difft, ok := logs["sh_difft"]
	if !ok || difft[0].Peer == "" {
		t.Errorf("sh_difft = %v", difft)
	}

	dir := t.TempDir()
	names, err := res.WriteOracleLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every producible group gets a file — empty groups as empty arrays.
	if len(names) < len(oracleNames()) {
		t.Errorf("wrote %d files, want at least the %d standard groups", len(names), len(oracleNames()))
	}
	for _, name := range oracleNames() {
		if !containsString(names, name+"_failed.json") {
			t.Errorf("missing log file for group %s", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	var parsed []LogEntry
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("log not valid JSON: %v", err)
	}

	// Round trip: reading the directory back reproduces OracleLogs for
	// the non-empty groups and empty slices for the rest.
	back, err := ReadOracleLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(names) {
		t.Errorf("read %d groups back, wrote %d files", len(back), len(names))
	}
	for key, entries := range logs {
		got, ok := back[key]
		if !ok {
			t.Errorf("group %s missing after round trip", key)
			continue
		}
		if !reflect.DeepEqual(got, entries) {
			t.Errorf("group %s changed in round trip:\n got %v\nwant %v", key, got, entries)
		}
	}
	for key, entries := range back {
		if len(entries) > 0 && len(logs[key]) == 0 {
			t.Errorf("round trip invented entries for %s", key)
		}
	}
}

func TestWriteOracleLogsDirIsFile(t *testing.T) {
	inputs := subset(t, "ts_noon")
	res, err := Run(inputs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "logs")
	if err := os.WriteFile(path, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := res.WriteOracleLogs(path); !errors.Is(err, ErrLogDirIsFile) {
		t.Errorf("WriteOracleLogs on a file = %v, want ErrLogDirIsFile", err)
	}
}
