package core

import (
	"reflect"
	"testing"

	"repro/internal/inject"
	"repro/internal/versions"
)

// TestGoldenSkewMatrix pins the cross-version discrepancy matrix over
// the default writer×reader pairs: per cell, the standard-registry
// discrepancies, the skew-only signatures, and the confirmed skew
// registry entries. The baseline cell must stay exactly the Figure-6
// pin with zero skew findings — the version axis may never perturb the
// unskewed run.
func TestGoldenSkewMatrix(t *testing.T) {
	all15 := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	want := []SkewCell{
		{
			Pair:  mustPair(t, "3.2.1/3.1.2->3.2.1/3.1.2"),
			Known: all15,
			// No skew findings on the unskewed pair: the writer-stack and
			// reader-stack probes see identical outcomes.
			Failures: 5833,
		},
		{
			Pair:    mustPair(t, "2.3.0/2.3.9->3.2.1/3.1.2"),
			Known:   []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
			SkewIDs: []string{"S1", "S2", "S3", "S5", "S6", "S7", "S8", "S9"},
			SkewSignatures: []string{
				"avro-unavailable", "skew-ansi-cast", "skew-avro-unavailable",
				"skew-char-length", "skew-char-type", "skew-date-rebase",
				"skew-store-assignment", "skew-struct-null", "skew-timestamp-zone",
				"skew-value-mismatch-string",
			},
			Failures: 12956, SkewFailures: 4940,
		},
		{
			Pair:    mustPair(t, "2.4.8/2.3.9->3.2.1/3.1.2"),
			Known:   all15,
			SkewIDs: []string{"S2", "S3", "S5", "S6", "S7", "S8", "S9"},
			SkewSignatures: []string{
				"skew-ansi-cast", "skew-char-length", "skew-char-type",
				"skew-date-rebase", "skew-store-assignment", "skew-struct-null",
				"skew-timestamp-zone", "skew-value-mismatch-string",
			},
			Failures: 8381, SkewFailures: 2148,
		},
		{
			Pair:    mustPair(t, "3.2.1/2.3.9->3.2.1/3.1.2"),
			Known:   all15,
			SkewIDs: []string{"S3", "S4", "S5"},
			SkewSignatures: []string{
				"skew-char-padding", "skew-struct-null", "skew-timestamp-zone",
			},
			Failures: 5845, SkewFailures: 12,
		},
		{
			Pair:    mustPair(t, "3.2.1/3.1.2->2.3.0/2.3.9"),
			Known:   []int{2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 13, 15},
			SkewIDs: []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9"},
			SkewSignatures: []string{
				"avro-unavailable", "skew-ansi-cast", "skew-avro-unavailable",
				"skew-char-length", "skew-char-padding", "skew-char-type",
				"skew-date-rebase", "skew-store-assignment", "skew-struct-null",
				"skew-timestamp-zone", "skew-value-mismatch-char", "skew-value-mismatch-varchar",
			},
			Failures: 14127, SkewFailures: 6338,
		},
	}
	pairs := versions.DefaultPairs()
	if testing.Short() {
		// The CI smoke subset: the baseline pair plus one upgrade pair.
		pairs, want = pairs[:2], want[:2]
	}
	m, err := RunSkewMatrix(corpus(t), pairs, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != len(want) {
		t.Fatalf("matrix has %d cells, want %d", len(m.Cells), len(want))
	}
	for i, w := range want {
		got := m.Cells[i]
		if !reflect.DeepEqual(got, w) {
			t.Errorf("cell %d (%s):\n got %+v\nwant %+v", i, w.Pair, got, w)
		}
	}
	// Acceptance: at least 5 skew-only discrepancies across the upgrade
	// pairs, each anchored to a real JIRA or migration-guide note.
	byID := inject.SkewByID()
	confirmed := map[string]bool{}
	for _, cell := range m.Cells {
		for _, id := range cell.SkewIDs {
			confirmed[id] = true
			d, ok := byID[id]
			if !ok {
				t.Errorf("cell %s confirmed unregistered skew id %s", cell.Pair, id)
				continue
			}
			if d.Anchor == "" {
				t.Errorf("skew %s has no JIRA/migration anchor", id)
			}
		}
	}
	if len(confirmed) < 5 {
		t.Errorf("only %d skew discrepancies confirmed, want >= 5: %v", len(confirmed), confirmed)
	}
}

// TestSkewMatrixParallelDeterminism: the rendered matrix must be
// bit-identical across -parallel settings. Run under -race in CI, this
// also shakes out data races between the probe calls.
func TestSkewMatrixParallelDeterminism(t *testing.T) {
	full := corpus(t)
	// A corpus sample keeps the three runs affordable; determinism does
	// not depend on corpus size.
	var inputs []Input
	for i := 0; i < len(full); i += 7 {
		inputs = append(inputs, full[i])
	}
	pairs := []versions.Pair{
		mustPair(t, "3.2.1/3.1.2->3.2.1/3.1.2"),
		mustPair(t, "2.3.0/2.3.9->3.2.1/3.1.2"),
	}
	var rendered []string
	for _, parallel := range []int{0, 2, 8} {
		m, err := RunSkewMatrix(inputs, pairs, RunOptions{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, m.Render())
	}
	for i := 1; i < len(rendered); i++ {
		if rendered[i] != rendered[0] {
			t.Errorf("matrix render differs between parallel settings:\n--- parallel=0 ---\n%s\n--- run %d ---\n%s",
				rendered[0], i, rendered[i])
		}
	}
}

// TestSkewRejectsUnknownProfiles: version validation rejects — never
// normalizes — unknown profiles, at both the deployment and run entry
// points.
func TestSkewRejectsUnknownProfiles(t *testing.T) {
	bad := versions.Pair{
		Writer: versions.Stack{Spark: "1.6.0", Hive: versions.Hive31},
		Reader: versions.BaselineStack(),
	}
	if _, err := NewSkewDeployment(bad); err == nil {
		t.Error("NewSkewDeployment accepted an unknown Spark profile")
	}
	if _, err := RunSkew(nil, bad, RunOptions{}); err == nil {
		t.Error("RunSkew accepted an unknown Spark profile")
	}
	if _, err := Run(nil, RunOptions{Versions: &bad}); err == nil {
		t.Error("Run accepted an unknown Spark profile")
	}
	if _, err := RunTables(nil, RunOptions{Versions: &bad}); err == nil {
		t.Error("RunTables accepted an unknown Spark profile")
	}
}

func mustPair(t *testing.T, spec string) versions.Pair {
	t.Helper()
	p, err := versions.ParsePair(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
