package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/csi"
	"repro/internal/inject"
	"repro/internal/sparksim"
	"repro/internal/sqlval"
	"repro/internal/versions"
)

// The version-skew oracle. A skew run executes every case twice more
// than a plain run: the written table is re-read on the writer stack
// (pre-upgrade control) and a sibling table is produced entirely on the
// reader stack (post-upgrade control). Comparing the controls against
// the main cross-stack outcome isolates discrepancies that exist *only
// because the two stacks run different versions* — the upgrade-triggered
// CSI failures of §5 — from discrepancies both versions share (which the
// three §8.1 oracles already catch).

// versionSkewOracle derives skew failures from the probe outcomes.
//
// Read skew: the same stored bytes decoded by the writer stack versus
// the reader stack. Write skew: the same logical write performed by the
// writer stack versus the reader stack, both read back by the reader.
// Outcomes are compared by outcomeKey — error *signatures*, not raw
// messages — so the "_rw" sibling's table name never manufactures a
// difference.
func versionSkewOracle(cases []*CaseResult) []Failure {
	var out []Failure
	for _, c := range cases {
		if c.Write.Err == nil {
			writerView := &CaseResult{Input: c.Input, Plan: c.Plan, Format: c.Format, Table: c.Table,
				Write: c.Write, Read: c.WriterRead}
			if key, peerKey := outcomeKey(c), outcomeKey(writerView); key != peerKey {
				out = append(out, Failure{
					Oracle:    csi.OracleVersionSkew,
					Case:      c,
					Peer:      writerView,
					Signature: "skew-" + classifySkew(writerView, c),
					Detail: fmt.Sprintf("read skew: writer stack sees [%s], reader stack sees [%s] for %s",
						peerKey, key, c.Describe()),
				})
			}
		}
		readerView := &CaseResult{Input: c.Input, Plan: c.Plan, Format: c.Format, Table: c.Table + "_rw",
			Write: c.RWWrite, Read: c.RWRead}
		if key, peerKey := outcomeKey(c), outcomeKey(readerView); key != peerKey {
			out = append(out, Failure{
				Oracle:    csi.OracleVersionSkew,
				Case:      c,
				Peer:      readerView,
				Signature: "skew-" + classifySkew(c, readerView),
				Detail: fmt.Sprintf("write skew: writer-stack write yields [%s], reader-stack write yields [%s] for %s",
					key, peerKey, c.Describe()),
			})
		}
	}
	return out
}

// classifySkew names the version-gated behavior behind a skew pair. The
// distinctive version-gated errors win; otherwise the difference is
// classified like any differential value divergence.
func classifySkew(a, b *CaseResult) string {
	for _, c := range []*CaseResult{a, b} {
		for _, err := range []error{c.Write.Err, c.Read.Err} {
			if err == nil {
				continue
			}
			var ae *sparksim.AvroUnavailableError
			if errors.As(err, &ae) {
				return "avro-unavailable"
			}
			var ce *sqlval.CastError
			if errors.As(err, &ce) {
				switch ce.Code {
				case "CAST_OVERFLOW":
					// Spark 3.0's ANSI store assignment (SPARK-28730)
					// rejects what 2.x silently coerced.
					return "store-assignment"
				case "CAST_INVALID_INPUT":
					return "ansi-cast"
				case "EXCEED_CHAR_LENGTH", "EXCEED_VARCHAR_LENGTH":
					// CHAR/VARCHAR length enforcement arrived with the
					// SPARK-33480 types.
					return "char-length"
				}
			}
		}
	}
	for _, c := range []*CaseResult{a, b} {
		if c.Write.Err != nil {
			return classifyError(c.Write.Err)
		}
		if c.Read.Err != nil {
			return classifyError(c.Read.Err)
		}
	}
	if a.Read.HasRow != b.Read.HasRow {
		if strings.Contains(a.Input.Type.String(), "STRUCT") {
			return "struct-null"
		}
		//crossvet:registry generic row-presence divergence is the residual skew bucket, deliberately outside the S* registry
		return "row-presence"
	}
	// CHAR/VARCHAR columns written by a pre-3.1 Spark stack are plain
	// STRING (legacy charVarcharAsString): the same content reads back
	// under a different type identity on the two stacks (SPARK-33480).
	av, bv := a.Read.Value, b.Read.Value
	if !av.Null && !bv.Null && av.Type.IsCharacter() && bv.Type.IsCharacter() &&
		av.Type.Kind != bv.Type.Kind &&
		strings.TrimRight(av.S, " ") == strings.TrimRight(bv.S, " ") {
		return "char-type"
	}
	return classifyValueDiff(av, bv)
}

// RunSkew executes the corpus on a version-skew deployment: RunOptions
// semantics are Run's, with the pair installed as the writer and reader
// stacks.
func RunSkew(inputs []Input, pair versions.Pair, opts RunOptions) (*RunResult, error) {
	opts.Versions = &pair
	return Run(inputs, opts)
}

// SkewCell is one writer×reader cell of the version matrix.
type SkewCell struct {
	Pair versions.Pair
	// Known lists the standard-registry discrepancy numbers the cell's
	// run exposed (the Figure-6 pin for the baseline cell).
	Known []int
	// SkewIDs lists the version-skew registry entries the cell
	// confirmed; SkewSignatures the raw skew-only signatures behind
	// them (including any outside the registry).
	SkewIDs        []string
	SkewSignatures []string
	// Failures tallies oracle violations: the three §8.1 oracles plus
	// the skew oracle.
	Failures     int
	SkewFailures int
}

// SkewMatrix is the cross-version discrepancy matrix: one cell per
// writer×reader pair, in the caller's pair order.
type SkewMatrix struct {
	Cells []SkewCell
}

// RunSkewMatrix executes the corpus over every writer×reader pair and
// assembles the matrix. Cells run sequentially in the given order (each
// cell parallelizes internally per opts.Parallel), so the matrix is
// bit-identical across parallelism settings.
func RunSkewMatrix(inputs []Input, pairs []versions.Pair, opts RunOptions) (*SkewMatrix, error) {
	if len(pairs) == 0 {
		pairs = versions.DefaultPairs()
	}
	m := &SkewMatrix{}
	for _, pair := range pairs {
		res, err := RunSkew(inputs, pair, opts)
		if err != nil {
			return nil, err
		}
		m.Cells = append(m.Cells, buildSkewCell(pair, res))
	}
	return m, nil
}

// buildSkewCell condenses one pair's run into its matrix cell.
func buildSkewCell(pair versions.Pair, res *RunResult) SkewCell {
	cell := SkewCell{
		Pair:     pair,
		Known:    res.Report.DistinctKnown(),
		Failures: len(res.Failures),
	}
	sigs := map[string]bool{}
	for _, f := range res.Failures {
		if f.Oracle == csi.OracleVersionSkew {
			cell.SkewFailures++
			sigs[f.Signature] = true
		}
	}
	// A version-gated behavior can also surface through the standard
	// oracles (e.g. an unavailable data source fails the write/read
	// oracle outright); count those cluster signatures too.
	for _, sig := range res.Report.UnknownSignatures() {
		sigs[sig] = true
	}
	bySig := inject.SkewBySignature()
	ids := map[string]bool{}
	for sig := range sigs {
		cell.SkewSignatures = append(cell.SkewSignatures, sig)
		if d, ok := bySig[sig]; ok {
			ids[d.ID] = true
		}
	}
	sort.Strings(cell.SkewSignatures)
	for id := range ids {
		cell.SkewIDs = append(cell.SkewIDs, id)
	}
	sort.Strings(cell.SkewIDs)
	return cell
}

// Render produces the human-readable matrix: one row per pair with the
// standard-registry discrepancy count, the skew-only findings, and the
// JIRA/migration anchors of the confirmed skew registry entries.
func (m *SkewMatrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-version discrepancy matrix (writer -> reader)\n")
	fmt.Fprintf(&b, "===================================================\n\n")
	skewReg := inject.SkewByID()
	for _, cell := range m.Cells {
		label := cell.Pair.String()
		if !cell.Pair.Skewed() {
			label += " (baseline)"
		}
		fmt.Fprintf(&b, "%s\n", label)
		fmt.Fprintf(&b, "    known discrepancies: %d %v\n", len(cell.Known), cell.Known)
		fmt.Fprintf(&b, "    skew failures: %d, skew-only signatures: %v\n", cell.SkewFailures, cell.SkewSignatures)
		for _, id := range cell.SkewIDs {
			d := skewReg[id]
			fmt.Fprintf(&b, "    %-3s %-12s %s\n", d.ID, d.Anchor, d.Title)
		}
		b.WriteString("\n")
	}
	return b.String()
}
