package core

import (
	"fmt"
	"strings"

	"repro/internal/csi"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// Wide-table testing extends the single-column plans of Figure 6 with
// tables that carry one column per data type at once. Multi-column
// tables exercise the interplay the single-column corpus cannot: column
// resolution by position versus by name across every type
// simultaneously, which is where the positional-ORC and case-folding
// behaviours interact.

// WideColumn pairs a corpus input with its column in the wide table.
type WideColumn struct {
	Name  string
	Input Input
}

// BuildWideTable selects one valid, non-null input per distinct type
// from the corpus and lays them out as the columns of a single table.
// Column names are deliberately mixed-case.
func BuildWideTable(inputs []Input) []WideColumn {
	seen := map[string]bool{}
	var out []WideColumn
	for _, in := range inputs {
		if !in.Valid || in.Literal == "NULL" {
			continue
		}
		key := in.Type.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, WideColumn{
			Name:  fmt.Sprintf("Col%d%s", len(out), strings.ToUpper(in.Type.Kind.String()[:1])),
			Input: in,
		})
	}
	return out
}

// WideOutcome is one interface's view of the wide table.
type WideOutcome struct {
	WriteErr error
	ReadErr  error
	Row      sqlval.Row
	Columns  []serde.Column
	Warnings []string
}

// writeWide creates and populates the wide table through an interface.
func (d *Deployment) writeWide(iface Iface, table, format string, cols []WideColumn) error {
	switch iface {
	case SparkSQL, HiveQL:
		var defs, lits []string
		for _, c := range cols {
			defs = append(defs, fmt.Sprintf("%s %s", c.Name, c.Input.Type))
			lits = append(lits, c.Input.Literal)
		}
		create := fmt.Sprintf("CREATE TABLE %s (%s) STORED AS %s", table, strings.Join(defs, ", "), format)
		insert := fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, strings.Join(lits, ", "))
		if iface == SparkSQL {
			if _, err := d.Spark.SQL(create); err != nil {
				return err
			}
			_, err := d.Spark.SQL(insert)
			return err
		}
		if _, err := d.Hive.Execute(create); err != nil {
			return err
		}
		_, err := d.Hive.Execute(insert)
		return err
	case DataFrame:
		schema := serde.Schema{}
		row := make(sqlval.Row, len(cols))
		for i, c := range cols {
			schema.Columns = append(schema.Columns, serde.Column{Name: c.Name, Type: c.Input.Type})
			row[i] = c.Input.Value
		}
		df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{row})
		if err != nil {
			return err
		}
		return df.SaveAsTable(table, format)
	default:
		return fmt.Errorf("core: unknown interface %q", iface)
	}
}

// readWide fetches the wide table's single row.
func (d *Deployment) readWide(iface Iface, table string) WideOutcome {
	out := WideOutcome{}
	switch iface {
	case SparkSQL:
		res, err := d.Spark.SQL(fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			out.ReadErr = err
			return out
		}
		out.Columns, out.Warnings = res.Columns, res.Warnings
		if len(res.Rows) > 0 {
			out.Row = res.Rows[0]
		}
	case DataFrame:
		res, err := d.Spark.Table(table)
		if err != nil {
			out.ReadErr = err
			return out
		}
		out.Columns, out.Warnings = res.Columns, res.Warnings
		if len(res.Rows) > 0 {
			out.Row = res.Rows[0]
		}
	case HiveQL:
		res, err := d.Hive.Execute(fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			out.ReadErr = err
			return out
		}
		out.Columns, out.Warnings = res.Columns, res.Warnings
		if len(res.Rows) > 0 {
			out.Row = res.Rows[0]
		}
	default:
		out.ReadErr = fmt.Errorf("core: unknown interface %q", iface)
	}
	return out
}

// WideResult is a wide-table run's outcome.
type WideResult struct {
	Columns  []WideColumn
	Failures []Failure
	Report   *Report
}

// RunWide executes the wide-table cross-test: per plan and format, one
// table containing every type, written through the plan's write
// interface and read back through its read interface. The write-read
// oracle applies per column; the differential oracle compares each
// column's outcome across formats within a plan.
func RunWide(inputs []Input, opts RunOptions) (*WideResult, error) {
	d := NewDeployment()
	for k, v := range opts.SparkConf {
		d.Spark.Conf().Set(k, v)
	}
	cols := BuildWideTable(inputs)
	var failures []Failure

	type cellKey struct {
		plan string
		col  int
	}
	cells := map[cellKey]map[string]*CaseResult{} // format -> pseudo case

	for _, plan := range Plans() {
		for _, format := range Formats() {
			table := fmt.Sprintf("wide_%s_%s", plan.Name(), format)
			writeErr := d.writeWide(plan.Write, table, format, cols)
			var outcome WideOutcome
			if writeErr != nil {
				outcome.WriteErr = writeErr
			} else {
				outcome = d.readWide(plan.Read, table)
			}
			for i, col := range cols {
				in := col.Input
				pseudo := &CaseResult{
					Input:  &in,
					Plan:   plan,
					Format: format,
					Table:  table,
					Write:  WriteOutcome{Err: writeErr},
				}
				pseudo.Read.Err = outcome.ReadErr
				if outcome.ReadErr == nil && writeErr == nil && i < len(outcome.Row) {
					pseudo.Read.HasRow = true
					pseudo.Read.Value = outcome.Row[i]
				}
				key := cellKey{plan.Name(), i}
				if cells[key] == nil {
					cells[key] = map[string]*CaseResult{}
				}
				cells[key][format] = pseudo

				// Per-column write-read oracle.
				switch {
				case writeErr != nil:
					failures = append(failures, Failure{
						Oracle: csi.OracleWriteRead, Case: pseudo,
						Signature: classifyError(writeErr),
						Detail:    fmt.Sprintf("wide write failed: %v", writeErr),
					})
				case outcome.ReadErr != nil:
					failures = append(failures, Failure{
						Oracle: csi.OracleWriteRead, Case: pseudo,
						Signature: classifyError(outcome.ReadErr),
						Detail:    fmt.Sprintf("wide read failed: %v", outcome.ReadErr),
					})
				case pseudo.Read.HasRow && !pseudo.Read.Value.EqualData(in.Expected):
					failures = append(failures, Failure{
						Oracle: csi.OracleWriteRead, Case: pseudo,
						Signature: classifyValueDiff(in.Expected, pseudo.Read.Value),
						Detail: fmt.Sprintf("column %s: wrote %s, read %s",
							col.Name, in.Expected, pseudo.Read.Value),
					})
				}
			}
		}
	}

	// Differential oracle across formats per (plan, column).
	for _, group := range cells {
		var list []*CaseResult
		for _, format := range Formats() {
			if c, ok := group[format]; ok {
				list = append(list, c)
			}
		}
		base := list[0]
		baseKey := outcomeKey(base)
		for _, peer := range list[1:] {
			if outcomeKey(peer) == baseKey {
				continue
			}
			failures = append(failures, Failure{
				Oracle: csi.OracleDifferential, Case: base, Peer: peer,
				Signature: classifyDiffPair(base, peer),
				Detail: fmt.Sprintf("wide column inconsistent across formats: %s [%s] vs %s [%s]",
					base.Describe(), baseKey, peer.Describe(), outcomeKey(peer)),
			})
		}
	}
	return &WideResult{Columns: cols, Failures: failures, Report: buildReport(failures)}, nil
}
