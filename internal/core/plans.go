package core

// Plan is one write→read interface pair of Figure 6.
type Plan struct {
	Family string // "ss" (Spark to Spark), "sh" (Spark to Hive), "hs" (Hive to Spark)
	Write  Iface
	Read   Iface
}

// Name is the artifact's plan label, e.g. "w_sql_r_df".
func (p Plan) Name() string {
	short := func(i Iface) string {
		switch i {
		case SparkSQL:
			return "sql"
		case DataFrame:
			return "df"
		default:
			return "hive"
		}
	}
	return "w_" + short(p.Write) + "_r_" + short(p.Read)
}

// Plans returns the eight write/read pairs of the Figure 6 setup:
// four Spark-to-Spark, two Spark-to-Hive, two Hive-to-Spark.
func Plans() []Plan {
	return []Plan{
		{Family: "ss", Write: SparkSQL, Read: SparkSQL},
		{Family: "ss", Write: SparkSQL, Read: DataFrame},
		{Family: "ss", Write: DataFrame, Read: SparkSQL},
		{Family: "ss", Write: DataFrame, Read: DataFrame},
		{Family: "sh", Write: SparkSQL, Read: HiveQL},
		{Family: "sh", Write: DataFrame, Read: HiveQL},
		{Family: "hs", Write: HiveQL, Read: SparkSQL},
		{Family: "hs", Write: HiveQL, Read: DataFrame},
	}
}

// Formats returns the backend formats under test, in the paper's order.
func Formats() []string { return []string{"orc", "parquet", "avro"} }
