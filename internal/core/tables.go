package core

import (
	"fmt"
	"time"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// Explicit-assignment table cases generalize the harness beyond the
// fixed input × plan × format cross product of Run: a TableCase pins a
// multi-column schema to one plan and one backend format. This is the
// execution entry the generative workloads (internal/fuzzgen) use —
// randomized schemas carry their own interface/format assignments, and
// differential coverage comes from sibling cases that share column IDs
// rather than from materializing the full matrix.

// TableCase is one explicit case: a table of columns written through
// the plan's write interface and read back through its read interface.
type TableCase struct {
	// Label names the case; it doubles as the table name and must be
	// unique within a run.
	Label   string
	Columns []WideColumn
	Plan    Plan
	Format  string

	// Ord is the case's ordinal in its workload's global enumeration
	// (fuzzgen stamps case-index × max-assignments + assignment). Column
	// ranks derive from it, so a seed-range shard of a campaign ranks
	// its failures exactly as the full campaign would.
	Ord int64

	// results, populated by RunTables: one pseudo CaseResult per column.
	results []*CaseResult
}

// Results returns the per-column case results of an executed TableCase.
func (tc *TableCase) Results() []*CaseResult { return tc.results }

// RunTables executes the given cases through the harness worker pool
// under one deployment, then applies the three oracles over the
// per-column results and clusters failures. The differential oracle
// pairs columns that share an Input ID across cases: two cases carrying
// the same columns through different plans of a family (or different
// formats of a plan) form a differential probe group.
func RunTables(cases []*TableCase, opts RunOptions) (*RunResult, error) {
	if opts.Parallel < 0 {
		return nil, fmt.Errorf("core: Parallel must be non-negative, got %d", opts.Parallel)
	}
	d := NewDeployment()
	if opts.Versions != nil {
		var err error
		if d, err = NewSkewDeployment(*opts.Versions); err != nil {
			return nil, err
		}
	}
	d.SetConf(opts.SparkConf)
	if opts.Tracer != nil {
		d.SetTracer(opts.Tracer)
	}

	execute := func(tc *TableCase) {
		var started time.Time
		if opts.Metrics != nil {
			started = time.Now() //crossvet:wallclock case timing feeds only the obs histogram, never the report or its hash
		}
		var span *obs.Span
		if opts.Tracer != nil {
			span = opts.Tracer.Span(nil, IfaceSystem(tc.Plan.Write), csi.DataPlane, tc.Plan.Name()+"/"+tc.Format).
				Set("table", tc.Label).Set("columns", fmt.Sprint(len(tc.Columns)))
			if d.Pair != nil {
				span.Set(obs.AttrWriterStack, d.Pair.Writer.String()).
					Set(obs.AttrReaderStack, d.Pair.Reader.String())
			}
		}
		write := d.writeTable(span, tc.Plan.Write, tc.Label, tc.Format, tc.Columns)
		var outcome WideOutcome
		outcome.WriteErr = write.Err
		if write.Err == nil {
			outcome = d.readTable(span, tc.Plan.Read, tc.Label)
		}
		span.Fail(write.Err).Fail(outcome.ReadErr).End()
		tc.results = columnResults(tc, write, outcome)
		if opts.Metrics != nil {
			opts.Metrics.Counter("crossfuzz_cases_total").Inc()
			opts.Metrics.Counter("crossfuzz_plan_cases_total", "plan", tc.Plan.Name(), "format", tc.Format).Inc()
			opts.Metrics.Histogram("crossfuzz_case_duration_ms", nil, "family", tc.Plan.Family).
				//crossvet:wallclock case timing feeds only the obs histogram, never the report or its hash
				Observe(float64(time.Since(started)) / float64(time.Millisecond))
		}
	}
	if err := runPool(opts.Context, opts.Parallel, cases, execute); err != nil {
		return nil, err
	}

	var all []*CaseResult
	for _, tc := range cases {
		all = append(all, tc.results...)
	}
	failures := applyOracles(all)
	if opts.Tracer != nil {
		for i := range failures {
			failures[i].Chain = obs.RenderChain(opts.Tracer.Chain(failures[i].Case.Span))
		}
	}
	emitFailures(opts.OnFailure, failures)
	return &RunResult{Cases: all, Failures: failures, Report: buildReport(failures)}, nil
}

// columnResults projects a table case's row-level write/read outcome
// onto one pseudo CaseResult per column, the granularity the oracles
// operate at. Row-level warnings attach to every column: the engines
// report feedback per statement, not per column, so a warning caused by
// one column also counts as feedback for its neighbours.
func columnResults(tc *TableCase, write WriteOutcome, outcome WideOutcome) []*CaseResult {
	out := make([]*CaseResult, len(tc.Columns))
	for i, col := range tc.Columns {
		in := col.Input
		pseudo := &CaseResult{
			Input:  &in,
			Plan:   tc.Plan,
			Format: tc.Format,
			Table:  tc.Label,
			Write:  WriteOutcome{Err: write.Err, Warnings: write.Warnings},
			Rank:   tableRank(tc.Ord, i),
		}
		pseudo.Read.Err = outcome.ReadErr
		pseudo.Read.Warnings = outcome.Warnings
		if write.Err == nil && outcome.ReadErr == nil && i < len(outcome.Row) {
			pseudo.Read.HasRow = true
			pseudo.Read.Value = outcome.Row[i]
			if i < len(outcome.Columns) {
				pseudo.Read.Column = outcome.Columns[i].Name
			}
		}
		out[i] = pseudo
	}
	return out
}

// writeTable creates and populates a multi-column table through an
// interface, keeping statement-level warnings (unlike the wide-table
// path, the error-handling oracle needs them).
func (d *Deployment) writeTable(parent *obs.Span, iface Iface, table, format string, cols []WideColumn) WriteOutcome {
	switch iface {
	case SparkSQL, HiveQL:
		create := createTableSQL(table, format, cols)
		insert := insertSQL(table, cols)
		if iface == SparkSQL {
			if _, err := d.Spark.SQLSpan(parent, create); err != nil {
				return WriteOutcome{Err: err}
			}
			res, err := d.Spark.SQLSpan(parent, insert)
			if err != nil {
				return WriteOutcome{Err: err}
			}
			return WriteOutcome{Warnings: res.Warnings}
		}
		if _, err := d.Hive.ExecuteSpan(parent, create); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := d.Hive.ExecuteSpan(parent, insert)
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	case DataFrame:
		schema := serde.Schema{}
		row := make(sqlval.Row, len(cols))
		for i, c := range cols {
			schema.Columns = append(schema.Columns, serde.Column{Name: c.Name, Type: c.Input.Type})
			row[i] = c.Input.Value
		}
		df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{row})
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Err: df.SaveAsTableSpan(parent, table, format)}
	default:
		return WriteOutcome{Err: fmt.Errorf("core: unknown interface %q", iface)}
	}
}

// readTable fetches the table's single row through an interface, on
// the reader stack.
func (d *Deployment) readTable(parent *obs.Span, iface Iface, table string) WideOutcome {
	out := WideOutcome{}
	fill := func(cols []serde.Column, rows []sqlval.Row, warnings []string) {
		out.Columns, out.Warnings = cols, warnings
		if len(rows) > 0 {
			out.Row = rows[0]
		}
	}
	switch iface {
	case SparkSQL:
		res, err := d.ReadSpark.SQLSpan(parent, fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			out.ReadErr = err
			return out
		}
		fill(res.Columns, res.Rows, res.Warnings)
	case DataFrame:
		res, err := d.ReadSpark.TableSpan(parent, table)
		if err != nil {
			out.ReadErr = err
			return out
		}
		fill(res.Columns, res.Rows, res.Warnings)
	case HiveQL:
		res, err := d.ReadHive.ExecuteSpan(parent, fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			out.ReadErr = err
			return out
		}
		fill(res.Columns, res.Rows, res.Warnings)
	default:
		out.ReadErr = fmt.Errorf("core: unknown interface %q", iface)
	}
	return out
}

func createTableSQL(table, format string, cols []WideColumn) string {
	defs := make([]byte, 0, 64)
	for i, c := range cols {
		if i > 0 {
			defs = append(defs, ", "...)
		}
		defs = append(defs, fmt.Sprintf("%s %s", c.Name, c.Input.Type)...)
	}
	return fmt.Sprintf("CREATE TABLE %s (%s) STORED AS %s", table, defs, format)
}

func insertSQL(table string, cols []WideColumn) string {
	lits := make([]byte, 0, 64)
	for i, c := range cols {
		if i > 0 {
			lits = append(lits, ", "...)
		}
		lits = append(lits, c.Input.Literal...)
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, lits)
}
