package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/versions"
)

// CaseResult is one executed test case: an input written through one
// interface and read back through another, over one backend format.
type CaseResult struct {
	Input  *Input
	Plan   Plan
	Format string
	Table  string
	Write  WriteOutcome
	Read   ReadOutcome
	// Skew probes, populated only on version-skew runs: WriterRead is
	// the main table read back through the writer stack (the pre-upgrade
	// control), RWWrite/RWRead are a sibling "<table>_rw" written and
	// read entirely on the reader stack (the post-upgrade control).
	WriterRead ReadOutcome
	RWWrite    WriteOutcome
	RWRead     ReadOutcome
	// Span is the case's root span when the run traces (nil otherwise);
	// the spans beneath it are the case's cross-system interactions.
	Span *obs.Span
	// Rank encodes the case's position in the run's global enumeration
	// order as a string whose lexicographic order equals enumeration
	// order. Fields are fixed-width decimals joined by 0x1f (below every
	// printable key character, so a shorter rank that is a prefix of a
	// longer one still sorts first). A sharded run stamps the same ranks
	// its unsharded equivalent would, which is what lets a coordinator
	// merge sub-reports and pick the same representative failures the
	// single-node run picks.
	Rank string
}

// Describe renders the case coordinates for logs.
func (c *CaseResult) Describe() string {
	return fmt.Sprintf("%s/%s input=%s(%s)", c.Plan.Name(), c.Format, c.Input.Name, c.Input.Literal)
}

// Failure is one oracle violation.
type Failure struct {
	Oracle    csi.Oracle
	Case      *CaseResult
	Peer      *CaseResult // differential oracle: the differing case
	Signature string
	Detail    string
	// Chain is the rendered cross-system propagation chain of the
	// failing case (empty when the run did not trace).
	Chain string
	// Rank orders this failure within the run's deterministic failure
	// sequence: an oracle-block tag ("0" write/read, "1" error handling,
	// "2" differential across interfaces, "3" across formats) followed
	// by the case rank (or, for differential failures, the probe-group
	// key and peer ordinal), 0x1f-separated. Sorting any subset of a
	// run's failures by Rank reproduces their relative emission order,
	// so shards of a split job agree on which failure came first.
	Rank string
}

// RunOptions configure a harness run.
type RunOptions struct {
	// Context, when non-nil, makes the run cancellable: no new case is
	// dispatched after cancellation and the run returns ctx.Err(). A
	// cancelled run produces no result — partial oracle verdicts would
	// not be reproducible. Nil means run to completion.
	Context context.Context
	// SparkConf overrides applied to the deployment's Spark sessions
	// before testing — "testing systems under the deployment
	// configuration (not the default configuration)". On skew runs the
	// overrides apply to both the writer and reader stacks, after the
	// version profiles.
	SparkConf map[string]string
	// Versions, when non-nil, runs the corpus on a version-skew
	// deployment: writes on the writer stack, reads on the reader
	// stack, plus the two skew probes per case feeding the version-skew
	// oracle. Unknown version profiles are rejected.
	Versions *versions.Pair
	// Families restricts the run to the given plan families
	// ("ss", "sh", "hs"); empty means all.
	Families []string
	// Parallel sets the number of worker goroutines executing test
	// cases (each case uses its own table; the engines are safe for
	// concurrent use). Values below 2 run sequentially.
	Parallel int
	// Tracer, when non-nil, records a causal span tree per case; each
	// Failure then carries the rendered cross-system propagation chain.
	Tracer *obs.Tracer
	// Metrics, when non-nil, records per-plan/per-format/per-oracle
	// case counts and durations into the registry.
	Metrics *obs.Registry
	// OnFailure, when non-nil, is invoked once per oracle failure after
	// the oracles run, in the run's deterministic failure order and
	// from the calling goroutine. Streaming consumers (crossd) use it
	// to forward failures as they are established.
	OnFailure func(Failure)
}

// RunResult is the outcome of a harness run.
type RunResult struct {
	Cases    []*CaseResult
	Failures []Failure
	Report   *Report
}

// Run executes the full cross-test: every input × plan × format, then
// applies the three oracles and clusters failures into discrepancies.
func Run(inputs []Input, opts RunOptions) (*RunResult, error) {
	if opts.Parallel < 0 {
		return nil, fmt.Errorf("core: Parallel must be non-negative, got %d", opts.Parallel)
	}
	d := NewDeployment()
	if opts.Versions != nil {
		var err error
		if d, err = NewSkewDeployment(*opts.Versions); err != nil {
			return nil, err
		}
	}
	d.SetConf(opts.SparkConf)
	if opts.Tracer != nil {
		d.SetTracer(opts.Tracer)
	}
	// Plan positions are indexes into the unfiltered Plans() slice: a
	// family-restricted run (a corpus shard) stamps the same case ranks
	// the full run would, so shard failure order merges back into the
	// global order.
	planPos := map[string]int{}
	plans := Plans()
	for i, p := range plans {
		planPos[p.Name()] = i
	}
	if len(opts.Families) > 0 {
		want := make(map[string]bool, len(opts.Families))
		for _, f := range opts.Families {
			want[f] = true
		}
		var filtered []Plan
		for _, p := range plans {
			if want[p.Family] {
				filtered = append(filtered, p)
			}
		}
		plans = filtered
	}

	var cases []*CaseResult
	for i := range inputs {
		in := &inputs[i]
		for _, plan := range plans {
			for fi, format := range Formats() {
				table := fmt.Sprintf("t_%s_%s_%04d", plan.Name(), format, in.ID)
				cases = append(cases, &CaseResult{
					Input: in, Plan: plan, Format: format, Table: table,
					Rank: caseRank(i, planPos[plan.Name()], fi),
				})
			}
		}
	}
	execute := func(c *CaseResult) {
		var started time.Time
		if opts.Metrics != nil {
			started = time.Now() //crossvet:wallclock case timing feeds only the obs histogram, never the report or its hash
		}
		if opts.Tracer != nil {
			c.Span = opts.Tracer.Span(nil, IfaceSystem(c.Plan.Write), csi.DataPlane, c.Plan.Name()+"/"+c.Format).
				Set("input", c.Input.Name).Set("table", c.Table)
			if d.Pair != nil {
				c.Span.Set(obs.AttrWriterStack, d.Pair.Writer.String()).
					Set(obs.AttrReaderStack, d.Pair.Reader.String())
			}
		}
		c.Write = d.WriteSpan(c.Span, c.Plan.Write, c.Table, c.Format, *c.Input)
		if c.Write.Err == nil {
			c.Read = d.ReadSpan(c.Span, c.Plan.Read, c.Table)
		}
		if d.Pair != nil {
			// Skew probes: the same table re-read on the writer stack, and
			// a sibling table produced entirely on the reader stack.
			if c.Write.Err == nil {
				c.WriterRead = d.WriterReadSpan(c.Span, c.Plan.Read, c.Table)
			}
			c.RWWrite = d.ReaderWriteSpan(c.Span, c.Plan.Write, c.Table+"_rw", c.Format, *c.Input)
			if c.RWWrite.Err == nil {
				c.RWRead = d.ReadSpan(c.Span, c.Plan.Read, c.Table+"_rw")
			}
		}
		c.Span.Fail(c.Write.Err).Fail(c.Read.Err).End()
		if opts.Metrics != nil {
			opts.Metrics.Counter("crosstest_cases_total").Inc()
			opts.Metrics.Counter("crosstest_plan_cases_total", "plan", c.Plan.Name(), "format", c.Format).Inc()
			// Each case feeds exactly one value-checking oracle: valid
			// inputs the write/read oracle, invalid inputs the
			// error-handling oracle — so the per-oracle counts partition
			// the total.
			oracle := csi.OracleWriteRead
			if !c.Input.Valid {
				oracle = csi.OracleErrorHandling
			}
			opts.Metrics.Counter("crosstest_oracle_cases_total", "oracle", oracle.String()).Inc()
			opts.Metrics.Histogram("crosstest_case_duration_ms", nil, "family", c.Plan.Family).
				//crossvet:wallclock case timing feeds only the obs histogram, never the report or its hash
				Observe(float64(time.Since(started)) / float64(time.Millisecond))
		}
	}
	if err := runPool(opts.Context, opts.Parallel, cases, execute); err != nil {
		return nil, err
	}

	failures := applyOracles(cases)
	if d.Pair != nil {
		failures = append(failures, versionSkewOracle(cases)...)
	}
	if opts.Tracer != nil {
		for i := range failures {
			failures[i].Chain = obs.RenderChain(opts.Tracer.Chain(failures[i].Case.Span))
		}
	}
	emitFailures(opts.OnFailure, failures)
	report := buildReport(failures)
	if opts.Metrics != nil {
		for _, o := range []csi.Oracle{csi.OracleWriteRead, csi.OracleErrorHandling, csi.OracleDifferential, csi.OracleVersionSkew} {
			opts.Metrics.Counter("crosstest_oracle_failures_total", "oracle", o.String()).Add(int64(report.ByOracle[o]))
		}
		opts.Metrics.Gauge("crosstest_distinct_discrepancies").Set(float64(len(report.Found)))
	}
	return &RunResult{
		Cases:    cases,
		Failures: failures,
		Report:   report,
	}, nil
}

// runPool drains work through n worker goroutines (n < 2 runs
// sequentially). Workers only write into their own work item, so the
// caller observes results in the deterministic order of the slice
// regardless of scheduling. A cancelled ctx stops dispatching new
// items (in-flight items finish) and returns ctx.Err(); a nil ctx
// always drains everything.
func runPool[T any](ctx context.Context, n int, items []T, run func(T)) error {
	done := func() <-chan struct{} {
		if ctx == nil {
			return nil
		}
		return ctx.Done()
	}()
	if n > 1 {
		var wg sync.WaitGroup
		work := make(chan T)
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := range work {
					run(it)
				}
			}()
		}
		var err error
	dispatch:
		for _, it := range items {
			select {
			case <-done:
				err = ctx.Err()
				break dispatch
			case work <- it:
			}
		}
		close(work)
		wg.Wait()
		return err
	}
	for _, it := range items {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		run(it)
	}
	return nil
}

// rankSep joins rank fields. 0x1f sorts below every digit, letter and
// '|', so a rank that is a prefix of another still compares first —
// plain string order over ranks is enumeration order.
const rankSep = "\x1f"

// caseRank encodes an input×plan×format coordinate of Run's
// enumeration (input slice index, unfiltered plan index, format index).
func caseRank(input, plan, format int) string {
	return fmt.Sprintf("%06d%s%03d%s%03d", input, rankSep, plan, rankSep, format)
}

// tableRank encodes a column of an explicitly-ordered TableCase
// (RunTables enumeration: case ordinal, then column).
func tableRank(ord int64, column int) string {
	return fmt.Sprintf("%010d%s%03d", ord, rankSep, column)
}

// failureRank prefixes a case rank with its oracle-block tag; blocks
// are emitted in tag order by applyOracles.
func failureRank(block string, caseRank string) string {
	return block + rankSep + caseRank
}

// emitFailures forwards failures to a streaming hook, in order.
func emitFailures(hook func(Failure), failures []Failure) {
	if hook == nil {
		return
	}
	for _, f := range failures {
		hook(f)
	}
}

func applyOracles(cases []*CaseResult) []Failure {
	var failures []Failure
	failures = append(failures, writeReadOracle(cases)...)
	failures = append(failures, errorHandlingOracle(cases)...)
	failures = append(failures, differentialOracle(cases)...)
	return failures
}

// writeReadOracle: for valid data, the data read from the query should
// be the data written earlier.
func writeReadOracle(cases []*CaseResult) []Failure {
	var out []Failure
	for _, c := range cases {
		if !c.Input.Valid {
			continue
		}
		switch {
		case c.Write.Err != nil:
			out = append(out, Failure{
				Oracle:    csi.OracleWriteRead,
				Case:      c,
				Signature: classifyError(c.Write.Err),
				Detail:    fmt.Sprintf("write of valid data failed: %v", c.Write.Err),
				Rank:      failureRank("0", c.Rank),
			})
		case c.Read.Err != nil:
			out = append(out, Failure{
				Oracle:    csi.OracleWriteRead,
				Case:      c,
				Signature: classifyError(c.Read.Err),
				Detail:    fmt.Sprintf("read of written data failed: %v", c.Read.Err),
				Rank:      failureRank("0", c.Rank),
			})
		case !c.Read.HasRow:
			out = append(out, Failure{
				Oracle:    csi.OracleWriteRead,
				Case:      c,
				Signature: "row-missing",
				Detail:    "written row not returned",
				Rank:      failureRank("0", c.Rank),
			})
		case !c.Read.Value.EqualData(c.Input.Expected):
			out = append(out, Failure{
				Oracle:    csi.OracleWriteRead,
				Case:      c,
				Signature: classifyValueDiff(c.Input.Expected, c.Read.Value),
				Detail:    fmt.Sprintf("wrote %s, read %s", c.Input.Expected, c.Read.Value),
				Rank:      failureRank("0", c.Rank),
			})
		}
	}
	return out
}

// errorHandlingOracle: invalid data should be rejected or corrected
// with feedback during the write; a silent store is a failure.
func errorHandlingOracle(cases []*CaseResult) []Failure {
	var out []Failure
	for _, c := range cases {
		if c.Input.Valid {
			continue
		}
		if c.Write.Err != nil || len(c.Write.Warnings) > 0 {
			continue // rejected or accompanied by feedback
		}
		if c.Read.Err != nil || !c.Read.HasRow {
			continue
		}
		out = append(out, Failure{
			Oracle:    csi.OracleErrorHandling,
			Case:      c,
			Signature: classifyTargetFamily(c.Input.Type),
			Detail:    fmt.Sprintf("invalid input stored silently as %s", c.Read.Value),
			Rank:      failureRank("1", c.Rank),
		})
	}
	return out
}

// differentialOracle: results and behaviour should be consistent across
// interfaces (within a plan family, per format) and across backend
// formats (within a plan).
func differentialOracle(cases []*CaseResult) []Failure {
	var out []Failure
	byFamilyFormat := map[string][]*CaseResult{}
	byPlan := map[string][]*CaseResult{}
	for _, c := range cases {
		kf := fmt.Sprintf("%d|%s|%s", c.Input.ID, c.Plan.Family, c.Format)
		byFamilyFormat[kf] = append(byFamilyFormat[kf], c)
		kp := fmt.Sprintf("%d|%s", c.Input.ID, c.Plan.Name())
		byPlan[kp] = append(byPlan[kp], c)
	}
	out = append(out, diffGroups(byFamilyFormat, "across interfaces", "2")...)
	out = append(out, diffGroups(byPlan, "across formats", "3")...)
	return out
}

func diffGroups(groups map[string][]*CaseResult, scope, rankTag string) []Failure {
	// Iterate in sorted key order: failure order (and therefore cluster
	// membership order and report examples) must not depend on map
	// iteration, or two identical runs render different reports.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Failure
	for _, k := range keys {
		group := groups[k]
		if len(group) < 2 {
			continue
		}
		base := group[0]
		baseKey := outcomeKey(base)
		for pi, peer := range group[1:] {
			peerKey := outcomeKey(peer)
			if peerKey == baseKey {
				continue
			}
			out = append(out, Failure{
				Oracle:    csi.OracleDifferential,
				Case:      base,
				Peer:      peer,
				Signature: classifyDiffPair(base, peer),
				Detail:    fmt.Sprintf("inconsistent %s: %s [%s] vs %s [%s]", scope, base.Describe(), baseKey, peer.Describe(), peerKey),
				// The group key (sorted-string order) then the peer ordinal:
				// diff groups never straddle a family or seed-range shard, so
				// this reproduces the unsharded emission order within the
				// block.
				Rank: failureRank(rankTag, k+rankSep+fmt.Sprintf("%06d", pi)),
			})
		}
	}
	return out
}

// classifyDiffPair derives the signature for a differing pair: a
// distinctive error on either side wins; otherwise the value difference
// is classified.
func classifyDiffPair(a, b *CaseResult) string {
	for _, c := range []*CaseResult{a, b} {
		if c.Write.Err != nil {
			return classifyError(c.Write.Err)
		}
		if c.Read.Err != nil {
			return classifyError(c.Read.Err)
		}
	}
	if a.Read.HasRow != b.Read.HasRow {
		// A row present on one side only: Hive's struct fold or a write
		// rejected elsewhere.
		if strings.Contains(a.Input.Type.String(), "STRUCT") {
			return "struct-null"
		}
		return "row-presence"
	}
	if !a.Input.Valid {
		// Divergent handling of invalid input is the insert-coercion
		// discrepancy of the destination family, however the stored
		// values happen to differ (NULL vs wrapped vs accepted).
		return classifyTargetFamily(a.Input.Type)
	}
	return classifyValueDiff(a.Read.Value, b.Read.Value)
}
