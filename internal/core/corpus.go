// Package core implements the paper's primary tooling contribution: the
// cross-system data-plane testing framework of §8. It generates typed
// test inputs covering every supported data type (valid values to test
// expected behaviour, invalid values to test error handling), writes
// and reads them across the three interfaces of Figure 6 (SparkSQL,
// DataFrame, HiveQL) and the three backend formats (ORC, Parquet,
// Avro), applies the three oracles (write-read, error-handling,
// differential), and clusters the resulting failures into distinct
// discrepancies.
package core

import (
	"fmt"

	"repro/internal/sqlparse"
	"repro/internal/sqlval"
)

// Input is one generated test value: a column type, the SQL literal
// inserted through the SQL interfaces, and the natural value handed to
// the DataFrame interface. Valid inputs feed the write-read and
// differential oracles; invalid ones feed the error-handling oracle.
type Input struct {
	ID      int
	Name    string
	Type    sqlval.Type
	Literal string
	Value   sqlval.Value
	Valid   bool

	// Expected is the value the column should hold after a correct
	// write of a valid input (the declared-type coercion of Value).
	Expected sqlval.Value
}

type inputSpec struct {
	name    string
	typ     string
	literal string
	valid   bool
}

// baseSpecs is the hand-written core of the corpus: for every type, a
// set of valid values (boundaries included) and the invalid values that
// exercise the error-handling oracle.
var baseSpecs = []inputSpec{
	// BOOLEAN
	{"bool_true", "BOOLEAN", "true", true},
	{"bool_false", "BOOLEAN", "false", true},
	{"bool_null", "BOOLEAN", "NULL", true},
	{"bool_str_true", "BOOLEAN", "'true'", true},
	{"bool_invalid_yes", "BOOLEAN", "'yes'", false},
	{"bool_invalid_no", "BOOLEAN", "'no'", false},
	{"bool_invalid_word", "BOOLEAN", "'maybe'", false},

	// TINYINT
	{"tinyint_small", "TINYINT", "5", true},
	{"tinyint_min", "TINYINT", "-128", true},
	{"tinyint_max", "TINYINT", "127", true},
	{"tinyint_zero", "TINYINT", "0", true},
	{"tinyint_null", "TINYINT", "NULL", true},
	{"tinyint_over", "TINYINT", "200", false},
	{"tinyint_under", "TINYINT", "-200", false},
	{"tinyint_str", "TINYINT", "'abc'", false},

	// SMALLINT
	{"smallint_small", "SMALLINT", "7", true},
	{"smallint_min", "SMALLINT", "-32768", true},
	{"smallint_max", "SMALLINT", "32767", true},
	{"smallint_null", "SMALLINT", "NULL", true},
	{"smallint_over", "SMALLINT", "40000", false},
	{"smallint_under", "SMALLINT", "-40000", false},

	// INT
	{"int_small", "INT", "42", true},
	{"int_min", "INT", "-2147483648", true},
	{"int_max", "INT", "2147483647", true},
	{"int_null", "INT", "NULL", true},
	{"int_over", "INT", "3000000000", false},
	{"int_under", "INT", "-3000000000", false},
	{"int_str", "INT", "'xyz'", false},

	// BIGINT
	{"bigint_small", "BIGINT", "123456789012", true},
	{"bigint_max", "BIGINT", "9223372036854775807", true},
	{"bigint_null", "BIGINT", "NULL", true},
	{"bigint_over_str", "BIGINT", "'99999999999999999999999'", false},
	{"bigint_str", "BIGINT", "'pqr'", false},

	// FLOAT / DOUBLE
	{"float_pi", "FLOAT", "3.14", true},
	{"float_neg", "FLOAT", "-2.5", true},
	{"float_exp", "FLOAT", "1.5e3", true},
	{"float_null", "FLOAT", "NULL", true},
	{"float_nan_str", "FLOAT", "'NaN'", false},
	{"float_inf_str", "FLOAT", "'Infinity'", false},
	{"float_neginf_str", "FLOAT", "'-Infinity'", false},
	{"float_str", "FLOAT", "'abc'", false},
	{"double_pi", "DOUBLE", "3.141592653589793", true},
	{"double_exp", "DOUBLE", "6.022e23", true},
	{"double_null", "DOUBLE", "NULL", true},
	{"double_nan_str", "DOUBLE", "'NaN'", false},
	{"double_str", "DOUBLE", "'nope'", false},

	// DECIMAL(10,2) and DECIMAL(5,2)
	{"decimal_simple", "DECIMAL(10,2)", "12.34", true},
	{"decimal_neg", "DECIMAL(10,2)", "-99.99", true},
	{"decimal_zero", "DECIMAL(10,2)", "0.00", true},
	{"decimal_null", "DECIMAL(10,2)", "NULL", true},
	{"decimal_excess_precision", "DECIMAL(5,2)", "1.23456", false},
	{"decimal_too_wide", "DECIMAL(5,2)", "123456.78", false},
	{"decimal_str", "DECIMAL(10,2)", "'abc'", false},

	// STRING
	{"string_simple", "STRING", "'hello'", true},
	{"string_empty", "STRING", "''", true},
	{"string_unicode", "STRING", "'héllo wörld'", true},
	{"string_quote", "STRING", "'it''s'", true},
	{"string_null", "STRING", "NULL", true},

	// CHAR / VARCHAR
	{"char_short", "CHAR(4)", "'ab'", true},
	{"char_exact", "CHAR(4)", "'abcd'", true},
	{"char_null", "CHAR(4)", "NULL", true},
	{"char_over", "CHAR(4)", "'abcdef'", false},
	{"varchar_short", "VARCHAR(4)", "'ab'", true},
	{"varchar_exact", "VARCHAR(4)", "'abcd'", true},
	{"varchar_null", "VARCHAR(4)", "NULL", true},
	{"varchar_over", "VARCHAR(4)", "'abcdef'", false},

	// BINARY
	{"binary_simple", "BINARY", "X'CAFEBABE'", true},
	{"binary_empty", "BINARY", "X''", true},
	{"binary_null", "BINARY", "NULL", true},

	// DATE
	{"date_modern", "DATE", "DATE '2021-06-15'", true},
	{"date_epoch", "DATE", "DATE '1970-01-01'", true},
	{"date_pregregorian", "DATE", "DATE '1500-06-01'", true},
	{"date_null", "DATE", "NULL", true},
	{"date_invalid_day", "DATE", "'2021-02-30'", false},
	{"date_invalid_month", "DATE", "'2021-13-01'", false},
	{"date_garbage", "DATE", "'not-a-date'", false},

	// TIMESTAMP
	{"ts_noon", "TIMESTAMP", "TIMESTAMP '2021-06-15 12:00:00'", true},
	{"ts_micros", "TIMESTAMP", "TIMESTAMP '2021-06-15 12:00:00.123456'", true},
	{"ts_null", "TIMESTAMP", "NULL", true},
	{"ts_invalid_hour", "TIMESTAMP", "'2021-01-01 25:00:00'", false},
	{"ts_invalid_day", "TIMESTAMP", "'2021-02-30 10:00:00'", false},

	// ARRAY / MAP / STRUCT
	{"array_int", "ARRAY<INT>", "ARRAY(1, 2, 3)", true},
	{"array_string", "ARRAY<STRING>", "ARRAY('a', 'b')", true},
	{"array_empty", "ARRAY<INT>", "ARRAY()", true},
	{"array_null", "ARRAY<INT>", "NULL", true},
	{"array_tinyint", "ARRAY<TINYINT>", "ARRAY(1, 2)", true},
	{"map_string_int", "MAP<STRING,INT>", "MAP('a', 1, 'b', 2)", true},
	{"map_int_string", "MAP<INT,STRING>", "MAP(1, 'x', 2, 'y')", true},
	{"map_null", "MAP<STRING,INT>", "NULL", true},
	{"struct_simple", "STRUCT<a:INT,b:STRING>", "NAMED_STRUCT('a', 1, 'b', 'x')", true},
	{"struct_all_null", "STRUCT<a:INT,b:STRING>", "NAMED_STRUCT('a', NULL, 'b', NULL)", true},
	{"struct_null", "STRUCT<a:INT,b:STRING>", "NULL", true},
}

// CorpusSize is the total number of generated inputs, matching the
// paper's §8.1 corpus of 422 values (210 valid, 212 invalid).
const (
	CorpusSize    = 422
	CorpusValid   = 210
	CorpusInvalid = 212
)

// BuildCorpus generates the deterministic input corpus. The hand-written
// base covers every type's interesting values; generated families pad
// the corpus to the published size with additional valid strings and
// additional out-of-range/invalid numerics spread across the numeric
// types.
func BuildCorpus() ([]Input, error) {
	specs := append([]inputSpec(nil), baseSpecs...)

	valid, invalid := 0, 0
	for _, s := range specs {
		if s.valid {
			valid++
		} else {
			invalid++
		}
	}

	// Pad valid inputs: strings and ints with generated content.
	for i := 0; valid < CorpusValid; i++ {
		switch i % 3 {
		case 0:
			specs = append(specs, inputSpec{fmt.Sprintf("string_gen_%03d", i), "STRING", fmt.Sprintf("'s_%03d'", i), true})
		case 1:
			specs = append(specs, inputSpec{fmt.Sprintf("int_gen_%03d", i), "INT", fmt.Sprintf("%d", 1000+i*7), true})
		default:
			specs = append(specs, inputSpec{fmt.Sprintf("double_gen_%03d", i), "DOUBLE", fmt.Sprintf("%d.%d", i, i%10), true})
		}
		valid++
	}

	// Pad invalid inputs: range violations and malformed values across
	// the families that the error-handling oracle targets.
	for i := 0; invalid < CorpusInvalid; i++ {
		switch i % 6 {
		case 0:
			specs = append(specs, inputSpec{fmt.Sprintf("int_over_gen_%03d", i), "INT", fmt.Sprintf("%d", 3000000000+int64(i)), false})
		case 1:
			specs = append(specs, inputSpec{fmt.Sprintf("tinyint_over_gen_%03d", i), "TINYINT", fmt.Sprintf("%d", 128+i), false})
		case 2:
			specs = append(specs, inputSpec{fmt.Sprintf("smallint_over_gen_%03d", i), "SMALLINT", fmt.Sprintf("%d", 32768+i), false})
		case 3:
			specs = append(specs, inputSpec{fmt.Sprintf("decimal_over_gen_%03d", i), "DECIMAL(5,2)", fmt.Sprintf("1.2%03d9", i), false})
		case 4:
			specs = append(specs, inputSpec{fmt.Sprintf("date_bad_gen_%03d", i), "DATE", fmt.Sprintf("'2021-02-%d'", 30+i%10), false})
		default:
			specs = append(specs, inputSpec{fmt.Sprintf("varchar_over_gen_%03d", i), "VARCHAR(4)", fmt.Sprintf("'overflow_%03d'", i), false})
		}
		invalid++
	}

	inputs := make([]Input, 0, len(specs))
	for id, s := range specs {
		in, err := buildInput(id, s)
		if err != nil {
			return nil, fmt.Errorf("core: input %q: %w", s.name, err)
		}
		inputs = append(inputs, in)
	}
	return inputs, nil
}

// BuildBaseCorpus generates only the hand-written core of the corpus
// (every type's interesting values without the generated padding) —
// the compact corpus used by the benchmark harness.
func BuildBaseCorpus() ([]Input, error) {
	inputs := make([]Input, 0, len(baseSpecs))
	for id, s := range baseSpecs {
		in, err := buildInput(id, s)
		if err != nil {
			return nil, fmt.Errorf("core: input %q: %w", s.name, err)
		}
		inputs = append(inputs, in)
	}
	return inputs, nil
}

// MakeInput builds one Input from an explicit spec — the entry point
// generative workloads (internal/fuzzgen) use to turn randomized
// (type, literal) pairs into harness inputs. Valid inputs must coerce
// under ANSI semantics (the Expected value); callers that guessed
// validity wrong get an error and can downgrade the spec to invalid.
func MakeInput(id int, name, typ, literal string, valid bool) (Input, error) {
	return buildInput(id, inputSpec{name: name, typ: typ, literal: literal, valid: valid})
}

func buildInput(id int, s inputSpec) (Input, error) {
	typ, err := sqlval.ParseType(s.typ)
	if err != nil {
		return Input{}, err
	}
	// Derive the natural value from the literal exactly as an engine
	// would, so the SQL and DataFrame paths receive the same data.
	stmt, err := sqlparse.Parse(fmt.Sprintf("INSERT INTO probe VALUES (%s)", s.literal))
	if err != nil {
		return Input{}, err
	}
	expr := stmt.(*sqlparse.Insert).Rows[0][0]
	value, err := sqlparse.Eval(expr, sqlval.CastLegacy)
	if err != nil {
		return Input{}, err
	}
	in := Input{ID: id, Name: s.name, Type: typ, Literal: s.literal, Value: value, Valid: s.valid}
	if s.valid {
		expected, err := sqlval.Cast(value, typ, sqlval.CastANSI)
		if err != nil {
			return Input{}, fmt.Errorf("valid input does not coerce: %w", err)
		}
		in.Expected = expected
	}
	return in, nil
}
