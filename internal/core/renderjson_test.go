package core

import (
	"sort"
	"testing"
)

// RenderReportJSON must reproduce Render() byte-for-byte from the JSON
// projection — it is the cluster coordinator's only way to render a
// merged report, and the merged ReportSHA is pinned against the
// single-node hash.
func TestRenderReportJSONMatchesRender(t *testing.T) {
	inputs, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(inputs, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := run.Report.Render()
	got := RenderReportJSON(run.Report.JSON())
	if got != want {
		t.Errorf("RenderReportJSON diverges from Render:\n--- render ---\n%s\n--- from json ---\n%s", want, got)
	}
}

// Failure ranks must sort in emission order: the coordinator merges
// shard failure lists by rank, and the merged first failure (the
// report example) must be the one the unsharded run emits first.
func TestFailureRanksFollowEmissionOrder(t *testing.T) {
	inputs, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(inputs, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Failures) == 0 {
		t.Fatal("corpus run produced no failures")
	}
	ranks := make([]string, len(run.Failures))
	for i, f := range run.Failures {
		if f.Rank == "" {
			t.Fatalf("failure %d (%s) has no rank", i, f.Signature)
		}
		ranks[i] = f.Rank
	}
	if !sort.StringsAreSorted(ranks) {
		for i := 1; i < len(ranks); i++ {
			if ranks[i] < ranks[i-1] {
				t.Fatalf("rank order broken at %d: %q then %q", i, ranks[i-1], ranks[i])
			}
		}
	}
	seen := map[string]int{}
	for i, r := range ranks {
		if j, dup := seen[r]; dup {
			t.Fatalf("duplicate rank %q at %d and %d", r, j, i)
		}
		seen[r] = i
	}
}

// A family-restricted run must stamp the same ranks the full run
// stamps for that family's failures — the shard-invariance property
// the cluster merge depends on.
func TestShardRanksMatchFullRun(t *testing.T) {
	inputs, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(inputs, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	fullByRank := map[string]string{}
	for _, f := range full.Failures {
		fullByRank[f.Rank] = f.Signature
	}
	var shardRanks int
	for _, fam := range []string{"ss", "sh", "hs"} {
		shard, err := Run(inputs, RunOptions{Families: []string{fam}, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range shard.Failures {
			sig, ok := fullByRank[f.Rank]
			if !ok {
				t.Fatalf("family %s: rank %q not present in full run", fam, f.Rank)
			}
			if sig != f.Signature {
				t.Fatalf("family %s: rank %q maps to %q in shard, %q in full run", fam, f.Rank, f.Signature, sig)
			}
			shardRanks++
		}
	}
	if shardRanks != len(full.Failures) {
		t.Fatalf("family shards produced %d ranked failures, full run %d", shardRanks, len(full.Failures))
	}
}
