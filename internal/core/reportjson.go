package core

import (
	"repro/internal/csi"
)

// The machine-readable report shape: what `crosstest -json` prints and
// what crossd's /result endpoint embeds, so CLI and server outputs are
// directly diffable. The encoding is deterministic (struct field order
// plus encoding/json's sorted map keys), so equal reports marshal to
// equal bytes and the content-addressed cache can serve them verbatim.

// FoundJSON is one distinct discrepancy in the JSON report.
type FoundJSON struct {
	Signature string `json:"signature"`
	// Known is the Figure-6 registry number, 0 for a new signature.
	Known      int            `json:"known,omitempty"`
	JIRA       string         `json:"jira,omitempty"`
	Title      string         `json:"title,omitempty"`
	Categories []string       `json:"categories,omitempty"`
	Module     string         `json:"module,omitempty"`
	Failures   int            `json:"failures"`
	Oracles    map[string]int `json:"oracles"`
	Example    string         `json:"example"`
}

// ReportJSON is the machine-readable projection of a Report.
type ReportJSON struct {
	OracleFailures map[string]int `json:"oracle_failures"`
	Distinct       int            `json:"distinct"`
	Found          []FoundJSON    `json:"found"`
	KnownNumbers   []int          `json:"known_numbers"`
	NewSignatures  []string       `json:"new_signatures,omitempty"`
	Categories     map[string]int `json:"categories"`
	InConnector    int            `json:"in_connector"`
	Generic        int            `json:"generic"`
}

// JSON projects the report into its machine-readable shape.
func (r *Report) JSON() ReportJSON {
	out := ReportJSON{
		OracleFailures: map[string]int{},
		Distinct:       len(r.Found),
		Found:          make([]FoundJSON, 0, len(r.Found)),
		KnownNumbers:   r.DistinctKnown(),
		NewSignatures:  r.UnknownSignatures(),
		Categories:     map[string]int{},
	}
	for _, o := range []csi.Oracle{csi.OracleWriteRead, csi.OracleErrorHandling, csi.OracleDifferential} {
		out.OracleFailures[o.String()] = r.ByOracle[o]
	}
	// The skew oracle only exists on version-skew deployments; emitting
	// it conditionally keeps single-version report bytes (and therefore
	// every pre-version content-addressed cache entry) unchanged.
	if n := r.ByOracle[csi.OracleVersionSkew]; n > 0 {
		out.OracleFailures[csi.OracleVersionSkew.String()] = n
	}
	for c, n := range r.CategoryCounts() {
		out.Categories[string(c)] = n
	}
	out.InConnector, out.Generic = r.ConnectorShare()
	for _, f := range r.Found {
		fj := FoundJSON{
			Signature: f.Signature,
			Failures:  len(f.Failures),
			Oracles:   map[string]int{},
			Example:   f.Example(),
		}
		if f.Known != nil {
			fj.Known = f.Known.Number
			fj.JIRA = f.Known.JIRA
			fj.Title = f.Known.Title
			fj.Module = f.Known.Module
			for _, c := range f.Known.Categories {
				fj.Categories = append(fj.Categories, string(c))
			}
		}
		for o, n := range f.Oracles {
			fj.Oracles[o.String()] = n
		}
		out.Found = append(out.Found, fj)
	}
	return out
}
