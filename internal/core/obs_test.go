package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/csi"
	"repro/internal/obs"
)

// TestRunWithTracerAttachesChains runs a traced harness pass and checks
// every failure carries a cross-system propagation chain reconstructed
// from its case's span subtree.
func TestRunWithTracerAttachesChains(t *testing.T) {
	inputs := subset(t, "char_short", "bool_invalid_yes", "ts_noon")
	tr := obs.NewTracer(nil)
	res, err := Run(inputs, RunOptions{Tracer: tr, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("subset produced no failures")
	}
	for _, f := range res.Failures {
		if f.Chain == "" {
			t.Fatalf("failure %s has no chain", f.Detail)
		}
		hops := tr.Chain(f.Case.Span)
		systems := obs.Systems(hops)
		if len(systems) < 2 {
			t.Errorf("chain for %s crosses %d systems, want >= 2: %s", f.Case.Describe(), len(systems), f.Chain)
		}
		// Causal order: the writing interface's engine leads the chain.
		if want := IfaceSystem(f.Case.Plan.Write); hops[0].System != want {
			t.Errorf("chain starts at %s, want %s: %s", hops[0].System, want, f.Chain)
		}
		if !strings.Contains(f.Chain, "→") {
			t.Errorf("chain not rendered with arrows: %q", f.Chain)
		}
	}
	// Per-case subtrees stay isolated under the parallel run: every
	// span in a case's subtree belongs to exactly that case's tree.
	for _, c := range res.Cases {
		if c.Span == nil {
			t.Fatal("case has no span")
		}
	}
}

// TestRunMetrics checks the acceptance arithmetic: the per-oracle case
// counts partition the total, and failure counters match the report.
func TestRunMetrics(t *testing.T) {
	inputs := subset(t, "char_short", "bool_invalid_yes", "ts_noon")
	reg := obs.NewRegistry()
	res, err := Run(inputs, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("metrics are not valid Prometheus text: %v", err)
	}
	total := got["crosstest_cases_total"]
	if total != float64(len(res.Cases)) {
		t.Errorf("crosstest_cases_total = %v, want %d", total, len(res.Cases))
	}
	wr := got[`crosstest_oracle_cases_total{oracle="wr"}`]
	eh := got[`crosstest_oracle_cases_total{oracle="eh"}`]
	if wr+eh != total {
		t.Errorf("oracle case counts %v + %v != total %v", wr, eh, total)
	}
	for _, o := range []csi.Oracle{csi.OracleWriteRead, csi.OracleErrorHandling, csi.OracleDifferential} {
		key := `crosstest_oracle_failures_total{oracle="` + o.String() + `"}`
		if got[key] != float64(res.Report.ByOracle[o]) {
			t.Errorf("%s = %v, want %d", key, got[key], res.Report.ByOracle[o])
		}
	}
	if got["crosstest_distinct_discrepancies"] != float64(len(res.Report.Found)) {
		t.Errorf("distinct discrepancies gauge = %v, want %d",
			got["crosstest_distinct_discrepancies"], len(res.Report.Found))
	}
	if got[`crosstest_case_duration_ms_count{family="ss"}`] == 0 {
		t.Error("no duration observations for family ss")
	}
}
