package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/csi"
	"repro/internal/inject"
)

// Found is one distinct discrepancy discovered by a run: a failure
// cluster mapped (when possible) onto the registry of known issues.
type Found struct {
	Signature string
	Known     *inject.Discrepancy // nil for signatures outside the registry
	Failures  []Failure
	Oracles   map[csi.Oracle]int
}

// Example returns a representative failure detail.
func (f *Found) Example() string {
	if len(f.Failures) == 0 {
		return ""
	}
	return f.Failures[0].Case.Describe() + ": " + f.Failures[0].Detail
}

// Report clusters a run's failures into distinct discrepancies.
type Report struct {
	Found    []Found
	ByOracle map[csi.Oracle]int
}

func buildReport(failures []Failure) *Report {
	clusters := map[string]*Found{}
	bySig := inject.BySignature()
	byOracle := map[csi.Oracle]int{}
	for _, f := range failures {
		byOracle[f.Oracle]++
		c, ok := clusters[f.Signature]
		if !ok {
			c = &Found{Signature: f.Signature, Oracles: map[csi.Oracle]int{}}
			if d, known := bySig[f.Signature]; known {
				dd := d
				c.Known = &dd
			}
			clusters[f.Signature] = c
		}
		c.Failures = append(c.Failures, f)
		c.Oracles[f.Oracle]++
	}
	report := &Report{ByOracle: byOracle}
	for _, c := range clusters {
		report.Found = append(report.Found, *c)
	}
	sort.Slice(report.Found, func(i, j int) bool {
		a, b := report.Found[i], report.Found[j]
		switch {
		case a.Known != nil && b.Known != nil:
			return a.Known.Number < b.Known.Number
		case a.Known != nil:
			return true
		case b.Known != nil:
			return false
		default:
			return a.Signature < b.Signature
		}
	})
	return report
}

// DistinctKnown returns the registry numbers of the known discrepancies
// the run exposed.
func (r *Report) DistinctKnown() []int {
	var out []int
	for _, f := range r.Found {
		if f.Known != nil {
			out = append(out, f.Known.Number)
		}
	}
	sort.Ints(out)
	return out
}

// UnknownSignatures returns clusters that did not map to the registry —
// candidate new discrepancies.
func (r *Report) UnknownSignatures() []string {
	var out []string
	for _, f := range r.Found {
		if f.Known == nil {
			out = append(out, f.Signature)
		}
	}
	return out
}

// CategoryCounts tallies §8.2 category membership over the found known
// discrepancies.
func (r *Report) CategoryCounts() map[inject.Category]int {
	return inject.CategoryCounts(r.DistinctKnown())
}

// ConnectorShare reports how many of the found discrepancies live in
// dedicated connector modules versus generic engine code — Finding
// 13/14's observation that connectors are a small but failure-dense
// starting point for CSI testing.
func (r *Report) ConnectorShare() (inConnector, generic int) {
	for _, f := range r.Found {
		if f.Known == nil {
			continue
		}
		if f.Known.InConnector {
			inConnector++
		} else {
			generic++
		}
	}
	return inConnector, generic
}

// Render produces the human-readable report: the per-oracle failure
// totals, the distinct discrepancies with their JIRA ids and category
// labels, and the category tallies of §8.2.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-system testing report (Spark-Hive data plane)\n")
	fmt.Fprintf(&b, "====================================================\n\n")
	fmt.Fprintf(&b, "Oracle failures: wr=%d eh=%d difft=%d\n\n",
		r.ByOracle[csi.OracleWriteRead], r.ByOracle[csi.OracleErrorHandling], r.ByOracle[csi.OracleDifferential])
	fmt.Fprintf(&b, "Distinct discrepancies: %d\n\n", len(r.Found))
	for _, f := range r.Found {
		if f.Known != nil {
			id := f.Known.JIRA
			if id == "" {
				id = "(unreported)"
			}
			fmt.Fprintf(&b, "#%-2d %-12s %s\n", f.Known.Number, id, f.Known.Title)
			if len(f.Known.Categories) > 0 {
				cats := make([]string, len(f.Known.Categories))
				for i, c := range f.Known.Categories {
					cats[i] = string(c)
				}
				fmt.Fprintf(&b, "    categories: %s\n", strings.Join(cats, ", "))
			}
			if len(f.Known.FixConf) > 0 {
				keys := make([]string, 0, len(f.Known.FixConf))
				for k := range f.Known.FixConf {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, "    resolved by: %s=%s\n", k, f.Known.FixConf[k])
				}
			}
		} else {
			fmt.Fprintf(&b, "??  %-12s (not in registry)\n", f.Signature)
		}
		if f.Known != nil && f.Known.Module != "" {
			fmt.Fprintf(&b, "    module: %s\n", f.Known.Module)
		}
		fmt.Fprintf(&b, "    failures: %d (wr=%d eh=%d difft=%d)\n", len(f.Failures),
			f.Oracles[csi.OracleWriteRead], f.Oracles[csi.OracleErrorHandling], f.Oracles[csi.OracleDifferential])
		fmt.Fprintf(&b, "    example: %s\n\n", f.Example())
	}
	inConn, generic := r.ConnectorShare()
	fmt.Fprintf(&b, "Module locality (Finding 13/14): %d in dedicated connectors, %d in generic engine code\n\n", inConn, generic)
	fmt.Fprintf(&b, "Category tallies (paper: 2/2/5/7/8):\n")
	counts := r.CategoryCounts()
	for _, c := range inject.Categories() {
		fmt.Fprintf(&b, "  %-36s %d/%d\n", c, counts[c], inject.PaperCategoryCounts[c])
	}
	return b.String()
}
