package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/hivesim"
	"repro/internal/serde"
	"repro/internal/sparksim"
	"repro/internal/sqlval"
)

// classifyError maps an engine error onto a discrepancy signature. The
// signature is the clustering key: distinct root causes get distinct
// signatures, and every failure with the same signature is the same
// discrepancy observed through a different input or interface pair.
func classifyError(err error) string {
	var ae *sparksim.AvroUnavailableError
	if errors.As(err, &ae) {
		return "avro-unavailable"
	}
	var ise *sparksim.IncompatibleSchemaError
	if errors.As(err, &ise) {
		return "avro-incompatible-schema"
	}
	var sde *hivesim.SerDeError
	if errors.As(err, &sde) {
		return "legacy-binary-decimal"
	}
	var ue *serde.UnsupportedError
	if errors.As(err, &ue) {
		return "avro-map-key"
	}
	var ce *sqlval.CastError
	if errors.As(err, &ce) {
		return classifyCast(ce)
	}
	// Unrecognized errors cluster by their leading token so genuinely
	// new failure modes remain visible instead of merging.
	msg := err.Error()
	if i := strings.IndexByte(msg, ':'); i > 0 {
		msg = msg[:i]
	}
	return "error-" + strings.ReplaceAll(msg, " ", "-")
}

func classifyCast(ce *sqlval.CastError) string {
	switch ce.Code {
	case "EXCEED_CHAR_LENGTH", "EXCEED_VARCHAR_LENGTH":
		return "insert-charlength"
	}
	return classifyTargetFamily(ce.To)
}

// classifyTargetFamily names the insert-coercion discrepancy family for
// a destination type: the engines' divergent coercion of data into this
// family is one discrepancy regardless of how the bad value was spelled.
func classifyTargetFamily(t sqlval.Type) string {
	switch t.Kind {
	case sqlval.KindDecimal:
		return "insert-decimal-range"
	case sqlval.KindTinyInt, sqlval.KindSmallInt:
		return "insert-smallint-range"
	case sqlval.KindInt, sqlval.KindBigInt:
		return "insert-int-range"
	case sqlval.KindFloat, sqlval.KindDouble:
		return "insert-float-invalid"
	case sqlval.KindDate, sqlval.KindTimestamp:
		return "insert-datetime-invalid"
	case sqlval.KindBoolean:
		return "insert-boolean-invalid"
	case sqlval.KindChar, sqlval.KindVarchar:
		return "insert-charlength"
	default:
		return fmt.Sprintf("insert-invalid-%s", strings.ToLower(t.Kind.String()))
	}
}

// classifyValueDiff names the discrepancy behind two successfully-read
// values that should have been equal.
func classifyValueDiff(a, b sqlval.Value) string {
	ka, kb := a.Type.Kind, b.Type.Kind
	// One widened integral (the Avro INT promotion).
	if a.Type.IsIntegral() && b.Type.IsIntegral() && ka != kb {
		return "integral-widening"
	}
	// CHAR padding: contents equal modulo trailing spaces.
	if a.Type.IsCharacter() && b.Type.IsCharacter() && !a.Null && !b.Null {
		if strings.TrimRight(a.S, " ") == strings.TrimRight(b.S, " ") && a.S != b.S {
			return "char-padding"
		}
	}
	if ka == sqlval.KindDate && kb == sqlval.KindDate {
		return "date-rebase"
	}
	if ka == sqlval.KindTimestamp && kb == sqlval.KindTimestamp {
		return "timestamp-zone"
	}
	if ka == sqlval.KindStruct || kb == sqlval.KindStruct {
		if a.Null != b.Null {
			return "struct-null"
		}
	}
	// A stored value versus a silent NULL points at the insert-coercion
	// family of the column.
	if a.Null != b.Null {
		t := a.Type
		if a.Null {
			t = b.Type
		}
		return classifyTargetFamily(t)
	}
	return fmt.Sprintf("value-mismatch-%s", strings.ToLower(ka.String()))
}

// outcomeKey summarizes a case for differential comparison: the error
// signature when the case failed, otherwise the read value and its
// type. Warnings are deliberately excluded — the §8.1 oracles compare
// data and behaviour, and warnings are surfaced in the report instead.
func outcomeKey(c *CaseResult) string {
	if c.Write.Err != nil {
		return "werr:" + classifyError(c.Write.Err)
	}
	if c.Read.Err != nil {
		return "rerr:" + classifyError(c.Read.Err)
	}
	if !c.Read.HasRow {
		return "norow"
	}
	v := c.Read.Value
	return fmt.Sprintf("ok:%s:%s", v.Type.Kind, v.String())
}
