package core

import (
	"fmt"
	"sort"
	"strings"
)

// Configuration sweeping implements the §6.2.1 implication —
// "cross-system configuration testing, i.e., cross-testing multiple
// systems under deployment (or to-be-deployed) configurations" — as a
// first-class mode: the same corpus is run under a matrix of candidate
// deployment configurations and the per-configuration discrepancy
// profiles are compared.

// SweepCell is one configuration's outcome.
type SweepCell struct {
	Name     string
	Conf     map[string]string
	Distinct []int
	Failures int
	// Resolved lists discrepancies found under the baseline (first)
	// configuration but absent here.
	Resolved []int
	// Introduced lists discrepancies absent under the baseline but
	// present here — configuration changes can create discrepancies,
	// not only remove them.
	Introduced []int
}

// ConfigSweep runs the corpus under each configuration (the first entry
// is the baseline) and diffs the discrepancy profiles. opts supplies
// the execution context (cancellation, parallelism, observability);
// its SparkConf is replaced per cell.
func ConfigSweep(inputs []Input, names []string, configs map[string]map[string]string, opts RunOptions) ([]SweepCell, error) {
	var cells []SweepCell
	var baseline map[int]bool
	for i, name := range names {
		conf, ok := configs[name]
		if !ok && name != "default" {
			return nil, fmt.Errorf("core: unknown configuration %q", name)
		}
		cellOpts := opts
		cellOpts.SparkConf = conf
		res, err := Run(inputs, cellOpts)
		if err != nil {
			return nil, err
		}
		cell := SweepCell{
			Name:     name,
			Conf:     conf,
			Distinct: res.Report.DistinctKnown(),
			Failures: len(res.Failures),
		}
		present := map[int]bool{}
		for _, n := range cell.Distinct {
			present[n] = true
		}
		if i == 0 {
			baseline = present
		} else {
			for n := range baseline {
				if !present[n] {
					cell.Resolved = append(cell.Resolved, n)
				}
			}
			for n := range present {
				if !baseline[n] {
					cell.Introduced = append(cell.Introduced, n)
				}
			}
			sort.Ints(cell.Resolved)
			sort.Ints(cell.Introduced)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RenderSweep formats the sweep as an aligned table.
func RenderSweep(cells []SweepCell) string {
	var b strings.Builder
	b.WriteString("Configuration sweep (cross-testing under deployment configurations)\n")
	fmt.Fprintf(&b, "%-26s %-9s %-9s %-18s %s\n", "configuration", "distinct", "failures", "resolved-vs-base", "introduced")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-26s %-9d %-9d %-18s %s\n",
			c.Name, len(c.Distinct), c.Failures, intsOrDash(c.Resolved), intsOrDash(c.Introduced))
	}
	return b.String()
}

func intsOrDash(s []int) string {
	if len(s) == 0 {
		return "-"
	}
	parts := make([]string, len(s))
	for i, n := range s {
		parts[i] = fmt.Sprintf("#%d", n)
	}
	return strings.Join(parts, ",")
}
