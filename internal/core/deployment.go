package core

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sparksim"
	"repro/internal/sqlval"
	"repro/internal/versions"
)

// Iface names one of the three write/read interfaces of Figure 6.
type Iface string

// The three interfaces.
const (
	SparkSQL  Iface = "sparksql"
	DataFrame Iface = "dataframe"
	HiveQL    Iface = "hiveql"
)

// ColumnName is the column every test table declares. The mixed case is
// deliberate: it exposes the case-preservation discrepancies.
const ColumnName = "TestCol"

// Deployment is a co-deployed Spark+Hive pair sharing one warehouse and
// one metastore — the system under test. A skew deployment additionally
// carries a second, differently-versioned engine pair over the same
// warehouse and metastore: writes run on the writer stack and reads on
// the reader stack, modeling the paper's upgrade scenario where data
// written before an upgrade is read after it (§5, upgrade triggers).
type Deployment struct {
	FS    *hdfssim.FileSystem
	MS    *hivesim.Metastore
	Spark *sparksim.Session
	Hive  *hivesim.Hive
	// ReadSpark/ReadHive are the reader-stack engines. In an unskewed
	// deployment they alias Spark/Hive, so every existing call path
	// behaves exactly as before the version axis existed.
	ReadSpark *sparksim.Session
	ReadHive  *hivesim.Hive
	// Pair is the writer→reader version pair (nil when unversioned).
	Pair *versions.Pair
}

// NewDeployment stands up a fresh co-deployment.
func NewDeployment() *Deployment {
	fs := hdfssim.New(nil)
	ms := hivesim.NewMetastore()
	spark := sparksim.NewSession(fs, ms)
	hive := hivesim.New(fs, ms)
	return &Deployment{
		FS:    fs,
		MS:    ms,
		Spark: spark,
		Hive:  hive,
		// Same engines on both sides: no skew.
		ReadSpark: spark,
		ReadHive:  hive,
	}
}

// NewSkewDeployment stands up two engine stacks — writer and reader —
// over one shared warehouse and metastore, each pinned to its side's
// version profiles. The pair must validate; unknown profiles are
// rejected, never normalized.
func NewSkewDeployment(pair versions.Pair) (*Deployment, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	fs := hdfssim.New(nil)
	ms := hivesim.NewMetastore()
	d := &Deployment{
		FS:        fs,
		MS:        ms,
		Spark:     sparksim.NewSession(fs, ms),
		Hive:      hivesim.New(fs, ms),
		ReadSpark: sparksim.NewSession(fs, ms),
		ReadHive:  hivesim.New(fs, ms),
		Pair:      &pair,
	}
	if err := d.Spark.ApplyVersionProfile(pair.Writer.Spark); err != nil {
		return nil, err
	}
	if err := d.Hive.ApplyVersionProfile(pair.Writer.Hive); err != nil {
		return nil, err
	}
	if err := d.ReadSpark.ApplyVersionProfile(pair.Reader.Spark); err != nil {
		return nil, err
	}
	if err := d.ReadHive.ApplyVersionProfile(pair.Reader.Hive); err != nil {
		return nil, err
	}
	return d, nil
}

// Skewed reports whether the deployment runs distinct writer and reader
// stacks.
func (d *Deployment) Skewed() bool { return d.ReadSpark != d.Spark || d.ReadHive != d.Hive }

// SetConf applies deployment configuration overrides to every Spark
// session — overrides beat version-profile defaults, exactly as
// deployment configuration beats shipped defaults.
func (d *Deployment) SetConf(conf map[string]string) {
	for k, v := range conf {
		d.Spark.Conf().Set(k, v)
		if d.ReadSpark != d.Spark {
			d.ReadSpark.Conf().Set(k, v)
		}
	}
}

// WriteOutcome records a write attempt through one interface.
type WriteOutcome struct {
	Err      error
	Warnings []string
}

// ReadOutcome records a read attempt through one interface.
type ReadOutcome struct {
	Err      error
	Warnings []string
	HasRow   bool
	Value    sqlval.Value
	Column   string
}

// SetTracer attaches an observability tracer to every engine; spans
// are threaded per call through WriteSpan/ReadSpan, so concurrent
// harness workers sharing the deployment stay race-free.
func (d *Deployment) SetTracer(tr *obs.Tracer) {
	d.Spark.SetTracer(tr)
	d.Hive.SetTracer(tr)
	if d.ReadSpark != d.Spark {
		d.ReadSpark.SetTracer(tr)
	}
	if d.ReadHive != d.Hive {
		d.ReadHive.SetTracer(tr)
	}
}

// IfaceSystem maps an interface to the system that executes it.
func IfaceSystem(iface Iface) csi.System {
	if iface == HiveQL {
		return csi.Hive
	}
	return csi.Spark
}

// Write creates the table through the interface's native DDL path and
// inserts the input, on the writer stack.
func (d *Deployment) Write(iface Iface, table, format string, in Input) WriteOutcome {
	return d.WriteSpan(nil, iface, table, format, in)
}

// WriteSpan is Write under an explicit parent span: each engine call
// emits its span tree as a child of parent.
func (d *Deployment) WriteSpan(parent *obs.Span, iface Iface, table, format string, in Input) WriteOutcome {
	return writeVia(d.Spark, d.Hive, parent, iface, table, format, in)
}

// Read fetches the single test row through the interface, on the
// reader stack.
func (d *Deployment) Read(iface Iface, table string) ReadOutcome {
	return d.ReadSpan(nil, iface, table)
}

// ReadSpan is Read under an explicit parent span.
func (d *Deployment) ReadSpan(parent *obs.Span, iface Iface, table string) ReadOutcome {
	return readVia(d.ReadSpark, d.ReadHive, parent, iface, table)
}

// WriterReadSpan reads through the *writer* stack — the skew probe's
// control: in the writer's own deployment generation, what does the
// table read back as?
func (d *Deployment) WriterReadSpan(parent *obs.Span, iface Iface, table string) ReadOutcome {
	return readVia(d.Spark, d.Hive, parent, iface, table)
}

// ReaderWriteSpan writes through the *reader* stack — the skew probe's
// second control: had the upgraded (or downgraded) stack produced the
// table itself, what would it contain?
func (d *Deployment) ReaderWriteSpan(parent *obs.Span, iface Iface, table, format string, in Input) WriteOutcome {
	return writeVia(d.ReadSpark, d.ReadHive, parent, iface, table, format, in)
}

func writeVia(spark *sparksim.Session, hive *hivesim.Hive, parent *obs.Span, iface Iface, table, format string, in Input) WriteOutcome {
	switch iface {
	case SparkSQL:
		if _, err := spark.SQLSpan(parent, fmt.Sprintf("CREATE TABLE %s (%s %s) STORED AS %s", table, ColumnName, in.Type, format)); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := spark.SQLSpan(parent, fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, in.Literal))
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	case DataFrame:
		schema := serde.Schema{Columns: []serde.Column{{Name: ColumnName, Type: in.Type}}}
		df, err := spark.CreateDataFrame(schema, []sqlval.Row{{in.Value}})
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Err: df.SaveAsTableSpan(parent, table, format)}
	case HiveQL:
		if _, err := hive.ExecuteSpan(parent, fmt.Sprintf("CREATE TABLE %s (%s %s) STORED AS %s", table, ColumnName, in.Type, format)); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := hive.ExecuteSpan(parent, fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, in.Literal))
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	default:
		return WriteOutcome{Err: fmt.Errorf("core: unknown interface %q", iface)}
	}
}

func readVia(spark *sparksim.Session, hive *hivesim.Hive, parent *obs.Span, iface Iface, table string) ReadOutcome {
	switch iface {
	case SparkSQL:
		res, err := spark.SQLSpan(parent, fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			return ReadOutcome{Err: err}
		}
		return readOutcome(res.Columns, res.Rows, res.Warnings)
	case DataFrame:
		res, err := spark.TableSpan(parent, table)
		if err != nil {
			return ReadOutcome{Err: err}
		}
		return readOutcome(res.Columns, res.Rows, res.Warnings)
	case HiveQL:
		res, err := hive.ExecuteSpan(parent, fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			return ReadOutcome{Err: err}
		}
		return readOutcome(res.Columns, res.Rows, res.Warnings)
	default:
		return ReadOutcome{Err: fmt.Errorf("core: unknown interface %q", iface)}
	}
}

func readOutcome(cols []serde.Column, rows []sqlval.Row, warnings []string) ReadOutcome {
	out := ReadOutcome{Warnings: warnings}
	if len(cols) > 0 {
		out.Column = cols[0].Name
	}
	if len(rows) > 0 && len(rows[0]) > 0 {
		out.HasRow = true
		out.Value = rows[0][0]
	}
	return out
}
