package core

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sparksim"
	"repro/internal/sqlval"
)

// Iface names one of the three write/read interfaces of Figure 6.
type Iface string

// The three interfaces.
const (
	SparkSQL  Iface = "sparksql"
	DataFrame Iface = "dataframe"
	HiveQL    Iface = "hiveql"
)

// ColumnName is the column every test table declares. The mixed case is
// deliberate: it exposes the case-preservation discrepancies.
const ColumnName = "TestCol"

// Deployment is a co-deployed Spark+Hive pair sharing one warehouse and
// one metastore — the system under test.
type Deployment struct {
	FS    *hdfssim.FileSystem
	MS    *hivesim.Metastore
	Spark *sparksim.Session
	Hive  *hivesim.Hive
}

// NewDeployment stands up a fresh co-deployment.
func NewDeployment() *Deployment {
	fs := hdfssim.New(nil)
	ms := hivesim.NewMetastore()
	return &Deployment{
		FS:    fs,
		MS:    ms,
		Spark: sparksim.NewSession(fs, ms),
		Hive:  hivesim.New(fs, ms),
	}
}

// WriteOutcome records a write attempt through one interface.
type WriteOutcome struct {
	Err      error
	Warnings []string
}

// ReadOutcome records a read attempt through one interface.
type ReadOutcome struct {
	Err      error
	Warnings []string
	HasRow   bool
	Value    sqlval.Value
	Column   string
}

// SetTracer attaches an observability tracer to both engines; spans
// are threaded per call through WriteSpan/ReadSpan, so concurrent
// harness workers sharing the deployment stay race-free.
func (d *Deployment) SetTracer(tr *obs.Tracer) {
	d.Spark.SetTracer(tr)
	d.Hive.SetTracer(tr)
}

// IfaceSystem maps an interface to the system that executes it.
func IfaceSystem(iface Iface) csi.System {
	if iface == HiveQL {
		return csi.Hive
	}
	return csi.Spark
}

// Write creates the table through the interface's native DDL path and
// inserts the input.
func (d *Deployment) Write(iface Iface, table, format string, in Input) WriteOutcome {
	return d.WriteSpan(nil, iface, table, format, in)
}

// WriteSpan is Write under an explicit parent span: each engine call
// emits its span tree as a child of parent.
func (d *Deployment) WriteSpan(parent *obs.Span, iface Iface, table, format string, in Input) WriteOutcome {
	switch iface {
	case SparkSQL:
		if _, err := d.Spark.SQLSpan(parent, fmt.Sprintf("CREATE TABLE %s (%s %s) STORED AS %s", table, ColumnName, in.Type, format)); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := d.Spark.SQLSpan(parent, fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, in.Literal))
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	case DataFrame:
		schema := serde.Schema{Columns: []serde.Column{{Name: ColumnName, Type: in.Type}}}
		df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{{in.Value}})
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Err: df.SaveAsTableSpan(parent, table, format)}
	case HiveQL:
		if _, err := d.Hive.ExecuteSpan(parent, fmt.Sprintf("CREATE TABLE %s (%s %s) STORED AS %s", table, ColumnName, in.Type, format)); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := d.Hive.ExecuteSpan(parent, fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, in.Literal))
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	default:
		return WriteOutcome{Err: fmt.Errorf("core: unknown interface %q", iface)}
	}
}

// Read fetches the single test row through the interface.
func (d *Deployment) Read(iface Iface, table string) ReadOutcome {
	return d.ReadSpan(nil, iface, table)
}

// ReadSpan is Read under an explicit parent span.
func (d *Deployment) ReadSpan(parent *obs.Span, iface Iface, table string) ReadOutcome {
	switch iface {
	case SparkSQL:
		res, err := d.Spark.SQLSpan(parent, fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			return ReadOutcome{Err: err}
		}
		return readOutcome(res.Columns, res.Rows, res.Warnings)
	case DataFrame:
		res, err := d.Spark.TableSpan(parent, table)
		if err != nil {
			return ReadOutcome{Err: err}
		}
		return readOutcome(res.Columns, res.Rows, res.Warnings)
	case HiveQL:
		res, err := d.Hive.ExecuteSpan(parent, fmt.Sprintf("SELECT * FROM %s", table))
		if err != nil {
			return ReadOutcome{Err: err}
		}
		return readOutcome(res.Columns, res.Rows, res.Warnings)
	default:
		return ReadOutcome{Err: fmt.Errorf("core: unknown interface %q", iface)}
	}
}

func readOutcome(cols []serde.Column, rows []sqlval.Row, warnings []string) ReadOutcome {
	out := ReadOutcome{Warnings: warnings}
	if len(cols) > 0 {
		out.Column = cols[0].Name
	}
	if len(rows) > 0 && len(rows[0]) > 0 {
		out.HasRow = true
		out.Value = rows[0][0]
	}
	return out
}
