package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/versions"
)

// TestRegistrySignaturesRoundTrip drives the corpus through the harness
// and asserts, for every entry of both registries, that its classifier
// signatures round-trip: each signature maps back to exactly its entry
// through the signature index, and the classifier actually emits at
// least one of them, so no registry entry is dead weight the oracles
// can never confirm. The reverse direction is covered too — on the
// baseline deployment every emitted signature must resolve to a
// registry entry (an unmapped one is a candidate discrepancy, which the
// golden Figure-6 pin would already flag).
func TestRegistrySignaturesRoundTrip(t *testing.T) {
	res, err := Run(corpus(t), RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	emitted := map[string]bool{}
	for _, f := range res.Failures {
		emitted[f.Signature] = true
	}
	bySig := inject.BySignature()
	for sig := range emitted {
		if _, ok := bySig[sig]; !ok {
			t.Errorf("classifier emitted signature %q that maps to no registry entry", sig)
		}
	}
	validCat := map[inject.Category]bool{}
	for _, c := range inject.Categories() {
		validCat[c] = true
	}
	for _, d := range inject.Registry() {
		d := d
		t.Run(fmt.Sprintf("d%02d", d.Number), func(t *testing.T) {
			if d.Title == "" {
				t.Error("entry has no title")
			}
			if len(d.Signatures) == 0 {
				t.Fatal("entry declares no classifier signatures")
			}
			// Categories may be empty (the paper's 2/2/5/7/8 tallies are
			// pinned elsewhere and fully allocated), but any present must
			// be one of the five §8.2 categories.
			for _, c := range d.Categories {
				if !validCat[c] {
					t.Errorf("unknown category %q", c)
				}
			}
			hit := false
			for _, sig := range d.Signatures {
				owner, ok := bySig[sig]
				if !ok || owner.Number != d.Number {
					t.Errorf("signature %q maps to entry #%d, want #%d", sig, owner.Number, d.Number)
				}
				if emitted[sig] {
					hit = true
				}
			}
			if !hit {
				t.Errorf("classifier never emitted any of %v over the corpus", d.Signatures)
			}
			checkBoundary(t, "SinceVersion", d.SinceVersion)
			checkBoundary(t, "FixedIn", d.FixedIn)
			if (d.SinceVersion != "" || d.FixedIn != "") && d.VersionNote == "" {
				t.Error("version boundary without a JIRA/migration-note anchor")
			}
		})
	}

	// The skew registry round-trips through its own index the same way;
	// its signatures are confirmed against live runs by the golden skew
	// matrix, so here only the mapping and annotations are checked.
	skewBySig := inject.SkewBySignature()
	seenID := map[string]bool{}
	for _, d := range inject.SkewRegistry() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			if seenID[d.ID] {
				t.Fatalf("duplicate skew id %s", d.ID)
			}
			seenID[d.ID] = true
			if d.Anchor == "" || d.Title == "" {
				t.Error("skew entry missing anchor or title")
			}
			checkBoundary(t, "Boundary", d.Boundary)
			if d.Boundary == "" {
				t.Error("skew entry has no version boundary")
			}
			if len(d.Signatures) == 0 {
				t.Fatal("skew entry declares no signatures")
			}
			for _, sig := range d.Signatures {
				if owner := skewBySig[sig]; owner.ID != d.ID {
					t.Errorf("skew signature %q maps to %s, want %s", sig, owner.ID, d.ID)
				}
			}
			for _, c := range d.Categories {
				if !validCat[c] {
					t.Errorf("unknown category %q", c)
				}
			}
		})
	}
}

// checkBoundary validates a "system:version" boundary annotation: the
// system is one of the two modeled engines and the version is a plain
// dotted number ordered sensibly against the modeled profiles.
func checkBoundary(t *testing.T, field, boundary string) {
	t.Helper()
	if boundary == "" {
		return
	}
	system, version, ok := strings.Cut(boundary, ":")
	if !ok {
		t.Errorf("%s %q is not system:version", field, boundary)
		return
	}
	if system != "spark" && system != "hive" {
		t.Errorf("%s names unknown system %q", field, system)
	}
	for _, r := range version {
		if (r < '0' || r > '9') && r != '.' {
			t.Errorf("%s version %q is not a dotted number", field, version)
			return
		}
	}
	// A boundary below every modeled version (or above every one) can
	// never be straddled by a pair and would be untestable.
	low, high := "0", "999.0.0"
	if versions.Compare(version, low) <= 0 || versions.Compare(version, high) >= 0 {
		t.Errorf("%s version %q is outside any plausible range", field, version)
	}
}
