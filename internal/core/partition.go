package core

// The partition oracle's classification bridge: partition-campaign
// findings (internal/partition) enter the same failure vocabulary as
// the data-plane oracles, so crossd streams, reports, and the flight
// recorder treat a CoFI finding like any other oracle violation.

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/inject"
)

// PartitionFailure lifts one partition-campaign finding into the
// harness failure vocabulary. Partition failures have no test case —
// they come from simulated control-plane timelines, not corpus inputs —
// so Case and Peer stay nil and consumers must not dereference them
// (the crossd stream encoder already guards this).
func PartitionFailure(scenario, signature, detail string) Failure {
	return Failure{
		Oracle:    csi.OraclePartition,
		Signature: signature,
		Detail:    fmt.Sprintf("[%s] %s", scenario, detail),
	}
}

// ClassifyPartition maps a partition signature onto its P* registry
// entry. ok=false marks a signature no registry entry claims — a
// genuinely new partition finding.
func ClassifyPartition(signature string) (inject.PartitionDiscrepancy, bool) {
	d, ok := inject.PartitionBySignature()[signature]
	return d, ok
}
