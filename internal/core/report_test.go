package core

import (
	"strings"
	"testing"

	"repro/internal/csi"
	"repro/internal/inject"
)

// The report helpers were previously only exercised through the golden
// Figure-6 pin; these tests pin their behaviour on the two boundary
// shapes — no failures at all, and exactly one failure.

func emptyReport() *Report { return buildReport(nil) }

func singleFailureReport(t *testing.T) *Report {
	t.Helper()
	in, err := MakeInput(1, "char_pad", "CHAR(4)", "'ab'", true)
	if err != nil {
		t.Fatal(err)
	}
	c := &CaseResult{Input: &in, Plan: Plans()[0], Format: "orc", Table: "t_single"}
	return buildReport([]Failure{{
		Oracle:    csi.OracleWriteRead,
		Case:      c,
		Signature: "char-padding", // registry #8: TypeViolation + CustomConfig, generic module
		Detail:    "wrote 'ab  ', read 'ab'",
	}})
}

func TestReportEmpty(t *testing.T) {
	r := emptyReport()
	if len(r.Found) != 0 {
		t.Fatalf("empty report has %d found clusters", len(r.Found))
	}
	if got := r.CategoryCounts(); len(got) != 0 {
		t.Errorf("CategoryCounts on empty report = %v, want empty", got)
	}
	inConn, generic := r.ConnectorShare()
	if inConn != 0 || generic != 0 {
		t.Errorf("ConnectorShare on empty report = %d/%d, want 0/0", inConn, generic)
	}
	text := r.Render()
	for _, want := range []string{
		"Distinct discrepancies: 0",
		"Oracle failures: wr=0 eh=0 difft=0",
		"0 in dedicated connectors, 0 in generic engine code",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("empty Render missing %q:\n%s", want, text)
		}
	}
}

func TestReportSingleFailure(t *testing.T) {
	r := singleFailureReport(t)
	if len(r.Found) != 1 {
		t.Fatalf("found %d clusters, want 1", len(r.Found))
	}
	f := r.Found[0]
	if f.Known == nil || f.Known.Number != 8 {
		t.Fatalf("char-padding did not map to registry #8: %+v", f.Known)
	}
	counts := r.CategoryCounts()
	if counts[inject.TypeViolation] != 1 || counts[inject.CustomConfig] != 1 {
		t.Errorf("CategoryCounts = %v, want type-violation=1 custom-config=1", counts)
	}
	inConn, generic := r.ConnectorShare()
	if inConn != 0 || generic != 1 {
		t.Errorf("ConnectorShare = %d/%d, want 0 connector / 1 generic", inConn, generic)
	}
	text := r.Render()
	for _, want := range []string{
		"Oracle failures: wr=1 eh=0 difft=0",
		"Distinct discrepancies: 1",
		"#8  SPARK-40616",
		"resolved by: spark.sql.readSideCharPadding=true",
		"example: " + f.Example(),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("single-failure Render missing %q:\n%s", want, text)
		}
	}
}

func TestReportJSONShape(t *testing.T) {
	j := singleFailureReport(t).JSON()
	if j.Distinct != 1 || len(j.Found) != 1 {
		t.Fatalf("JSON distinct=%d found=%d, want 1/1", j.Distinct, len(j.Found))
	}
	fj := j.Found[0]
	if fj.Signature != "char-padding" || fj.Known != 8 || fj.JIRA != "SPARK-40616" || fj.Failures != 1 {
		t.Errorf("FoundJSON = %+v", fj)
	}
	if j.OracleFailures["wr"] != 1 || j.OracleFailures["eh"] != 0 || j.OracleFailures["difft"] != 0 {
		t.Errorf("OracleFailures = %v", j.OracleFailures)
	}
	if len(j.KnownNumbers) != 1 || j.KnownNumbers[0] != 8 || len(j.NewSignatures) != 0 {
		t.Errorf("known=%v new=%v", j.KnownNumbers, j.NewSignatures)
	}

	ej := emptyReport().JSON()
	if ej.Distinct != 0 || len(ej.Found) != 0 || ej.OracleFailures["wr"] != 0 {
		t.Errorf("empty JSON = %+v", ej)
	}
}
