package core
