package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/versions"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// charCorpus is the CHAR-prefixed corpus slice: small enough to run in
// milliseconds, rich enough to fire all three oracles (and, skewed, the
// skew oracle).
func charCorpus(t *testing.T) []Input {
	t.Helper()
	var out []Input
	for _, in := range corpus(t) {
		if strings.HasPrefix(in.Name, "char") {
			out = append(out, in)
		}
	}
	if len(out) == 0 {
		t.Fatal("no char-prefixed corpus inputs")
	}
	return out
}

func checkGolden(t *testing.T, name string, rj ReportJSON) {
	t.Helper()
	got, err := json.MarshalIndent(rj, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("ReportJSON bytes diverge from %s (regenerate with -update if intentional):\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestReportJSONGoldenBytes pins the machine-readable report encoding
// byte for byte. crossd content-addresses rendered results and serves
// cached bytes verbatim, so an encoding change — reordered fields, a
// new unconditional key, different map ordering — silently invalidates
// every cached report; this test makes such a change an explicit,
// reviewed golden-file diff instead.
func TestReportJSONGoldenBytes(t *testing.T) {
	res, err := Run(charCorpus(t), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_char.json", res.Report.JSON())
}

// The skewed variant additionally pins the conditional "skew" oracle
// key: present (with its count) on a skewed run, absent above — the
// single-version encoding must never grow it.
func TestReportJSONGoldenBytesSkewed(t *testing.T) {
	pair, err := versions.ParsePair("2.3.0/2.3.9->3.2.1/3.1.2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSkew(charCorpus(t), pair, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rj := res.Report.JSON()
	if _, ok := rj.OracleFailures["skew"]; !ok {
		t.Error("skewed run's report JSON carries no skew oracle count")
	}
	checkGolden(t, "report_char_skew.json", rj)
}
