package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Content-addressing for job specifications: a spec's hash is the
// sha256 of its canonical JSON encoding. encoding/json sorts map keys
// and emits struct fields in declaration order, so two specs with
// equal content hash identically regardless of how they were built —
// the property crossd's result cache relies on to serve a resubmitted
// job without re-executing it.

// HashSpec returns the hex sha256 of v's canonical JSON encoding.
func HashSpec(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("core: hashing spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// HashBytes returns the hex sha256 of raw bytes (the fingerprint used
// for rendered reports and corpus files).
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
