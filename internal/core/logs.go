package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/csi"
)

// Oracle failure logs, in the layout of the original artifact: one
// JSON file per (plan family, oracle) — ss_difft_failed.json,
// sh_wr_failed.json, and so on — each entry naming the input, the
// write/read interfaces, and the backend format that failed.

// LogEntry is one failure in an oracle log.
type LogEntry struct {
	Index     int    `json:"index"`
	Input     string `json:"input"`
	Literal   string `json:"literal"`
	Type      string `json:"type"`
	Plan      string `json:"plan"`
	Format    string `json:"format"`
	Oracle    string `json:"oracle"`
	Signature string `json:"signature"`
	Detail    string `json:"detail"`
	Peer      string `json:"peer,omitempty"`
}

// OracleLogs groups the run's failures by "<family>_<oracle>", sorted
// by input id then plan then format.
func (r *RunResult) OracleLogs() map[string][]LogEntry {
	out := map[string][]LogEntry{}
	for _, f := range r.Failures {
		key := fmt.Sprintf("%s_%s", f.Case.Plan.Family, f.Oracle)
		entry := LogEntry{
			Index:     f.Case.Input.ID,
			Input:     f.Case.Input.Name,
			Literal:   f.Case.Input.Literal,
			Type:      f.Case.Input.Type.String(),
			Plan:      f.Case.Plan.Name(),
			Format:    f.Case.Format,
			Oracle:    f.Oracle.String(),
			Signature: f.Signature,
			Detail:    f.Detail,
		}
		if f.Peer != nil {
			entry.Peer = f.Peer.Describe()
		}
		out[key] = append(out[key], entry)
	}
	for key := range out {
		entries := out[key]
		sort.Slice(entries, func(i, j int) bool {
			a, b := entries[i], entries[j]
			if a.Index != b.Index {
				return a.Index < b.Index
			}
			if a.Plan != b.Plan {
				return a.Plan < b.Plan
			}
			return a.Format < b.Format
		})
	}
	return out
}

// WriteOracleLogs writes each group to dir as
// "<family>_<oracle>_failed.json", creating dir if needed. It returns
// the file names written, sorted.
func (r *RunResult) WriteOracleLogs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	logs := r.OracleLogs()
	names := make([]string, 0, len(logs))
	for key := range logs {
		names = append(names, key+"_failed.json")
	}
	sort.Strings(names)
	for key, entries := range logs {
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, key+"_failed.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// oracleNames lists the log keys a full run can produce.
func oracleNames() []string {
	var out []string
	for _, fam := range []string{"ss", "sh", "hs"} {
		for _, o := range []csi.Oracle{csi.OracleWriteRead, csi.OracleErrorHandling, csi.OracleDifferential} {
			out = append(out, fmt.Sprintf("%s_%s", fam, o))
		}
	}
	return out
}
