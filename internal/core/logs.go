package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/csi"
)

// Oracle failure logs, in the layout of the original artifact: one
// JSON file per (plan family, oracle) — ss_difft_failed.json,
// sh_wr_failed.json, and so on — each entry naming the input, the
// write/read interfaces, and the backend format that failed.

// LogEntry is one failure in an oracle log.
type LogEntry struct {
	Index     int    `json:"index"`
	Input     string `json:"input"`
	Literal   string `json:"literal"`
	Type      string `json:"type"`
	Plan      string `json:"plan"`
	Format    string `json:"format"`
	Oracle    string `json:"oracle"`
	Signature string `json:"signature"`
	Detail    string `json:"detail"`
	Peer      string `json:"peer,omitempty"`
}

// OracleLogs groups the run's failures by "<family>_<oracle>", sorted
// by input id then plan then format.
func (r *RunResult) OracleLogs() map[string][]LogEntry {
	out := map[string][]LogEntry{}
	for _, f := range r.Failures {
		key := fmt.Sprintf("%s_%s", f.Case.Plan.Family, f.Oracle)
		entry := LogEntry{
			Index:     f.Case.Input.ID,
			Input:     f.Case.Input.Name,
			Literal:   f.Case.Input.Literal,
			Type:      f.Case.Input.Type.String(),
			Plan:      f.Case.Plan.Name(),
			Format:    f.Case.Format,
			Oracle:    f.Oracle.String(),
			Signature: f.Signature,
			Detail:    f.Detail,
		}
		if f.Peer != nil {
			entry.Peer = f.Peer.Describe()
		}
		out[key] = append(out[key], entry)
	}
	for key := range out {
		entries := out[key]
		sort.Slice(entries, func(i, j int) bool {
			a, b := entries[i], entries[j]
			if a.Index != b.Index {
				return a.Index < b.Index
			}
			if a.Plan != b.Plan {
				return a.Plan < b.Plan
			}
			return a.Format < b.Format
		})
	}
	return out
}

// ErrLogDirIsFile reports a WriteOracleLogs destination that exists as
// a regular file instead of a directory.
var ErrLogDirIsFile = fmt.Errorf("core: oracle log dir exists and is not a directory")

// WriteOracleLogs writes each group to dir as
// "<family>_<oracle>_failed.json", creating dir if needed. Every log
// key a full run can produce gets a file — groups with zero failures
// get an empty JSON array — so consumers can distinguish "oracle ran
// clean" from "oracle never ran". It returns the file names written,
// sorted.
func (r *RunResult) WriteOracleLogs(dir string) ([]string, error) {
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrLogDirIsFile, dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	logs := r.OracleLogs()
	keys := oracleNames()
	for key := range logs {
		if !containsString(keys, key) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	names := make([]string, 0, len(keys))
	for _, key := range keys {
		entries := logs[key]
		if entries == nil {
			entries = []LogEntry{}
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			return nil, err
		}
		name := key + "_failed.json"
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// ReadOracleLogs reads back a directory written by WriteOracleLogs,
// keyed like OracleLogs. Empty groups come back as empty (non-nil)
// slices.
func ReadOracleLogs(dir string) (map[string][]LogEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string][]LogEntry{}
	for _, e := range entries {
		name := e.Name()
		const suffix = "_failed.json"
		if e.IsDir() || len(name) <= len(suffix) || name[len(name)-len(suffix):] != suffix {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var logs []LogEntry
		if err := json.Unmarshal(data, &logs); err != nil {
			return nil, fmt.Errorf("core: parsing %s: %w", name, err)
		}
		if logs == nil {
			logs = []LogEntry{}
		}
		out[name[:len(name)-len(suffix)]] = logs
	}
	return out, nil
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// oracleNames lists the log keys a full run can produce.
func oracleNames() []string {
	var out []string
	for _, fam := range []string{"ss", "sh", "hs"} {
		for _, o := range []csi.Oracle{csi.OracleWriteRead, csi.OracleErrorHandling, csi.OracleDifferential} {
			out = append(out, fmt.Sprintf("%s_%s", fam, o))
		}
	}
	return out
}
