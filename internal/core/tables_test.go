package core

import (
	"testing"

	"repro/internal/csi"
)

func mustInput(t *testing.T, id int, name, typ, lit string, valid bool) Input {
	t.Helper()
	in, err := MakeInput(id, name, typ, lit, valid)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestRunTablesDifferentialPairing: two table cases sharing column
// identity across formats form a differential probe group — the Avro
// INT widening of TINYINT must surface as the integral-widening
// discrepancy without materializing the full corpus matrix.
func TestRunTablesDifferentialPairing(t *testing.T) {
	in := mustInput(t, 7, "NarrowCol", "TINYINT", "5", true)
	var plan Plan
	for _, p := range Plans() {
		if p.Name() == "w_df_r_hive" {
			plan = p
		}
	}
	cases := []*TableCase{
		{Label: "tc_orc", Columns: []WideColumn{{Name: "NarrowCol", Input: in}}, Plan: plan, Format: "orc"},
		{Label: "tc_avro", Columns: []WideColumn{{Name: "NarrowCol", Input: in}}, Plan: plan, Format: "avro"},
	}
	res, err := RunTables(cases, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d, want 2 (one per column per table)", len(res.Cases))
	}
	var widening bool
	for _, f := range res.Failures {
		if f.Oracle == csi.OracleDifferential && f.Signature == "integral-widening" {
			widening = true
			if f.Peer == nil {
				t.Error("differential failure without peer")
			}
		}
	}
	if !widening {
		t.Errorf("no integral-widening differential failure; failures: %+v", res.Failures)
	}
}

// TestRunTablesMultiColumn: per-column oracle granularity — an invalid
// column in a multi-column row is detected without implicating its
// valid neighbours when the write succeeds silently.
func TestRunTablesMultiColumn(t *testing.T) {
	valid := mustInput(t, 20, "GoodCol", "INT", "42", true)
	invalid := mustInput(t, 21, "BadCol", "TINYINT", "999", false)
	var plan Plan
	for _, p := range Plans() {
		if p.Name() == "w_df_r_df" {
			plan = p
		}
	}
	cases := []*TableCase{{
		Label:   "tc_multi",
		Columns: []WideColumn{{Name: "GoodCol", Input: valid}, {Name: "BadCol", Input: invalid}},
		Plan:    plan,
		Format:  "orc",
	}}
	res, err := RunTables(cases, RunOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d, want one per column", len(res.Cases))
	}
	for _, f := range res.Failures {
		if f.Case.Input.Name == "GoodCol" {
			t.Errorf("valid column implicated: %s (%s)", f.Detail, f.Signature)
		}
	}
}
