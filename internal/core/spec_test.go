package core

import (
	"context"
	"errors"
	"testing"
)

func TestHashSpecDeterministic(t *testing.T) {
	a := map[string]any{"seed": 1, "n": 50, "conf": map[string]string{"x": "1", "y": "2"}}
	b := map[string]any{"conf": map[string]string{"y": "2", "x": "1"}, "n": 50, "seed": 1}
	ha, err := HashSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("equal specs hash differently: %s vs %s", ha, hb)
	}
	hc, err := HashSpec(map[string]any{"seed": 2, "n": 50})
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("different specs hash equal")
	}
	if len(ha) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(ha))
	}
}

func TestHashSpecUnencodable(t *testing.T) {
	if _, err := HashSpec(func() {}); err == nil {
		t.Error("HashSpec(func) succeeded, want error")
	}
}

func TestRunCancelled(t *testing.T) {
	corpus, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no case may be dispatched
	for _, parallel := range []int{1, 4} {
		_, err := Run(corpus, RunOptions{Context: ctx, Parallel: parallel})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%d: err = %v, want context.Canceled", parallel, err)
		}
	}
}

func TestRunNilContextCompletes(t *testing.T) {
	in, err := MakeInput(1, "int_ok", "INT", "7", true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]Input{in}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) == 0 {
		t.Error("nil-context run produced no cases")
	}
}
