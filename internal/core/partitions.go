package core

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/sqlval"
)

// Partition-mode testing extends the Figure 6 setup to partitioned
// tables: partition values travel through directory names rather than
// file payloads, crossing a different encoding boundary (path
// escaping). The §8 artifact did not cover partitions — this mode is
// the "more general tool" direction, and the divergent escaping it
// exposes clusters as an UNKNOWN signature: a candidate new
// discrepancy rather than one of the known 15.

// PartitionInput is one partition value under test.
type PartitionInput struct {
	ID      int
	Name    string
	Literal string // SQL literal for the STRING partition value
	Value   string // the expected decoded value
}

// PartitionCorpus returns partition values covering the path-escaping
// hazard classes: plain, whitespace, path separators, the escape
// character itself, unicode, and NULL.
func PartitionCorpus() []PartitionInput {
	return []PartitionInput{
		{0, "plain", "'daily'", "daily"},
		{1, "space", "'big sale'", "big sale"},
		{2, "slash", "'a/b'", "a/b"},
		{3, "equals", "'k=v'", "k=v"},
		{4, "percent", "'100%'", "100%"},
		{5, "unicode", "'ümlaut'", "ümlaut"},
		{6, "colon", "'12:30'", "12:30"},
		{7, "hash", "'tag#1'", "tag#1"},
	}
}

// partitionPlans are the Figure 6 plans whose write interface supports
// partitioned DDL (the DataFrame writer is excluded: partitioned saves
// go through SQL in this simulator, as in many real pipelines).
func partitionPlans() []Plan {
	var out []Plan
	for _, p := range Plans() {
		if p.Write != DataFrame {
			out = append(out, p)
		}
	}
	return out
}

// RunPartitions executes the partition-mode cross-test over one format
// and applies the write-read and differential oracles to the partition
// value read back.
func RunPartitions(format string, opts RunOptions) (*RunResult, error) {
	d := NewDeployment()
	for k, v := range opts.SparkConf {
		d.Spark.Conf().Set(k, v)
	}
	inputs := PartitionCorpus()
	var cases []*CaseResult
	for i := range inputs {
		pin := inputs[i]
		// Adapt to the harness's Input carrier: the column under test is
		// the partition column.
		in := Input{
			ID:      pin.ID,
			Name:    "partition_" + pin.Name,
			Type:    sqlval.String,
			Literal: pin.Literal,
			Valid:   true,
		}
		in.Expected = sqlval.StringVal(pin.Value)
		for _, plan := range partitionPlans() {
			table := fmt.Sprintf("pt_%s_%s_%02d", plan.Name(), format, pin.ID)
			c := &CaseResult{Input: &in, Plan: plan, Format: format, Table: table}
			c.Write = writePartitioned(d, plan.Write, table, format, pin)
			if c.Write.Err == nil {
				c.Read = readPartitionValue(d, plan.Read, table)
			}
			cases = append(cases, c)
		}
	}

	var failures []Failure
	for _, c := range cases {
		switch {
		case c.Write.Err != nil:
			failures = append(failures, Failure{
				Oracle: csi.OracleWriteRead, Case: c,
				Signature: classifyError(c.Write.Err),
				Detail:    fmt.Sprintf("partitioned write failed: %v", c.Write.Err),
			})
		case c.Read.Err != nil:
			failures = append(failures, Failure{
				Oracle: csi.OracleWriteRead, Case: c,
				Signature: classifyError(c.Read.Err),
				Detail:    fmt.Sprintf("partitioned read failed: %v", c.Read.Err),
			})
		case !c.Read.HasRow:
			failures = append(failures, Failure{
				Oracle: csi.OracleWriteRead, Case: c,
				Signature: "row-missing", Detail: "partition row not returned",
			})
		case !c.Read.Value.EqualData(c.Input.Expected):
			failures = append(failures, Failure{
				Oracle: csi.OracleWriteRead, Case: c,
				Signature: "partition-path-escaping",
				Detail: fmt.Sprintf("partition value round trip: wrote %s, read %s",
					c.Input.Expected, c.Read.Value),
			})
		}
	}
	// Differential across plans per input.
	byInput := map[int][]*CaseResult{}
	for _, c := range cases {
		byInput[c.Input.ID] = append(byInput[c.Input.ID], c)
	}
	for _, group := range byInput {
		base := group[0]
		baseKey := outcomeKey(base)
		for _, peer := range group[1:] {
			if outcomeKey(peer) == baseKey {
				continue
			}
			failures = append(failures, Failure{
				Oracle: csi.OracleDifferential, Case: base, Peer: peer,
				Signature: "partition-path-escaping",
				Detail: fmt.Sprintf("partition value inconsistent: %s [%s] vs %s [%s]",
					base.Describe(), baseKey, peer.Describe(), outcomeKey(peer)),
			})
		}
	}
	return &RunResult{Cases: cases, Failures: failures, Report: buildReport(failures)}, nil
}

func writePartitioned(d *Deployment, iface Iface, table, format string, pin PartitionInput) WriteOutcome {
	create := fmt.Sprintf("CREATE TABLE %s (N INT) PARTITIONED BY (Tag STRING) STORED AS %s", table, format)
	insert := fmt.Sprintf("INSERT INTO %s VALUES (1, %s)", table, pin.Literal)
	switch iface {
	case SparkSQL:
		if _, err := d.Spark.SQL(create); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := d.Spark.SQL(insert)
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	case HiveQL:
		if _, err := d.Hive.Execute(create); err != nil {
			return WriteOutcome{Err: err}
		}
		res, err := d.Hive.Execute(insert)
		if err != nil {
			return WriteOutcome{Err: err}
		}
		return WriteOutcome{Warnings: res.Warnings}
	default:
		return WriteOutcome{Err: fmt.Errorf("core: interface %q cannot write partitioned tables", iface)}
	}
}

func readPartitionValue(d *Deployment, iface Iface, table string) ReadOutcome {
	out := d.Read(iface, table)
	if out.Err != nil || !out.HasRow {
		return out
	}
	// The deployment's Read returns the first column; re-read and take
	// the partition column.
	switch iface {
	case SparkSQL:
		res, err := d.Spark.SQL(fmt.Sprintf("SELECT Tag FROM %s", table))
		if err != nil {
			return ReadOutcome{Err: err}
		}
		if len(res.Rows) == 0 {
			return ReadOutcome{}
		}
		return ReadOutcome{HasRow: true, Value: res.Rows[0][0], Warnings: res.Warnings}
	case DataFrame:
		res, err := d.Spark.Table(table)
		if err != nil {
			return ReadOutcome{Err: err}
		}
		if len(res.Rows) == 0 {
			return ReadOutcome{}
		}
		last := len(res.Rows[0]) - 1
		return ReadOutcome{HasRow: true, Value: res.Rows[0][last], Warnings: res.Warnings}
	case HiveQL:
		hres, err := d.Hive.Execute(fmt.Sprintf("SELECT tag FROM %s", table))
		if err != nil {
			return ReadOutcome{Err: err}
		}
		if len(hres.Rows) == 0 {
			return ReadOutcome{}
		}
		return ReadOutcome{HasRow: true, Value: hres.Rows[0][0], Warnings: hres.Warnings}
	default:
		return ReadOutcome{Err: fmt.Errorf("core: unknown interface %q", iface)}
	}
}
