package core

import (
	"strings"
	"testing"
)

// TestRunParallelEdgeValues table-drives Run over Parallel edge values:
// negatives are an error (not a silent clamp), everything else must
// produce the identical report — parallelism is an execution detail,
// never a result detail.
func TestRunParallelEdgeValues(t *testing.T) {
	inputs := subset(t, "tinyint_", "char_", "decimal_", "struct_")
	baseline, err := Run(inputs, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Report.Render()

	tests := []struct {
		name     string
		parallel int
		wantErr  bool
	}{
		{"negative_one", -1, true},
		{"negative_large", -64, true},
		{"zero", 0, false},
		{"one", 1, false},
		{"two", 2, false},
		{"eight", 8, false},
		{"more_workers_than_cases", 10000, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(inputs, RunOptions{Parallel: tc.parallel})
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Parallel=%d: want error, got nil", tc.parallel)
				}
				if !strings.Contains(err.Error(), "Parallel") {
					t.Errorf("error %q does not name Parallel", err)
				}
				if res != nil {
					t.Errorf("Parallel=%d: want nil result with error", tc.parallel)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parallel=%d: %v", tc.parallel, err)
			}
			if got := res.Report.Render(); got != want {
				t.Errorf("Parallel=%d report differs from sequential baseline", tc.parallel)
			}
		})
	}
}

// TestRunTablesParallelValidation mirrors the negative-Parallel contract
// on the explicit-assignment entry.
func TestRunTablesParallelValidation(t *testing.T) {
	if _, err := RunTables(nil, RunOptions{Parallel: -2}); err == nil {
		t.Fatal("RunTables with negative Parallel: want error, got nil")
	}
	res, err := RunTables(nil, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 0 || len(res.Failures) != 0 {
		t.Errorf("empty RunTables produced cases=%d failures=%d", len(res.Cases), len(res.Failures))
	}
}
