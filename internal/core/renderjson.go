package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/inject"
)

// RenderReportJSON re-renders the human-readable report from its
// machine-readable projection, byte-identical to Report.Render() on the
// report the projection came from. A cluster coordinator merges shard
// reports at the ReportJSON level; this is how the merged report gets
// the same Rendered text (and therefore the same ReportSHA) the
// single-node run produces. The one field Render needs that FoundJSON
// does not carry — the resolving configuration — is recovered from the
// registry by signature.
func RenderReportJSON(rj ReportJSON) string {
	bySig := inject.BySignature()
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-system testing report (Spark-Hive data plane)\n")
	fmt.Fprintf(&b, "====================================================\n\n")
	fmt.Fprintf(&b, "Oracle failures: wr=%d eh=%d difft=%d\n\n",
		rj.OracleFailures["wr"], rj.OracleFailures["eh"], rj.OracleFailures["difft"])
	fmt.Fprintf(&b, "Distinct discrepancies: %d\n\n", rj.Distinct)
	for _, f := range rj.Found {
		if f.Known != 0 {
			id := f.JIRA
			if id == "" {
				id = "(unreported)"
			}
			fmt.Fprintf(&b, "#%-2d %-12s %s\n", f.Known, id, f.Title)
			if len(f.Categories) > 0 {
				fmt.Fprintf(&b, "    categories: %s\n", strings.Join(f.Categories, ", "))
			}
			if d, ok := bySig[f.Signature]; ok && len(d.FixConf) > 0 {
				keys := make([]string, 0, len(d.FixConf))
				for k := range d.FixConf {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, "    resolved by: %s=%s\n", k, d.FixConf[k])
				}
			}
		} else {
			fmt.Fprintf(&b, "??  %-12s (not in registry)\n", f.Signature)
		}
		if f.Known != 0 && f.Module != "" {
			fmt.Fprintf(&b, "    module: %s\n", f.Module)
		}
		fmt.Fprintf(&b, "    failures: %d (wr=%d eh=%d difft=%d)\n", f.Failures,
			f.Oracles["wr"], f.Oracles["eh"], f.Oracles["difft"])
		fmt.Fprintf(&b, "    example: %s\n\n", f.Example)
	}
	fmt.Fprintf(&b, "Module locality (Finding 13/14): %d in dedicated connectors, %d in generic engine code\n\n", rj.InConnector, rj.Generic)
	fmt.Fprintf(&b, "Category tallies (paper: 2/2/5/7/8):\n")
	for _, c := range inject.Categories() {
		fmt.Fprintf(&b, "  %-36s %d/%d\n", c, rj.Categories[string(c)], inject.PaperCategoryCounts[c])
	}
	return b.String()
}
