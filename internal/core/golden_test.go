package core

import (
	"reflect"
	"testing"

	"repro/internal/csi"
)

// TestGoldenFigure6Clusters pins the fixed §8 corpus run end-to-end:
// the fifteen discrepancy clusters (count AND cluster keys) plus the
// per-oracle failure totals. A refactor that silently loses a Figure-6
// finding — or reclassifies one under a different signature — fails
// here, not in production.
func TestGoldenFigure6Clusters(t *testing.T) {
	res, err := Run(corpus(t), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantKnown := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if got := res.Report.DistinctKnown(); !reflect.DeepEqual(got, wantKnown) {
		t.Errorf("distinct known = %v, want %v", got, wantKnown)
	}
	// The cluster keys, in report order (registry number order).
	wantSigs := []string{
		"avro-incompatible-schema",
		"legacy-binary-decimal",
		"integral-widening",
		"avro-map-key",
		"insert-decimal-range",
		"timestamp-zone",
		"date-rebase",
		"char-padding",
		"insert-float-invalid",
		"insert-int-range",
		"insert-smallint-range",
		"insert-datetime-invalid",
		"insert-charlength",
		"struct-null",
		"insert-boolean-invalid",
	}
	var gotSigs []string
	for _, f := range res.Report.Found {
		gotSigs = append(gotSigs, f.Signature)
	}
	if !reflect.DeepEqual(gotSigs, wantSigs) {
		t.Errorf("cluster keys = %q, want %q", gotSigs, wantSigs)
	}
	if len(res.Report.UnknownSignatures()) != 0 {
		t.Errorf("fixed corpus produced unmapped signatures: %v", res.Report.UnknownSignatures())
	}
	// Per-oracle failure totals. These are deterministic for the fixed
	// corpus; a drift here means an oracle got weaker or noisier.
	wantOracle := map[csi.Oracle]int{
		csi.OracleWriteRead:     66,
		csi.OracleErrorHandling: 3212,
		csi.OracleDifferential:  2555,
	}
	for o, want := range wantOracle {
		if got := res.Report.ByOracle[o]; got != want {
			t.Errorf("oracle %s failures = %d, want %d", o, got, want)
		}
	}
	if got, want := len(res.Failures), 66+3212+2555; got != want {
		t.Errorf("total failures = %d, want %d", got, want)
	}
}
