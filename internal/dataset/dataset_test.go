package dataset

import (
	"strings"
	"testing"

	"repro/internal/csi"
)

func built(t *testing.T) []Failure {
	t.Helper()
	fs, err := BuildFailures()
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestTotalAndDeterminism(t *testing.T) {
	a := built(t)
	b := built(t)
	if len(a) != TotalFailures {
		t.Fatalf("total = %d", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Plane != b[i].Plane || a[i].FixPattern != b[i].FixPattern {
			t.Fatalf("build not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[csi.IssueID]bool{}
	for _, f := range built(t) {
		if seen[f.ID] {
			t.Errorf("duplicate id %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestTable1PairCounts(t *testing.T) {
	counts := map[csi.Interaction]int{}
	for _, f := range built(t) {
		counts[f.Interaction()]++
	}
	for _, p := range PairTargets() {
		got := counts[csi.Interaction{Upstream: p.Upstream, Downstream: p.Downstream}]
		if got != p.Count {
			t.Errorf("pair %s->%s = %d, want %d", p.Upstream, p.Downstream, got, p.Count)
		}
	}
	if len(counts) != len(PairTargets()) {
		t.Errorf("unexpected pairs present: %v", counts)
	}
}

func TestTable2PlaneCounts(t *testing.T) {
	counts := map[csi.Plane]int{}
	for _, f := range built(t) {
		counts[f.Plane]++
	}
	for plane, want := range PlaneTargets {
		if counts[plane] != want {
			t.Errorf("plane %v = %d, want %d", plane, counts[plane], want)
		}
	}
}

func TestTable3SymptomCounts(t *testing.T) {
	type key struct {
		scope SymptomScope
		name  string
	}
	counts := map[key]int{}
	crashing := 0
	for _, f := range built(t) {
		counts[key{f.Symptom.Scope, f.Symptom.Name}]++
		if f.Symptom.Crashing {
			crashing++
		}
	}
	for _, row := range SymptomTargets() {
		if got := counts[key{row.Scope, row.Name}]; got != row.Count {
			t.Errorf("symptom %v/%q = %d, want %d", row.Scope, row.Name, got, row.Count)
		}
	}
	if crashing != CrashingTarget {
		t.Errorf("crashing = %d, want %d", crashing, CrashingTarget)
	}
}

func TestTable5JointCounts(t *testing.T) {
	counts := map[dataJointKey]int{}
	for _, f := range built(t) {
		if f.Plane == csi.DataPlane {
			counts[dataJointKey{f.DataAbstraction, f.DataProperty}]++
		}
	}
	want := DataJointTargets()
	for cell, n := range want {
		if counts[cell] != n {
			t.Errorf("cell %v = %d, want %d", cell, counts[cell], n)
		}
	}
	for cell, n := range counts {
		if want[cell] != n {
			t.Errorf("unexpected cell %v = %d", cell, n)
		}
	}
}

func TestTable6PatternCounts(t *testing.T) {
	counts := map[DataPattern]int{}
	serialization := 0
	for _, f := range built(t) {
		if f.Plane != csi.DataPlane {
			continue
		}
		counts[f.DataPattern]++
		if f.Serialization {
			serialization++
		}
	}
	for p, want := range DataPatternTargets {
		if counts[p] != want {
			t.Errorf("pattern %v = %d, want %d", p, counts[p], want)
		}
	}
	if serialization != SerializationTarget {
		t.Errorf("serialization = %d, want %d", serialization, SerializationTarget)
	}
}

func TestTable7ConfigCounts(t *testing.T) {
	patterns := map[ConfigPattern]int{}
	categories := map[ConfigCategory]int{}
	monitoring := 0
	for _, f := range built(t) {
		if f.Plane != csi.ManagementPlane {
			continue
		}
		if f.MgmtKind == MgmtMonitoring {
			monitoring++
			continue
		}
		patterns[f.ConfigPattern]++
		categories[f.ConfigCategory]++
	}
	for p, want := range ConfigPatternTargets {
		if patterns[p] != want {
			t.Errorf("config pattern %v = %d, want %d", p, patterns[p], want)
		}
	}
	for c, want := range ConfigCategoryTargets {
		if categories[c] != want {
			t.Errorf("config category %v = %d, want %d", c, categories[c], want)
		}
	}
	if monitoring != MonitoringTarget {
		t.Errorf("monitoring = %d, want %d", monitoring, MonitoringTarget)
	}
}

func TestTable8ControlCounts(t *testing.T) {
	patterns := map[ControlPattern]int{}
	misuses := map[APIMisuse]int{}
	for _, f := range built(t) {
		if f.Plane != csi.ControlPlane {
			continue
		}
		patterns[f.ControlPattern]++
		if f.ControlPattern == APISemanticViolation {
			misuses[f.APIMisuse]++
		}
	}
	for p, want := range ControlPatternTargets {
		if patterns[p] != want {
			t.Errorf("control pattern %v = %d, want %d", p, patterns[p], want)
		}
	}
	for m, want := range APIMisuseTargets {
		if misuses[m] != want {
			t.Errorf("misuse %v = %d, want %d", m, misuses[m], want)
		}
	}
}

func TestTable9FixCounts(t *testing.T) {
	patterns := map[FixPattern]int{}
	locations := map[FixLocation]int{}
	downstreamFixed := 0
	for _, f := range built(t) {
		patterns[f.FixPattern]++
		locations[f.FixLocation]++
		if f.DownstreamFixed {
			downstreamFixed++
		}
	}
	for p, want := range FixPatternTargets {
		if patterns[p] != want {
			t.Errorf("fix pattern %v = %d, want %d", p, patterns[p], want)
		}
	}
	for l, want := range FixLocationTargets {
		if locations[l] != want {
			t.Errorf("fix location %v = %d, want %d", l, locations[l], want)
		}
	}
	if downstreamFixed != 1 {
		t.Errorf("downstream-fixed = %d, want exactly 1 (YARN-9724)", downstreamFixed)
	}
}

func TestUnfixedPairedWithOthers(t *testing.T) {
	for _, f := range built(t) {
		if (f.FixPattern == FixOthers) != (f.FixLocation == FixNone) {
			t.Errorf("%s: FixOthers/FixNone not paired: %v / %v", f.ID, f.FixPattern, f.FixLocation)
		}
	}
}

func TestPlaneSpecificFieldsConsistent(t *testing.T) {
	for _, f := range built(t) {
		switch f.Plane {
		case csi.DataPlane:
			if f.DataProperty == PropNone || f.DataAbstraction == AbstractionNone || f.DataPattern == DataPatternNone {
				t.Errorf("%s: data-plane record missing attributes", f.ID)
			}
			if f.MgmtKind != MgmtNone || f.ControlPattern != ControlPatternNone {
				t.Errorf("%s: data-plane record has foreign attributes", f.ID)
			}
		case csi.ManagementPlane:
			if f.MgmtKind == MgmtNone {
				t.Errorf("%s: management record missing kind", f.ID)
			}
			if f.MgmtKind == MgmtConfig && (f.ConfigPattern == ConfigPatternNone || f.ConfigCategory == ConfigCategoryNone) {
				t.Errorf("%s: config record missing attributes", f.ID)
			}
			if f.DataPattern != DataPatternNone || f.ControlPattern != ControlPatternNone {
				t.Errorf("%s: management record has foreign attributes", f.ID)
			}
		case csi.ControlPlane:
			if f.ControlPattern == ControlPatternNone {
				t.Errorf("%s: control record missing pattern", f.ID)
			}
			if f.ControlPattern == APISemanticViolation && f.APIMisuse == APIMisuseNone {
				t.Errorf("%s: API misuse record missing misuse kind", f.ID)
			}
		}
	}
}

func TestAnchorsAreRealAndSynthFlagged(t *testing.T) {
	real, synth := 0, 0
	for _, f := range built(t) {
		if f.Synthesized {
			synth++
			if !f.ID.Synthesized() {
				t.Errorf("synthesized record with real-looking id %s", f.ID)
			}
		} else {
			real++
			if f.ID.Synthesized() {
				t.Errorf("anchor with CSI- id %s", f.ID)
			}
			if f.Title == "" {
				t.Errorf("anchor %s has no title", f.ID)
			}
		}
	}
	if real != len(anchors()) {
		t.Errorf("real = %d, want %d", real, len(anchors()))
	}
	if real+synth != TotalFailures {
		t.Errorf("real+synth = %d", real+synth)
	}
}

func TestMemoizedFailuresMatchesBuild(t *testing.T) {
	memo := Failures()
	fresh := built(t)
	if len(memo) != len(fresh) {
		t.Fatalf("memo = %d, fresh = %d", len(memo), len(fresh))
	}
	for i := range memo {
		if memo[i].ID != fresh[i].ID {
			t.Fatalf("memo mismatch at %d", i)
		}
	}
}

func TestIncidentsStatistics(t *testing.T) {
	incidents := CSIIncidents()
	if len(incidents) != 11 {
		t.Fatalf("incidents = %d", len(incidents))
	}
	if TotalIncidents() != 55 {
		t.Errorf("sample = %d", TotalIncidents())
	}
	byProvider := map[Provider]int{}
	cascaded, codeFix := 0, 0
	for _, inc := range incidents {
		byProvider[inc.Provider]++
		if inc.CascadedExternally {
			cascaded++
		}
		if inc.MentionedCodeFix {
			codeFix++
		}
		if inc.DurationMinutes < 10 || inc.DurationMinutes > 1140 {
			t.Errorf("duration %d outside the published range", inc.DurationMinutes)
		}
		if byProvider[inc.Provider] > IncidentSampleSizes[inc.Provider] {
			t.Errorf("provider %s has more CSI incidents than sampled", inc.Provider)
		}
	}
	if cascaded != 8 {
		t.Errorf("cascaded = %d, want 8", cascaded)
	}
	if codeFix != 4 {
		t.Errorf("code fixes = %d, want 4", codeFix)
	}
}

func TestCBSSliceCounts(t *testing.T) {
	slice := CBSSlice()
	if len(slice) != 105 {
		t.Fatalf("cbs = %d", len(slice))
	}
	labels := map[CBSLabel]int{}
	control := 0
	for _, issue := range slice {
		labels[issue.Label]++
		if issue.Label == CBSCSIFailure && issue.Plane == csi.ControlPlane {
			control++
		}
	}
	if labels[CBSCSIFailure] != 39 || labels[CBSDependencyFailure] != 15 || labels[CBSNotCrossSystem] != 51 {
		t.Errorf("labels = %v", labels)
	}
	if control != 27 {
		t.Errorf("control CSI = %d, want 27 (69%%)", control)
	}
}

func TestSamplingSummary(t *testing.T) {
	s := Sampling()
	if s.CandidateIssues != 1428 || s.SampledIssues != 360 || s.CSIFailures != 120 ||
		s.DependencyFailures != 26 || s.NotCrossSystem != 214 {
		t.Errorf("sampling = %+v", s)
	}
}

// TestAnchorFacts pins the attributes of the cases the paper discusses
// in detail, so the encoded dataset cannot drift from the text.
func TestAnchorFacts(t *testing.T) {
	byID := map[csi.IssueID]Failure{}
	for _, f := range built(t) {
		byID[f.ID] = f
	}
	check := func(id csi.IssueID, verify func(Failure) bool, desc string) {
		t.Helper()
		f, ok := byID[id]
		if !ok {
			t.Errorf("%s missing from dataset", id)
			return
		}
		if !verify(f) {
			t.Errorf("%s: %s (got %+v)", id, desc, f)
		}
	}
	check("FLINK-12342", func(f Failure) bool {
		return f.Plane == csi.ControlPlane && f.ControlPattern == APISemanticViolation &&
			f.APIMisuse == ImplicitSemanticViolation && f.FixPattern == FixInteraction &&
			f.FixLocation == FixUpstreamConnector
	}, "Figure 1: implicit API semantic violation fixed in the connector")
	check("SPARK-27239", func(f Failure) bool {
		return f.Plane == csi.DataPlane && f.DataAbstraction == AbstractionFile &&
			f.DataProperty == PropCustom && f.DataPattern == UndefinedValues &&
			f.FixPattern == FixChecking
	}, "Figure 2: undefined -1 file size, fixed by checking")
	check("FLINK-19141", func(f Failure) bool {
		return f.Plane == csi.ManagementPlane && f.ConfigPattern == ConfigInconsistentContext &&
			f.ConfigCategory == ConfigParameter
	}, "Figure 3: inconsistent-context parameter configuration")
	check("SPARK-21686", func(f Failure) bool {
		return f.Serialization && f.DataPattern == UnspokenConvention &&
			f.DataAbstraction == AbstractionTable
	}, "ORC column-name convention, serialization-rooted")
	check("SPARK-19361", func(f Failure) bool {
		return f.DataAbstraction == AbstractionStream && f.DataPattern == WrongAPIAssumptions
	}, "Kafka offset assumption")
	check("YARN-9724", func(f Failure) bool {
		return f.DownstreamFixed && f.ControlPattern == FeatureInconsistency
	}, "the single downstream-side fix")
	check("HIVE-11250", func(f Failure) bool {
		return f.ConfigCategory == ConfigComponent && f.ConfigPattern == ConfigIgnorance
	}, "component-level configuration ignorance")
	check("FLINK-887", func(f Failure) bool {
		return f.MgmtKind == MgmtMonitoring && f.Symptom.Crashing
	}, "monitoring-triggered kill, crashing symptom")
}

func TestFailureStringRendering(t *testing.T) {
	fs := built(t)
	if !strings.Contains(fs[0].String(), string(fs[0].ID)) {
		t.Errorf("render = %q", fs[0].String())
	}
	sawSynth := false
	for i := range fs {
		if fs[i].Synthesized && strings.Contains(fs[i].String(), "[synthesized]") {
			sawSynth = true
			break
		}
	}
	if !sawSynth {
		t.Error("synthesized marker missing")
	}
}
