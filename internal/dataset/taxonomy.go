// Package dataset encodes the paper's study data: the 120 open-source
// CSI failures of Table 1 (§4), the 55 cloud incidents of §3, and the
// re-labeled CBS slice used for comparison in §5.1.
//
// Roughly a third of the 120 records are the real JIRA issues the paper
// names, with their attributes assigned from the paper's own
// discussion. The remainder are synthesized records (IssueID prefix
// "CSI-", Synthesized=true) constructed by a deterministic pool builder
// so that every published marginal — Tables 1 through 9 and the
// statistics quoted in Findings 1–13 — is matched exactly. The paper's
// artifact is the labeled distribution; reproducing the analysis
// requires the distribution, not the raw JIRA text.
package dataset

import (
	"fmt"

	"repro/internal/csi"
)

// SymptomScope groups Table 3's rows: whole-system impact, job-level
// impact, and partial degradation.
type SymptomScope int

// The three scopes.
const (
	ScopeCluster SymptomScope = iota
	ScopeJob
	ScopePartial
)

// String names the scope.
func (s SymptomScope) String() string {
	switch s {
	case ScopeCluster:
		return "Cluster"
	case ScopeJob:
		return "Job/Application"
	default:
		return "Partial"
	}
}

// Symptom is a Table 3 row: a scope-qualified failure impact.
type Symptom struct {
	Scope    SymptomScope
	Name     string
	Crashing bool
}

// DataProperty is the Table 4 data property a data-plane discrepancy is
// rooted in.
type DataProperty int

// The Table 4 properties (Schema is split into its two sub-rows).
const (
	PropNone DataProperty = iota
	PropAddress
	PropSchemaStructure
	PropSchemaValue
	PropCustom
	PropAPISemantics
)

// String names the property as in Table 4.
func (p DataProperty) String() string {
	switch p {
	case PropAddress:
		return "Address"
	case PropSchemaStructure:
		return "Schema/Structure"
	case PropSchemaValue:
		return "Schema/Value"
	case PropCustom:
		return "Custom property"
	case PropAPISemantics:
		return "API semantics"
	default:
		return "-"
	}
}

// DataAbstraction is the Table 5 data abstraction.
type DataAbstraction int

// The four abstractions.
const (
	AbstractionNone DataAbstraction = iota
	AbstractionTable
	AbstractionFile
	AbstractionStream
	AbstractionKVTuple
)

// String names the abstraction.
func (a DataAbstraction) String() string {
	switch a {
	case AbstractionTable:
		return "Table"
	case AbstractionFile:
		return "File"
	case AbstractionStream:
		return "Stream"
	case AbstractionKVTuple:
		return "KV Tuple"
	default:
		return "-"
	}
}

// DataPattern is a Table 6 discrepancy pattern.
type DataPattern int

// The five data-plane patterns.
const (
	DataPatternNone DataPattern = iota
	TypeConfusion
	UnsupportedOperations
	UnspokenConvention
	UndefinedValues
	WrongAPIAssumptions
)

// String names the pattern as in Table 6.
func (p DataPattern) String() string {
	switch p {
	case TypeConfusion:
		return "Type Confusion"
	case UnsupportedOperations:
		return "Unsupported Operations"
	case UnspokenConvention:
		return "Unspoken Convention"
	case UndefinedValues:
		return "Undefined Values"
	case WrongAPIAssumptions:
		return "Wrong API Assumptions"
	default:
		return "-"
	}
}

// MgmtKind splits the management plane into configuration and
// monitoring (§6.2).
type MgmtKind int

// The two management-plane kinds.
const (
	MgmtNone MgmtKind = iota
	MgmtConfig
	MgmtMonitoring
)

// ConfigPattern is a Table 7 configuration discrepancy pattern.
type ConfigPattern int

// The four configuration patterns.
const (
	ConfigPatternNone ConfigPattern = iota
	ConfigIgnorance
	ConfigUnexpectedOverride
	ConfigInconsistentContext
	ConfigMishandledValues
)

// String names the pattern as in Table 7.
func (p ConfigPattern) String() string {
	switch p {
	case ConfigIgnorance:
		return "Ignorance"
	case ConfigUnexpectedOverride:
		return "Unexpected override"
	case ConfigInconsistentContext:
		return "Inconsistent context"
	case ConfigMishandledValues:
		return "Mishandling configuration values"
	default:
		return "-"
	}
}

// ConfigCategory is Finding 8's parameter-vs-component split.
type ConfigCategory int

// The two categories.
const (
	ConfigCategoryNone ConfigCategory = iota
	ConfigParameter
	ConfigComponent
)

// ControlPattern is a Table 8 control-plane discrepancy pattern.
type ControlPattern int

// The three control-plane patterns.
const (
	ControlPatternNone ControlPattern = iota
	APISemanticViolation
	StateResourceInconsistency
	FeatureInconsistency
)

// String names the pattern as in Table 8.
func (p ControlPattern) String() string {
	switch p {
	case APISemanticViolation:
		return "API semantic violation"
	case StateResourceInconsistency:
		return "State/resource inconsistency"
	case FeatureInconsistency:
		return "Feature inconsistency"
	default:
		return "-"
	}
}

// APIMisuse is Finding 11's split of the API-semantic-violation cases.
type APIMisuse int

// The two misuse kinds.
const (
	APIMisuseNone APIMisuse = iota
	ImplicitSemanticViolation
	WrongInvocationContext
)

// FixPattern is a Table 9 fix pattern.
type FixPattern int

// The four fix patterns.
const (
	FixChecking FixPattern = iota
	FixErrorHandling
	FixInteraction
	FixOthers // no merged fix or documentation-only
)

// String names the pattern as in Table 9.
func (p FixPattern) String() string {
	switch p {
	case FixChecking:
		return "Checking"
	case FixErrorHandling:
		return "Error handling"
	case FixInteraction:
		return "Interaction"
	default:
		return "Others"
	}
}

// FixLocation is Finding 13's fix-location classification.
type FixLocation int

// The locations.
const (
	// FixUpstreamConnector: upstream code specific to the downstream,
	// inside a dedicated connector module (68 cases).
	FixUpstreamConnector FixLocation = iota
	// FixUpstreamSpecific: upstream code specific to the downstream but
	// outside any connector module (11 cases).
	FixUpstreamSpecific
	// FixGeneric: upstream code shared across downstreams (36 cases —
	// including the single downstream-side fix, YARN-9724).
	FixGeneric
	// FixNone: the five unfixed / documentation-only cases.
	FixNone
)

// Failure is one labeled CSI failure record.
type Failure struct {
	ID          csi.IssueID
	Title       string
	Upstream    csi.System
	Downstream  csi.System
	Plane       csi.Plane
	Symptom     Symptom
	Synthesized bool

	// Data plane (Plane == DataPlane).
	DataProperty    DataProperty
	DataAbstraction DataAbstraction
	DataPattern     DataPattern
	Serialization   bool // root-caused by data serialization (Finding 6)

	// Management plane (Plane == ManagementPlane).
	MgmtKind       MgmtKind
	ConfigPattern  ConfigPattern
	ConfigCategory ConfigCategory

	// Control plane (Plane == ControlPlane).
	ControlPattern ControlPattern
	APIMisuse      APIMisuse

	// Fixes (Table 9 / Findings 12–13).
	FixPattern      FixPattern
	FixLocation     FixLocation
	DownstreamFixed bool // the single YARN-9724 exception
}

// Interaction returns the record's upstream→downstream pair.
func (f *Failure) Interaction() csi.Interaction {
	return csi.Interaction{Upstream: f.Upstream, Downstream: f.Downstream}
}

// Pattern renders the plane-specific discrepancy pattern label.
func (f *Failure) Pattern() string {
	switch f.Plane {
	case csi.DataPlane:
		return f.DataPattern.String()
	case csi.ManagementPlane:
		if f.MgmtKind == MgmtMonitoring {
			return "Monitoring"
		}
		return f.ConfigPattern.String()
	default:
		return f.ControlPattern.String()
	}
}

// String renders the record as a one-line dataset entry.
func (f *Failure) String() string {
	marker := ""
	if f.Synthesized {
		marker = " [synthesized]"
	}
	return fmt.Sprintf("%-12s %-6s->%-6s %-10s %-32s fix=%s%s",
		f.ID, f.Upstream, f.Downstream, f.Plane, f.Pattern(), f.FixPattern, marker)
}
