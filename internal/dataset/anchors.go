package dataset

import "repro/internal/csi"

// anchors are the real JIRA issues the paper names, with their
// attributes assigned from the paper's own discussion of each case
// (the section or table where each appears is noted).
func anchors() []Failure {
	sym := func(scope SymptomScope, name string, crashing bool) Symptom {
		return Symptom{Scope: scope, Name: name, Crashing: crashing}
	}
	return []Failure{
		// --- Control plane (Table 8, §2.3, §6.3) -----------------------
		{
			ID: "FLINK-12342", Title: "Flink uses the YARN container-request API with a synchronous assumption, flooding the RM (Figure 1)",
			Upstream: csi.Flink, Downstream: csi.YARN, Plane: csi.ControlPlane,
			ControlPattern: APISemanticViolation, APIMisuse: ImplicitSemanticViolation,
			Symptom:    sym(ScopeCluster, "Performance issue", false),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "HBASE-537", Title: "HBase wrongly assumed HDFS NameNode readiness while it was in safe mode",
			Upstream: csi.HBase, Downstream: csi.HDFS, Plane: csi.ControlPlane,
			ControlPattern: StateResourceInconsistency,
			Symptom:        sym(ScopeCluster, "Startup failure", true),
			FixPattern:     FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "HBASE-16621", Title: "Asynchrony-induced stale state between HBase and HDFS under concurrent events",
			Upstream: csi.HBase, Downstream: csi.HDFS, Plane: csi.ControlPlane,
			ControlPattern: StateResourceInconsistency,
			Symptom:        sym(ScopeCluster, "Runtime crash/hang", true),
			FixPattern:     FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-2604", Title: "Inconsistent resource calculations between Spark and YARN",
			Upstream: csi.Spark, Downstream: csi.YARN, Plane: csi.ControlPlane,
			ControlPattern: StateResourceInconsistency,
			Symptom:        sym(ScopeJob, "Job/task startup", true),
			FixPattern:     FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "YARN-9724", Title: "Spark assumed availability of getYarnClusterMetrics in all YARN modes; fixed downstream as an API-contract bug",
			Upstream: csi.Spark, Downstream: csi.YARN, Plane: csi.ControlPlane,
			ControlPattern: FeatureInconsistency,
			Symptom:        sym(ScopeJob, "Job/task failure", true),
			FixPattern:     FixInteraction, FixLocation: FixGeneric, DownstreamFixed: true,
		},
		{
			ID: "FLINK-5542", Title: "An API for local vcore information used in a global context misreports available cores",
			Upstream: csi.Flink, Downstream: csi.YARN, Plane: csi.ControlPlane,
			ControlPattern: APISemanticViolation, APIMisuse: WrongInvocationContext,
			Symptom:    sym(ScopeJob, "Wrong results", false),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "FLINK-4155", Title: "Kafka partition discovery invoked in a client context without cluster access",
			Upstream: csi.Flink, Downstream: csi.Kafka, Plane: csi.ControlPlane,
			ControlPattern: APISemanticViolation, APIMisuse: WrongInvocationContext,
			Symptom:    sym(ScopeJob, "Job/task startup", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},

		// --- Data plane (Tables 4-6, §2.3, §6.1) -----------------------
		{
			ID: "SPARK-27239", Title: "Spark asserts nonnegative file sizes; HDFS reports -1 for compressed data (Figure 2)",
			Upstream: csi.Spark, Downstream: csi.HDFS, Plane: csi.DataPlane,
			DataAbstraction: AbstractionFile, DataProperty: PropCustom, DataPattern: UndefinedValues,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "FLINK-17189", Title: "Flink stores PROCTIME as Hive TIMESTAMP but cannot translate it back",
			Upstream: csi.Flink, Downstream: csi.Hive, Plane: csi.DataPlane,
			DataAbstraction: AbstractionTable, DataProperty: PropSchemaValue, DataPattern: TypeConfusion,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-18910", Title: "Spark SQL did not support UDFs stored as jar files in HDFS",
			Upstream: csi.Spark, Downstream: csi.HDFS, Plane: csi.DataPlane,
			DataAbstraction: AbstractionFile, DataProperty: PropAPISemantics, DataPattern: UnsupportedOperations,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamSpecific,
		},
		{
			ID: "SPARK-21686", Title: "Spark failed to read column names in ORC files written by Hive (positional _colN convention)",
			Upstream: csi.Spark, Downstream: csi.Hive, Plane: csi.DataPlane,
			DataAbstraction: AbstractionTable, DataProperty: PropSchemaStructure, DataPattern: UnspokenConvention,
			Serialization: true,
			Symptom:       sym(ScopeJob, "Job/task failure", true),
			FixPattern:    FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-19361", Title: "Spark assumes Kafka offsets always increment by 1, which compaction and markers violate",
			Upstream: csi.Spark, Downstream: csi.Kafka, Plane: csi.DataPlane,
			DataAbstraction: AbstractionStream, DataProperty: PropAPISemantics, DataPattern: WrongAPIAssumptions,
			Symptom:    sym(ScopePartial, "Job/task crash/hang", true),
			FixPattern: FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "YARN-2790", Title: "YARN's HDFS delegation-token renewal races expiration; renewal moved next to consumption",
			Upstream: csi.YARN, Downstream: csi.HDFS, Plane: csi.DataPlane,
			DataAbstraction: AbstractionFile, DataProperty: PropAPISemantics, DataPattern: WrongAPIAssumptions,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamSpecific,
		},
		{
			ID: "SPARK-10122", Title: "PySpark's core streaming module lost a data attribute during compaction, affecting any downstream",
			Upstream: csi.Spark, Downstream: csi.Kafka, Plane: csi.DataPlane,
			DataAbstraction: AbstractionStream, DataProperty: PropSchemaStructure, DataPattern: TypeConfusion,
			Symptom:    sym(ScopeJob, "Data loss", false),
			FixPattern: FixInteraction, FixLocation: FixGeneric,
		},
		{
			ID: "SPARK-21150", Title: "A code change lost case sensitivity when exchanging Hive table schemas",
			Upstream: csi.Spark, Downstream: csi.Hive, Plane: csi.DataPlane,
			DataAbstraction: AbstractionTable, DataProperty: PropSchemaValue, DataPattern: UnspokenConvention,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "FLINK-13758", Title: "Flink must handle files on local and remote storage differently (custom locality property)",
			Upstream: csi.Flink, Downstream: csi.HDFS, Plane: csi.DataPlane,
			DataAbstraction: AbstractionFile, DataProperty: PropCustom, DataPattern: WrongAPIAssumptions,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "FLINK-3081", Title: "Exceptions thrown by Kafka interaction were uncaught; a try-catch was added around the CSI operations",
			Upstream: csi.Flink, Downstream: csi.Kafka, Plane: csi.DataPlane,
			DataAbstraction: AbstractionStream, DataProperty: PropSchemaValue, DataPattern: TypeConfusion,
			Symptom:    sym(ScopePartial, "Job/task crash/hang", true),
			FixPattern: FixErrorHandling, FixLocation: FixUpstreamConnector,
		},

		// --- Management plane (Table 7, §2.3, §6.2) --------------------
		{
			ID: "FLINK-19141", Title: "Flink and YARN use inconsistent resource-allocation configurations across schedulers (Figure 3)",
			Upstream: csi.Flink, Downstream: csi.YARN, Plane: csi.ManagementPlane,
			MgmtKind: MgmtConfig, ConfigPattern: ConfigInconsistentContext, ConfigCategory: ConfigParameter,
			Symptom:    sym(ScopeJob, "Job/task startup", true),
			FixPattern: FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-10181", Title: "Spark's Hive client ignored Kerberos configuration (keytab and principal)",
			Upstream: csi.Spark, Downstream: csi.Hive, Plane: csi.ManagementPlane,
			MgmtKind: MgmtConfig, ConfigPattern: ConfigIgnorance, ConfigCategory: ConfigParameter,
			Symptom:    sym(ScopeJob, "Job/task startup", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-16901", Title: "Spark incorrectly overwrote Hive's configuration when merging with the Hadoop configuration",
			Upstream: csi.Spark, Downstream: csi.Hive, Plane: csi.ManagementPlane,
			MgmtKind: MgmtConfig, ConfigPattern: ConfigUnexpectedOverride, ConfigCategory: ConfigParameter,
			Symptom:    sym(ScopeJob, "Job/task failure", true),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-15046", Title: "Spark's ApplicationMaster on YARN treats an interval configuration as numeric (86400079ms allowed)",
			Upstream: csi.Spark, Downstream: csi.YARN, Plane: csi.ManagementPlane,
			MgmtKind: MgmtConfig, ConfigPattern: ConfigMishandledValues, ConfigCategory: ConfigParameter,
			Symptom:    sym(ScopeCluster, "Startup failure", true),
			FixPattern: FixChecking, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "HIVE-11250", Title: "Hive ignores all updates to the Spark configuration via RemoteHiveSparkClient (update flag bug)",
			Upstream: csi.Hive, Downstream: csi.Spark, Plane: csi.ManagementPlane,
			MgmtKind: MgmtConfig, ConfigPattern: ConfigIgnorance, ConfigCategory: ConfigComponent,
			Symptom:    sym(ScopePartial, "Unexpected behavior", false),
			FixPattern: FixInteraction, FixLocation: FixUpstreamConnector,
		},
		{
			ID: "SPARK-10851", Title: "Spark's R runner exits silently instead of propagating the failure exception to YARN",
			Upstream: csi.Spark, Downstream: csi.YARN, Plane: csi.ManagementPlane,
			MgmtKind:   MgmtMonitoring,
			Symptom:    sym(ScopePartial, "Reduced observability", false),
			FixPattern: FixInteraction, FixLocation: FixUpstreamSpecific,
		},
		{
			ID: "SPARK-3627", Title: "Spark reports success for failed YARN jobs",
			Upstream: csi.Spark, Downstream: csi.YARN, Plane: csi.ManagementPlane,
			MgmtKind:   MgmtMonitoring,
			Symptom:    sym(ScopePartial, "Reduced observability", false),
			FixPattern: FixInteraction, FixLocation: FixUpstreamSpecific,
		},
		{
			ID: "FLINK-887", Title: "Flink's JobManager is killed by YARN's pmem monitor without JVM memory adjustment",
			Upstream: csi.Flink, Downstream: csi.YARN, Plane: csi.ManagementPlane,
			MgmtKind:   MgmtMonitoring,
			Symptom:    sym(ScopeCluster, "Runtime crash/hang", true),
			FixPattern: FixChecking, FixLocation: FixUpstreamConnector,
		},
	}
}
