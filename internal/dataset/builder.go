package dataset

import (
	"fmt"
	"sync"

	"repro/internal/csi"
)

// BuildFailures constructs the 120-record dataset: the anchor records
// of anchors.go plus synthesized records dealt from the published
// marginal pools. The build is deterministic and validates that every
// pool is consumed exactly.
func BuildFailures() ([]Failure, error) {
	b := newBuilder()
	out := make([]Failure, 0, TotalFailures)
	for _, a := range anchors() {
		if err := b.consume(&a); err != nil {
			return nil, fmt.Errorf("dataset: anchor %s: %w", a.ID, err)
		}
		out = append(out, a)
	}
	synth, err := b.synthesize(len(out))
	if err != nil {
		return nil, err
	}
	out = append(out, synth...)
	if err := b.validateEmpty(); err != nil {
		return nil, err
	}
	if len(out) != TotalFailures {
		return nil, fmt.Errorf("dataset: built %d records, want %d", len(out), TotalFailures)
	}
	return out, nil
}

var (
	failuresOnce sync.Once
	failuresMemo []Failure
	failuresErr  error
)

// Failures returns the memoized dataset, panicking on a construction
// bug (which the test suite rules out).
func Failures() []Failure {
	failuresOnce.Do(func() {
		failuresMemo, failuresErr = BuildFailures()
	})
	if failuresErr != nil {
		panic(failuresErr)
	}
	return failuresMemo
}

type builder struct {
	pairRemaining  map[csi.Interaction]int
	pairOrder      []PairTarget
	planeRemaining map[csi.Plane]int

	symptoms []symptomTarget

	dataCells     []dataCell
	dataPatterns  []patternCount[DataPattern]
	serialization int

	configPatterns   []patternCount[ConfigPattern]
	configCategories []patternCount[ConfigCategory]
	monitoring       int

	controlPatterns []patternCount[ControlPattern]
	apiMisuses      []patternCount[APIMisuse]

	fixPatterns  []patternCount[FixPattern]
	fixLocations []patternCount[FixLocation]
}

type dataCell struct {
	key   dataJointKey
	count int
}

type patternCount[T comparable] struct {
	value T
	count int
}

func newBuilder() *builder {
	b := &builder{
		pairRemaining:  map[csi.Interaction]int{},
		planeRemaining: map[csi.Plane]int{},
		symptoms:       SymptomTargets(),
		serialization:  SerializationTarget,
		monitoring:     MonitoringTarget,
	}
	b.pairOrder = PairTargets()
	for _, p := range b.pairOrder {
		b.pairRemaining[csi.Interaction{Upstream: p.Upstream, Downstream: p.Downstream}] = p.Count
	}
	for plane, n := range PlaneTargets {
		b.planeRemaining[plane] = n
	}
	// Ordered pools: the deal order is part of the deterministic build.
	joint := DataJointTargets()
	for _, a := range []DataAbstraction{AbstractionTable, AbstractionFile, AbstractionStream, AbstractionKVTuple} {
		for _, p := range []DataProperty{PropAddress, PropSchemaStructure, PropSchemaValue, PropCustom, PropAPISemantics} {
			if n := joint[dataJointKey{a, p}]; n > 0 {
				b.dataCells = append(b.dataCells, dataCell{dataJointKey{a, p}, n})
			}
		}
	}
	b.dataPatterns = orderedPool(DataPatternTargets,
		TypeConfusion, UnsupportedOperations, UnspokenConvention, UndefinedValues, WrongAPIAssumptions)
	b.configPatterns = orderedPool(ConfigPatternTargets,
		ConfigIgnorance, ConfigUnexpectedOverride, ConfigInconsistentContext, ConfigMishandledValues)
	b.configCategories = orderedPool(ConfigCategoryTargets, ConfigParameter, ConfigComponent)
	b.controlPatterns = orderedPool(ControlPatternTargets,
		APISemanticViolation, StateResourceInconsistency, FeatureInconsistency)
	b.apiMisuses = orderedPool(APIMisuseTargets, ImplicitSemanticViolation, WrongInvocationContext)
	b.fixPatterns = orderedPool(FixPatternTargets, FixChecking, FixErrorHandling, FixInteraction, FixOthers)
	b.fixLocations = orderedPool(FixLocationTargets, FixUpstreamConnector, FixUpstreamSpecific, FixGeneric, FixNone)
	return b
}

func orderedPool[T comparable](m map[T]int, order ...T) []patternCount[T] {
	out := make([]patternCount[T], 0, len(order))
	for _, v := range order {
		out = append(out, patternCount[T]{value: v, count: m[v]})
	}
	return out
}

func takeValue[T comparable](pool []patternCount[T], v T) error {
	for i := range pool {
		if pool[i].value == v {
			if pool[i].count <= 0 {
				return fmt.Errorf("pool exhausted for %v", v)
			}
			pool[i].count--
			return nil
		}
	}
	return fmt.Errorf("value %v not in pool", v)
}

func popNext[T comparable](pool []patternCount[T]) (T, error) {
	for i := range pool {
		if pool[i].count > 0 {
			pool[i].count--
			return pool[i].value, nil
		}
	}
	var zero T
	return zero, fmt.Errorf("pool empty")
}

// consume subtracts an anchor record from every pool it draws on.
func (b *builder) consume(f *Failure) error {
	pair := f.Interaction()
	if b.pairRemaining[pair] <= 0 {
		return fmt.Errorf("pair %s exhausted", pair)
	}
	b.pairRemaining[pair]--
	if b.planeRemaining[f.Plane] <= 0 {
		return fmt.Errorf("plane %v exhausted", f.Plane)
	}
	b.planeRemaining[f.Plane]--
	if err := b.takeSymptom(f.Symptom); err != nil {
		return err
	}
	switch f.Plane {
	case csi.DataPlane:
		if err := b.takeDataCell(dataJointKey{f.DataAbstraction, f.DataProperty}); err != nil {
			return err
		}
		if err := takeValue(b.dataPatterns, f.DataPattern); err != nil {
			return err
		}
		if f.Serialization {
			if b.serialization <= 0 {
				return fmt.Errorf("serialization pool exhausted")
			}
			b.serialization--
		}
	case csi.ManagementPlane:
		if f.MgmtKind == MgmtMonitoring {
			if b.monitoring <= 0 {
				return fmt.Errorf("monitoring pool exhausted")
			}
			b.monitoring--
		} else {
			if err := takeValue(b.configPatterns, f.ConfigPattern); err != nil {
				return err
			}
			if err := takeValue(b.configCategories, f.ConfigCategory); err != nil {
				return err
			}
		}
	case csi.ControlPlane:
		if err := takeValue(b.controlPatterns, f.ControlPattern); err != nil {
			return err
		}
		if f.ControlPattern == APISemanticViolation {
			if err := takeValue(b.apiMisuses, f.APIMisuse); err != nil {
				return err
			}
		}
	}
	if err := takeValue(b.fixPatterns, f.FixPattern); err != nil {
		return err
	}
	return takeValue(b.fixLocations, f.FixLocation)
}

func (b *builder) takeSymptom(s Symptom) error {
	for i := range b.symptoms {
		t := &b.symptoms[i]
		if t.Scope == s.Scope && t.Name == s.Name {
			if t.Crashing != s.Crashing {
				return fmt.Errorf("symptom %q crashing mismatch", s.Name)
			}
			if t.Count <= 0 {
				return fmt.Errorf("symptom pool %q exhausted", s.Name)
			}
			t.Count--
			return nil
		}
	}
	return fmt.Errorf("unknown symptom %v/%q", s.Scope, s.Name)
}

func (b *builder) takeDataCell(key dataJointKey) error {
	for i := range b.dataCells {
		if b.dataCells[i].key == key {
			if b.dataCells[i].count <= 0 {
				return fmt.Errorf("data cell %v exhausted", key)
			}
			b.dataCells[i].count--
			return nil
		}
	}
	return fmt.Errorf("data cell %v not in Table 5", key)
}

// synthesize deals the remaining records: planes are assigned to pair
// slots (control-plane records to control-interaction pairs, data to
// data pairs, management anywhere), then the per-plane attribute pools
// are dealt in order.
func (b *builder) synthesize(startIndex int) ([]Failure, error) {
	type slot struct {
		pair  csi.Interaction
		plane csi.Plane
	}
	var slots []slot

	assign := func(plane csi.Plane, wantInteraction csi.Plane, restrict bool) {
		for b.planeRemaining[plane] > 0 {
			progressed := false
			for _, p := range b.pairOrder {
				if b.planeRemaining[plane] == 0 {
					break
				}
				if restrict && p.Interaction != wantInteraction {
					continue
				}
				pair := csi.Interaction{Upstream: p.Upstream, Downstream: p.Downstream}
				if b.pairRemaining[pair] == 0 {
					continue
				}
				b.pairRemaining[pair]--
				b.planeRemaining[plane]--
				slots = append(slots, slot{pair: pair, plane: plane})
				progressed = true
			}
			if !progressed {
				break
			}
		}
	}
	assign(csi.ControlPlane, csi.ControlPlane, true)
	assign(csi.DataPlane, csi.DataPlane, true)
	assign(csi.ManagementPlane, csi.ControlPlane, false)

	out := make([]Failure, 0, len(slots))
	for i, s := range slots {
		f := Failure{
			ID:          csi.IssueID(fmt.Sprintf("CSI-%04d", 1000+startIndex+i)),
			Upstream:    s.pair.Upstream,
			Downstream:  s.pair.Downstream,
			Plane:       s.plane,
			Synthesized: true,
		}
		sym, err := b.popSymptom()
		if err != nil {
			return nil, err
		}
		f.Symptom = sym
		switch s.plane {
		case csi.DataPlane:
			cell, err := b.popDataCell()
			if err != nil {
				return nil, err
			}
			f.DataAbstraction, f.DataProperty = cell.Abstraction, cell.Property
			f.DataPattern, err = popNext(b.dataPatterns)
			if err != nil {
				return nil, err
			}
			if b.serialization > 0 &&
				(f.DataProperty == PropSchemaStructure || f.DataProperty == PropSchemaValue) {
				f.Serialization = true
				b.serialization--
			}
			f.Title = fmt.Sprintf("Synthesized: %s→%s data-plane discrepancy in %s (%s)",
				f.Upstream, f.Downstream, f.DataProperty, f.DataPattern)
		case csi.ManagementPlane:
			if pat, err := popNext(b.configPatterns); err == nil {
				f.MgmtKind = MgmtConfig
				f.ConfigPattern = pat
				f.ConfigCategory, err = popNext(b.configCategories)
				if err != nil {
					return nil, err
				}
				f.Title = fmt.Sprintf("Synthesized: %s→%s configuration discrepancy (%s)",
					f.Upstream, f.Downstream, f.ConfigPattern)
			} else {
				if b.monitoring <= 0 {
					return nil, fmt.Errorf("dataset: management pools exhausted early")
				}
				b.monitoring--
				f.MgmtKind = MgmtMonitoring
				f.Title = fmt.Sprintf("Synthesized: %s→%s monitoring discrepancy", f.Upstream, f.Downstream)
			}
		case csi.ControlPlane:
			var err error
			f.ControlPattern, err = popNext(b.controlPatterns)
			if err != nil {
				return nil, err
			}
			if f.ControlPattern == APISemanticViolation {
				f.APIMisuse, err = popNext(b.apiMisuses)
				if err != nil {
					return nil, err
				}
			}
			f.Title = fmt.Sprintf("Synthesized: %s→%s control-plane discrepancy (%s)",
				f.Upstream, f.Downstream, f.ControlPattern)
		}
		// Fix pattern and location, pairing "no merged fix" with the
		// Others pattern.
		pat, err := popNext(b.fixPatterns)
		if err != nil {
			return nil, err
		}
		f.FixPattern = pat
		if pat == FixOthers {
			if err := takeValue(b.fixLocations, FixNone); err != nil {
				return nil, err
			}
			f.FixLocation = FixNone
		} else {
			for _, loc := range []FixLocation{FixUpstreamConnector, FixUpstreamSpecific, FixGeneric} {
				if takeValue(b.fixLocations, loc) == nil {
					f.FixLocation = loc
					err = nil
					break
				}
				err = fmt.Errorf("dataset: fix-location pool exhausted")
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, f)
	}
	return out, nil
}

func (b *builder) popSymptom() (Symptom, error) {
	for i := range b.symptoms {
		if b.symptoms[i].Count > 0 {
			b.symptoms[i].Count--
			return b.symptoms[i].Symptom, nil
		}
	}
	return Symptom{}, fmt.Errorf("dataset: symptom pool empty")
}

func (b *builder) popDataCell() (dataJointKey, error) {
	for i := range b.dataCells {
		if b.dataCells[i].count > 0 {
			b.dataCells[i].count--
			return b.dataCells[i].key, nil
		}
	}
	return dataJointKey{}, fmt.Errorf("dataset: Table 5 pool empty")
}

func (b *builder) validateEmpty() error {
	for pair, n := range b.pairRemaining {
		if n != 0 {
			return fmt.Errorf("dataset: pair %s has %d unfilled slots", pair, n)
		}
	}
	for plane, n := range b.planeRemaining {
		if n != 0 {
			return fmt.Errorf("dataset: plane %v has %d unfilled slots", plane, n)
		}
	}
	for _, s := range b.symptoms {
		if s.Count != 0 {
			return fmt.Errorf("dataset: symptom %q has %d left", s.Name, s.Count)
		}
	}
	for _, c := range b.dataCells {
		if c.count != 0 {
			return fmt.Errorf("dataset: Table 5 cell %v has %d left", c.key, c.count)
		}
	}
	if b.serialization != 0 {
		return fmt.Errorf("dataset: serialization pool has %d left", b.serialization)
	}
	if b.monitoring != 0 {
		return fmt.Errorf("dataset: monitoring pool has %d left", b.monitoring)
	}
	pools := []func() error{
		poolEmpty(b.dataPatterns), poolEmpty(b.configPatterns), poolEmpty(b.configCategories),
		poolEmpty(b.controlPatterns), poolEmpty(b.apiMisuses), poolEmpty(b.fixPatterns), poolEmpty(b.fixLocations),
	}
	for _, check := range pools {
		if err := check(); err != nil {
			return err
		}
	}
	return nil
}

func poolEmpty[T comparable](pool []patternCount[T]) func() error {
	return func() error {
		for _, p := range pool {
			if p.count != 0 {
				return fmt.Errorf("dataset: pool value %v has %d left", p.value, p.count)
			}
		}
		return nil
	}
}
