package dataset

import "repro/internal/csi"

// PairTarget is a Table 1 row: an upstream→downstream pair, the plane
// of its dominant interaction, and its failure count.
type PairTarget struct {
	Upstream    csi.System
	Downstream  csi.System
	Interaction csi.Plane
	Label       string
	Count       int
}

// PairTargets reproduces Table 1 exactly, in the paper's row order.
func PairTargets() []PairTarget {
	return []PairTarget{
		{csi.Spark, csi.Hive, csi.DataPlane, "Data (Hive tables)", 26},
		{csi.Spark, csi.YARN, csi.ControlPlane, "Control (resource management)", 19},
		{csi.Spark, csi.HDFS, csi.DataPlane, "Data (files)", 8},
		{csi.Spark, csi.Kafka, csi.DataPlane, "Data (streaming)", 5},
		{csi.Flink, csi.Kafka, csi.DataPlane, "Data (streaming)", 12},
		{csi.Flink, csi.YARN, csi.ControlPlane, "Control (resource management)", 14},
		{csi.Flink, csi.Hive, csi.DataPlane, "Data (Hive tables)", 8},
		{csi.Flink, csi.HDFS, csi.DataPlane, "Data (file systems)", 3},
		{csi.Hive, csi.Spark, csi.ControlPlane, "Control (compute)", 6},
		{csi.Hive, csi.HBase, csi.DataPlane, "Data (key-value store)", 3},
		{csi.Hive, csi.HDFS, csi.DataPlane, "Data (files)", 6},
		{csi.Hive, csi.Kafka, csi.DataPlane, "Data (streaming)", 1},
		{csi.Hive, csi.YARN, csi.ControlPlane, "Control (resource management)", 2},
		{csi.HBase, csi.HDFS, csi.DataPlane, "Data (file systems)", 4},
		{csi.YARN, csi.HDFS, csi.DataPlane, "Data (file systems)", 3},
	}
}

// PlaneTargets is Table 2: failures per plane.
var PlaneTargets = map[csi.Plane]int{
	csi.ControlPlane:    20,
	csi.DataPlane:       61,
	csi.ManagementPlane: 39,
}

// symptomTarget is a Table 3 row with its count.
type symptomTarget struct {
	Symptom
	Count int
}

// SymptomTargets reproduces Table 3. One normalization is applied: the
// rows of the partial group as printed sum the table to 121, so the
// partial-group "Performance issue" row is 1 here (recorded in
// EXPERIMENTS.md); crashing rows sum to 89/120 as Finding 3 states.
func SymptomTargets() []symptomTarget {
	return []symptomTarget{
		{Symptom{ScopeCluster, "Runtime crash/hang", true}, 8},
		{Symptom{ScopeCluster, "Startup failure", true}, 4},
		{Symptom{ScopeCluster, "Performance issue", false}, 3},
		{Symptom{ScopeCluster, "Data loss", false}, 2},
		{Symptom{ScopeCluster, "Unexpected behavior", false}, 3},
		{Symptom{ScopeJob, "Job/task failure", true}, 47},
		{Symptom{ScopeJob, "Job/task startup", true}, 6},
		{Symptom{ScopeJob, "Wrong results", false}, 3},
		{Symptom{ScopeJob, "Data loss", false}, 2},
		{Symptom{ScopeJob, "Performance issue", false}, 3},
		{Symptom{ScopeJob, "Usability issue", false}, 1},
		{Symptom{ScopePartial, "Job/task crash/hang", true}, 24},
		{Symptom{ScopePartial, "Reduced observability", false}, 8},
		{Symptom{ScopePartial, "Unexpected behavior", false}, 5},
		{Symptom{ScopePartial, "Performance issue", false}, 1},
	}
}

// CrashingTarget is Finding 3: 89/120 failures crash.
const CrashingTarget = 89

// dataJointKey addresses a Table 5 cell.
type dataJointKey struct {
	Abstraction DataAbstraction
	Property    DataProperty
}

// DataJointTargets reproduces Table 5, the abstraction × property joint
// distribution of the 61 data-plane failures.
func DataJointTargets() map[dataJointKey]int {
	return map[dataJointKey]int{
		{AbstractionTable, PropAddress}:          1,
		{AbstractionTable, PropSchemaStructure}:  13,
		{AbstractionTable, PropSchemaValue}:      16,
		{AbstractionTable, PropAPISemantics}:     5,
		{AbstractionFile, PropAddress}:           8,
		{AbstractionFile, PropCustom}:            8,
		{AbstractionFile, PropAPISemantics}:      2,
		{AbstractionStream, PropAddress}:         1,
		{AbstractionStream, PropSchemaStructure}: 1,
		{AbstractionStream, PropSchemaValue}:     2,
		{AbstractionStream, PropAPISemantics}:    4,
	}
}

// DataPatternTargets reproduces Table 6.
var DataPatternTargets = map[DataPattern]int{
	TypeConfusion:         12,
	UnsupportedOperations: 15,
	UnspokenConvention:    9,
	UndefinedValues:       7,
	WrongAPIAssumptions:   18,
}

// SerializationTarget is Finding 6: 15/61 data-plane failures are
// root-caused by serialization.
const SerializationTarget = 15

// ConfigPatternTargets reproduces Table 7 (30 configuration failures).
var ConfigPatternTargets = map[ConfigPattern]int{
	ConfigIgnorance:           12,
	ConfigUnexpectedOverride:  6,
	ConfigInconsistentContext: 10,
	ConfigMishandledValues:    2,
}

// ConfigCategoryTargets is Finding 8: 21 parameter / 9 component.
var ConfigCategoryTargets = map[ConfigCategory]int{
	ConfigParameter: 21,
	ConfigComponent: 9,
}

// MonitoringTarget is the monitoring share of the management plane.
const MonitoringTarget = 9

// ControlPatternTargets reproduces Table 8.
var ControlPatternTargets = map[ControlPattern]int{
	APISemanticViolation:       13,
	StateResourceInconsistency: 5,
	FeatureInconsistency:       2,
}

// APIMisuseTargets is Finding 11's split of the 13 API misuses.
var APIMisuseTargets = map[APIMisuse]int{
	ImplicitSemanticViolation: 8,
	WrongInvocationContext:    5,
}

// FixPatternTargets reproduces Table 9.
var FixPatternTargets = map[FixPattern]int{
	FixChecking:      38,
	FixErrorHandling: 8,
	FixInteraction:   69,
	FixOthers:        5,
}

// FixLocationTargets is Finding 13: 79 upstream-specific (68 in
// connector modules), 36 generic, 5 without merged fixes.
var FixLocationTargets = map[FixLocation]int{
	FixUpstreamConnector: 68,
	FixUpstreamSpecific:  11,
	FixGeneric:           36,
	FixNone:              5,
}

// TotalFailures is the dataset size.
const TotalFailures = 120
