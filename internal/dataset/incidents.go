package dataset

import "repro/internal/csi"

// Provider is a public cloud vendor.
type Provider string

// The three providers of §3.
const (
	GCP   Provider = "GCP"
	Azure Provider = "Azure"
	AWS   Provider = "AWS"
)

// IncidentSampleSizes is the §3 sample: 20 recent GCP incidents, 20
// recent Azure incidents, and all 15 AWS incidents with post-event
// summaries — 55 in total.
var IncidentSampleSizes = map[Provider]int{GCP: 20, Azure: 20, AWS: 15}

// Incident is one CSI-failure-induced cloud incident from the §3
// study. Only the 11 CSI incidents carry records; the remaining 44
// sampled incidents are represented by the sample sizes above.
type Incident struct {
	Provider        Provider
	Title           string
	Plane           csi.Plane
	DurationMinutes int
	// CascadedExternally: the incident further impaired other external
	// production services that depend on the failed one (8/11).
	CascadedExternally bool
	// MentionedCodeFix: the postmortem mentioned code fixes related to
	// the interactions (4/11).
	MentionedCodeFix bool
}

// CSIIncidents returns the 11 CSI-failure-induced incidents of
// Finding 1. Durations are reconstructed to match the published
// statistics: minimum 10 minutes, maximum 19 hours, median 106
// minutes. The first record is the §1 GCP User-ID outage (monitoring ×
// quota cross-system interaction).
func CSIIncidents() []Incident {
	return []Incident{
		{GCP, "User-ID service outage: deregistered monitor reported usage 0; quota system shrank the quota", csi.ManagementPlane, 47, true, true},
		{GCP, "BigQuery metadata-query interaction failure", csi.DataPlane, 10, false, false},
		{GCP, "App Engine scheduling interaction failure", csi.ControlPlane, 106, true, true},
		{GCP, "Compute Engine networking configuration-update interaction failure", csi.ManagementPlane, 132, true, false},
		{Azure, "Storage front-end / placement service capacity interaction", csi.ControlPlane, 1140, true, false},
		{Azure, "Configuration propagation between traffic manager and DNS control", csi.ManagementPlane, 95, true, true},
		{Azure, "Data-format mismatch between telemetry pipeline and ingestion service", csi.DataPlane, 240, false, false},
		{Azure, "Quota service misread monitoring counters after schema change", csi.ManagementPlane, 75, true, false},
		{AWS, "Internal service scaling interaction overloaded a dependent subsystem", csi.ControlPlane, 416, true, true},
		{AWS, "Cross-service configuration deployment interaction", csi.ManagementPlane, 188, true, false},
		{AWS, "Metadata interaction between storage index and request router", csi.DataPlane, 29, false, false},
	}
}

// TotalIncidents is the §3 sample size.
func TotalIncidents() int {
	n := 0
	for _, v := range IncidentSampleSizes {
		n += v
	}
	return n
}

// CBSLabel is the re-labeling outcome of a CBS cross-labeled issue
// under this paper's §2 definitions.
type CBSLabel int

// The three outcomes.
const (
	CBSNotCrossSystem CBSLabel = iota
	CBSDependencyFailure
	CBSCSIFailure
)

// CBSIssue is one issue from the 2014 Cloud Bug Study slice.
type CBSIssue struct {
	Label CBSLabel
	// Plane is set for CSI failures only.
	Plane csi.Plane
}

// CBSSlice returns the re-labeled CBS sample of §4: 105 issues — 39
// CSI failures (27 control-plane, i.e. the 69% of §5.1, 7 data, 5
// management), 15 dependency failures, and 51 issues that are not
// cross-system.
func CBSSlice() []CBSIssue {
	var out []CBSIssue
	add := func(n int, label CBSLabel, plane csi.Plane) {
		for i := 0; i < n; i++ {
			out = append(out, CBSIssue{Label: label, Plane: plane})
		}
	}
	add(27, CBSCSIFailure, csi.ControlPlane)
	add(7, CBSCSIFailure, csi.DataPlane)
	add(5, CBSCSIFailure, csi.ManagementPlane)
	add(15, CBSDependencyFailure, csi.ControlPlane)
	add(51, CBSNotCrossSystem, csi.ControlPlane)
	return out
}

// SamplingSummary captures the §4 collection statistics: 1428 candidate
// issues, a 360-issue random sample, 120 CSI failures, 26 dependency
// failures, and the remainder not cross-system.
type SamplingSummary struct {
	CandidateIssues    int
	SampledIssues      int
	CSIFailures        int
	DependencyFailures int
	NotCrossSystem     int
}

// Sampling returns the §4 statistics.
func Sampling() SamplingSummary {
	return SamplingSummary{
		CandidateIssues:    1428,
		SampledIssues:      360,
		CSIFailures:        120,
		DependencyFailures: 26,
		NotCrossSystem:     360 - 120 - 26,
	}
}
