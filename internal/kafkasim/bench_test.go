package kafkasim

import (
	"fmt"
	"testing"
)

// BenchmarkProduce measures the append path.
func BenchmarkProduce(b *testing.B) {
	broker := NewBroker()
	if err := broker.CreateTopic("t", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := broker.Produce("t", 0, fmt.Sprintf("k%d", i%100), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchAfterCompaction measures gap-tolerant fetching over a
// compacted log.
func BenchmarkFetchAfterCompaction(b *testing.B) {
	broker := NewBroker()
	if err := broker.CreateTopic("t", 1); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := broker.Produce("t", 0, fmt.Sprintf("k%d", i%100), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := broker.Compact("t", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := broker.Fetch("t", 0, 0, 100); err != nil {
			b.Fatal(err)
		}
	}
}
