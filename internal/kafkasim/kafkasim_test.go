package kafkasim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestProduceFetchRoundTrip(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	off0, err := b.Produce("t", 0, "k1", []byte("v1"))
	if err != nil || off0 != 0 {
		t.Fatalf("off = %d, %v", off0, err)
	}
	off1, _ := b.Produce("t", 0, "k2", []byte("v2"))
	if off1 != 1 {
		t.Fatalf("off = %d", off1)
	}
	recs, next, err := b.Fetch("t", 0, 0, 10)
	if err != nil || len(recs) != 2 || next != 2 {
		t.Fatalf("fetch = %v, %d, %v", recs, next, err)
	}
	if string(recs[1].Value) != "v2" {
		t.Errorf("value = %q", recs[1].Value)
	}
	// Partitions are independent.
	recs, _, _ = b.Fetch("t", 1, 0, 10)
	if len(recs) != 0 {
		t.Errorf("partition 1 = %v", recs)
	}
}

func TestTopicErrors(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 0); err == nil {
		t.Error("zero partitions should fail")
	}
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 1); err == nil {
		t.Error("duplicate topic should fail")
	}
	if _, err := b.Produce("nope", 0, "", nil); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := b.Fetch("t", 5, 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := b.Fetch("t", 0, -1, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := b.Fetch("t", 0, 100, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Errorf("err = %v", err)
	}
}

func TestCompactionLeavesGaps(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		key := "a"
		if i%2 == 1 {
			key = "b"
		}
		if _, err := b.Produce("t", 0, key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := b.Compact("t", 0)
	if err != nil || removed != 4 {
		t.Fatalf("removed = %d, %v", removed, err)
	}
	recs, next, err := b.Fetch("t", 0, 0, 10)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs = %v, %v", recs, err)
	}
	// The survivors keep their original (non-contiguous) offsets.
	if recs[0].Offset != 4 || recs[1].Offset != 5 {
		t.Errorf("offsets = %d, %d", recs[0].Offset, recs[1].Offset)
	}
	if next != 6 {
		t.Errorf("next = %d", next)
	}
	// Offsets after compaction keep increasing monotonically.
	off, _ := b.Produce("t", 0, "c", nil)
	if off != 6 {
		t.Errorf("new offset = %d", off)
	}
}

func TestHasRecordAt(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, "a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AppendTxnMarker("t", 0); err != nil {
		t.Fatal(err)
	}
	ok, _ := b.HasRecordAt("t", 0, 0)
	if !ok {
		t.Error("offset 0 should be live")
	}
	ok, _ = b.HasRecordAt("t", 0, 1)
	if ok {
		t.Error("marker offset should not be live")
	}
	ok, _ = b.HasRecordAt("t", 0, 9)
	if ok {
		t.Error("unassigned offset should not be live")
	}
}

func TestFetchFromGapResumesAtNextLive(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AppendTxnMarker("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", 0, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	recs, next, err := b.Fetch("t", 0, 1, 10)
	if err != nil || len(recs) != 1 || recs[0].Offset != 2 || next != 3 {
		t.Errorf("recs = %v, next = %d, %v", recs, next, err)
	}
}

func TestEndOffset(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	end, _ := b.EndOffset("t", 0)
	if end != 0 {
		t.Errorf("end = %d", end)
	}
	if _, err := b.Produce("t", 0, "a", nil); err != nil {
		t.Fatal(err)
	}
	end, _ = b.EndOffset("t", 0)
	if end != 1 {
		t.Errorf("end = %d", end)
	}
}

func TestClientPartitionDiscoveryContext(t *testing.T) {
	// FLINK-4155: discovery from a disconnected client context fails.
	b := NewBroker()
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	disconnected := NewClient(b, false)
	if _, err := disconnected.DiscoverPartitions("t"); !errors.Is(err, ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
	connected := NewClient(b, true)
	n, err := connected.DiscoverPartitions("t")
	if err != nil || n != 3 {
		t.Errorf("n = %d, %v", n, err)
	}
	if _, err := connected.DiscoverPartitions("missing"); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v", err)
	}
}

func TestOffsetsMonotonicProperty(t *testing.T) {
	// Offsets strictly increase regardless of the interleaving of
	// produces, markers, and compactions.
	f := func(ops []uint8) bool {
		b := NewBroker()
		if err := b.CreateTopic("t", 1); err != nil {
			return false
		}
		last := int64(-1)
		for i, op := range ops {
			var off int64
			var err error
			switch op % 3 {
			case 0:
				off, err = b.Produce("t", 0, string(rune('a'+i%3)), []byte{op})
			case 1:
				off, err = b.AppendTxnMarker("t", 0)
			default:
				if _, err := b.Compact("t", 0); err != nil {
					return false
				}
				continue
			}
			if err != nil || off <= last {
				return false
			}
			last = off
		}
		// All surviving records still come back in offset order.
		recs, _, err := b.Fetch("t", 0, 0, len(ops)+1)
		if err != nil {
			return false
		}
		prev := int64(-1)
		for _, r := range recs {
			if r.Offset <= prev {
				return false
			}
			prev = r.Offset
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
