package kafkasim

// Per-partition replication metadata: leader, in-sync replica set, and
// high watermark. A Broker instance is one broker *node's* local view;
// the partition fault plane runs one Broker per simulated node and
// compares their metadata, because the classic Kafka partition failures
// (KAFKA-3410 and kin) are exactly a controller electing a new leader
// from a *stale* ISR while the old leader has already shrunk it and
// advanced the high watermark alone.

import (
	"fmt"
	"sort"
)

type replState struct {
	leader string
	isr    []string
	hwm    int64
}

func (b *Broker) repl(topic string, part int) (*replState, error) {
	if _, err := b.partition(topic, part); err != nil {
		return nil, err
	}
	if b.replMeta == nil {
		b.replMeta = make(map[string]*replState)
	}
	key := fmt.Sprintf("%s/%d", topic, part)
	rs, ok := b.replMeta[key]
	if !ok {
		rs = &replState{}
		b.replMeta[key] = rs
	}
	return rs, nil
}

// SetLeader records this broker's view of the partition leader.
func (b *Broker) SetLeader(topic string, part int, leader string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rs, err := b.repl(topic, part)
	if err != nil {
		return err
	}
	rs.leader = leader
	return nil
}

// Leader returns this broker's view of the partition leader.
func (b *Broker) Leader(topic string, part int) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rs, err := b.repl(topic, part)
	if err != nil {
		return "", err
	}
	return rs.leader, nil
}

// SetISR records this broker's view of the in-sync replica set.
func (b *Broker) SetISR(topic string, part int, members ...string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rs, err := b.repl(topic, part)
	if err != nil {
		return err
	}
	rs.isr = append([]string(nil), members...)
	sort.Strings(rs.isr)
	return nil
}

// ISR returns this broker's view of the in-sync replica set, sorted.
func (b *Broker) ISR(topic string, part int) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rs, err := b.repl(topic, part)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), rs.isr...), nil
}

// SetHighWatermark records the last offset this broker considers
// committed (exclusive: the next offset after the committed prefix).
func (b *Broker) SetHighWatermark(topic string, part int, hwm int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rs, err := b.repl(topic, part)
	if err != nil {
		return err
	}
	rs.hwm = hwm
	return nil
}

// HighWatermark returns this broker's committed-prefix end offset.
func (b *Broker) HighWatermark(topic string, part int) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rs, err := b.repl(topic, part)
	if err != nil {
		return 0, err
	}
	return rs.hwm, nil
}

// TruncateTo discards every record at or beyond offset and rewinds the
// next offset — what a replica does when it rejoins behind a new
// leader, and the operation that makes acknowledged records vanish
// after an unclean election from a stale ISR. It returns the number of
// live records discarded.
func (b *Broker) TruncateTo(topic string, part int, offset int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		return 0, err
	}
	if offset < 0 || offset > p.nextOffset {
		return 0, fmt.Errorf("%w: truncate to %d not in [0, %d]", ErrOffsetOutOfRange, offset, p.nextOffset)
	}
	removed := 0
	kept := p.entries[:0]
	for _, e := range p.entries {
		if e.offset < offset {
			kept = append(kept, e)
			continue
		}
		if !e.deleted {
			removed++
		}
	}
	p.entries = kept
	p.nextOffset = offset
	return removed, nil
}
