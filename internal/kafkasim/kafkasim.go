// Package kafkasim simulates a Kafka-like partitioned log with the two
// properties behind the streaming-plane CSI failures in the study:
//
//   - offsets are monotonically increasing but NOT contiguous: log
//     compaction removes superseded records and transaction markers
//     consume offsets invisibly, so consumers that assume "offsets
//     always increment by 1" (SPARK-19361) mis-handle the gaps;
//   - partition metadata is only served to clients connected to the
//     cluster, so partition discovery invoked in the wrong context
//     fails (FLINK-4155).
//
// The broker is safe for concurrent use.
package kafkasim

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/csi"
	"repro/internal/obs"
)

// Record is one log entry as seen by consumers.
type Record struct {
	Offset int64
	Key    string
	Value  []byte
}

type entry struct {
	offset  int64
	key     string
	value   []byte
	deleted bool // compacted away or a transaction marker
	marker  bool
}

type partition struct {
	entries    []entry
	nextOffset int64
}

// ErrUnknownTopic reports a fetch from a topic that does not exist.
var ErrUnknownTopic = fmt.Errorf("kafka: unknown topic or partition")

// ErrOffsetOutOfRange reports a fetch beyond the log end or before the
// log start.
var ErrOffsetOutOfRange = fmt.Errorf("kafka: offset out of range")

// ErrNotConnected reports a metadata call from a client context that
// has no route to the cluster (the FLINK-4155 model).
var ErrNotConnected = fmt.Errorf("kafka: partition discovery requires a connected cluster context")

// Broker is the simulated cluster (or, for the partition fault plane,
// one broker node's local log and metadata — see isr.go).
type Broker struct {
	mu       sync.Mutex
	topics   map[string][]*partition
	replMeta map[string]*replState // "topic/part" -> replication metadata
	tracer   *obs.Tracer
	traceTop *obs.Span
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[string][]*partition)}
}

// SetTrace attaches a tracer and default parent span; the broker then
// emits spans for produce/fetch (data plane) and compaction
// (management plane). A nil tracer disables emission.
func (b *Broker) SetTrace(tr *obs.Tracer, parent *obs.Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = tr
	b.traceTop = parent
}

// span emits a completed boundary span; call with b.mu held.
func (b *Broker) span(plane csi.Plane, name, topic string, err error) *obs.Span {
	if b.tracer == nil {
		return nil
	}
	sp := b.tracer.Span(b.traceTop, csi.Kafka, plane, name)
	if topic != "" {
		sp.Set("topic", topic)
	}
	sp.Fail(err)
	sp.End()
	return sp
}

// CreateTopic registers a topic with the given partition count.
func (b *Broker) CreateTopic(topic string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("kafka: topic %q needs at least one partition", topic)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[topic]; ok {
		return fmt.Errorf("kafka: topic %q already exists", topic)
	}
	parts := make([]*partition, partitions)
	for i := range parts {
		parts[i] = &partition{}
	}
	b.topics[topic] = parts
	return nil
}

func (b *Broker) partition(topic string, part int) (*partition, error) {
	parts, ok := b.topics[topic]
	if !ok || part < 0 || part >= len(parts) {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownTopic, topic, part)
	}
	return parts[part], nil
}

// Produce appends a keyed record, returning its offset.
func (b *Broker) Produce(topic string, part int, key string, value []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		b.span(csi.DataPlane, "produce", topic, err)
		return 0, err
	}
	off := p.nextOffset
	p.nextOffset++
	p.entries = append(p.entries, entry{offset: off, key: key, value: append([]byte(nil), value...)})
	if b.tracer != nil {
		b.span(csi.DataPlane, "produce", topic, nil).Set("offset", strconv.FormatInt(off, 10))
	}
	return off, nil
}

// AppendTxnMarker consumes one offset for a transaction control record
// that is never delivered to consumers — one source of offset gaps.
func (b *Broker) AppendTxnMarker(topic string, part int) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		return 0, err
	}
	off := p.nextOffset
	p.nextOffset++
	p.entries = append(p.entries, entry{offset: off, deleted: true, marker: true})
	return off, nil
}

// Compact removes every record whose key has a later record, leaving
// offset gaps — the second source of non-contiguous offsets. It
// returns the number of records removed.
func (b *Broker) Compact(topic string, part int) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		return 0, err
	}
	latest := make(map[string]int64)
	for _, e := range p.entries {
		if !e.deleted && e.key != "" {
			latest[e.key] = e.offset
		}
	}
	removed := 0
	for i := range p.entries {
		e := &p.entries[i]
		if e.deleted || e.key == "" {
			continue
		}
		if latest[e.key] != e.offset {
			e.deleted = true
			removed++
		}
	}
	if b.tracer != nil {
		b.span(csi.ManagementPlane, "compact", topic, nil).Set("removed", strconv.Itoa(removed))
	}
	return removed, nil
}

// Fetch returns up to max live records starting at or after offset,
// along with the offset to resume from. Offsets inside gaps are legal
// start positions; offsets beyond the log end are out of range.
func (b *Broker) Fetch(topic string, part int, offset int64, max int) ([]Record, int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		b.span(csi.DataPlane, "fetch", topic, err)
		return nil, 0, err
	}
	if offset < 0 || offset > p.nextOffset {
		err := fmt.Errorf("%w: %d not in [0, %d]", ErrOffsetOutOfRange, offset, p.nextOffset)
		b.span(csi.DataPlane, "fetch", topic, err)
		return nil, 0, err
	}
	var out []Record
	next := offset
	for _, e := range p.entries {
		if e.offset < offset || e.deleted {
			continue
		}
		if len(out) >= max {
			break
		}
		out = append(out, Record{Offset: e.offset, Key: e.key, Value: append([]byte(nil), e.value...)})
		next = e.offset + 1
	}
	if len(out) == 0 {
		next = p.nextOffset
	}
	if b.tracer != nil {
		b.span(csi.DataPlane, "fetch", topic, nil).Set("records", strconv.Itoa(len(out)))
	}
	return out, next, nil
}

// HasRecordAt reports whether a live (non-compacted, non-marker)
// record exists at exactly the given offset.
func (b *Broker) HasRecordAt(topic string, part int, offset int64) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		return false, err
	}
	for _, e := range p.entries {
		if e.offset == offset {
			return !e.deleted, nil
		}
	}
	return false, nil
}

// EndOffset returns the next offset that will be assigned.
func (b *Broker) EndOffset(topic string, part int) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.partition(topic, part)
	if err != nil {
		return 0, err
	}
	return p.nextOffset, nil
}

// Client is a consumer-side handle. Connected distinguishes a runtime
// context with cluster access from a driver/client context without one
// (FLINK-4155).
type Client struct {
	broker    *Broker
	Connected bool
}

// NewClient returns a handle to the broker.
func NewClient(broker *Broker, connected bool) *Client {
	return &Client{broker: broker, Connected: connected}
}

// DiscoverPartitions returns the partition count for a topic. In a
// disconnected context the metadata request cannot be served.
func (c *Client) DiscoverPartitions(topic string) (int, error) {
	if !c.Connected {
		return 0, ErrNotConnected
	}
	c.broker.mu.Lock()
	defer c.broker.mu.Unlock()
	parts, ok := c.broker.topics[topic]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	return len(parts), nil
}
